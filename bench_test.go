// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation, plus ablation benchmarks for
// the design choices called out in DESIGN.md. Each benchmark reports the
// key figure-of-merit as custom metrics (cycles per RMW, percentage
// reductions, ...) so `go test -bench` output doubles as the experiment
// log; cmd/experiments produces the full formatted tables.
//
// The benchmark configuration is reduced (8 cores, shortened workloads) so
// that the whole suite completes in a few minutes; run
// `go run ./cmd/experiments -all` for the paper-scale 32-core sweep.
package repro_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpp11"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// benchOptions is the reduced experiment configuration used by the
// benchmarks.
func benchOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.Cores = 8
	o.Scale = 0.25
	return o
}

// runTable3 and runCpp11 run the benchmark sweeps through the execution
// engine, the single runUnit path behind every sweep mode.
func runTable3(o experiments.Options) ([]*experiments.BenchmarkRun, error) {
	return engine.New().RunBenchmarks(o, experiments.Table3Specs())
}

func runCpp11(o experiments.Options) ([]*experiments.BenchmarkRun, error) {
	return engine.New().RunBenchmarks(o, experiments.Cpp11Specs())
}

// BenchmarkTable1IdiomMatrix regenerates Table 1: model checking of the
// Dekker idioms and the C/C++11 mapping soundness per RMW type.
func BenchmarkTable1IdiomMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckTable1Matches(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Parameters renders the architectural parameters (Table 2);
// it mostly exists so every table has a named regeneration target.
func BenchmarkTable2Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.RenderTable2(sim.DefaultConfig()) == "" {
			b.Fatal("empty Table 2")
		}
	}
}

// BenchmarkTable3Characteristics regenerates Table 3: per-benchmark RMW
// density, unique-RMW fraction, revert rate and broadcast rate.
func BenchmarkTable3Characteristics(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		runs, err := runTable3(o)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Table3FromRuns(runs)
		if len(rows) != 7 {
			b.Fatalf("Table 3 has %d rows", len(rows))
		}
		if i == b.N-1 {
			var density float64
			for _, r := range rows {
				density += r.RMWsPer1000
			}
			b.ReportMetric(density/float64(len(rows)), "RMWs/1000memops")
		}
	}
}

// BenchmarkTable4MappingValidation regenerates the Table 4 mapping
// soundness matrix.
func BenchmarkTable4MappingValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		unsound := 0
		for _, r := range rows {
			if !r.Sound {
				unsound++
			}
		}
		if unsound != 1 {
			b.Fatalf("expected exactly one unsound mapping/type combination, got %d", unsound)
		}
	}
}

// BenchmarkFig11aRMWCost regenerates Fig. 11(a): the per-RMW cost split for
// type-1/2/3 across the benchmark set. The reported metrics are the average
// per-RMW cost per type and the type-2/type-3 reductions.
func BenchmarkFig11aRMWCost(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		runs, err := runTable3(o)
		if err != nil {
			b.Fatal(err)
		}
		figA, figB := experiments.Fig11FromRuns(runs)
		sum := experiments.Summarize(figA, figB)
		if i == b.N-1 {
			var c1, c2, c3 float64
			for _, e := range figA {
				c1 += e.Total(core.Type1)
				c2 += e.Total(core.Type2)
				c3 += e.Total(core.Type3)
			}
			n := float64(len(figA))
			b.ReportMetric(c1/n, "type1-cycles/RMW")
			b.ReportMetric(c2/n, "type2-cycles/RMW")
			b.ReportMetric(c3/n, "type3-cycles/RMW")
			b.ReportMetric(sum.Type2CostReductionMax, "type2-max-reduction-%")
			b.ReportMetric(sum.Type3CostReductionMax, "type3-max-reduction-%")
		}
	}
}

// BenchmarkFig11bExecutionOverhead regenerates Fig. 11(b): the share of
// execution time spent on RMWs and the end-to-end improvement of the weak
// RMWs.
func BenchmarkFig11bExecutionOverhead(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		runs, err := runTable3(o)
		if err != nil {
			b.Fatal(err)
		}
		figA, figB := experiments.Fig11FromRuns(runs)
		sum := experiments.Summarize(figA, figB)
		if i == b.N-1 {
			var o1 float64
			for _, e := range figB {
				o1 += e.Overhead[core.Type1]
			}
			b.ReportMetric(o1/float64(len(figB)), "type1-overhead-%")
			b.ReportMetric(sum.MaxSpeedupType2, "type2-max-speedup-%")
			b.ReportMetric(sum.MaxSpeedupType3, "type3-max-speedup-%")
		}
	}
}

// BenchmarkFig11Cpp11Variants regenerates the wsq-mst_rr / wsq-mst_wr bars
// of Fig. 11: the C/C++11 SC-atomic read- and write-replacement runs.
func BenchmarkFig11Cpp11Variants(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		runs, err := runCpp11(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, run := range runs {
				_, _, c1 := run.Result(core.Type1).AvgRMWCost()
				_, _, c2 := run.Result(core.Type2).AvgRMWCost()
				name := run.Name
				b.ReportMetric(c1, name+"-type1-cycles/RMW")
				b.ReportMetric(c2, name+"-type2-cycles/RMW")
			}
		}
	}
}

// BenchmarkRunPlanOverhead measures the execution engine's dispatch cost
// around a sweep: a Table 3 plan is run once to warm an in-memory result
// cache, then every iteration re-runs the full plan against it, so each
// unit is a cache hit and the measured time is the shared
// submit → pool → runUnit → reassemble spine with zero simulation
// inside. The snapshot gate tracks it so the engine layer stays
// overhead-free relative to calling the simulator directly.
func BenchmarkRunPlanOverhead(b *testing.B) {
	o := benchOptions()
	cache, err := simcache.Open()
	if err != nil {
		b.Fatal(err)
	}
	o.Cache = cache
	eng := engine.New(engine.WithCache(cache))
	plan, err := engine.BuildPlan(o, experiments.Table3Specs())
	if err != nil {
		b.Fatal(err)
	}
	warm, err := eng.RunPlan(context.Background(), plan, engine.FullShard())
	if err != nil {
		b.Fatal(err)
	}
	if len(warm.Units) != plan.Len() {
		b.Fatalf("warm run covered %d units, want %d", len(warm.Units), plan.Len())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := eng.RunPlan(context.Background(), plan, engine.FullShard())
		if err != nil {
			b.Fatal(err)
		}
		runs, err := plan.Runs(sr.Units)
		if err != nil {
			b.Fatal(err)
		}
		if len(runs) != 7 {
			b.Fatalf("plan reassembled %d runs, want 7", len(runs))
		}
	}
	b.StopTimer()
	if m := eng.Metrics(); m.CacheMisses != plan.Len() {
		b.Fatalf("%d cache misses after warm-up, want %d (warm run only) — the overhead run simulated",
			m.CacheMisses, plan.Len())
	}
	b.ReportMetric(float64(plan.Len()), "units/op")
}

// BenchmarkServeSubmitWarm measures the HTTP service's per-job overhead
// on a warm cache: one submit of a small quick plan populates the
// content-addressed cache, then every iteration re-submits the identical
// spec over HTTP and polls the status endpoint until the job finishes.
// With every unit a cache hit, the measured time is the whole service
// spine — JSON decode, registry admission, engine dispatch, event log,
// status polling — with zero simulation inside, the same contract
// BenchmarkRunPlanOverhead pins for the engine layer below it.
func BenchmarkServeSubmitWarm(b *testing.B) {
	cache, err := simcache.Open()
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const spec = `{"plan": {"preset": "quick", "cores": 4, "scale": 0.05}}`
	submitWait := func() int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			b.Fatal(err)
		}
		var sub struct {
			ID    string `json:"id"`
			Units int    `json:"units"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: HTTP %d", resp.StatusCode)
		}
		for {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
			if err != nil {
				b.Fatal(err)
			}
			var st struct {
				State string `json:"state"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			switch st.State {
			case "done":
				return sub.Units
			case "failed":
				b.Fatalf("job %s failed", sub.ID)
			}
		}
	}
	units := submitWait() // warm the cache: the only simulated run
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait()
	}
	b.StopTimer()
	if m := srv.Engine().Metrics(); int(m.CacheMisses) != units {
		b.Fatalf("%d cache misses after warm-up, want %d (warm run only) — a warm submit simulated",
			m.CacheMisses, units)
	}
	b.ReportMetric(float64(units), "units/op")
}

// BenchmarkAblationBloomFilterOverhead measures what the addr-list protocol
// itself costs when it is never needed: a single-core workload where no RMW
// can conflict, run with the protocol enabled and disabled. DESIGN.md calls
// this out as the price of deadlock safety.
func BenchmarkAblationBloomFilterOverhead(b *testing.B) {
	profile, err := workload.FindProfile("radiosity")
	if err != nil {
		b.Fatal(err)
	}
	profile.Iterations = 64
	trace, err := workload.Generator{Cores: 1, Seed: 3}.Generate(profile)
	if err != nil {
		b.Fatal(err)
	}
	run := func(disable bool) *sim.Result {
		cfg := sim.DefaultConfig().WithCores(1).WithRMWType(core.Type2)
		cfg.DisableDeadlockAvoidance = disable
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		if i == b.N-1 {
			_, _, cw := with.AvgRMWCost()
			_, _, cwo := without.AvgRMWCost()
			b.ReportMetric(cw, "with-addrlist-cycles/RMW")
			b.ReportMetric(cwo, "naive-cycles/RMW")
		}
	}
}

// BenchmarkAblationParallelDrain measures the effect of the parallel
// write-buffer drain optimization on the type-1 baseline (the paper adopts
// it from Gharachorloo et al. to strengthen the baseline).
func BenchmarkAblationParallelDrain(b *testing.B) {
	profile, err := workload.FindProfile("bayes")
	if err != nil {
		b.Fatal(err)
	}
	profile.Iterations = 48
	trace, err := workload.Generator{Cores: 8, Seed: 5}.Generate(profile)
	if err != nil {
		b.Fatal(err)
	}
	run := func(parallel bool) *sim.Result {
		cfg := sim.DefaultConfig().WithCores(8).WithRMWType(core.Type1)
		cfg.ParallelDrain = parallel
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		par := run(true)
		ser := run(false)
		if i == b.N-1 {
			wbPar, _, _ := par.AvgRMWCost()
			wbSer, _, _ := ser.AvgRMWCost()
			b.ReportMetric(wbPar, "parallel-drain-cycles")
			b.ReportMetric(wbSer, "serial-drain-cycles")
		}
	}
}

// BenchmarkAblationBloomFilterSize sweeps the addr-list filter size and
// reports the revert (false-positive-induced drain) rate at each size,
// justifying the paper's 128-byte choice.
func BenchmarkAblationBloomFilterSize(b *testing.B) {
	profile, err := workload.FindProfile("wsq-mst")
	if err != nil {
		b.Fatal(err)
	}
	profile.Iterations = 64
	trace, err := workload.Generator{Cores: 8, Seed: 9}.Generate(profile)
	if err != nil {
		b.Fatal(err)
	}
	sizes := []int{128, 512, 1024, 4096}
	for i := 0; i < b.N; i++ {
		for _, bits := range sizes {
			cfg := sim.DefaultConfig().WithCores(8).WithRMWType(core.Type2)
			cfg.BloomFilterBits = bits
			s, err := sim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run(trace)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.RevertPercent(), "revert%-"+itoa(bits)+"bit")
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// enumerate3ThreadProgram builds the 3-thread program used to compare the
// materializing and streaming enumerations: three threads with crossed
// write/RMW/read pairs, giving a candidate set in the thousands so the
// cost of materializing it is visible.
func enumerate3ThreadProgram() *memmodel.Program {
	p := memmodel.NewProgram("enumerate-bench-3t")
	p.AddThread(memmodel.Write(0, 1), memmodel.FetchAdd(1, "a0", 1), memmodel.Read(2, "r0"))
	p.AddThread(memmodel.Write(1, 1), memmodel.FetchAdd(2, "a1", 1), memmodel.Read(0, "r1"))
	p.AddThread(memmodel.Write(2, 1), memmodel.FetchAdd(0, "a2", 1), memmodel.Read(1, "r2"))
	return p
}

// BenchmarkEnumerateMaterialized measures the slice-based Enumerate on the
// 3-thread program: the whole candidate set is allocated and retained
// before the model's validity filter can run.
func BenchmarkEnumerateMaterialized(b *testing.B) {
	p := enumerate3ThreadProgram()
	model := core.NewModel(core.Type2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cands, err := memmodel.Enumerate(p)
		if err != nil {
			b.Fatal(err)
		}
		valid := 0
		for _, x := range cands {
			if model.Valid(x) {
				valid++
			}
		}
		if valid == 0 {
			b.Fatal("no valid executions")
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(cands)), "candidates")
		}
	}
}

// BenchmarkEnumerateStreaming measures the visitor-based EnumerateFunc on
// the same program and filter: candidates are visited one at a time, so
// the candidate set is never materialized. The allocation win over
// BenchmarkEnumerateMaterialized is the figure to track.
func BenchmarkEnumerateStreaming(b *testing.B) {
	p := enumerate3ThreadProgram()
	model := core.NewModel(core.Type2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		valid, candidates := 0, 0
		err := memmodel.EnumerateFunc(p, func(x *memmodel.Execution) bool {
			candidates++
			if model.Valid(x) {
				valid++
			}
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if valid == 0 {
			b.Fatal("no valid executions")
		}
		if i == b.N-1 {
			b.ReportMetric(float64(candidates), "candidates")
		}
	}
}

// streamBenchProfile is the workload for the streamed-vs-materialized
// trace comparison: a paper-scale-shaped run whose trace is long enough
// that holding it in memory dominates the allocation profile.
func streamBenchProfile(b *testing.B) (workload.Generator, workload.Profile) {
	profile, err := workload.FindProfile("radiosity")
	if err != nil {
		b.Fatal(err)
	}
	profile.Iterations = 256
	return workload.Generator{Cores: 8, Seed: 31}, profile
}

// BenchmarkSimMaterializedTrace measures the pre-streaming end-to-end
// path: generate the whole trace into memory, then simulate it. The
// allocations include the O(cores × iterations × ops) trace slices.
func BenchmarkSimMaterializedTrace(b *testing.B) {
	gen, profile := streamBenchProfile(b)
	cfg := sim.DefaultConfig().WithCores(8).WithRMWType(core.Type2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace, err := gen.Generate(profile)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(trace)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.TotalMemOps()), "trace-memops")
			b.ReportMetric(float64(res.Cycles), "cycles")
		}
	}
}

// BenchmarkSimStreamedTrace measures the same end-to-end run through the
// streaming path: each core pulls its ops from the generator one episode
// at a time, so only the O(episode) refill buffers are ever live. The
// allocation win over BenchmarkSimMaterializedTrace is the figure to
// track; the simulated statistics are identical by construction (asserted
// by pkg/rmwtso's stream tests).
func BenchmarkSimStreamedTrace(b *testing.B) {
	gen, profile := streamBenchProfile(b)
	cfg := sim.DefaultConfig().WithCores(8).WithRMWType(core.Type2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := gen.Source(profile)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.RunSource(src)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.TotalMemOps()), "trace-memops")
			b.ReportMetric(float64(res.Cycles), "cycles")
		}
	}
}

// iriwReadWriteProgram compiles the IRIW C/C++11 idiom under the
// read-write mapping: every SC access becomes a locked RMW, giving the
// largest candidate space induced by the registries (tens of thousands of
// rf×ws choices) — the program class where one verdict dominates a
// suite's wall clock.
func iriwReadWriteProgram(b *testing.B) *memmodel.Program {
	p, err := cpp11.Compile(cpp11.SCIRIW(), cpp11.ReadWriteMapping)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkEnumerateParallel measures the rf-partitioned enumeration of
// the IRIW-class program at increasing worker counts against the
// sequential walk ("workers-1" runs the same partitioned machinery with
// one range; "seq" is the plain visitor API). Every variant must visit
// the identical number of candidates; the figure of merit is the speedup
// of workers-8 over seq on multi-core hardware (≥2x expected from 8
// workers on ≥4 cores; on a single-core runner the parallel variants
// only measure the partitioning overhead).
func BenchmarkEnumerateParallel(b *testing.B) {
	p := iriwReadWriteProgram(b)
	want, err := memmodel.CountCandidates(p)
	if err != nil {
		b.Fatal(err)
	}
	count := func(b *testing.B, run func(visit func(*memmodel.Execution) bool) error) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			candidates := 0
			err := run(func(x *memmodel.Execution) bool {
				candidates++
				return true
			})
			if err != nil {
				b.Fatal(err)
			}
			if candidates != want {
				b.Fatalf("visited %d candidates, want %d", candidates, want)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(candidates), "candidates")
			}
		}
	}
	b.Run("seq", func(b *testing.B) {
		count(b, func(visit func(*memmodel.Execution) bool) error {
			return memmodel.EnumerateFunc(p, visit)
		})
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			count(b, func(visit func(*memmodel.Execution) bool) error {
				return memmodel.EnumerateParallel(context.Background(), p, workers, visit, memmodel.EnumUnordered())
			})
		})
	}
	b.Run("workers-8-ordered", func(b *testing.B) {
		count(b, func(visit func(*memmodel.Execution) bool) error {
			return memmodel.EnumerateParallel(context.Background(), p, 8, visit)
		})
	})
}

// BenchmarkEnumerateParallelVerdict measures the same program through a
// whole litmus-style verdict (validity filtering inside the workers via
// Test.RunParallel), which is the user-visible win: the filter — the
// expensive part — runs concurrently.
func BenchmarkEnumerateParallelVerdict(b *testing.B) {
	p := iriwReadWriteProgram(b)
	test := &litmus.Test{
		Name:    "iriw-rw-bench",
		Program: p,
		Cond:    litmus.ExistsCond(litmus.RegTerm(2, "r0", 1)),
	}
	for _, workers := range []int{1, 8} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			var candidates int
			for i := 0; i < b.N; i++ {
				res, err := test.RunParallel(context.Background(), core.Type2, workers)
				if err != nil {
					b.Fatal(err)
				}
				if candidates == 0 {
					candidates = res.Candidates
				} else if res.Candidates != candidates {
					b.Fatalf("candidate count drifted: %d vs %d", res.Candidates, candidates)
				}
			}
			b.ReportMetric(float64(candidates), "candidates")
		})
	}
}

// BenchmarkLitmusSuite measures the model checker on the full litmus suite,
// one verdict per test and atomicity type.
func BenchmarkLitmusSuite(b *testing.B) {
	tests := litmus.AllTests()
	for i := 0; i < b.N; i++ {
		for _, t := range tests {
			if _, err := t.RunAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMappingValidation measures the exhaustive C/C++11-vs-TSO outcome
// comparison on the SC store-buffering program.
func BenchmarkMappingValidation(b *testing.B) {
	p := cpp11.SCStoreBuffering()
	for i := 0; i < b.N; i++ {
		for _, m := range cpp11.AllMappings() {
			for _, typ := range core.AllTypes() {
				if _, err := cpp11.ValidateMapping(p, m, typ); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
