// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -all                  regenerate everything (Table 1-4, Fig. 11a/b, summary)
//	experiments -table 1              one table (1, 2, 3 or 4)
//	experiments -fig 11a              one figure (11a or 11b)
//	experiments -summary              only the headline summary
//	experiments -quick                use the reduced configuration (8 cores, short workloads)
//	experiments -cores 16 -scale 0.5  custom run size
//	experiments -j 8                  simulation worker-pool parallelism
//	experiments -enum-workers 8       goroutines per model-checking verdict
//	experiments -materialize          pre-build whole traces in memory
//	experiments -cache                cache simulation results in ~/.cache/rmwtso
//	experiments -cache-dir DIR        cache simulation results under DIR
//	experiments -cache-clear          clear the cache directory first
//
// Sharded sweeps and machine-readable reports:
//
//	experiments -quick -list-units              print the sweep plan (unit IDs, traces, types, seeds)
//	experiments -quick -format json             full report as one JSON document (csv, ascii too)
//	experiments -quick -shard 0/3 -out s0.json  run shard 0 of 3, write its artifact
//	experiments -quick -merge -format ascii s0.json s1.json s2.json
//	                                            merge shard artifacts into the full report
//
// Dynamically coordinated sweeps (pull queue instead of a static split):
//
//	experiments -quick -coordinate 4 -format json    in-process: 4 pull workers share the queue
//	experiments -quick -serve-coordinator :7077      serve the plan's units to HTTP workers,
//	                                                 emit the report when the fleet drains it
//	experiments -quick -worker http://host:7077      pull and simulate units until drained
//
// The coordinator hands out one unit at a time under heartbeat-kept
// leases: a crashed worker's lease expires and its unit is requeued, a
// repeatedly failing unit is retried with backoff and then dead-lettered
// (the report gains a dead-letter section and the exit status is 1), and
// a completed coordinated sweep's result tables are byte-identical to an
// unsharded run's. Workers rebuild the identical plan from the same
// flags; the plan-fingerprint handshake refuses a mismatched worker.
// -lease-ttl and -max-attempts tune the lease state machine; -fail-unit
// and -crash-after inject faults for drills and CI.
//
// The sweep is a deterministic plan of content-addressed units (one
// benchmark × RMW type × seed simulation each), so any process that
// builds the plan from the same flags agrees on unit identities: run
// shard i/n on any machine, ship the JSON artifact back, and -merge
// reconstructs a report byte-identical to an unsharded run — it fails
// loudly if a unit is missing, duplicated, from a different plan, or if
// an artifact is corrupt. -format selects the report encoding (ascii
// tables, one JSON document, or multi-section CSV for dashboards).
//
// The semantics experiments (Tables 1 and 4) are exact model-checking
// results and always match the paper. The simulation experiments (Table 3,
// Fig. 11) reproduce the paper's shapes on the synthetic workloads; the
// benchmark×type grid is swept in parallel across a worker pool, with each
// run streaming its trace from the workload generator at bounded memory
// (pass -materialize to share pre-built traces across the RMW types
// instead — identical results, more memory, no per-type regeneration).
//
// Every simulator run is a pure function of (config, trace, seed, scale,
// RMW type), so with -cache (or -cache-dir) results are stored in a
// content-addressed cache and warm reruns regenerate byte-identical
// tables without executing a single cached simulation; the hit/miss
// counters are reported on stderr and per-run cache hits are flagged by
// -progress. Shards share the same keys: a unit cached by one sweep is a
// cache hit for every shard that covers it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/cliflags"
	"repro/pkg/rmwtso"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate every table and figure")
		table    = flag.String("table", "", "regenerate one table: 1, 2, 3 or 4")
		fig      = flag.String("fig", "", "regenerate one figure: 11a or 11b")
		summary  = flag.Bool("summary", false, "print the headline summary")
		quick    = flag.Bool("quick", false, "use the reduced configuration")
		cores    = flag.Int("cores", 0, "override the number of simulated cores")
		scale    = flag.Float64("scale", 0, "override the workload scale factor")
		seed     = flag.Int64("seed", 0, "override the workload seed")
		seeds    = flag.Int("seeds", 0, "rerun the sweep under this many consecutive seeds (base -seed) and report cross-seed mean/CI statistics")
		par      = flag.Int("j", 0, "simulation worker-pool parallelism (default: GOMAXPROCS)")
		enumW    = flag.Int("enum-workers", 0, "goroutines per model-checking verdict (default: auto by candidate count)")
		progress = flag.Bool("progress", false, "stream per-run progress while simulating")
		mat      = flag.Bool("materialize", false, "pre-build whole traces in memory instead of streaming them")
		shardArg = flag.String("shard", "", "run only sweep shard i/n (requires -out)")
		outPath  = flag.String("out", "", "write the shard artifact to this file (with -shard)")
		merge    = flag.Bool("merge", false, "merge the shard artifact files given as arguments into the full report")
		format   = flag.String("format", "", "emit the full report in this format: ascii, json or csv")
		listU    = flag.Bool("list-units", false, "print the sweep plan (unit IDs, traces, types, seeds) and exit")

		coordN     = flag.Int("coordinate", 0, "run the sweep through an in-process pull queue with this many workers")
		serveArg   = flag.String("serve-coordinator", "", "serve the sweep's units to HTTP workers on this address (host:port), emit the report once drained")
		workerArg  = flag.String("worker", "", "pull and simulate units from the coordinator at this URL (http://host:port) until drained")
		workerName = flag.String("worker-name", "", "name this worker reports to the coordinator (default worker-<host>-<pid>)")
		leaseTTL   = flag.Duration("lease-ttl", 0, "coordination: lease time-to-live before a silent worker's unit is requeued (default 15s)")
		maxAtt     = flag.Int("max-attempts", 0, "coordination: attempts per unit before it is dead-lettered (default 3)")
		failUnit   = flag.String("fail-unit", "", "fault injection: comma-separated unit IDs that permanently fail every attempt")
		crashAfter = flag.Int("crash-after", -1, "fault injection: crash the worker (in-process: worker-0) after executing this many units")
	)
	cacheFlags := cliflags.RegisterCache(flag.CommandLine, "simulation results")
	flag.Parse()

	// Arm fault injection before any I/O when the chaos environment
	// variable is set (simulation scenarios only), with a stderr banner
	// so a faulted run can never be mistaken for a clean one.
	if banner, err := rmwtso.InstallChaosFromEnv(); err != nil {
		fatalUsage(err)
	} else if banner != "" {
		fmt.Fprintln(os.Stderr, banner)
	}

	// Reject flag values that would otherwise flow as garbage into the
	// workload generator or the enumeration heuristic (explicit
	// "-cores 0"/"-scale 0" included; the unset default 0 means "keep
	// the preset").
	fs := flag.CommandLine
	if err := cliflags.PositiveIntIfSet(fs, "cores", *cores); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.PositiveFloatIfSet(fs, "scale", *scale); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.NonNegativeInt("enum-workers", *enumW); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.NonNegativeInt("j", *par); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.PositiveIntIfSet(fs, "seeds", *seeds); err != nil {
		fatalUsage(err)
	}

	// Coordination modes are mutually exclusive roles of the same sweep.
	coordModes := 0
	for _, on := range []bool{*coordN > 0, *serveArg != "", *workerArg != ""} {
		if on {
			coordModes++
		}
	}
	if coordModes > 1 {
		fatalUsage(fmt.Errorf("-coordinate, -serve-coordinator and -worker are mutually exclusive roles"))
	}
	if *coordN < 0 || (*coordN == 0 && cliflags.WasSet(fs, "coordinate")) {
		fatalUsage(fmt.Errorf("-coordinate needs a positive worker count, got %d", *coordN))
	}
	if err := cliflags.PositiveDurationIfSet(fs, "lease-ttl", *leaseTTL); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.PositiveIntIfSet(fs, "max-attempts", *maxAtt); err != nil {
		fatalUsage(err)
	}
	if coordModes == 0 && (*failUnit != "" || *crashAfter >= 0 || cliflags.WasSet(fs, "lease-ttl") || cliflags.WasSet(fs, "max-attempts") || *workerName != "") {
		fatalUsage(fmt.Errorf("-lease-ttl/-max-attempts/-fail-unit/-crash-after/-worker-name only apply to coordinated sweeps (-coordinate, -serve-coordinator or -worker)"))
	}
	if *serveArg != "" && (*failUnit != "" || *crashAfter >= 0) {
		fatalUsage(fmt.Errorf("faults are injected where units execute; pass -fail-unit/-crash-after to -coordinate or to -worker processes"))
	}
	if *workerName != "" && *workerArg == "" {
		fatalUsage(fmt.Errorf("-worker-name only applies with -worker"))
	}
	if *workerArg != "" && (*listU || *merge || *shardArg != "" || *format != "" || *outPath != "") {
		fatalUsage(fmt.Errorf("-worker pulls units from its coordinator and emits nothing; it cannot combine with -list-units/-shard/-merge/-format/-out"))
	}
	if *serveArg != "" && (*listU || *merge || *shardArg != "") {
		fatalUsage(fmt.Errorf("-serve-coordinator coordinates the whole plan and emits the full report; it cannot combine with -list-units/-shard/-merge"))
	}
	if *coordN > 0 && (*listU || *merge) {
		fatalUsage(fmt.Errorf("-coordinate runs the sweep and cannot combine with -list-units/-merge"))
	}

	opts := rmwtso.DefaultOptions()
	if *quick {
		opts = rmwtso.QuickOptions()
	}
	opts.Materialize = *mat
	if *cores > 0 {
		opts.Cores = *cores
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *enumW > 0 {
		opts.EnumWorkers = *enumW
	}

	cache, err := rmwtso.OpenCacheFromFlags(*cacheFlags.Enabled, *cacheFlags.Dir, *cacheFlags.Clear)
	check(err)
	opts.Cache = cache

	// The seed list of the sweep: the base seed alone, or -seeds
	// consecutive seeds starting at it. Every mode (plan pipeline and
	// legacy tables) derives its work from this one list, so the plan
	// fingerprints of a multi-seed fleet agree.
	seedList := []int64{opts.Seed}
	for s := int64(1); s < int64(*seeds); s++ {
		seedList = append(seedList, opts.Seed+s)
	}

	// Coordinated roles share the sweep Runner; the configuration is the
	// same on every side so the plan fingerprints agree.
	var coordOpts []rmwtso.Option
	if coordModes > 0 {
		crashWorker := "" // -worker: the process has exactly one worker
		if *coordN > 0 {
			crashWorker = "worker-0" // keep the in-process sweep able to finish
		}
		coordOpts = append(coordOpts, rmwtso.WithCoordinator(rmwtso.CoordinationConfig{
			Workers:       *coordN,
			LeaseTTL:      *leaseTTL,
			MaxAttempts:   *maxAtt,
			FaultInjector: buildFaultInjector(*failUnit, *crashAfter, crashWorker),
		}))
	}

	// The plan pipeline: every mode below agrees on unit identities
	// because each rebuilds the same deterministic plan from the flags.
	planMode := *listU || *shardArg != "" || *merge || *format != "" || coordModes > 0
	if *outPath != "" && *shardArg == "" {
		fatalUsage(fmt.Errorf("-out only applies with -shard"))
	}
	if planMode {
		if *all || *table != "" || *fig != "" || *summary {
			fatalUsage(fmt.Errorf("-list-units/-shard/-merge/-format emit whole-plan output and cannot be combined with -all/-table/-fig/-summary"))
		}
		if *listU && *format != "" {
			fatalUsage(fmt.Errorf("-list-units prints the plan listing; -format only applies to full reports"))
		}
		plan, err := rmwtso.DefaultPlanSeeds(opts, seedList...)
		check(err)

		switch {
		case *listU:
			listUnits(plan)
			return

		case *workerArg != "":
			name := *workerName
			if name == "" {
				host, _ := os.Hostname()
				if host == "" {
					host = "local"
				}
				name = fmt.Sprintf("worker-%s-%d", host, os.Getpid())
			}
			err := newRunner(*par, cache, *progress, coordOpts...).RunPlanWorker(nil, plan, *workerArg, name)
			if errors.Is(err, rmwtso.ErrInjectedCrash) {
				fmt.Fprintf(os.Stderr, "experiments: worker %s: injected crash (-crash-after %d); lease left to expire\n", name, *crashAfter)
				os.Exit(3)
			}
			check(err)
			fmt.Fprintf(os.Stderr, "experiments: worker %s: queue drained\n", name)
			reportCache(cache)
			return

		case *serveArg != "":
			srv, err := newRunner(*par, cache, *progress, coordOpts...).NewCoordServer(plan, rmwtso.FullShard())
			check(err)
			ln, err := net.Listen("tcp", *serveArg)
			check(err)
			hs := &http.Server{Handler: srv.Handler()}
			go func() { _ = hs.Serve(ln) }()
			fmt.Fprintf(os.Stderr, "experiments: coordinating %d units on %s (plan %s)\n",
				plan.Len(), ln.Addr(), plan.Fingerprint())
			res, err := srv.Wait(context.Background())
			// Linger past the workers' poll interval so every worker sees
			// the drained queue and exits cleanly before the server does.
			time.Sleep(1500 * time.Millisecond)
			_ = hs.Close()
			emitCoordinated(opts, plan, res, err, *format)
			reportCache(cache)
			return

		case *shardArg != "":
			if *merge {
				fatalUsage(fmt.Errorf("-shard runs a sweep subset and cannot be combined with -merge"))
			}
			if *format != "" {
				fatalUsage(fmt.Errorf("-shard always writes the artifact envelope; -format only applies to full reports (-merge or neither)"))
			}
			if *outPath == "" {
				fatalUsage(fmt.Errorf("-shard needs -out FILE to write the shard artifact"))
			}
			shard, err := rmwtso.ParseShard(*shardArg)
			check(err)
			res, err := newRunner(*par, cache, *progress, coordOpts...).RunPlan(nil, plan, shard)
			var dle *rmwtso.DeadLetterError
			if errors.As(err, &dle) {
				// A shard artifact with holes would only fail the merge
				// later; fail here, where the dead letters are known.
				fmt.Fprintln(os.Stderr, "experiments:", err)
				fmt.Fprintln(os.Stderr, "experiments: no artifact written: a shard with dead-lettered units cannot merge")
				os.Exit(1)
			}
			check(err)
			check(res.WriteFile(*outPath))
			hits := 0
			for _, u := range res.Units {
				if u.CacheHit {
					hits++
				}
			}
			fmt.Fprintf(os.Stderr, "experiments: shard %s: %d of %d units (%d cache hits) -> %s\n",
				shard, len(res.Units), plan.Len(), hits, *outPath)
			reportCache(cache)
			return

		case *merge:
			if flag.NArg() == 0 {
				fatalUsage(fmt.Errorf("-merge needs shard artifact files as arguments"))
			}
			runs, err := rmwtso.MergeShardFiles(plan, flag.Args()...)
			check(err)
			emitReport(opts, runs, *format, nil)
			return

		default: // -format/-coordinate without -shard/-merge: unsharded full report.
			res, err := newRunner(*par, cache, *progress, coordOpts...).RunPlan(nil, plan, rmwtso.FullShard())
			emitCoordinated(opts, plan, res, err, *format)
			reportCache(cache)
			return
		}
	}

	if !*all && *table == "" && *fig == "" && !*summary {
		flag.Usage()
		os.Exit(2)
	}

	if *all || *table == "1" {
		rows, err := rmwtso.RunTable1Opts(opts)
		check(err)
		fmt.Println(rmwtso.RenderTable1(rows))
		if err := rmwtso.CheckTable1Matches(rows); err != nil {
			fmt.Println("WARNING:", err)
		} else {
			fmt.Println("Table 1 matches the paper exactly.")
		}
		fmt.Println()
	}
	if *all || *table == "2" {
		fmt.Println(rmwtso.RenderTable2(opts.BaseConfig()))
		fmt.Println()
	}
	if *all || *table == "4" {
		rows, err := rmwtso.RunTable4Opts(opts)
		check(err)
		fmt.Println(rmwtso.RenderTable4(rows))
		fmt.Println()
	}

	needSim := *all || *table == "3" || *fig == "11a" || *fig == "11b" || *summary
	if !needSim {
		reportCache(cache)
		return
	}

	runner := newRunner(*par, cache, *progress)

	fmt.Printf("Simulating the Table 3 benchmark set (%d cores, scale %.2f)...\n\n", opts.Cores, opts.Scale)
	runs, err := runner.RunBenchmarksSeeds(opts, rmwtso.Table3Specs(), seedList...)
	check(err)
	cppRuns, err := runner.RunBenchmarksSeeds(opts, rmwtso.Cpp11Specs(), seedList...)
	check(err)
	allRuns := append(append([]*rmwtso.BenchmarkRun{}, runs...), cppRuns...)

	// Multi-seed sweeps render the per-seed sections from the base seed
	// (matching BuildReport) and append the cross-seed statistics.
	baseOf := func(in []*rmwtso.BenchmarkRun) []*rmwtso.BenchmarkRun {
		if len(seedList) <= 1 {
			return in
		}
		var out []*rmwtso.BenchmarkRun
		for _, r := range in {
			if r.Seed == opts.Seed {
				out = append(out, r)
			}
		}
		return out
	}

	if *all || *table == "3" {
		fmt.Println(rmwtso.RenderTable3(rmwtso.Table3FromRuns(baseOf(runs))))
		fmt.Println()
	}
	figA, figB := rmwtso.Fig11FromRuns(baseOf(allRuns))
	if *all || *fig == "11a" {
		fmt.Println(rmwtso.RenderFig11a(figA))
		fmt.Println()
	}
	if *all || *fig == "11b" {
		fmt.Println(rmwtso.RenderFig11b(figB))
		fmt.Println()
	}
	if *all || *summary {
		fmt.Println(rmwtso.Summarize(figA, figB).Render())
	}
	if aggs := rmwtso.AggregateSeeds(allRuns); len(aggs) > 0 {
		fmt.Println()
		fmt.Println(rmwtso.RenderSeedAggregates(aggs))
	}
	reportCache(cache)
}

// newRunner builds the sweep Runner shared by the legacy, plan and
// coordinated modes.
func newRunner(par int, cache *rmwtso.Cache, progress bool, extra ...rmwtso.Option) *rmwtso.Runner {
	runnerOpts := []rmwtso.Option{}
	if par > 0 {
		runnerOpts = append(runnerOpts, rmwtso.WithParallelism(par))
	}
	if cache != nil {
		runnerOpts = append(runnerOpts, rmwtso.WithCache(cache))
	}
	if progress {
		runnerOpts = append(runnerOpts, rmwtso.WithObserver(func(e rmwtso.Event) {
			switch {
			case e.Sim != nil:
				verb := "done"
				if e.Sim.CacheHit {
					verb = "cached"
				}
				fmt.Fprintf(os.Stderr, "  %s: %s: %s under %s (%d cycles)\n",
					verb, e.Sim.Unit, e.Sim.Trace, e.Sim.Type, e.Sim.Result.Cycles)
			case e.Coord != nil:
				line := "  coord: " + e.Coord.Kind
				if e.Coord.Unit != "" {
					line += " " + string(e.Coord.Unit)
				}
				if e.Coord.Worker != "" {
					line += " worker=" + e.Coord.Worker
				}
				if e.Coord.Attempt > 0 {
					line += fmt.Sprintf(" attempt=%d", e.Coord.Attempt)
				}
				if e.Coord.Reason != "" {
					line += " (" + e.Coord.Reason + ")"
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}))
	}
	return rmwtso.NewRunner(append(runnerOpts, extra...)...)
}

// buildFaultInjector compiles the -fail-unit/-crash-after flags into a
// FaultInjector (nil when neither is set). crashWorker restricts
// -crash-after to one worker name; empty applies it to any worker of the
// process — which is exactly one in -worker mode.
func buildFaultInjector(failUnits string, crashAfter int, crashWorker string) rmwtso.FaultInjector {
	poisoned := map[rmwtso.UnitID]bool{}
	for _, id := range strings.Split(failUnits, ",") {
		if id = strings.TrimSpace(id); id != "" {
			poisoned[rmwtso.UnitID(id)] = true
		}
	}
	if len(poisoned) == 0 && crashAfter < 0 {
		return nil
	}
	var executions atomic.Int64
	return func(worker string, u rmwtso.Unit, attempt int) error {
		if poisoned[u.ID] {
			return fmt.Errorf("injected permanent failure (-fail-unit, attempt %d)", attempt)
		}
		if crashAfter >= 0 && (crashWorker == "" || worker == crashWorker) {
			if executions.Add(1) > int64(crashAfter) {
				return rmwtso.ErrInjectedCrash
			}
		}
		return nil
	}
}

// emitCoordinated finishes a sweep that may have run coordinated: a clean
// result emits the full report (coordination section attached when the
// sweep was dynamic), while dead-lettered units emit the partial report —
// complete trace groups plus the dead-letter section — and exit 1 so CI
// cannot mistake the sweep for a healthy one.
func emitCoordinated(opts rmwtso.Options, plan *rmwtso.Plan, res *rmwtso.ShardResult, err error, format string) {
	var dle *rmwtso.DeadLetterError
	if errors.As(err, &dle) {
		partial := dle.Partial
		runs, missing, perr := plan.RunsPartial(partial.Units)
		check(perr)
		emitReport(opts, runs, format, partial.Coordination)
		fmt.Fprintln(os.Stderr, "experiments:", dle)
		fmt.Fprintf(os.Stderr, "experiments: %d units are missing from the tables above; see the dead-letter section\n", len(missing))
		os.Exit(1)
	}
	check(err)
	runs, err := plan.Runs(res.Units)
	check(err)
	emitReport(opts, runs, format, res.Coordination)
}

// listUnits prints the plan as a fixed-width listing so operators can
// audit shard boundaries before launching a fleet.
func listUnits(plan *rmwtso.Plan) {
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "UNIT\tTRACE\tBENCHMARK\tTYPE\tSEED\tSCALE\n")
	for _, u := range plan.Units() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%g\n", u.ID, u.Trace, u.Benchmark, u.Type, u.Seed, u.Scale)
	}
	w.Flush()
	fmt.Printf("%d units, plan %s\n", plan.Len(), plan.Fingerprint())
}

// emitReport builds the full evaluation report from the runs and encodes
// it on stdout ("" defaults to ascii). A non-nil coord attaches the
// coordination section; the result tables are unaffected either way.
func emitReport(opts rmwtso.Options, runs []*rmwtso.BenchmarkRun, format string, coord *rmwtso.Coordination) {
	if format == "" {
		format = rmwtso.FormatASCII
	}
	report, err := rmwtso.BuildReport(opts, runs)
	check(err)
	report.Coordination = coord
	check(rmwtso.EncodeReport(os.Stdout, report, format))
}

// reportCache prints the cache traffic counters on stderr (never stdout,
// so cached and uncached table output stays byte-identical).
func reportCache(cache *rmwtso.Cache) {
	if cache == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "cache: %s (dir %s)\n", cache.Stats(), cache.Dir())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// fatalUsage reports a bad flag combination and exits with the
// conventional usage status.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}
