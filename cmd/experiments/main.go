// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -all                  regenerate everything (Table 1-4, Fig. 11a/b, summary)
//	experiments -table 1              one table (1, 2, 3 or 4)
//	experiments -fig 11a              one figure (11a or 11b)
//	experiments -summary              only the headline summary
//	experiments -quick                use the reduced configuration (8 cores, short workloads)
//	experiments -cores 16 -scale 0.5  custom run size
//	experiments -j 8                  simulation worker-pool parallelism
//	experiments -enum-workers 8       goroutines per model-checking verdict
//	experiments -materialize          pre-build whole traces in memory
//	experiments -cache                cache simulation results in ~/.cache/rmwtso
//	experiments -cache-dir DIR        cache simulation results under DIR
//	experiments -cache-clear          clear the cache directory first
//
// Sharded sweeps and machine-readable reports:
//
//	experiments -quick -list-units              print the sweep plan (unit IDs, traces, types, seeds)
//	experiments -quick -format json             full report as one JSON document (csv, ascii too)
//	experiments -quick -shard 0/3 -out s0.json  run shard 0 of 3, write its artifact
//	experiments -quick -merge -format ascii s0.json s1.json s2.json
//	                                            merge shard artifacts into the full report
//
// The sweep is a deterministic plan of content-addressed units (one
// benchmark × RMW type × seed simulation each), so any process that
// builds the plan from the same flags agrees on unit identities: run
// shard i/n on any machine, ship the JSON artifact back, and -merge
// reconstructs a report byte-identical to an unsharded run — it fails
// loudly if a unit is missing, duplicated, from a different plan, or if
// an artifact is corrupt. -format selects the report encoding (ascii
// tables, one JSON document, or multi-section CSV for dashboards).
//
// The semantics experiments (Tables 1 and 4) are exact model-checking
// results and always match the paper. The simulation experiments (Table 3,
// Fig. 11) reproduce the paper's shapes on the synthetic workloads; the
// benchmark×type grid is swept in parallel across a worker pool, with each
// run streaming its trace from the workload generator at bounded memory
// (pass -materialize to share pre-built traces across the RMW types
// instead — identical results, more memory, no per-type regeneration).
//
// Every simulator run is a pure function of (config, trace, seed, scale,
// RMW type), so with -cache (or -cache-dir) results are stored in a
// content-addressed cache and warm reruns regenerate byte-identical
// tables without executing a single cached simulation; the hit/miss
// counters are reported on stderr and per-run cache hits are flagged by
// -progress. Shards share the same keys: a unit cached by one sweep is a
// cache hit for every shard that covers it.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/pkg/rmwtso"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate every table and figure")
		table    = flag.String("table", "", "regenerate one table: 1, 2, 3 or 4")
		fig      = flag.String("fig", "", "regenerate one figure: 11a or 11b")
		summary  = flag.Bool("summary", false, "print the headline summary")
		quick    = flag.Bool("quick", false, "use the reduced configuration")
		cores    = flag.Int("cores", 0, "override the number of simulated cores")
		scale    = flag.Float64("scale", 0, "override the workload scale factor")
		seed     = flag.Int64("seed", 0, "override the workload seed")
		par      = flag.Int("j", 0, "simulation worker-pool parallelism (default: GOMAXPROCS)")
		enumW    = flag.Int("enum-workers", 0, "goroutines per model-checking verdict (default: auto by candidate count)")
		progress = flag.Bool("progress", false, "stream per-run progress while simulating")
		mat      = flag.Bool("materialize", false, "pre-build whole traces in memory instead of streaming them")
		cacheOn  = flag.Bool("cache", false, "cache simulation results (default directory: ~/.cache/rmwtso)")
		cacheDir = flag.String("cache-dir", "", "cache simulation results under this directory (implies -cache)")
		cacheClr = flag.Bool("cache-clear", false, "clear the cache directory before running (implies -cache)")
		shardArg = flag.String("shard", "", "run only sweep shard i/n (requires -out)")
		outPath  = flag.String("out", "", "write the shard artifact to this file (with -shard)")
		merge    = flag.Bool("merge", false, "merge the shard artifact files given as arguments into the full report")
		format   = flag.String("format", "", "emit the full report in this format: ascii, json or csv")
		listU    = flag.Bool("list-units", false, "print the sweep plan (unit IDs, traces, types, seeds) and exit")
	)
	flag.Parse()

	// Reject flag values that would otherwise flow as garbage into the
	// workload generator or the enumeration heuristic (explicit
	// "-cores 0"/"-scale 0" included; the unset default 0 means "keep
	// the preset").
	if *cores < 0 || (*cores == 0 && flagWasSet("cores")) {
		fatalUsage(fmt.Errorf("-cores must be positive, got %d", *cores))
	}
	if *scale < 0 || (*scale == 0 && flagWasSet("scale")) {
		fatalUsage(fmt.Errorf("-scale must be positive, got %g", *scale))
	}
	if *enumW < 0 {
		fatalUsage(fmt.Errorf("-enum-workers must be non-negative, got %d", *enumW))
	}
	if *par < 0 {
		fatalUsage(fmt.Errorf("-j must be non-negative, got %d", *par))
	}

	opts := rmwtso.DefaultOptions()
	if *quick {
		opts = rmwtso.QuickOptions()
	}
	opts.Materialize = *mat
	if *cores > 0 {
		opts.Cores = *cores
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *enumW > 0 {
		opts.EnumWorkers = *enumW
	}

	cache, err := rmwtso.OpenCacheFromFlags(*cacheOn, *cacheDir, *cacheClr)
	check(err)
	opts.Cache = cache

	// The plan pipeline: every mode below agrees on unit identities
	// because each rebuilds the same deterministic plan from the flags.
	planMode := *listU || *shardArg != "" || *merge || *format != ""
	if *outPath != "" && *shardArg == "" {
		fatalUsage(fmt.Errorf("-out only applies with -shard"))
	}
	if planMode {
		if *all || *table != "" || *fig != "" || *summary {
			fatalUsage(fmt.Errorf("-list-units/-shard/-merge/-format emit whole-plan output and cannot be combined with -all/-table/-fig/-summary"))
		}
		if *listU && *format != "" {
			fatalUsage(fmt.Errorf("-list-units prints the plan listing; -format only applies to full reports"))
		}
		plan, err := rmwtso.DefaultPlan(opts)
		check(err)

		switch {
		case *listU:
			listUnits(plan)
			return

		case *shardArg != "":
			if *merge {
				fatalUsage(fmt.Errorf("-shard runs a sweep subset and cannot be combined with -merge"))
			}
			if *format != "" {
				fatalUsage(fmt.Errorf("-shard always writes the artifact envelope; -format only applies to full reports (-merge or neither)"))
			}
			if *outPath == "" {
				fatalUsage(fmt.Errorf("-shard needs -out FILE to write the shard artifact"))
			}
			shard, err := rmwtso.ParseShard(*shardArg)
			check(err)
			res, err := newRunner(*par, cache, *progress).RunPlan(nil, plan, shard)
			check(err)
			check(res.WriteFile(*outPath))
			hits := 0
			for _, u := range res.Units {
				if u.CacheHit {
					hits++
				}
			}
			fmt.Fprintf(os.Stderr, "experiments: shard %s: %d of %d units (%d cache hits) -> %s\n",
				shard, len(res.Units), plan.Len(), hits, *outPath)
			reportCache(cache)
			return

		case *merge:
			if flag.NArg() == 0 {
				fatalUsage(fmt.Errorf("-merge needs shard artifact files as arguments"))
			}
			runs, err := rmwtso.MergeShardFiles(plan, flag.Args()...)
			check(err)
			emitReport(opts, runs, *format)
			return

		default: // -format without -shard/-merge: unsharded full report.
			res, err := newRunner(*par, cache, *progress).RunPlan(nil, plan, rmwtso.FullShard())
			check(err)
			runs, err := plan.Runs(res.Units)
			check(err)
			emitReport(opts, runs, *format)
			reportCache(cache)
			return
		}
	}

	if !*all && *table == "" && *fig == "" && !*summary {
		flag.Usage()
		os.Exit(2)
	}

	if *all || *table == "1" {
		rows, err := rmwtso.RunTable1Opts(opts)
		check(err)
		fmt.Println(rmwtso.RenderTable1(rows))
		if err := rmwtso.CheckTable1Matches(rows); err != nil {
			fmt.Println("WARNING:", err)
		} else {
			fmt.Println("Table 1 matches the paper exactly.")
		}
		fmt.Println()
	}
	if *all || *table == "2" {
		fmt.Println(rmwtso.RenderTable2(opts.BaseConfig()))
		fmt.Println()
	}
	if *all || *table == "4" {
		rows, err := rmwtso.RunTable4Opts(opts)
		check(err)
		fmt.Println(rmwtso.RenderTable4(rows))
		fmt.Println()
	}

	needSim := *all || *table == "3" || *fig == "11a" || *fig == "11b" || *summary
	if !needSim {
		reportCache(cache)
		return
	}

	runner := newRunner(*par, cache, *progress)

	fmt.Printf("Simulating the Table 3 benchmark set (%d cores, scale %.2f)...\n\n", opts.Cores, opts.Scale)
	runs, err := runner.RunTable3Benchmarks(opts)
	check(err)
	cppRuns, err := runner.RunCpp11Benchmarks(opts)
	check(err)
	allRuns := append(append([]*rmwtso.BenchmarkRun{}, runs...), cppRuns...)

	if *all || *table == "3" {
		fmt.Println(rmwtso.RenderTable3(rmwtso.Table3FromRuns(runs)))
		fmt.Println()
	}
	figA, figB := rmwtso.Fig11FromRuns(allRuns)
	if *all || *fig == "11a" {
		fmt.Println(rmwtso.RenderFig11a(figA))
		fmt.Println()
	}
	if *all || *fig == "11b" {
		fmt.Println(rmwtso.RenderFig11b(figB))
		fmt.Println()
	}
	if *all || *summary {
		fmt.Println(rmwtso.Summarize(figA, figB).Render())
	}
	reportCache(cache)
}

// newRunner builds the sweep Runner shared by the legacy and plan modes.
func newRunner(par int, cache *rmwtso.Cache, progress bool) *rmwtso.Runner {
	runnerOpts := []rmwtso.Option{}
	if par > 0 {
		runnerOpts = append(runnerOpts, rmwtso.WithParallelism(par))
	}
	if cache != nil {
		runnerOpts = append(runnerOpts, rmwtso.WithCache(cache))
	}
	if progress {
		runnerOpts = append(runnerOpts, rmwtso.WithObserver(func(e rmwtso.Event) {
			if e.Sim == nil {
				return
			}
			verb := "done"
			if e.Sim.CacheHit {
				verb = "cached"
			}
			fmt.Fprintf(os.Stderr, "  %s: %s: %s under %s (%d cycles)\n",
				verb, e.Sim.Unit, e.Sim.Trace, e.Sim.Type, e.Sim.Result.Cycles)
		}))
	}
	return rmwtso.NewRunner(runnerOpts...)
}

// listUnits prints the plan as a fixed-width listing so operators can
// audit shard boundaries before launching a fleet.
func listUnits(plan *rmwtso.Plan) {
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "UNIT\tTRACE\tBENCHMARK\tTYPE\tSEED\tSCALE\n")
	for _, u := range plan.Units() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%g\n", u.ID, u.Trace, u.Benchmark, u.Type, u.Seed, u.Scale)
	}
	w.Flush()
	fmt.Printf("%d units, plan %s\n", plan.Len(), plan.Fingerprint())
}

// emitReport builds the full evaluation report from the runs and encodes
// it on stdout ("" defaults to ascii).
func emitReport(opts rmwtso.Options, runs []*rmwtso.BenchmarkRun, format string) {
	if format == "" {
		format = rmwtso.FormatASCII
	}
	report, err := rmwtso.BuildReport(opts, runs)
	check(err)
	check(rmwtso.EncodeReport(os.Stdout, report, format))
}

// reportCache prints the cache traffic counters on stderr (never stdout,
// so cached and uncached table output stays byte-identical).
func reportCache(cache *rmwtso.Cache) {
	if cache == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "cache: %s (dir %s)\n", cache.Stats(), cache.Dir())
}

// flagWasSet reports whether the named flag was given explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// fatalUsage reports a bad flag combination and exits with the
// conventional usage status.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}
