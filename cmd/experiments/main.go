// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -all                  regenerate everything (Table 1-4, Fig. 11a/b, summary)
//	experiments -table 1              one table (1, 2, 3 or 4)
//	experiments -fig 11a              one figure (11a or 11b)
//	experiments -summary              only the headline summary
//	experiments -quick                use the reduced configuration (8 cores, short workloads)
//	experiments -cores 16 -scale 0.5  custom run size
//	experiments -j 8                  simulation worker-pool parallelism
//	experiments -enum-workers 8       goroutines per model-checking verdict
//	experiments -materialize          pre-build whole traces in memory
//	experiments -cache                cache simulation results in ~/.cache/rmwtso
//	experiments -cache-dir DIR        cache simulation results under DIR
//	experiments -cache-clear          clear the cache directory first
//
// The semantics experiments (Tables 1 and 4) are exact model-checking
// results and always match the paper. The simulation experiments (Table 3,
// Fig. 11) reproduce the paper's shapes on the synthetic workloads; the
// benchmark×type grid is swept in parallel across a worker pool, with each
// run streaming its trace from the workload generator at bounded memory
// (pass -materialize to share pre-built traces across the RMW types
// instead — identical results, more memory, no per-type regeneration).
//
// Every simulator run is a pure function of (config, trace, seed, scale,
// RMW type), so with -cache (or -cache-dir) results are stored in a
// content-addressed cache and warm reruns regenerate byte-identical
// tables without executing a single cached simulation; the hit/miss
// counters are reported on stderr and per-run cache hits are flagged by
// -progress.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pkg/rmwtso"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate every table and figure")
		table    = flag.String("table", "", "regenerate one table: 1, 2, 3 or 4")
		fig      = flag.String("fig", "", "regenerate one figure: 11a or 11b")
		summary  = flag.Bool("summary", false, "print the headline summary")
		quick    = flag.Bool("quick", false, "use the reduced configuration")
		cores    = flag.Int("cores", 0, "override the number of simulated cores")
		scale    = flag.Float64("scale", 0, "override the workload scale factor")
		seed     = flag.Int64("seed", 0, "override the workload seed")
		par      = flag.Int("j", 0, "simulation worker-pool parallelism (default: GOMAXPROCS)")
		enumW    = flag.Int("enum-workers", 0, "goroutines per model-checking verdict (default: auto by candidate count)")
		progress = flag.Bool("progress", false, "stream per-run progress while simulating")
		mat      = flag.Bool("materialize", false, "pre-build whole traces in memory instead of streaming them")
		cacheOn  = flag.Bool("cache", false, "cache simulation results (default directory: ~/.cache/rmwtso)")
		cacheDir = flag.String("cache-dir", "", "cache simulation results under this directory (implies -cache)")
		cacheClr = flag.Bool("cache-clear", false, "clear the cache directory before running (implies -cache)")
	)
	flag.Parse()

	// Reject flag values that would otherwise flow as garbage into the
	// workload generator or the enumeration heuristic (explicit
	// "-cores 0"/"-scale 0" included; the unset default 0 means "keep
	// the preset").
	if *cores < 0 || (*cores == 0 && flagWasSet("cores")) {
		fatalUsage(fmt.Errorf("-cores must be positive, got %d", *cores))
	}
	if *scale < 0 || (*scale == 0 && flagWasSet("scale")) {
		fatalUsage(fmt.Errorf("-scale must be positive, got %g", *scale))
	}
	if *enumW < 0 {
		fatalUsage(fmt.Errorf("-enum-workers must be non-negative, got %d", *enumW))
	}
	if *par < 0 {
		fatalUsage(fmt.Errorf("-j must be non-negative, got %d", *par))
	}

	opts := rmwtso.DefaultOptions()
	if *quick {
		opts = rmwtso.QuickOptions()
	}
	opts.Materialize = *mat
	if *cores > 0 {
		opts.Cores = *cores
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *enumW > 0 {
		opts.EnumWorkers = *enumW
	}

	cache, err := rmwtso.OpenCacheFromFlags(*cacheOn, *cacheDir, *cacheClr)
	check(err)
	opts.Cache = cache

	if !*all && *table == "" && *fig == "" && !*summary {
		flag.Usage()
		os.Exit(2)
	}

	if *all || *table == "1" {
		rows, err := rmwtso.RunTable1Opts(opts)
		check(err)
		fmt.Println(rmwtso.RenderTable1(rows))
		if err := rmwtso.CheckTable1Matches(rows); err != nil {
			fmt.Println("WARNING:", err)
		} else {
			fmt.Println("Table 1 matches the paper exactly.")
		}
		fmt.Println()
	}
	if *all || *table == "2" {
		fmt.Println(rmwtso.RenderTable2(opts.BaseConfig()))
		fmt.Println()
	}
	if *all || *table == "4" {
		rows, err := rmwtso.RunTable4Opts(opts)
		check(err)
		fmt.Println(rmwtso.RenderTable4(rows))
		fmt.Println()
	}

	needSim := *all || *table == "3" || *fig == "11a" || *fig == "11b" || *summary
	if !needSim {
		reportCache(cache)
		return
	}

	runnerOpts := []rmwtso.Option{}
	if *par > 0 {
		runnerOpts = append(runnerOpts, rmwtso.WithParallelism(*par))
	}
	if cache != nil {
		runnerOpts = append(runnerOpts, rmwtso.WithCache(cache))
	}
	if *progress {
		runnerOpts = append(runnerOpts, rmwtso.WithObserver(func(e rmwtso.Event) {
			if e.Sim == nil {
				return
			}
			verb := "done"
			if e.Sim.CacheHit {
				verb = "cached"
			}
			fmt.Fprintf(os.Stderr, "  %s: %s under %s (%d cycles)\n",
				verb, e.Sim.Trace, e.Sim.Type, e.Sim.Result.Cycles)
		}))
	}
	runner := rmwtso.NewRunner(runnerOpts...)

	fmt.Printf("Simulating the Table 3 benchmark set (%d cores, scale %.2f)...\n\n", opts.Cores, opts.Scale)
	runs, err := runner.RunTable3Benchmarks(opts)
	check(err)
	cppRuns, err := runner.RunCpp11Benchmarks(opts)
	check(err)
	allRuns := append(append([]*rmwtso.BenchmarkRun{}, runs...), cppRuns...)

	if *all || *table == "3" {
		fmt.Println(rmwtso.RenderTable3(rmwtso.Table3FromRuns(runs)))
		fmt.Println()
	}
	figA, figB := rmwtso.Fig11FromRuns(allRuns)
	if *all || *fig == "11a" {
		fmt.Println(rmwtso.RenderFig11a(figA))
		fmt.Println()
	}
	if *all || *fig == "11b" {
		fmt.Println(rmwtso.RenderFig11b(figB))
		fmt.Println()
	}
	if *all || *summary {
		fmt.Println(rmwtso.Summarize(figA, figB).Render())
	}
	reportCache(cache)
}

// reportCache prints the cache traffic counters on stderr (never stdout,
// so cached and uncached table output stays byte-identical).
func reportCache(cache *rmwtso.Cache) {
	if cache == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "cache: %s (dir %s)\n", cache.Stats(), cache.Dir())
}

// flagWasSet reports whether the named flag was given explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// fatalUsage reports a bad flag combination and exits with the
// conventional usage status.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}
