// Command litmus model-checks litmus tests against the TSO-with-RMW memory
// models of the paper.
//
// Usage:
//
//	litmus -suite            run the full registered suite (paper figures + classics)
//	litmus -filter 'SB*'     run the registered tests matching a glob
//	litmus -test <name>      run one registered test by name
//	litmus -file <path>      run a test from a litmus file
//	litmus -type type-2      restrict to one atomicity type (default: all three)
//	litmus -j 8              worker-pool parallelism (default: GOMAXPROCS)
//	litmus -enum-workers 8   fan each verdict's enumeration across 8 goroutines
//	litmus -v                also stream the outcome sets as verdicts finish
//	litmus -cache            serve repeated verdicts from ~/.cache/rmwtso
//	litmus -cache-dir DIR    serve repeated verdicts from a cache under DIR
//	litmus -cache-clear      clear the cache directory first
//
// -j parallelizes across verdicts (one per test and atomicity type);
// -enum-workers parallelizes inside one verdict by partitioning its rf×ws
// candidate space, which is what helps when a single IRIW-sized program
// dominates the wall clock. The default, 0, picks per program: GOMAXPROCS
// for large candidate spaces, 1 for small ones.
//
// A verdict is a pure function of the test's canonical rendering and the
// atomicity type, so with -cache repeated checks (across processes, when
// the disk tier is on) replay the stored outcome sets instead of
// enumerating; hit counters are reported on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/pkg/rmwtso"
)

func main() {
	var (
		suite    = flag.Bool("suite", false, "run the full registered suite")
		filter   = flag.String("filter", "", "run the registered tests matching a glob pattern (e.g. 'SB*')")
		testName = flag.String("test", "", "run one registered test by name")
		file     = flag.String("file", "", "run a test parsed from a litmus file")
		typeName = flag.String("type", "", "atomicity type to check (type-1, type-2, type-3); default all")
		par      = flag.Int("j", 0, "worker-pool parallelism (default: GOMAXPROCS)")
		enumW    = flag.Int("enum-workers", 0, "goroutines per verdict's candidate enumeration (default: auto by candidate count)")
		verbose  = flag.Bool("v", false, "stream outcome sets as verdicts finish")
		cacheOn  = flag.Bool("cache", false, "cache verdicts (default directory: ~/.cache/rmwtso)")
		cacheDir = flag.String("cache-dir", "", "cache verdicts under this directory (implies -cache)")
		cacheClr = flag.Bool("cache-clear", false, "clear the cache directory before running (implies -cache)")
	)
	flag.Parse()

	if *par < 0 {
		fatalUsage(fmt.Errorf("-j must be non-negative, got %d", *par))
	}
	if *enumW < 0 {
		fatalUsage(fmt.Errorf("-enum-workers must be non-negative, got %d", *enumW))
	}

	cache, err := rmwtso.OpenCacheFromFlags(*cacheOn, *cacheDir, *cacheClr)
	if err != nil {
		fatal(err)
	}

	var opts []rmwtso.Option
	if cache != nil {
		opts = append(opts, rmwtso.WithCache(cache))
	}
	if *typeName != "" {
		t, err := rmwtso.ParseAtomicityType(*typeName)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, rmwtso.WithRMWTypes(t))
	}
	if *par > 0 {
		opts = append(opts, rmwtso.WithParallelism(*par))
	}
	if *enumW > 0 {
		opts = append(opts, rmwtso.WithEnumWorkers(*enumW))
	}
	if *verbose {
		opts = append(opts, rmwtso.WithObserver(func(e rmwtso.Event) {
			r := e.Litmus
			if r == nil {
				return
			}
			fmt.Printf("%s under %s: condition %s -> %v\n", r.Test.Name, r.Atomicity, r.Test.Cond, r.Holds)
			for _, key := range r.Outcomes.Keys() {
				fmt.Printf("    %s\n", key)
			}
		}))
	}

	var view *rmwtso.SuiteView
	switch {
	case *suite:
		view = rmwtso.Suite()
	case *filter != "":
		view = rmwtso.Suite().Filter(*filter)
		if view.Err() == nil && view.Len() == 0 {
			fatal(fmt.Errorf("no registered test matches %q; available tests:\n  %s",
				*filter, strings.Join(rmwtso.Suite().Names(), "\n  ")))
		}
	case *testName != "":
		t := rmwtso.FindTest(*testName)
		if t == nil {
			fatal(fmt.Errorf("unknown test %q; available tests:\n  %s",
				*testName, strings.Join(rmwtso.Suite().Names(), "\n  ")))
		}
		view = rmwtso.TestsOf(t)
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		t, err := rmwtso.ParseTest(string(data))
		if err != nil {
			fatal(err)
		}
		view = rmwtso.TestsOf(t)
	default:
		flag.Usage()
		os.Exit(2)
	}

	results, err := view.Run(opts...)
	if err != nil {
		fatal(err)
	}
	mismatches := 0
	for _, r := range results {
		if !r.Matches {
			mismatches++
		}
	}
	fmt.Print(rmwtso.Report(results))
	if cache != nil {
		fmt.Fprintf(os.Stderr, "litmus: cache: %s (dir %s)\n", cache.Stats(), cache.Dir())
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "%d result(s) do not match their recorded expectation\n", mismatches)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "litmus:", err)
	os.Exit(1)
}

// fatalUsage reports a bad flag value and exits with the usage status.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "litmus:", err)
	os.Exit(2)
}
