// Command litmus model-checks litmus tests against the TSO-with-RMW memory
// models of the paper.
//
// Usage:
//
//	litmus -suite            run the built-in suite (paper figures + classics)
//	litmus -test <name>      run one built-in test by name
//	litmus -file <path>      run a test from a litmus file
//	litmus -type type-2      restrict to one atomicity type (default: all three)
//	litmus -v                also print the outcome sets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/litmus"
)

func main() {
	var (
		suite    = flag.Bool("suite", false, "run the full built-in suite")
		testName = flag.String("test", "", "run one built-in test by name")
		file     = flag.String("file", "", "run a test parsed from a litmus file")
		typeName = flag.String("type", "", "atomicity type to check (type-1, type-2, type-3); default all")
		verbose  = flag.Bool("v", false, "print outcome sets")
	)
	flag.Parse()

	types := core.AllTypes()
	if *typeName != "" {
		t, err := core.ParseAtomicityType(*typeName)
		if err != nil {
			fatal(err)
		}
		types = []core.AtomicityType{t}
	}

	var tests []*litmus.Test
	switch {
	case *suite:
		tests = litmus.AllTests()
	case *testName != "":
		t := litmus.FindTest(*testName)
		if t == nil {
			fatal(fmt.Errorf("unknown test %q; available tests:\n  %s", *testName, strings.Join(testNames(), "\n  ")))
		}
		tests = []*litmus.Test{t}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		t, err := litmus.Parse(string(data))
		if err != nil {
			fatal(err)
		}
		tests = []*litmus.Test{t}
	default:
		flag.Usage()
		os.Exit(2)
	}

	mismatches := 0
	var results []litmus.Result
	for _, test := range tests {
		for _, typ := range types {
			r, err := test.Run(typ)
			if err != nil {
				fatal(err)
			}
			results = append(results, r)
			if !r.Matches {
				mismatches++
			}
			if *verbose {
				fmt.Printf("%s under %s: condition %s -> %v\n", test.Name, typ, test.Cond, r.Holds)
				for _, key := range r.Outcomes.Keys() {
					fmt.Printf("    %s\n", key)
				}
			}
		}
	}
	fmt.Print(litmus.Report(results))
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "%d result(s) do not match their recorded expectation\n", mismatches)
		os.Exit(1)
	}
}

func testNames() []string {
	var out []string
	for _, t := range litmus.AllTests() {
		out = append(out, t.Name)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "litmus:", err)
	os.Exit(1)
}
