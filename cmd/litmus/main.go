// Command litmus model-checks litmus tests against the TSO-with-RMW memory
// models of the paper.
//
// Usage:
//
//	litmus -suite            run the full registered suite (paper figures + classics)
//	litmus -filter 'SB*'     run the registered tests matching a glob
//	litmus -test <name>      run one registered test by name
//	litmus -file <path>      run a test from a litmus file
//	litmus -type type-2      restrict to one atomicity type (default: all three)
//	litmus -j 8              worker-pool parallelism (default: GOMAXPROCS)
//	litmus -enum-workers 8   fan each verdict's enumeration across 8 goroutines
//	litmus -v                also stream the outcome sets as verdicts finish
//	litmus -shard 0/3        run only verdict shard 0 of 3
//	litmus -list-units       print the verdict grid (unit IDs) and exit
//	litmus -format json      emit verdicts as JSON (ascii, csv too)
//	litmus -cache            serve repeated verdicts from ~/.cache/rmwtso
//	litmus -cache-dir DIR    serve repeated verdicts from a cache under DIR
//	litmus -cache-clear      clear the cache directory first
//
// -j parallelizes across verdicts (one per test and atomicity type);
// -enum-workers parallelizes inside one verdict by partitioning its rf×ws
// candidate space, which is what helps when a single IRIW-sized program
// dominates the wall clock. The default, 0, picks per program: GOMAXPROCS
// for large candidate spaces, 1 for small ones.
//
// The (test, type) verdict grid is a deterministic unit plan just like
// the simulation sweep: every unit's ID derives from the verdict's
// content-addressed cache key, so -shard i/n splits one suite across
// processes (disjoint, collectively exhaustive, same IDs everywhere),
// -list-units audits the boundaries first, and -format json/csv emits
// unit-tagged verdicts that downstream tooling can merge by ID.
//
// A verdict is a pure function of the test's canonical rendering and the
// atomicity type, so with -cache repeated checks (across processes, when
// the disk tier is on) replay the stored outcome sets instead of
// enumerating; hit counters are reported on stderr.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/cliflags"
	"repro/pkg/rmwtso"
)

func main() {
	var (
		suite    = flag.Bool("suite", false, "run the full registered suite")
		filter   = flag.String("filter", "", "run the registered tests matching a glob pattern (e.g. 'SB*')")
		testName = flag.String("test", "", "run one registered test by name")
		file     = flag.String("file", "", "run a test parsed from a litmus file")
		typeName = flag.String("type", "", "atomicity type to check (type-1, type-2, type-3); default all")
		par      = flag.Int("j", 0, "worker-pool parallelism (default: GOMAXPROCS)")
		enumW    = flag.Int("enum-workers", 0, "goroutines per verdict's candidate enumeration (default: auto by candidate count)")
		verbose  = flag.Bool("v", false, "stream outcome sets as verdicts finish")
		shardArg = flag.String("shard", "", "run only verdict shard i/n")
		listU    = flag.Bool("list-units", false, "print the verdict grid (unit ID, test, type) and exit")
	)
	formatFlag := cliflags.RegisterFormat(flag.CommandLine, "format", rmwtso.FormatASCII,
		"verdict output format: ascii, json or csv",
		rmwtso.FormatASCII, rmwtso.FormatJSON, rmwtso.FormatCSV)
	cacheFlags := cliflags.RegisterCache(flag.CommandLine, "verdicts")
	flag.Parse()
	format := formatFlag.Value

	if err := cliflags.NonNegativeInt("j", *par); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.NonNegativeInt("enum-workers", *enumW); err != nil {
		fatalUsage(err)
	}
	if err := formatFlag.Validate(); err != nil {
		fatalUsage(err)
	}
	shard := rmwtso.FullShard()
	if *shardArg != "" {
		var err error
		if shard, err = rmwtso.ParseShard(*shardArg); err != nil {
			fatalUsage(err)
		}
	}

	cache, err := rmwtso.OpenCacheFromFlags(*cacheFlags.Enabled, *cacheFlags.Dir, *cacheFlags.Clear)
	if err != nil {
		fatal(err)
	}

	types := rmwtso.AllTypes()
	var opts []rmwtso.Option
	if cache != nil {
		opts = append(opts, rmwtso.WithCache(cache))
	}
	if *typeName != "" {
		t, err := rmwtso.ParseAtomicityType(*typeName)
		if err != nil {
			fatal(err)
		}
		types = []rmwtso.AtomicityType{t}
		opts = append(opts, rmwtso.WithRMWTypes(t))
	}
	if *par > 0 {
		opts = append(opts, rmwtso.WithParallelism(*par))
	}
	if *enumW > 0 {
		opts = append(opts, rmwtso.WithEnumWorkers(*enumW))
	}
	if *verbose {
		opts = append(opts, rmwtso.WithObserver(func(e rmwtso.Event) {
			r := e.Litmus
			if r == nil {
				return
			}
			fmt.Printf("%s: %s under %s: condition %s -> %v\n", r.Unit, r.Test.Name, r.Atomicity, r.Test.Cond, r.Holds)
			for _, key := range r.Outcomes.Keys() {
				fmt.Printf("    %s\n", key)
			}
		}))
	}

	var view *rmwtso.SuiteView
	switch {
	case *suite:
		view = rmwtso.Suite()
	case *filter != "":
		view = rmwtso.Suite().Filter(*filter)
		if view.Err() == nil && view.Len() == 0 {
			fatal(fmt.Errorf("no registered test matches %q; available tests:\n  %s",
				*filter, strings.Join(rmwtso.Suite().Names(), "\n  ")))
		}
	case *testName != "":
		t := rmwtso.FindTest(*testName)
		if t == nil {
			fatal(fmt.Errorf("unknown test %q; available tests:\n  %s",
				*testName, strings.Join(rmwtso.Suite().Names(), "\n  ")))
		}
		view = rmwtso.TestsOf(t)
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		t, err := rmwtso.ParseTest(string(data))
		if err != nil {
			fatal(err)
		}
		view = rmwtso.TestsOf(t)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *listU {
		if err := view.Err(); err != nil {
			fatal(err)
		}
		listUnits(view, types, shard)
		return
	}

	results, err := view.RunShard(shard, opts...)
	if err != nil {
		fatal(err)
	}
	mismatches := 0
	for _, r := range results {
		if !r.Matches {
			mismatches++
		}
	}
	if err := emitResults(os.Stdout, results, *format); err != nil {
		fatal(err)
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "litmus: cache: %s (dir %s)\n", cache.Stats(), cache.Dir())
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "%d result(s) do not match their recorded expectation\n", mismatches)
		os.Exit(1)
	}
}

// listUnits prints the verdict grid the shard covers, so operators can
// audit shard boundaries before splitting a suite across processes.
func listUnits(view *rmwtso.SuiteView, types []rmwtso.AtomicityType, shard rmwtso.Shard) {
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "UNIT\tTEST\tTYPE\n")
	total, selected := 0, 0
	pos := 0
	for _, t := range view.Tests() {
		for _, typ := range types {
			id := rmwtso.UnitID(rmwtso.LitmusCacheKey(t, typ).UnitID())
			total++
			if shard.Covers(pos, id) {
				selected++
				fmt.Fprintf(w, "%s\t%s\t%s\n", id, t.Name, typ)
			}
			pos++
		}
	}
	w.Flush()
	fmt.Printf("%d of %d verdict units\n", selected, total)
}

// verdictRecord is the machine-readable view of one litmus verdict.
type verdictRecord struct {
	Unit       string   `json:"unit"`
	Test       string   `json:"test"`
	Type       string   `json:"type"`
	Holds      bool     `json:"holds"`
	Expected   *bool    `json:"expected,omitempty"`
	Matches    bool     `json:"matches"`
	Valid      int      `json:"valid_executions"`
	Candidates int      `json:"candidates"`
	Outcomes   []string `json:"outcomes"`
	CacheHit   bool     `json:"cache_hit,omitempty"`
}

// record flattens a result for the JSON and CSV encodings.
func record(r rmwtso.TestResult) verdictRecord {
	return verdictRecord{
		Unit:       r.Unit,
		Test:       r.Test.Name,
		Type:       r.Atomicity.String(),
		Holds:      r.Holds,
		Expected:   r.Expected,
		Matches:    r.Matches,
		Valid:      r.ValidExecutions,
		Candidates: r.Candidates,
		Outcomes:   r.Outcomes.Keys(),
		CacheHit:   r.CacheHit,
	}
}

// emitResults renders the verdicts in the chosen format: the fixed-width
// report (ascii), one JSON array (json), or one row per verdict with the
// outcome set joined by "; " (csv).
func emitResults(w *os.File, results []rmwtso.TestResult, format string) error {
	switch format {
	case rmwtso.FormatJSON:
		recs := make([]verdictRecord, len(results))
		for i, r := range results {
			recs[i] = record(r)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(recs)
	case rmwtso.FormatCSV:
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"unit", "test", "type", "holds", "expected", "matches", "valid_executions", "candidates", "outcomes", "cache_hit"}); err != nil {
			return err
		}
		for _, r := range results {
			rec := record(r)
			expected := ""
			if rec.Expected != nil {
				expected = fmt.Sprintf("%v", *rec.Expected)
			}
			if err := cw.Write([]string{rec.Unit, rec.Test, rec.Type,
				fmt.Sprintf("%v", rec.Holds), expected, fmt.Sprintf("%v", rec.Matches),
				fmt.Sprintf("%d", rec.Valid), fmt.Sprintf("%d", rec.Candidates),
				strings.Join(rec.Outcomes, "; "), fmt.Sprintf("%v", rec.CacheHit)}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	_, err := fmt.Fprint(w, rmwtso.RenderLitmusResults(results))
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "litmus:", err)
	os.Exit(1)
}

// fatalUsage reports a bad flag value and exits with the usage status.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "litmus:", err)
	os.Exit(2)
}
