// Command rmwsim runs one benchmark workload on the chip-multiprocessor
// simulator and prints the run's statistics, including the per-RMW cost
// split. Workload traces are streamed from the generator one episode at a
// time, so even very large -scale values run at bounded memory.
//
// Usage:
//
//	rmwsim -bench bayes -type type-2
//	rmwsim -bench wsq-mst -replace read -type type-3 -cores 16
//	rmwsim -bench fig10 -type type-2 -naive       demonstrate the write-deadlock
//	rmwsim -bench fig10 -check                    model-check the pattern first
//	rmwsim -bench bayes -sweep                    compare all three RMW types
//	rmwsim -list                                   list the available benchmarks
//
// -check (fig10 only) model-checks the write-deadlock litmus test before
// simulating: the cyclic outcome is forbidden under every atomicity type,
// which is exactly why the naive implementation that waits for it wedges.
// -enum-workers fans the verdict's candidate enumeration across that many
// goroutines (0 picks by candidate count).
//
// -cache (or -cache-dir DIR) serves repeated runs from the
// content-addressed result cache: a run is keyed by (config, trace, seed,
// scale, RMW type), so an identical invocation replays the stored
// statistics instead of simulating. -cache-clear empties the cache
// directory first.
//
// -format json emits each run as one JSON object tagged with its stable
// unit ID (the same identity cmd/experiments plans and shards by), so a
// single rmwsim run slots into the same dashboards and merge tooling as
// a full sweep; the default, ascii, prints the human-readable statistics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliflags"
	"repro/pkg/rmwtso"
)

// runRecord is the machine-readable view of one simulator run.
type runRecord struct {
	Unit     string            `json:"unit,omitempty"`
	Trace    string            `json:"trace"`
	Type     string            `json:"type"`
	CacheHit bool              `json:"cache_hit,omitempty"`
	Result   *rmwtso.SimResult `json:"result"`
}

// emitRun prints one finished run in the chosen format.
func emitRun(format string, rec runRecord) {
	if format == rmwtso.FormatJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(rec.Result.String())
}

func main() {
	var (
		benchName = flag.String("bench", "radiosity", "benchmark to run (see -list), or 'fig10' for the write-deadlock pattern")
		typeName  = flag.String("type", "type-1", "RMW implementation: type-1, type-2 or type-3")
		replace   = flag.String("replace", "none", "wsq-mst C/C++11 variant: none, read or write")
		cores     = flag.Int("cores", 32, "number of simulated cores")
		scale     = flag.Float64("scale", 1.0, "iteration-count scale factor")
		seed      = flag.Int64("seed", 20130601, "workload generation seed")
		naive     = flag.Bool("naive", false, "disable the bloom-filter deadlock avoidance (type-2/3 only)")
		sweep     = flag.Bool("sweep", false, "run the trace under all three RMW types in parallel")
		check     = flag.Bool("check", false, "model-check the fig10 litmus test before simulating it")
		enumW     = flag.Int("enum-workers", 0, "goroutines per -check verdict's enumeration (default: auto by candidate count)")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
	)
	formatFlag := cliflags.RegisterFormat(flag.CommandLine, "format", rmwtso.FormatASCII,
		"run output format: ascii or json",
		rmwtso.FormatASCII, rmwtso.FormatJSON)
	cacheFlags := cliflags.RegisterCache(flag.CommandLine, "simulation results")
	flag.Parse()
	format := formatFlag.Value

	if *list {
		fmt.Println("Benchmarks:", strings.Join(rmwtso.ProfileNames(), ", "), "and fig10")
		return
	}

	// Reject values the workload generator and heuristics would otherwise
	// accept silently as garbage.
	if err := cliflags.PositiveInt("cores", *cores); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.PositiveFloat("scale", *scale); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.NonNegativeInt("enum-workers", *enumW); err != nil {
		fatalUsage(err)
	}
	if err := formatFlag.Validate(); err != nil {
		fatalUsage(err)
	}

	cache, err := rmwtso.OpenCacheFromFlags(*cacheFlags.Enabled, *cacheFlags.Dir, *cacheFlags.Clear)
	if err != nil {
		fatal(err)
	}

	typ, err := rmwtso.ParseAtomicityType(*typeName)
	if err != nil {
		fatal(err)
	}
	if *check {
		if *benchName != "fig10" {
			fatal(fmt.Errorf("-check model-checks the fig10 write-deadlock pattern; it cannot be combined with -bench %s", *benchName))
		}
		t := rmwtso.FindTest("write-deadlock (Fig. 10)")
		if t == nil {
			fatal(fmt.Errorf("the write-deadlock litmus test is not registered"))
		}
		var opts []rmwtso.Option
		if *enumW > 0 {
			opts = append(opts, rmwtso.WithEnumWorkers(*enumW))
		}
		if cache != nil {
			// The same cache that replays simulation results also replays
			// the model-checking verdict.
			opts = append(opts, rmwtso.WithCache(cache))
		}
		results, err := rmwtso.TestsOf(t).Run(opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Println("semantic verdict for the Fig. 10 pattern (the cyclic outcome must be forbidden):")
		fmt.Print(rmwtso.RenderLitmusResults(results))
		fmt.Println()
	}
	cfg := rmwtso.DefaultSimConfig().WithCores(*cores)
	cfg.DisableDeadlockAvoidance = *naive

	source, err := buildSource(*benchName, *replace, *cores, *scale, *seed)
	if err != nil {
		fatal(err)
	}

	if *sweep {
		// -sweep compares the RMW types, so an explicit -type contradicts
		// it; reject the combination instead of silently ignoring one.
		typeSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "type" {
				typeSet = true
			}
		})
		if typeSet {
			fatal(fmt.Errorf("-sweep runs all three RMW types and cannot be combined with -type"))
		}
		runner := rmwtso.NewRunner(rmwtso.WithCache(cache))
		runs, err := runner.SweepSourceCached(cfg, source, *seed, *scale)
		if err != nil {
			fatal(err)
		}
		for _, run := range runs {
			if run.CacheHit {
				fmt.Fprintf(os.Stderr, "rmwsim: %s under %s served from cache\n", run.Trace, run.Type)
			}
			emitRun(*format, runRecord{Unit: string(run.Unit), Trace: run.Trace, Type: run.Type.String(), CacheHit: run.CacheHit, Result: run.Result})
		}
		reportCache(cache)
		return
	}

	runCfg := cfg.WithRMWType(typ)
	res, hit, err := rmwtso.SimulateSourceCached(cache, runCfg, source, *seed, *scale)
	if err != nil {
		fatal(err)
	}
	if hit {
		fmt.Fprintln(os.Stderr, "rmwsim: result served from cache")
	}
	emitRun(*format, runRecord{
		Unit:     rmwtso.SimCacheKey(runCfg, source, *seed, *scale).UnitID(),
		Trace:    source.Name(),
		Type:     typ.String(),
		CacheHit: hit,
		Result:   res,
	})
	reportCache(cache)
	if res.Deadlocked {
		fmt.Println("the run deadlocked: this is the Fig. 10 write-deadlock that the bloom-filter protocol prevents")
		os.Exit(1)
	}
}

// reportCache prints the cache counters on stderr when caching is on.
func reportCache(cache *rmwtso.Cache) {
	if cache == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "rmwsim: cache: %s (dir %s)\n", cache.Stats(), cache.Dir())
}

func buildSource(bench, replace string, cores int, scale float64, seed int64) (rmwtso.TraceSource, error) {
	if bench == "fig10" {
		if cores < 2 {
			return nil, fmt.Errorf("the fig10 pattern needs at least 2 cores, got %d", cores)
		}
		// The Fig. 10 pattern is a handful of hand-built ops; its
		// materialized trace adapts to the streaming interface.
		return rmwtso.Fig10Trace(cores).Source(), nil
	}
	profile, err := rmwtso.FindProfile(bench)
	if err != nil {
		return nil, err
	}
	// Scale through the harness' own rule (ScaledProfile) rather than a
	// local copy: rmwsim and cmd/experiments share one result cache, so
	// the same -scale must mean the same workload in both binaries.
	profile = rmwtso.Options{Scale: scale}.ScaledProfile(profile)
	gen := rmwtso.Generator{Cores: cores, Seed: seed}
	switch replace {
	case "none", "":
	case "read":
		gen.Replacement = rmwtso.ReadReplacement
	case "write":
		gen.Replacement = rmwtso.WriteReplacement
	default:
		return nil, fmt.Errorf("unknown replacement %q (want none, read or write)", replace)
	}
	return gen.Source(profile)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmwsim:", err)
	os.Exit(1)
}

// fatalUsage reports a bad flag value and exits with the usage status.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "rmwsim:", err)
	os.Exit(2)
}
