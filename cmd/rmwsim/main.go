// Command rmwsim runs one benchmark workload on the chip-multiprocessor
// simulator and prints the run's statistics, including the per-RMW cost
// split.
//
// Usage:
//
//	rmwsim -bench bayes -type type-2
//	rmwsim -bench wsq-mst -replace read -type type-3 -cores 16
//	rmwsim -bench fig10 -type type-2 -naive       demonstrate the write-deadlock
//	rmwsim -list                                   list the available benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "radiosity", "benchmark to run (see -list), or 'fig10' for the write-deadlock pattern")
		typeName  = flag.String("type", "type-1", "RMW implementation: type-1, type-2 or type-3")
		replace   = flag.String("replace", "none", "wsq-mst C/C++11 variant: none, read or write")
		cores     = flag.Int("cores", 32, "number of simulated cores")
		scale     = flag.Float64("scale", 1.0, "iteration-count scale factor")
		seed      = flag.Int64("seed", 20130601, "workload generation seed")
		naive     = flag.Bool("naive", false, "disable the bloom-filter deadlock avoidance (type-2/3 only)")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Benchmarks:", strings.Join(workload.ProfileNames(), ", "), "and fig10")
		return
	}

	typ, err := core.ParseAtomicityType(*typeName)
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig().WithCores(*cores).WithRMWType(typ)
	cfg.DisableDeadlockAvoidance = *naive

	trace, err := buildTrace(*benchName, *replace, *cores, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	simulator, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := simulator.Run(trace)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.String())
	if res.Deadlocked {
		fmt.Println("the run deadlocked: this is the Fig. 10 write-deadlock that the bloom-filter protocol prevents")
		os.Exit(1)
	}
}

func buildTrace(bench, replace string, cores int, scale float64, seed int64) (*sim.Trace, error) {
	if bench == "fig10" {
		return fig10Trace(cores), nil
	}
	profile, err := workload.FindProfile(bench)
	if err != nil {
		return nil, err
	}
	if scale > 0 && scale != 1.0 {
		n := int(float64(profile.Iterations) * scale)
		if n < 8 {
			n = 8
		}
		profile.Iterations = n
	}
	gen := workload.Generator{Cores: cores, Seed: seed}
	switch replace {
	case "none", "":
	case "read":
		gen.Replacement = workload.ReadReplacement
	case "write":
		gen.Replacement = workload.WriteReplacement
	default:
		return nil, fmt.Errorf("unknown replacement %q (want none, read or write)", replace)
	}
	return gen.Generate(profile)
}

// fig10Trace reproduces the write-deadlock pattern of the paper's Fig. 10
// on the first two cores: each core writes a line the other core owns and
// then RMWs a line it owns itself.
func fig10Trace(cores int) *sim.Trace {
	const lineA, lineB = 0x10000, 0x20000
	tr := sim.NewTrace("fig10", cores)
	tr.Append(0, sim.RMW(lineB), sim.Compute(5000))
	tr.Append(1, sim.RMW(lineA), sim.Compute(5000))
	tr.Append(0, sim.Write(lineA), sim.RMW(lineB), sim.Fence(), sim.Compute(1))
	tr.Append(1, sim.Write(lineB), sim.RMW(lineA), sim.Fence(), sim.Compute(1))
	return tr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmwsim:", err)
	os.Exit(1)
}
