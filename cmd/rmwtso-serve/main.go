// Command rmwtso-serve runs the long-running HTTP query/ops service over
// the execution engine: the batch pipeline as a server.
//
// Usage:
//
//	rmwtso-serve -addr :8080                      serve the API
//	rmwtso-serve -addr :8080 -cache               back it with the result cache
//	rmwtso-serve -max-jobs 4 -retain 30m          tune the job registry
//	rmwtso-serve -drain-timeout 60s -artifact-dir /var/lib/rmwtso
//	                                              drain budget + artifact flush on SIGTERM
//
// The API (all JSON unless noted):
//
//	POST /v1/jobs                     submit {"plan":{"preset":"quick"}} or {"litmus":{"name":...}}
//	GET  /v1/jobs                     list jobs
//	GET  /v1/jobs/{id}                job status + live metrics
//	GET  /v1/jobs/{id}/events         per-unit progress as Server-Sent Events
//	GET  /v1/results/{unitID}         absorbed unit result
//	GET  /v1/results/by-key/{digest}  content-key lookup (result store, then cache)
//	GET  /v1/reports/{jobID}?format=ascii|json|csv
//	                                  finished sweep's report, byte-identical to cmd/experiments
//	*    /v1/coord/{jobID}/...        hosted coordinator protocol for fleet-mode jobs
//	GET  /healthz, /readyz            liveness / readiness (503 while draining)
//	GET  /metrics                     Prometheus text format
//
// Submitting {"mode":"fleet"} hosts the sweep's pull queue under
// /v1/coord/{jobID}/, so `experiments -worker http://host:8080/v1/coord/{jobID}`
// processes drain it — one process serves the query API and the fleet.
//
// On SIGTERM/SIGINT the server drains gracefully: readiness flips to 503,
// submits are refused, in-flight jobs get -drain-timeout to finish (then
// are cancelled), and finished plan jobs' shard artifacts are flushed to
// -artifact-dir so completed units are never lost.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/pkg/rmwtso"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port)")
		par      = flag.Int("j", 0, "simulation worker-pool parallelism (default: GOMAXPROCS)")
		enumW    = flag.Int("enum-workers", 0, "goroutines per model-checking verdict (default: auto by candidate count)")
		maxJobs  = flag.Int("max-jobs", 0, "jobs allowed to run concurrently before submits get 429 (default 8)")
		retain   = flag.Duration("retain", 0, "how long finished jobs stay queryable (default 1h)")
		drainT   = flag.Duration("drain-timeout", 0, "graceful-drain budget for in-flight jobs on shutdown (default 30s)")
		artifact = flag.String("artifact-dir", "", "flush finished plan jobs' shard artifacts here during drain")
	)
	cacheFlags := cliflags.RegisterCache(flag.CommandLine, "simulation results and verdicts")
	flag.Parse()

	if err := cliflags.NonNegativeInt("j", *par); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.NonNegativeInt("enum-workers", *enumW); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.PositiveIntIfSet(flag.CommandLine, "max-jobs", *maxJobs); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.PositiveDurationIfSet(flag.CommandLine, "retain", *retain); err != nil {
		fatalUsage(err)
	}
	if err := cliflags.PositiveDurationIfSet(flag.CommandLine, "drain-timeout", *drainT); err != nil {
		fatalUsage(err)
	}

	cache, err := rmwtso.OpenCacheFromFlags(*cacheFlags.Enabled, *cacheFlags.Dir, *cacheFlags.Clear)
	check(err)

	srv, err := rmwtso.NewServer(rmwtso.ServerConfig{
		Addr:           *addr,
		Parallelism:    *par,
		EnumWorkers:    *enumW,
		Cache:          cache,
		MaxJobs:        *maxJobs,
		RetainFinished: *retain,
		DrainTimeout:   *drainT,
		ArtifactDir:    *artifact,
	})
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	check(err)
	fmt.Fprintf(os.Stderr, "rmwtso-serve: serving on %s\n", ln.Addr())
	start := time.Now()
	err = srv.Serve(ctx, ln)
	fmt.Fprintf(os.Stderr, "rmwtso-serve: drained and stopped after %s\n", time.Since(start).Round(time.Millisecond))
	check(err)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmwtso-serve:", err)
		os.Exit(1)
	}
}

// fatalUsage reports a bad flag value and exits with the usage status.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "rmwtso-serve:", err)
	os.Exit(2)
}
