// Example coordsweep demonstrates the dynamically coordinated sweep:
// three pull workers drain the plan's units from a lease queue, one
// worker is killed mid-sweep by fault injection, and the sweep still
// completes — the crashed worker's unit is recovered through lease
// expiry and the final report is byte-identical to a static, unsharded
// run. A second sweep poisons one unit to show the dead-letter path:
// the sweep terminates instead of hanging, and the partial report lists
// the lost unit explicitly.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/pkg/rmwtso"
)

func main() {
	// A small sweep so the example finishes in seconds; short leases so
	// the injected crash is recovered quickly.
	opts := rmwtso.QuickOptions()
	opts.Cores = 4
	opts.Scale = 0.05
	cfg := rmwtso.CoordinationConfig{
		Workers:      3,
		LeaseTTL:     500 * time.Millisecond,
		MaxAttempts:  3,
		RetryBackoff: 20 * time.Millisecond,
	}

	plan, err := rmwtso.DefaultPlan(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d units, fingerprint %.16s…\n\n", plan.Len(), plan.Fingerprint())

	// The static baseline every coordinated run must reproduce exactly.
	static, err := rmwtso.NewRunner().RunPlan(nil, plan, rmwtso.FullShard())
	if err != nil {
		log.Fatal(err)
	}
	wantRuns, err := plan.Runs(static.Units)
	if err != nil {
		log.Fatal(err)
	}
	want := encode(opts, wantRuns, nil)

	// Coordinated sweep #1: whichever worker draws the fourth unit dies
	// holding it (pull workers self-schedule, so *which* worker that is
	// depends on machine parallelism — the recovery story does not). The
	// observer streams the queue's state transitions as they happen.
	var executions atomic.Int64
	cfg.FaultInjector = func(worker string, u rmwtso.Unit, attempt int) error {
		if executions.Add(1) == 4 {
			fmt.Printf("  !! injecting crash: %s dies holding unit %s\n", worker, u.ID)
			return rmwtso.ErrInjectedCrash
		}
		return nil
	}
	kinds := map[string]int{}
	runner := rmwtso.NewRunner(
		rmwtso.WithCoordinator(cfg),
		rmwtso.WithObserver(func(e rmwtso.Event) {
			if e.Coord == nil {
				return
			}
			kinds[e.Coord.Kind]++ // the Runner serializes observer calls
			switch e.Coord.Kind {
			case "expire", "requeue", "dead-letter":
				fmt.Printf("  %s: unit %s (attempt %d) %s\n",
					e.Coord.Kind, e.Coord.Unit, e.Coord.Attempt, e.Coord.Reason)
			}
		}),
	)
	res, err := runner.RunPlan(nil, plan, rmwtso.FullShard())
	if err != nil {
		log.Fatal(err)
	}
	runs, err := plan.Runs(res.Units)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoordinated sweep drained: %d leases, %d acks, %d expiries, %d requeues\n",
		kinds["lease"], kinds["ack"], kinds["expire"], kinds["requeue"])
	for _, w := range res.Coordination.Workers {
		fmt.Printf("  %-9s completed %2d units (retries %d, expired leases %d)\n",
			w.Worker, w.Units, w.Retries, w.Expired)
	}

	// The differential guarantee: with the coordination section stripped
	// (encode attaches none), the coordinated report is byte-identical.
	if got := encode(opts, runs, nil); !bytes.Equal(got, want) {
		log.Fatal("coordinated report differs from the static run")
	}
	fmt.Println("report byte-identical to the static unsharded run ✓")

	// Coordinated sweep #2: one unit fails every attempt. The sweep
	// terminates with a DeadLetterError instead of hanging, and the
	// partial result still carries every other unit.
	poisoned := plan.Units()[0].ID
	fmt.Printf("\npoisoning unit %s (fails all %d attempts)…\n", poisoned, cfg.MaxAttempts)
	cfg.FaultInjector = func(_ string, u rmwtso.Unit, attempt int) error {
		if u.ID == poisoned {
			return fmt.Errorf("injected poison (attempt %d)", attempt)
		}
		return nil
	}
	_, err = rmwtso.NewRunner(rmwtso.WithCoordinator(cfg)).RunPlan(nil, plan, rmwtso.FullShard())
	dle, ok := err.(*rmwtso.DeadLetterError)
	if !ok {
		log.Fatalf("want *DeadLetterError, got %v", err)
	}
	fmt.Println("sweep terminated:", dle)
	partialRuns, missing, err := plan.RunsPartial(dle.Partial.Units)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial report: %d of %d benchmark groups complete, missing units %v\n",
		len(partialRuns), len(wantRuns), missing)
	for _, d := range dle.Partial.Coordination.DeadLetters {
		fmt.Printf("  dead-lettered: %s (%s under %s) after %d attempts; last: %s\n",
			d.Unit, d.Trace, d.Type, d.Attempts, d.Reasons[len(d.Reasons)-1])
	}
}

// encode renders the report for the byte-identity comparison.
func encode(opts rmwtso.Options, runs []*rmwtso.BenchmarkRun, coord *rmwtso.Coordination) []byte {
	report, err := rmwtso.BuildReport(opts, runs)
	if err != nil {
		log.Fatal(err)
	}
	report.Coordination = coord
	var b bytes.Buffer
	if err := rmwtso.EncodeReport(&b, report, rmwtso.FormatJSON); err != nil {
		log.Fatal(err)
	}
	return b.Bytes()
}
