// Cpp11mapping validates the paper's Table 4 compilation schemes: it
// compiles small C/C++11 programs with SC atomics to TSO under the
// read-write-, read- and write-mappings, model-checks the compiled programs
// under type-1/2/3 RMWs, and reports which combinations are sound -- in
// particular the appendix's result that the write-mapping breaks with
// type-3 RMWs, with the Dekker counterexample printed. The validation
// matrix (program x mapping x atomicity type) is swept in parallel through
// the Runner.
//
// Run with:
//
//	go run ./examples/cpp11mapping
package main

import (
	"fmt"
	"log"

	"repro/pkg/rmwtso"
)

func main() {
	for _, p := range rmwtso.Cpp11ValidationSuite().Programs() {
		fmt.Printf("program %s:\n%s\n", p.Name, p)
		sem, err := rmwtso.AnalyzeCpp11(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("C/C++11-consistent outcomes (%d consistent executions of %d candidates):\n",
			sem.Consistent, sem.Candidates)
		for _, key := range sem.OutcomeKeys() {
			fmt.Printf("  %s\n", key)
		}
		fmt.Println()

		// Sweep the mapping x atomicity matrix for this program in
		// parallel; results come back in (mapping, type) order.
		results, err := rmwtso.NewRunner().ValidateMappings(p)
		if err != nil {
			log.Fatal(err)
		}
		byMapping := map[rmwtso.Mapping][]rmwtso.MappingResult{}
		for _, res := range results {
			byMapping[res.Mapping] = append(byMapping[res.Mapping], res)
		}
		for _, mapping := range rmwtso.AllMappings() {
			compiled, err := rmwtso.CompileCpp11(p, mapping)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s compiles to:\n%s", mapping, compiled)
			for _, res := range byMapping[mapping] {
				fmt.Printf("  %s\n", res)
			}
			fmt.Println()
		}
		fmt.Println("--------------------------------------------------------------")
	}

	fmt.Println("\nSummary (matches the paper's appendix A):")
	fmt.Println("  read-write-mapping: sound with type-1, type-2 and type-3 RMWs")
	fmt.Println("  read-mapping:       sound with type-1, type-2 and type-3 RMWs")
	fmt.Println("  write-mapping:      sound with type-1 and type-2; UNSOUND with type-3")
}
