// Deadlock demonstrates the write-deadlock of the paper's Fig. 10 and the
// bloom-filter addr-list protocol (§3.2) that prevents it: the same
// two-core workload is run once with the naive type-2 implementation
// (deadlock avoidance disabled) and once with the full implementation. The
// naive run wedges -- each core's pending write targets a line locked by
// the other core's RMW -- while the protected run completes by reverting
// the conflicting RMWs to a write-buffer drain.
//
// Run with:
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	"repro/pkg/rmwtso"
)

func run(naive bool) *rmwtso.SimResult {
	cfg := rmwtso.DefaultSimConfig().WithCores(2).WithRMWType(rmwtso.Type2)
	cfg.DisableDeadlockAvoidance = naive
	cfg.MaxCycles = 1_000_000
	res, err := rmwtso.Simulate(cfg, rmwtso.Fig10Trace(2))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Fig. 10 workload: W(x); RMW(y)  ||  W(y); RMW(x)")
	fmt.Println()

	fmt.Println("1) naive type-2 RMWs (deadlock avoidance disabled):")
	naive := run(true)
	if naive.Deadlocked {
		fmt.Println("   DEADLOCK: both pending writes are parked on lines locked by the other core's RMW,")
		fmt.Println("   and each RMW's own write sits behind the parked write in its store buffer.")
	} else {
		fmt.Println("   unexpectedly completed -- the model should deadlock here")
	}
	fmt.Printf("   coherence requests denied by line locks: %d\n\n", naive.DirectoryLockDenials)

	fmt.Println("2) type-2 RMWs with the bloom-filter addr-list protocol:")
	safe := run(false)
	if safe.Deadlocked {
		fmt.Println("   unexpected deadlock -- the protocol failed")
	} else {
		fmt.Printf("   completed in %d cycles\n", safe.Cycles)
		fmt.Printf("   RMWs that reverted to a write-buffer drain: %.1f%% of %d RMWs\n",
			safe.RevertPercent(), safe.TotalRMWs())
		fmt.Printf("   addr-list broadcasts: %d\n", safe.Broadcasts)
	}
}
