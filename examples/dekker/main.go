// Dekker explores every synchronization idiom of the paper's Table 1: the
// four ways of porting Dekker's algorithm to TSO with RMWs (read
// replacement, write replacement, RMWs as barriers to different and to the
// same address) plus the Fig. 10 write-deadlock program, each model-checked
// under the three RMW atomicity definitions. For one interesting case it
// also prints the derived atomicity-induced orderings (the ato relation)
// and a witness global memory order.
//
// Run with:
//
//	go run ./examples/dekker
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/memmodel"
)

func main() {
	tests := litmus.PaperSuite()
	fmt.Println("Table 1 idioms, model-checked under type-1/2/3 RMWs")
	fmt.Println("(\"works\" means the mutual-exclusion-failure outcome is forbidden)")
	fmt.Println()
	for _, test := range tests {
		fmt.Printf("%s\n  %s\n", test.Name, test.Doc)
		for _, typ := range core.AllTypes() {
			res, err := test.Run(typ)
			if err != nil {
				log.Fatal(err)
			}
			works := "works"
			if res.Holds {
				works = "BROKEN (bad outcome allowed)"
			}
			fmt.Printf("    %-7s %s\n", typ, works)
		}
		fmt.Println()
	}

	explainWriteReplacement()
}

// explainWriteReplacement digs into one execution of the Fig. 3 program to
// show the machinery: the ato edges type-2 atomicity induces and a witness
// global memory order, versus the type-3 execution that breaks mutual
// exclusion.
func explainWriteReplacement() {
	fmt.Println("== Why type-2 works for write replacement but type-3 does not ==")
	test := litmus.DekkerWriteReplacement()
	execs, err := memmodel.Enumerate(test.Program)
	if err != nil {
		log.Fatal(err)
	}
	for _, x := range execs {
		regs := x.RegisterValues()
		// The problematic candidate: both observation reads return 0.
		if regs["P0:r0"] != 0 || regs["P1:r1"] != 0 {
			continue
		}
		if !x.Uniproc() {
			continue
		}
		fmt.Println("candidate execution with r0=0 and r1=0:")
		fmt.Print(x)

		m2 := core.NewModel(core.Type2)
		fmt.Println("\nunder type-2 atomicity:")
		fmt.Print(m2.Explain(x))

		m3 := core.NewModel(core.Type3)
		fmt.Println("\nunder type-3 atomicity:")
		fmt.Print(m3.Explain(x))
		return
	}
	log.Fatal("no candidate execution with the bad outcome found")
}
