// Dekker explores every synchronization idiom of the paper's Table 1: the
// four ways of porting Dekker's algorithm to TSO with RMWs (read
// replacement, write replacement, RMWs as barriers to different and to the
// same address) plus the Fig. 10 write-deadlock program, each model-checked
// under the three RMW atomicity definitions. For one interesting case it
// also prints the derived atomicity-induced orderings (the ato relation)
// and a witness global memory order.
//
// Run with:
//
//	go run ./examples/dekker
package main

import (
	"fmt"
	"log"

	"repro/pkg/rmwtso"
)

func main() {
	fmt.Println("Table 1 idioms, model-checked under type-1/2/3 RMWs")
	fmt.Println("(\"works\" means the mutual-exclusion-failure outcome is forbidden)")
	fmt.Println()

	for _, test := range rmwtso.PaperSuite().Tests() {
		fmt.Printf("%s\n  %s\n", test.Name, test.Doc)
		results, err := rmwtso.TestsOf(test).Run()
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			works := "works"
			if res.Holds {
				works = "BROKEN (bad outcome allowed)"
			}
			fmt.Printf("    %-7s %s\n", res.Atomicity, works)
		}
		fmt.Println()
	}

	explainWriteReplacement()
}

// explainWriteReplacement digs into one execution of the Fig. 3 program to
// show the machinery: the ato edges type-2 atomicity induces and a witness
// global memory order, versus the type-3 execution that breaks mutual
// exclusion. The candidate enumeration streams and stops at the first
// matching execution instead of materializing the whole candidate set.
func explainWriteReplacement() {
	fmt.Println("== Why type-2 works for write replacement but type-3 does not ==")
	test := rmwtso.FindTest("dekker-write-replacement (Fig. 3)")
	if test == nil {
		log.Fatal("Fig. 3 test not registered")
	}
	var found *rmwtso.Execution
	err := rmwtso.EnumerateExecutionsFunc(test.Program, func(x *rmwtso.Execution) bool {
		regs := x.RegisterValues()
		// The problematic candidate: both observation reads return 0.
		if regs["P0:r0"] != 0 || regs["P1:r1"] != 0 {
			return true
		}
		if !x.Uniproc() {
			return true
		}
		found = x
		return false // stop the enumeration early
	})
	if err != nil {
		log.Fatal(err)
	}
	if found == nil {
		log.Fatal("no candidate execution with the bad outcome found")
	}
	fmt.Println("candidate execution with r0=0 and r1=0:")
	fmt.Print(found)

	fmt.Println("\nunder type-2 atomicity:")
	fmt.Print(rmwtso.NewModel(rmwtso.Type2).Explain(found))

	fmt.Println("\nunder type-3 atomicity:")
	fmt.Print(rmwtso.NewModel(rmwtso.Type3).Explain(found))
}
