// Lockfree reproduces the paper's C/C++11 experiment on the lock-free
// work-stealing program (wsq-mst): the Chase-Lev deque's pop uses a
// Dekker-like "write bottom; read top" synchronization whose SC accesses
// can be compiled to RMWs either on the read side (wsq-mst_rr) or the write
// side (wsq-mst_wr). The example simulates both variants under the RMW
// types that are sound for them and reports the per-RMW cost and execution
// time, showing that read replacement puts more pending writes in front of
// each RMW (costlier drains for type-1) and that type-3 RMWs give the read
// replacement an extra edge.
//
// Run with:
//
//	go run ./examples/lockfree
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const cores = 8
	profile := workload.WSQProfile()
	profile.Iterations = 120 // keep the example quick

	variants := []struct {
		name        string
		replacement workload.Replacement
		types       []core.AtomicityType
	}{
		// Type-3 RMWs cannot replace SC-atomic writes (§2.5), so the write
		// replacement only runs under type-1 and type-2.
		{"wsq-mst_wr (SC writes -> RMW)", workload.WriteReplacement, []core.AtomicityType{core.Type1, core.Type2}},
		{"wsq-mst_rr (SC reads -> RMW)", workload.ReadReplacement, core.AllTypes()},
	}

	for _, v := range variants {
		fmt.Println(v.name)
		gen := workload.Generator{Cores: cores, Seed: 7, Replacement: v.replacement}
		trace, err := gen.Generate(profile)
		if err != nil {
			log.Fatal(err)
		}
		var baseCost float64
		var baseCycles uint64
		for _, typ := range v.types {
			simulator, err := sim.New(sim.DefaultConfig().WithCores(cores).WithRMWType(typ))
			if err != nil {
				log.Fatal(err)
			}
			res, err := simulator.Run(trace)
			if err != nil {
				log.Fatal(err)
			}
			wb, rawa, total := res.AvgRMWCost()
			fmt.Printf("  %-7s RMW cost %6.1f (WB %5.1f + Ra/Wa %5.1f)  exec %8d cycles  overhead %5.2f%%",
				typ, total, wb, rawa, res.Cycles, res.RMWOverheadPercent())
			if typ == core.Type1 {
				baseCost, baseCycles = total, res.Cycles
			} else {
				fmt.Printf("  (RMW -%.1f%%, exec -%.1f%%)",
					stats.PercentReduction(baseCost, total),
					stats.PercentReduction(float64(baseCycles), float64(res.Cycles)))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
