// Lockfree reproduces the paper's C/C++11 experiment on the lock-free
// work-stealing program (wsq-mst): the Chase-Lev deque's pop uses a
// Dekker-like "write bottom; read top" synchronization whose SC accesses
// can be compiled to RMWs either on the read side (wsq-mst_rr) or the write
// side (wsq-mst_wr). The example sweeps both variants under the RMW
// types that are sound for them and reports the per-RMW cost and execution
// time, showing that read replacement puts more pending writes in front of
// each RMW (costlier drains for type-1) and that type-3 RMWs give the read
// replacement an extra edge.
//
// Run with:
//
//	go run ./examples/lockfree
package main

import (
	"fmt"
	"log"

	"repro/pkg/rmwtso"
)

func main() {
	const cores = 8
	profile := rmwtso.WSQProfile()
	profile.Iterations = 120 // keep the example quick

	variants := []struct {
		name        string
		replacement rmwtso.Replacement
		types       []rmwtso.AtomicityType
	}{
		// Type-3 RMWs cannot replace SC-atomic writes (§2.5), so the write
		// replacement only runs under type-1 and type-2.
		{"wsq-mst_wr (SC writes -> RMW)", rmwtso.WriteReplacement, []rmwtso.AtomicityType{rmwtso.Type1, rmwtso.Type2}},
		{"wsq-mst_rr (SC reads -> RMW)", rmwtso.ReadReplacement, rmwtso.AllTypes()},
	}

	cfg := rmwtso.DefaultSimConfig().WithCores(cores)
	for _, v := range variants {
		fmt.Println(v.name)
		gen := rmwtso.Generator{Cores: cores, Seed: 7, Replacement: v.replacement}
		// Each per-type run streams its own copy of the workload from the
		// source; nothing is materialized even though the runs execute
		// concurrently.
		source, err := gen.Source(profile)
		if err != nil {
			log.Fatal(err)
		}
		runner := rmwtso.NewRunner(rmwtso.WithRMWTypes(v.types...))
		runs, err := runner.SweepSource(cfg, source)
		if err != nil {
			log.Fatal(err)
		}
		var baseCost float64
		var baseCycles uint64
		for _, run := range runs {
			res := run.Result
			wb, rawa, total := res.AvgRMWCost()
			fmt.Printf("  %-7s RMW cost %6.1f (WB %5.1f + Ra/Wa %5.1f)  exec %8d cycles  overhead %5.2f%%",
				run.Type, total, wb, rawa, res.Cycles, res.RMWOverheadPercent())
			if run.Type == rmwtso.Type1 {
				baseCost, baseCycles = total, res.Cycles
			} else {
				fmt.Printf("  (RMW -%.1f%%, exec -%.1f%%)",
					rmwtso.PercentReduction(baseCost, total),
					rmwtso.PercentReduction(float64(baseCycles), float64(res.Cycles)))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
