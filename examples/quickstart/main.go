// Quickstart: the two halves of the library in one small program.
//
// First the semantics side: model-check Dekker's algorithm with its writes
// replaced by RMWs (the paper's Fig. 3) under the three RMW atomicity
// definitions and print which of them preserve mutual exclusion. Then the
// implementation side: run a small lock-based workload on the simulated
// chip multiprocessor with type-1 and type-2 RMWs and print how much
// cheaper the weaker RMW is.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	semantics()
	implementation()
}

// semantics model-checks the Fig. 3 litmus test under type-1/2/3 RMWs.
func semantics() {
	fmt.Println("== Semantics: Dekker's with writes replaced by RMWs (Fig. 3) ==")
	test := litmus.DekkerWriteReplacement()
	fmt.Printf("program:\n%s", test.Program)
	fmt.Printf("mutual exclusion fails iff: %s\n\n", test.Cond)
	for _, typ := range core.AllTypes() {
		result, err := test.Run(typ)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "mutual exclusion preserved"
		if result.Holds {
			verdict = "MUTUAL EXCLUSION CAN FAIL"
		}
		fmt.Printf("  %-7s %-28s (%d valid executions of %d candidates)\n",
			typ, verdict, result.ValidExecutions, result.Candidates)
	}
	fmt.Println()
}

// implementation compares type-1 and type-2 RMW cost on a small simulated
// machine.
func implementation() {
	fmt.Println("== Implementation: per-RMW cost on the simulated CMP ==")
	gen := workload.Generator{Cores: 8, Seed: 1}
	profile, err := workload.FindProfile("radiosity")
	if err != nil {
		log.Fatal(err)
	}
	profile.Iterations = 64 // keep the quickstart fast
	trace, err := gen.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.DefaultConfig().WithCores(8)
	results, err := sim.RunAllTypes(cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	base := results[core.Type1.String()]
	_, _, baseCost := base.AvgRMWCost()
	for _, typ := range core.AllTypes() {
		res := results[typ.String()]
		wb, rawa, total := res.AvgRMWCost()
		fmt.Printf("  %-7s avg RMW cost %6.1f cycles (write-buffer %5.1f + Ra/Wa %5.1f), execution %d cycles",
			typ, total, wb, rawa, res.Cycles)
		if typ != core.Type1 {
			fmt.Printf("  -> %.1f%% cheaper per RMW, %.1f%% faster overall",
				stats.PercentReduction(baseCost, total),
				stats.PercentReduction(float64(base.Cycles), float64(res.Cycles)))
		}
		fmt.Println()
	}
}
