// Quickstart: the two halves of the library in one small program, driven
// entirely through the public pkg/rmwtso API.
//
// First the semantics side: model-check Dekker's algorithm with its writes
// replaced by RMWs (the paper's Fig. 3) under the three RMW atomicity
// definitions and print which of them preserve mutual exclusion. Then the
// implementation side: sweep a small lock-based workload across the RMW
// types on the simulated chip multiprocessor and print how much cheaper
// the weaker RMWs are.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pkg/rmwtso"
)

func main() {
	semantics()
	implementation()
}

// semantics model-checks the Fig. 3 litmus test under type-1/2/3 RMWs.
func semantics() {
	fmt.Println("== Semantics: Dekker's with writes replaced by RMWs (Fig. 3) ==")
	test := rmwtso.FindTest("dekker-write-replacement (Fig. 3)")
	if test == nil {
		log.Fatal("Fig. 3 test not registered")
	}
	fmt.Printf("program:\n%s", test.Program)
	fmt.Printf("mutual exclusion fails iff: %s\n\n", test.Cond)

	results, err := rmwtso.TestsOf(test).Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, result := range results {
		verdict := "mutual exclusion preserved"
		if result.Holds {
			verdict = "MUTUAL EXCLUSION CAN FAIL"
		}
		fmt.Printf("  %-7s %-28s (%d valid executions of %d candidates)\n",
			result.Atomicity, verdict, result.ValidExecutions, result.Candidates)
	}
	fmt.Println()
}

// implementation compares the RMW types' cost on a small simulated
// machine, sweeping the three types in parallel.
func implementation() {
	fmt.Println("== Implementation: per-RMW cost on the simulated CMP ==")
	gen := rmwtso.Generator{Cores: 8, Seed: 1}
	profile, err := rmwtso.FindProfile("radiosity")
	if err != nil {
		log.Fatal(err)
	}
	profile.Iterations = 64 // keep the quickstart fast

	// Source yields the workload lazily, one episode per core at a time;
	// the sweep below never materializes the trace, so the same code runs
	// paper-scale workloads at bounded memory.
	source, err := gen.Source(profile)
	if err != nil {
		log.Fatal(err)
	}

	cfg := rmwtso.DefaultSimConfig().WithCores(8)
	runs, err := rmwtso.NewRunner().SweepSource(cfg, source)
	if err != nil {
		log.Fatal(err)
	}
	base := runs[0].Result // the sweep preserves type order: type-1 first
	_, _, baseCost := base.AvgRMWCost()
	for _, run := range runs {
		wb, rawa, total := run.Result.AvgRMWCost()
		fmt.Printf("  %-7s avg RMW cost %6.1f cycles (write-buffer %5.1f + Ra/Wa %5.1f), execution %d cycles",
			run.Type, total, wb, rawa, run.Result.Cycles)
		if run.Type != rmwtso.Type1 {
			fmt.Printf("  -> %.1f%% cheaper per RMW, %.1f%% faster overall",
				rmwtso.PercentReduction(baseCost, total),
				rmwtso.PercentReduction(float64(base.Cycles), float64(run.Result.Cycles)))
		}
		fmt.Println()
	}
}
