// Example shardsweep demonstrates the Plan/Shard/Report API: it builds
// the deterministic sweep plan, runs it as two shards (the way two
// machines of a fleet would), writes and re-reads the shard artifacts,
// merges them, and verifies the merged report encodes byte-identically
// to an unsharded run — the differential guarantee that makes sharding
// safe.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/pkg/rmwtso"
)

func main() {
	// A small sweep so the example finishes in seconds.
	opts := rmwtso.QuickOptions()
	opts.Cores = 4
	opts.Scale = 0.05

	plan, err := rmwtso.DefaultPlan(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d units, fingerprint %.16s…\n", plan.Len(), plan.Fingerprint())
	for _, u := range plan.Units()[:3] {
		fmt.Printf("  unit %s = %s under %s (seed %d)\n", u.ID, u.Trace, u.Type, u.Seed)
	}
	fmt.Println("  …")

	// Run the plan as two shards, each on its own Runner — in production
	// these are separate processes on separate machines, connected only
	// by the artifact files they ship back.
	dir, err := os.MkdirTemp("", "shardsweep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	paths := make([]string, 2)
	for i := range paths {
		shard := rmwtso.Shard{Index: i, Count: len(paths)}
		res, err := rmwtso.NewRunner().RunPlan(nil, plan, shard)
		if err != nil {
			log.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		if err := res.WriteFile(paths[i]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %s: %d units -> %s\n", shard, len(res.Units), filepath.Base(paths[i]))
	}

	// Merge the artifacts and build the report; compare against an
	// unsharded run of the same plan.
	mergedRuns, err := rmwtso.MergeShardFiles(plan, paths...)
	if err != nil {
		log.Fatal(err)
	}
	merged, err := rmwtso.BuildReport(opts, mergedRuns)
	if err != nil {
		log.Fatal(err)
	}

	full, err := rmwtso.NewRunner().RunPlan(nil, plan, rmwtso.FullShard())
	if err != nil {
		log.Fatal(err)
	}
	fullRuns, err := plan.Runs(full.Units)
	if err != nil {
		log.Fatal(err)
	}
	unsharded, err := rmwtso.BuildReport(opts, fullRuns)
	if err != nil {
		log.Fatal(err)
	}

	for _, format := range rmwtso.ReportFormats() {
		var a, b bytes.Buffer
		if err := rmwtso.EncodeReport(&a, merged, format); err != nil {
			log.Fatal(err)
		}
		if err := rmwtso.EncodeReport(&b, unsharded, format); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s encoding: %6d bytes, merged == unsharded: %v\n",
			format, a.Len(), bytes.Equal(a.Bytes(), b.Bytes()))
	}

	// Merging with a shard missing fails loudly — a partial sweep can
	// never masquerade as a finished one.
	if _, err := rmwtso.MergeShardFiles(plan, paths[0]); err != nil {
		fmt.Printf("merge with a missing shard correctly failed:\n  %v\n", truncate(err.Error(), 120))
	}
}

// truncate shortens long error messages for display.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
