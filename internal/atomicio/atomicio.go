// Package atomicio holds the write-temp-then-rename file publication
// helper shared by everything in this repository that persists artifacts
// other processes may read concurrently: the simcache disk tier and the
// sweep shard artifacts. Readers only ever observe complete files — a
// crash mid-write leaves a temp file behind, never a truncated artifact.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chaos"
)

// TempPrefix starts the name of every in-flight temp file, so cleanup
// sweeps (like simcache.Clear) can glob for orphans.
const TempPrefix = ".tmp-"

// WriteFile writes data to path atomically: the bytes go to a temp file
// in path's directory (rename is only atomic within one filesystem) and
// the temp file is renamed over path once fully written and closed. On
// any error the temp file is removed and path is left untouched.
func WriteFile(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, TempPrefix+base+"-*")
	if err != nil {
		return fmt.Errorf("atomicio: creating temp file: %w", err)
	}
	if in := chaos.Current(); in != nil {
		fault := in.OnWrite(path, data)
		if fault.Err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("atomicio: writing %s: %w", base, fault.Err)
		}
		if fault.KillAt >= 0 {
			// Emulate SIGKILL mid-write: the torn prefix lands in the temp
			// file (never renamed into place) and the process dies. Under a
			// test Exit override the kill returns instead; surface it and
			// deliberately leave the orphan temp behind, exactly as a real
			// kill would.
			tmp.Write(data[:fault.KillAt])
			tmp.Close()
			return fmt.Errorf("atomicio: writing %s: %w", base, in.Kill())
		}
		data = fault.Data
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: writing %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: closing %s: %w", base, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: publishing %s: %w", base, err)
	}
	return nil
}
