package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("read %q, want %q", got, "v1")
	}

	// Overwrite must replace the content wholesale.
	if err := WriteFile(path, []byte("second version")); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second version" {
		t.Fatalf("read %q after overwrite, want %q", got, "second version")
	}

	// No temp files may survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Fatalf("orphaned temp file %s after successful writes", e.Name())
		}
	}
}

func TestWriteFileFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing-subdir", "artifact.json")
	if err := WriteFile(path, []byte("x")); err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target exists after failed write (stat err %v)", err)
	}
}
