package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/chaos"
)

// arm installs an injector whose kills return ErrKilled instead of
// exiting, and uninstalls it when the test ends.
func arm(t *testing.T, spec chaos.Spec) *chaos.Injector {
	t.Helper()
	in, err := chaos.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	in.Exit = func(int) {}
	in.Logf = func(string, ...any) {}
	chaos.Install(in)
	t.Cleanup(chaos.Uninstall)
	return in
}

// TestChaosKillAtByte verifies an injected mid-write kill leaves exactly
// the torn prefix in an orphaned temp file and never publishes the
// target — the invariant every crash scenario leans on.
func TestChaosKillAtByte(t *testing.T) {
	arm(t, chaos.Spec{Rules: []chaos.Rule{
		{Hook: chaos.HookWrite, Kind: chaos.KindKill, Match: "shard", At: 4},
	}})
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-0.json")
	err := WriteFile(path, []byte("0123456789"))
	if !errors.Is(err, chaos.ErrKilled) {
		t.Fatalf("err %v, want ErrKilled", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target published despite the kill (stat err %v)", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var orphans []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			orphans = append(orphans, e.Name())
		}
	}
	if len(orphans) != 1 {
		t.Fatalf("orphaned temps %v, want exactly one", orphans)
	}
	torn, err := os.ReadFile(filepath.Join(dir, orphans[0]))
	if err != nil {
		t.Fatal(err)
	}
	if string(torn) != "0123" {
		t.Fatalf("torn prefix %q, want %q", torn, "0123")
	}
}

// TestChaosENOSPC verifies an injected full disk fails the write, cleans
// the temp up, and leaves the previous target intact.
func TestChaosENOSPC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	if err := WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	arm(t, chaos.Spec{Rules: []chaos.Rule{
		{Hook: chaos.HookWrite, Kind: chaos.KindENOSPC},
	}})
	err := WriteFile(path, []byte("new"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err %v, want ENOSPC", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("target after failed write: %q err %v, want intact %q", got, err, "old")
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Fatalf("temp %s survived the ENOSPC failure", e.Name())
		}
	}
}

// TestChaosFlipCorruptsPublishedBytes verifies a write flip lands in the
// published file (one bit off), which checksummed readers must catch.
func TestChaosFlipCorruptsPublishedBytes(t *testing.T) {
	arm(t, chaos.Spec{Seed: 3, Rules: []chaos.Rule{
		{Hook: chaos.HookWrite, Kind: chaos.KindFlip},
	}})
	path := filepath.Join(t.TempDir(), "f.json")
	want := []byte("checksummed payload bytes")
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^want[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1", diff)
	}
}

// TestChaosInactiveIsTransparent pins the no-injector fast path: with
// nothing installed WriteFile behaves exactly as before.
func TestChaosInactiveIsTransparent(t *testing.T) {
	if chaos.Current() != nil {
		t.Fatal("injector leaked into this test")
	}
	path := filepath.Join(t.TempDir(), "plain.json")
	if err := WriteFile(path, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "plain" {
		t.Fatalf("read %q", got)
	}
}
