// Package bloom implements the per-processor bloom filter ("addr-list")
// that the paper's §3.2 uses to avoid write-deadlocks in the type-2/type-3
// RMW implementations. The hardware structure is a small bit array (128
// bytes in the paper's evaluation) indexed by a handful of hash functions;
// false positives are safe (they only force an unnecessary write-buffer
// drain or suppress a broadcast), false negatives never occur.
package bloom

import (
	"fmt"
	"math"
)

// Filter is a bloom filter over 64-bit addresses. The zero value is not
// usable; construct with New.
type Filter struct {
	bits    []uint64
	nbits   uint64
	hashes  int
	entries int
}

// New returns a filter with the given size in bits and number of hash
// functions. Sizes are rounded up to a multiple of 64 bits. New panics if
// sizeBits or hashes is not positive, mirroring the fixed hardware
// configuration (a malformed configuration is a programming error, not a
// runtime condition).
func New(sizeBits int, hashes int) *Filter {
	if sizeBits <= 0 {
		panic(fmt.Sprintf("bloom: non-positive size %d", sizeBits))
	}
	if hashes <= 0 {
		panic(fmt.Sprintf("bloom: non-positive hash count %d", hashes))
	}
	words := (sizeBits + 63) / 64
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  uint64(words * 64),
		hashes: hashes,
	}
}

// NewPaperConfig returns the configuration used in the paper's evaluation:
// a 128-byte (1024-bit) filter with 3 hash functions.
func NewPaperConfig() *Filter { return New(1024, 3) }

// SizeBits returns the filter's size in bits.
func (f *Filter) SizeBits() int { return int(f.nbits) }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.hashes }

// Entries returns the number of Insert calls since the last Reset. It is
// the quantity compared against the reset threshold by the addr-list
// protocol.
func (f *Filter) Entries() int { return f.entries }

// hash computes the i-th hash of addr using double hashing over two
// independent 64-bit mixers (splitmix64-style finalizers), the standard
// technique for deriving k hash functions from two.
func (f *Filter) hash(addr uint64, i int) uint64 {
	h1 := mix64(addr ^ 0x9e3779b97f4a7c15)
	h2 := mix64(addr ^ 0xbf58476d1ce4e5b9)
	return (h1 + uint64(i)*h2) % f.nbits
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Insert adds an address to the filter.
func (f *Filter) Insert(addr uint64) {
	for i := 0; i < f.hashes; i++ {
		b := f.hash(addr, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
	f.entries++
}

// MayContain reports whether the address may have been inserted. False
// positives are possible; false negatives are not.
func (f *Filter) MayContain(addr uint64) bool {
	for i := 0; i < f.hashes; i++ {
		b := f.hash(addr, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter. The paper resets all processors' filters when
// the number of inserted RMW addresses exceeds a threshold, after waiting
// for in-flight RMWs to complete.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.entries = 0
}

// PopCount returns the number of set bits, used to estimate occupancy.
func (f *Filter) PopCount() int {
	c := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// EstimatedFalsePositiveRate returns the expected false-positive
// probability for the current number of inserted entries, using the
// standard approximation (1 - e^(-kn/m))^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	k := float64(f.hashes)
	n := float64(f.entries)
	m := float64(f.nbits)
	if n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-k*n/m), k)
}

// Clone returns an independent copy of the filter.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits:    make([]uint64, len(f.bits)),
		nbits:   f.nbits,
		hashes:  f.hashes,
		entries: f.entries,
	}
	copy(c.bits, f.bits)
	return c
}

// AddrList is the distributed addr-list of §3.2: one bloom filter per
// processor, kept coherent by broadcasting newly encountered RMW addresses.
// The type tracks the bookkeeping the hardware would (how many broadcasts
// were needed, when filters must be reset) while leaving the timing of
// broadcasts to the simulator.
type AddrList struct {
	filters   []*Filter
	threshold int

	broadcasts int
	resets     int
}

// NewAddrList builds an addr-list for n processors with the given filter
// configuration and reset threshold (number of insertions after which all
// filters are reset; 0 disables resets).
func NewAddrList(n, sizeBits, hashes, threshold int) *AddrList {
	if n <= 0 {
		panic(fmt.Sprintf("bloom: non-positive processor count %d", n))
	}
	filters := make([]*Filter, n)
	for i := range filters {
		filters[i] = New(sizeBits, hashes)
	}
	return &AddrList{filters: filters, threshold: threshold}
}

// Filter returns processor p's local filter.
func (l *AddrList) Filter(p int) *Filter { return l.filters[p] }

// Processors returns the number of per-processor filters.
func (l *AddrList) Processors() int { return len(l.filters) }

// Broadcasts returns how many RMW-address broadcasts have been performed.
func (l *AddrList) Broadcasts() int { return l.broadcasts }

// Resets returns how many global filter resets have occurred.
func (l *AddrList) Resets() int { return l.resets }

// LookupOrBroadcast implements the RMW-side protocol for processor p and
// the RMW's line address: if the address is already (possibly falsely)
// present in p's filter, nothing is broadcast; otherwise the address is
// inserted into every processor's filter and a broadcast is counted. It
// returns true when a broadcast was required, so the simulator can charge
// its latency.
func (l *AddrList) LookupOrBroadcast(p int, addr uint64) (broadcast bool) {
	if l.filters[p].MayContain(addr) {
		return false
	}
	for _, f := range l.filters {
		f.Insert(addr)
	}
	l.broadcasts++
	if l.threshold > 0 && l.filters[p].Entries() >= l.threshold {
		for _, f := range l.filters {
			f.Reset()
		}
		l.resets++
	}
	return true
}

// ConflictsWithPendingWrite implements the write-buffer-side check for
// processor p: it reports whether the pending write address hits in p's
// local filter, in which case the RMW must revert to a full write-buffer
// drain to preserve the deadlock-safety property.
func (l *AddrList) ConflictsWithPendingWrite(p int, addr uint64) bool {
	return l.filters[p].MayContain(addr)
}
