package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRoundsUpAndPanicsOnBadConfig(t *testing.T) {
	f := New(100, 3)
	if f.SizeBits() != 128 {
		t.Errorf("SizeBits = %d, want 128 (rounded to a word)", f.SizeBits())
	}
	if f.Hashes() != 3 {
		t.Errorf("Hashes = %d", f.Hashes())
	}
	for _, bad := range []func(){
		func() { New(0, 3) },
		func() { New(-1, 3) },
		func() { New(64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad configuration should panic")
				}
			}()
			bad()
		}()
	}
}

func TestPaperConfig(t *testing.T) {
	f := NewPaperConfig()
	if f.SizeBits() != 1024 {
		t.Errorf("paper filter is 128 B = 1024 bits, got %d", f.SizeBits())
	}
	if f.Hashes() != 3 {
		t.Errorf("paper filter uses 3 hash functions, got %d", f.Hashes())
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 3)
	rng := rand.New(rand.NewSource(42))
	var inserted []uint64
	for i := 0; i < 200; i++ {
		a := rng.Uint64()
		f.Insert(a)
		inserted = append(inserted, a)
	}
	for _, a := range inserted {
		if !f.MayContain(a) {
			t.Fatalf("false negative for %#x", a)
		}
	}
	if f.Entries() != 200 {
		t.Errorf("Entries = %d, want 200", f.Entries())
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(1024, 3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if f.MayContain(rng.Uint64()) {
			t.Fatal("empty filter reported a member")
		}
	}
	if f.PopCount() != 0 {
		t.Error("empty filter has set bits")
	}
	if f.EstimatedFalsePositiveRate() != 0 {
		t.Error("empty filter should estimate 0 false-positive rate")
	}
}

func TestFalsePositiveRateIsLowAtPaperOccupancy(t *testing.T) {
	// The paper observes ~1% of dynamic RMWs are to unique addresses and
	// sizes the filter so false positives stay rare. With ~30 unique
	// addresses in a 1024-bit filter the measured rate should be well under
	// 5%.
	f := NewPaperConfig()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		f.Insert(rng.Uint64())
	}
	probes := 20000
	fp := 0
	for i := 0; i < probes; i++ {
		if f.MayContain(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > 0.05 {
		t.Errorf("false positive rate %.3f too high at paper occupancy", rate)
	}
	if est := f.EstimatedFalsePositiveRate(); est > 0.05 {
		t.Errorf("estimated false positive rate %.3f too high", est)
	}
}

func TestReset(t *testing.T) {
	f := New(256, 3)
	f.Insert(1)
	f.Insert(2)
	if f.PopCount() == 0 || f.Entries() != 2 {
		t.Fatal("inserts not recorded")
	}
	f.Reset()
	if f.PopCount() != 0 || f.Entries() != 0 {
		t.Error("Reset did not clear the filter")
	}
	if f.MayContain(1) {
		t.Error("Reset filter still reports membership")
	}
}

func TestClone(t *testing.T) {
	f := New(256, 2)
	f.Insert(10)
	c := f.Clone()
	if !c.MayContain(10) || c.Entries() != 1 {
		t.Error("clone lost contents")
	}
	c.Insert(20)
	if f.MayContain(20) && f.PopCount() == c.PopCount() {
		t.Error("mutating the clone affected the original")
	}
}

func TestPropertyInsertImpliesContains(t *testing.T) {
	f := New(512, 4)
	err := quick.Check(func(addr uint64) bool {
		f.Insert(addr)
		return f.MayContain(addr)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyResetClearsEverything(t *testing.T) {
	err := quick.Check(func(addrs []uint64) bool {
		f := New(256, 3)
		for _, a := range addrs {
			f.Insert(a)
		}
		f.Reset()
		return f.PopCount() == 0 && f.Entries() == 0
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddrListBroadcastProtocol(t *testing.T) {
	l := NewAddrList(4, 1024, 3, 0)
	if l.Processors() != 4 {
		t.Fatalf("Processors = %d", l.Processors())
	}
	// First encounter of an address broadcasts and populates every filter.
	if !l.LookupOrBroadcast(0, 0x1000) {
		t.Fatal("first lookup of a new address must broadcast")
	}
	if l.Broadcasts() != 1 {
		t.Errorf("Broadcasts = %d, want 1", l.Broadcasts())
	}
	for p := 0; p < 4; p++ {
		if !l.Filter(p).MayContain(0x1000) {
			t.Errorf("processor %d filter missing the broadcast address", p)
		}
	}
	// A second RMW to the same address from any processor does not
	// broadcast again.
	if l.LookupOrBroadcast(2, 0x1000) {
		t.Error("known address must not broadcast")
	}
	if l.Broadcasts() != 1 {
		t.Errorf("Broadcasts = %d, want still 1", l.Broadcasts())
	}
}

func TestAddrListConflictCheck(t *testing.T) {
	l := NewAddrList(2, 1024, 3, 0)
	if l.ConflictsWithPendingWrite(0, 0x2000) {
		t.Error("no conflicts before any RMW")
	}
	l.LookupOrBroadcast(1, 0x2000)
	// Processor 0's pending write to the RMW'd line must now conflict,
	// because the broadcast inserted the address everywhere.
	if !l.ConflictsWithPendingWrite(0, 0x2000) {
		t.Error("pending write to an RMW'd line must conflict")
	}
	if l.ConflictsWithPendingWrite(0, 0x9999) {
		t.Error("unrelated pending write should not conflict (modulo false positives at this occupancy)")
	}
}

func TestAddrListResetThreshold(t *testing.T) {
	l := NewAddrList(2, 1024, 3, 4)
	for i := 0; i < 4; i++ {
		l.LookupOrBroadcast(0, uint64(0x100*(i+1)))
	}
	if l.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1 after reaching the threshold", l.Resets())
	}
	for p := 0; p < 2; p++ {
		if l.Filter(p).Entries() != 0 {
			t.Errorf("processor %d filter not reset", p)
		}
	}
	// Addresses inserted before the reset may be re-broadcast afterwards.
	if !l.LookupOrBroadcast(0, 0x100) {
		t.Error("address forgotten by the reset should broadcast again")
	}
}

func TestAddrListPanicsOnBadProcessorCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAddrList(0, ...) should panic")
		}
	}()
	NewAddrList(0, 64, 1, 0)
}

func BenchmarkFilterInsert(b *testing.B) {
	f := NewPaperConfig()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkFilterLookup(b *testing.B) {
	f := NewPaperConfig()
	for i := 0; i < 64; i++ {
		f.Insert(uint64(i) * 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(uint64(i))
	}
}
