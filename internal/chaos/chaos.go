// Package chaos is the repository's seeded, deterministic
// fault-injection layer: the hook points the I/O and coordination paths
// consult before acting, and the injector that decides — from an explicit
// seed and an explicit rule list, never ambient randomness — whether to
// corrupt, delay, refuse or kill at each one.
//
// Production code pays one atomic load per hook when no injector is
// installed. Faults are turned on either programmatically (Install) or,
// for os/exec worker processes scripted by the simulation harness,
// through the RMWTSO_CHAOS environment variable carrying a JSON Spec.
// Every injected fault is logged to stderr with its rule index and fire
// count, so a failing scenario's transcript shows exactly which faults
// fired in which order; replaying with the same seed and single-threaded
// hook order reproduces the same decisions.
//
// The fault vocabulary matches what production actually suffers:
//
//   - delay — the operation sleeps first (stragglers, slow heartbeats);
//   - flip — one seeded bit of the data is inverted (disk or wire
//     corruption; checksummed readers must detect it);
//   - enospc — the operation fails with ENOSPC (disk full mid-sweep);
//   - kill — the process exits with KillExitCode, for writes after
//     emitting only the first At bytes of the temp file (SIGKILL
//     mid-artifact-write; the atomic-rename discipline must ensure no
//     reader ever observes the torn prefix).
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Env is the environment variable a process reads a JSON Spec from to
// arm fault injection at startup (see FromEnv). The simulation harness
// sets it on the worker processes it scripts.
const Env = "RMWTSO_CHAOS"

// KillExitCode is the exit status of an injected kill: 137, the shell's
// rendering of SIGKILL, so scripted scenarios assert on the same code a
// real `kill -9` would produce.
const KillExitCode = 137

// The hook points production code consults. A Rule's Hook must name one
// of these.
const (
	// HookWrite gates atomicio.WriteFile — every artifact and cache
	// entry published to disk.
	HookWrite = "atomicio.write"
	// HookCacheRead gates the simcache disk tier's entry reads.
	HookCacheRead = "simcache.read"
	// HookLease, HookHeartbeat and HookAck gate the coordinator HTTP
	// client's lease, heartbeat and ack requests.
	HookLease     = "coordinator.lease"
	HookHeartbeat = "coordinator.heartbeat"
	HookAck       = "coordinator.ack"
)

// The fault kinds a Rule can inject.
const (
	// KindDelay sleeps DelayMS before the operation proceeds.
	KindDelay = "delay"
	// KindFlip inverts one seeded bit of the operation's data (the bytes
	// being written, read or acked).
	KindFlip = "flip"
	// KindENOSPC fails the operation with syscall.ENOSPC.
	KindENOSPC = "enospc"
	// KindKill exits the process with KillExitCode; on HookWrite only
	// the first At bytes of the temp file are emitted first.
	KindKill = "kill"
)

// ErrKilled is the error a hook returns in place of process death when a
// test overrides the injector's Exit function; production kills never
// return.
var ErrKilled = fmt.Errorf("chaos: injected kill")

// validFaults maps each hook to the fault kinds that make sense there.
var validFaults = map[string]map[string]bool{
	HookWrite:     {KindDelay: true, KindFlip: true, KindENOSPC: true, KindKill: true},
	HookCacheRead: {KindDelay: true, KindFlip: true, KindENOSPC: true, KindKill: true},
	HookLease:     {KindDelay: true, KindKill: true},
	HookHeartbeat: {KindDelay: true, KindKill: true},
	HookAck:       {KindDelay: true, KindFlip: true, KindKill: true},
}

// Rule is one fault-injection decision: at which hook, on which targets,
// which fault, and how often. Rules fire independently; several rules may
// fire on one invocation (a delayed, bit-flipped write), applied in spec
// order with the first error or kill winning.
type Rule struct {
	// Hook names the hook point (HookWrite, HookCacheRead, ...).
	Hook string `json:"hook"`
	// Match restricts the rule to invocations whose target (file path for
	// writes/reads, worker name for coordination ops) contains it as a
	// substring. Empty matches every invocation of the hook.
	Match string `json:"match,omitempty"`
	// Kind is the fault (KindDelay, KindFlip, KindENOSPC, KindKill).
	Kind string `json:"kind"`
	// After skips the first After matching invocations — "the disk fills
	// after 5 writes", "the third heartbeat is slow".
	After int `json:"after,omitempty"`
	// Count bounds how many times the rule fires; 0 is unlimited.
	Count int `json:"count,omitempty"`
	// Prob, when in (0, 1), fires the rule with that probability (drawn
	// from the injector's seeded source); 0 fires deterministically on
	// every eligible invocation.
	Prob float64 `json:"prob,omitempty"`
	// At is the kill-at-byte offset for KindKill on HookWrite: the temp
	// file receives only the first At bytes before the process dies.
	// Ignored by other kinds and clamped to the data length.
	At int `json:"at,omitempty"`
	// DelayMS is the KindDelay sleep in milliseconds.
	DelayMS int `json:"delay_ms,omitempty"`
}

// validate rejects rules the hook matrix does not support.
func (r Rule) validate(i int) error {
	kinds, ok := validFaults[r.Hook]
	if !ok {
		return fmt.Errorf("chaos: rule %d: unknown hook %q", i, r.Hook)
	}
	if !kinds[r.Kind] {
		return fmt.Errorf("chaos: rule %d: fault %q is not injectable at hook %q", i, r.Kind, r.Hook)
	}
	if r.After < 0 || r.Count < 0 || r.At < 0 || r.DelayMS < 0 {
		return fmt.Errorf("chaos: rule %d: negative after/count/at/delay_ms", i)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("chaos: rule %d: probability %g outside [0, 1]", i, r.Prob)
	}
	if r.Kind == KindDelay && r.DelayMS == 0 {
		return fmt.Errorf("chaos: rule %d: delay rule needs delay_ms", i)
	}
	return nil
}

// Spec is the serializable description of an injector: the seed behind
// every random decision and the rule list. It is what the RMWTSO_CHAOS
// environment variable carries between the simulation harness and the
// worker processes it scripts.
type Spec struct {
	// Seed drives bit positions and probability draws deterministically.
	// Zero means 1 (an explicit seed keeps replays honest).
	Seed int64 `json:"seed"`
	// Rules is the fault list, applied in order.
	Rules []Rule `json:"rules"`
}

// Encode renders the spec as the JSON string Env carries.
func (s Spec) Encode() string {
	data, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("chaos: encoding spec: %v", err))
	}
	return string(data)
}

// WriteFault is the outcome of the write hook: the (possibly corrupted)
// bytes to write, a kill-at-byte directive, or an error to fail with.
type WriteFault struct {
	// Data is what should actually be written (bit-flipped when a flip
	// rule fired, the input otherwise).
	Data []byte
	// KillAt, when >= 0, directs the writer to emit only the first
	// KillAt bytes of its temp file and then call Kill.
	KillAt int
	// Err, when non-nil, fails the write (ENOSPC).
	Err error
}

// Injector decides fault injection at every hook. Build one with New (or
// Parse/FromEnv), then Install it; all methods are safe for concurrent
// use, with random draws serialized so a given seed yields one decision
// sequence.
type Injector struct {
	spec Spec
	// Exit replaces os.Exit for KindKill, so unit tests can observe kills
	// without dying. Set it before Install; after an overridden "exit"
	// the hook returns ErrKilled.
	Exit func(code int)
	// Sleep replaces time.Sleep for KindDelay, for tests that must not
	// spend wall-clock time.
	Sleep func(d time.Duration)
	// Logf replaces the stderr fault log, for tests.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	rng   *rand.Rand
	seen  []int // matching invocations per rule
	fired []int // fires per rule
}

// New validates the spec and builds its injector.
func New(spec Spec) (*Injector, error) {
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	for i, r := range spec.Rules {
		if err := r.validate(i); err != nil {
			return nil, err
		}
	}
	return &Injector{
		spec:  spec,
		Exit:  os.Exit,
		Sleep: time.Sleep,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		rng:   rand.New(rand.NewSource(spec.Seed)),
		seen:  make([]int, len(spec.Rules)),
		fired: make([]int, len(spec.Rules)),
	}, nil
}

// Parse builds an injector from a JSON Spec string (the Env payload).
func Parse(s string) (*Injector, error) {
	var spec Spec
	if err := json.Unmarshal([]byte(s), &spec); err != nil {
		return nil, fmt.Errorf("chaos: unparsable %s spec: %w", Env, err)
	}
	return New(spec)
}

// FromEnv builds an injector from the RMWTSO_CHAOS environment variable.
// It reports (nil, false, nil) when the variable is unset or empty.
func FromEnv() (*Injector, bool, error) {
	s := strings.TrimSpace(os.Getenv(Env))
	if s == "" {
		return nil, false, nil
	}
	in, err := Parse(s)
	if err != nil {
		return nil, false, err
	}
	return in, true, nil
}

// Seed returns the injector's seed, for banners and replay lines.
func (in *Injector) Seed() int64 { return in.spec.Seed }

// String summarizes the injector for startup banners.
func (in *Injector) String() string {
	return fmt.Sprintf("seed %d, %d rules", in.spec.Seed, len(in.spec.Rules))
}

// Fired returns the per-rule fire counts, for tests and scenario
// assertions ("the ENOSPC rule actually fired").
func (in *Injector) Fired() []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]int(nil), in.fired...)
}

// decide walks the rules matching (hook, target) and returns the indexes
// of those that fire this invocation, advancing the per-rule counters
// and the seeded probability stream.
func (in *Injector) decide(hook, target string) []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	var fires []int
	for i, r := range in.spec.Rules {
		if r.Hook != hook || (r.Match != "" && !strings.Contains(target, r.Match)) {
			continue
		}
		in.seen[i]++
		if in.seen[i] <= r.After {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		in.fired[i]++
		fires = append(fires, i)
	}
	return fires
}

// flip returns data with one seeded bit inverted (a copy; the caller's
// buffer is never mutated). Empty data is returned unchanged.
func (in *Injector) flip(data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	in.mu.Lock()
	pos := in.rng.Intn(len(data) * 8)
	in.mu.Unlock()
	out := append([]byte(nil), data...)
	out[pos/8] ^= 1 << (pos % 8)
	return out
}

// log reports one fired fault on the injector's log sink.
func (in *Injector) log(i int, hook, target string) {
	r := in.spec.Rules[i]
	in.Logf("chaos: %s: injected %s on %q (rule %d, fire %d)", hook, r.Kind, target, i, in.fired[i])
}

// Kill exits the process with KillExitCode (or, with Exit overridden,
// returns ErrKilled for the caller to surface). The write hook's caller
// invokes it after emitting the KillAt-byte torn prefix.
func (in *Injector) Kill() error {
	in.Exit(KillExitCode)
	return ErrKilled
}

// OnWrite consults the write rules for one atomic file publication and
// returns what the writer should do. The input buffer is never mutated.
func (in *Injector) OnWrite(path string, data []byte) WriteFault {
	out := WriteFault{Data: data, KillAt: -1}
	for _, i := range in.decide(HookWrite, path) {
		r := in.spec.Rules[i]
		in.log(i, HookWrite, path)
		switch r.Kind {
		case KindDelay:
			in.Sleep(time.Duration(r.DelayMS) * time.Millisecond)
		case KindFlip:
			out.Data = in.flip(out.Data)
		case KindENOSPC:
			out.Err = fmt.Errorf("chaos: injected disk full: %w", syscall.ENOSPC)
			return out
		case KindKill:
			out.KillAt = min(r.At, len(data))
			return out
		}
	}
	return out
}

// OnRead consults the cache-read rules for one disk-tier entry read,
// returning the (possibly corrupted) bytes or an injected read error.
// The input buffer is never mutated.
func (in *Injector) OnRead(path string, data []byte) ([]byte, error) {
	for _, i := range in.decide(HookCacheRead, path) {
		r := in.spec.Rules[i]
		in.log(i, HookCacheRead, path)
		switch r.Kind {
		case KindDelay:
			in.Sleep(time.Duration(r.DelayMS) * time.Millisecond)
		case KindFlip:
			data = in.flip(data)
		case KindENOSPC:
			return nil, fmt.Errorf("chaos: injected read error: %w", syscall.ENOSPC)
		case KindKill:
			return nil, in.Kill()
		}
	}
	return data, nil
}

// OnCoord consults the rules of one payload-less coordination operation
// (HookLease, HookHeartbeat), keyed by worker name.
func (in *Injector) OnCoord(hook, worker string) error {
	for _, i := range in.decide(hook, worker) {
		r := in.spec.Rules[i]
		in.log(i, hook, worker)
		switch r.Kind {
		case KindDelay:
			in.Sleep(time.Duration(r.DelayMS) * time.Millisecond)
		case KindKill:
			return in.Kill()
		}
	}
	return nil
}

// OnAck consults the ack rules for one result acknowledgement, returning
// the (possibly torn) payload the wire should carry. The caller computes
// its checksum BEFORE calling, so a flipped payload models a result torn
// after checksumming — exactly the corruption the coordinator's
// checksum verification exists to refuse.
func (in *Injector) OnAck(worker string, payload []byte) ([]byte, error) {
	for _, i := range in.decide(HookAck, worker) {
		r := in.spec.Rules[i]
		in.log(i, HookAck, worker)
		switch r.Kind {
		case KindDelay:
			in.Sleep(time.Duration(r.DelayMS) * time.Millisecond)
		case KindFlip:
			payload = in.flip(payload)
		case KindKill:
			return nil, in.Kill()
		}
	}
	return payload, nil
}

// active is the installed injector; nil means every hook is a no-op
// beyond one atomic load.
var active atomic.Pointer[Injector]

// Install makes the injector the process-wide active one. Passing nil
// uninstalls.
func Install(in *Injector) { active.Store(in) }

// Uninstall deactivates fault injection.
func Uninstall() { active.Store(nil) }

// Current returns the active injector, or nil when faults are off. Hook
// sites check it once and skip all chaos work when nil.
func Current() *Injector { return active.Load() }
