package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"
	"time"
)

// quiet builds an injector whose kills return instead of exiting, whose
// delays record instead of sleeping, and whose fault log is captured.
func quiet(t *testing.T, spec Spec) (*Injector, *[]time.Duration, *strings.Builder) {
	t.Helper()
	in, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	var log strings.Builder
	in.Exit = func(code int) {
		if code != KillExitCode {
			t.Errorf("kill exit code %d, want %d", code, KillExitCode)
		}
	}
	in.Sleep = func(d time.Duration) { slept = append(slept, d) }
	in.Logf = func(format string, args ...any) {
		log.WriteString(fmt.Sprintf(format+"\n", args...))
	}
	return in, &slept, &log
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{Rules: []Rule{{Hook: "nope", Kind: KindDelay, DelayMS: 1}}},
		{Rules: []Rule{{Hook: HookLease, Kind: KindFlip}}},  // flip has no lease payload
		{Rules: []Rule{{Hook: HookAck, Kind: KindENOSPC}}},  // acks don't hit disk
		{Rules: []Rule{{Hook: HookWrite, Kind: KindDelay}}}, // delay without delay_ms
		{Rules: []Rule{{Hook: HookWrite, Kind: KindFlip, Prob: 1.5}}},
		{Rules: []Rule{{Hook: HookWrite, Kind: KindFlip, After: -1}}},
	}
	for i, spec := range bad {
		if _, err := New(spec); err == nil {
			t.Errorf("spec %d validated, want error", i)
		}
	}
	good := Spec{Rules: []Rule{
		{Hook: HookWrite, Kind: KindKill, At: 10},
		{Hook: HookCacheRead, Kind: KindFlip, Prob: 0.5},
		{Hook: HookHeartbeat, Kind: KindDelay, DelayMS: 200},
		{Hook: HookAck, Kind: KindFlip, Count: 1},
	}}
	if _, err := New(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := Spec{Seed: 42, Rules: []Rule{
		{Hook: HookWrite, Kind: KindENOSPC, Match: "shard", After: 5},
	}}
	in, err := Parse(spec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 42 {
		t.Errorf("seed %d, want 42", in.Seed())
	}
	if _, err := Parse("{not json"); err == nil {
		t.Error("garbage spec parsed")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(Env, "")
	if _, ok, err := FromEnv(); ok || err != nil {
		t.Fatalf("empty env: ok=%v err=%v", ok, err)
	}
	t.Setenv(Env, Spec{Seed: 7}.Encode())
	in, ok, err := FromEnv()
	if !ok || err != nil || in.Seed() != 7 {
		t.Fatalf("set env: ok=%v err=%v", ok, err)
	}
	t.Setenv(Env, "{bad")
	if _, _, err := FromEnv(); err == nil {
		t.Fatal("bad env spec accepted")
	}
}

// TestWriteKillAtByte verifies the kill directive carries the clamped
// offset and fires only on matching paths.
func TestWriteKillAtByte(t *testing.T) {
	in, _, _ := quiet(t, Spec{Rules: []Rule{
		{Hook: HookWrite, Kind: KindKill, Match: "shard-0", At: 4},
	}})
	data := []byte("0123456789")
	if f := in.OnWrite("/tmp/other.json", data); f.KillAt != -1 || f.Err != nil {
		t.Fatalf("non-matching path faulted: %+v", f)
	}
	f := in.OnWrite("/tmp/shard-0.json", data)
	if f.KillAt != 4 {
		t.Fatalf("KillAt %d, want 4", f.KillAt)
	}
	// Clamp: At beyond the data length.
	in2, _, _ := quiet(t, Spec{Rules: []Rule{{Hook: HookWrite, Kind: KindKill, At: 999}}})
	if f := in2.OnWrite("x", data); f.KillAt != len(data) {
		t.Fatalf("KillAt %d, want clamp to %d", f.KillAt, len(data))
	}
}

// TestWriteENOSPCAfter verifies After skips the leading invocations and
// the error unwraps to syscall.ENOSPC.
func TestWriteENOSPCAfter(t *testing.T) {
	in, _, _ := quiet(t, Spec{Rules: []Rule{
		{Hook: HookWrite, Kind: KindENOSPC, After: 2},
	}})
	data := []byte("x")
	for i := 0; i < 2; i++ {
		if f := in.OnWrite("a", data); f.Err != nil {
			t.Fatalf("write %d faulted before After", i)
		}
	}
	f := in.OnWrite("a", data)
	if !errors.Is(f.Err, syscall.ENOSPC) {
		t.Fatalf("err %v, want ENOSPC", f.Err)
	}
}

// TestFlipDeterminism verifies a flip changes exactly one bit, never
// mutates the caller's buffer, and replays identically from the seed.
func TestFlipDeterminism(t *testing.T) {
	spec := Spec{Seed: 99, Rules: []Rule{{Hook: HookCacheRead, Kind: KindFlip}}}
	orig := []byte("the quick brown fox")

	run := func() []byte {
		in, _, _ := quiet(t, spec)
		got, err := in.OnRead("entry", orig)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different flips")
	}
	if bytes.Equal(a, orig) {
		t.Fatal("flip left data unchanged")
	}
	if !bytes.Equal(orig, []byte("the quick brown fox")) {
		t.Fatal("flip mutated the caller's buffer")
	}
	diff := 0
	for i := range a {
		for bit := 0; bit < 8; bit++ {
			if (a[i]^orig[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diff)
	}
}

// TestCountBound verifies Count caps the fires and Fired reports them.
func TestCountBound(t *testing.T) {
	in, slept, _ := quiet(t, Spec{Rules: []Rule{
		{Hook: HookHeartbeat, Kind: KindDelay, DelayMS: 10, Count: 2},
	}})
	for i := 0; i < 5; i++ {
		if err := in.OnCoord(HookHeartbeat, "w1"); err != nil {
			t.Fatal(err)
		}
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	if got := in.Fired(); got[0] != 2 {
		t.Fatalf("Fired %v, want [2]", got)
	}
}

// TestProbDeterminism verifies probability draws replay from the seed.
func TestProbDeterminism(t *testing.T) {
	spec := Spec{Seed: 5, Rules: []Rule{{Hook: HookLease, Kind: KindKill, Prob: 0.5}}}
	run := func() []int {
		in, _, _ := quiet(t, spec)
		var pattern []int
		for i := 0; i < 20; i++ {
			if err := in.OnCoord(HookLease, "w"); errors.Is(err, ErrKilled) {
				pattern = append(pattern, i)
			}
		}
		return pattern
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 20 {
		t.Fatalf("degenerate fire pattern %v — pick a better seed", a)
	}
	if len(a) != len(b) {
		t.Fatalf("fire patterns differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire patterns differ: %v vs %v", a, b)
		}
	}
}

// TestAckFlip verifies the ack hook tears the payload copy.
func TestAckFlip(t *testing.T) {
	in, _, log := quiet(t, Spec{Rules: []Rule{
		{Hook: HookAck, Kind: KindFlip, Match: "torn", Count: 1},
	}})
	payload := []byte(`{"unit":"abc"}`)
	got, err := in.OnAck("steady", payload)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("non-matching worker torn: %q err %v", got, err)
	}
	got, err = in.OnAck("torn-worker", payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("matching ack not torn")
	}
	if !strings.Contains(log.String(), "flip") {
		t.Errorf("fault not logged: %q", log.String())
	}
	// Count exhausted: second ack passes clean.
	got, _ = in.OnAck("torn-worker", payload)
	if !bytes.Equal(got, payload) {
		t.Fatal("Count=1 rule fired twice")
	}
}

// TestKillReturnsErrKilledUnderTestExit verifies the Exit override turns
// a kill into ErrKilled instead of process death.
func TestKillReturnsErrKilledUnderTestExit(t *testing.T) {
	in, _, _ := quiet(t, Spec{Rules: []Rule{{Hook: HookCacheRead, Kind: KindKill}}})
	if _, err := in.OnRead("p", []byte("x")); !errors.Is(err, ErrKilled) {
		t.Fatalf("err %v, want ErrKilled", err)
	}
}

// TestInstallCurrent verifies the global registration round-trip.
func TestInstallCurrent(t *testing.T) {
	if Current() != nil {
		t.Fatal("injector active at test start")
	}
	in, _, _ := quiet(t, Spec{})
	Install(in)
	defer Uninstall()
	if Current() != in {
		t.Fatal("Current did not return the installed injector")
	}
	Uninstall()
	if Current() != nil {
		t.Fatal("Uninstall left an injector active")
	}
}
