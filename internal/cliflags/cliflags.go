// Package cliflags holds the flag plumbing every rmwtso binary shares —
// the -cache/-cache-dir/-cache-clear trio, -format validation, and the
// positive/non-negative value checks — so the spellings, help strings
// and error messages cannot drift between cmd/experiments, cmd/litmus,
// cmd/rmwsim and cmd/rmwtso-serve. It deliberately imports nothing from
// the rest of the module: it is pure flag-layer glue.
package cliflags

import (
	"flag"
	"fmt"
	"strings"
	"time"
)

// Cache is the registered -cache/-cache-dir/-cache-clear trio. The
// values feed rmwtso.OpenCacheFromFlags unchanged.
type Cache struct {
	// Enabled is -cache, Dir is -cache-dir, Clear is -cache-clear.
	Enabled *bool
	Dir     *string
	Clear   *bool
}

// RegisterCache registers the cache trio on the flag set. what names the
// cached artifact in the help text ("simulation results", "verdicts").
func RegisterCache(fs *flag.FlagSet, what string) Cache {
	return Cache{
		Enabled: fs.Bool("cache", false, fmt.Sprintf("cache %s (default directory: ~/.cache/rmwtso)", what)),
		Dir:     fs.String("cache-dir", "", fmt.Sprintf("cache %s under this directory (implies -cache)", what)),
		Clear:   fs.Bool("cache-clear", false, "clear the cache directory before running (implies -cache)"),
	}
}

// Format is a registered -format flag with its allowed value set.
type Format struct {
	// Value is the parsed flag value.
	Value   *string
	name    string
	allowed []string
}

// RegisterFormat registers a format flag with the given name, default
// and usage; Validate accepts exactly the allowed values.
func RegisterFormat(fs *flag.FlagSet, name, def, usage string, allowed ...string) *Format {
	return &Format{Value: fs.String(name, def, usage), name: name, allowed: allowed}
}

// Get returns the flag's current value.
func (f *Format) Get() string { return *f.Value }

// Validate rejects values outside the allowed set with the binaries'
// canonical message.
func (f *Format) Validate() error {
	for _, a := range f.allowed {
		if *f.Value == a {
			return nil
		}
	}
	return fmt.Errorf("unknown -%s %q (want %s)", f.name, *f.Value, orList(f.allowed))
}

// orList renders ["a","b","c"] as "a, b or c".
func orList(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	}
	return strings.Join(items[:len(items)-1], ", ") + " or " + items[len(items)-1]
}

// WasSet reports whether the named flag was given explicitly on the
// command line (a parsed flag set).
func WasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// NonNegativeInt rejects negative values of a count flag whose zero
// means "default".
func NonNegativeInt(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must be non-negative, got %d", name, v)
	}
	return nil
}

// PositiveInt rejects non-positive values of a flag that always needs a
// positive count.
func PositiveInt(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be positive, got %d", name, v)
	}
	return nil
}

// PositiveIntIfSet rejects negative values always, and zero only when
// the flag was given explicitly — the unset default 0 means "keep the
// preset".
func PositiveIntIfSet(fs *flag.FlagSet, name string, v int) error {
	if v < 0 || (v == 0 && WasSet(fs, name)) {
		return fmt.Errorf("-%s must be positive, got %d", name, v)
	}
	return nil
}

// PositiveFloat rejects non-positive values of an always-positive flag.
func PositiveFloat(name string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be positive, got %g", name, v)
	}
	return nil
}

// PositiveFloatIfSet is PositiveIntIfSet for float flags.
func PositiveFloatIfSet(fs *flag.FlagSet, name string, v float64) error {
	if v < 0 || (v == 0 && WasSet(fs, name)) {
		return fmt.Errorf("-%s must be positive, got %g", name, v)
	}
	return nil
}

// PositiveDurationIfSet is PositiveIntIfSet for duration flags.
func PositiveDurationIfSet(fs *flag.FlagSet, name string, v time.Duration) error {
	if v < 0 || (v == 0 && WasSet(fs, name)) {
		return fmt.Errorf("-%s must be positive, got %v", name, v)
	}
	return nil
}
