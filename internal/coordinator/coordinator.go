// Package coordinator distributes the units of a sweep to workers from a
// pull queue instead of a static split. Where the round-robin Shard{i,n}
// selector fixes each worker's units up front — wasting wall-clock on
// uneven units and losing the whole sweep when a worker dies — the
// coordinator hands out one unit at a time under a lease:
//
//   - a worker Leases the next ready task and must Heartbeat to keep it;
//   - a lease whose deadline passes (worker crashed, hung, or partitioned)
//     is expired and the task requeued for another worker;
//   - a task whose execution fails is retried with jittered exponential
//     backoff, up to a bounded attempt budget;
//   - a task that exhausts its budget (a poisoned unit: repeated
//     deadlocks, corrupt inputs) moves to the dead-letter set with its
//     failure history, so one bad unit never wedges the sweep;
//   - a finished task is Acked with an opaque result payload.
//
// The queue is drained when every task is either done or dead-lettered —
// it never hangs on a lost worker — and a Snapshot reports per-worker
// counts, retries, expiries and the dead letters for the sweep report.
//
// Two transports share the same Coordinator interface: the Queue itself
// (in-process workers pulling from the same memory) and an HTTP
// server/client pair speaking versioned JSON messages (Server, Dial), so
// a sweep spans machines with the same crash-recovery semantics.
package coordinator

import (
	"context"
	"errors"
	"time"
)

// Protocol and state-machine errors. Transports map these across the
// wire losslessly (errors.Is works on both sides of an HTTP boundary).
var (
	// ErrDrained reports that every task is done or dead-lettered; workers
	// receiving it from Lease should exit cleanly.
	ErrDrained = errors.New("coordinator: queue drained")
	// ErrLeaseLost reports an operation on a lease the queue no longer
	// honours (expired and requeued, or already resolved). The worker's
	// in-flight work is abandoned; another worker owns the task now.
	ErrLeaseLost = errors.New("coordinator: lease lost")
	// ErrUnknownWorker reports a lease operation from a worker name that
	// does not hold the lease.
	ErrUnknownWorker = errors.New("coordinator: lease held by another worker")
	// ErrAbandon is returned by an Executor to simulate a worker crash in
	// fault-injection tests and demos: the Worker stops heartbeating,
	// abandons its lease without acking or nacking, and Run returns — the
	// lease must expire before the task is requeued, exactly like a real
	// worker death.
	ErrAbandon = errors.New("coordinator: worker abandoned lease (injected crash)")
)

// Clock abstracts time for the queue so tests can run the lease state
// machine against compressed timescales.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After fires once after d, like time.After.
	After(d time.Duration) <-chan time.Time
}

// systemClock is the real-time Clock.
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock returns the real-time clock the queue uses by default.
func SystemClock() Clock { return systemClock{} }

// Config tunes a Queue's lease and retry state machine. The zero value
// picks the defaults noted on each field.
type Config struct {
	// LeaseTTL is how long a granted or heartbeat-extended lease lives
	// before the queue presumes the worker dead and requeues the task.
	// Default 15s.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one task is handed out (the first
	// grant is attempt 1) before it is dead-lettered. Default 3.
	MaxAttempts int
	// RetryBackoff is the base delay before a failed task may be leased
	// again; attempt n waits RetryBackoff·2^(n-1), jittered into
	// [50%, 100%] of that, capped at MaxBackoff. Default 250ms.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Default 5s.
	MaxBackoff time.Duration
	// Seed drives the backoff jitter deterministically. Default 1.
	Seed int64
	// Clock overrides the time source, for tests. Default SystemClock.
	Clock Clock
	// OnEvent, when non-nil, observes every state transition. It is
	// called synchronously from the operation that caused the transition,
	// never concurrently, and must not call back into the Queue.
	OnEvent func(Event)
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	return c
}

// EventKind names a queue state transition.
type EventKind string

// The queue state transitions an Event can report.
const (
	// EventLease: a task was handed to a worker (Attempt is 1-based).
	EventLease EventKind = "lease"
	// EventAck: a worker completed its task.
	EventAck EventKind = "ack"
	// EventNack: a worker reported its attempt failed (Reason says why).
	EventNack EventKind = "nack"
	// EventExpire: a lease deadline passed without heartbeat; the attempt
	// counts as failed with Reason "lease expired".
	EventExpire EventKind = "expire"
	// EventRequeue: a failed task went back to pending for a later retry.
	EventRequeue EventKind = "requeue"
	// EventDeadLetter: a task exhausted its attempt budget.
	EventDeadLetter EventKind = "dead-letter"
	// EventDrained: every task is done or dead-lettered.
	EventDrained EventKind = "drained"
)

// Event is one queue state transition, for streaming progress.
type Event struct {
	// Kind is the transition.
	Kind EventKind
	// Task is the task ID (empty for EventDrained).
	Task string
	// Worker is the worker involved (empty for EventDrained and for
	// transitions the queue makes on its own).
	Worker string
	// Attempt is the 1-based attempt the transition concerns.
	Attempt int
	// Reason carries the failure reason for nack/expire/requeue/dead-letter.
	Reason string
}

// Lease is one granted task: the worker must Heartbeat before Deadline
// (and keep doing so) or the queue requeues the task for someone else.
type Lease struct {
	// ID is the lease token every follow-up operation must present.
	ID string `json:"id"`
	// Task is the task being worked on.
	Task string `json:"task"`
	// Attempt is 1 for the first grant of the task, 2 for its first
	// retry, and so on.
	Attempt int `json:"attempt"`
	// Deadline is when the lease expires without a heartbeat.
	Deadline time.Time `json:"deadline"`
}

// Coordinator is the worker-facing surface of a queue, implemented both
// by *Queue (in-process) and *Client (HTTP). All methods are safe for
// concurrent use.
type Coordinator interface {
	// Lease blocks until a task is ready (returning its lease), the queue
	// drains (ErrDrained) or ctx is cancelled.
	Lease(ctx context.Context, worker string) (*Lease, error)
	// Heartbeat extends the lease's deadline by the queue's LeaseTTL.
	Heartbeat(ctx context.Context, worker, leaseID string) error
	// Ack resolves the lease's task as done with its result payload.
	Ack(ctx context.Context, worker, leaseID string, payload []byte) error
	// Nack reports the attempt failed; the queue retries or dead-letters.
	Nack(ctx context.Context, worker, leaseID, reason string) error
}

// WorkerStat aggregates one worker's traffic for the sweep report.
type WorkerStat struct {
	// Worker is the worker's self-reported name.
	Worker string `json:"worker"`
	// Leases counts tasks handed to the worker; Acks and Nacks count how
	// its attempts resolved; Expired counts leases it lost to expiry.
	Leases  int `json:"leases"`
	Acks    int `json:"acks"`
	Nacks   int `json:"nacks"`
	Expired int `json:"expired"`
}

// DeadLetter is one task that exhausted its attempt budget, with its
// full failure history in attempt order.
type DeadLetter struct {
	// Task is the dead-lettered task's ID.
	Task string `json:"task"`
	// Attempts is how many times it was handed out.
	Attempts int `json:"attempts"`
	// Reasons holds one failure reason per attempt, in order.
	Reasons []string `json:"reasons"`
}

// Snapshot is a consistent view of the queue's progress, sortable and
// serializable for reports. Workers are sorted by name, dead letters by
// task ID.
type Snapshot struct {
	// Total, Pending, Leased, Done and Dead count tasks per state
	// (Pending includes tasks waiting out a retry backoff).
	Total   int `json:"total"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	Dead    int `json:"dead"`
	// Retries counts requeues after a failed attempt (nack or expiry);
	// Expired counts lease expiries specifically.
	Retries int `json:"retries"`
	Expired int `json:"expired"`
	// Workers aggregates per-worker traffic, sorted by worker name.
	Workers []WorkerStat `json:"workers,omitempty"`
	// DeadLetters lists the poisoned tasks, sorted by task ID.
	DeadLetters []DeadLetter `json:"dead_letters,omitempty"`
}

// Drained reports whether every task is done or dead-lettered.
func (s Snapshot) Drained() bool { return s.Done+s.Dead == s.Total }
