package coordinator

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/chaos"
)

// ProtocolVersion versions the HTTP transport's JSON messages. Every
// request and response carries it in a "v" field; both sides reject
// versions they do not speak instead of misreading renamed fields.
const ProtocolVersion = 1

// The HTTP endpoints of the coordinator protocol, under a version
// prefix so a future v2 can coexist.
const (
	leasePath     = "/v1/lease"
	heartbeatPath = "/v1/heartbeat"
	ackPath       = "/v1/ack"
	nackPath      = "/v1/nack"
	statusPath    = "/v1/status"
)

// Wire error codes, mapped back to the sentinel errors on the client so
// errors.Is works across the HTTP boundary.
const (
	codeLeaseLost     = "lease_lost"
	codeUnknownWorker = "unknown_worker"
	codeDrained       = "drained"
	codePlanMismatch  = "plan_mismatch"
	codeBadVersion    = "bad_version"
	codeBadPayload    = "bad_payload"
	codeBadRequest    = "bad_request"
)

// ErrPlanMismatch reports a worker whose locally rebuilt plan does not
// match the coordinator's: the two processes would disagree on unit
// identities, so no work is handed out.
var ErrPlanMismatch = errors.New("coordinator: worker plan does not match the coordinator's")

// ErrBadPayload reports an ack whose payload failed its checksum: the
// result was torn or corrupted in transit, so the queue refuses it and
// the lease runs on (to be re-acked, or to expire and requeue).
var ErrBadPayload = errors.New("coordinator: ack payload checksum mismatch")

// leaseRequest asks for the next task. Plan must equal the server's
// plan fingerprint.
type leaseRequest struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
	Plan   string `json:"plan"`
}

// leaseResponse carries exactly one of: a granted lease, a drained
// marker, or a retry hint (nothing ready now; poll again in RetryMS).
type leaseResponse struct {
	V       int    `json:"v"`
	Lease   *Lease `json:"lease,omitempty"`
	Drained bool   `json:"drained,omitempty"`
	RetryMS int64  `json:"retry_ms,omitempty"`
}

// leaseOpRequest addresses a held lease (heartbeat, nack).
type leaseOpRequest struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Reason string `json:"reason,omitempty"`
}

// ackRequest resolves a lease with its checksummed result payload.
type ackRequest struct {
	V          int    `json:"v"`
	Worker     string `json:"worker"`
	Lease      string `json:"lease"`
	Payload    []byte `json:"payload"`
	PayloadSum string `json:"payload_sum"`
}

// okResponse acknowledges a state-changing request.
type okResponse struct {
	V  int  `json:"v"`
	OK bool `json:"ok"`
}

// errorResponse reports a refused request with a machine-readable code.
type errorResponse struct {
	V     int    `json:"v"`
	Code  string `json:"code"`
	Error string `json:"error"`
}

// StatusResponse is the ops surface: the plan being coordinated and a
// progress snapshot. The CLI and tests poll it to detect liveness and
// completion.
type StatusResponse struct {
	V        int      `json:"v"`
	Plan     string   `json:"plan"`
	Drained  bool     `json:"drained"`
	Snapshot Snapshot `json:"snapshot"`
}

// payloadSum is the checksum acks carry: hex SHA-256 of the payload.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Server exposes a Queue over HTTP to pull workers on other machines,
// speaking versioned JSON messages. Leases bind to a plan fingerprint:
// a worker must present the same fingerprint (having rebuilt the plan
// from the same inputs) before any work is handed out. Ack payloads are
// checksummed; a torn or corrupted result is refused and the lease runs
// on, so the unit is re-delivered instead of merged corrupt.
type Server struct {
	queue *Queue
	plan  string
	mux   *http.ServeMux
}

// NewServer wraps the queue for the plan with the given fingerprint.
func NewServer(queue *Queue, plan string) *Server {
	s := &Server{queue: queue, plan: plan, mux: http.NewServeMux()}
	s.mux.HandleFunc(leasePath, s.handleLease)
	s.mux.HandleFunc(heartbeatPath, s.handleHeartbeat)
	s.mux.HandleFunc(ackPath, s.handleAck)
	s.mux.HandleFunc(nackPath, s.handleNack)
	s.mux.HandleFunc(statusPath, s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeError writes a refusal with its wire code.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{V: ProtocolVersion, Code: code, Error: err.Error()})
}

// decode parses a request body into req, enforcing the protocol version
// (every request type embeds it as "v").
func decode(w http.ResponseWriter, r *http.Request, req any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return false
	}
	if err := json.Unmarshal(body, req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return false
	}
	var v struct {
		V int `json:"v"`
	}
	_ = json.Unmarshal(body, &v)
	if v.V != ProtocolVersion {
		writeError(w, http.StatusBadRequest, codeBadVersion,
			fmt.Errorf("coordinator: protocol version %d, this server speaks %d", v.V, ProtocolVersion))
		return false
	}
	return true
}

// handleLease grants the next ready task, or reports drained/retry.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Plan != s.plan {
		writeError(w, http.StatusConflict, codePlanMismatch,
			fmt.Errorf("%w (worker plan %.16s…, coordinator plan %.16s…)", ErrPlanMismatch, req.Plan, s.plan))
		return
	}
	lease, wait, err := s.queue.TryLease(req.Worker)
	if errors.Is(err, ErrDrained) {
		writeJSON(w, http.StatusOK, leaseResponse{V: ProtocolVersion, Drained: true})
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeBadRequest, err)
		return
	}
	if lease != nil {
		writeJSON(w, http.StatusOK, leaseResponse{V: ProtocolVersion, Lease: lease})
		return
	}
	retry := wait.Milliseconds()
	if retry <= 0 || retry > 1000 {
		retry = 1000
	}
	writeJSON(w, http.StatusOK, leaseResponse{V: ProtocolVersion, RetryMS: retry})
}

// leaseOpError maps queue refusals onto wire codes.
func leaseOpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrLeaseLost):
		writeError(w, http.StatusConflict, codeLeaseLost, err)
	case errors.Is(err, ErrUnknownWorker):
		writeError(w, http.StatusConflict, codeUnknownWorker, err)
	default:
		writeError(w, http.StatusInternalServerError, codeBadRequest, err)
	}
}

// handleHeartbeat extends a lease.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req leaseOpRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.queue.Heartbeat(r.Context(), req.Worker, req.Lease); err != nil {
		leaseOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, okResponse{V: ProtocolVersion, OK: true})
}

// handleAck verifies the payload checksum, then resolves the lease. A
// checksum mismatch leaves the lease untouched: the worker can re-ack,
// or die and let expiry requeue the task.
func (s *Server) handleAck(w http.ResponseWriter, r *http.Request) {
	var req ackRequest
	if !decode(w, r, &req) {
		return
	}
	if payloadSum(req.Payload) != req.PayloadSum {
		writeError(w, http.StatusBadRequest, codeBadPayload, ErrBadPayload)
		return
	}
	if err := s.queue.Ack(r.Context(), req.Worker, req.Lease, req.Payload); err != nil {
		leaseOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, okResponse{V: ProtocolVersion, OK: true})
}

// handleNack fails a lease's attempt.
func (s *Server) handleNack(w http.ResponseWriter, r *http.Request) {
	var req leaseOpRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.queue.Nack(r.Context(), req.Worker, req.Lease, req.Reason); err != nil {
		leaseOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, okResponse{V: ProtocolVersion, OK: true})
}

// handleStatus reports the plan and a progress snapshot.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.queue.Snapshot()
	writeJSON(w, http.StatusOK, StatusResponse{
		V: ProtocolVersion, Plan: s.plan, Drained: snap.Drained(), Snapshot: snap,
	})
}

// Client is the HTTP side of Coordinator: it speaks the versioned JSON
// protocol against a Server, turning the poll-style lease endpoint back
// into the blocking Lease the Worker loop expects.
type Client struct {
	base string
	plan string
	http *http.Client
	clk  Clock
}

// Dial builds a client for the coordinator at base (e.g.
// "http://host:7077"), presenting the given plan fingerprint on every
// lease request.
func Dial(base, plan string) *Client {
	return &Client{base: base, plan: plan, http: &http.Client{}, clk: SystemClock()}
}

// post sends one JSON request and decodes the response into out,
// mapping wire error codes back onto the sentinel errors.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(raw, &e) == nil && e.Code != "" {
			return wireError(e)
		}
		return fmt.Errorf("coordinator: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}

// wireError maps an errorResponse onto the matching sentinel error so
// errors.Is holds across the transport.
func wireError(e errorResponse) error {
	switch e.Code {
	case codeLeaseLost:
		return fmt.Errorf("%w (%s)", ErrLeaseLost, e.Error)
	case codeUnknownWorker:
		return fmt.Errorf("%w (%s)", ErrUnknownWorker, e.Error)
	case codeDrained:
		return ErrDrained
	case codePlanMismatch:
		return fmt.Errorf("%w (%s)", ErrPlanMismatch, e.Error)
	case codeBadPayload:
		return fmt.Errorf("%w (%s)", ErrBadPayload, e.Error)
	}
	return fmt.Errorf("coordinator: %s: %s", e.Code, e.Error)
}

// Lease polls the coordinator until a task is granted, the queue drains
// (ErrDrained) or ctx is cancelled, honouring the server's retry hints.
func (c *Client) Lease(ctx context.Context, worker string) (*Lease, error) {
	for {
		if in := chaos.Current(); in != nil {
			if err := in.OnCoord(chaos.HookLease, worker); err != nil {
				return nil, err
			}
		}
		var resp leaseResponse
		err := c.post(ctx, leasePath, leaseRequest{V: ProtocolVersion, Worker: worker, Plan: c.plan}, &resp)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.Drained:
			return nil, ErrDrained
		case resp.Lease != nil:
			return resp.Lease, nil
		}
		retry := time.Duration(resp.RetryMS) * time.Millisecond
		if retry <= 0 {
			retry = 200 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.clk.After(retry):
		}
	}
}

// Heartbeat extends the lease over the wire.
func (c *Client) Heartbeat(ctx context.Context, worker, leaseID string) error {
	if in := chaos.Current(); in != nil {
		if err := in.OnCoord(chaos.HookHeartbeat, worker); err != nil {
			return err
		}
	}
	var resp okResponse
	return c.post(ctx, heartbeatPath, leaseOpRequest{V: ProtocolVersion, Worker: worker, Lease: leaseID}, &resp)
}

// Ack resolves the lease with a checksummed payload. The checksum is
// computed before the chaos hook sees the payload, so an injected flip
// models a result torn in transit after checksumming — the server's
// verification refuses it and the lease runs on.
func (c *Client) Ack(ctx context.Context, worker, leaseID string, payload []byte) error {
	sum := payloadSum(payload)
	if in := chaos.Current(); in != nil {
		var err error
		if payload, err = in.OnAck(worker, payload); err != nil {
			return err
		}
	}
	var resp okResponse
	return c.post(ctx, ackPath, ackRequest{
		V: ProtocolVersion, Worker: worker, Lease: leaseID,
		Payload: payload, PayloadSum: sum,
	}, &resp)
}

// Nack fails the lease's attempt over the wire.
func (c *Client) Nack(ctx context.Context, worker, leaseID, reason string) error {
	var resp okResponse
	return c.post(ctx, nackPath, leaseOpRequest{V: ProtocolVersion, Worker: worker, Lease: leaseID, Reason: reason}, &resp)
}

// Status fetches the coordinator's plan and progress snapshot.
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+statusPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if out.V != ProtocolVersion {
		return nil, fmt.Errorf("coordinator: status protocol version %d, this client speaks %d", out.V, ProtocolVersion)
	}
	return &out, nil
}

// WaitReachable polls the status endpoint until the coordinator answers
// (a worker may start before its coordinator is listening), the timeout
// lapses, or ctx is cancelled. It also verifies the plan fingerprints
// agree, so a worker fails fast when pointed at the wrong sweep.
func (c *Client) WaitReachable(ctx context.Context, timeout time.Duration) error {
	deadline := c.clk.Now().Add(timeout)
	var last error
	for {
		status, err := c.Status(ctx)
		if err == nil {
			if status.Plan != c.plan {
				return fmt.Errorf("%w (worker plan %.16s…, coordinator plan %.16s…)", ErrPlanMismatch, c.plan, status.Plan)
			}
			return nil
		}
		last = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if c.clk.Now().After(deadline) {
			return fmt.Errorf("coordinator: not reachable within %s: %w", timeout, last)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.clk.After(200 * time.Millisecond):
		}
	}
}
