package coordinator

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const testPlan = "0123456789abcdef0123456789abcdef"

func newTestServer(t *testing.T, cfg Config, ids ...string) (*Queue, *httptest.Server) {
	t.Helper()
	q := mustQueue(t, cfg, ids...)
	srv := httptest.NewServer(NewServer(q, testPlan))
	t.Cleanup(srv.Close)
	return q, srv
}

// TestHTTPEndToEnd runs two Worker loops against the HTTP transport and
// drains a queue that includes one transiently failing task: the full
// lease/heartbeat/ack/nack surface crosses the wire.
func TestHTTPEndToEnd(t *testing.T) {
	q, srv := newTestServer(t, testConfig(), "a", "b", "c", "d")

	var mu sync.Mutex
	attempts := map[string]int{}
	exec := func(_ context.Context, task string, _ int) ([]byte, error) {
		mu.Lock()
		attempts[task]++
		n := attempts[task]
		mu.Unlock()
		if task == "b" && n == 1 {
			return nil, errors.New("transient simulated deadlock")
		}
		return []byte("result-" + task), nil
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Name:      fmt.Sprintf("w%d", i),
				Coord:     Dial(srv.URL, testPlan),
				Exec:      exec,
				Heartbeat: 20 * time.Millisecond,
			}
			if err := w.Run(context.Background()); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	snap := q.Snapshot()
	if snap.Done != 4 || snap.Dead != 0 || snap.Retries != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	payloads := q.Payloads()
	for _, id := range []string{"a", "b", "c", "d"} {
		if string(payloads[id]) != "result-"+id {
			t.Errorf("payload for %s = %q", id, payloads[id])
		}
	}
}

// TestHTTPSentinelErrorsCrossTheWire verifies errors.Is holds across the
// transport for every refusal the server can issue on a lease operation.
func TestHTTPSentinelErrorsCrossTheWire(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 40 * time.Millisecond
	_, srv := newTestServer(t, cfg, "a")
	ctx := context.Background()

	c := Dial(srv.URL, testPlan)
	lease, err := c.Lease(ctx, "w0")
	if err != nil {
		t.Fatal(err)
	}
	// Wrong worker name on a held lease.
	if err := c.Heartbeat(ctx, "impostor", lease.ID); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("impostor heartbeat: %v", err)
	}
	// Expired lease.
	time.Sleep(2 * cfg.LeaseTTL)
	if err := c.Heartbeat(ctx, "w0", lease.ID); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("heartbeat on expired lease: %v", err)
	}
	if err := c.Ack(ctx, "w0", lease.ID, []byte("late")); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("ack on expired lease: %v", err)
	}
	if err := c.Nack(ctx, "w0", lease.ID, "late"); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("nack on expired lease: %v", err)
	}
}

// TestHTTPPlanMismatch rejects a worker that rebuilt a different plan —
// both on the lease path and in the WaitReachable handshake.
func TestHTTPPlanMismatch(t *testing.T) {
	_, srv := newTestServer(t, testConfig(), "a")
	ctx := context.Background()

	c := Dial(srv.URL, "ffff000000000000ffff000000000000")
	if _, err := c.Lease(ctx, "w0"); !errors.Is(err, ErrPlanMismatch) {
		t.Errorf("lease with wrong plan: %v", err)
	}
	if err := c.WaitReachable(ctx, time.Second); !errors.Is(err, ErrPlanMismatch) {
		t.Errorf("handshake with wrong plan: %v", err)
	}
	// The matching client handshakes fine.
	if err := Dial(srv.URL, testPlan).WaitReachable(ctx, time.Second); err != nil {
		t.Errorf("handshake with right plan: %v", err)
	}
}

// TestHTTPVersionMismatch rejects requests carrying the wrong protocol
// version with a bad_version refusal rather than misreading the body.
func TestHTTPVersionMismatch(t *testing.T) {
	_, srv := newTestServer(t, testConfig(), "a")
	body, _ := json.Marshal(leaseRequest{V: ProtocolVersion + 1, Worker: "w0", Plan: testPlan})
	resp, err := http.Post(srv.URL+leasePath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != codeBadVersion {
		t.Errorf("code %q", e.Code)
	}
	if !strings.Contains(e.Error, "version") {
		t.Errorf("error %q", e.Error)
	}
}

// TestHTTPCorruptAckRequeues is the torn-artifact scenario: a worker dies
// mid-result-write, so its ack arrives with a payload that fails its
// checksum. The server must refuse the corrupt result WITHOUT touching
// the lease; expiry then requeues the unit and a healthy worker redoes
// it, so the merge never sees the partial result.
func TestHTTPCorruptAckRequeues(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 60 * time.Millisecond
	q, srv := newTestServer(t, cfg, "a")
	ctx := context.Background()

	c := Dial(srv.URL, testPlan)
	lease, err := c.Lease(ctx, "torn")
	if err != nil {
		t.Fatal(err)
	}
	// Hand-craft an ack whose checksum does not match its payload — the
	// wire-level picture of a result truncated mid-write.
	body, _ := json.Marshal(ackRequest{
		V: ProtocolVersion, Worker: "torn", Lease: lease.ID,
		Payload: []byte("partial resul"), PayloadSum: payloadSum([]byte("full result")),
	})
	resp, err := http.Post(srv.URL+ackPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || e.Code != codeBadPayload {
		t.Fatalf("status %d code %q", resp.StatusCode, e.Code)
	}
	if !errors.Is(wireError(e), ErrBadPayload) {
		t.Errorf("wire error does not map to ErrBadPayload: %v", wireError(e))
	}
	// The corrupt ack must not have resolved the task.
	if snap := q.Snapshot(); snap.Done != 0 {
		t.Fatalf("corrupt ack resolved the task: %+v", snap)
	}

	// The worker is gone; the lease expires and a healthy worker redoes
	// the unit with an intact payload.
	takeover, err := c.Lease(ctx, "healthy")
	if err != nil {
		t.Fatal(err)
	}
	if takeover.Task != "a" || takeover.Attempt != 2 {
		t.Fatalf("takeover lease %+v", takeover)
	}
	if err := c.Ack(ctx, "healthy", takeover.ID, []byte("full result")); err != nil {
		t.Fatal(err)
	}
	snap := q.Snapshot()
	if snap.Done != 1 || snap.Expired != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	if got := string(q.Payloads()["a"]); got != "full result" {
		t.Errorf("merged payload %q", got)
	}
}

// TestHTTPDrainedAndStatus covers the worker exit path (drained lease
// response) and the status surface workers and the CLI poll.
func TestHTTPDrainedAndStatus(t *testing.T) {
	_, srv := newTestServer(t, testConfig(), "a")
	ctx := context.Background()
	c := Dial(srv.URL, testPlan)

	lease, err := c.Lease(ctx, "w0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ack(ctx, "w0", lease.ID, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lease(ctx, "w0"); !errors.Is(err, ErrDrained) {
		t.Fatalf("lease after drain: %v", err)
	}
	status, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Drained || status.Plan != testPlan || status.Snapshot.Done != 1 {
		t.Errorf("status %+v", status)
	}
}

// TestHTTPRetryHint verifies a client with nothing to lease honours the
// server's poll hint instead of spinning, then picks up the requeued task.
func TestHTTPRetryHint(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 80 * time.Millisecond
	q, srv := newTestServer(t, cfg, "a")
	ctx := context.Background()

	// Occupy the only task from a worker that will die silently.
	if _, err := Dial(srv.URL, testPlan).Lease(ctx, "goner"); err != nil {
		t.Fatal(err)
	}
	// A second client sees nothing ready (retry hint), polls, and wins the
	// task once the goner's lease expires.
	c := Dial(srv.URL, testPlan)
	lease, err := c.Lease(ctx, "patient")
	if err != nil {
		t.Fatal(err)
	}
	if lease.Task != "a" || lease.Attempt != 2 {
		t.Fatalf("lease %+v", lease)
	}
	if err := c.Ack(ctx, "patient", lease.ID, nil); err != nil {
		t.Fatal(err)
	}
	if snap := q.Snapshot(); snap.Done != 1 || snap.Expired != 1 {
		t.Errorf("snapshot %+v", snap)
	}
}

// TestHTTPSixteenWorkerHammer saturates the transport: 16 Worker loops
// pull 64 tasks over the wire while a status poller reads concurrently.
// A quarter of the tasks fail their first attempt (exercising nack and
// retry under contention) and every execution sleeps past the heartbeat
// interval, so lease extensions race leases, acks and expiry sweeps.
// Run under -race this is the transport's data-race gauntlet; the
// assertions are on the invariants that must survive any interleaving:
// every task done exactly once, no dead letters, no payload lost or
// cross-wired.
func TestHTTPSixteenWorkerHammer(t *testing.T) {
	const (
		workers = 16
		tasks   = 64
	)
	cfg := testConfig()
	cfg.LeaseTTL = 500 * time.Millisecond // generous: expiry is not the point here
	cfg.MaxAttempts = 12
	ids := make([]string, tasks)
	for i := range ids {
		ids[i] = fmt.Sprintf("unit-%02d", i)
	}
	q, srv := newTestServer(t, cfg, ids...)

	var mu sync.Mutex
	attempts := map[string]int{}
	failedOnce := 0
	exec := func(_ context.Context, task string, _ int) ([]byte, error) {
		mu.Lock()
		attempts[task]++
		n := attempts[task]
		mu.Unlock()
		time.Sleep(3 * time.Millisecond) // outlive the heartbeat interval
		if n == 1 && strings.HasSuffix(task, "0") || n == 1 && strings.HasSuffix(task, "5") {
			mu.Lock()
			failedOnce++
			mu.Unlock()
			return nil, errors.New("transient first-attempt failure")
		}
		return []byte("result-" + task), nil
	}

	// A concurrent status poller, as the CLI would run against a live
	// fleet; stopped once the workers drain.
	pollDone := make(chan struct{})
	pollStopped := make(chan struct{})
	go func() {
		defer close(pollStopped)
		c := Dial(srv.URL, testPlan)
		for {
			select {
			case <-pollDone:
				return
			default:
			}
			if _, err := c.Status(context.Background()); err != nil {
				t.Error("status poll:", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Name:      fmt.Sprintf("hammer-%02d", i),
				Coord:     Dial(srv.URL, testPlan),
				Exec:      exec,
				Heartbeat: 2 * time.Millisecond,
			}
			if err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(pollDone)
	<-pollStopped

	snap := q.Snapshot()
	if snap.Done != tasks || snap.Dead != 0 {
		t.Fatalf("snapshot %+v, want %d done and 0 dead", snap, tasks)
	}
	if snap.Retries < failedOnce {
		t.Errorf("retries %d < %d injected first-attempt failures", snap.Retries, failedOnce)
	}
	payloads := q.Payloads()
	if len(payloads) != tasks {
		t.Fatalf("%d payloads, want %d", len(payloads), tasks)
	}
	for _, id := range ids {
		if got := string(payloads[id]); got != "result-"+id {
			t.Errorf("payload for %s = %q", id, got)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		if attempts[id] == 0 {
			t.Errorf("task %s never executed", id)
		}
	}
}
