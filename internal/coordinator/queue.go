package coordinator

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// taskState is one task's position in the lease state machine.
type taskState int

const (
	taskPending taskState = iota // ready (or backing off) for a lease
	taskLeased                   // handed to a worker, lease live
	taskDone                     // acked with a result
	taskDead                     // attempt budget exhausted
)

// task is the queue's record of one unit of work.
type task struct {
	id        string
	pos       int // submission order; pending tasks are leased in this order
	state     taskState
	attempts  int       // grants so far (1-based once leased)
	notBefore time.Time // backoff gate while pending
	reasons   []string  // one failure reason per failed attempt
	// Lease fields, valid while state == taskLeased.
	leaseID  string
	worker   string
	deadline time.Time
	// payload is the ack result, valid once state == taskDone.
	payload []byte
}

// Queue is the in-process coordinator: a pull queue of tasks with
// per-task leases, heartbeat-extended deadlines, expiry requeue, bounded
// jittered retries and a dead-letter set. It implements Coordinator
// directly, and Server exposes the same queue over HTTP. All methods are
// safe for concurrent use.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	tasks   map[string]*task
	order   []*task // submission order
	leases  map[string]*task
	seq     int // lease token sequence
	retries int
	expired int
	workers map[string]*WorkerStat
	jitter  *rand.Rand
	wake    chan struct{} // closed and replaced on every state change
}

// NewQueue builds a queue over the task IDs, leased in the given order.
// Duplicate IDs are an error (leases address tasks by ID).
func NewQueue(cfg Config, ids []string) (*Queue, error) {
	q := &Queue{
		cfg:     cfg.withDefaults(),
		tasks:   make(map[string]*task, len(ids)),
		leases:  map[string]*task{},
		workers: map[string]*WorkerStat{},
		wake:    make(chan struct{}),
	}
	q.jitter = rand.New(rand.NewSource(q.cfg.Seed))
	for i, id := range ids {
		if _, dup := q.tasks[id]; dup {
			return nil, fmt.Errorf("coordinator: duplicate task %q", id)
		}
		t := &task{id: id, pos: i}
		q.tasks[id] = t
		q.order = append(q.order, t)
	}
	return q, nil
}

// Len returns the number of tasks in the queue.
func (q *Queue) Len() int { return len(q.order) }

// wakeAll signals every blocked Lease/Wait that queue state changed.
// Callers hold q.mu.
func (q *Queue) wakeAllLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// emit delivers events to the observer. Callers must NOT hold q.mu: the
// observer may take locks of its own (but must not call back into q).
func (q *Queue) emit(events []Event) {
	if q.cfg.OnEvent == nil {
		return
	}
	for _, e := range events {
		q.cfg.OnEvent(e)
	}
}

// stat returns the per-worker stats record, creating it on first use.
// Callers hold q.mu.
func (q *Queue) statLocked(worker string) *WorkerStat {
	s, ok := q.workers[worker]
	if !ok {
		s = &WorkerStat{Worker: worker}
		q.workers[worker] = s
	}
	return s
}

// expireLocked requeues (or dead-letters) every task whose lease
// deadline has passed. Callers hold q.mu; returned events must be
// emitted after unlocking.
func (q *Queue) expireLocked(now time.Time) []Event {
	var events []Event
	for _, t := range q.order {
		if t.state != taskLeased || now.Before(t.deadline) {
			continue
		}
		q.expired++
		q.statLocked(t.worker).Expired++
		events = append(events, Event{Kind: EventExpire, Task: t.id, Worker: t.worker, Attempt: t.attempts, Reason: "lease expired"})
		events = append(events, q.failLocked(t, now, "lease expired")...)
	}
	return events
}

// failLocked resolves a failed attempt: back to pending with backoff, or
// to the dead-letter set once the attempt budget is spent. Callers hold
// q.mu.
func (q *Queue) failLocked(t *task, now time.Time, reason string) []Event {
	delete(q.leases, t.leaseID)
	t.leaseID, t.worker, t.deadline = "", "", time.Time{}
	t.reasons = append(t.reasons, reason)
	var events []Event
	if t.attempts >= q.cfg.MaxAttempts {
		t.state = taskDead
		events = append(events, Event{Kind: EventDeadLetter, Task: t.id, Attempt: t.attempts, Reason: reason})
	} else {
		t.state = taskPending
		t.notBefore = now.Add(q.backoffLocked(t.attempts))
		q.retries++
		events = append(events, Event{Kind: EventRequeue, Task: t.id, Attempt: t.attempts, Reason: reason})
	}
	if q.drainedLocked() {
		events = append(events, Event{Kind: EventDrained})
	}
	q.wakeAllLocked()
	return events
}

// backoffLocked computes the jittered exponential delay before a task's
// next attempt: base·2^(attempt-1) capped at MaxBackoff, jittered into
// [50%, 100%]. Callers hold q.mu (the jitter source is not
// concurrency-safe).
func (q *Queue) backoffLocked(attempt int) time.Duration {
	d := q.cfg.RetryBackoff
	for i := 1; i < attempt && d < q.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > q.cfg.MaxBackoff {
		d = q.cfg.MaxBackoff
	}
	return d/2 + time.Duration(q.jitter.Int63n(int64(d/2)+1))
}

// drainedLocked reports whether every task is resolved. Callers hold q.mu.
func (q *Queue) drainedLocked() bool {
	for _, t := range q.order {
		if t.state == taskPending || t.state == taskLeased {
			return false
		}
	}
	return true
}

// TryLease is the non-blocking lease primitive the transports build on.
// It expires overdue leases, then: grants the first ready pending task
// (in submission order); or reports ErrDrained; or returns a nil lease
// with the wait until the next state change worth re-polling for (the
// earliest backoff gate or lease deadline; 0 means "poll on wake only").
func (q *Queue) TryLease(worker string) (lease *Lease, wait time.Duration, err error) {
	now := q.cfg.Clock.Now()
	q.mu.Lock()
	events := q.expireLocked(now)

	var grant *Lease
	var next time.Time
	if q.drainedLocked() {
		err = ErrDrained
	} else {
		for _, t := range q.order {
			if t.state != taskPending {
				if t.state == taskLeased && (next.IsZero() || t.deadline.Before(next)) {
					next = t.deadline
				}
				continue
			}
			if now.Before(t.notBefore) {
				if next.IsZero() || t.notBefore.Before(next) {
					next = t.notBefore
				}
				continue
			}
			t.state = taskLeased
			t.attempts++
			q.seq++
			t.leaseID = fmt.Sprintf("%s.%d", t.id, q.seq)
			t.worker = worker
			t.deadline = now.Add(q.cfg.LeaseTTL)
			q.leases[t.leaseID] = t
			s := q.statLocked(worker)
			s.Leases++
			grant = &Lease{ID: t.leaseID, Task: t.id, Attempt: t.attempts, Deadline: t.deadline}
			events = append(events, Event{Kind: EventLease, Task: t.id, Worker: worker, Attempt: t.attempts})
			break
		}
	}
	q.mu.Unlock()
	q.emit(events)

	if err != nil {
		return nil, 0, err
	}
	if grant != nil {
		return grant, 0, nil
	}
	if !next.IsZero() {
		if wait = next.Sub(now); wait <= 0 {
			wait = time.Millisecond
		}
	}
	return nil, wait, nil
}

// Lease blocks until a task is ready, the queue drains (ErrDrained) or
// ctx is cancelled. It implements Coordinator.
func (q *Queue) Lease(ctx context.Context, worker string) (*Lease, error) {
	for {
		q.mu.Lock()
		wake := q.wake
		q.mu.Unlock()

		lease, wait, err := q.TryLease(worker)
		if err != nil {
			return nil, err
		}
		if lease != nil {
			return lease, nil
		}
		var timer <-chan time.Time
		if wait > 0 {
			timer = q.cfg.Clock.After(wait)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-wake:
		case <-timer:
		}
	}
}

// lookupLocked resolves a live lease for an operation, expiring overdue
// leases first. Callers hold q.mu.
func (q *Queue) lookupLocked(worker, leaseID string, now time.Time) (*task, []Event, error) {
	events := q.expireLocked(now)
	t, ok := q.leases[leaseID]
	if !ok {
		return nil, events, ErrLeaseLost
	}
	if t.worker != worker {
		return nil, events, ErrUnknownWorker
	}
	return t, events, nil
}

// Heartbeat extends the lease's deadline by LeaseTTL. ErrLeaseLost means
// the queue gave the task away (the worker should abandon its work).
func (q *Queue) Heartbeat(_ context.Context, worker, leaseID string) error {
	now := q.cfg.Clock.Now()
	q.mu.Lock()
	t, events, err := q.lookupLocked(worker, leaseID, now)
	if err == nil {
		t.deadline = now.Add(q.cfg.LeaseTTL)
	}
	q.mu.Unlock()
	q.emit(events)
	return err
}

// Ack resolves the lease's task as done, storing the result payload.
func (q *Queue) Ack(_ context.Context, worker, leaseID string, payload []byte) error {
	now := q.cfg.Clock.Now()
	q.mu.Lock()
	t, events, err := q.lookupLocked(worker, leaseID, now)
	if err == nil {
		delete(q.leases, t.leaseID)
		t.leaseID, t.deadline = "", time.Time{}
		t.state = taskDone
		t.payload = payload
		q.statLocked(worker).Acks++
		events = append(events, Event{Kind: EventAck, Task: t.id, Worker: worker, Attempt: t.attempts})
		if q.drainedLocked() {
			events = append(events, Event{Kind: EventDrained})
		}
		q.wakeAllLocked()
	}
	q.mu.Unlock()
	q.emit(events)
	return err
}

// Nack reports the lease's attempt failed: the task is requeued with
// backoff, or dead-lettered once its attempt budget is spent.
func (q *Queue) Nack(_ context.Context, worker, leaseID, reason string) error {
	now := q.cfg.Clock.Now()
	q.mu.Lock()
	t, events, err := q.lookupLocked(worker, leaseID, now)
	if err == nil {
		if reason == "" {
			reason = "unspecified failure"
		}
		q.statLocked(worker).Nacks++
		events = append(events, Event{Kind: EventNack, Task: t.id, Worker: worker, Attempt: t.attempts, Reason: reason})
		events = append(events, q.failLocked(t, now, reason)...)
	}
	q.mu.Unlock()
	q.emit(events)
	return err
}

// Wait blocks until the queue drains or ctx is cancelled. Unlike a
// worker pool join, it returns as soon as every task is resolved —
// including when the resolution is a dead letter — so a sweep with a
// poisoned unit terminates instead of hanging. Expiry of outstanding
// leases is driven here too, so Wait makes progress even with no worker
// left alive.
func (q *Queue) Wait(ctx context.Context) error {
	for {
		now := q.cfg.Clock.Now()
		q.mu.Lock()
		wake := q.wake
		events := q.expireLocked(now)
		drained := q.drainedLocked()
		var next time.Time
		for _, t := range q.order {
			if t.state == taskLeased && (next.IsZero() || t.deadline.Before(next)) {
				next = t.deadline
			}
		}
		q.mu.Unlock()
		q.emit(events)
		if drained {
			return nil
		}
		var timer <-chan time.Time
		if !next.IsZero() {
			wait := next.Sub(now)
			if wait <= 0 {
				wait = time.Millisecond
			}
			timer = q.cfg.Clock.After(wait)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-wake:
		case <-timer:
		}
	}
}

// Payloads returns the ack payload of every done task, keyed by task ID.
func (q *Queue) Payloads() map[string][]byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string][]byte, len(q.order))
	for _, t := range q.order {
		if t.state == taskDone {
			out[t.id] = t.payload
		}
	}
	return out
}

// Snapshot returns a consistent view of the queue's progress, with
// workers sorted by name and dead letters by task ID.
func (q *Queue) Snapshot() Snapshot {
	now := q.cfg.Clock.Now()
	q.mu.Lock()
	events := q.expireLocked(now)
	s := Snapshot{Total: len(q.order), Retries: q.retries, Expired: q.expired}
	for _, t := range q.order {
		switch t.state {
		case taskPending:
			s.Pending++
		case taskLeased:
			s.Leased++
		case taskDone:
			s.Done++
		case taskDead:
			s.Dead++
			s.DeadLetters = append(s.DeadLetters, DeadLetter{
				Task:     t.id,
				Attempts: t.attempts,
				Reasons:  append([]string(nil), t.reasons...),
			})
		}
	}
	for _, w := range q.workers {
		s.Workers = append(s.Workers, *w)
	}
	q.mu.Unlock()
	q.emit(events)
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	sort.Slice(s.DeadLetters, func(i, j int) bool { return s.DeadLetters[i].Task < s.DeadLetters[j].Task })
	return s
}
