package coordinator

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// testConfig returns a Config with timescales compressed far enough that
// the expiry tests finish quickly but stay deterministic in outcome (the
// assertions are on state transitions, never on tight timing).
func testConfig() Config {
	return Config{
		LeaseTTL:     100 * time.Millisecond,
		MaxAttempts:  3,
		RetryBackoff: 5 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
	}
}

func mustQueue(t *testing.T, cfg Config, ids ...string) *Queue {
	t.Helper()
	q, err := NewQueue(cfg, ids)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestQueueAckFlow drives the happy path: every task leased once, acked
// with a payload, queue drained, payloads retrievable.
func TestQueueAckFlow(t *testing.T) {
	q := mustQueue(t, testConfig(), "a", "b", "c")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		lease, err := q.Lease(ctx, "w0")
		if err != nil {
			t.Fatal(err)
		}
		if lease.Attempt != 1 {
			t.Errorf("attempt %d on first grant of %s", lease.Attempt, lease.Task)
		}
		if err := q.Ack(ctx, "w0", lease.ID, []byte("result-"+lease.Task)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Lease(ctx, "w0"); !errors.Is(err, ErrDrained) {
		t.Fatalf("lease on drained queue: %v", err)
	}
	if err := q.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	payloads := q.Payloads()
	for _, id := range []string{"a", "b", "c"} {
		if string(payloads[id]) != "result-"+id {
			t.Errorf("payload for %s = %q", id, payloads[id])
		}
	}
	snap := q.Snapshot()
	if !snap.Drained() || snap.Done != 3 || snap.Retries != 0 || snap.Expired != 0 {
		t.Errorf("snapshot %+v", snap)
	}
}

// TestQueueDuplicateTask rejects duplicate IDs at construction.
func TestQueueDuplicateTask(t *testing.T) {
	if _, err := NewQueue(Config{}, []string{"a", "a"}); err == nil {
		t.Fatal("duplicate task accepted")
	}
}

// TestLeaseExpiryRequeueTakeover is the crash-recovery core: a worker
// leases a task and dies (never heartbeats); the lease expires, the task
// requeues, and a second worker takes it over and finishes the sweep.
func TestLeaseExpiryRequeueTakeover(t *testing.T) {
	q := mustQueue(t, testConfig(), "a")
	ctx := context.Background()

	dead, err := q.Lease(ctx, "crashed")
	if err != nil {
		t.Fatal(err)
	}
	if dead.Attempt != 1 {
		t.Fatalf("first attempt = %d", dead.Attempt)
	}

	// The takeover worker blocks until the dead worker's lease expires
	// and the backoff passes, then gets the same task at attempt 2.
	takeover, err := q.Lease(ctx, "survivor")
	if err != nil {
		t.Fatal(err)
	}
	if takeover.Task != "a" || takeover.Attempt != 2 {
		t.Fatalf("takeover lease %+v", takeover)
	}
	// The dead worker's lease is gone: every operation on it fails.
	if err := q.Heartbeat(ctx, "crashed", dead.ID); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("heartbeat on expired lease: %v", err)
	}
	if err := q.Ack(ctx, "crashed", dead.ID, nil); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("ack on expired lease: %v", err)
	}
	if err := q.Ack(ctx, "survivor", takeover.ID, []byte("ok")); err != nil {
		t.Fatal(err)
	}

	snap := q.Snapshot()
	if !snap.Drained() || snap.Done != 1 || snap.Expired != 1 || snap.Retries != 1 {
		t.Errorf("snapshot %+v", snap)
	}
	var crashed, survivor WorkerStat
	for _, w := range snap.Workers {
		switch w.Worker {
		case "crashed":
			crashed = w
		case "survivor":
			survivor = w
		}
	}
	if crashed.Expired != 1 || crashed.Acks != 0 {
		t.Errorf("crashed worker stats %+v", crashed)
	}
	if survivor.Acks != 1 {
		t.Errorf("survivor stats %+v", survivor)
	}
}

// TestHeartbeatKeepsLeaseAlive holds one task well past the TTL under a
// steady heartbeat: the lease must never expire.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 250 * time.Millisecond
	q := mustQueue(t, cfg, "a")
	ctx := context.Background()
	lease, err := q.Lease(ctx, "w0")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(4 * cfg.LeaseTTL)
	for time.Now().Before(deadline) {
		if err := q.Heartbeat(ctx, "w0", lease.ID); err != nil {
			t.Fatalf("heartbeat failed: %v", err)
		}
		time.Sleep(cfg.LeaseTTL / 5)
	}
	if err := q.Ack(ctx, "w0", lease.ID, nil); err != nil {
		t.Fatalf("ack after sustained heartbeats: %v", err)
	}
	if snap := q.Snapshot(); snap.Expired != 0 {
		t.Errorf("lease expired despite heartbeats: %+v", snap)
	}
}

// TestRetryExhaustionDeadLetter nacks one task through its whole attempt
// budget: it must dead-letter with the full failure history, the queue
// must drain (no hang), and the lease count must equal MaxAttempts.
func TestRetryExhaustionDeadLetter(t *testing.T) {
	q := mustQueue(t, testConfig(), "poisoned", "fine")
	ctx := context.Background()

	grants := 0
	for {
		lease, err := q.Lease(ctx, "w0")
		if errors.Is(err, ErrDrained) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		grants++
		if lease.Task == "poisoned" {
			if err := q.Nack(ctx, "w0", lease.ID, fmt.Sprintf("simulated deadlock (attempt %d)", lease.Attempt)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := q.Ack(ctx, "w0", lease.ID, []byte("ok")); err != nil {
			t.Fatal(err)
		}
	}

	if err := q.Wait(ctx); err != nil {
		t.Fatalf("wait on drained-with-DLQ queue: %v", err)
	}
	snap := q.Snapshot()
	if snap.Done != 1 || snap.Dead != 1 || !snap.Drained() {
		t.Fatalf("snapshot %+v", snap)
	}
	if grants != 1+testConfig().MaxAttempts {
		t.Errorf("granted %d leases, want %d", grants, 1+testConfig().MaxAttempts)
	}
	if len(snap.DeadLetters) != 1 {
		t.Fatalf("dead letters %+v", snap.DeadLetters)
	}
	dl := snap.DeadLetters[0]
	if dl.Task != "poisoned" || dl.Attempts != testConfig().MaxAttempts {
		t.Errorf("dead letter %+v", dl)
	}
	if len(dl.Reasons) != testConfig().MaxAttempts {
		t.Fatalf("reasons %v", dl.Reasons)
	}
	for i, r := range dl.Reasons {
		if want := fmt.Sprintf("simulated deadlock (attempt %d)", i+1); r != want {
			t.Errorf("reason %d = %q, want %q", i, r, want)
		}
	}
}

// TestCrashConsumesAttemptBudget verifies a task that kills its worker
// every time still dead-letters: lease expiry counts as a failed attempt,
// so a poisoned unit cannot cycle through crash-requeue forever.
func TestCrashConsumesAttemptBudget(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 30 * time.Millisecond
	q := mustQueue(t, cfg, "killer")
	ctx := context.Background()
	for i := 1; i <= cfg.MaxAttempts; i++ {
		lease, err := q.Lease(ctx, fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
		if lease.Attempt != i {
			t.Fatalf("attempt %d granted as %d", i, lease.Attempt)
		}
		// Worker "dies": no heartbeat, no ack. Wait drives expiry.
	}
	if err := q.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	snap := q.Snapshot()
	if snap.Dead != 1 || snap.Expired != cfg.MaxAttempts {
		t.Fatalf("snapshot %+v", snap)
	}
	if got := snap.DeadLetters[0].Reasons; len(got) != cfg.MaxAttempts || got[0] != "lease expired" {
		t.Errorf("reasons %v", got)
	}
}

// TestNackBackoffGates verifies a failed task is not immediately
// re-leasable: TryLease reports a wait while the backoff gate holds.
func TestNackBackoffGates(t *testing.T) {
	cfg := testConfig()
	cfg.RetryBackoff = 250 * time.Millisecond
	cfg.MaxBackoff = time.Second
	q := mustQueue(t, cfg, "a")
	ctx := context.Background()
	lease, err := q.Lease(ctx, "w0")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Nack(ctx, "w0", lease.ID, "transient"); err != nil {
		t.Fatal(err)
	}
	got, wait, err := q.TryLease("w0")
	if err != nil || got != nil {
		t.Fatalf("lease granted during backoff: %v %v", got, err)
	}
	if wait <= 0 {
		t.Fatalf("no re-poll hint during backoff")
	}
	// The blocking Lease honours the gate and eventually re-grants.
	again, err := q.Lease(ctx, "w0")
	if err != nil {
		t.Fatal(err)
	}
	if again.Task != "a" || again.Attempt != 2 {
		t.Fatalf("retry lease %+v", again)
	}
}

// TestQueueEvents pins the event stream for a retry-then-DLQ flow.
func TestQueueEvents(t *testing.T) {
	var mu sync.Mutex
	var kinds []string
	cfg := testConfig()
	cfg.MaxAttempts = 2
	cfg.OnEvent = func(e Event) {
		mu.Lock()
		kinds = append(kinds, string(e.Kind))
		mu.Unlock()
	}
	q := mustQueue(t, cfg, "a")
	ctx := context.Background()
	l1, _ := q.Lease(ctx, "w0")
	_ = q.Nack(ctx, "w0", l1.ID, "boom")
	l2, err := q.Lease(ctx, "w0")
	if err != nil {
		t.Fatal(err)
	}
	_ = q.Nack(ctx, "w0", l2.ID, "boom again")

	mu.Lock()
	got := strings.Join(kinds, " ")
	mu.Unlock()
	want := "lease nack requeue lease nack dead-letter drained"
	if got != want {
		t.Fatalf("events %q, want %q", got, want)
	}
}

// TestConcurrentWorkersDrainEverything hammers one queue from many
// goroutine workers under -race: every task must resolve exactly once.
func TestConcurrentWorkersDrainEverything(t *testing.T) {
	const tasks, workers = 64, 8
	ids := make([]string, tasks)
	for i := range ids {
		ids[i] = fmt.Sprintf("task-%02d", i)
	}
	q := mustQueue(t, testConfig(), ids...)
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for {
				lease, err := q.Lease(ctx, name)
				if errors.Is(err, ErrDrained) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				_ = q.Ack(ctx, name, lease.ID, []byte(lease.Task))
			}
		}(w)
	}
	wg.Wait()
	snap := q.Snapshot()
	if snap.Done != tasks || snap.Retries != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
	payloads := q.Payloads()
	if len(payloads) != tasks {
		t.Fatalf("%d payloads", len(payloads))
	}
	total := 0
	for _, w := range snap.Workers {
		total += w.Acks
	}
	if total != tasks {
		t.Errorf("worker acks sum to %d", total)
	}
}

// TestWorkerRunLoop runs the Worker pull loop end to end over the
// in-process queue, including a nack-then-retry and drained exit.
func TestWorkerRunLoop(t *testing.T) {
	q := mustQueue(t, testConfig(), "a", "b")
	var mu sync.Mutex
	attempts := map[string]int{}
	w := &Worker{
		Name:      "w0",
		Coord:     q,
		Heartbeat: 20 * time.Millisecond,
		Exec: func(_ context.Context, task string, attempt int) ([]byte, error) {
			mu.Lock()
			attempts[task]++
			n := attempts[task]
			mu.Unlock()
			if task == "a" && n == 1 {
				return nil, errors.New("transient failure")
			}
			return []byte(task + "-done"), nil
		},
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := q.Snapshot()
	if snap.Done != 2 || snap.Dead != 0 || snap.Retries != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	if string(q.Payloads()["a"]) != "a-done" {
		t.Errorf("payloads %v", q.Payloads())
	}
}

// TestWorkerAbandonInjectedCrash simulates a worker crash through the
// ErrAbandon fault hook: the crashing worker exits mid-lease, the lease
// expires, and a surviving worker completes the whole queue.
func TestWorkerAbandonInjectedCrash(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 50 * time.Millisecond
	q := mustQueue(t, cfg, "a", "b", "c")

	crasher := &Worker{
		Name:  "crasher",
		Coord: q,
		Exec: func(_ context.Context, task string, _ int) ([]byte, error) {
			return nil, ErrAbandon
		},
	}
	if err := crasher.Run(context.Background()); !errors.Is(err, ErrAbandon) {
		t.Fatalf("crasher exit: %v", err)
	}

	survivor := &Worker{
		Name:      "survivor",
		Coord:     q,
		Heartbeat: 10 * time.Millisecond,
		Exec: func(_ context.Context, task string, _ int) ([]byte, error) {
			return []byte(task), nil
		},
	}
	if err := survivor.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := q.Snapshot()
	if snap.Done != 3 || snap.Dead != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Expired != 1 {
		t.Errorf("expired %d, want 1 (the crasher's abandoned lease)", snap.Expired)
	}
}

// TestWaitTerminatesWithNoWorkers verifies the no-hung-merge guarantee
// at its starkest: every worker is gone, a lease is outstanding, and
// Wait alone must still drive expiry and return.
func TestWaitTerminatesWithNoWorkers(t *testing.T) {
	cfg := testConfig()
	cfg.LeaseTTL = 30 * time.Millisecond
	cfg.MaxAttempts = 1
	q := mustQueue(t, cfg, "a")
	if _, err := q.Lease(context.Background(), "goner"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Wait(ctx); err != nil {
		t.Fatalf("wait hung or failed: %v", err)
	}
	if snap := q.Snapshot(); snap.Dead != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}
