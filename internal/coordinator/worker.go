package coordinator

import (
	"context"
	"errors"
	"time"
)

// Executor runs one task attempt and returns its result payload. A nil
// error acks the task; ErrAbandon simulates a worker crash (see Worker);
// any other error nacks the attempt with the error text as the reason.
// ctx is cancelled when the worker's lease is lost, so long executions
// on a revoked lease can stop wasting work.
type Executor func(ctx context.Context, task string, attempt int) ([]byte, error)

// Worker is the pull loop one worker runs against a Coordinator: lease,
// heartbeat while executing, then ack or nack, until the queue drains.
type Worker struct {
	// Name identifies the worker in leases, stats and events.
	Name string
	// Coord is the queue (in-process) or client (HTTP) to pull from.
	Coord Coordinator
	// Exec runs one task attempt.
	Exec Executor
	// Heartbeat is the interval between lease extensions; it should be
	// well under the queue's LeaseTTL (a third is conventional).
	// Default 5s.
	Heartbeat time.Duration
	// Clock overrides the time source, for tests. Default SystemClock.
	Clock Clock
}

// Run pulls and executes tasks until the queue drains (nil), ctx is
// cancelled, the Coordinator fails (transport error), or the Executor
// asks to simulate a crash (ErrAbandon — the current lease is abandoned
// un-acked, exactly like a worker death, and must expire before its task
// moves on).
func (w *Worker) Run(ctx context.Context) error {
	hb := w.Heartbeat
	if hb <= 0 {
		hb = 5 * time.Second
	}
	clock := w.Clock
	if clock == nil {
		clock = SystemClock()
	}
	for {
		lease, err := w.Coord.Lease(ctx, w.Name)
		if errors.Is(err, ErrDrained) {
			return nil
		}
		if err != nil {
			return err
		}
		payload, err := w.execute(ctx, clock, hb, lease)
		switch {
		case errors.Is(err, ErrAbandon):
			return err
		case errors.Is(err, ErrLeaseLost):
			// The queue already gave the task away; drop our result and
			// pull the next task.
		case err != nil:
			if nerr := w.Coord.Nack(ctx, w.Name, lease.ID, err.Error()); nerr != nil && !errors.Is(nerr, ErrLeaseLost) {
				return nerr
			}
		default:
			if aerr := w.Coord.Ack(ctx, w.Name, lease.ID, payload); aerr != nil && !errors.Is(aerr, ErrLeaseLost) {
				return aerr
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// execute runs one attempt under a heartbeat loop. It returns the
// executor's result, ErrLeaseLost if the lease expired from under us
// (the execution context is cancelled and the result discarded), or the
// executor's error.
func (w *Worker) execute(ctx context.Context, clock Clock, hb time.Duration, lease *Lease) ([]byte, error) {
	execCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		payload []byte
		err     error
	}
	done := make(chan result, 1)
	go func() {
		payload, err := w.Exec(execCtx, lease.Task, lease.Attempt)
		done <- result{payload, err}
	}()

	for {
		select {
		case res := <-done:
			return res.payload, res.err
		case <-clock.After(hb):
			if err := w.Coord.Heartbeat(ctx, w.Name, lease.ID); err != nil {
				cancel()
				if errors.Is(err, ErrLeaseLost) || errors.Is(err, ErrUnknownWorker) {
					<-done // let the executor wind down before moving on
					return nil, ErrLeaseLost
				}
				<-done
				return nil, err
			}
		case <-ctx.Done():
			cancel()
			<-done
			return nil, ctx.Err()
		}
	}
}
