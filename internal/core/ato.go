package core

import (
	"repro/internal/memmodel"
)

// AtoResult holds the outcome of the atomicity-induced-ordering fixpoint for
// one candidate execution under one atomicity type.
type AtoResult struct {
	// Exec is the analysed execution.
	Exec *memmodel.Execution
	// Type is the atomicity definition used.
	Type AtomicityType
	// Ato holds the atomicity-induced orderings derived by the fixpoint.
	Ato *memmodel.Relation
	// Order is com ∪ ppo ∪ bar ∪ ato.
	Order *memmodel.Relation
	// Valid reports whether the execution is a valid witness: Order is
	// acyclic and the uniproc condition holds.
	Valid bool
	// Cycle, when Valid is false because of a cycle, holds one cycle of
	// event indices for diagnostics.
	Cycle []int
	// UniprocViolation is true when the execution fails the uniproc (SC per
	// location) condition.
	UniprocViolation bool
}

// DeriveAto computes the atomicity-induced ordering relation (ato) for the
// execution under the given atomicity type, and decides validity.
//
// The construction follows §2.2 of the paper. Each atomicity definition
// disallows a set of events from appearing between the read half Ra and the
// write half Wa of an RMW in the global memory order. Whenever the existing
// order (com ∪ ppo ∪ bar ∪ ato so far) places Ra before a disallowed event
// M, atomicity additionally requires Wa before M; symmetrically, if M is
// ordered before Wa, atomicity requires M before Ra. The fixpoint repeats
// until no new edge is added. The execution is a valid witness iff the final
// union is acyclic and the uniproc condition holds.
//
// The fixpoint is sound and complete for deciding the existence of a global
// memory order (ghb) with no disallowed event between Ra and Wa: the derived
// edges are all forced (any ghb must contain them), and when the union is
// acyclic a witness order is obtained by linearizing with each RMW's two
// halves contracted — no event can lie on a path strictly between Ra and Wa
// without closing a cycle through the induced edges. The brute-force oracle
// in oracle.go checks this equivalence on every litmus test in the suite.
//
// DeriveAto materializes the full diagnostic result (ato edges, order,
// cycle) and allocates accordingly; validity-only callers should use Valid
// or a Checker, which run the same fixpoint against reusable scratch state.
func DeriveAto(x *memmodel.Execution, t AtomicityType) *AtoResult {
	n := len(x.Events)
	res := &AtoResult{Exec: x, Type: t, Ato: memmodel.NewRelation(n)}

	if !x.Uniproc() {
		res.UniprocViolation = true
		res.Order = x.BaseOrder().Union(res.Ato)
		res.Valid = false
		return res
	}

	pairs := RMWPairs(x)
	base := x.BaseOrder()

	// Precompute the disallowed event set per RMW pair.
	disallowed := make([][]int, len(pairs))
	for i, p := range pairs {
		disallowed[i] = DisallowedEvents(t, x, p)
	}

	order := base.Clone().Union(res.Ato)
	for {
		closure := order.Clone().TransitiveClosure()
		changed := false
		for i, p := range pairs {
			for _, m := range disallowed[i] {
				// Ra ordered before M forces Wa before M.
				if closure.Has(p.Read, m) && !res.Ato.Has(p.Write, m) && !closure.Has(p.Write, m) {
					res.Ato.Add(p.Write, m)
					order.Add(p.Write, m)
					changed = true
				}
				// M ordered before Wa forces M before Ra.
				if closure.Has(m, p.Write) && !res.Ato.Has(m, p.Read) && !closure.Has(m, p.Read) {
					res.Ato.Add(m, p.Read)
					order.Add(m, p.Read)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	res.Order = order
	if order.Acyclic() {
		res.Valid = true
	} else {
		res.Valid = false
		res.Cycle = order.FindCycle()
	}
	return res
}

// GlobalOrder returns one global-happens-before order (a linear extension of
// com ∪ ppo ∪ bar ∪ ato) for a valid execution, with the additional property
// that no disallowed event appears between the halves of any RMW. It returns
// false when the execution is not valid under the atomicity type.
//
// The linearization contracts each RMW into a single super-node (placing Wa
// immediately after Ra), which is always possible for a valid execution: any
// event forced onto a path strictly between Ra and Wa would have produced a
// cycle during the ato fixpoint.
func GlobalOrder(x *memmodel.Execution, t AtomicityType) ([]*memmodel.Event, bool) {
	res := DeriveAto(x, t)
	if !res.Valid {
		return nil, false
	}
	n := len(x.Events)
	pairs := RMWPairs(x)

	// Map every event to its group representative: Wa maps to its Ra, all
	// other events map to themselves.
	rep := make([]int, n)
	for i := range rep {
		rep[i] = i
	}
	waOf := make(map[int]int) // representative (Ra index) -> Wa index
	for _, p := range pairs {
		rep[p.Write] = p.Read
		waOf[p.Read] = p.Write
	}

	// Build the contracted relation over representatives.
	contracted := memmodel.NewRelation(n)
	for _, pr := range res.Order.Pairs() {
		a, b := rep[pr[0]], rep[pr[1]]
		if a != b {
			contracted.Add(a, b)
		}
	}
	topo, err := contracted.TopoSort()
	if err != nil {
		// Contraction introduced a cycle; fall back to the plain order. This
		// should not happen for valid executions (see package comment), but
		// degrade gracefully rather than panic.
		return ghbFromOrder(x, res.Order)
	}
	var out []*memmodel.Event
	for _, id := range topo {
		if rep[id] != id {
			continue // Wa nodes are emitted right after their Ra
		}
		out = append(out, x.Events[id])
		if wa, ok := waOf[id]; ok {
			out = append(out, x.Events[wa])
		}
	}
	return out, true
}

func ghbFromOrder(x *memmodel.Execution, order *memmodel.Relation) ([]*memmodel.Event, bool) {
	ghb, err := x.GHB(order)
	if err != nil {
		return nil, false
	}
	return ghb, true
}

// CheckGHBAtomicity verifies that a total order of events (a ghb candidate)
// satisfies the atomicity definition directly: no disallowed event appears
// between the halves of any RMW. This is the paper's literal definition and
// is used by the oracle and by tests to validate GlobalOrder's output.
func CheckGHBAtomicity(x *memmodel.Execution, ghb []*memmodel.Event, t AtomicityType) bool {
	pos := make(map[int]int, len(ghb))
	for i, e := range ghb {
		pos[e.Index] = i
	}
	for _, p := range RMWPairs(x) {
		ra, okR := pos[p.Read]
		wa, okW := pos[p.Write]
		if !okR || !okW {
			return false
		}
		if ra > wa {
			return false
		}
		for _, m := range DisallowedEvents(t, x, p) {
			pm, ok := pos[m]
			if !ok {
				continue
			}
			if pm > ra && pm < wa {
				return false
			}
		}
	}
	return true
}
