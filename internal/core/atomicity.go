// Package core implements the paper's primary contribution: read-modify-write
// (RMW) atomicity semantics for TSO under three atomicity definitions.
//
// The paper ("Fast RMWs for TSO: Semantics and Implementation", PLDI 2013)
// defines three flavours of RMW atomicity on top of the base TSO axiomatic
// model (internal/memmodel):
//
//   - Type-1 (strict, existing x86/SPARC semantics): no write to any address
//     may appear between the read half Ra and the write half Wa of the RMW in
//     the global memory order (ghb).
//   - Type-2: no read or write to the same address as the RMW may appear
//     between Ra and Wa in ghb.
//   - Type-3: no write to the same address as the RMW may appear between Ra
//     and Wa in ghb.
//
// Each atomicity definition induces additional orderings (the "ato"
// relation): whenever one half of the RMW is ordered against a disallowed
// event, the other half must be ordered the same way, otherwise the
// disallowed event could slip between the two halves. The package derives
// the ato relation by a fixpoint computation, uses it to decide validity of
// candidate executions, and exposes a model-checking API (Model) over
// litmus-sized programs. A brute-force linearization oracle (oracle.go)
// cross-checks the fixpoint construction directly against the paper's
// "nothing between Ra and Wa in ghb" definition.
package core

import (
	"fmt"

	"repro/internal/memmodel"
)

// AtomicityType selects one of the paper's three RMW atomicity definitions.
type AtomicityType int

const (
	// Type1 is the strict atomicity of existing TSO RMWs: no write to any
	// address between Ra and Wa in the global memory order.
	Type1 AtomicityType = iota + 1
	// Type2 forbids reads and writes to the same address as the RMW between
	// Ra and Wa.
	Type2
	// Type3 forbids only writes to the same address as the RMW between Ra
	// and Wa.
	Type3
)

// String returns the paper's name for the atomicity type.
func (t AtomicityType) String() string {
	switch t {
	case Type1:
		return "type-1"
	case Type2:
		return "type-2"
	case Type3:
		return "type-3"
	default:
		return fmt.Sprintf("AtomicityType(%d)", int(t))
	}
}

// AllTypes lists the three atomicity types in order of decreasing strength.
func AllTypes() []AtomicityType { return []AtomicityType{Type1, Type2, Type3} }

// ParseAtomicityType parses "type-1"/"type1"/"1" style names.
func ParseAtomicityType(s string) (AtomicityType, error) {
	switch s {
	case "type-1", "type1", "1":
		return Type1, nil
	case "type-2", "type2", "2":
		return Type2, nil
	case "type-3", "type3", "3":
		return Type3, nil
	default:
		return 0, fmt.Errorf("core: unknown atomicity type %q (want type-1, type-2 or type-3)", s)
	}
}

// Stronger reports whether t is at least as strong as other: every execution
// valid under t is valid under other. Type-1 is the strongest, type-3 the
// weakest.
func (t AtomicityType) Stronger(other AtomicityType) bool {
	return t <= other
}

// RMWPair identifies the two halves of one RMW instruction within an
// execution: the indices of the Ra and Wa events.
type RMWPair struct {
	// Read is the event index of the read half (Ra).
	Read int
	// Write is the event index of the write half (Wa).
	Write int
	// Addr is the location the RMW operates on.
	Addr memmodel.Addr
	// Thread is the issuing thread.
	Thread memmodel.ThreadID
	// ID is the RMW identifier shared by both halves.
	ID int
}

// RMWPairs extracts the (Ra, Wa) pairs of every RMW in the execution.
func RMWPairs(x *memmodel.Execution) []RMWPair {
	byID := map[int]*RMWPair{}
	var order []int
	for _, e := range x.Events {
		if e.RMW < 0 {
			continue
		}
		p, ok := byID[e.RMW]
		if !ok {
			p = &RMWPair{Read: -1, Write: -1, Addr: e.Addr, Thread: e.Thread, ID: e.RMW}
			byID[e.RMW] = p
			order = append(order, e.RMW)
		}
		switch e.Kind {
		case memmodel.KindRMWRead:
			p.Read = e.Index
		case memmodel.KindRMWWrite:
			p.Write = e.Index
		}
	}
	out := make([]RMWPair, 0, len(order))
	for _, id := range order {
		p := byID[id]
		if p.Read >= 0 && p.Write >= 0 {
			out = append(out, *p)
		}
	}
	return out
}

// Disallowed reports whether event m may not appear between the Ra and Wa of
// the given RMW pair in the global memory order under atomicity type t. The
// two halves of the RMW itself are never disallowed.
func Disallowed(t AtomicityType, m *memmodel.Event, pair RMWPair) bool {
	if m.Index == pair.Read || m.Index == pair.Write {
		return false
	}
	if !m.Kind.IsMemory() {
		return false
	}
	switch t {
	case Type1:
		// No write to any address between Ra and Wa.
		return m.IsWrite()
	case Type2:
		// No read or write to the same address between Ra and Wa.
		return m.Addr == pair.Addr
	case Type3:
		// No write to the same address between Ra and Wa.
		return m.IsWrite() && m.Addr == pair.Addr
	default:
		return false
	}
}

// DisallowedEvents returns the indices of all events that atomicity type t
// forbids from appearing between the halves of the given RMW pair.
func DisallowedEvents(t AtomicityType, x *memmodel.Execution, pair RMWPair) []int {
	var out []int
	for _, e := range x.Events {
		if Disallowed(t, e, pair) {
			out = append(out, e.Index)
		}
	}
	return out
}
