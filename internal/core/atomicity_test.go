package core

import (
	"testing"

	"repro/internal/memmodel"
)

func TestAtomicityTypeString(t *testing.T) {
	if Type1.String() != "type-1" || Type2.String() != "type-2" || Type3.String() != "type-3" {
		t.Error("atomicity type names do not match the paper")
	}
	if AtomicityType(9).String() == "" {
		t.Error("unknown atomicity type should still render")
	}
}

func TestParseAtomicityType(t *testing.T) {
	cases := map[string]AtomicityType{
		"type-1": Type1, "type1": Type1, "1": Type1,
		"type-2": Type2, "type2": Type2, "2": Type2,
		"type-3": Type3, "type3": Type3, "3": Type3,
	}
	for s, want := range cases {
		got, err := ParseAtomicityType(s)
		if err != nil || got != want {
			t.Errorf("ParseAtomicityType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseAtomicityType("type-4"); err == nil {
		t.Error("unknown type must not parse")
	}
}

func TestStrongerOrdering(t *testing.T) {
	if !Type1.Stronger(Type2) || !Type1.Stronger(Type3) || !Type2.Stronger(Type3) {
		t.Error("type-1 > type-2 > type-3 strength ordering broken")
	}
	if Type3.Stronger(Type2) || Type2.Stronger(Type1) {
		t.Error("weaker types must not claim to be stronger")
	}
	if !Type2.Stronger(Type2) {
		t.Error("a type is as strong as itself")
	}
}

func TestAllTypes(t *testing.T) {
	types := AllTypes()
	if len(types) != 3 || types[0] != Type1 || types[1] != Type2 || types[2] != Type3 {
		t.Errorf("AllTypes = %v", types)
	}
}

func TestRMWPairsExtraction(t *testing.T) {
	p := memmodel.NewProgram("pairs")
	p.AddThread(memmodel.Exchange(0, "r1", 1), memmodel.Write(1, 1))
	p.AddThread(memmodel.FetchAdd(1, "r2", 1))
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	x := execs[0]
	pairs := RMWPairs(x)
	if len(pairs) != 2 {
		t.Fatalf("found %d RMW pairs, want 2", len(pairs))
	}
	for _, pr := range pairs {
		ra := x.Events[pr.Read]
		wa := x.Events[pr.Write]
		if ra.Kind != memmodel.KindRMWRead || wa.Kind != memmodel.KindRMWWrite {
			t.Errorf("pair halves misclassified: %v / %v", ra, wa)
		}
		if ra.Addr != pr.Addr || wa.Addr != pr.Addr {
			t.Errorf("pair address mismatch")
		}
		if ra.Thread != pr.Thread {
			t.Errorf("pair thread mismatch")
		}
	}
}

func TestRMWPairsEmptyWithoutRMWs(t *testing.T) {
	p := memmodel.NewProgram("none")
	p.AddThread(memmodel.Write(0, 1), memmodel.Read(1, "r1"))
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := RMWPairs(execs[0]); len(got) != 0 {
		t.Fatalf("RMWPairs on RMW-free program = %v, want empty", got)
	}
}

// disallowedFixture builds one execution with a single RMW on x plus a write
// and a read to x and to y from another thread, and returns the events of
// interest for Disallowed tests.
func disallowedFixture(t *testing.T) (x *memmodel.Execution, pair RMWPair, wx, rx, wy, ry *memmodel.Event) {
	t.Helper()
	p := memmodel.NewProgram("disallowed")
	p.AddThread(memmodel.Exchange(0, "r1", 1))
	p.AddThread(memmodel.Write(0, 2), memmodel.Read(0, "r2"), memmodel.Write(1, 1), memmodel.Read(1, "r3"))
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	x = execs[0]
	pairs := RMWPairs(x)
	if len(pairs) != 1 {
		t.Fatalf("want 1 RMW pair, got %d", len(pairs))
	}
	pair = pairs[0]
	for _, e := range x.Events {
		if e.Thread != 1 {
			continue
		}
		switch {
		case e.Kind == memmodel.KindWrite && e.Addr == 0:
			wx = e
		case e.Kind == memmodel.KindRead && e.Addr == 0:
			rx = e
		case e.Kind == memmodel.KindWrite && e.Addr == 1:
			wy = e
		case e.Kind == memmodel.KindRead && e.Addr == 1:
			ry = e
		}
	}
	if wx == nil || rx == nil || wy == nil || ry == nil {
		t.Fatal("fixture events missing")
	}
	return
}

func TestDisallowedType1(t *testing.T) {
	x, pair, wx, rx, wy, ry := disallowedFixture(t)
	_ = x
	// Type-1: all writes (any address) disallowed; reads allowed.
	if !Disallowed(Type1, wx, pair) || !Disallowed(Type1, wy, pair) {
		t.Error("type-1 must disallow writes to any address")
	}
	if Disallowed(Type1, rx, pair) || Disallowed(Type1, ry, pair) {
		t.Error("type-1 must not disallow reads")
	}
}

func TestDisallowedType2(t *testing.T) {
	_, pair, wx, rx, wy, ry := disallowedFixture(t)
	// Type-2: same-address reads and writes disallowed; other addresses allowed.
	if !Disallowed(Type2, wx, pair) || !Disallowed(Type2, rx, pair) {
		t.Error("type-2 must disallow same-address reads and writes")
	}
	if Disallowed(Type2, wy, pair) || Disallowed(Type2, ry, pair) {
		t.Error("type-2 must not disallow accesses to other addresses")
	}
}

func TestDisallowedType3(t *testing.T) {
	_, pair, wx, rx, wy, ry := disallowedFixture(t)
	// Type-3: only same-address writes disallowed.
	if !Disallowed(Type3, wx, pair) {
		t.Error("type-3 must disallow same-address writes")
	}
	if Disallowed(Type3, rx, pair) {
		t.Error("type-3 must allow same-address reads")
	}
	if Disallowed(Type3, wy, pair) || Disallowed(Type3, ry, pair) {
		t.Error("type-3 must not disallow accesses to other addresses")
	}
}

func TestDisallowedNeverIncludesOwnHalvesOrFences(t *testing.T) {
	p := memmodel.NewProgram("own-halves")
	p.AddThread(memmodel.Exchange(0, "r1", 1), memmodel.Fence())
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	x := execs[0]
	pair := RMWPairs(x)[0]
	for _, typ := range AllTypes() {
		for _, e := range x.Events {
			if e.Index == pair.Read || e.Index == pair.Write {
				if Disallowed(typ, e, pair) {
					t.Errorf("%v: RMW's own halves must never be disallowed", typ)
				}
			}
			if e.IsFence() && Disallowed(typ, e, pair) {
				t.Errorf("%v: fences must never be disallowed", typ)
			}
		}
	}
}

func TestDisallowedEventsMonotoneInStrength(t *testing.T) {
	// The disallowed set of a stronger type contains... note: type-1 and
	// type-2 are incomparable as sets (type-2 adds same-address reads but
	// drops other-address writes), but type-3's set is contained in both.
	x, pair, _, _, _, _ := disallowedFixture(t)
	set := func(typ AtomicityType) map[int]bool {
		m := map[int]bool{}
		for _, i := range DisallowedEvents(typ, x, pair) {
			m[i] = true
		}
		return m
	}
	d1, d2, d3 := set(Type1), set(Type2), set(Type3)
	for i := range d3 {
		if !d1[i] {
			t.Errorf("type-3 disallows event %d that type-1 allows", i)
		}
		if !d2[i] {
			t.Errorf("type-3 disallows event %d that type-2 allows", i)
		}
	}
}
