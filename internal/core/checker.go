package core

import (
	"sync"

	"repro/internal/memmodel"
)

// Checker decides execution validity with reusable scratch state: the
// order/closure/ato relations live in the checker and are recycled across
// candidates, and the RMW pairing plus per-pair disallowed event sets are
// derived once per (program, atomicity type) and cached — they depend only
// on the program's events, not on the rf/ws choice. Checking a steady
// stream of candidates of one program therefore allocates nothing, which
// is what keeps EnumFilter-based verdicts inside enumeration workers
// allocation-free.
//
// The decision procedure is exactly DeriveAto's fixpoint (§2.2 of the
// paper) minus the diagnostics: use DeriveAto when the ato edges, the
// cycle, or an explanation is needed. A Checker is not safe for concurrent
// use; give each goroutine its own, or use the pooled package-level Valid.
type Checker struct {
	prog    *memmodel.Program
	nEvents int
	typ     AtomicityType
	cached  bool

	pairs      []RMWPair
	disallowed [][]int

	order, closure, ato memmodel.Relation
}

// NewChecker returns a checker with empty caches; the first Valid call
// sizes them for its program.
func NewChecker() *Checker { return &Checker{} }

// prepare (re)derives the RMW pairing and disallowed sets when the checker
// last saw a different program or atomicity type.
func (c *Checker) prepare(x *memmodel.Execution, t AtomicityType) {
	if c.cached && c.prog == x.Program && c.nEvents == len(x.Events) && c.typ == t {
		return
	}
	c.prog, c.nEvents, c.typ, c.cached = x.Program, len(x.Events), t, true
	c.pairs = RMWPairs(x)
	c.disallowed = c.disallowed[:0]
	for _, p := range c.pairs {
		c.disallowed = append(c.disallowed, DisallowedEvents(t, x, p))
	}
}

// Valid reports whether the execution is a valid witness of the TSO model
// extended with RMWs of the given atomicity type. It is equivalent to
// DeriveAto(x, t).Valid but allocation-free in steady state.
func (c *Checker) Valid(x *memmodel.Execution, t AtomicityType) bool {
	if !x.Uniproc() {
		return false
	}
	c.prepare(x, t)
	n := len(x.Events)
	com, ppo, bar := x.Com(), x.PPO(), x.Bar()
	c.order.Reset(n)
	c.order.Union(com)
	c.order.Union(ppo)
	c.order.Union(bar)
	c.ato.Reset(n)
	for {
		c.closure.CopyFrom(&c.order).TransitiveClosure()
		changed := false
		for i, p := range c.pairs {
			for _, m := range c.disallowed[i] {
				// Ra ordered before M forces Wa before M.
				if c.closure.Has(p.Read, m) && !c.ato.Has(p.Write, m) && !c.closure.Has(p.Write, m) {
					c.ato.Add(p.Write, m)
					c.order.Add(p.Write, m)
					changed = true
				}
				// M ordered before Wa forces M before Ra.
				if c.closure.Has(m, p.Write) && !c.ato.Has(m, p.Read) && !c.closure.Has(m, p.Read) {
					c.ato.Add(m, p.Read)
					c.order.Add(m, p.Read)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return c.order.Acyclic()
}

// checkerPool recycles checkers for the package-level Valid, so concurrent
// validity filters (one enumeration worker each) reuse at most one checker
// per goroutine instead of rebuilding scratch state per candidate.
var checkerPool = sync.Pool{New: func() any { return NewChecker() }}

// Valid reports whether the execution is a valid witness of the TSO model
// extended with RMWs of the given atomicity type. It draws a Checker from
// a pool, so concurrent calls are safe and steady-state calls on one
// program stay allocation-free; hot loops that want deterministic reuse
// can hold their own Checker instead.
func Valid(x *memmodel.Execution, t AtomicityType) bool {
	c := checkerPool.Get().(*Checker)
	ok := c.Valid(x, t)
	checkerPool.Put(c)
	return ok
}
