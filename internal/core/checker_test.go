package core

import (
	"testing"

	"repro/internal/memmodel"
)

// TestCheckerMatchesDeriveAtoAndOracle is the three-way differential for
// the allocation-free validity path: on every candidate execution of every
// oracle program and every atomicity type, the reusable Checker, the
// diagnostic DeriveAto fixpoint and the brute-force linearization oracle
// must agree. One Checker instance is reused across all candidates, types
// and programs, so the (program, type) cache invalidation is exercised too.
func TestCheckerMatchesDeriveAtoAndOracle(t *testing.T) {
	c := NewChecker()
	for _, p := range oraclePrograms() {
		execs, err := memmodel.Enumerate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, typ := range AllTypes() {
			mismatches := 0
			for _, x := range execs {
				fast := c.Valid(x, typ)
				slow := DeriveAto(x, typ).Valid
				oracle := ExistsWitnessOrder(x, typ)
				if fast != slow || fast != oracle {
					mismatches++
					if mismatches <= 3 {
						t.Errorf("%s/%s: checker=%v deriveAto=%v oracle=%v for execution:\n%s",
							p.Name, typ, fast, slow, oracle, x)
					}
				}
			}
			if mismatches > 3 {
				t.Errorf("%s/%s: %d further mismatches suppressed", p.Name, typ, mismatches-3)
			}
		}
	}
}

// TestCheckerSteadyStateAllocationFree pins the hot-path property the
// enumeration arenas rely on: after the first candidate of a program has
// warmed the checker's caches, validity checks allocate nothing. The
// executions are pre-materialized so only the check itself is measured.
func TestCheckerSteadyStateAllocationFree(t *testing.T) {
	p := memmodel.NewProgram("alloc-probe")
	p.AddThread(memmodel.Exchange(0, "a0", 1), memmodel.Read(1, "r0"))
	p.AddThread(memmodel.Write(1, 1), memmodel.Read(0, "r1"))
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) == 0 {
		t.Fatal("no candidates")
	}
	c := NewChecker()
	for _, x := range execs {
		c.Valid(x, Type1) // warm the caches and the executions' relations
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		c.Valid(execs[i%len(execs)], Type1)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Checker.Valid allocated %.1f times per steady-state call, want 0", allocs)
	}
}
