package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/memmodel"
)

// Model is a TSO memory model extended with RMWs of a particular atomicity
// type. It provides model checking of litmus-sized programs: enumeration of
// valid executions and their observable outcomes.
type Model struct {
	// Atomicity selects the RMW atomicity definition (type-1/2/3).
	Atomicity AtomicityType
	// UseOracle, when set, decides validity with the brute-force
	// linearization oracle instead of the ato fixpoint. Intended for
	// cross-validation in tests; the fixpoint is the default.
	UseOracle bool
}

// NewModel returns a model using the given atomicity type and the ato
// fixpoint validity check.
func NewModel(t AtomicityType) *Model { return &Model{Atomicity: t} }

// Valid reports whether a candidate execution is a valid witness under the
// model.
func (m *Model) Valid(x *memmodel.Execution) bool {
	if m.UseOracle {
		return ExistsWitnessOrder(x, m.Atomicity)
	}
	return Valid(x, m.Atomicity)
}

// ValidExecutions enumerates all candidate executions of the program and
// returns the valid ones, cloned out of the enumerator's arena so they
// remain valid indefinitely.
func (m *Model) ValidExecutions(p *memmodel.Program) ([]*memmodel.Execution, error) {
	var out []*memmodel.Execution
	err := m.ValidExecutionsFunc(p, func(x *memmodel.Execution) bool {
		out = append(out, x.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ValidExecutionsFunc streams the valid executions of the program to visit
// without materializing the candidate set. Returning false from visit stops
// the enumeration early.
func (m *Model) ValidExecutionsFunc(p *memmodel.Program, visit func(*memmodel.Execution) bool) error {
	return memmodel.EnumerateFunc(p, func(x *memmodel.Execution) bool {
		if !m.Valid(x) {
			return true
		}
		return visit(x)
	})
}

// ValidExecutionsParallel streams the valid executions of the program to
// visit with the candidate space partitioned across workers goroutines
// (workers <= 0 means GOMAXPROCS). The validity check — the expensive part
// of a verdict — runs inside the workers; visit is never called
// concurrently and receives the valid executions in the same order the
// sequential ValidExecutionsFunc would produce. Returning false from visit
// cancels the remaining workers; a cancelled ctx stops the enumeration
// with ctx's error. The model's validity check is stateless, so sharing m
// across the workers is safe.
func (m *Model) ValidExecutionsParallel(ctx context.Context, p *memmodel.Program, workers int, visit func(*memmodel.Execution) bool) error {
	return memmodel.EnumerateParallel(ctx, p, workers, visit,
		memmodel.EnumFilter(func(x *memmodel.Execution) bool { return m.Valid(x) }))
}

// Outcome is one observable result of a program: the final values of all
// named registers and of memory. The Key method provides a canonical string
// for set membership and sorting.
type Outcome struct {
	// Registers maps "P<tid>:<reg>" to the value the register holds at the
	// end of the execution.
	Registers map[string]memmodel.Value
	// Memory maps each location to its final value.
	Memory map[memmodel.Addr]memmodel.Value
}

// Key returns a canonical, deterministic rendering of the outcome, e.g.
// "P0:r1=0 P1:r1=0 | x=1 y=1".
func (o Outcome) Key() string {
	regs := make([]string, 0, len(o.Registers))
	for k := range o.Registers {
		regs = append(regs, k)
	}
	sort.Strings(regs)
	var b strings.Builder
	for i, k := range regs {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, int(o.Registers[k]))
	}
	addrs := make([]int, 0, len(o.Memory))
	for a := range o.Memory {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	if len(addrs) > 0 {
		b.WriteString(" |")
		for _, a := range addrs {
			fmt.Fprintf(&b, " %s=%d", memmodel.AddrName(memmodel.Addr(a)), int(o.Memory[memmodel.Addr(a)]))
		}
	}
	return b.String()
}

// OutcomeOf extracts the observable outcome of an execution.
func OutcomeOf(x *memmodel.Execution) Outcome {
	return Outcome{Registers: x.RegisterValues(), Memory: x.FinalMemory()}
}

// OutcomeSet is the set of observable outcomes of a program under a model,
// keyed by Outcome.Key.
type OutcomeSet struct {
	byKey map[string]Outcome
}

// NewOutcomeSet returns an empty outcome set.
func NewOutcomeSet() *OutcomeSet { return &OutcomeSet{byKey: map[string]Outcome{}} }

// Add inserts an outcome.
func (s *OutcomeSet) Add(o Outcome) { s.byKey[o.Key()] = o }

// Contains reports whether an outcome with the same key is in the set.
func (s *OutcomeSet) Contains(o Outcome) bool {
	_, ok := s.byKey[o.Key()]
	return ok
}

// ContainsKey reports whether an outcome with the given canonical key is in
// the set.
func (s *OutcomeSet) ContainsKey(key string) bool {
	_, ok := s.byKey[key]
	return ok
}

// Len returns the number of distinct outcomes.
func (s *OutcomeSet) Len() int { return len(s.byKey) }

// Keys returns the canonical keys of all outcomes, sorted.
func (s *OutcomeSet) Keys() []string {
	out := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Outcomes returns the outcomes sorted by key.
func (s *OutcomeSet) Outcomes() []Outcome {
	keys := s.Keys()
	out := make([]Outcome, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.byKey[k])
	}
	return out
}

// SubsetOf reports whether every outcome in s is also in other.
func (s *OutcomeSet) SubsetOf(other *OutcomeSet) bool {
	for k := range s.byKey {
		if !other.ContainsKey(k) {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain exactly the same outcome keys.
func (s *OutcomeSet) Equal(other *OutcomeSet) bool {
	return s.SubsetOf(other) && other.SubsetOf(s)
}

// Outcomes model-checks the program: it enumerates candidate executions,
// filters the valid ones, and returns the set of observable outcomes. The
// candidates are streamed, never materialized.
func (m *Model) Outcomes(p *memmodel.Program) (*OutcomeSet, error) {
	set := NewOutcomeSet()
	err := m.ValidExecutionsFunc(p, func(x *memmodel.Execution) bool {
		set.Add(OutcomeOf(x))
		return true
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// OutcomesParallel model-checks the program like Outcomes with the
// candidate space partitioned across workers goroutines (workers <= 0
// means GOMAXPROCS): validity checking runs inside the workers, outcome
// collection stays serialized. Outcome sets are order-insensitive, so the
// cheaper unordered merge is used; the result is identical to Outcomes.
func (m *Model) OutcomesParallel(ctx context.Context, p *memmodel.Program, workers int) (*OutcomeSet, error) {
	set := NewOutcomeSet()
	err := memmodel.EnumerateParallel(ctx, p, workers, func(x *memmodel.Execution) bool {
		set.Add(OutcomeOf(x))
		return true
	}, memmodel.EnumFilter(func(x *memmodel.Execution) bool { return m.Valid(x) }),
		memmodel.EnumUnordered())
	if err != nil {
		return nil, err
	}
	return set, nil
}

// Allows reports whether some valid execution of the program satisfies the
// predicate over its outcome. The enumeration stops at the first witness.
func (m *Model) Allows(p *memmodel.Program, pred func(Outcome) bool) (bool, error) {
	found := false
	err := m.ValidExecutionsFunc(p, func(x *memmodel.Execution) bool {
		if pred(OutcomeOf(x)) {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// Forbids reports whether no valid execution of the program satisfies the
// predicate over its outcome.
func (m *Model) Forbids(p *memmodel.Program, pred func(Outcome) bool) (bool, error) {
	allowed, err := m.Allows(p, pred)
	if err != nil {
		return false, err
	}
	return !allowed, nil
}

// Explain describes why an execution is (in)valid under the model, rendering
// the ato edges and, for invalid executions, one cycle or the uniproc
// violation. Intended for the litmus tool's verbose mode.
func (m *Model) Explain(x *memmodel.Execution) string {
	res := DeriveAto(x, m.Atomicity)
	var b strings.Builder
	fmt.Fprintf(&b, "atomicity: %s\n", m.Atomicity)
	fmt.Fprintf(&b, "ato edges (%d):\n", res.Ato.Count())
	for _, pr := range res.Ato.Pairs() {
		fmt.Fprintf(&b, "  %s -ato-> %s\n", x.Events[pr[0]], x.Events[pr[1]])
	}
	if res.UniprocViolation {
		b.WriteString("INVALID: uniproc (SC per location) violated\n")
		return b.String()
	}
	if res.Valid {
		b.WriteString("VALID: com ∪ ppo ∪ bar ∪ ato is acyclic\n")
		if ghb, ok := GlobalOrder(x, m.Atomicity); ok {
			b.WriteString("one global memory order:\n")
			for _, e := range ghb {
				fmt.Fprintf(&b, "  %s\n", e)
			}
		}
	} else {
		b.WriteString("INVALID: cycle in com ∪ ppo ∪ bar ∪ ato:\n")
		for _, id := range res.Cycle {
			fmt.Fprintf(&b, "  %s ->\n", x.Events[id])
		}
		if len(res.Cycle) > 0 {
			fmt.Fprintf(&b, "  %s (closes cycle)\n", x.Events[res.Cycle[0]])
		}
	}
	return b.String()
}
