package core

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

func TestOutcomeKeyDeterministic(t *testing.T) {
	o := Outcome{
		Registers: map[string]memmodel.Value{"P1:r1": 2, "P0:r0": 1},
		Memory:    map[memmodel.Addr]memmodel.Value{1: 5, 0: 4},
	}
	want := "P0:r0=1 P1:r1=2 | x=4 y=5"
	if o.Key() != want {
		t.Fatalf("Key = %q, want %q", o.Key(), want)
	}
	// Key must be stable across calls (map iteration order must not leak).
	for i := 0; i < 10; i++ {
		if o.Key() != want {
			t.Fatal("Key is not deterministic")
		}
	}
}

func TestOutcomeKeyWithoutMemory(t *testing.T) {
	o := Outcome{Registers: map[string]memmodel.Value{"P0:r0": 0}}
	if strings.Contains(o.Key(), "|") {
		t.Errorf("Key should omit the memory section when empty: %q", o.Key())
	}
}

func TestOutcomeSetOperations(t *testing.T) {
	a := NewOutcomeSet()
	b := NewOutcomeSet()
	o1 := Outcome{Registers: map[string]memmodel.Value{"P0:r0": 0}}
	o2 := Outcome{Registers: map[string]memmodel.Value{"P0:r0": 1}}
	a.Add(o1)
	b.Add(o1)
	b.Add(o2)
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("Len: a=%d b=%d", a.Len(), b.Len())
	}
	if !a.Contains(o1) || a.Contains(o2) {
		t.Error("Contains wrong")
	}
	if !a.SubsetOf(b) {
		t.Error("a should be a subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be a subset of a")
	}
	if a.Equal(b) {
		t.Error("a and b are not equal")
	}
	a.Add(o2)
	if !a.Equal(b) {
		t.Error("a and b should now be equal")
	}
	keys := b.Keys()
	if len(keys) != 2 || keys[0] >= keys[1] {
		t.Errorf("Keys not sorted: %v", keys)
	}
	if len(b.Outcomes()) != 2 {
		t.Error("Outcomes length wrong")
	}
	if !b.ContainsKey(o1.Key()) {
		t.Error("ContainsKey wrong")
	}
	// Adding a duplicate does not grow the set.
	b.Add(o2)
	if b.Len() != 2 {
		t.Error("duplicate outcome grew the set")
	}
}

func TestModelValidExecutionsFiltersInvalid(t *testing.T) {
	p := dekkerReadReplacement()
	all, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := NewModel(Type1).ValidExecutions(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(valid) == 0 {
		t.Fatal("no valid executions")
	}
	if len(valid) >= len(all) {
		t.Fatalf("validity filter removed nothing: %d of %d", len(valid), len(all))
	}
	for _, x := range valid {
		if !Valid(x, Type1) {
			t.Fatal("ValidExecutions returned an invalid execution")
		}
	}
}

func TestModelAllowsAndForbids(t *testing.T) {
	p := dekkerReadReplacement()
	m := NewModel(Type2)
	pred := mutualExclusionFails("P0:r0", "P1:r1")
	allowed, err := m.Allows(p, pred)
	if err != nil {
		t.Fatal(err)
	}
	forbidden, err := m.Forbids(p, pred)
	if err != nil {
		t.Fatal(err)
	}
	if allowed == forbidden {
		t.Fatal("Allows and Forbids must be complementary")
	}
	if allowed {
		t.Error("read-replacement Dekker must forbid the bad outcome under type-2")
	}
}

func TestModelErrorsPropagate(t *testing.T) {
	bad := memmodel.NewProgram("empty")
	m := NewModel(Type1)
	if _, err := m.Outcomes(bad); err == nil {
		t.Error("Outcomes of an invalid program must fail")
	}
	if _, err := m.Allows(bad, func(Outcome) bool { return true }); err == nil {
		t.Error("Allows of an invalid program must fail")
	}
	if _, err := m.Forbids(bad, func(Outcome) bool { return true }); err == nil {
		t.Error("Forbids of an invalid program must fail")
	}
	if _, err := m.ValidExecutions(bad); err == nil {
		t.Error("ValidExecutions of an invalid program must fail")
	}
}

func TestExplainValidAndInvalid(t *testing.T) {
	p := dekkerWriteReplacement()
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(Type1)
	var sawValid, sawInvalid bool
	for _, x := range execs {
		s := m.Explain(x)
		if !strings.Contains(s, "atomicity: type-1") {
			t.Fatalf("Explain missing header:\n%s", s)
		}
		if strings.Contains(s, "VALID:") && strings.Contains(s, "global memory order") {
			sawValid = true
		}
		if strings.Contains(s, "INVALID:") {
			sawInvalid = true
		}
	}
	if !sawValid || !sawInvalid {
		t.Errorf("Explain should describe both valid and invalid executions (valid=%v invalid=%v)", sawValid, sawInvalid)
	}
}

func TestExplainUniprocViolation(t *testing.T) {
	p := memmodel.NewProgram("cowr")
	p.AddThread(memmodel.Write(0, 1), memmodel.Read(0, "r0"))
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(Type1)
	found := false
	for _, x := range execs {
		if x.RegisterValues()["P0:r0"] == 0 {
			s := m.Explain(x)
			if !strings.Contains(s, "uniproc") {
				t.Errorf("Explain should mention the uniproc violation:\n%s", s)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no uniproc-violating candidate found")
	}
}

func TestDeriveAtoReportsCycle(t *testing.T) {
	p := dekkerReadReplacement()
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range execs {
		res := DeriveAto(x, Type1)
		if res.Valid || res.UniprocViolation {
			continue
		}
		found = true
		if len(res.Cycle) < 2 {
			t.Errorf("invalid execution should report a cycle, got %v", res.Cycle)
		}
		// Every edge of the reported cycle must be in the order relation.
		for i := range res.Cycle {
			from := res.Cycle[i]
			to := res.Cycle[(i+1)%len(res.Cycle)]
			if !res.Order.Has(from, to) {
				t.Errorf("cycle uses non-edge %d -> %d", from, to)
			}
		}
	}
	if !found {
		t.Fatal("expected at least one cycle-invalid execution")
	}
}

func TestAtoEdgesOnlyInvolveRMWHalves(t *testing.T) {
	// Every derived ato edge must have an RMW half as source or target.
	p := dekkerWriteReplacement()
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range execs {
		isHalf := map[int]bool{}
		for _, pr := range RMWPairs(x) {
			isHalf[pr.Read] = true
			isHalf[pr.Write] = true
		}
		for _, typ := range AllTypes() {
			res := DeriveAto(x, typ)
			for _, e := range res.Ato.Pairs() {
				if !isHalf[e[0]] && !isHalf[e[1]] {
					t.Errorf("%s: ato edge %v -> %v involves no RMW half", typ, x.Events[e[0]], x.Events[e[1]])
				}
			}
		}
	}
}
