package core

import (
	"repro/internal/memmodel"
)

// ExistsWitnessOrder is a brute-force decision procedure for validity: it
// reports whether there exists a linear extension (a candidate ghb) of
// com ∪ ppo ∪ bar in which, for every RMW, no disallowed event appears
// between the read and write halves. This is the paper's definition applied
// literally, with no derived ato edges, and serves as the correctness oracle
// for DeriveAto.
//
// The search enumerates linear extensions incrementally and prunes branches
// as soon as a disallowed event is placed inside an "open" RMW (one whose Ra
// has been emitted but whose Wa has not). The uniproc condition is checked
// up front. Only suitable for litmus-sized executions.
func ExistsWitnessOrder(x *memmodel.Execution, t AtomicityType) bool {
	if !x.Uniproc() {
		return false
	}
	order, ok := FindWitnessOrder(x, t)
	return ok && order != nil
}

// FindWitnessOrder returns one linear extension of com ∪ ppo ∪ bar that
// satisfies the atomicity constraints of type t, or (nil, false) if none
// exists. The uniproc condition is not checked here; use ExistsWitnessOrder
// for the full validity oracle.
func FindWitnessOrder(x *memmodel.Execution, t AtomicityType) ([]*memmodel.Event, bool) {
	n := len(x.Events)
	base := x.BaseOrder()

	// Predecessor counts for Kahn-style incremental linearization.
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, pr := range base.Pairs() {
		indeg[pr[1]]++
		succ[pr[0]] = append(succ[pr[0]], pr[1])
	}

	pairs := RMWPairs(x)
	// For each event, which RMW pair (index into pairs) it is the read or
	// write half of, or -1.
	readOf := make([]int, n)
	writeOf := make([]int, n)
	for i := range readOf {
		readOf[i] = -1
		writeOf[i] = -1
	}
	for pi, p := range pairs {
		readOf[p.Read] = pi
		writeOf[p.Write] = pi
	}
	// disallowedBy[m] lists the pair indices that forbid m between their
	// halves.
	disallowedBy := make([][]int, n)
	for pi, p := range pairs {
		for _, m := range DisallowedEvents(t, x, p) {
			disallowedBy[m] = append(disallowedBy[m], pi)
		}
	}

	placed := make([]bool, n)
	open := make([]bool, len(pairs)) // Ra emitted, Wa not yet
	result := make([]int, 0, n)

	var rec func() bool
	rec = func() bool {
		if len(result) == n {
			return true
		}
		for v := 0; v < n; v++ {
			if placed[v] || indeg[v] != 0 {
				continue
			}
			// Placing v now puts it after every already-placed event and
			// before every unplaced one. Reject if v is disallowed inside an
			// open RMW.
			blocked := false
			for _, pi := range disallowedBy[v] {
				if open[pi] {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			// Place v.
			placed[v] = true
			result = append(result, v)
			if pi := readOf[v]; pi >= 0 {
				open[pi] = true
			}
			if pi := writeOf[v]; pi >= 0 {
				open[pi] = false
			}
			for _, s := range succ[v] {
				indeg[s]--
			}
			if rec() {
				return true
			}
			// Undo.
			for _, s := range succ[v] {
				indeg[s]++
			}
			if pi := readOf[v]; pi >= 0 {
				open[pi] = false
			}
			if pi := writeOf[v]; pi >= 0 {
				open[pi] = true
			}
			result = result[:len(result)-1]
			placed[v] = false
		}
		return false
	}

	if !rec() {
		return nil, false
	}
	out := make([]*memmodel.Event, n)
	for i, id := range result {
		out[i] = x.Events[id]
	}
	return out, true
}
