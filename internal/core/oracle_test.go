package core

import (
	"testing"

	"repro/internal/memmodel"
)

// oraclePrograms gathers small programs whose candidate executions are
// exhaustively cross-checked between the ato-fixpoint validity check and the
// brute-force linearization oracle.
func oraclePrograms() []*memmodel.Program {
	var out []*memmodel.Program
	out = append(out,
		dekkerWriteReplacement(),
		dekkerReadReplacement(),
		dekkerRMWBarrierSameAddr(),
	)

	sbRMW := memmodel.NewProgram("sb-one-rmw")
	sbRMW.AddThread(memmodel.Exchange(0, "a0", 1), memmodel.Read(1, "r0"))
	sbRMW.AddThread(memmodel.Write(1, 1), memmodel.Read(0, "r1"))
	out = append(out, sbRMW)

	mpRMW := memmodel.NewProgram("mp-rmw-flag")
	mpRMW.AddThread(memmodel.Write(0, 1), memmodel.Exchange(1, "a0", 1))
	mpRMW.AddThread(memmodel.FetchAdd(1, "r0", 0), memmodel.Read(0, "r1"))
	out = append(out, mpRMW)

	faaRace := memmodel.NewProgram("faa-race")
	faaRace.AddThread(memmodel.FetchAdd(0, "r0", 1), memmodel.Read(1, "r1"))
	faaRace.AddThread(memmodel.FetchAdd(0, "r2", 1), memmodel.Write(1, 1))
	out = append(out, faaRace)

	rmwFence := memmodel.NewProgram("rmw-and-fence")
	rmwFence.AddThread(memmodel.Write(0, 1), memmodel.Fence(), memmodel.FetchAdd(1, "r0", 0))
	rmwFence.AddThread(memmodel.Write(1, 1), memmodel.Read(0, "r1"))
	out = append(out, rmwFence)

	return out
}

// TestFixpointMatchesOracle cross-validates DeriveAto against the
// brute-force existential-ghb oracle on every candidate execution of every
// oracle program, for all three atomicity types. This is the central
// soundness/completeness check of the semantics implementation.
func TestFixpointMatchesOracle(t *testing.T) {
	for _, p := range oraclePrograms() {
		execs, err := memmodel.Enumerate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, typ := range AllTypes() {
			mismatches := 0
			for _, x := range execs {
				fix := Valid(x, typ)
				oracle := ExistsWitnessOrder(x, typ)
				if fix != oracle {
					mismatches++
					if mismatches <= 3 {
						t.Errorf("%s/%s: fixpoint=%v oracle=%v for execution:\n%s",
							p.Name, typ, fix, oracle, x)
					}
				}
			}
			if mismatches > 3 {
				t.Errorf("%s/%s: %d further mismatches suppressed", p.Name, typ, mismatches-3)
			}
		}
	}
}

// TestGlobalOrderSatisfiesAtomicity checks that the witness order returned
// by GlobalOrder really has no disallowed event between the halves of any
// RMW, and is a linear extension of the derived order.
func TestGlobalOrderSatisfiesAtomicity(t *testing.T) {
	for _, p := range oraclePrograms() {
		execs, err := memmodel.Enumerate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, typ := range AllTypes() {
			for _, x := range execs {
				ghb, ok := GlobalOrder(x, typ)
				if !ok {
					continue
				}
				if len(ghb) != len(x.Events) {
					t.Fatalf("%s/%s: witness order has %d events, want %d", p.Name, typ, len(ghb), len(x.Events))
				}
				if !CheckGHBAtomicity(x, ghb, typ) {
					t.Errorf("%s/%s: GlobalOrder violates atomicity:\n%s", p.Name, typ, x)
				}
				// Linear extension of com ∪ ppo ∪ bar.
				pos := map[int]int{}
				for i, e := range ghb {
					pos[e.Index] = i
				}
				for _, pr := range x.BaseOrder().Pairs() {
					if pos[pr[0]] >= pos[pr[1]] {
						t.Errorf("%s/%s: witness order violates base edge %v -> %v",
							p.Name, typ, x.Events[pr[0]], x.Events[pr[1]])
					}
				}
			}
		}
	}
}

// TestFindWitnessOrderAgreesWithCheck checks that FindWitnessOrder's output
// always passes CheckGHBAtomicity.
func TestFindWitnessOrderAgreesWithCheck(t *testing.T) {
	p := dekkerReadReplacement()
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range AllTypes() {
		for _, x := range execs {
			order, ok := FindWitnessOrder(x, typ)
			if !ok {
				continue
			}
			if !CheckGHBAtomicity(x, order, typ) {
				t.Errorf("%s: FindWitnessOrder returned an order violating atomicity", typ)
			}
		}
	}
}

// TestModelOracleAgreesWithFixpointOutcomes checks the two validity backends
// produce identical outcome sets at the model level.
func TestModelOracleAgreesWithFixpointOutcomes(t *testing.T) {
	for _, p := range oraclePrograms() {
		for _, typ := range AllTypes() {
			fix, err := NewModel(typ).Outcomes(p)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := (&Model{Atomicity: typ, UseOracle: true}).Outcomes(p)
			if err != nil {
				t.Fatal(err)
			}
			if !fix.Equal(oracle) {
				t.Errorf("%s/%s: fixpoint outcomes %v != oracle outcomes %v",
					p.Name, typ, fix.Keys(), oracle.Keys())
			}
		}
	}
}

// TestCheckGHBAtomicityRejectsBadOrder builds an order with a write wedged
// between the halves of an RMW and checks the literal atomicity check
// rejects it under type-1.
func TestCheckGHBAtomicityRejectsBadOrder(t *testing.T) {
	p := memmodel.NewProgram("wedge")
	p.AddThread(memmodel.Exchange(0, "a0", 1))
	p.AddThread(memmodel.Write(1, 1))
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	x := execs[0]
	pair := RMWPairs(x)[0]
	var wy *memmodel.Event
	var inits []*memmodel.Event
	for _, e := range x.Events {
		if e.Kind == memmodel.KindWrite && e.Addr == 1 {
			wy = e
		}
		if e.IsInit() {
			inits = append(inits, e)
		}
	}
	bad := append([]*memmodel.Event{}, inits...)
	bad = append(bad, x.Events[pair.Read], wy, x.Events[pair.Write])
	if CheckGHBAtomicity(x, bad, Type1) {
		t.Error("type-1 check must reject a write between Ra and Wa")
	}
	if !CheckGHBAtomicity(x, bad, Type2) {
		t.Error("type-2 check must accept a different-address write between Ra and Wa")
	}
	if !CheckGHBAtomicity(x, bad, Type3) {
		t.Error("type-3 check must accept a different-address write between Ra and Wa")
	}
	good := append([]*memmodel.Event{}, inits...)
	good = append(good, x.Events[pair.Read], x.Events[pair.Write], wy)
	if !CheckGHBAtomicity(x, good, Type1) {
		t.Error("type-1 check must accept an order with nothing between Ra and Wa")
	}
}

// TestCheckGHBAtomicityRejectsReversedHalves checks that an order placing Wa
// before Ra is rejected.
func TestCheckGHBAtomicityRejectsReversedHalves(t *testing.T) {
	p := memmodel.NewProgram("reversed")
	p.AddThread(memmodel.Exchange(0, "a0", 1))
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	x := execs[0]
	pair := RMWPairs(x)[0]
	var init *memmodel.Event
	for _, e := range x.Events {
		if e.IsInit() {
			init = e
		}
	}
	order := []*memmodel.Event{init, x.Events[pair.Write], x.Events[pair.Read]}
	for _, typ := range AllTypes() {
		if CheckGHBAtomicity(x, order, typ) {
			t.Errorf("%s: Wa before Ra must be rejected", typ)
		}
	}
}
