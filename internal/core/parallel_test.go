package core

import (
	"context"
	"testing"

	"repro/internal/memmodel"
)

// corePrograms returns representative programs: plain TSO, RMWs as
// barriers, and an RMW race whose cyclic rf candidates are dropped.
func corePrograms() []*memmodel.Program {
	sb := memmodel.NewProgram("SB")
	sb.AddThread(memmodel.Write(0, 1), memmodel.Read(1, "r0"))
	sb.AddThread(memmodel.Write(1, 1), memmodel.Read(0, "r1"))

	dekker := memmodel.NewProgram("dekker-rmw")
	dekker.AddThread(memmodel.Exchange(0, "a0", 1), memmodel.Read(1, "r0"))
	dekker.AddThread(memmodel.Exchange(1, "a1", 1), memmodel.Read(0, "r1"))

	tas := memmodel.NewProgram("tas-race")
	tas.AddThread(memmodel.TestAndSet(0, "r0"))
	tas.AddThread(memmodel.TestAndSet(0, "r1"))

	return []*memmodel.Program{sb, dekker, tas}
}

func TestOutcomesParallelMatchesSequential(t *testing.T) {
	for _, p := range corePrograms() {
		for _, typ := range AllTypes() {
			m := NewModel(typ)
			seq, err := m.Outcomes(p)
			if err != nil {
				t.Fatalf("%s %s: Outcomes: %v", p.Name, typ, err)
			}
			for _, workers := range []int{1, 2, 8} {
				par, err := m.OutcomesParallel(context.Background(), p, workers)
				if err != nil {
					t.Fatalf("%s %s workers=%d: %v", p.Name, typ, workers, err)
				}
				if !seq.Equal(par) {
					t.Fatalf("%s %s workers=%d: outcome sets differ:\nseq: %v\npar: %v",
						p.Name, typ, workers, seq.Keys(), par.Keys())
				}
			}
		}
	}
}

func TestValidExecutionsParallelOrderAndSet(t *testing.T) {
	for _, p := range corePrograms() {
		for _, typ := range AllTypes() {
			m := NewModel(typ)
			var want []string
			if err := m.ValidExecutionsFunc(p, func(x *memmodel.Execution) bool {
				want = append(want, x.Key())
				return true
			}); err != nil {
				t.Fatal(err)
			}
			var got []string
			if err := m.ValidExecutionsParallel(context.Background(), p, 4, func(x *memmodel.Execution) bool {
				got = append(got, x.Key())
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s %s: %d valid executions, want %d", p.Name, typ, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %s: valid execution %d out of order", p.Name, typ, i)
				}
			}
		}
	}
}

func TestValidExecutionsParallelAgreesWithOracle(t *testing.T) {
	// The parallel filter path must agree with the brute-force
	// linearization oracle, execution for execution.
	for _, p := range corePrograms() {
		for _, typ := range AllTypes() {
			fix := NewModel(typ)
			oracle := &Model{Atomicity: typ, UseOracle: true}
			fixSet, err := fix.OutcomesParallel(context.Background(), p, 4)
			if err != nil {
				t.Fatal(err)
			}
			oracleSet, err := oracle.OutcomesParallel(context.Background(), p, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !fixSet.Equal(oracleSet) {
				t.Fatalf("%s %s: fixpoint and oracle disagree under parallel enumeration:\nfix: %v\noracle: %v",
					p.Name, typ, fixSet.Keys(), oracleSet.Keys())
			}
		}
	}
}
