package core

import (
	"testing"

	"repro/internal/memmodel"
)

// The programs below are the paper's figures, built directly on the
// memmodel DSL. internal/litmus re-exposes them with richer metadata; these
// local copies keep the core package's tests self-contained.

// dekkerWriteReplacement is Fig. 3: writes replaced by RMWs.
//
//	P0: RMW(x); R(y)     P1: RMW(y); R(x)
//
// Mutual exclusion fails iff both plain reads return 0.
func dekkerWriteReplacement() *memmodel.Program {
	p := memmodel.NewProgram("dekker-write-replacement")
	p.AddThread(memmodel.Exchange(0, "a0", 1), memmodel.Read(1, "r0"))
	p.AddThread(memmodel.Exchange(1, "a1", 1), memmodel.Read(0, "r1"))
	return p
}

// dekkerReadReplacement is Fig. 4: reads replaced by RMWs.
//
//	P0: W(x)=1; RMW(y)   P1: W(y)=1; RMW(x)
//
// Mutual exclusion fails iff both RMW reads return 0.
func dekkerReadReplacement() *memmodel.Program {
	p := memmodel.NewProgram("dekker-read-replacement")
	p.AddThread(memmodel.Write(0, 1), memmodel.FetchAdd(1, "r0", 0))
	p.AddThread(memmodel.Write(1, 1), memmodel.FetchAdd(0, "r1", 0))
	return p
}

// dekkerRMWBarrierDiffAddr is Fig. 5: RMWs to two different addresses z1, z2
// used in place of memory barriers.
//
//	P0: W(x)=1; RMW(z1); R(y)   P1: W(y)=1; RMW(z2); R(x)
func dekkerRMWBarrierDiffAddr() *memmodel.Program {
	p := memmodel.NewProgram("dekker-rmw-barrier-diff-addr")
	p.AddThread(memmodel.Write(0, 1), memmodel.Exchange(2, "a0", 1), memmodel.Read(1, "r0"))
	p.AddThread(memmodel.Write(1, 1), memmodel.Exchange(3, "a1", 1), memmodel.Read(0, "r1"))
	return p
}

// dekkerRMWBarrierSameAddr is Fig. 8: both barrier RMWs access the same
// address z.
func dekkerRMWBarrierSameAddr() *memmodel.Program {
	p := memmodel.NewProgram("dekker-rmw-barrier-same-addr")
	p.AddThread(memmodel.Write(0, 1), memmodel.FetchAdd(2, "a0", 1), memmodel.Read(1, "r0"))
	p.AddThread(memmodel.Write(1, 1), memmodel.FetchAdd(2, "a1", 1), memmodel.Read(0, "r1"))
	return p
}

// mutualExclusionFails is the "both critical sections entered" predicate for
// the Dekker variants: both observation registers read 0.
func mutualExclusionFails(reg0, reg1 string) func(Outcome) bool {
	return func(o Outcome) bool {
		return o.Registers[reg0] == 0 && o.Registers[reg1] == 0
	}
}

// allowsBadOutcome model-checks the program under the given atomicity type
// and reports whether the mutual-exclusion-failure outcome is allowed.
func allowsBadOutcome(t *testing.T, p *memmodel.Program, typ AtomicityType) bool {
	t.Helper()
	m := NewModel(typ)
	allowed, err := m.Allows(p, mutualExclusionFails("P0:r0", "P1:r1"))
	if err != nil {
		t.Fatalf("%s/%s: %v", p.Name, typ, err)
	}
	return allowed
}

// TestTable1DekkerWriteReplacement checks the first column of Table 1:
// Dekker's with writes replaced by RMWs works under type-1 and type-2 but
// not under type-3.
func TestTable1DekkerWriteReplacement(t *testing.T) {
	p := dekkerWriteReplacement()
	if allowsBadOutcome(t, p, Type1) {
		t.Error("type-1: write-replacement Dekker must forbid the bad outcome")
	}
	if allowsBadOutcome(t, p, Type2) {
		t.Error("type-2: write-replacement Dekker must forbid the bad outcome")
	}
	if !allowsBadOutcome(t, p, Type3) {
		t.Error("type-3: write-replacement Dekker must allow the bad outcome (paper §2.5)")
	}
}

// TestTable1DekkerReadReplacement checks the second column of Table 1:
// read replacement works under all three atomicity types.
func TestTable1DekkerReadReplacement(t *testing.T) {
	p := dekkerReadReplacement()
	for _, typ := range AllTypes() {
		if allowsBadOutcome(t, p, typ) {
			t.Errorf("%s: read-replacement Dekker must forbid the bad outcome", typ)
		}
	}
}

// TestTable1RMWAsBarrier checks the third column of Table 1: only a type-1
// RMW can stand in for a memory barrier when the RMWs access different
// addresses.
func TestTable1RMWAsBarrier(t *testing.T) {
	p := dekkerRMWBarrierDiffAddr()
	if allowsBadOutcome(t, p, Type1) {
		t.Error("type-1: RMW-as-barrier must forbid the bad outcome")
	}
	if !allowsBadOutcome(t, p, Type2) {
		t.Error("type-2: RMW-as-barrier (different addresses) must allow the bad outcome (paper §2.4)")
	}
	if !allowsBadOutcome(t, p, Type3) {
		t.Error("type-3: RMW-as-barrier (different addresses) must allow the bad outcome")
	}
}

// TestRMWAsBarrierSameAddress checks Fig. 8: when the barrier RMWs
// synchronize on the same address, type-2 (and type-3) RMWs do enforce the
// required ordering.
func TestRMWAsBarrierSameAddress(t *testing.T) {
	p := dekkerRMWBarrierSameAddr()
	for _, typ := range AllTypes() {
		if allowsBadOutcome(t, p, typ) {
			t.Errorf("%s: same-address barrier RMWs must forbid the bad outcome (Fig. 8)", typ)
		}
	}
}

// TestLemma1InducedOrdering checks the first half of Lemma 1 directly: a
// type-1 RMW after a write W1 forces W1 before Ra in the derived order of
// every valid execution.
func TestLemma1InducedOrdering(t *testing.T) {
	p := memmodel.NewProgram("lemma1")
	p.AddThread(memmodel.Write(0, 1), memmodel.Exchange(1, "a0", 1), memmodel.Read(2, "r0"))
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, x := range execs {
		res := DeriveAto(x, Type1)
		if !res.Valid {
			continue
		}
		checked++
		var w1, ra *memmodel.Event
		for _, e := range x.Events {
			if e.Thread == 0 && e.Kind == memmodel.KindWrite && e.Addr == 0 {
				w1 = e
			}
			if e.Thread == 0 && e.Kind == memmodel.KindRMWRead {
				ra = e
			}
		}
		closure := res.Order.Clone().TransitiveClosure()
		if !closure.Has(w1.Index, ra.Index) {
			t.Errorf("valid type-1 execution without W1 -> Ra ordering:\n%s", x)
		}
	}
	if checked == 0 {
		t.Fatal("no valid executions checked")
	}
}

// TestLemma2InducedOrdering checks the ato edge the paper derives for
// Fig. 3 under type-2 atomicity: when the plain read R(y) reads from before
// the other thread's RMW write W'a(y) (R(y) -fr-> W'a(y)), atomicity induces
// R(y) -ato-> R'a(y).
func TestLemma2InducedOrdering(t *testing.T) {
	p := dekkerWriteReplacement()
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, x := range execs {
		regs := x.RegisterValues()
		// Pick candidates where P0's plain read of y returns 0 (reads from
		// before P1's RMW write).
		if regs["P0:r0"] != 0 {
			continue
		}
		res := DeriveAto(x, Type2)
		if !res.Valid {
			continue
		}
		checked++
		var ry, raP1 *memmodel.Event
		for _, e := range x.Events {
			if e.Thread == 0 && e.Kind == memmodel.KindRead && e.Addr == 1 {
				ry = e
			}
			if e.Thread == 1 && e.Kind == memmodel.KindRMWRead {
				raP1 = e
			}
		}
		closure := res.Order.Clone().TransitiveClosure()
		if !closure.Has(ry.Index, raP1.Index) {
			t.Errorf("type-2 valid execution missing induced R(y) -> R'a(y) ordering:\n%s", x)
		}
	}
	if checked == 0 {
		t.Fatal("no valid executions checked")
	}
}

// TestLemma3AllowsReadBetween checks that type-3 atomicity does not induce
// the read-side ordering that type-2 does, which is exactly why
// write-replacement breaks: there is a valid type-3 execution of Fig. 3 with
// the bad outcome.
func TestLemma3AllowsReadBetween(t *testing.T) {
	p := dekkerWriteReplacement()
	execs, err := memmodel.Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	foundType3 := false
	for _, x := range execs {
		regs := x.RegisterValues()
		bad := regs["P0:r0"] == 0 && regs["P1:r1"] == 0
		if !bad {
			continue
		}
		if Valid(x, Type3) {
			foundType3 = true
		}
		if Valid(x, Type2) {
			t.Errorf("type-2 must reject the bad execution:\n%s", x)
		}
	}
	if !foundType3 {
		t.Error("type-3 must accept some execution with the bad outcome")
	}
}

// TestOutcomeMonotonicity checks that weakening atomicity only adds
// behaviours: outcomes(type-1) ⊆ outcomes(type-2) ⊆ outcomes(type-3).
func TestOutcomeMonotonicity(t *testing.T) {
	programs := []*memmodel.Program{
		dekkerWriteReplacement(),
		dekkerReadReplacement(),
		dekkerRMWBarrierDiffAddr(),
		dekkerRMWBarrierSameAddr(),
	}
	for _, p := range programs {
		var sets []*OutcomeSet
		for _, typ := range AllTypes() {
			s, err := NewModel(typ).Outcomes(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, typ, err)
			}
			sets = append(sets, s)
		}
		if !sets[0].SubsetOf(sets[1]) {
			t.Errorf("%s: type-1 outcomes not a subset of type-2 outcomes", p.Name)
		}
		if !sets[1].SubsetOf(sets[2]) {
			t.Errorf("%s: type-2 outcomes not a subset of type-3 outcomes", p.Name)
		}
	}
}

// TestConsensusAllTypes checks that even type-3 atomicity suffices for the
// consensus-style use of RMWs: two threads racing a test-and-set on the same
// location can never both win (both read 0 is forbidden only if... in fact
// both reading 0 IS forbidden by every atomicity type because the two RMWs
// synchronize on the same address).
func TestConsensusAllTypes(t *testing.T) {
	p := memmodel.NewProgram("consensus-tas")
	p.AddThread(memmodel.TestAndSet(0, "r0"))
	p.AddThread(memmodel.TestAndSet(0, "r1"))
	for _, typ := range AllTypes() {
		m := NewModel(typ)
		bothWin, err := m.Allows(p, func(o Outcome) bool {
			return o.Registers["P0:r0"] == 0 && o.Registers["P1:r1"] == 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if bothWin {
			t.Errorf("%s: two test-and-sets on one location must not both observe 0", typ)
		}
		someoneWins, err := m.Allows(p, func(o Outcome) bool {
			return o.Registers["P0:r0"] == 0 || o.Registers["P1:r1"] == 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if !someoneWins {
			t.Errorf("%s: at least one test-and-set must win", typ)
		}
	}
}

// TestFetchAddNeverLosesUpdates checks atomicity at the value level: two
// concurrent fetch-and-adds of 1 must leave the counter at 2 under every
// atomicity type.
func TestFetchAddNeverLosesUpdates(t *testing.T) {
	p := memmodel.NewProgram("faa-counter")
	p.AddThread(memmodel.FetchAdd(0, "r0", 1))
	p.AddThread(memmodel.FetchAdd(0, "r1", 1))
	for _, typ := range AllTypes() {
		m := NewModel(typ)
		lost, err := m.Allows(p, func(o Outcome) bool {
			return o.Memory[0] != 2
		})
		if err != nil {
			t.Fatal(err)
		}
		if lost {
			t.Errorf("%s: concurrent fetch-and-adds lost an update", typ)
		}
	}
}

// TestWriteDeadlockProgramSemantics checks the semantics of the Fig. 10
// program: the implementation-level deadlock corresponds to NO valid
// execution requiring it -- semantically, every atomicity type still gives
// the program well-defined outcomes and at least one valid execution exists.
func TestWriteDeadlockProgramSemantics(t *testing.T) {
	p := memmodel.NewProgram("fig10-write-deadlock")
	p.AddThread(memmodel.Write(0, 1), memmodel.FetchAdd(1, "r0", 0))
	p.AddThread(memmodel.Write(1, 1), memmodel.FetchAdd(0, "r1", 0))
	for _, typ := range AllTypes() {
		execs, err := NewModel(typ).ValidExecutions(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(execs) == 0 {
			t.Errorf("%s: the Fig. 10 program must have valid executions", typ)
		}
		// The cyclic scenario of Fig. 10(b) (both RMW reads return 0 while
		// both plain writes are coherence-later than the other RMW's write)
		// must be forbidden under type-1 and type-2 since the RMWs
		// synchronize with the plain writes.
		if typ == Type3 {
			continue
		}
		bad, err := NewModel(typ).Allows(p, func(o Outcome) bool {
			return o.Registers["P0:r0"] == 0 && o.Registers["P1:r1"] == 0 &&
				o.Memory[0] == 1 && o.Memory[1] == 1
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = bad // The outcome itself is allowed; only the cyclic ordering is not.
	}
}

// TestSingleThreadSequentialSemantics checks that a single-threaded chain of
// fetch-and-adds has exactly one outcome under every atomicity type
// (sequential semantics are unaffected by atomicity weakening).
func TestSingleThreadSequentialSemantics(t *testing.T) {
	p := memmodel.NewProgram("seq-chain")
	p.AddThread(
		memmodel.FetchAdd(0, "r0", 1),
		memmodel.FetchAdd(0, "r1", 1),
		memmodel.Read(0, "r2"),
	)
	for _, typ := range AllTypes() {
		set, err := NewModel(typ).Outcomes(p)
		if err != nil {
			t.Fatal(err)
		}
		if set.Len() != 1 {
			t.Fatalf("%s: %d outcomes, want exactly 1: %v", typ, set.Len(), set.Keys())
		}
		o := set.Outcomes()[0]
		if o.Registers["P0:r0"] != 0 || o.Registers["P0:r1"] != 1 || o.Registers["P0:r2"] != 2 {
			t.Errorf("%s: sequential chain outcome wrong: %s", typ, o.Key())
		}
	}
}
