package cpp11

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memmodel"
)

// Action is one memory action of a candidate C/C++11 execution.
type Action struct {
	// Index is the action's position in Execution.Actions.
	Index int
	// Thread is the issuing thread, or -1 for initialization actions.
	Thread int
	// Kind is load or store.
	Kind OpKind
	// Order is the memory order (OrderNA for initialization actions).
	Order MemoryOrder
	// Addr and Value are the accessed location and value (load values are
	// filled in from the chosen reads-from map).
	Addr  memmodel.Addr
	Value memmodel.Value
	// SB is the statement index within the thread, for sequenced-before.
	SB int
	// Reg is the destination register of loads.
	Reg string
}

// IsInit reports whether the action is an initialization write.
func (a *Action) IsInit() bool { return a.Thread < 0 }

// IsWrite reports whether the action writes memory.
func (a *Action) IsWrite() bool { return a.Kind == OpStore }

// IsRead reports whether the action reads memory.
func (a *Action) IsRead() bool { return a.Kind == OpLoad }

// String renders the action, e.g. "T0:Wsc(x)=1" or "T1:Rna(y)=0".
func (a *Action) String() string {
	dir := "R"
	if a.IsWrite() {
		dir = "W"
	}
	who := fmt.Sprintf("T%d", a.Thread)
	if a.IsInit() {
		who = "init"
	}
	return fmt.Sprintf("%s:%s%s(%s)=%d", who, dir, a.Order, memmodel.AddrName(a.Addr), int(a.Value))
}

// Execution is one candidate execution: the actions plus a reads-from map
// and a per-atomic-location modification order. The SC order is not stored;
// consistency checking searches for one (see Consistent).
type Execution struct {
	Program *Program
	Actions []*Action
	// RF maps each load's index to the index of the store it reads from.
	RF map[int]int
	// MO holds, per location, the modification order of all stores to it
	// (initialization store first). It is populated for every location, but
	// only constrains consistency at atomic locations.
	MO map[memmodel.Addr][]int
}

// Enumerate generates all candidate executions of the program: every
// reads-from choice for every load and every modification order of the
// stores of each location.
func Enumerate(p *Program) ([]*Execution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var actions []*Action
	add := func(a *Action) {
		a.Index = len(actions)
		actions = append(actions, a)
	}
	for _, addr := range p.Addrs() {
		v := memmodel.Value(0)
		if iv, ok := p.Init[addr]; ok {
			v = iv
		}
		add(&Action{Thread: -1, Kind: OpStore, Order: OrderNA, Addr: addr, Value: v})
	}
	for ti, t := range p.Threads {
		for si, s := range t {
			add(&Action{Thread: ti, Kind: s.Kind, Order: s.Order, Addr: s.Addr, Value: s.Value, SB: si, Reg: s.Reg})
		}
	}

	storesByAddr := map[memmodel.Addr][]int{}
	var loads []int
	for _, a := range actions {
		if a.IsWrite() {
			storesByAddr[a.Addr] = append(storesByAddr[a.Addr], a.Index)
		} else {
			loads = append(loads, a.Index)
		}
	}

	// rf choices per load.
	choices := make([][]int, len(loads))
	for i, l := range loads {
		choices[i] = append(choices[i], storesByAddr[actions[l].Addr]...)
		if len(choices[i]) == 0 {
			return nil, fmt.Errorf("cpp11: load %s has no candidate stores", actions[l])
		}
	}

	// mo choices per location.
	addrs := p.Addrs()
	moChoices := make([][][]int, len(addrs))
	for i, addr := range addrs {
		var init int = -1
		var rest []int
		for _, w := range storesByAddr[addr] {
			if actions[w].IsInit() {
				init = w
			} else {
				rest = append(rest, w)
			}
		}
		for _, perm := range permute(rest) {
			moChoices[i] = append(moChoices[i], append([]int{init}, perm...))
		}
	}

	var out []*Execution
	rfAssign := make([]int, len(loads))
	moAssign := make([]int, len(addrs))
	var recMO func(level int)
	recMO = func(level int) {
		if level == len(addrs) {
			out = append(out, assemble(p, actions, loads, rfAssign, addrs, moChoices, moAssign))
			return
		}
		for i := range moChoices[level] {
			moAssign[level] = i
			recMO(level + 1)
		}
	}
	var recRF func(level int)
	recRF = func(level int) {
		if level == len(loads) {
			recMO(0)
			return
		}
		for _, w := range choices[level] {
			rfAssign[level] = w
			recRF(level + 1)
		}
	}
	recRF(0)
	return out, nil
}

func assemble(p *Program, template []*Action, loads []int, rfAssign []int, addrs []memmodel.Addr, moChoices [][][]int, moAssign []int) *Execution {
	actions := make([]*Action, len(template))
	for i, a := range template {
		cp := *a
		actions[i] = &cp
	}
	rf := map[int]int{}
	for i, l := range loads {
		rf[l] = rfAssign[i]
		actions[l].Value = actions[rfAssign[i]].Value
	}
	mo := map[memmodel.Addr][]int{}
	for i, addr := range addrs {
		order := moChoices[i][moAssign[i]]
		cp := make([]int, len(order))
		copy(cp, order)
		mo[addr] = cp
	}
	return &Execution{Program: p, Actions: actions, RF: rf, MO: mo}
}

func permute(in []int) [][]int {
	if len(in) == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, in)
	return out
}

// SB returns the sequenced-before relation (plus initialization-before-all,
// which models "initialization happens-before thread start").
func (x *Execution) SB() *memmodel.Relation {
	n := len(x.Actions)
	r := memmodel.NewRelation(n)
	for _, a := range x.Actions {
		for _, b := range x.Actions {
			if a.Index == b.Index {
				continue
			}
			if a.IsInit() && !b.IsInit() {
				r.Add(a.Index, b.Index)
				continue
			}
			if !a.IsInit() && a.Thread == b.Thread && a.SB < b.SB {
				r.Add(a.Index, b.Index)
			}
		}
	}
	return r
}

// SW returns the synchronizes-with relation: an SC store synchronizes with
// every SC load of another thread that reads from it.
func (x *Execution) SW() *memmodel.Relation {
	n := len(x.Actions)
	r := memmodel.NewRelation(n)
	for load, store := range x.RF {
		l, s := x.Actions[load], x.Actions[store]
		if l.Order == OrderSC && s.Order == OrderSC && l.Thread != s.Thread {
			r.Add(store, load)
		}
	}
	return r
}

// HB returns the happens-before relation: the transitive closure of
// sequenced-before and synchronizes-with.
func (x *Execution) HB() *memmodel.Relation {
	hb := x.SB()
	hb.Union(x.SW())
	return hb.TransitiveClosure()
}

// moRel converts the per-location modification orders into a relation,
// restricted to atomic locations.
func (x *Execution) moRel(atomic map[memmodel.Addr]bool) *memmodel.Relation {
	r := memmodel.NewRelation(len(x.Actions))
	for addr, order := range x.MO {
		if !atomic[addr] {
			continue
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				r.Add(order[i], order[j])
			}
		}
	}
	return r
}

// moBefore reports whether a is modification-ordered before b (same
// location).
func (x *Execution) moBefore(a, b int) bool {
	order := x.MO[x.Actions[a].Addr]
	pa, pb := -1, -1
	for i, w := range order {
		if w == a {
			pa = i
		}
		if w == b {
			pb = i
		}
	}
	return pa >= 0 && pb >= 0 && pa < pb
}

// Inconsistency describes why a candidate execution is not consistent. An
// empty reason means the execution is consistent.
type Inconsistency struct {
	Reason string
}

// Consistent reports whether the candidate execution is consistent in the
// C/C++11 model (restricted to the subset this package implements), and if
// not, why. Consistency requires an SC total order to exist; the check
// enumerates candidate SC orders over the (few) SC actions.
func (x *Execution) Consistent() (bool, Inconsistency) {
	atomic := x.Program.AtomicLocations()
	hb := x.HB()

	// happens-before must be irreflexive/acyclic.
	if !hb.Acyclic() {
		return false, Inconsistency{Reason: "happens-before is cyclic"}
	}

	// No load may read from a store that happens-after it.
	for load, store := range x.RF {
		if hb.Has(load, store) {
			return false, Inconsistency{Reason: fmt.Sprintf("%s reads from a store that happens-after it", x.Actions[load])}
		}
	}

	// Coherence at atomic locations.
	if ok, why := x.checkCoherence(hb, atomic); !ok {
		return false, Inconsistency{Reason: why}
	}

	// Visible side effects for non-atomic loads.
	if ok, why := x.checkNonAtomicVisibility(hb, atomic); !ok {
		return false, Inconsistency{Reason: why}
	}

	// An SC total order must exist.
	if ok, why := x.checkSCOrder(hb, atomic); !ok {
		return false, Inconsistency{Reason: why}
	}

	return true, Inconsistency{}
}

// checkCoherence verifies the CoWW, CoWR, CoRW and CoRR shapes at atomic
// locations.
func (x *Execution) checkCoherence(hb *memmodel.Relation, atomic map[memmodel.Addr]bool) (bool, string) {
	for _, a := range x.Actions {
		for _, b := range x.Actions {
			if a.Index == b.Index || a.Addr != b.Addr || !atomic[a.Addr] {
				continue
			}
			if !hb.Has(a.Index, b.Index) {
				continue
			}
			switch {
			case a.IsWrite() && b.IsWrite():
				// CoWW: hb must agree with mo.
				if x.moBefore(b.Index, a.Index) {
					return false, fmt.Sprintf("CoWW violated between %s and %s", a, b)
				}
			case a.IsWrite() && b.IsRead():
				// CoWR: b must not read from a store mo-before a.
				src := x.RF[b.Index]
				if src != a.Index && x.moBefore(src, a.Index) {
					return false, fmt.Sprintf("CoWR violated at %s", b)
				}
			case a.IsRead() && b.IsWrite():
				// CoRW: the store a reads from must be mo-before b.
				src := x.RF[a.Index]
				if src != b.Index && x.moBefore(b.Index, src) {
					return false, fmt.Sprintf("CoRW violated at %s", a)
				}
			case a.IsRead() && b.IsRead():
				// CoRR: the two reads must observe stores in mo order.
				sa, sb := x.RF[a.Index], x.RF[b.Index]
				if sa != sb && x.moBefore(sb, sa) {
					return false, fmt.Sprintf("CoRR violated between %s and %s", a, b)
				}
			}
		}
	}
	return true, ""
}

// checkNonAtomicVisibility verifies that every non-atomic load reads from a
// visible side effect: a store that happens-before the load with no
// intervening store (in happens-before) to the same location.
func (x *Execution) checkNonAtomicVisibility(hb *memmodel.Relation, atomic map[memmodel.Addr]bool) (bool, string) {
	for load, store := range x.RF {
		l := x.Actions[load]
		if l.Order != OrderNA || atomic[l.Addr] {
			continue
		}
		if !hb.Has(store, load) {
			return false, fmt.Sprintf("non-atomic %s reads from a store that does not happen-before it", l)
		}
		for _, w := range x.Actions {
			if !w.IsWrite() || w.Addr != l.Addr || w.Index == store {
				continue
			}
			if hb.Has(store, w.Index) && hb.Has(w.Index, load) {
				return false, fmt.Sprintf("non-atomic %s reads a hidden side effect", l)
			}
		}
	}
	return true, ""
}

// checkSCOrder searches for a total order over the SC actions that is
// consistent with happens-before and modification order and satisfies the
// SC-read restriction: an SC load must read from the last SC store to its
// location that precedes it in the SC order (or from a non-SC store when no
// SC store precedes it).
func (x *Execution) checkSCOrder(hb *memmodel.Relation, atomic map[memmodel.Addr]bool) (bool, string) {
	var scActions []int
	for _, a := range x.Actions {
		if a.Order == OrderSC {
			scActions = append(scActions, a.Index)
		}
	}
	if len(scActions) == 0 {
		return true, ""
	}
	mo := x.moRel(atomic)
	for _, perm := range permute(scActions) {
		if x.scOrderOK(perm, hb, mo) {
			return true, ""
		}
	}
	return false, "no SC total order is consistent with happens-before, modification order and the SC read restriction"
}

func (x *Execution) scOrderOK(sc []int, hb, mo *memmodel.Relation) bool {
	pos := map[int]int{}
	for i, a := range sc {
		pos[a] = i
	}
	// sc must not contradict hb or mo.
	for i, a := range sc {
		for _, b := range sc[i+1:] {
			if hb.Has(b, a) || mo.Has(b, a) {
				return false
			}
		}
	}
	// SC read restriction.
	for load, store := range x.RF {
		l := x.Actions[load]
		if l.Order != OrderSC {
			continue
		}
		pl := pos[load]
		// Find the last SC store to l.Addr before the load in sc.
		last := -1
		for i := 0; i < pl; i++ {
			a := x.Actions[sc[i]]
			if a.IsWrite() && a.Addr == l.Addr {
				last = sc[i]
			}
		}
		src := x.Actions[store]
		if last < 0 {
			// No SC store precedes the load: it must read from a non-SC
			// store (e.g. the initialization write).
			if src.Order == OrderSC && pos[store] > pl {
				return false
			}
			continue
		}
		if src.Order == OrderSC {
			if store != last {
				return false
			}
		} else {
			// Reading a non-SC store is allowed only if it does not
			// happen-before the last preceding SC store.
			if hb.Has(store, last) {
				return false
			}
		}
	}
	return true
}

// Racy reports whether the execution contains a data race: two actions of
// different threads to the same location, at least one a store, at least
// one non-atomic, unordered by happens-before.
func (x *Execution) Racy() bool {
	hb := x.HB()
	for _, a := range x.Actions {
		for _, b := range x.Actions {
			if a.Index >= b.Index || a.Addr != b.Addr || a.Thread == b.Thread {
				continue
			}
			if !a.IsWrite() && !b.IsWrite() {
				continue
			}
			if a.Order != OrderNA && b.Order != OrderNA {
				continue
			}
			if a.IsInit() || b.IsInit() {
				continue // initialization happens-before everything
			}
			if !hb.Has(a.Index, b.Index) && !hb.Has(b.Index, a.Index) {
				return true
			}
		}
	}
	return false
}

// Registers returns the final register valuation of the execution, keyed
// "P<tid>:<reg>" to match core.Outcome.
func (x *Execution) Registers() map[string]memmodel.Value {
	out := map[string]memmodel.Value{}
	for _, a := range x.Actions {
		if a.IsRead() && a.Reg != "" {
			out[fmt.Sprintf("P%d:%s", a.Thread, a.Reg)] = a.Value
		}
	}
	return out
}

// RegisterKey renders a register valuation canonically, e.g.
// "P0:r0=0 P1:r1=1".
func RegisterKey(regs map[string]memmodel.Value) string {
	keys := make([]string, 0, len(regs))
	for k := range regs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, int(regs[k]))
	}
	return b.String()
}

// Semantics summarizes the program's behaviour under the C/C++11 model.
type Semantics struct {
	// Racy is true when some consistent execution has a data race; the
	// program then has undefined behaviour and every mapping is trivially
	// correct for it.
	Racy bool
	// Outcomes is the set of register valuations of consistent executions,
	// keyed by RegisterKey.
	Outcomes map[string]map[string]memmodel.Value
	// Consistent counts consistent executions; Candidates counts all
	// enumerated candidates.
	Consistent int
	Candidates int
}

// Analyze enumerates the program's candidate executions and classifies
// them.
func Analyze(p *Program) (*Semantics, error) {
	execs, err := Enumerate(p)
	if err != nil {
		return nil, err
	}
	sem := &Semantics{Outcomes: map[string]map[string]memmodel.Value{}}
	sem.Candidates = len(execs)
	for _, x := range execs {
		ok, _ := x.Consistent()
		if !ok {
			continue
		}
		sem.Consistent++
		if x.Racy() {
			sem.Racy = true
		}
		regs := x.Registers()
		sem.Outcomes[RegisterKey(regs)] = regs
	}
	return sem, nil
}

// AllowsOutcome reports whether the register valuation (by canonical key)
// is among the consistent outcomes.
func (s *Semantics) AllowsOutcome(key string) bool {
	_, ok := s.Outcomes[key]
	return ok
}

// OutcomeKeys returns the canonical keys of all consistent outcomes,
// sorted.
func (s *Semantics) OutcomeKeys() []string {
	out := make([]string, 0, len(s.Outcomes))
	for k := range s.Outcomes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
