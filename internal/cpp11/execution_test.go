package cpp11

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

func TestProgramValidate(t *testing.T) {
	ok := SCStoreBuffering()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	empty := NewProgram("empty")
	if err := empty.Validate(); err == nil {
		t.Error("empty program must not validate")
	}

	emptyThread := NewProgram("empty-thread")
	emptyThread.Threads = append(emptyThread.Threads, Thread{})
	if err := emptyThread.Validate(); err == nil {
		t.Error("empty thread must not validate")
	}

	noReg := NewProgram("no-reg")
	noReg.AddThread(Stmt{Kind: OpLoad, Order: OrderNA, Addr: locX})
	if err := noReg.Validate(); err == nil {
		t.Error("load without register must not validate")
	}

	dupReg := NewProgram("dup-reg")
	dupReg.AddThread(Load(locX, "r0"), Load(locY, "r0"))
	if err := dupReg.Validate(); err == nil {
		t.Error("duplicate register must not validate")
	}

	mixed := NewProgram("mixed")
	mixed.AddThread(SCStore(locX, 1), Load(locX, "r0"))
	if err := mixed.Validate(); err == nil {
		t.Error("mixing atomic and non-atomic accesses to one location must not validate")
	}
}

func TestProgramHelpers(t *testing.T) {
	p := MessagePassingSCFlag()
	atomic := p.AtomicLocations()
	if !atomic[locY] || atomic[locX] {
		t.Errorf("AtomicLocations = %v, want only y", atomic)
	}
	addrs := p.Addrs()
	if len(addrs) != 2 {
		t.Errorf("Addrs = %v", addrs)
	}
	p.SetInit(locX, 7)
	if p.Init[locX] != 7 {
		t.Error("SetInit not applied")
	}
	s := p.String()
	if !strings.Contains(s, "seq_cst") || !strings.Contains(s, "thread") {
		t.Errorf("Program.String missing pieces:\n%s", s)
	}
}

func TestStmtString(t *testing.T) {
	cases := []struct {
		s    Stmt
		want string
	}{
		{SCLoad(locX, "r0"), "r0 = x.load(seq_cst)"},
		{SCStore(locX, 1), "x.store(1, seq_cst)"},
		{Load(locY, "r1"), "r1 = y"},
		{Store(locY, 2), "y = 2"},
	}
	for _, c := range cases {
		if c.s.String() != c.want {
			t.Errorf("String = %q, want %q", c.s.String(), c.want)
		}
	}
}

func TestMemoryOrderString(t *testing.T) {
	if OrderNA.String() != "na" || OrderSC.String() != "sc" {
		t.Error("memory order names wrong")
	}
	if MemoryOrder(7).String() == "" {
		t.Error("unknown order should render")
	}
}

func TestEnumerateBasic(t *testing.T) {
	p := SCStoreBuffering()
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	// 2 loads x 2 candidate stores each, one mo per location = 4 candidates.
	if len(execs) != 4 {
		t.Fatalf("candidates = %d, want 4", len(execs))
	}
	for _, x := range execs {
		if len(x.Actions) != 6 {
			t.Fatalf("actions = %d, want 6 (2 init + 4)", len(x.Actions))
		}
		for load, store := range x.RF {
			if x.Actions[load].Addr != x.Actions[store].Addr {
				t.Error("rf links different locations")
			}
			if x.Actions[load].Value != x.Actions[store].Value {
				t.Error("load value not propagated from rf source")
			}
		}
	}
}

func TestEnumerateRejectsInvalidProgram(t *testing.T) {
	if _, err := Enumerate(NewProgram("bad")); err == nil {
		t.Fatal("Enumerate of invalid program must fail")
	}
}

func TestSCStoreBufferingForbidsRelaxedOutcome(t *testing.T) {
	sem, err := Analyze(SCStoreBuffering())
	if err != nil {
		t.Fatal(err)
	}
	if sem.Racy {
		t.Fatal("SC-only program must be race-free")
	}
	if sem.Consistent == 0 {
		t.Fatal("no consistent executions")
	}
	bad := RegisterKey(map[string]memmodel.Value{"P0:r0": 0, "P1:r1": 0})
	if sem.AllowsOutcome(bad) {
		t.Errorf("C/C++11 must forbid the relaxed SB outcome; outcomes: %v", sem.OutcomeKeys())
	}
	// At least three of the four other outcomes must be reachable.
	if len(sem.Outcomes) < 3 {
		t.Errorf("suspiciously few outcomes: %v", sem.OutcomeKeys())
	}
}

func TestSCMessagePassingForbidsReordering(t *testing.T) {
	sem, err := Analyze(SCMessagePassing())
	if err != nil {
		t.Fatal(err)
	}
	bad := RegisterKey(map[string]memmodel.Value{"P1:r0": 1, "P1:r1": 0})
	if sem.AllowsOutcome(bad) {
		t.Errorf("flag=1, data=0 must be forbidden; outcomes: %v", sem.OutcomeKeys())
	}
	good := RegisterKey(map[string]memmodel.Value{"P1:r0": 1, "P1:r1": 1})
	if !sem.AllowsOutcome(good) {
		t.Errorf("flag=1, data=1 must be allowed; outcomes: %v", sem.OutcomeKeys())
	}
}

func TestMessagePassingSCFlagUnconditionalReadIsRacy(t *testing.T) {
	// Without the guarding branch the reader touches the data even when it
	// misses the flag, so the idiom is racy under C/C++11.
	sem, err := Analyze(MessagePassingSCFlag())
	if err != nil {
		t.Fatal(err)
	}
	if !sem.Racy {
		t.Error("unconditional read of published data must be reported as a race")
	}
	// Executions where the reader does observe the flag must still see the
	// data: the synchronizes-with edge of the SC flag orders the accesses.
	bad := RegisterKey(map[string]memmodel.Value{"P1:r0": 1, "P1:r1": 0})
	if sem.AllowsOutcome(bad) {
		t.Errorf("observing the flag without the data must be forbidden; outcomes: %v", sem.OutcomeKeys())
	}
}

func TestRacyMessagePassingIsRacy(t *testing.T) {
	sem, err := Analyze(RacyMessagePassing())
	if err != nil {
		t.Fatal(err)
	}
	if !sem.Racy {
		t.Error("plain-flag message passing must be racy")
	}
}

func TestSCIRIWAgreesOnWriteOrder(t *testing.T) {
	sem, err := Analyze(SCIRIW())
	if err != nil {
		t.Fatal(err)
	}
	// The forbidden outcome: the two readers observe the writes in opposite
	// orders.
	bad := RegisterKey(map[string]memmodel.Value{
		"P2:r0": 1, "P2:r1": 0,
		"P3:r2": 1, "P3:r3": 0,
	})
	if sem.AllowsOutcome(bad) {
		t.Errorf("IRIW readers must agree on the SC write order; outcomes: %v", sem.OutcomeKeys())
	}
}

func TestConsistentRejectsCoherenceViolations(t *testing.T) {
	// Single thread SC-stores 1 then 2 to x; another thread SC-loads x twice.
	p := NewProgram("corr")
	p.AddThread(SCStore(locX, 1), SCStore(locX, 2))
	p.AddThread(SCLoad(locX, "r0"), SCLoad(locX, "r1"))
	sem, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := RegisterKey(map[string]memmodel.Value{"P1:r0": 2, "P1:r1": 1})
	if sem.AllowsOutcome(bad) {
		t.Errorf("CoRR-violating outcome allowed; outcomes: %v", sem.OutcomeKeys())
	}
}

func TestNonAtomicVisibility(t *testing.T) {
	// Sequential non-atomic program: a read after a write in the same thread
	// must see that write.
	p := NewProgram("na-seq")
	p.AddThread(Store(locX, 1), Load(locX, "r0"))
	sem, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if sem.Racy {
		t.Fatal("single-threaded program cannot race")
	}
	keys := sem.OutcomeKeys()
	if len(keys) != 1 || keys[0] != RegisterKey(map[string]memmodel.Value{"P0:r0": 1}) {
		t.Errorf("sequential read must see the preceding write; outcomes: %v", keys)
	}
}

func TestActionString(t *testing.T) {
	a := &Action{Thread: 0, Kind: OpStore, Order: OrderSC, Addr: locX, Value: 1}
	if a.String() != "T0:Wsc(x)=1" {
		t.Errorf("Action.String = %q", a.String())
	}
	init := &Action{Thread: -1, Kind: OpStore, Order: OrderNA, Addr: locY}
	if init.String() != "init:Wna(y)=0" {
		t.Errorf("init Action.String = %q", init.String())
	}
	if !init.IsInit() || !init.IsWrite() || init.IsRead() {
		t.Error("action predicates wrong")
	}
}

func TestRegisterKeyDeterministic(t *testing.T) {
	regs := map[string]memmodel.Value{"P1:r1": 1, "P0:r0": 0}
	want := "P0:r0=0 P1:r1=1"
	for i := 0; i < 5; i++ {
		if RegisterKey(regs) != want {
			t.Fatalf("RegisterKey = %q, want %q", RegisterKey(regs), want)
		}
	}
	if RegisterKey(nil) != "" {
		t.Error("empty register map should render as empty string")
	}
}
