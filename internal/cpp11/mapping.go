package cpp11

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/memmodel"
)

// Mapping is one of the paper's Table 4 compilation schemes from C/C++11
// accesses to x86-TSO instruction sequences. Non-SC accesses always compile
// to plain loads and stores; the mappings differ in whether SC loads and/or
// SC stores become locked RMW instructions.
type Mapping int

const (
	// ReadWriteMapping compiles SC loads to "lock xadd(0)" and SC stores to
	// "lock xchg" (Table 4(a), from Terekhov's prototype).
	ReadWriteMapping Mapping = iota
	// ReadMapping compiles only SC loads to "lock xadd(0)"; SC stores stay
	// plain stores (Table 4(b)).
	ReadMapping
	// WriteMapping compiles only SC stores to "lock xchg"; SC loads stay
	// plain loads (Table 4(c)).
	WriteMapping
)

// String returns the paper's name for the mapping.
func (m Mapping) String() string {
	switch m {
	case ReadWriteMapping:
		return "read-write-mapping"
	case ReadMapping:
		return "read-mapping"
	case WriteMapping:
		return "write-mapping"
	default:
		return fmt.Sprintf("Mapping(%d)", int(m))
	}
}

// AllMappings lists the Table 4 mappings in table order.
func AllMappings() []Mapping { return []Mapping{ReadWriteMapping, ReadMapping, WriteMapping} }

// ParseMapping parses a mapping name ("read-write", "read", "write", with
// or without the "-mapping" suffix).
func ParseMapping(s string) (Mapping, error) {
	switch strings.TrimSuffix(s, "-mapping") {
	case "read-write", "rw":
		return ReadWriteMapping, nil
	case "read", "r":
		return ReadMapping, nil
	case "write", "w":
		return WriteMapping, nil
	default:
		return 0, fmt.Errorf("cpp11: unknown mapping %q (want read-write, read or write)", s)
	}
}

// MapsSCLoadToRMW reports whether the mapping compiles SC loads to RMWs.
func (m Mapping) MapsSCLoadToRMW() bool { return m == ReadWriteMapping || m == ReadMapping }

// MapsSCStoreToRMW reports whether the mapping compiles SC stores to RMWs.
func (m Mapping) MapsSCStoreToRMW() bool { return m == ReadWriteMapping || m == WriteMapping }

// Compile translates a C/C++11 program to a TSO litmus program under the
// mapping. SC loads compiled to RMWs become fetch-and-add of zero (the
// value read is observable in the original register); SC stores compiled to
// RMWs become exchanges whose read half lands in a hidden register named
// "_scw<i>". Hidden registers are excluded when projecting TSO outcomes
// back onto the C/C++11 program (see ProjectOutcome).
func Compile(p *Program, m Mapping) (*memmodel.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := memmodel.NewProgram(fmt.Sprintf("%s[%s]", p.Name, m))
	for addr, v := range p.Init {
		out.SetInit(addr, v)
	}
	aux := 0
	for _, t := range p.Threads {
		var instrs []memmodel.Instr
		for _, s := range t {
			switch {
			case s.Kind == OpLoad && s.Order == OrderSC && m.MapsSCLoadToRMW():
				instrs = append(instrs, memmodel.FetchAdd(s.Addr, s.Reg, 0))
			case s.Kind == OpLoad:
				instrs = append(instrs, memmodel.Read(s.Addr, s.Reg))
			case s.Kind == OpStore && s.Order == OrderSC && m.MapsSCStoreToRMW():
				reg := fmt.Sprintf("_scw%d", aux)
				aux++
				instrs = append(instrs, memmodel.Exchange(s.Addr, reg, s.Value))
			default:
				instrs = append(instrs, memmodel.Write(s.Addr, s.Value))
			}
		}
		out.AddThread(instrs...)
	}
	return out, nil
}

// ProjectOutcome restricts a TSO outcome's registers to the registers that
// exist in the source C/C++11 program, dropping the hidden "_scw" registers
// introduced by compiled SC stores.
func ProjectOutcome(o core.Outcome) map[string]memmodel.Value {
	out := map[string]memmodel.Value{}
	for k, v := range o.Registers {
		if strings.Contains(k, ":_scw") {
			continue
		}
		out[k] = v
	}
	return out
}

// ValidationResult reports whether a mapping is a correct compilation
// scheme for a program under a given RMW atomicity type: every outcome the
// TSO model allows for the compiled program must be a consistent C/C++11
// outcome of the source program (unless the source program is racy, in
// which case any behaviour is permitted).
type ValidationResult struct {
	Program   string
	Mapping   Mapping
	Atomicity core.AtomicityType
	// Racy is true when the source program has a data race (undefined
	// behaviour): the mapping is then vacuously sound for it.
	Racy bool
	// Sound is true when TSO outcomes ⊆ C/C++11 outcomes (or Racy).
	Sound bool
	// Counterexamples lists TSO-allowed outcomes that the C/C++11 model
	// forbids, by canonical register key.
	Counterexamples []string
	// CPPOutcomes and TSOOutcomes are the outcome keys of the two models,
	// for reporting.
	CPPOutcomes []string
	TSOOutcomes []string
}

// String renders the validation result as a one-line summary.
func (r ValidationResult) String() string {
	verdict := "SOUND"
	if !r.Sound {
		verdict = "UNSOUND"
	}
	if r.Racy {
		verdict += " (racy source)"
	}
	s := fmt.Sprintf("%-24s %-20s %-7s %s", r.Program, r.Mapping, r.Atomicity, verdict)
	if len(r.Counterexamples) > 0 {
		s += fmt.Sprintf("  counterexample: %s", r.Counterexamples[0])
	}
	return s
}

// ValidateMapping checks the mapping against the program for one RMW
// atomicity type by exhaustive comparison of the two models' outcome sets.
func ValidateMapping(p *Program, m Mapping, typ core.AtomicityType) (ValidationResult, error) {
	return ValidateMappingParallel(context.Background(), p, m, typ, 1)
}

// ValidateMappingParallel is ValidateMapping with the TSO side's candidate
// enumeration — the dominant cost, since compiling SC accesses to RMWs
// multiplies the rf×ws choice space — partitioned across workers
// goroutines. workers > 1 parallelizes, workers == 1 is sequential, and
// workers <= 0 picks the candidate-count heuristic for the compiled
// program (GOMAXPROCS for IRIW-class spaces, 1 for small ones). The
// result is identical to ValidateMapping's; a cancelled ctx aborts with
// ctx's error.
func ValidateMappingParallel(ctx context.Context, p *Program, m Mapping, typ core.AtomicityType, workers int) (ValidationResult, error) {
	res := ValidationResult{Program: p.Name, Mapping: m, Atomicity: typ}

	sem, err := Analyze(p)
	if err != nil {
		return res, err
	}
	res.Racy = sem.Racy
	res.CPPOutcomes = sem.OutcomeKeys()

	compiled, err := Compile(p, m)
	if err != nil {
		return res, err
	}
	if workers <= 0 {
		workers = memmodel.AutoEnumWorkers(compiled)
	}
	tsoOutcomes, err := core.NewModel(typ).OutcomesParallel(ctx, compiled, workers)
	if err != nil {
		return res, err
	}
	tsoKeys := map[string]bool{}
	for _, o := range tsoOutcomes.Outcomes() {
		tsoKeys[RegisterKey(ProjectOutcome(o))] = true
	}
	for k := range tsoKeys {
		res.TSOOutcomes = append(res.TSOOutcomes, k)
	}
	sort.Strings(res.TSOOutcomes)

	res.Sound = true
	if !res.Racy {
		for _, k := range res.TSOOutcomes {
			if !sem.AllowsOutcome(k) {
				res.Sound = false
				res.Counterexamples = append(res.Counterexamples, k)
			}
		}
	}
	return res, nil
}

// ValidateAll validates every Table 4 mapping under every RMW atomicity
// type for the given programs, returning results in (program, mapping,
// type) order. This regenerates the paper's appendix-A claims: the
// read-write-mapping and the read-mapping are sound for all three RMW
// types, while the write-mapping is sound for type-1 and type-2 but not
// type-3.
func ValidateAll(programs []*Program) ([]ValidationResult, error) {
	var out []ValidationResult
	for _, p := range programs {
		for _, m := range AllMappings() {
			for _, typ := range core.AllTypes() {
				r, err := ValidateMapping(p, m, typ)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}
