package cpp11

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memmodel"
)

func TestMappingStringAndParse(t *testing.T) {
	names := map[Mapping]string{
		ReadWriteMapping: "read-write-mapping",
		ReadMapping:      "read-mapping",
		WriteMapping:     "write-mapping",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(m), m.String(), want)
		}
		parsed, err := ParseMapping(want)
		if err != nil || parsed != m {
			t.Errorf("ParseMapping(%q) = %v, %v", want, parsed, err)
		}
	}
	for _, alias := range []string{"rw", "read-write", "r", "read", "w", "write"} {
		if _, err := ParseMapping(alias); err != nil {
			t.Errorf("ParseMapping(%q) failed: %v", alias, err)
		}
	}
	if _, err := ParseMapping("bogus"); err == nil {
		t.Error("unknown mapping must not parse")
	}
	if Mapping(9).String() == "" {
		t.Error("unknown mapping should still render")
	}
}

func TestMappingPredicates(t *testing.T) {
	if !ReadWriteMapping.MapsSCLoadToRMW() || !ReadWriteMapping.MapsSCStoreToRMW() {
		t.Error("read-write-mapping must map both to RMWs")
	}
	if !ReadMapping.MapsSCLoadToRMW() || ReadMapping.MapsSCStoreToRMW() {
		t.Error("read-mapping must map only SC loads to RMWs")
	}
	if WriteMapping.MapsSCLoadToRMW() || !WriteMapping.MapsSCStoreToRMW() {
		t.Error("write-mapping must map only SC stores to RMWs")
	}
	if len(AllMappings()) != 3 {
		t.Error("AllMappings should list the three Table 4 mappings")
	}
}

func TestCompileInstructionSelection(t *testing.T) {
	p := MessagePassingSCFlag() // non-atomic data store, SC flag store; SC flag load, non-atomic data load
	for _, m := range AllMappings() {
		compiled, err := Compile(p, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := compiled.Validate(); err != nil {
			t.Fatalf("%s: compiled program invalid: %v", m, err)
		}
		// Thread 0: Store(x) stays a plain write; SCStore(y) becomes an RMW
		// iff the mapping maps SC stores.
		t0 := compiled.Threads[0]
		if t0[0].Kind != memmodel.InstrWrite {
			t.Errorf("%s: non-atomic store compiled to %v", m, t0[0].Kind)
		}
		wantStore := memmodel.InstrWrite
		if m.MapsSCStoreToRMW() {
			wantStore = memmodel.InstrRMW
		}
		if t0[1].Kind != wantStore {
			t.Errorf("%s: SC store compiled to %v, want %v", m, t0[1].Kind, wantStore)
		}
		// Thread 1: SCLoad(y) becomes an RMW iff the mapping maps SC loads;
		// the plain load stays a load.
		t1 := compiled.Threads[1]
		wantLoad := memmodel.InstrRead
		if m.MapsSCLoadToRMW() {
			wantLoad = memmodel.InstrRMW
		}
		if t1[0].Kind != wantLoad {
			t.Errorf("%s: SC load compiled to %v, want %v", m, t1[0].Kind, wantLoad)
		}
		if t1[1].Kind != memmodel.InstrRead {
			t.Errorf("%s: non-atomic load compiled to %v", m, t1[1].Kind)
		}
	}
}

func TestCompilePreservesInitAndRejectsInvalid(t *testing.T) {
	p := SCStoreBuffering()
	p.SetInit(locX, 5)
	compiled, err := Compile(p, ReadMapping)
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Init[locX] != 5 {
		t.Error("initial values must be preserved by compilation")
	}
	if _, err := Compile(NewProgram("bad"), ReadMapping); err == nil {
		t.Error("compiling an invalid program must fail")
	}
}

func TestCompiledSCStoreValueSemantics(t *testing.T) {
	// A compiled SC store must still store the same value: run the compiled
	// program and check the final memory.
	p := NewProgram("store-value")
	p.AddThread(SCStore(locX, 7))
	compiled, err := Compile(p, WriteMapping)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewModel(core.Type1).Outcomes(compiled)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range set.Outcomes() {
		if o.Memory[locX] != 7 {
			t.Errorf("compiled SC store wrote %d, want 7", o.Memory[locX])
		}
	}
}

func TestProjectOutcomeDropsHiddenRegisters(t *testing.T) {
	o := core.Outcome{Registers: map[string]memmodel.Value{
		"P0:r0":    1,
		"P0:_scw0": 0,
		"P1:_scw1": 1,
	}}
	got := ProjectOutcome(o)
	if len(got) != 1 || got["P0:r0"] != 1 {
		t.Errorf("ProjectOutcome = %v", got)
	}
}

// TestTable4MappingSoundness is the executable version of the paper's
// appendix A: for the SC store-buffering program, the read-write-mapping
// and read-mapping are sound for all three RMW atomicity types, and the
// write-mapping is sound for type-1 and type-2 but NOT for type-3.
func TestTable4MappingSoundness(t *testing.T) {
	p := SCStoreBuffering()
	type key struct {
		m   Mapping
		typ core.AtomicityType
	}
	wantSound := map[key]bool{
		{ReadWriteMapping, core.Type1}: true,
		{ReadWriteMapping, core.Type2}: true,
		{ReadWriteMapping, core.Type3}: true,
		{ReadMapping, core.Type1}:      true,
		{ReadMapping, core.Type2}:      true,
		{ReadMapping, core.Type3}:      true,
		{WriteMapping, core.Type1}:     true,
		{WriteMapping, core.Type2}:     true,
		{WriteMapping, core.Type3}:     false,
	}
	for k, want := range wantSound {
		res, err := ValidateMapping(p, k.m, k.typ)
		if err != nil {
			t.Fatalf("%s/%s: %v", k.m, k.typ, err)
		}
		if res.Racy {
			t.Fatalf("%s is race-free but reported racy", p.Name)
		}
		if res.Sound != want {
			t.Errorf("%s with %s: sound=%v, want %v (counterexamples %v)",
				k.m, k.typ, res.Sound, want, res.Counterexamples)
		}
		if !want && len(res.Counterexamples) == 0 {
			t.Errorf("%s with %s: unsound result must carry a counterexample", k.m, k.typ)
		}
	}
}

// TestWriteMappingType3CounterexampleIsDekker checks that the specific
// counterexample for the write-mapping with type-3 RMWs is the Dekker
// outcome the paper names: both SC loads returning 0.
func TestWriteMappingType3CounterexampleIsDekker(t *testing.T) {
	res, err := ValidateMapping(SCStoreBuffering(), WriteMapping, core.Type3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sound {
		t.Fatal("write-mapping with type-3 RMWs must be unsound")
	}
	want := RegisterKey(map[string]memmodel.Value{"P0:r0": 0, "P1:r1": 0})
	found := false
	for _, c := range res.Counterexamples {
		if c == want {
			found = true
		}
	}
	if !found {
		t.Errorf("counterexamples %v do not include the Dekker outcome %q", res.Counterexamples, want)
	}
}

// TestValidationProgramsAllSoundExceptWriteType3 validates every mapping and
// type over the whole validation-program set: the only unsound combination
// anywhere must be write-mapping + type-3.
func TestValidationProgramsAllSoundExceptWriteType3(t *testing.T) {
	results, err := ValidateAll(ValidationPrograms())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ValidationPrograms()) * 3 * 3; len(results) != want {
		t.Fatalf("expected %d results, got %d", want, len(results))
	}
	for _, r := range results {
		expectSound := !(r.Mapping == WriteMapping && r.Atomicity == core.Type3 && r.Program == "sc-store-buffering")
		if r.Sound != expectSound {
			t.Errorf("%s: sound=%v, want %v", r.String(), r.Sound, expectSound)
		}
	}
}

func TestRacyProgramIsVacuouslySound(t *testing.T) {
	res, err := ValidateMapping(RacyMessagePassing(), WriteMapping, core.Type3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Racy {
		t.Fatal("program must be racy")
	}
	if !res.Sound {
		t.Error("racy programs have undefined behaviour; every mapping is vacuously sound")
	}
}

func TestValidationResultString(t *testing.T) {
	res, err := ValidateMapping(SCStoreBuffering(), WriteMapping, core.Type3)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "UNSOUND") || !strings.Contains(s, "counterexample") {
		t.Errorf("unsound result rendering missing pieces: %q", s)
	}
	sound, err := ValidateMapping(SCStoreBuffering(), ReadMapping, core.Type2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sound.String(), "SOUND") {
		t.Errorf("sound result rendering missing verdict: %q", sound.String())
	}
}
