// Package cpp11 implements the subset of the C/C++11 concurrency model that
// the paper relies on (appendix A), together with the three compilation
// mappings of Table 4 from C/C++11 atomics to x86-TSO instruction sequences
// and an executable validation of which mappings are sound for which RMW
// atomicity type.
//
// Only the features the paper's argument needs are modelled: non-atomic
// loads and stores, and SC-ordered atomic loads and stores ("the properties
// of the others are automatically satisfied by normal reads and writes on
// TSO"). Consistency of a candidate execution follows Batty et al.'s
// formulation restricted to this subset: happens-before built from
// sequenced-before and synchronizes-with, modification order per atomic
// location, an SC total order over all SC actions, coherence shapes, and
// the SC read restriction. Programs with a data race on a non-atomic
// location have undefined behaviour.
package cpp11

import (
	"fmt"

	"repro/internal/memmodel"
)

// MemoryOrder is the memory-order annotation of an atomic access. Only
// OrderNA (plain, non-atomic) and OrderSC matter on TSO (see the paper's
// appendix); the relaxed/acquire/release orders collapse to plain TSO
// accesses under every mapping in Table 4 and are therefore not modelled
// separately.
type MemoryOrder int

const (
	// OrderNA marks a non-atomic (plain) access.
	OrderNA MemoryOrder = iota
	// OrderSC marks a sequentially-consistent atomic access.
	OrderSC
)

// String renders the order annotation.
func (o MemoryOrder) String() string {
	switch o {
	case OrderNA:
		return "na"
	case OrderSC:
		return "sc"
	default:
		return fmt.Sprintf("MemoryOrder(%d)", int(o))
	}
}

// OpKind distinguishes loads from stores.
type OpKind int

const (
	// OpLoad is a load.
	OpLoad OpKind = iota
	// OpStore is a store.
	OpStore
)

// Stmt is one statement of a C/C++11 thread: a load or store with a memory
// order annotation.
type Stmt struct {
	Kind  OpKind
	Order MemoryOrder
	// Addr is the accessed location.
	Addr memmodel.Addr
	// Value is the stored value (stores only).
	Value memmodel.Value
	// Reg names the destination (loads only); it is observable in final
	// conditions as "P<tid>:<reg>".
	Reg string
}

// String renders the statement in C-like pseudocode.
func (s Stmt) String() string {
	loc := memmodel.AddrName(s.Addr)
	switch {
	case s.Kind == OpLoad && s.Order == OrderSC:
		return fmt.Sprintf("%s = %s.load(seq_cst)", s.Reg, loc)
	case s.Kind == OpLoad:
		return fmt.Sprintf("%s = %s", s.Reg, loc)
	case s.Order == OrderSC:
		return fmt.Sprintf("%s.store(%d, seq_cst)", loc, int(s.Value))
	default:
		return fmt.Sprintf("%s = %d", loc, int(s.Value))
	}
}

// Load builds a non-atomic load.
func Load(addr memmodel.Addr, reg string) Stmt {
	return Stmt{Kind: OpLoad, Order: OrderNA, Addr: addr, Reg: reg}
}

// Store builds a non-atomic store.
func Store(addr memmodel.Addr, v memmodel.Value) Stmt {
	return Stmt{Kind: OpStore, Order: OrderNA, Addr: addr, Value: v}
}

// SCLoad builds a seq_cst atomic load.
func SCLoad(addr memmodel.Addr, reg string) Stmt {
	return Stmt{Kind: OpLoad, Order: OrderSC, Addr: addr, Reg: reg}
}

// SCStore builds a seq_cst atomic store.
func SCStore(addr memmodel.Addr, v memmodel.Value) Stmt {
	return Stmt{Kind: OpStore, Order: OrderSC, Addr: addr, Value: v}
}

// Thread is one C/C++11 thread.
type Thread []Stmt

// Program is a multi-threaded C/C++11 program over integer locations, with
// optional non-zero initial values. Locations accessed by any SC statement
// are atomic locations; the model requires that atomic and non-atomic
// statements never target the same location (the paper's examples satisfy
// this, and mixing them is not needed for the mapping arguments).
type Program struct {
	Name    string
	Threads []Thread
	Init    map[memmodel.Addr]memmodel.Value
}

// NewProgram returns an empty named program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Init: map[memmodel.Addr]memmodel.Value{}}
}

// AddThread appends a thread and returns its index.
func (p *Program) AddThread(stmts ...Stmt) int {
	p.Threads = append(p.Threads, Thread(stmts))
	return len(p.Threads) - 1
}

// SetInit records a non-zero initial value.
func (p *Program) SetInit(addr memmodel.Addr, v memmodel.Value) {
	if p.Init == nil {
		p.Init = map[memmodel.Addr]memmodel.Value{}
	}
	p.Init[addr] = v
}

// AtomicLocations returns the set of locations accessed by at least one SC
// statement.
func (p *Program) AtomicLocations() map[memmodel.Addr]bool {
	out := map[memmodel.Addr]bool{}
	for _, t := range p.Threads {
		for _, s := range t {
			if s.Order == OrderSC {
				out[s.Addr] = true
			}
		}
	}
	return out
}

// Addrs returns every accessed or initialized location in ascending order.
func (p *Program) Addrs() []memmodel.Addr {
	seen := map[memmodel.Addr]bool{}
	for _, t := range p.Threads {
		for _, s := range t {
			seen[s.Addr] = true
		}
	}
	for a := range p.Init {
		seen[a] = true
	}
	var out []memmodel.Addr
	for a := range seen {
		out = append(out, a)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// Validate checks structural well-formedness: at least one non-empty
// thread, unique registers per thread, and no location accessed both
// atomically and non-atomically.
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("cpp11: program %q has no threads", p.Name)
	}
	atomic := p.AtomicLocations()
	for ti, t := range p.Threads {
		if len(t) == 0 {
			return fmt.Errorf("cpp11: program %q thread %d is empty", p.Name, ti)
		}
		regs := map[string]bool{}
		for si, s := range t {
			if s.Kind == OpLoad {
				if s.Reg == "" {
					return fmt.Errorf("cpp11: program %q thread %d stmt %d: load without register", p.Name, ti, si)
				}
				if regs[s.Reg] {
					return fmt.Errorf("cpp11: program %q thread %d: register %q assigned twice", p.Name, ti, s.Reg)
				}
				regs[s.Reg] = true
			}
			if s.Order == OrderNA && atomic[s.Addr] {
				return fmt.Errorf("cpp11: program %q mixes atomic and non-atomic accesses to %s",
					p.Name, memmodel.AddrName(s.Addr))
			}
		}
	}
	return nil
}

// String renders the program with one block per thread.
func (p *Program) String() string {
	s := p.Name + ":\n"
	for ti, t := range p.Threads {
		s += fmt.Sprintf("  // thread %d\n", ti)
		for _, st := range t {
			s += "  " + st.String() + ";\n"
		}
	}
	return s
}
