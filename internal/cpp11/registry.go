package cpp11

import (
	"fmt"
	"path"
	"sync"
)

// Program groups: the race-free validation set used by Table 4 vs the
// additional illustrative idioms.
const (
	// GroupValidation tags the race-free programs that validate the Table 4
	// mappings.
	GroupValidation = "validation"
	// GroupIdiom tags the remaining example idioms (racy variants, IRIW).
	GroupIdiom = "idiom"
)

// progEntry is one registered program constructor.
type progEntry struct {
	name  string
	group string
	build func() *Program
}

// programs is the process-wide, name-keyed C/C++11 program registry,
// mirroring the litmus test registry: new validation programs are
// registered, not wired into suite constructors.
var programs = struct {
	mu     sync.RWMutex
	byName map[string]*progEntry
	order  []*progEntry
}{byName: map[string]*progEntry{}}

// RegisterProgram adds a named program constructor under a group. The
// constructor runs once per lookup so callers receive fresh programs.
// Duplicate names panic.
func RegisterProgram(group, name string, build func() *Program) {
	programs.mu.Lock()
	defer programs.mu.Unlock()
	if _, dup := programs.byName[name]; dup {
		panic(fmt.Sprintf("cpp11: duplicate program registration %q", name))
	}
	e := &progEntry{name: name, group: group, build: build}
	programs.byName[name] = e
	programs.order = append(programs.order, e)
}

// ProgramNames returns the registered program names in registration order.
func ProgramNames() []string {
	programs.mu.RLock()
	defer programs.mu.RUnlock()
	out := make([]string, len(programs.order))
	for i, e := range programs.order {
		out[i] = e.name
	}
	return out
}

// BuildProgram constructs a fresh instance of the named program, or nil
// when the name is not registered.
func BuildProgram(name string) *Program {
	programs.mu.RLock()
	e := programs.byName[name]
	programs.mu.RUnlock()
	if e == nil {
		return nil
	}
	return e.build()
}

// ProgramsByGroup constructs every program registered under the group, in
// registration order.
func ProgramsByGroup(group string) []*Program {
	programs.mu.RLock()
	defer programs.mu.RUnlock()
	var out []*Program
	for _, e := range programs.order {
		if e.group == group {
			out = append(out, e.build())
		}
	}
	return out
}

// MatchPrograms constructs every registered program whose name matches the
// glob pattern (path.Match syntax); an empty pattern matches everything.
func MatchPrograms(pattern string) ([]*Program, error) {
	programs.mu.RLock()
	defer programs.mu.RUnlock()
	var out []*Program
	for _, e := range programs.order {
		if pattern != "" {
			ok, err := path.Match(pattern, e.name)
			if err != nil {
				return nil, fmt.Errorf("cpp11: bad filter pattern %q: %w", pattern, err)
			}
			if !ok {
				continue
			}
		}
		out = append(out, e.build())
	}
	return out, nil
}
