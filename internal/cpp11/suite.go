package cpp11

import "repro/internal/memmodel"

// Locations used by the example programs.
const (
	locX memmodel.Addr = 0
	locY memmodel.Addr = 1
)

// SCStoreBuffering is the Dekker/store-buffering idiom written with SC
// atomics: each thread SC-stores one flag and SC-loads the other. The
// C/C++11 model forbids both loads returning 0; a correct compilation to
// TSO must preserve that.
func SCStoreBuffering() *Program {
	p := NewProgram("sc-store-buffering")
	p.AddThread(SCStore(locX, 1), SCLoad(locY, "r0"))
	p.AddThread(SCStore(locY, 1), SCLoad(locX, "r1"))
	return p
}

// SCMessagePassing is message passing with both the data and the flag as SC
// atomics: observing the flag set implies observing the data.
func SCMessagePassing() *Program {
	p := NewProgram("sc-message-passing")
	p.AddThread(SCStore(locX, 1), SCStore(locY, 1))
	p.AddThread(SCLoad(locY, "r0"), SCLoad(locX, "r1"))
	return p
}

// MessagePassingSCFlag is the publication idiom with non-atomic data and an
// SC atomic flag, written without the guarding branch (the model has no
// control flow). In executions where the reader misses the flag it reads
// the data concurrently with the writer, so the program is racy under
// C/C++11 -- it documents that the race detector finds exactly this, and
// that racy programs make every mapping vacuously sound.
func MessagePassingSCFlag() *Program {
	p := NewProgram("mp-sc-flag")
	p.AddThread(Store(locX, 1), SCStore(locY, 1))
	p.AddThread(SCLoad(locY, "r0"), Load(locX, "r1"))
	return p
}

// RacyMessagePassing is the same idiom with a plain (non-atomic) flag: it
// has a data race on the flag and on the data, so the program's behaviour
// is undefined and every mapping is vacuously sound for it.
func RacyMessagePassing() *Program {
	p := NewProgram("racy-message-passing")
	p.AddThread(Store(locX, 1), Store(locY, 1))
	p.AddThread(Load(locY, "r0"), Load(locX, "r1"))
	return p
}

// SCIRIW is the independent-reads-of-independent-writes idiom with SC
// atomics: the two reader threads must agree on the order of the two
// writes.
func SCIRIW() *Program {
	p := NewProgram("sc-iriw")
	p.AddThread(SCStore(locX, 1))
	p.AddThread(SCStore(locY, 1))
	p.AddThread(SCLoad(locX, "r0"), SCLoad(locY, "r1"))
	p.AddThread(SCLoad(locY, "r2"), SCLoad(locX, "r3"))
	return p
}

// init registers the built-in programs: the race-free validation set used
// by Table 4 first, then the illustrative idioms. New programs join the
// suite by calling RegisterProgram; nothing else needs wiring.
func init() {
	RegisterProgram(GroupValidation, "sc-store-buffering", SCStoreBuffering)
	RegisterProgram(GroupValidation, "sc-message-passing", SCMessagePassing)

	RegisterProgram(GroupIdiom, "mp-sc-flag", MessagePassingSCFlag)
	RegisterProgram(GroupIdiom, "racy-message-passing", RacyMessagePassing)
	RegisterProgram(GroupIdiom, "sc-iriw", SCIRIW)
}

// ValidationPrograms returns the race-free programs registered for
// validating the Table 4 mappings. SCStoreBuffering is the one that
// separates the mappings: the write-mapping with type-3 RMWs fails on it,
// exactly as the paper's appendix argues (Dekker's counterexample).
func ValidationPrograms() []*Program {
	return ProgramsByGroup(GroupValidation)
}
