package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/atomicio"
)

// ShardSchemaVersion versions the plan fingerprint derivation and the
// shard artifact envelope. Bumping it orphans older artifacts (their
// fingerprints can never match a current plan's) instead of misreading
// them.
const ShardSchemaVersion = 1

// shardArtifactKind tags the envelope so a shard artifact can never be
// misread as some other JSON file (or vice versa).
const shardArtifactKind = "rmwtso-shard"

// UnitResult is one finished plan unit inside a shard artifact: the
// unit's identity plus its simulation result.
type UnitResult struct {
	// Unit is the plan unit's stable ID; Trace, Type and Seed restate the
	// unit's human-readable identity for listings and error messages.
	Unit  UnitID        `json:"unit"`
	Trace string        `json:"trace"`
	Type  AtomicityType `json:"type"`
	Seed  int64         `json:"seed"`
	// CacheHit marks a unit served from the result cache (no simulator
	// executed in this shard for it).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Result holds the unit's simulation statistics.
	Result *SimResult `json:"result"`
}

// ShardResult is the outcome of running one shard of a plan: the unit
// results, plus the plan fingerprint and shard selector that produced
// them. Written to disk (WriteFile) it becomes the machine-readable
// artifact a fleet ships back for merging.
type ShardResult struct {
	// Plan is the fingerprint of the plan the shard ran against; merges
	// refuse artifacts of a different plan.
	Plan string `json:"plan"`
	// Index and Count echo the round-robin selector (0 and 0 for a full
	// or purely predicate-selected run); Filtered records that a unit-ID
	// predicate narrowed the selection.
	Index    int  `json:"index"`
	Count    int  `json:"count"`
	Filtered bool `json:"filtered,omitempty"`
	// Units holds the finished units in plan order.
	Units []UnitResult `json:"units"`
	// Coordination, when the shard ran under the dynamic coordinator,
	// records how its units were distributed (per-worker counts, retries,
	// dead letters). Nil for statically sharded runs; being execution
	// metadata, it is ignored by MergeShards and excluded from
	// byte-identity comparisons.
	Coordination *Coordination `json:"coordination,omitempty"`
}

// shardEnvelope is the versioned, checksummed on-disk frame of one shard
// artifact, mirroring the simcache entry envelope: any truncation,
// bit-flip or schema drift is detected on read and reported as an error
// (an artifact is an explicit input — unlike a cache entry, it must fail
// loudly, not silently degrade to a miss).
type shardEnvelope struct {
	SchemaVersion int             `json:"schema_version"`
	Kind          string          `json:"kind"`
	PayloadSum    string          `json:"payload_sum"`
	Payload       json.RawMessage `json:"payload"`
}

// Encode frames the shard result in its versioned, checksummed envelope.
func (s *ShardResult) Encode() ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("rmwtso: marshaling shard artifact: %w", err)
	}
	// The envelope stays compact: indentation would re-flow the embedded
	// raw payload and break the byte-exact checksum.
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(shardEnvelope{
		SchemaVersion: ShardSchemaVersion,
		Kind:          shardArtifactKind,
		PayloadSum:    hex.EncodeToString(sum[:]),
		Payload:       payload,
	})
	if err != nil {
		return nil, fmt.Errorf("rmwtso: marshaling shard envelope: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile writes the shard artifact to path atomically (through the
// shared write-temp-then-rename helper), so a concurrently launched merge
// only ever observes complete artifacts.
func (s *ShardResult) WriteFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, data)
}

// DecodeShard parses and verifies an encoded shard artifact.
func DecodeShard(data []byte) (*ShardResult, error) {
	var env shardEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("rmwtso: unparsable shard artifact: %w", err)
	}
	if env.Kind != shardArtifactKind {
		return nil, fmt.Errorf("rmwtso: artifact kind %q, want %q", env.Kind, shardArtifactKind)
	}
	if env.SchemaVersion != ShardSchemaVersion {
		return nil, fmt.Errorf("rmwtso: artifact schema version %d, this build understands %d",
			env.SchemaVersion, ShardSchemaVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.PayloadSum {
		return nil, fmt.Errorf("rmwtso: artifact payload checksum mismatch (truncated or corrupted)")
	}
	var s ShardResult
	if err := json.Unmarshal(env.Payload, &s); err != nil {
		return nil, fmt.Errorf("rmwtso: unparsable shard payload: %w", err)
	}
	return &s, nil
}

// ReadShardFile reads and verifies one shard artifact file.
func ReadShardFile(path string) (*ShardResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rmwtso: reading shard artifact: %w", err)
	}
	s, err := DecodeShard(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}

// MergeShards reassembles the complete sweep from shard results: every
// shard must carry the plan's fingerprint, every plan unit must appear
// exactly once across the shards, and no shard may carry a unit the plan
// does not know. The reconstructed runs are in plan order and deeply
// equal to an unsharded RunPlan's — so a report built from them encodes
// byte-identically.
func MergeShards(plan *Plan, shards ...*ShardResult) ([]*BenchmarkRun, error) {
	var units []UnitResult
	for i, s := range shards {
		if s.Plan != plan.Fingerprint() {
			return nil, fmt.Errorf("rmwtso: shard %d (%s) ran plan %.16s…, this plan is %.16s… (different options or specs?)",
				i, shardDesc(s), s.Plan, plan.Fingerprint())
		}
		units = append(units, s.Units...)
	}
	return plan.Runs(units)
}

// MergeShardFiles reads, verifies and merges shard artifact files.
func MergeShardFiles(plan *Plan, paths ...string) ([]*BenchmarkRun, error) {
	shards := make([]*ShardResult, len(paths))
	for i, path := range paths {
		s, err := ReadShardFile(path)
		if err != nil {
			return nil, err
		}
		shards[i] = s
	}
	return MergeShards(plan, shards...)
}

// shardDesc renders a shard's selector for error messages.
func shardDesc(s *ShardResult) string {
	d := Shard{Index: s.Index, Count: s.Count}.String()
	if s.Filtered {
		d += ", filtered"
	}
	return d
}
