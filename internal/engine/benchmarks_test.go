package engine_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// runSpecs runs one benchmark sweep through a fresh engine — the single
// runUnit path every mode funnels into.
func runSpecs(o experiments.Options, specs []experiments.BenchmarkSpec) ([]*experiments.BenchmarkRun, error) {
	return engine.New().RunBenchmarks(o, specs)
}

// cacheTestOptions are small enough for the differential suite to run in
// seconds while still exercising every RMW type.
func cacheTestOptions() experiments.Options {
	return experiments.Options{Cores: 4, Scale: 0.1, Seed: 20130601}
}

// cacheTestSpecs keeps the differential runs fast: two Table 3 benchmarks
// under all three types plus one replacement variant.
func cacheTestSpecs() []experiments.BenchmarkSpec {
	specs := experiments.Table3Specs()[:2]
	specs = append(specs, experiments.Cpp11Specs()[1])
	return specs
}

// TestWarmVsColdDifferential runs the same spec set cold (empty cache),
// memory-warm (same cache object), disk-warm (fresh cache over the same
// directory, as a fresh process would see it) and uncached, and asserts
// all four produce deeply equal runs and byte-identical Table 3 / Fig. 11
// renderings — the cache must be invisible in the output.
func TestWarmVsColdDifferential(t *testing.T) {
	dir := t.TempDir()
	o := cacheTestOptions()
	specs := cacheTestSpecs()

	uncached, err := runSpecs(o, specs)
	if err != nil {
		t.Fatalf("uncached run: %v", err)
	}

	cold, err := simcache.Open(simcache.WithDir(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	o.Cache = cold
	coldRuns, err := runSpecs(o, specs)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	units := uint64(0)
	for _, s := range specs {
		units += uint64(len(s.Types))
	}
	if st := cold.Stats(); st.Misses != units || st.Stores != units || st.Hits() != 0 {
		t.Fatalf("cold stats = %+v, want %d misses and stores, 0 hits", st, units)
	}

	memWarm, err := runSpecs(o, specs)
	if err != nil {
		t.Fatalf("memory-warm run: %v", err)
	}
	if st := cold.Stats(); st.MemoryHits != units {
		t.Fatalf("memory-warm stats = %+v, want %d memory hits", st, units)
	}

	fresh, err := simcache.Open(simcache.WithDir(dir))
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	o.Cache = fresh
	diskWarm, err := runSpecs(o, specs)
	if err != nil {
		t.Fatalf("disk-warm run: %v", err)
	}
	if st := fresh.Stats(); st.DiskHits != units || st.Misses != 0 {
		t.Fatalf("disk-warm stats = %+v, want %d disk hits and 0 misses", st, units)
	}

	for name, got := range map[string][]*experiments.BenchmarkRun{
		"cold": coldRuns, "memory-warm": memWarm, "disk-warm": diskWarm,
	} {
		if !reflect.DeepEqual(got, uncached) {
			t.Errorf("%s runs differ from the uncached baseline", name)
		}
	}

	// Byte-identical tables and figures: the acceptance bar for warm runs.
	wantT3 := experiments.RenderTable3(experiments.Table3FromRuns(uncached[:2]))
	wantA, wantB := experiments.Fig11FromRuns(uncached)
	for name, got := range map[string][]*experiments.BenchmarkRun{"memory-warm": memWarm, "disk-warm": diskWarm} {
		if experiments.RenderTable3(experiments.Table3FromRuns(got[:2])) != wantT3 {
			t.Errorf("%s Table 3 rendering differs", name)
		}
		gotA, gotB := experiments.Fig11FromRuns(got)
		if !reflect.DeepEqual(gotA, wantA) || !reflect.DeepEqual(gotB, wantB) {
			t.Errorf("%s Fig. 11 data differs", name)
		}
	}
}

// TestCacheDirOption exercises the CacheDir convenience path (no Cache
// object): a run must leave disk entries addressable by the documented
// key derivation.
func TestCacheDirOption(t *testing.T) {
	dir := t.TempDir()
	o := cacheTestOptions()
	o.CacheDir = dir
	specs := experiments.Table3Specs()[:1]
	if _, err := runSpecs(o, specs); err != nil {
		t.Fatalf("runSpecs: %v", err)
	}
	c, err := simcache.Open(simcache.WithDir(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cfg := o.BaseConfig().WithRMWType(core.Type2)
	gen := workload.Generator{Cores: cfg.Cores, Seed: o.Seed}
	src, err := gen.Source(o.ScaledProfile(specs[0].Profile))
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	key := simcache.SimKey(cfg, src, o.Seed, o.Scale)
	res, ok := c.GetSim(key)
	if !ok {
		t.Fatalf("no disk entry for the documented key derivation")
	}
	if res.Workload != specs[0].Profile.Name || res.RMWType != core.Type2 {
		t.Fatalf("cached entry identifies as %s/%s", res.Workload, res.RMWType)
	}
}

// TestRunBenchmarksValidates covers the garbage inputs the engine must
// reject before they reach the generator or a cache key (Validate itself
// is pinned in the experiments package's own tests).
func TestRunBenchmarksValidates(t *testing.T) {
	cases := map[string]experiments.Options{
		"negative cores":        {Cores: -1, Scale: 1},
		"negative scale":        {Cores: 4, Scale: -0.5},
		"negative enum workers": {Cores: 4, Scale: 1, EnumWorkers: -3},
		"zero-core config":      {Config: &sim.Config{}},
	}
	for name, o := range cases {
		if _, err := runSpecs(o, experiments.Table3Specs()[:1]); err == nil {
			t.Errorf("%s: RunBenchmarks accepted %+v", name, o)
		}
	}
}

// TestGeneratorCoresFollowConfig pins the fix for the generator/simulator
// core-count split: a core count supplied only through Options.Config
// must drive the workload generator too, so the trace and the machine
// agree.
func TestGeneratorCoresFollowConfig(t *testing.T) {
	cfg := sim.DefaultConfig().WithCores(4)
	o := experiments.Options{Scale: 0.1, Seed: 1, Config: &cfg} // note: o.Cores == 0
	runs, err := runSpecs(o, experiments.Table3Specs()[:1])
	if err != nil {
		t.Fatalf("runSpecs: %v", err)
	}
	res := runs[0].Result(core.Type1)
	if len(res.PerCore) != 4 {
		t.Fatalf("simulated %d cores, want 4", len(res.PerCore))
	}
	active := 0
	for _, c := range res.PerCore {
		if c.Reads+c.Writes+c.RMWs > 0 {
			active++
		}
	}
	if active != 4 {
		t.Fatalf("%d of 4 cores executed work; generator and simulator disagree on the core count", active)
	}
}

// testRuns simulates a reduced benchmark set once and reuses it across the
// Table 3 / Fig. 11 tests (full sweeps are exercised by the benchmarks and
// the experiments tool).
func testRuns(t *testing.T) []*experiments.BenchmarkRun {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short mode")
	}
	o := experiments.QuickOptions()
	o.Cores = 4
	o.Scale = 0.1
	runs, err := runSpecs(o, experiments.Table3Specs())
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestTable3FromRuns(t *testing.T) {
	runs := testRuns(t)
	rows := experiments.Table3FromRuns(runs)
	if len(rows) != 7 {
		t.Fatalf("Table 3 has %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.RMWsPer1000 <= 0 {
			t.Errorf("%s: zero RMW density", r.Name)
		}
		if r.UniquePct <= 0 || r.UniquePct > 100 {
			t.Errorf("%s: unique%% = %.2f out of range", r.Name, r.UniquePct)
		}
		if r.DrainPct < 0 || r.DrainPct > 100 {
			t.Errorf("%s: drain%% out of range", r.Name)
		}
		// The density must be within a factor of two of the paper's value.
		ratio := r.RMWsPer1000 / r.PaperRMWsPer1000
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: measured density %.2f vs paper %.2f", r.Name, r.RMWsPer1000, r.PaperRMWsPer1000)
		}
	}
	out := experiments.RenderTable3(rows)
	if !strings.Contains(out, "radiosity") || !strings.Contains(out, "wsq-mst") {
		t.Errorf("Table 3 rendering incomplete:\n%s", out)
	}
}

func TestFig11FromRunsShapes(t *testing.T) {
	runs := testRuns(t)
	a, b := experiments.Fig11FromRuns(runs)
	if len(a) != len(runs) || len(b) != len(runs) {
		t.Fatal("entry counts wrong")
	}
	for _, e := range a {
		t1 := e.Total(core.Type1)
		t2 := e.Total(core.Type2)
		t3 := e.Total(core.Type3)
		if t1 <= 0 {
			t.Errorf("%s: type-1 RMW cost is zero", e.Benchmark)
		}
		// The paper's central shape: weak RMWs are cheaper, and the type-1
		// cost is dominated by (or at least includes) the write-buffer
		// drain while type-2/3 mostly avoid it.
		if t2 > t1 {
			t.Errorf("%s: type-2 cost %.1f exceeds type-1 cost %.1f", e.Benchmark, t2, t1)
		}
		if t3 > t1 {
			t.Errorf("%s: type-3 cost %.1f exceeds type-1 cost %.1f", e.Benchmark, t3, t1)
		}
		if e.WriteBuffer[core.Type1] <= 0 {
			t.Errorf("%s: type-1 write-buffer component is zero", e.Benchmark)
		}
		if e.WriteBuffer[core.Type2] > e.WriteBuffer[core.Type1] {
			t.Errorf("%s: type-2 write-buffer component exceeds type-1", e.Benchmark)
		}
	}
	for _, e := range b {
		if e.Overhead[core.Type1] < e.Overhead[core.Type2] {
			t.Errorf("%s: type-2 overhead %.2f%% exceeds type-1 %.2f%%",
				e.Benchmark, e.Overhead[core.Type2], e.Overhead[core.Type1])
		}
		// Low-RMW-density benchmarks sit at ~0% improvement (the paper calls
		// them "negligible"); allow sub-half-percent noise but no real
		// regression.
		if e.Speedup(core.Type2) < -0.5 {
			t.Errorf("%s: type-2 slows execution down by %.2f%%", e.Benchmark, -e.Speedup(core.Type2))
		}
	}
	outA := experiments.RenderFig11a(a)
	outB := experiments.RenderFig11b(b)
	if !strings.Contains(outA, "Fig. 11(a)") || !strings.Contains(outB, "Fig. 11(b)") {
		t.Error("figure renderings missing titles")
	}
	sum := experiments.Summarize(a, b)
	if sum.Type2CostReductionMax <= 0 {
		t.Error("summary shows no type-2 cost reduction")
	}
	if sum.AvgType1DrainShare <= 0 || sum.AvgType1DrainShare > 100 {
		t.Errorf("drain share %.1f out of range", sum.AvgType1DrainShare)
	}
	if !strings.Contains(sum.Render(), "paper") {
		t.Error("summary rendering should cite the paper's numbers")
	}
}

func TestRunCpp11Benchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short mode")
	}
	// The C/C++11 variants need a somewhat larger run than the other tests:
	// at very small scales the wsq-mst deque anchors never warm up and
	// cold-miss noise swamps the type-1 vs type-2 difference.
	o := experiments.QuickOptions()
	o.Cores = 8
	o.Scale = 0.25
	runs, err := runSpecs(o, experiments.Cpp11Specs())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d runs, want 2 (wr, rr)", len(runs))
	}
	wr, rr := runs[0], runs[1]
	if wr.Name != "wsq-mst_wr" || rr.Name != "wsq-mst_rr" {
		t.Fatalf("run names = %q, %q", wr.Name, rr.Name)
	}
	if _, ok := wr.ByType[core.Type3]; ok {
		t.Error("write replacement must not be run with type-3 RMWs (unsound per §2.5)")
	}
	if _, ok := rr.ByType[core.Type3]; !ok {
		t.Error("read replacement should include type-3")
	}
	// Weak RMWs should not lose to type-1 on either variant (allow 5%
	// noise at this reduced scale).
	for _, run := range runs {
		_, _, c1 := run.Result(core.Type1).AvgRMWCost()
		_, _, c2 := run.Result(core.Type2).AvgRMWCost()
		if c2 > c1*1.05 {
			t.Errorf("%s: type-2 RMW cost %.1f exceeds type-1 %.1f", run.Name, c2, c1)
		}
	}
	// Read replacement leaves more pending writes in front of each RMW than
	// write replacement, so its type-1 cost is at least as high (§4.2).
	_, _, wr1 := wr.Result(core.Type1).AvgRMWCost()
	_, _, rr1 := rr.Result(core.Type1).AvgRMWCost()
	if rr1 < wr1*0.9 {
		t.Errorf("read-replacement type-1 RMW cost %.1f should not be far below write-replacement %.1f", rr1, wr1)
	}
}

// TestSummarizePopulatedUnchanged guards the empty-summary fix against
// regressing the populated path: real runs must still produce a nonzero
// range with min <= max.
func TestSummarizePopulatedUnchanged(t *testing.T) {
	a, b := experiments.Fig11FromRuns(testRuns(t))
	s := experiments.Summarize(a, b)
	if s.Type2CostReductionMin <= 0 || s.Type2CostReductionMin > s.Type2CostReductionMax {
		t.Fatalf("type-2 range %.1f..%.1f malformed", s.Type2CostReductionMin, s.Type2CostReductionMax)
	}
}

// TestTable3FromRunsSkipsNilResults guards the defensive path: a run
// missing its type-2 result contributes no row instead of a nil
// dereference.
func TestTable3FromRunsSkipsNilResults(t *testing.T) {
	runs := testRuns(t)
	runs[0].ByType[core.Type2] = nil
	rows := experiments.Table3FromRuns(runs)
	if len(rows) != len(runs)-1 {
		t.Fatalf("rows %d, want %d", len(rows), len(runs)-1)
	}
}
