package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/coordinator"
	"repro/internal/simcache"
)

// ErrInjectedCrash is the error a FaultInjector returns to simulate a
// worker death: the worker abandons its current lease without acking or
// nacking and stops, so the unit is recovered through lease expiry
// exactly like a real crash. A worker loop (in-process or RunPlanWorker)
// that crashed this way reports ErrInjectedCrash from its Run.
var ErrInjectedCrash = coordinator.ErrAbandon

// CoordEvent is one coordination state transition of a dynamic sweep,
// streamed through the engine's observer alongside the sweep's SimRun
// events so progress displays can show leases, requeues and dead letters
// as they happen.
type CoordEvent struct {
	// Kind is the transition: "lease", "ack", "nack", "expire",
	// "requeue", "dead-letter" or "drained".
	Kind string
	// Unit is the plan unit concerned (empty for "drained").
	Unit UnitID
	// Worker is the worker involved, when one is.
	Worker string
	// Attempt is the 1-based attempt the transition concerns.
	Attempt int
	// Reason carries the failure reason for nack/expire/requeue/dead-letter.
	Reason string
}

// FaultInjector decides, before each unit execution of a coordinated
// sweep, whether to inject a fault: return nil to execute normally, a
// plain error to fail the attempt (nacked, retried, eventually
// dead-lettered), or ErrInjectedCrash to kill the worker mid-lease.
// Fault injection exists for tests, demos and CI crash drills.
type FaultInjector func(worker string, unit Unit, attempt int) error

// CoordinationConfig tunes a coordinated sweep (WithCoordinator). The
// zero value picks the noted defaults.
type CoordinationConfig struct {
	// Workers is how many in-process pull workers a plan job spawns.
	// Default: the engine's parallelism. Ignored by the HTTP mode, where
	// the fleet size is however many worker processes connect.
	Workers int
	// LeaseTTL is how long a unit lease lives without a heartbeat before
	// the worker is presumed dead and the unit requeued. Default 15s.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one unit is handed out before it
	// is dead-lettered. Default 3.
	MaxAttempts int
	// RetryBackoff and MaxBackoff shape the jittered exponential delay
	// between a unit's attempts. Defaults 250ms and 5s.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// Heartbeat is the workers' lease-extension interval. Default
	// LeaseTTL/3.
	Heartbeat time.Duration
	// Seed drives the backoff jitter deterministically. Default 1.
	Seed int64
	// FaultInjector, when non-nil, is consulted before every unit
	// execution. Nil injects nothing.
	FaultInjector FaultInjector
}

// heartbeat resolves the effective heartbeat interval.
func (c CoordinationConfig) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	ttl := c.LeaseTTL
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	return ttl / 3
}

// queueConfig maps the sweep configuration onto the coordinator's.
func (c CoordinationConfig) queueConfig(onEvent func(coordinator.Event)) coordinator.Config {
	return coordinator.Config{
		LeaseTTL:     c.LeaseTTL,
		MaxAttempts:  c.MaxAttempts,
		RetryBackoff: c.RetryBackoff,
		MaxBackoff:   c.MaxBackoff,
		Seed:         c.Seed,
		OnEvent:      onEvent,
	}
}

// WithCoordinator switches the engine's plan jobs to dynamic
// coordination: instead of the static per-worker split, the shard's units
// go into a pull queue and workers lease them one at a time under
// heartbeat-kept leases — a crashed worker's unit is requeued on lease
// expiry, a repeatedly failing unit is retried with backoff and then
// dead-lettered (the job returns a *DeadLetterError carrying the partial
// results), and the completed sweep's results are byte-identical to a
// static run's. The same configuration drives the HTTP mode
// (NewCoordServer, RunPlanWorker) for fleets that span machines.
func WithCoordinator(cfg CoordinationConfig) Option {
	return func(o *options) { o.coord = &cfg }
}

// coordConfig returns the engine's coordination configuration, or the
// all-defaults configuration when WithCoordinator was not given (the
// HTTP entry points work without it).
func (e *Engine) coordConfig() CoordinationConfig {
	if e.opts.coord != nil {
		return *e.opts.coord
	}
	return CoordinationConfig{}
}

// coordObserver builds the queue's event callback: each transition feeds
// the job's metrics (live lease gauge) and the observer streams.
func (e *Engine) coordObserver(m *metrics) func(coordinator.Event) {
	return func(ev coordinator.Event) {
		m.coordEvent(ev)
		e.emitCoord(m, ev)
	}
}

// emitCoord forwards one queue transition to the engine's observer and
// the owning job's stream.
func (e *Engine) emitCoord(m *metrics, ev coordinator.Event) {
	e.emitTo(m, Event{Coord: &CoordEvent{
		Kind:    string(ev.Kind),
		Unit:    UnitID(ev.Task),
		Worker:  ev.Worker,
		Attempt: ev.Attempt,
		Reason:  ev.Reason,
	}})
}

// DeadLetterError reports a coordinated sweep that completed with
// dead-lettered units: every other unit finished (the queue drained),
// but the listed units failed all their attempts. Partial carries the
// completed units and the coordination summary — including the dead
// letters with their full failure history — so callers can still render
// a partial report (Plan.RunsPartial) with the DLQ section instead of
// discarding the sweep.
type DeadLetterError struct {
	// Partial is the shard result of the completed units, with its
	// Coordination section populated (DeadLetters non-empty).
	Partial *ShardResult
}

// Error lists the dead-lettered unit IDs, sorted and bounded.
func (e *DeadLetterError) Error() string {
	dls := e.Partial.Coordination.DeadLetters
	ids := make([]string, len(dls))
	for i, d := range dls {
		ids[i] = d.Unit
	}
	return fmt.Sprintf("rmwtso: %d of %d sweep units dead-lettered after exhausting their attempts: %s",
		len(dls), len(e.Partial.Units)+len(dls), boundedList(ids, listedUnitsMax))
}

// sourcePool builds group trace sources lazily, once per group, as
// coordinated workers lease into them — a pull worker cannot know up
// front which groups it will touch.
type sourcePool struct {
	plan     *Plan
	cache    *simcache.Cache
	selected map[UnitID]bool

	mu   sync.Mutex
	srcs map[int]TraceSource
	errs map[int]error
}

func newSourcePool(plan *Plan, cache *simcache.Cache, selected map[UnitID]bool) *sourcePool {
	return &sourcePool{
		plan: plan, cache: cache, selected: selected,
		srcs: map[int]TraceSource{}, errs: map[int]error{},
	}
}

// get returns the group's source, building it on first use. A build
// error is sticky: generation is deterministic, so retrying cannot heal
// it and the failure nacks every unit of the group into the DLQ.
func (sp *sourcePool) get(group int) (TraceSource, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if src, ok := sp.srcs[group]; ok {
		return src, nil
	}
	if err, ok := sp.errs[group]; ok {
		return nil, err
	}
	src, err := sp.plan.groupSource(sp.plan.groups[group], sp.cache, sp.selected)
	if err != nil {
		sp.errs[group] = err
		return nil, err
	}
	sp.srcs[group] = src
	return src, nil
}

// unitExecutor adapts runUnit into a coordinator Executor for one named
// worker: resolve the leased unit, consult the fault injector, simulate,
// and return the JSON-encoded UnitResult as the ack payload.
func (e *Engine) unitExecutor(plan *Plan, pool *sourcePool, cache *simcache.Cache, cfg CoordinationConfig, worker string, m *metrics) coordinator.Executor {
	base := plan.opts.BaseConfig()
	return func(_ context.Context, task string, attempt int) ([]byte, error) {
		u, ok := plan.Unit(UnitID(task))
		if !ok {
			return nil, fmt.Errorf("rmwtso: leased unit %s is not in the plan", task)
		}
		if cfg.FaultInjector != nil {
			if err := cfg.FaultInjector(worker, u, attempt); err != nil {
				return nil, err
			}
		}
		src, err := pool.get(u.group)
		if err != nil {
			return nil, err
		}
		ur, err := e.runUnit(base, u, src, cache, m)
		if err != nil {
			return nil, err
		}
		return json.Marshal(ur)
	}
}

// assembleCoordinated turns a drained queue into the sweep's shard
// result: ack payloads decode back to UnitResults in plan order, the
// queue's final snapshot is absorbed into the job's metrics and the
// coordination summary rebuilt from that snapshot (Metrics.Coordination),
// and a non-empty dead-letter set is reported as a *DeadLetterError
// carrying the partial result.
func (e *Engine) assembleCoordinated(plan *Plan, shard Shard, selected []Unit, q *coordinator.Queue, mode string, m *metrics) (*ShardResult, error) {
	snap := q.Snapshot()
	m.absorbSnapshot(plan, snap)
	payloads := q.Payloads()
	var results []UnitResult
	for _, u := range selected {
		data, ok := payloads[string(u.ID)]
		if !ok {
			continue // dead-lettered; listed in the coordination section
		}
		var ur UnitResult
		if err := json.Unmarshal(data, &ur); err != nil {
			return nil, fmt.Errorf("rmwtso: unit %s result payload: %w", u.ID, err)
		}
		results = append(results, ur)
	}
	res := &ShardResult{
		Plan:         plan.fp,
		Index:        shard.Index,
		Count:        shard.Count,
		Filtered:     shard.Only != nil,
		Units:        results,
		Coordination: m.snapshot().Coordination(mode),
	}
	if len(snap.DeadLetters) > 0 {
		return nil, &DeadLetterError{Partial: res}
	}
	return res, nil
}

// runPlanCoordinated is a plan job through the pull queue: the shard's
// units are leased one at a time to in-process workers, with crash
// recovery (lease expiry requeue), bounded retries and dead-lettering —
// and a completed sweep's results identical to the static path's, since
// both execute units through runUnit.
func (e *Engine) runPlanCoordinated(ctx context.Context, plan *Plan, shard Shard, m *metrics, cfg CoordinationConfig) (*ShardResult, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	cache, err := e.planCache(plan)
	if err != nil {
		return nil, err
	}

	selected := plan.Select(shard)
	m.planned(len(selected))
	selectedIDs := make(map[UnitID]bool, len(selected))
	ids := make([]string, len(selected))
	for i, u := range selected {
		selectedIDs[u.ID] = true
		ids[i] = string(u.ID)
	}
	q, err := coordinator.NewQueue(cfg.queueConfig(e.coordObserver(m)), ids)
	if err != nil {
		return nil, err
	}
	pool := newSourcePool(plan, cache, selectedIDs)

	workers := cfg.Workers
	if workers <= 0 {
		workers = e.opts.parallelism
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("worker-%d", i)
		w := &coordinator.Worker{
			Name:      name,
			Coord:     q,
			Exec:      e.unitExecutor(plan, pool, cache, cfg, name, m),
			Heartbeat: cfg.heartbeat(),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A worker stops for exactly three reasons: drained (nil),
			// context cancellation (surfaced through drainOrFail), or an
			// injected crash — which is the point of the injection, so the
			// error is not propagated; the queue recovers the lease.
			_ = w.Run(ctx)
		}()
	}
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()

	if err := drainOrFail(ctx, q, workersDone, workers); err != nil {
		return nil, err
	}
	return e.assembleCoordinated(plan, shard, selected, q, "in-process", m)
}

// drainOrFail waits for the queue to drain. If every worker exits first
// (all crashed), outstanding leases are still driven to expiry, but a
// unit requeued with nobody left to lease it can never run — that state
// fails fast instead of hanging the sweep.
func drainOrFail(ctx context.Context, q *coordinator.Queue, workersDone <-chan struct{}, workers int) error {
	waitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	waitErr := make(chan error, 1)
	go func() { waitErr <- q.Wait(waitCtx) }()

	select {
	case err := <-waitErr:
		return err
	case <-workersDone:
	}
	for {
		snap := q.Snapshot() // drives lease expiry
		if snap.Drained() {
			return nil
		}
		if snap.Leased == 0 {
			return fmt.Errorf("rmwtso: all %d coordinated workers crashed with %d units unfinished", workers, snap.Pending)
		}
		select {
		case err := <-waitErr:
			if err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// CoordServer coordinates one plan shard for HTTP workers on other
// machines: it owns the pull queue, serves the versioned JSON protocol
// (Handler), and assembles the shard result once the fleet drains the
// queue (Wait). Build it from the Engine whose observer should stream
// the sweep's coordination events.
type CoordServer struct {
	eng      *Engine
	plan     *Plan
	shard    Shard
	selected []Unit
	queue    *coordinator.Queue
	srv      *coordinator.Server
	m        *metrics
}

// NewCoordServer builds the coordination server for the plan units the
// shard selects, configured by the engine's WithCoordinator (defaults
// apply without it).
func (e *Engine) NewCoordServer(plan *Plan, shard Shard) (*CoordServer, error) {
	return e.NewCoordServerWith(plan, shard, e.coordConfig(), nil)
}

// NewCoordServerWith is NewCoordServer under an explicit coordination
// configuration and an optional per-sweep observer that receives this
// sweep's events only (the engine-wide observer still sees them too) —
// the form a multi-sweep host like rmwtso-serve needs, where each hosted
// fleet carries its own configuration and event stream.
func (e *Engine) NewCoordServerWith(plan *Plan, shard Shard, cfg CoordinationConfig, obs Observer) (*CoordServer, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	selected := plan.Select(shard)
	m := newJobMetrics(&e.metrics)
	m.obs = obs
	m.remoteAcks = true
	m.planned(len(selected))
	ids := make([]string, len(selected))
	for i, u := range selected {
		ids[i] = string(u.ID)
	}
	q, err := coordinator.NewQueue(cfg.queueConfig(e.coordObserver(m)), ids)
	if err != nil {
		return nil, err
	}
	return &CoordServer{
		eng:      e,
		plan:     plan,
		shard:    shard,
		selected: selected,
		queue:    q,
		srv:      coordinator.NewServer(q, plan.Fingerprint()),
		m:        m,
	}, nil
}

// Handler returns the HTTP handler speaking the coordinator protocol.
func (s *CoordServer) Handler() http.Handler { return s.srv }

// Snapshot reports the queue's progress for status displays.
func (s *CoordServer) Snapshot() coordinator.Snapshot { return s.queue.Snapshot() }

// Metrics snapshots the sweep's progress counters (including the live
// lease gauge) while the fleet works and after it drains.
func (s *CoordServer) Metrics() Metrics { return s.m.snapshot() }

// Wait blocks until every unit is done or dead-lettered, then assembles
// the shard result exactly like the in-process mode: a clean sweep
// returns the result (coordination section attached), dead letters
// return a *DeadLetterError with the partial result. Worker crashes are
// recovered through lease expiry; with no worker connected Wait simply
// keeps waiting (cancel ctx to give up).
func (s *CoordServer) Wait(ctx context.Context) (*ShardResult, error) {
	if ctx == nil {
		ctx = s.eng.opts.ctx
	}
	if err := s.queue.Wait(ctx); err != nil {
		return nil, err
	}
	sr, err := s.eng.assembleCoordinated(s.plan, s.shard, s.selected, s.queue, "http", s.m)
	if sr != nil {
		s.eng.store.AddShard(sr)
	}
	return sr, err
}

// RunPlanWorker runs one pull worker against the coordinator at addr
// ("http://host:port") until that sweep's queue drains: the worker
// rebuilds the identical plan locally (the fingerprint handshake refuses
// a mismatched one), leases units one at a time, simulates them through
// the same runUnit path as every other mode, and acks checksummed
// results. It returns nil when the queue drains, ErrInjectedCrash when
// the fault injector killed the worker, or the transport/handshake
// error.
func (e *Engine) RunPlanWorker(ctx context.Context, plan *Plan, addr, name string) error {
	if ctx == nil {
		ctx = e.opts.ctx
	}
	if name == "" {
		return fmt.Errorf("rmwtso: coordinated worker needs a name")
	}
	cfg := e.coordConfig()
	cache, err := e.planCache(plan)
	if err != nil {
		return err
	}
	client := coordinator.Dial(addr, plan.Fingerprint())
	if err := client.WaitReachable(ctx, 30*time.Second); err != nil {
		return err
	}
	// The worker does not know which units it will lease, so the shard
	// selection is unknown here; a nil selected set makes groupSource
	// treat every unit of a group as relevant, which only affects the
	// materialize-vs-stream choice, never results.
	pool := newSourcePool(plan, cache, nil)
	m := newJobMetrics(&e.metrics)
	w := &coordinator.Worker{
		Name:      name,
		Coord:     client,
		Exec:      e.unitExecutor(plan, pool, cache, cfg, name, m),
		Heartbeat: cfg.heartbeat(),
	}
	return w.Run(ctx)
}
