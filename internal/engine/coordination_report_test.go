package engine_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// withCoordination attaches a representative coordination section.
func withCoordination(r *experiments.Report) *experiments.Report {
	r.Coordination = &experiments.Coordination{
		Mode: "in-process",
		Workers: []experiments.CoordWorker{
			{Worker: "worker-0", Units: 14, Retries: 1, Expired: 0},
			{Worker: "worker-1", Units: 12, Retries: 0, Expired: 1},
		},
		Retries: 2,
		Expired: 1,
		DeadLetters: []experiments.DeadUnit{{
			Unit: "deadbeef00112233", Trace: "wsq-mst", Type: "type-2",
			Attempts: 3,
			Reasons:  []string{"simulated deadlock", "simulated deadlock", "simulated deadlock"},
		}},
	}
	return r
}

// TestCoordinationSectionRendered verifies every encoder renders the
// coordination section when present: workers, churn counters and the
// dead-lettered unit must all be visible.
func TestCoordinationSectionRendered(t *testing.T) {
	report := withCoordination(mustBuildTestReport(t))
	for _, format := range experiments.Formats() {
		enc, err := experiments.NewEncoder(format)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := enc.Encode(&b, report); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		out := b.String()
		for _, want := range []string{"worker-0", "worker-1", "deadbeef00112233", "wsq-mst"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s encoding misses %q", format, want)
			}
		}
	}
}

// TestCoordinationSectionOmitted verifies a static report (Coordination
// nil) encodes without any coordination artifacts, preserving backward
// byte-identity with pre-coordination reports.
func TestCoordinationSectionOmitted(t *testing.T) {
	report := mustBuildTestReport(t)
	for _, format := range experiments.Formats() {
		enc, err := experiments.NewEncoder(format)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := enc.Encode(&b, report); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if strings.Contains(strings.ToLower(b.String()), "coordination") {
			t.Errorf("%s encoding of a static report mentions coordination", format)
		}
	}
}

// TestCoordinationJSONRoundTrips verifies the section survives the
// JSON round trip (dashboards decode reports structurally).
func TestCoordinationJSONRoundTrips(t *testing.T) {
	report := withCoordination(mustBuildTestReport(t))
	var b bytes.Buffer
	if err := (experiments.JSONEncoder{}).Encode(&b, report); err != nil {
		t.Fatal(err)
	}
	back, err := experiments.DecodeReportJSON(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c := back.Coordination
	if c == nil || c.Mode != "in-process" || len(c.Workers) != 2 || len(c.DeadLetters) != 1 {
		t.Fatalf("round-tripped coordination %+v", c)
	}
	if c.DeadLetters[0].Unit != "deadbeef00112233" || len(c.DeadLetters[0].Reasons) != 3 {
		t.Errorf("round-tripped dead letter %+v", c.DeadLetters[0])
	}
}

// mustBuildTestReport adapts the report fixture shared with the encoder
// tests.
func mustBuildTestReport(t *testing.T) *experiments.Report {
	t.Helper()
	r, _ := buildTestReport(t)
	return r
}
