package engine_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/litmus"
)

// update regenerates the report golden files instead of diffing:
//
//	go test ./internal/engine -run TestEngineModesDifferential -update
var update = flag.Bool("update", false, "rewrite the report golden files instead of diffing")

// diffOptions pin the differential sweep's shape; the goldens embed its
// numbers, so changing it requires -update.
func diffOptions() experiments.Options {
	return experiments.Options{Cores: 4, Scale: 0.05, Seed: 20130601}
}

// fullGrid is the complete benchmark grid: the seven Table 3 benchmarks
// plus the wsq-mst C/C++11 replacement variants.
func fullGrid() []experiments.BenchmarkSpec {
	return append(experiments.Table3Specs(), experiments.Cpp11Specs()...)
}

// submitPlan pushes one plan job through engine.Submit — the service
// entry point, not the RunPlan convenience wrapper — and reassembles the
// runs.
func submitPlan(t *testing.T, eng *engine.Engine, plan *engine.Plan, shard engine.Shard) *engine.ShardResult {
	t.Helper()
	h, err := eng.Submit(nil, engine.Job{Plan: plan, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard == nil {
		t.Fatal("plan job returned no shard result")
	}
	return res.Shard
}

// TestEngineModesDifferential is the engine-vs-legacy differential: the
// full benchmark grid submitted through engine.Submit in static, sharded
// and coordinated modes must produce deeply equal runs, and the report
// built from them must encode byte-identically to the blessed goldens in
// every format. Run with -race in CI; bless intentional result changes
// with -update.
func TestEngineModesDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short mode")
	}
	o := diffOptions()
	plan, err := engine.BuildPlan(o, fullGrid())
	if err != nil {
		t.Fatal(err)
	}

	// Static: one unsharded plan job.
	staticRes := submitPlan(t, engine.New(), plan, engine.FullShard())
	staticRuns, err := plan.Runs(staticRes.Units)
	if err != nil {
		t.Fatal(err)
	}

	// Sharded: three round-robin shards on fresh engines, merged.
	var shards []*engine.ShardResult
	for i := 0; i < 3; i++ {
		shard, err := engine.ParseShard(fmt.Sprintf("%d/3", i))
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, submitPlan(t, engine.New(), plan, shard))
	}
	mergedRuns, err := engine.MergeShards(plan, shards...)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinated: the same grid through the pull queue.
	coordEng := engine.New(engine.WithCoordinator(engine.CoordinationConfig{Workers: 3}))
	coordRes := submitPlan(t, coordEng, plan, engine.FullShard())
	coordRuns, err := plan.Runs(coordRes.Units)
	if err != nil {
		t.Fatal(err)
	}
	if coordRes.Coordination == nil {
		t.Fatal("coordinated shard result carries no coordination summary")
	}

	for name, got := range map[string][]*experiments.BenchmarkRun{
		"sharded-merged": mergedRuns, "coordinated": coordRuns,
	} {
		if !reflect.DeepEqual(got, staticRuns) {
			t.Errorf("%s runs differ from the static submission", name)
		}
	}

	// Byte-identity against the blessed goldens, in every format.
	report, err := experiments.BuildReport(o, staticRuns)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range experiments.Formats() {
		enc, err := experiments.NewEncoder(format)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := enc.Encode(&b, report); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "report_"+format+".golden")
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", path)
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading golden (run with -update to create it): %v", err)
		}
		if !bytes.Equal(b.Bytes(), want) {
			t.Errorf("%s encoding drifted from %s (%d vs %d bytes); bless intentional changes with -update",
				format, path, b.Len(), len(want))
		}
	}
}

// TestEngineLitmusDifferential pushes the full litmus registry through
// engine.Submit and checks every verdict against a direct, engine-free
// Test.Run — the two paths must agree on every field (the engine
// additionally stamps the unit ID).
func TestEngineLitmusDifferential(t *testing.T) {
	tests := litmus.AllTests()
	eng := engine.New()
	h, err := eng.Submit(nil, engine.Job{Litmus: &engine.LitmusGrid{Tests: tests}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	types := eng.Types()
	if len(res.Verdicts) != len(tests)*len(types) {
		t.Fatalf("%d verdicts, want %d", len(res.Verdicts), len(tests)*len(types))
	}
	i := 0
	for _, tst := range tests {
		for _, typ := range types {
			got := res.Verdicts[i]
			i++
			if got.Unit == "" {
				t.Errorf("%s under %s: engine verdict has no unit ID", tst.Name, typ)
			}
			want, err := tst.Run(typ)
			if err != nil {
				t.Fatal(err)
			}
			got.Unit = "" // direct runs carry no unit ID
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s under %s: engine verdict differs from direct run\n got: %+v\nwant: %+v",
					tst.Name, typ, got, want)
			}
		}
	}

	// The convenience wrapper is the same dispatch path.
	direct, err := eng.CheckTests(tests...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, res.Verdicts) {
		t.Fatal("CheckTests differs from Submit of the same grid")
	}
}
