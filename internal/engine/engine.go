// Package engine owns the execution lifecycle of the reproduction's work
// units: submit a job (a simulation plan or a litmus verdict grid), fan
// its units across a worker pool — or a coordinated pull queue — through
// the single runUnit execution path, stream progress as typed Events,
// and expose the finished results plus a Metrics snapshot. The public
// facade (pkg/rmwtso) is a thin adapter over this package: its Runner
// wraps an Engine, its plan/shard/artifact types alias the ones defined
// here, and its error strings are minted here (hence the "rmwtso:"
// prefixes — they are part of the facade's pinned surface).
package engine

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/cpp11"
	"repro/internal/experiments"
	"repro/internal/litmus"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// Aliases for the internal types the engine orchestrates. The facade
// re-exports these same types under its own names, so results flow from
// the engine to the public API without conversion.
type (
	// AtomicityType selects one of the paper's RMW atomicity definitions.
	AtomicityType = core.AtomicityType
	// Test and TestResult are one litmus test and its per-type verdict.
	Test = litmus.Test
	// TestResult is the verdict of one (test, atomicity type) unit.
	TestResult = litmus.Result
	// Cpp11Program and MappingResult are one C/C++11 validation program
	// and the soundness verdict of one (program, mapping, type) unit.
	Cpp11Program = cpp11.Program
	// MappingResult is one mapping-validation verdict.
	MappingResult = cpp11.ValidationResult
	// SimConfig, Trace, TraceSource and SimResult are the simulator's
	// configuration, trace forms and run statistics.
	SimConfig = sim.Config
	// Trace is a materialized per-core trace.
	Trace = sim.Trace
	// TraceSource is the lazy, streaming trace form.
	TraceSource = sim.TraceSource
	// SimResult holds one run's statistics.
	SimResult = sim.Result
	// Replacement selects a wsq-mst C/C++11 replacement variant.
	Replacement = workload.Replacement
	// CacheKey identifies one cached result.
	CacheKey = simcache.Key
	// Options, BenchmarkSpec and BenchmarkRun are the experiment-harness
	// configuration and sweep data model.
	Options = experiments.Options
	// BenchmarkSpec names one benchmark × variant × types sweep column.
	BenchmarkSpec = experiments.BenchmarkSpec
	// BenchmarkRun holds one benchmark's per-type results.
	BenchmarkRun = experiments.BenchmarkRun
	// Coordination, CoordWorker and DeadUnit are the report model's
	// coordination-metadata section.
	Coordination = experiments.Coordination
	// CoordWorker is one worker's traffic summary.
	CoordWorker = experiments.CoordWorker
	// DeadUnit is one dead-lettered unit in the report model.
	DeadUnit = experiments.DeadUnit
)

// Event is one streamed result from the engine: exactly one field is
// non-nil. Events are delivered to the observer serially (never
// concurrently), in completion order, as soon as each work unit finishes.
type Event struct {
	// Litmus is set when the unit was one litmus verdict.
	Litmus *TestResult
	// Mapping is set when the unit was one C/C++11 mapping validation.
	Mapping *MappingResult
	// Sim is set when the unit was one simulator run.
	Sim *SimRun
	// Coord is set for coordination state transitions of a dynamically
	// coordinated sweep (lease, requeue, dead-letter, …), streamed
	// alongside the SimRun events of the same sweep.
	Coord *CoordEvent
}

// Observer receives streamed events. It is called from worker goroutines
// but never concurrently, so it needs no locking of its own.
type Observer func(Event)

// ChannelObserver adapts a channel into an Observer. The caller owns the
// channel and must drain it; sends block the pool when the channel is
// unbuffered.
func ChannelObserver(ch chan<- Event) Observer {
	return func(e Event) { ch <- e }
}

// SimRun is one simulator run of a sweep: one trace under one RMW type.
type SimRun struct {
	// Unit is the run's stable plan-unit identifier (derived from the
	// content-addressed cache key), so streamed progress events correlate
	// with Plan entries without reconstructing the (trace, type, seed)
	// tuple. It is empty for runs outside the unit model (SweepTraces and
	// uncacheable SweepSource runs, whose key material is unknown).
	Unit UnitID
	// Trace is the name of the simulated trace.
	Trace string
	// Type is the RMW atomicity type the run used.
	Type AtomicityType
	// Result holds the run's statistics.
	Result *SimResult
	// CacheHit marks a run served from the engine's result cache: no
	// simulator executed for it. Observers can count hits to verify a
	// warm sweep did zero simulation work.
	CacheHit bool
}

// options collects the Engine configuration set by functional options.
type options struct {
	ctx         context.Context
	parallelism int
	enumWorkers int
	observer    Observer
	types       []AtomicityType
	cache       *simcache.Cache
	coord       *CoordinationConfig
}

// Option configures an Engine.
type Option func(*options)

// WithContext makes the Engine honour ctx: cancellation stops the sweep
// before the next work unit and the in-flight results are discarded; the
// method returns ctx's error.
func WithContext(ctx context.Context) Option {
	return func(o *options) { o.ctx = ctx }
}

// WithParallelism sets the worker-pool size. Values below 1 mean 1; the
// default is runtime.GOMAXPROCS(0).
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithObserver streams every finished work unit to fn as it completes,
// in completion order. fn is never called concurrently.
func WithObserver(fn Observer) Option {
	return func(o *options) { o.observer = fn }
}

// WithEnumWorkers sets how many goroutines each single litmus verdict or
// mapping validation fans its candidate enumeration across. The default,
// 0, picks per program via the candidate-count heuristic.
func WithEnumWorkers(n int) Option {
	return func(o *options) { o.enumWorkers = n }
}

// WithCache makes the Engine consult (and fill) a content-addressed
// result cache: litmus verdicts and plan/sweep simulator runs. Hits skip
// the computation entirely and are flagged on the streamed event; results
// are identical either way. A nil cache disables caching (the default).
func WithCache(c *simcache.Cache) Option {
	return func(o *options) { o.cache = c }
}

// WithRMWTypes restricts the atomicity types the Engine checks or sweeps.
// The default is all three types.
func WithRMWTypes(types ...AtomicityType) Option {
	return func(o *options) { o.types = append([]AtomicityType(nil), types...) }
}

// Engine fans work units — litmus verdicts, mapping validations,
// simulator runs — across a goroutine pool, streaming each finished unit
// to the observer while returning aggregates in deterministic order. An
// Engine is safe for repeated and concurrent use; each submitted job
// runs its own pool.
type Engine struct {
	opts    options
	emitMu  sync.Mutex
	metrics metrics
	store   *ResultStore
}

// New builds an Engine from the options.
func New(opts ...Option) *Engine {
	o := options{
		ctx:         context.Background(),
		parallelism: runtime.GOMAXPROCS(0),
		types:       core.AllTypes(),
	}
	for _, f := range opts {
		f(&o)
	}
	if o.parallelism < 1 {
		o.parallelism = 1
	}
	if len(o.types) == 0 {
		o.types = core.AllTypes()
	}
	e := &Engine{opts: o}
	e.store = NewResultStore(o.cache)
	return e
}

// Types returns the atomicity types the Engine is configured with.
func (e *Engine) Types() []AtomicityType {
	return append([]AtomicityType(nil), e.opts.types...)
}

// Results returns the engine's result store: a lookup view over the
// configured cache plus every shard artifact the engine has produced or
// been fed (AddShard).
func (e *Engine) Results() *ResultStore { return e.store }

// emit delivers one event to the observer, serialized across workers.
func (e *Engine) emit(ev Event) {
	if e.opts.observer == nil {
		return
	}
	e.emitMu.Lock()
	defer e.emitMu.Unlock()
	e.opts.observer(ev)
}

// emitTo delivers one event to the engine-wide observer and, when m is a
// job collector with its own observer (Job.Observer), to that job's
// stream as well. Each stream is serialized independently: the engine
// observer under emitMu, the job observer under the collector's obsMu,
// so one job's slow consumer never blocks another job's events.
func (e *Engine) emitTo(m *metrics, ev Event) {
	e.emit(ev)
	if m == nil || m.obs == nil {
		return
	}
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	m.obs(ev)
}

// runUnits executes run(0..n-1) on the worker pool under the Engine's
// own context. It returns the context's error if cancelled, otherwise the
// first unit error. Units are claimed in order but finish in any order;
// each unit writes only its own result slot, so aggregates stay
// deterministic.
func (e *Engine) runUnits(n int, run func(int) error) error {
	return e.runUnitsCtx(e.opts.ctx, n, run)
}

// runUnitsCtx is runUnits under an explicit context (plan jobs accept a
// per-call context on top of the Engine's).
func (e *Engine) runUnitsCtx(ctx context.Context, n int, run func(int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	workers := e.opts.parallelism
	if workers > n {
		workers = n
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil || failed() {
					continue
				}
				if err := run(i); err != nil {
					setErr(err)
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// simulateSource runs one streaming source on the configuration.
func simulateSource(cfg SimConfig, src TraceSource) (*SimResult, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.RunSource(src)
}
