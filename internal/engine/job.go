package engine

import (
	"context"
	"fmt"
)

// Job is one unit of work submitted to the engine: exactly one of Plan
// or Litmus must be set. Shard restricts the job to the units it covers
// (the zero Shard covers everything), with the same round-robin /
// predicate semantics for both job kinds.
type Job struct {
	// Plan runs the simulation units the shard selects, statically or —
	// when the engine is configured with a coordinator — through the pull
	// queue.
	Plan *Plan
	// Litmus model-checks a verdict grid: every (test, configured type)
	// pair the shard selects.
	Litmus *LitmusGrid
	// Shard selects the subset of the job's units to execute.
	Shard Shard
	// Observer, when non-nil, receives exactly this job's events (the
	// engine-wide WithObserver stream still sees every job's). It is
	// called serially per job but concurrently across jobs, so a shared
	// Observer needs its own locking; per-job Observers need none.
	Observer Observer
	// Coordination, when non-nil, runs a plan job through its own
	// dynamic pull queue with this configuration, overriding the
	// engine-level WithCoordinator setting for this job only.
	Coordination *CoordinationConfig
}

// LitmusGrid is the litmus-verdict form of a Job: the (test, type) grid
// over the engine's configured atomicity types.
type LitmusGrid struct {
	// Tests are the litmus tests to check, in grid order.
	Tests []*Test
}

// JobResult is the outcome of one finished job: Shard for plan jobs,
// Verdicts for litmus jobs.
type JobResult struct {
	// Shard holds a plan job's unit results as a shard artifact.
	Shard *ShardResult
	// Verdicts holds a litmus job's selected verdicts in (test, type)
	// order.
	Verdicts []TestResult
}

// JobHandle tracks one submitted job. Wait blocks for the result; Done
// exposes completion for select loops; Metrics snapshots the job's
// progress counters at any time, including while the job runs.
type JobHandle struct {
	done chan struct{}
	res  *JobResult
	err  error
	m    *metrics
}

// Done is closed when the job has finished (successfully or not).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes and returns its result. A
// coordinated plan that drained with dead letters returns a
// *DeadLetterError exactly like the facade's RunPlan.
func (h *JobHandle) Wait() (*JobResult, error) {
	return h.WaitCtx(context.Background())
}

// WaitCtx is Wait bounded by ctx: it returns ctx.Err() if the context
// ends first. The job itself keeps running — WaitCtx abandons the wait,
// not the work; cancel the Submit context to stop the job.
func (h *JobHandle) WaitCtx(ctx context.Context) (*JobResult, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Metrics snapshots the job's progress counters. Safe to call while the
// job is still running; after completion the snapshot is final.
func (h *JobHandle) Metrics() Metrics { return h.m.snapshot() }

// Submit starts the job on the engine and returns a handle for it. A nil
// ctx uses the engine's context (WithContext). The job executes
// asynchronously on the engine's worker pool; all execution errors —
// including shard validation — surface through the handle's Wait, and
// every finished unit streams to the engine's observer as it completes.
// A malformed job (neither or both of Plan and Litmus) is rejected
// synchronously.
func (e *Engine) Submit(ctx context.Context, job Job) (*JobHandle, error) {
	if (job.Plan == nil) == (job.Litmus == nil) {
		return nil, fmt.Errorf("rmwtso: a job needs exactly one of a plan or a litmus grid")
	}
	if ctx == nil {
		ctx = e.opts.ctx
	}
	h := &JobHandle{done: make(chan struct{}), m: newJobMetrics(&e.metrics)}
	h.m.obs = job.Observer
	coord := e.opts.coord
	if job.Coordination != nil {
		coord = job.Coordination
	}
	go func() {
		defer close(h.done)
		switch {
		case job.Plan != nil:
			sr, err := e.runPlanJob(ctx, job.Plan, job.Shard, h.m, coord)
			if sr != nil {
				e.store.AddShard(sr)
			}
			h.res, h.err = &JobResult{Shard: sr}, err
		case job.Litmus != nil:
			vs, err := e.checkTestsSharded(ctx, job.Shard, h.m, job.Litmus.Tests...)
			h.res, h.err = &JobResult{Verdicts: vs}, err
		}
	}()
	return h, nil
}

// runPlanJob dispatches a plan job to the static pool or the coordinated
// pull queue, whichever the job (Job.Coordination) or the engine
// (WithCoordinator) selected.
func (e *Engine) runPlanJob(ctx context.Context, plan *Plan, shard Shard, m *metrics, coord *CoordinationConfig) (*ShardResult, error) {
	if coord != nil {
		return e.runPlanCoordinated(ctx, plan, shard, m, *coord)
	}
	return e.runPlanStatic(ctx, plan, shard, m)
}

// RunPlan executes the units of the plan a shard selects and returns
// their results as a shard artifact; it is Submit + Wait for a plan job.
// Unit identities, order and results are exactly the plan's: running
// shards 0..n-1 of a plan on n processes and merging the artifacts
// (MergeShards) reconstructs the unsharded sweep bit for bit.
func (e *Engine) RunPlan(ctx context.Context, plan *Plan, shard Shard) (*ShardResult, error) {
	h, err := e.Submit(ctx, Job{Plan: plan, Shard: shard})
	if err != nil {
		return nil, err
	}
	res, err := h.Wait()
	if err != nil {
		return nil, err
	}
	return res.Shard, nil
}

// CheckTests model-checks every test under every configured RMW type;
// Submit + Wait for an unsharded litmus job.
func (e *Engine) CheckTests(tests ...*Test) ([]TestResult, error) {
	return e.CheckTestsSharded(FullShard(), tests...)
}

// CheckTestsSharded is CheckTests restricted to the verdict units the
// shard selects; Submit + Wait for a sharded litmus job.
func (e *Engine) CheckTestsSharded(shard Shard, tests ...*Test) ([]TestResult, error) {
	h, err := e.Submit(nil, Job{Litmus: &LitmusGrid{Tests: tests}, Shard: shard})
	if err != nil {
		return nil, err
	}
	res, err := h.Wait()
	if err != nil {
		return nil, err
	}
	return res.Verdicts, nil
}
