package engine_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// concurrencyOptions builds the quick sweep options of the concurrency
// tests, varied by seed so distinct jobs own disjoint unit sets.
func concurrencyOptions(seed int64) experiments.Options {
	return experiments.Options{Cores: 4, Scale: 0.05, Seed: seed}
}

// TestWaitCtxAbandonsWaitNotWork pins WaitCtx's contract mid-sweep: a
// context that ends abandons the wait immediately, the job keeps running,
// and cancelling the Submit context is what actually stops the sweep.
func TestWaitCtxAbandonsWaitNotWork(t *testing.T) {
	plan, err := engine.BuildPlanSeeds(concurrencyOptions(20130601), experiments.Table3Specs()[:3])
	if err != nil {
		t.Fatal(err)
	}

	// A single coordinated worker whose fault injector lets a few units
	// through and then blocks guarantees the job is provably mid-sweep —
	// some units done, the next one parked — with no timing assumptions.
	release := make(chan struct{})
	defer close(release)
	var executed atomic.Int32
	block := int32(3)
	if n := int32(plan.Len()); block > n-1 {
		block = n - 1
	}
	cfg := &engine.CoordinationConfig{
		Workers: 1,
		FaultInjector: func(_ string, _ engine.Unit, _ int) error {
			if executed.Add(1) > block {
				<-release
			}
			return nil
		},
	}

	eng := engine.New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := eng.Submit(ctx, engine.Job{Plan: plan, Coordination: cfg})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the sweep to park on the blocked unit.
	deadline := time.Now().Add(10 * time.Second)
	for executed.Load() <= block {
		if time.Now().After(deadline) {
			t.Fatal("sweep never reached the blocked unit")
		}
		time.Sleep(time.Millisecond)
	}

	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer waitCancel()
	if _, err := h.WaitCtx(waitCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx mid-sweep: got %v, want context.DeadlineExceeded", err)
	}
	select {
	case <-h.Done():
		t.Fatal("WaitCtx cancellation must not stop the job itself")
	default:
	}
	if done := h.Metrics().UnitsDone; done < int(block) {
		t.Fatalf("expected at least %d units done mid-sweep, got %d", block, done)
	}

	// Cancelling the Submit context is what stops the work.
	cancel()
	res, err := h.WaitCtx(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after Submit-context cancel: got (%v, %v), want context.Canceled", res, err)
	}
}

// TestConcurrentSubmitsIsolateJobs runs N plan jobs concurrently on one
// engine (run under -race in CI) and asserts the two isolation contracts
// the service layer builds on: each job's Observer stream carries exactly
// that job's units — never another job's — and the engine-wide Metrics
// totals equal the per-job sums.
func TestConcurrentSubmitsIsolateJobs(t *testing.T) {
	const njobs = 4
	specs := experiments.Table3Specs()[:3]
	eng := engine.New(engine.WithParallelism(4))

	type jobRun struct {
		plan   *engine.Plan
		own    map[engine.UnitID]bool
		events []engine.Event
		h      *engine.JobHandle
	}
	jobs := make([]*jobRun, njobs)
	for i := range jobs {
		// Distinct seeds give every job a disjoint unit set, so a leaked
		// cross-job event is detectable by unit ID alone.
		plan, err := engine.BuildPlanSeeds(concurrencyOptions(20130601+int64(i)), specs)
		if err != nil {
			t.Fatal(err)
		}
		jr := &jobRun{plan: plan, own: map[engine.UnitID]bool{}}
		for _, u := range plan.Units() {
			jr.own[u.ID] = true
		}
		jobs[i] = jr
	}
	for _, jr := range jobs {
		jr := jr
		h, err := eng.Submit(nil, engine.Job{
			Plan: jr.plan,
			// Per-job observers are serialized per job, so appending
			// without a lock is the contract under test.
			Observer: func(ev engine.Event) { jr.events = append(jr.events, ev) },
		})
		if err != nil {
			t.Fatal(err)
		}
		jr.h = h
	}

	var sum engine.Metrics
	for i, jr := range jobs {
		res, err := jr.h.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if got, want := len(res.Shard.Units), jr.plan.Len(); got != want {
			t.Fatalf("job %d: %d unit results, want %d", i, got, want)
		}
		if got, want := len(jr.events), jr.plan.Len(); got != want {
			t.Fatalf("job %d: observer saw %d events, want %d", i, got, want)
		}
		for _, ev := range jr.events {
			if ev.Sim == nil {
				t.Fatalf("job %d: plan job streamed a non-Sim event %+v", i, ev)
			}
			if !jr.own[ev.Sim.Unit] {
				t.Fatalf("job %d: observer saw foreign unit %s", i, ev.Sim.Unit)
			}
		}
		m := jr.h.Metrics()
		sum.UnitsPlanned += m.UnitsPlanned
		sum.UnitsDone += m.UnitsDone
		sum.CacheHits += m.CacheHits
		sum.CacheMisses += m.CacheMisses
	}

	agg := eng.Metrics()
	if agg.UnitsPlanned != sum.UnitsPlanned || agg.UnitsDone != sum.UnitsDone ||
		agg.CacheHits != sum.CacheHits || agg.CacheMisses != sum.CacheMisses {
		t.Fatalf("engine metrics %+v do not equal per-job sums %+v", agg, sum)
	}
}
