package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/core"
	"repro/internal/cpp11"
	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/simcache"
)

// LitmusVerdictKey derives the key of one litmus verdict from the
// canonical textual rendering of the test (program, condition and
// expectations) and the atomicity type checked.
func LitmusVerdictKey(t *Test, typ AtomicityType) CacheKey {
	sum := sha256.Sum256([]byte(litmus.Format(t)))
	return CacheKey{
		Kind:         simcache.KindLitmusVerdict,
		ConfigDigest: hex.EncodeToString(sum[:]),
		Trace:        t.Name,
		RMWType:      typ,
	}
}

// checkTestsSharded executes the verdict units of a litmus job the shard
// selects, so a fleet can split one suite across processes exactly like a
// simulation plan: the (test, type) grid is enumerated in deterministic
// order, each unit's stable ID is the UnitID of its content-addressed
// verdict key, and the round-robin selector (or unit-ID predicate) keeps
// a deterministic subset. The returned slice holds only the selected
// units, still in (test, type) order, and every result carries its unit
// ID for correlation.
func (e *Engine) checkTestsSharded(ctx context.Context, shard Shard, m *metrics, tests ...*Test) ([]TestResult, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	types := e.opts.types
	type unit struct {
		ti, yi int
		id     UnitID
	}
	units := make([]unit, 0, len(tests)*len(types))
	pos := 0
	for ti := range tests {
		for yi := range types {
			id := UnitID(LitmusVerdictKey(tests[ti], types[yi]).UnitID())
			if shard.Covers(pos, id) {
				units = append(units, unit{ti, yi, id})
			}
			pos++
		}
	}
	m.planned(len(units))
	results := make([]TestResult, len(units))
	err := e.runUnitsCtx(ctx, len(units), func(i int) error {
		u := units[i]
		if e.opts.cache != nil {
			if res, ok := cachedVerdict(e.opts.cache, tests[u.ti], types[u.yi]); ok {
				res.Unit = string(u.id)
				results[i] = res
				m.verdictDone(true)
				e.emitTo(m, Event{Litmus: &results[i]})
				return nil
			}
		}
		res, err := tests[u.ti].RunParallel(ctx, types[u.yi], e.opts.enumWorkers)
		if err != nil {
			return err
		}
		if e.opts.cache != nil {
			storeVerdict(e.opts.cache, res)
		}
		res.Unit = string(u.id)
		results[i] = res
		m.verdictDone(false)
		e.emitTo(m, Event{Litmus: &results[i]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ValidateMappings validates every Table 4 mapping under every configured
// RMW type for each program. Each (program, mapping, type) combination is
// one work unit; the returned slice is ordered (program, mapping, type).
func (e *Engine) ValidateMappings(programs ...*Cpp11Program) ([]MappingResult, error) {
	mappings := cpp11.AllMappings()
	types := e.opts.types
	type unit struct{ pi, mi, yi int }
	units := make([]unit, 0, len(programs)*len(mappings)*len(types))
	for pi := range programs {
		for mi := range mappings {
			for yi := range types {
				units = append(units, unit{pi, mi, yi})
			}
		}
	}
	results := make([]MappingResult, len(units))
	err := e.runUnits(len(units), func(i int) error {
		u := units[i]
		res, err := cpp11.ValidateMappingParallel(e.opts.ctx, programs[u.pi], mappings[u.mi], types[u.yi], e.opts.enumWorkers)
		if err != nil {
			return err
		}
		results[i] = res
		e.emit(Event{Mapping: &results[i]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// cacheableTest reports whether the test's verdict may be cached: its
// key digests the canonical litmus.Format rendering, which represents an
// RMW's Modify function faithfully only for the built-in xadd
// (Modify(v) = v+Value) and xchg (Modify(v) = Value) semantics. A test
// whose RMW carries any other Modify function would alias the key of its
// xchg-rendered twin, so such tests bypass the cache and always
// enumerate. The probe samples several read values per RMW and accepts
// only functions consistent with one of the two renderable semantics.
func cacheableTest(t *Test) bool {
	if t.Program == nil {
		return false
	}
	for _, th := range t.Program.Threads {
		for _, in := range th {
			if in.Kind != memmodel.InstrRMW {
				continue
			}
			if in.Modify == nil {
				return false
			}
			addLike, setLike := true, true
			for _, v := range []memmodel.Value{0, 1, 7, -3, 100} {
				got := in.Modify(v)
				if got != v+in.Value {
					addLike = false
				}
				if got != in.Value {
					setLike = false
				}
			}
			if !addLike && !setLike {
				return false
			}
		}
	}
	return true
}

// litmusVerdict is the serialized payload of one cached verdict. The
// expectation fields of a TestResult are not stored: they derive from the
// Test at hand and are recomputed on a hit, so editing a test's Expected
// map never resurrects a stale Matches flag.
type litmusVerdict struct {
	Holds           bool           `json:"holds"`
	ValidExecutions int            `json:"valid_executions"`
	Candidates      int            `json:"candidates"`
	Outcomes        []core.Outcome `json:"outcomes"`
}

// cachedVerdict reconstructs a TestResult from the cache, marking it as a
// cache hit.
func cachedVerdict(c *simcache.Cache, t *Test, typ AtomicityType) (TestResult, bool) {
	if !cacheableTest(t) {
		return TestResult{}, false
	}
	var v litmusVerdict
	if !c.Get(LitmusVerdictKey(t, typ), &v) {
		return TestResult{}, false
	}
	set := core.NewOutcomeSet()
	for _, o := range v.Outcomes {
		set.Add(o)
	}
	res := TestResult{
		Test:            t,
		Atomicity:       typ,
		Holds:           v.Holds,
		Matches:         true,
		ValidExecutions: v.ValidExecutions,
		Candidates:      v.Candidates,
		Outcomes:        set,
		CacheHit:        true,
	}
	if exp, ok := t.Expected[typ]; ok {
		e := exp
		res.Expected = &e
		res.Matches = v.Holds == exp
	}
	return res, true
}

// storeVerdict persists a fresh verdict best-effort; verdicts of tests
// whose RMW semantics the canonical rendering cannot represent are never
// stored (their keys could alias).
func storeVerdict(c *simcache.Cache, res TestResult) {
	if !cacheableTest(res.Test) {
		return
	}
	_ = c.Put(LitmusVerdictKey(res.Test, res.Atomicity), litmusVerdict{
		Holds:           res.Holds,
		ValidExecutions: res.ValidExecutions,
		Candidates:      res.Candidates,
		Outcomes:        res.Outcomes.Outcomes(),
	})
}
