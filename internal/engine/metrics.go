package engine

import (
	"sync"
	"time"

	"repro/internal/coordinator"
)

// Metrics is a point-in-time snapshot of an engine's (or one job's)
// execution counters: unit throughput, cache effectiveness, and — for
// coordinated sweeps — the queue's lease/retry/DLQ state. The
// coordination section of the report model is rebuilt from this snapshot
// (Metrics.Coordination), so the report can never disagree with what the
// engine measured.
type Metrics struct {
	// UnitsPlanned counts the units selected for execution; UnitsDone the
	// units finished so far (including cache hits). For litmus jobs the
	// units are verdicts.
	UnitsPlanned int
	UnitsDone    int
	// CacheHits and CacheMisses count simulator units served from /
	// missed by the result cache; VerdictCacheHits the litmus verdicts
	// served from it.
	CacheHits        int
	CacheMisses      int
	Verdicts         int
	VerdictCacheHits int
	// Elapsed is the time since the job (or engine) started counting;
	// UnitsPerSec is UnitsDone over that window.
	Elapsed     time.Duration
	UnitsPerSec float64
	// InflightLeases gauges the coordinated queue's currently leased
	// units; Retries and Expired count requeues and lease expiries;
	// DLQDepth the dead-lettered units.
	InflightLeases int
	Retries        int
	Expired        int
	DLQDepth       int
	// Workers aggregates per-worker traffic of a coordinated sweep,
	// sorted by worker name (empty for static runs, whose pool workers
	// are anonymous).
	Workers []WorkerMetrics
	// DeadLetters lists the dead-lettered units with their failure
	// history, sorted by unit ID.
	DeadLetters []DeadLetterMetrics
}

// WorkerMetrics is one coordinated worker's traffic.
type WorkerMetrics struct {
	Worker  string
	Units   int
	Retries int
	Expired int
}

// DeadLetterMetrics is one dead-lettered unit with its failure history.
type DeadLetterMetrics struct {
	Unit     UnitID
	Trace    string
	Type     string
	Attempts int
	Reasons  []string
}

// Coordination renders the snapshot's queue counters as the report
// model's coordination section. The section is execution metadata — it
// is exactly what coordinated sweeps attach to their ShardResult.
func (m Metrics) Coordination(mode string) *Coordination {
	c := &Coordination{Mode: mode, Retries: m.Retries, Expired: m.Expired}
	for _, w := range m.Workers {
		c.Workers = append(c.Workers, CoordWorker{
			Worker: w.Worker, Units: w.Units, Retries: w.Retries, Expired: w.Expired,
		})
	}
	for _, d := range m.DeadLetters {
		c.DeadLetters = append(c.DeadLetters, DeadUnit{
			Unit: string(d.Unit), Trace: d.Trace, Type: d.Type,
			Attempts: d.Attempts, Reasons: append([]string(nil), d.Reasons...),
		})
	}
	return c
}

// metrics is the engine's internal collector. One instance lives on the
// Engine (the all-jobs aggregate) and one per job; job collectors chain
// updates to the engine's through parent.
type metrics struct {
	mu     sync.Mutex
	parent *metrics
	start  time.Time

	// obs, when non-nil, is the job's own event stream (Job.Observer):
	// it receives exactly this job's events, serialized under obsMu, so
	// concurrent jobs on one engine never interleave on it. The engine
	// aggregate's obs is always nil.
	obs   Observer
	obsMu sync.Mutex

	unitsPlanned     int
	unitsDone        int
	cacheHits        int
	cacheMisses      int
	verdicts         int
	verdictCacheHits int

	inflight int
	retries  int
	expired  int
	workers  []WorkerMetrics
	dead     []DeadLetterMetrics

	// remoteAcks, set on a hosted coordinator's collector (NewCoordServer),
	// counts queue acks as finished units: the units execute on remote
	// workers' engines, so runUnit never credits this collector. Cache
	// counters stay untouched — hits and misses happen at the workers.
	remoteAcks bool
}

// newJobMetrics builds a per-job collector chained to the engine's.
func newJobMetrics(parent *metrics) *metrics {
	return &metrics{parent: parent, start: time.Now()}
}

func (m *metrics) update(f func(*metrics)) {
	m.mu.Lock()
	f(m)
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.update(f)
	}
}

// planned records the number of units a job selected.
func (m *metrics) planned(n int) {
	m.update(func(m *metrics) { m.unitsPlanned += n })
}

// unitDone records one finished simulator unit.
func (m *metrics) unitDone(cacheHit bool) {
	m.update(func(m *metrics) {
		m.unitsDone++
		if cacheHit {
			m.cacheHits++
		} else {
			m.cacheMisses++
		}
	})
}

// verdictDone records one finished litmus verdict.
func (m *metrics) verdictDone(cacheHit bool) {
	m.update(func(m *metrics) {
		m.unitsDone++
		m.verdicts++
		if cacheHit {
			m.verdictCacheHits++
		}
	})
}

// coordEvent tracks the queue's live lease gauge from its event stream;
// the authoritative retry/expiry/worker totals come from absorbSnapshot
// when the queue drains.
func (m *metrics) coordEvent(e coordinator.Event) {
	switch string(e.Kind) {
	case "lease":
		m.update(func(m *metrics) { m.inflight++ })
	case "ack":
		done := m.remoteAcks
		m.update(func(m *metrics) {
			if m.inflight > 0 {
				m.inflight--
			}
			if done {
				m.unitsDone++
			}
		})
	case "nack", "expire":
		m.update(func(m *metrics) {
			if m.inflight > 0 {
				m.inflight--
			}
		})
	}
}

// absorbSnapshot copies the drained queue's final counters into the
// collector, resolving dead-lettered unit IDs against the plan. It is
// the one source the coordination report section is rebuilt from.
func (m *metrics) absorbSnapshot(plan *Plan, snap coordinator.Snapshot) {
	var workers []WorkerMetrics
	for _, w := range snap.Workers {
		workers = append(workers, WorkerMetrics{
			Worker: w.Worker, Units: w.Acks, Retries: w.Nacks, Expired: w.Expired,
		})
	}
	var dead []DeadLetterMetrics
	for _, d := range snap.DeadLetters {
		dm := DeadLetterMetrics{
			Unit: UnitID(d.Task), Attempts: d.Attempts,
			Reasons: append([]string(nil), d.Reasons...),
		}
		if u, ok := plan.Unit(UnitID(d.Task)); ok {
			dm.Trace, dm.Type = u.Trace, u.Type.String()
		}
		dead = append(dead, dm)
	}
	m.update(func(m *metrics) {
		m.retries += snap.Retries
		m.expired += snap.Expired
		m.inflight = 0
		m.workers = append(m.workers, workers...)
		m.dead = append(m.dead, dead...)
	})
}

// snapshot renders the collector as a Metrics value.
func (m *metrics) snapshot() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		UnitsPlanned:     m.unitsPlanned,
		UnitsDone:        m.unitsDone,
		CacheHits:        m.cacheHits,
		CacheMisses:      m.cacheMisses,
		Verdicts:         m.verdicts,
		VerdictCacheHits: m.verdictCacheHits,
		InflightLeases:   m.inflight,
		Retries:          m.retries,
		Expired:          m.expired,
		DLQDepth:         len(m.dead),
		Workers:          append([]WorkerMetrics(nil), m.workers...),
		DeadLetters:      append([]DeadLetterMetrics(nil), m.dead...),
	}
	if !m.start.IsZero() {
		out.Elapsed = time.Since(m.start)
	}
	if secs := out.Elapsed.Seconds(); secs > 0 {
		out.UnitsPerSec = float64(out.UnitsDone) / secs
	}
	return out
}

// Metrics snapshots the engine-wide aggregate across every job it has
// run. Per-job snapshots come from the job's handle.
func (e *Engine) Metrics() Metrics { return e.metrics.snapshot() }
