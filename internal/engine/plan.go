package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// UnitID is the stable identifier of one sweep unit: a short prefix of
// the unit's content-addressed cache-key digest (simcache key material),
// so the same (config, benchmark, seed, scale, RMW type) has the same ID
// on every machine, at every shard count, in every process. Unit IDs are
// how shards address work and how merged artifacts reassemble a sweep.
type UnitID string

// Unit is one addressable work unit of a sweep plan: one benchmark
// workload simulated under one RMW atomicity type with one seed and one
// architectural configuration.
type Unit struct {
	// ID is the unit's stable identity.
	ID UnitID `json:"id"`
	// Trace is the workload trace name (including any replacement-variant
	// suffix), Benchmark the underlying profile name and Variant the
	// C/C++11 replacement variant.
	Trace     string      `json:"trace"`
	Benchmark string      `json:"benchmark"`
	Variant   Replacement `json:"variant"`
	// Type is the RMW atomicity type of the run.
	Type AtomicityType `json:"type"`
	// Seed and Scale are the workload generation parameters (Scale
	// normalized like the cache keys: non-positive means 1).
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Key is the full content-addressed cache key the ID derives from;
	// a cached run and a plan unit with equal keys are the same work.
	Key CacheKey `json:"key"`

	// group indexes the plan's source group (one workload source per
	// (spec, seed)); units of a group share one trace source at run time.
	group int
}

// planGroup is the set of plan units that share one workload source.
type planGroup struct {
	spec  BenchmarkSpec
	seed  int64
	units []int // indexes into Plan.units, in plan order
}

// Plan is a deterministic, ordered enumeration of every unit of a sweep:
// the benchmark × RMW type × seed grid under one architectural
// configuration, with stable content-addressed unit IDs. A plan is pure
// metadata — building one generates no trace operations and runs no
// simulation — so every process of a sharded fleet can rebuild the
// identical plan from the same Options and agree on unit identities,
// which the plan fingerprint certifies.
type Plan struct {
	opts   Options
	units  []Unit
	groups []planGroup
	byID   map[UnitID]int // unit ID -> index into units
	fp     string
}

// BuildPlan enumerates the sweep plan for the options and benchmark
// specs: units are ordered spec-major, then seed, then RMW type — the
// exact execution and result order of RunBenchmarks. Specs with no
// types are skipped. It fails on invalid options or configurations and on
// a unit-ID collision (which would make two distinct work units alias).
func BuildPlan(o Options, specs []BenchmarkSpec) (*Plan, error) {
	return BuildPlanSeeds(o, specs, o.Seed)
}

// BuildPlanSeeds is BuildPlan over an explicit seed list, for sweeps that
// rerun the grid under several workload seeds. Every (spec, seed) pair
// becomes one source group; group identity — and thus the report's
// run-level identity — includes the seed (BenchmarkRun.Seed), so
// multi-seed plans reassemble into one run per (spec, seed) without
// name collisions.
func BuildPlanSeeds(o Options, specs []BenchmarkSpec, seeds ...int64) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		seeds = []int64{o.Seed}
	}
	base := o.BaseConfig()
	p := &Plan{opts: o, byID: map[UnitID]int{}}
	byID := p.byID
	for _, spec := range specs {
		if len(spec.Types) == 0 {
			continue
		}
		for _, seed := range seeds {
			gen := workload.Generator{Cores: base.Cores, Seed: seed, Replacement: spec.Variant}
			src, err := gen.Source(o.ScaledProfile(spec.Profile))
			if err != nil {
				return nil, err
			}
			group := planGroup{spec: spec, seed: seed}
			for _, typ := range spec.Types {
				cfg := base.WithRMWType(typ)
				// Validate before digesting, exactly like the cache paths:
				// an invalid configuration must never mint a unit identity.
				if err := cfg.Validate(); err != nil {
					return nil, err
				}
				key := simcache.SimKey(cfg, src, seed, o.Scale)
				id := UnitID(key.UnitID())
				if prev, dup := byID[id]; dup {
					return nil, fmt.Errorf("rmwtso: unit ID %s collides between %s/%s and %s/%s",
						id, p.units[prev].Trace, p.units[prev].Type, src.Name(), typ)
				}
				byID[id] = len(p.units)
				group.units = append(group.units, len(p.units))
				p.units = append(p.units, Unit{
					ID:        id,
					Trace:     src.Name(),
					Benchmark: spec.Profile.Name,
					Variant:   spec.Variant,
					Type:      typ,
					Seed:      seed,
					Scale:     key.Scale,
					Key:       key,
					group:     len(p.groups),
				})
			}
			p.groups = append(p.groups, group)
		}
	}

	h := sha256.New()
	fmt.Fprintf(h, "rmwtso-plan/v%d\n", ShardSchemaVersion)
	for _, u := range p.units {
		fmt.Fprintln(h, u.Key.Canonical())
	}
	p.fp = hex.EncodeToString(h.Sum(nil))
	return p, nil
}

// DefaultPlan enumerates the paper's full simulation sweep — the seven
// Table 3 benchmarks plus the wsq-mst C/C++11 replacement variants, each
// under its sound RMW types — for the options.
func DefaultPlan(o Options) (*Plan, error) {
	return BuildPlan(o, append(experiments.Table3Specs(), experiments.Cpp11Specs()...))
}

// DefaultPlanSeeds is DefaultPlan over an explicit seed list: the full
// sweep grid rerun under each workload seed.
func DefaultPlanSeeds(o Options, seeds ...int64) (*Plan, error) {
	return BuildPlanSeeds(o, append(experiments.Table3Specs(), experiments.Cpp11Specs()...), seeds...)
}

// Units returns the plan's units in plan order.
func (p *Plan) Units() []Unit { return append([]Unit(nil), p.units...) }

// Len returns the number of units in the plan.
func (p *Plan) Len() int { return len(p.units) }

// Options returns the options the plan was built from.
func (p *Plan) Options() Options { return p.opts }

// Seeds returns the distinct workload seeds of the plan's groups, in
// first-appearance order.
func (p *Plan) Seeds() []int64 {
	var out []int64
	seen := map[int64]bool{}
	for _, g := range p.groups {
		if !seen[g.seed] {
			seen[g.seed] = true
			out = append(out, g.seed)
		}
	}
	return out
}

// Fingerprint returns the hex digest of the plan's full unit enumeration
// (every unit's canonical cache key, in order). Two plans with equal
// fingerprints describe the same work; shard artifacts embed it so a
// merge cannot mix shards of different sweeps.
func (p *Plan) Fingerprint() string { return p.fp }

// Unit returns the plan unit with the given ID.
func (p *Plan) Unit(id UnitID) (Unit, bool) {
	i, ok := p.byID[id]
	if !ok {
		return Unit{}, false
	}
	return p.units[i], true
}

// Select returns the units a shard covers, in plan order.
func (p *Plan) Select(s Shard) []Unit {
	var out []Unit
	for pos, u := range p.units {
		if s.Covers(pos, u.ID) {
			out = append(out, u)
		}
	}
	return out
}

// Shard selects a subset of a plan's units for one process of a fleet.
// The zero value selects the whole plan. With Count > 0, units are dealt
// round-robin by plan position: shard i of n covers the units at
// positions ≡ i (mod n), so the n shards of a plan partition it exactly
// and adjacent (cheap and expensive) units spread across the fleet. Only,
// when non-nil, additionally restricts the shard to units whose ID it
// accepts — set it alone (Count == 0) for an arbitrary unit-ID predicate.
type Shard struct {
	// Index and Count select round-robin shard Index of Count.
	Index int `json:"index"`
	Count int `json:"count"`
	// Only, when non-nil, keeps only units whose ID it accepts.
	Only func(UnitID) bool `json:"-"`
}

// FullShard returns the selector that covers the whole plan.
func FullShard() Shard { return Shard{} }

// Validate rejects malformed selectors: a negative count, or an index
// outside [0, Count) when Count is set.
func (s Shard) Validate() error {
	switch {
	case s.Count < 0:
		return fmt.Errorf("rmwtso: negative shard count %d", s.Count)
	case s.Count == 0 && s.Index != 0:
		return fmt.Errorf("rmwtso: shard index %d without a shard count", s.Index)
	case s.Count > 0 && (s.Index < 0 || s.Index >= s.Count):
		return fmt.Errorf("rmwtso: shard index %d outside [0, %d)", s.Index, s.Count)
	}
	return nil
}

// Covers reports whether the shard selects the unit with the given ID at
// the given plan position. It is the single selection rule every sharded
// surface shares (Plan.Select, RunPlan, CheckTestsSharded, the binaries'
// -list-units audits), so a listing can never drift from what actually
// runs.
func (s Shard) Covers(pos int, id UnitID) bool {
	if s.Count > 0 && pos%s.Count != s.Index {
		return false
	}
	if s.Only != nil && !s.Only(id) {
		return false
	}
	return true
}

// String renders the selector ("2/4", "all", or "filtered").
func (s Shard) String() string {
	switch {
	case s.Count > 0:
		return fmt.Sprintf("%d/%d", s.Index, s.Count)
	case s.Only != nil:
		return "filtered"
	}
	return "all"
}

// ParseShard parses an "i/n" selector ("0/3" is the first of three
// shards), as taken by the binaries' -shard flag.
func ParseShard(spec string) (Shard, error) {
	idx, cnt, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("rmwtso: shard %q is not of the form i/n", spec)
	}
	i, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return Shard{}, fmt.Errorf("rmwtso: shard index %q: %w", idx, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(cnt))
	if err != nil {
		return Shard{}, fmt.Errorf("rmwtso: shard count %q: %w", cnt, err)
	}
	s := Shard{Index: i, Count: n}
	if n == 0 {
		return Shard{}, fmt.Errorf("rmwtso: shard count must be positive in %q", spec)
	}
	if err := s.Validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// deadlockError reports a benchmark run that wedged; experiment sweeps
// treat deadlock as an error because only the Fig. 10 demo expects it.
func deadlockError(name string, typ AtomicityType) error {
	return fmt.Errorf("rmwtso: %s under %s deadlocked", name, typ)
}

// runPlanStatic executes the units of the plan a shard selects on the
// engine's worker pool and returns their results as a shard artifact.
// Unit identities, order and results are exactly the plan's.
//
// The plan — not the engine's WithRMWTypes restriction — determines what
// runs: dropping plan units silently would leave merges incomplete. Each
// source group's trace streams lazily (or materializes once, with the
// plan options' Materialize) and the engine's cache (WithCache, else the
// plan options' Cache/CacheDir) serves and stores units by the same
// keys, so warm shards do zero simulation work.
func (e *Engine) runPlanStatic(ctx context.Context, plan *Plan, shard Shard, m *metrics) (*ShardResult, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	cache, err := e.planCache(plan)
	if err != nil {
		return nil, err
	}

	selected := plan.Select(shard)
	m.planned(len(selected))
	selectedIDs := make(map[UnitID]bool, len(selected))
	for _, u := range selected {
		selectedIDs[u.ID] = true
	}

	// Phase 1: build one trace source per group with selected units.
	// Sources are cheap until drained; with Materialize a group's ops are
	// pre-built and shared across its per-type runs unless every selected
	// unit of the group is already cached.
	groupIdx := make([]int, 0, len(plan.groups))
	seen := map[int]bool{}
	for _, u := range selected {
		if !seen[u.group] {
			seen[u.group] = true
			groupIdx = append(groupIdx, u.group)
		}
	}
	base := plan.opts.BaseConfig()
	sources := make([]TraceSource, len(plan.groups))
	err = e.runUnitsCtx(ctx, len(groupIdx), func(i int) error {
		src, err := plan.groupSource(plan.groups[groupIdx[i]], cache, selectedIDs)
		if err != nil {
			return err
		}
		sources[groupIdx[i]] = src
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: simulate each selected unit, sharing its group's source.
	results := make([]UnitResult, len(selected))
	err = e.runUnitsCtx(ctx, len(selected), func(i int) error {
		u := selected[i]
		ur, err := e.runUnit(base, u, sources[u.group], cache, m)
		if err != nil {
			return err
		}
		results[i] = ur
		return nil
	})
	if err != nil {
		return nil, err
	}

	return &ShardResult{
		Plan:     plan.fp,
		Index:    shard.Index,
		Count:    shard.Count,
		Filtered: shard.Only != nil,
		Units:    results,
	}, nil
}

// planCache resolves the result cache a plan execution consults: the
// engine's (WithCache), else the plan options' Cache/CacheDir.
func (e *Engine) planCache(plan *Plan) (*simcache.Cache, error) {
	if e.opts.cache != nil {
		return e.opts.cache, nil
	}
	return plan.opts.ResultCache()
}

// groupSource builds the trace source one plan group's units share: the
// group's workload generator stream, materialized once when the plan
// options ask for it and the group still has uncached selected units. A
// nil selected set means every unit of the group counts as selected.
// This is phase 1 of a static plan run; coordinated sweeps build the
// same sources lazily as workers lease into a group.
func (p *Plan) groupSource(g planGroup, cache *simcache.Cache, selected map[UnitID]bool) (TraceSource, error) {
	base := p.opts.BaseConfig()
	gen := workload.Generator{Cores: base.Cores, Seed: g.seed, Replacement: g.spec.Variant}
	src, err := gen.Source(p.opts.ScaledProfile(g.spec.Profile))
	if err != nil {
		return nil, err
	}
	cached := cache != nil
	for _, ui := range g.units {
		if cached && selected != nil && !selected[p.units[ui].ID] {
			continue
		}
		if cached && !cache.Has(p.units[ui].Key) {
			cached = false
		}
	}
	if p.opts.Materialize && !cached {
		return sim.Materialize(src).Source(), nil
	}
	return src, nil
}

// runUnit executes one plan unit against its group's source — serving it
// from the cache when possible, simulating and storing otherwise — and
// emits its SimRun event. It is the single execution path behind the
// static worker pool, the coordinator's pull workers (in-process and
// HTTP) and the experiment sweeps, so the modes cannot drift.
func (e *Engine) runUnit(base SimConfig, u Unit, src TraceSource, cache *simcache.Cache, m *metrics) (UnitResult, error) {
	if cache != nil {
		if res, ok := cache.GetSim(u.Key); ok {
			// Warm runs must reject a deadlocked result exactly like
			// cold runs do (such entries are never stored here, but a
			// foreign writer could have).
			if res.Deadlocked {
				return UnitResult{}, deadlockError(u.Trace, u.Type)
			}
			ur := UnitResult{Unit: u.ID, Trace: u.Trace, Type: u.Type, Seed: u.Seed, CacheHit: true, Result: res}
			m.unitDone(true)
			e.emitTo(m, Event{Sim: &SimRun{Unit: u.ID, Trace: u.Trace, Type: u.Type, Result: res, CacheHit: true}})
			return ur, nil
		}
	}
	res, err := simulateSource(base.WithRMWType(u.Type), src)
	if err != nil {
		return UnitResult{}, err
	}
	if res.Deadlocked {
		return UnitResult{}, deadlockError(u.Trace, u.Type)
	}
	if cache != nil {
		_ = cache.PutSim(u.Key, res)
	}
	ur := UnitResult{Unit: u.ID, Trace: u.Trace, Type: u.Type, Seed: u.Seed, Result: res}
	m.unitDone(false)
	e.emitTo(m, Event{Sim: &SimRun{Unit: u.ID, Trace: u.Trace, Type: u.Type, Result: res}})
	return ur, nil
}

// listedUnitsMax bounds how many unit IDs a merge-path error message
// spells out; the remainder is summarized as a count, so a merge of a
// huge plan missing hundreds of units still produces a readable error.
const listedUnitsMax = 8

// boundedList renders the items sorted, capped at max entries with the
// remainder summarized ("a, b, …, h and 12 more"). Sorting makes the
// message deterministic regardless of plan or arrival order; merge-path
// errors rely on both properties.
func boundedList(items []string, max int) string {
	sorted := append([]string(nil), items...)
	sort.Strings(sorted)
	if len(sorted) <= max {
		return strings.Join(sorted, ", ")
	}
	return fmt.Sprintf("%s and %d more", strings.Join(sorted[:max], ", "), len(sorted)-max)
}

// unitDesc renders a unit's identity for error messages.
func unitDesc(id UnitID, trace string, typ AtomicityType) string {
	return fmt.Sprintf("%s (%s under %s)", id, trace, typ)
}

// indexResults validates unit results against the plan — an alien unit, a
// duplicated unit (all duplicates listed, sorted and bounded) or a
// result-less unit is an error — and indexes them by unit ID.
func (p *Plan) indexResults(units []UnitResult) (map[UnitID]*SimResult, error) {
	byID := make(map[UnitID]*SimResult, len(units))
	var dups []string
	dupSeen := map[UnitID]bool{}
	for _, ur := range units {
		u, ok := p.Unit(ur.Unit)
		if !ok {
			return nil, fmt.Errorf("rmwtso: unit %s is not in the plan", unitDesc(ur.Unit, ur.Trace, ur.Type))
		}
		if _, dup := byID[ur.Unit]; dup {
			if !dupSeen[ur.Unit] {
				dupSeen[ur.Unit] = true
				dups = append(dups, unitDesc(ur.Unit, ur.Trace, ur.Type))
			}
			continue
		}
		if ur.Result == nil {
			return nil, fmt.Errorf("rmwtso: unit %s has no result", unitDesc(ur.Unit, u.Trace, u.Type))
		}
		byID[ur.Unit] = ur.Result
	}
	if len(dups) > 0 {
		return nil, fmt.Errorf("rmwtso: %d of %d plan units appear twice or more: %s",
			len(dups), len(p.units), boundedList(dups, listedUnitsMax))
	}
	return byID, nil
}

// missingUnits returns the descriptions and IDs of the plan units absent
// from the index, each list sorted by unit ID.
func (p *Plan) missingUnits(byID map[UnitID]*SimResult) (descs []string, ids []UnitID) {
	for _, u := range p.units {
		if _, ok := byID[u.ID]; !ok {
			descs = append(descs, unitDesc(u.ID, u.Trace, u.Type))
			ids = append(ids, u.ID)
		}
	}
	sort.Strings(descs)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return descs, ids
}

// groupRuns reassembles one BenchmarkRun per source group whose units are
// all present in the index, in plan order. The run carries its group's
// seed, so multi-seed plans yield one distinguishable run per (spec,
// seed) pair instead of name-keyed collisions.
func (p *Plan) groupRuns(byID map[UnitID]*SimResult) []*BenchmarkRun {
	var runs []*BenchmarkRun
	for _, g := range p.groups {
		run := &BenchmarkRun{
			Profile: g.spec.Profile,
			Variant: g.spec.Variant,
			Seed:    g.seed,
			ByType:  map[AtomicityType]*SimResult{},
		}
		complete := true
		for _, ui := range g.units {
			u := p.units[ui]
			res, ok := byID[u.ID]
			if !ok {
				complete = false
				break
			}
			run.Name = u.Trace
			run.ByType[u.Type] = res
		}
		if complete {
			runs = append(runs, run)
		}
	}
	return runs
}

// Runs reassembles benchmark runs from unit results, in plan order: one
// BenchmarkRun per (spec, seed) source group with one ByType entry per
// unit. It requires exactly the plan's unit set — a missing, duplicated
// or alien unit is an error, with the offending unit IDs listed sorted
// and bounded — so a partial shard cannot silently masquerade as a
// finished sweep; merge shard artifacts with MergeShards first.
func (p *Plan) Runs(units []UnitResult) ([]*BenchmarkRun, error) {
	byID, err := p.indexResults(units)
	if err != nil {
		return nil, err
	}
	if missing, _ := p.missingUnits(byID); len(missing) > 0 {
		return nil, fmt.Errorf("rmwtso: %d of %d plan units missing: %s",
			len(missing), len(p.units), boundedList(missing, listedUnitsMax))
	}
	return p.groupRuns(byID), nil
}

// RunsPartial is Runs for a sweep that legitimately ended incomplete — a
// coordinated run with dead-lettered units. It reassembles the benchmark
// runs of every source group whose units all finished and reports the
// IDs of the absent units (sorted), instead of failing on them; alien,
// duplicated and result-less units are still errors. Callers render the
// partial report alongside the missing list so a reader can never
// mistake it for a finished sweep.
func (p *Plan) RunsPartial(units []UnitResult) ([]*BenchmarkRun, []UnitID, error) {
	byID, err := p.indexResults(units)
	if err != nil {
		return nil, nil, err
	}
	_, missing := p.missingUnits(byID)
	return p.groupRuns(byID), missing, nil
}

// specTypes intersects a spec's types with the engine's configured
// types, preserving the spec's order. With the default configuration
// (all three types) this is the spec's list unchanged.
func (e *Engine) specTypes(s BenchmarkSpec) []AtomicityType {
	allowed := map[AtomicityType]bool{}
	for _, t := range e.opts.types {
		allowed[t] = true
	}
	var out []AtomicityType
	for _, t := range s.Types {
		if allowed[t] {
			out = append(out, t)
		}
	}
	return out
}

// RunBenchmarks simulates every (spec, type) pair across the worker pool,
// streaming each finished run to the observer. A spec's types are
// intersected with the engine's configured types (WithRMWTypes); specs
// left with no types are dropped.
//
// It is a thin wrapper over the plan pipeline: the (spec, type) grid is
// enumerated into a Plan of content-addressed units, executed unsharded
// as a plan job and reassembled with Plan.Runs — so an in-process sweep
// and a sharded fleet run through one code path and produce identical
// results. Results come back in spec order with one ByType entry per
// simulated type.
func (e *Engine) RunBenchmarks(o Options, specs []BenchmarkSpec) ([]*BenchmarkRun, error) {
	return e.RunBenchmarksSeeds(o, specs, o.Seed)
}

// RunBenchmarksSeeds is RunBenchmarks over an explicit workload seed
// list: the full (spec, type) grid is rerun under every seed in one plan,
// yielding one BenchmarkRun per (spec, seed) pair in spec-major, then
// seed order. Reports built from multi-seed runs gain the cross-seed
// mean/CI section.
func (e *Engine) RunBenchmarksSeeds(o Options, specs []BenchmarkSpec, seeds ...int64) ([]*BenchmarkRun, error) {
	kept := make([]BenchmarkSpec, 0, len(specs))
	for _, s := range specs {
		ts := e.specTypes(s)
		if len(ts) == 0 {
			continue
		}
		s.Types = ts
		kept = append(kept, s)
	}
	plan, err := BuildPlanSeeds(o, kept, seeds...)
	if err != nil {
		return nil, err
	}
	shardRun, err := e.RunPlan(nil, plan, FullShard())
	if err != nil {
		return nil, err
	}
	return plan.Runs(shardRun.Units)
}
