package engine_test

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// reportOptions shrink the sweep to test size.
func reportOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.Cores = 4
	o.Scale = 0.05
	return o
}

// buildTestReport runs the quick sweep through the engine once and builds
// its report.
func buildTestReport(t *testing.T) (*experiments.Report, experiments.Options) {
	t.Helper()
	o := reportOptions()
	runs, err := runSpecs(o, experiments.Table3Specs())
	if err != nil {
		t.Fatal(err)
	}
	cpp, err := runSpecs(o, experiments.Cpp11Specs())
	if err != nil {
		t.Fatal(err)
	}
	r, err := experiments.BuildReport(o, append(runs, cpp...))
	if err != nil {
		t.Fatal(err)
	}
	return r, o
}

// TestBuildReport covers the model's shape: every section populated, the
// schema stamped, and Table 3 restricted to the non-replacement runs.
func TestBuildReport(t *testing.T) {
	r, o := buildTestReport(t)
	if r.SchemaVersion != experiments.ReportSchemaVersion {
		t.Errorf("schema version %d", r.SchemaVersion)
	}
	if r.Cores != o.Cores || r.Seed != o.Seed || r.Scale != o.Scale {
		t.Errorf("run shape not recorded: %+v", r)
	}
	if len(r.Table1) != 3 || !r.Table1Matches {
		t.Errorf("Table 1: %d rows, matches=%v", len(r.Table1), r.Table1Matches)
	}
	if len(r.Table2) == 0 || len(r.Table4) != 9 {
		t.Errorf("Table 2 (%d rows) or Table 4 (%d rows) malformed", len(r.Table2), len(r.Table4))
	}
	if len(r.Table3) != 7 {
		t.Errorf("Table 3 has %d rows, want 7 (replacement variants must not leak in)", len(r.Table3))
	}
	if len(r.Fig11a) != 9 || len(r.Fig11b) != 9 {
		t.Errorf("Fig. 11 entries: %d/%d, want 9/9", len(r.Fig11a), len(r.Fig11b))
	}
}

// TestJSONEncoderRoundTrips asserts the JSON encoding decodes back into
// a deeply equal Report and that encoding is deterministic.
func TestJSONEncoderRoundTrips(t *testing.T) {
	r, _ := buildTestReport(t)
	var a, b bytes.Buffer
	if err := (experiments.JSONEncoder{}).Encode(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := (experiments.JSONEncoder{}).Encode(&b, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSON encoding is not deterministic")
	}
	back, err := experiments.DecodeReportJSON(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Fatal("JSON round trip lost data")
	}
	// A wrong schema version must be rejected.
	bad := bytes.Replace(a.Bytes(), []byte(`"schema_version": 1`), []byte(`"schema_version": 99`), 1)
	if _, err := experiments.DecodeReportJSON(bad); err == nil {
		t.Fatal("alien schema version accepted")
	}
}

// TestCSVEncoderParses asserts every CSV section parses with encoding/csv
// (comment '#') and carries the expected sections.
func TestCSVEncoderParses(t *testing.T) {
	r, _ := buildTestReport(t)
	var b bytes.Buffer
	if err := (experiments.CSVEncoder{}).Encode(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, section := range []string{"# table1", "# table2", "# table3", "# table4", "# fig11a", "# fig11b", "# summary"} {
		if !strings.Contains(out, section+"\n") {
			t.Errorf("CSV output lacks section %q", section)
		}
	}
	cr := csv.NewReader(strings.NewReader(out))
	cr.Comment = '#'
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not parse: %v", err)
	}
	// 7 headers + 3+len(t2)+7+9+9+9+1 data rows.
	want := 7 + 3 + len(r.Table2) + 7 + 9 + 9 + 9 + 1
	if len(records) != want {
		t.Errorf("CSV has %d records, want %d", len(records), want)
	}
}

// TestRenderWrappersMatchASCIIEncoder pins the refactor invariant: the
// public Render* helpers and the ASCII encoder share one rendering, so a
// section rendered standalone appears verbatim in the full encoding.
func TestRenderWrappersMatchASCIIEncoder(t *testing.T) {
	r, o := buildTestReport(t)
	var b bytes.Buffer
	if err := (experiments.ASCIIEncoder{}).Encode(&b, r); err != nil {
		t.Fatal(err)
	}
	full := b.String()
	for name, section := range map[string]string{
		"Table1":  experiments.RenderTable1(r.Table1),
		"Table2":  experiments.RenderTable2(o.BaseConfig()),
		"Table3":  experiments.RenderTable3(r.Table3),
		"Table4":  experiments.RenderTable4(r.Table4),
		"Fig11a":  experiments.RenderFig11a(r.Fig11a),
		"Fig11b":  experiments.RenderFig11b(r.Fig11b),
		"Summary": r.Summary.Render(),
	} {
		if !strings.Contains(full, section) {
			t.Errorf("ASCII encoding does not contain the %s section verbatim", name)
		}
	}
}
