package engine_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
)

func seedTestOptions() experiments.Options {
	return experiments.Options{Cores: 4, Scale: 0.1, Seed: 11}
}

// TestMultiSeedRunsKeepSeedIdentity is the regression test for the silent
// seed-aliasing bug: the trace name does not embed the workload seed, so
// before BenchmarkRun.Seed existed a multi-seed plan reassembled two
// different seeds' results into name-colliding runs. A two-seed sweep
// must yield one run per (spec, seed) with the seed recorded, and the
// seeds' results must actually differ.
func TestMultiSeedRunsKeepSeedIdentity(t *testing.T) {
	o := seedTestOptions()
	specs := experiments.Table3Specs()[:1]
	runs, err := engine.New().RunBenchmarksSeeds(o, specs, o.Seed, o.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d runs, want one per (spec, seed) = 2", len(runs))
	}
	if runs[0].Name != runs[1].Name {
		t.Fatalf("run names %q vs %q: same spec must keep one trace name", runs[0].Name, runs[1].Name)
	}
	if runs[0].Seed != o.Seed || runs[1].Seed != o.Seed+1 {
		t.Fatalf("run seeds = %d, %d; want %d, %d (plan order)", runs[0].Seed, runs[1].Seed, o.Seed, o.Seed+1)
	}
	if reflect.DeepEqual(runs[0].ByType, runs[1].ByType) {
		t.Fatal("two seeds produced identical results; the seed did not reach the generator")
	}

	// The plan itself must mint distinct units per seed.
	plan, err := engine.BuildPlanSeeds(o, specs, o.Seed, o.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Seeds(); !reflect.DeepEqual(got, []int64{o.Seed, o.Seed + 1}) {
		t.Fatalf("plan.Seeds() = %v", got)
	}
	if plan.Len() != 2*len(specs[0].Types) {
		t.Fatalf("plan has %d units, want %d (grid x seeds)", plan.Len(), 2*len(specs[0].Types))
	}
}

// TestMultiSeedReportAggregates pins the cross-seed statistics pipeline:
// a two-seed sweep's report carries SeedStats with one entry per
// (benchmark, type), every encoder renders the section, and the per-seed
// sections are built from the base seed only — byte-identical to a
// single-seed report of that seed.
func TestMultiSeedReportAggregates(t *testing.T) {
	o := seedTestOptions()
	specs := experiments.Table3Specs()[:2]
	runs, err := engine.New().RunBenchmarksSeeds(o, specs, o.Seed, o.Seed+1)
	if err != nil {
		t.Fatal(err)
	}

	aggs := experiments.AggregateSeeds(runs)
	want := 0
	for _, s := range specs {
		want += len(s.Types)
	}
	if len(aggs) != want {
		t.Fatalf("%d aggregates, want %d (one per benchmark x type)", len(aggs), want)
	}
	for _, a := range aggs {
		if len(a.Seeds) != 2 {
			t.Errorf("%s/%s aggregated %d seeds, want 2", a.Benchmark, a.Type, len(a.Seeds))
		}
		if a.MeanRMWCost <= 0 || a.MeanCycles <= 0 {
			t.Errorf("%s/%s: non-positive means %+v", a.Benchmark, a.Type, a)
		}
		if a.CI95RMWCost < 0 || a.CI95Cycles < 0 {
			t.Errorf("%s/%s: negative CI half-width %+v", a.Benchmark, a.Type, a)
		}
	}

	multi, err := experiments.BuildReport(o, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.SeedStats) != want {
		t.Fatalf("report carries %d seed aggregates, want %d", len(multi.SeedStats), want)
	}

	// Base-seed sections: byte-identical to the single-seed report.
	base, err := engine.New().RunBenchmarks(o, specs)
	if err != nil {
		t.Fatal(err)
	}
	single, err := experiments.BuildReport(o, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(multi.Table3, single.Table3) ||
		!reflect.DeepEqual(multi.Fig11a, single.Fig11a) ||
		!reflect.DeepEqual(multi.Fig11b, single.Fig11b) ||
		multi.Summary != single.Summary {
		t.Fatal("multi-seed per-seed sections differ from the base seed's single-seed report")
	}
	if len(single.SeedStats) != 0 {
		t.Fatalf("single-seed report has %d seed aggregates, want none", len(single.SeedStats))
	}

	// Every encoder renders the section; single-seed encodings omit it.
	for _, format := range experiments.Formats() {
		enc, err := experiments.NewEncoder(format)
		if err != nil {
			t.Fatal(err)
		}
		var with, without bytes.Buffer
		if err := enc.Encode(&with, multi); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if err := enc.Encode(&without, single); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		marker := "seed_stats"
		if format == experiments.FormatASCII {
			marker = "Seed stability"
		}
		if !strings.Contains(with.String(), marker) {
			t.Errorf("%s encoding of a multi-seed report lacks the seed section", format)
		}
		if strings.Contains(without.String(), marker) {
			t.Errorf("%s encoding of a single-seed report mentions seed statistics", format)
		}
	}

	// The JSON round trip preserves the aggregates structurally.
	var buf bytes.Buffer
	if err := (experiments.JSONEncoder{}).Encode(&buf, multi); err != nil {
		t.Fatal(err)
	}
	back, err := experiments.DecodeReportJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.SeedStats, multi.SeedStats) {
		t.Fatal("seed aggregates lost in the JSON round trip")
	}
}

// TestAggregateSeedsSkipsPartialTypes covers the variant grids: a type
// only some seeds ran under (impossible through the plan pipeline, but
// reachable from hand-built runs) must still aggregate per type, and the
// type-3-free write-replacement variant gets no type-3 aggregate.
func TestAggregateSeedsSkipsPartialTypes(t *testing.T) {
	o := seedTestOptions()
	runs, err := engine.New().RunBenchmarksSeeds(o, experiments.Cpp11Specs()[:1], o.Seed, o.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range experiments.AggregateSeeds(runs) {
		if a.Type == core.Type3 {
			t.Fatalf("write replacement aggregated type-3: %+v", a)
		}
	}
}
