package engine

import (
	"sync"

	"repro/internal/simcache"
)

// ResultStore is the engine's result-lookup view: every unit result of
// every shard artifact the engine has produced (or been fed with
// AddShard), indexed by unit ID, backed by the content-addressed result
// cache for units the store has not seen as artifacts. It answers "what
// happened to unit X" without re-running anything, which is what a
// service front end needs to serve result queries.
type ResultStore struct {
	cache *simcache.Cache

	mu   sync.RWMutex
	byID map[UnitID]UnitResult
}

// NewResultStore builds a store over an optional cache (nil is fine:
// lookups then only see absorbed artifacts).
func NewResultStore(cache *simcache.Cache) *ResultStore {
	return &ResultStore{cache: cache, byID: map[UnitID]UnitResult{}}
}

// AddShard absorbs a shard artifact's unit results into the index. Later
// absorptions of the same unit overwrite earlier ones (results for equal
// unit IDs are equal by construction, so this only refreshes metadata
// like CacheHit).
func (s *ResultStore) AddShard(sr *ShardResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ur := range sr.Units {
		s.byID[ur.Unit] = ur
	}
}

// Len reports how many distinct units the store has absorbed.
func (s *ResultStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// Unit returns the absorbed unit result with the given ID.
func (s *ResultStore) Unit(id UnitID) (UnitResult, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ur, ok := s.byID[id]
	return ur, ok
}

// Result resolves a unit ID to its simulation result: absorbed artifacts
// first, then nothing — a bare ID cannot be looked up in the cache, whose
// keys carry the full input material. Use Lookup with the full key for a
// cache-backed query.
func (s *ResultStore) Result(id UnitID) (*SimResult, bool) {
	ur, ok := s.Unit(id)
	if !ok || ur.Result == nil {
		return nil, false
	}
	return ur.Result, true
}

// Lookup resolves a full content-addressed key: absorbed artifacts first
// (by the key's derived unit ID), then the result cache. It reports
// where the result came from via the fromCache flag.
func (s *ResultStore) Lookup(key CacheKey) (res *SimResult, fromCache bool, ok bool) {
	if r, found := s.Result(UnitID(key.UnitID())); found {
		return r, false, true
	}
	if s.cache == nil {
		return nil, false, false
	}
	if r, found := s.cache.GetSim(key); found {
		return r, true, true
	}
	return nil, false, false
}
