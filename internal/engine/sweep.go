package engine

import (
	"repro/internal/sim"
	"repro/internal/simcache"
)

// SweepTrace simulates one trace under every configured RMW type, one
// run per work unit. The returned slice is ordered like the configured
// types. The trace is shared read-only across the pool; this is
// SweepSource over the trace's own source, since a materialized run is
// defined as replaying the trace's streams.
func (e *Engine) SweepTrace(cfg SimConfig, trace *Trace) ([]SimRun, error) {
	return e.SweepSource(cfg, trace.Source())
}

// SweepSource simulates one streaming trace source under every configured
// RMW type, one run per work unit, without ever materializing the trace:
// each run pulls fresh per-core streams from the source, so peak memory is
// bounded by the source's window regardless of trace length. The source's
// Stream method must return independent iterators (Generator.Source and
// Trace.Source both do), since the per-type runs consume it concurrently.
// The returned slice is ordered like the configured types.
func (e *Engine) SweepSource(cfg SimConfig, src TraceSource) ([]SimRun, error) {
	return e.sweepSource(cfg, src, nil)
}

// sweepKeyMeta carries the workload identity a sweep needs to derive
// cache keys; nil disables caching for the sweep.
type sweepKeyMeta struct {
	seed  int64
	scale float64
}

// SweepSourceCached is SweepSource consulting the engine's cache
// (WithCache), with the workload seed and scale that produced src
// completing each run's cache key. Hits replay stored results (flagged
// CacheHit on the run and its streamed event) without simulating; misses
// run and are stored. Without a configured cache it behaves exactly like
// SweepSource.
func (e *Engine) SweepSourceCached(cfg SimConfig, src TraceSource, seed int64, scale float64) ([]SimRun, error) {
	return e.sweepSource(cfg, src, &sweepKeyMeta{seed: seed, scale: scale})
}

// sweepSource is the shared per-type sweep; meta enables cache lookups.
func (e *Engine) sweepSource(cfg SimConfig, src TraceSource, meta *sweepKeyMeta) ([]SimRun, error) {
	types := e.opts.types
	cache := e.opts.cache
	if meta == nil {
		cache = nil
	}
	runs := make([]SimRun, len(types))
	err := e.runUnits(len(types), func(i int) error {
		run := cfg.WithRMWType(types[i])
		if err := run.Validate(); err != nil {
			return err
		}
		var key simcache.Key
		var unit UnitID
		if meta != nil {
			// The unit identity exists whenever the key material does,
			// cache or no cache, so observers can correlate events with a
			// plan built from the same inputs.
			key = simcache.SimKey(run, src, meta.seed, meta.scale)
			unit = UnitID(key.UnitID())
		}
		if cache != nil {
			// Deadlocked entries are never stored, but a foreign one is
			// also never served: deadlocks always re-execute.
			if res, ok := cache.GetSim(key); ok && !res.Deadlocked {
				runs[i] = SimRun{Unit: unit, Trace: src.Name(), Type: types[i], Result: res, CacheHit: true}
				e.metrics.unitDone(true)
				e.emit(Event{Sim: &runs[i]})
				return nil
			}
		}
		s, err := sim.New(run)
		if err != nil {
			return err
		}
		res, err := s.RunSource(src)
		if err != nil {
			return err
		}
		if cache != nil && !res.Deadlocked {
			_ = cache.PutSim(key, res)
		}
		runs[i] = SimRun{Unit: unit, Trace: src.Name(), Type: types[i], Result: res}
		e.metrics.unitDone(false)
		e.emit(Event{Sim: &runs[i]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// SweepTraces simulates every (trace, configured type) pair across the
// pool. The returned slice is ordered (trace, type).
func (e *Engine) SweepTraces(cfg SimConfig, traces ...*Trace) ([]SimRun, error) {
	types := e.opts.types
	type unit struct{ ti, yi int }
	units := make([]unit, 0, len(traces)*len(types))
	for ti := range traces {
		for yi := range types {
			units = append(units, unit{ti, yi})
		}
	}
	runs := make([]SimRun, len(units))
	err := e.runUnits(len(units), func(i int) error {
		u := units[i]
		s, err := sim.New(cfg.WithRMWType(types[u.yi]))
		if err != nil {
			return err
		}
		res, err := s.Run(traces[u.ti])
		if err != nil {
			return err
		}
		runs[i] = SimRun{Trace: traces[u.ti].Name, Type: types[u.yi], Result: res}
		e.metrics.unitDone(false)
		e.emit(Event{Sim: &runs[i]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}
