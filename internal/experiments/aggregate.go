package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// SeedAggregate is the cross-seed statistics of one (benchmark, RMW type)
// cell of a multi-seed sweep: the mean and 95% confidence half-width of
// the per-RMW cost, the RMW execution-time overhead and the total cycle
// count across the seeds. Single-seed sweeps have no aggregates — one
// measurement carries no spread information.
type SeedAggregate struct {
	// Benchmark is the run name ("bayes", "wsq-mst_rr", ...), which embeds
	// the replacement variant; Type is the RMW atomicity type of the cell.
	Benchmark string             `json:"benchmark"`
	Type      core.AtomicityType `json:"type"`
	// Seeds lists the workload seeds aggregated over, in sweep order.
	Seeds []int64 `json:"seeds"`
	// MeanRMWCost and CI95RMWCost are the mean total per-RMW cost (cycles)
	// and its 95% confidence half-width across the seeds.
	MeanRMWCost float64 `json:"mean_rmw_cost"`
	CI95RMWCost float64 `json:"ci95_rmw_cost"`
	// MeanOverheadPct and CI95OverheadPct aggregate the share of execution
	// time spent on RMWs (the Fig. 11(b) metric).
	MeanOverheadPct float64 `json:"mean_overhead_pct"`
	CI95OverheadPct float64 `json:"ci95_overhead_pct"`
	// MeanCycles and CI95Cycles aggregate the total execution time.
	MeanCycles float64 `json:"mean_cycles"`
	CI95Cycles float64 `json:"ci95_cycles"`
}

// AggregateSeeds derives the cross-seed statistics from benchmark runs:
// runs are grouped by (name, variant) — the name embeds the variant, and
// BenchmarkRun.Seed disambiguates reruns of the same grid cell — and each
// group with at least two distinct seeds contributes one aggregate per
// RMW type it ran under. Groups measured under a single seed are dropped:
// the result is nil (not empty) for a fully single-seed sweep, so the
// report section is omitted rather than rendered hollow.
func AggregateSeeds(runs []*BenchmarkRun) []SeedAggregate {
	type groupKey struct {
		name    string
		variant string
	}
	type cell struct {
		seeds    []int64
		cost     []float64
		overhead []float64
		cycles   []float64
	}
	type group struct {
		types []core.AtomicityType
		cells map[core.AtomicityType]*cell
	}
	var order []groupKey
	groups := map[groupKey]*group{}
	for _, run := range runs {
		k := groupKey{run.Name, run.Variant.String()}
		g := groups[k]
		if g == nil {
			g = &group{cells: map[core.AtomicityType]*cell{}}
			groups[k] = g
			order = append(order, k)
		}
		for _, typ := range core.AllTypes() {
			res := run.ByType[typ]
			if res == nil {
				continue
			}
			c := g.cells[typ]
			if c == nil {
				c = &cell{}
				g.cells[typ] = c
				g.types = append(g.types, typ)
			}
			_, _, total := res.AvgRMWCost()
			c.seeds = append(c.seeds, run.Seed)
			c.cost = append(c.cost, total)
			c.overhead = append(c.overhead, res.RMWOverheadPercent())
			c.cycles = append(c.cycles, float64(res.Cycles))
		}
	}

	var out []SeedAggregate
	for _, k := range order {
		g := groups[k]
		for _, typ := range g.types {
			c := g.cells[typ]
			if len(distinctSeeds(c.seeds)) < 2 {
				continue
			}
			a := SeedAggregate{Benchmark: k.name, Type: typ, Seeds: c.seeds}
			a.MeanRMWCost, a.CI95RMWCost = stats.MeanCI95(c.cost)
			a.MeanOverheadPct, a.CI95OverheadPct = stats.MeanCI95(c.overhead)
			a.MeanCycles, a.CI95Cycles = stats.MeanCI95(c.cycles)
			out = append(out, a)
		}
	}
	return out
}

// distinctSeeds returns the distinct values of a seed list, in order.
func distinctSeeds(seeds []int64) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// RenderSeedAggregates renders the cross-seed statistics as a
// fixed-width table (mean ± 95% CI per metric); empty input renders the
// empty string.
func RenderSeedAggregates(aggs []SeedAggregate) string {
	if len(aggs) == 0 {
		return ""
	}
	var b strings.Builder
	n := len(aggs[0].Seeds)
	fmt.Fprintf(&b, "Seed stability: mean ± 95%% CI over %d seeds\n", n)
	t := stats.NewTable("", "Benchmark", "Type", "RMW cost", "Overhead", "Cycles")
	for _, a := range aggs {
		t.AddRow(a.Benchmark, a.Type.String(),
			fmt.Sprintf("%.1f ± %.1f", a.MeanRMWCost, a.CI95RMWCost),
			fmt.Sprintf("%.2f%% ± %.2f%%", a.MeanOverheadPct, a.CI95OverheadPct),
			fmt.Sprintf("%.0f ± %.0f", a.MeanCycles, a.CI95Cycles))
	}
	b.WriteString(t.Render())
	return b.String()
}
