package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// cacheTestOptions are small enough for the differential suite to run in
// seconds while still exercising every RMW type.
func cacheTestOptions() Options {
	return Options{Cores: 4, Scale: 0.1, Seed: 20130601}
}

// cacheTestSpecs keeps the differential runs fast: two Table 3 benchmarks
// under all three types plus one replacement variant.
func cacheTestSpecs() []BenchmarkSpec {
	specs := Table3Specs()[:2]
	specs = append(specs, Cpp11Specs()[1])
	return specs
}

// TestWarmVsColdDifferential runs the same spec set cold (empty cache),
// memory-warm (same cache object), disk-warm (fresh cache over the same
// directory, as a fresh process would see it) and uncached, and asserts
// all four produce deeply equal runs and byte-identical Table 3 / Fig. 11
// renderings — the cache must be invisible in the output.
func TestWarmVsColdDifferential(t *testing.T) {
	dir := t.TempDir()
	o := cacheTestOptions()
	specs := cacheTestSpecs()

	uncached, err := runSpecs(o, specs)
	if err != nil {
		t.Fatalf("uncached run: %v", err)
	}

	cold, err := simcache.Open(simcache.WithDir(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	o.Cache = cold
	coldRuns, err := runSpecs(o, specs)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	units := uint64(0)
	for _, s := range specs {
		units += uint64(len(s.Types))
	}
	if st := cold.Stats(); st.Misses != units || st.Stores != units || st.Hits() != 0 {
		t.Fatalf("cold stats = %+v, want %d misses and stores, 0 hits", st, units)
	}

	memWarm, err := runSpecs(o, specs)
	if err != nil {
		t.Fatalf("memory-warm run: %v", err)
	}
	if st := cold.Stats(); st.MemoryHits != units {
		t.Fatalf("memory-warm stats = %+v, want %d memory hits", st, units)
	}

	fresh, err := simcache.Open(simcache.WithDir(dir))
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	o.Cache = fresh
	diskWarm, err := runSpecs(o, specs)
	if err != nil {
		t.Fatalf("disk-warm run: %v", err)
	}
	if st := fresh.Stats(); st.DiskHits != units || st.Misses != 0 {
		t.Fatalf("disk-warm stats = %+v, want %d disk hits and 0 misses", st, units)
	}

	for name, got := range map[string][]*BenchmarkRun{
		"cold": coldRuns, "memory-warm": memWarm, "disk-warm": diskWarm,
	} {
		if !reflect.DeepEqual(got, uncached) {
			t.Errorf("%s runs differ from the uncached baseline", name)
		}
	}

	// Byte-identical tables and figures: the acceptance bar for warm runs.
	wantT3 := RenderTable3(Table3FromRuns(uncached[:2]))
	wantA, wantB := Fig11FromRuns(uncached)
	for name, got := range map[string][]*BenchmarkRun{"memory-warm": memWarm, "disk-warm": diskWarm} {
		if RenderTable3(Table3FromRuns(got[:2])) != wantT3 {
			t.Errorf("%s Table 3 rendering differs", name)
		}
		gotA, gotB := Fig11FromRuns(got)
		if !reflect.DeepEqual(gotA, wantA) || !reflect.DeepEqual(gotB, wantB) {
			t.Errorf("%s Fig. 11 data differs", name)
		}
	}
}

// TestCacheDirOption exercises the CacheDir convenience path (no Cache
// object): a run must leave disk entries addressable by the documented
// key derivation.
func TestCacheDirOption(t *testing.T) {
	dir := t.TempDir()
	o := cacheTestOptions()
	o.CacheDir = dir
	specs := Table3Specs()[:1]
	if _, err := runSpecs(o, specs); err != nil {
		t.Fatalf("runSpecs: %v", err)
	}
	c, err := simcache.Open(simcache.WithDir(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cfg := o.BaseConfig().WithRMWType(core.Type2)
	gen := workload.Generator{Cores: cfg.Cores, Seed: o.Seed}
	src, err := gen.Source(o.ScaledProfile(specs[0].Profile))
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	key := simcache.SimKey(cfg, src, o.Seed, o.Scale)
	res, ok := c.GetSim(key)
	if !ok {
		t.Fatalf("no disk entry for the documented key derivation")
	}
	if res.Workload != specs[0].Profile.Name || res.RMWType != core.Type2 {
		t.Fatalf("cached entry identifies as %s/%s", res.Workload, res.RMWType)
	}
}

// TestOptionsValidate covers the garbage inputs the harness must reject
// before they reach the generator or a cache key.
func TestOptionsValidate(t *testing.T) {
	cases := map[string]Options{
		"negative cores":        {Cores: -1, Scale: 1},
		"negative scale":        {Cores: 4, Scale: -0.5},
		"negative enum workers": {Cores: 4, Scale: 1, EnumWorkers: -3},
		"zero-core config":      {Config: &sim.Config{}},
	}
	for name, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, o)
		}
		if _, err := runSpecs(o, Table3Specs()[:1]); err == nil {
			t.Errorf("%s: runSpecs accepted %+v", name, o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options (all defaults) rejected: %v", err)
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
}

// TestBaseConfigNormalizesRMWType pins the normalization that keeps cache
// keys for "config with unset RMW type" from colliding: the zero value
// becomes the default type before anything digests it.
func TestBaseConfigNormalizesRMWType(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.RMWType = 0
	o := Options{Cores: 4, Scale: 1, Config: &cfg}
	got := o.BaseConfig()
	if got.RMWType != sim.DefaultConfig().RMWType {
		t.Fatalf("BaseConfig RMWType = %v, want normalized default", got.RMWType)
	}
	if got.Digest() == "" || got.Digest() != o.BaseConfig().Digest() {
		t.Fatalf("normalized digest not stable")
	}
}

// TestGeneratorCoresFollowConfig pins the fix for the generator/simulator
// core-count split: a core count supplied only through Options.Config
// must drive the workload generator too, so the trace and the machine
// agree.
func TestGeneratorCoresFollowConfig(t *testing.T) {
	cfg := sim.DefaultConfig().WithCores(4)
	o := Options{Scale: 0.1, Seed: 1, Config: &cfg} // note: o.Cores == 0
	runs, err := runSpecs(o, Table3Specs()[:1])
	if err != nil {
		t.Fatalf("runSpecs: %v", err)
	}
	res := runs[0].Result(core.Type1)
	if len(res.PerCore) != 4 {
		t.Fatalf("simulated %d cores, want 4", len(res.PerCore))
	}
	active := 0
	for _, c := range res.PerCore {
		if c.Reads+c.Writes+c.RMWs > 0 {
			active++
		}
	}
	if active != 4 {
		t.Fatalf("%d of 4 cores executed work; generator and simulator disagree on the core count", active)
	}
}
