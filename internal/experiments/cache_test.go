package experiments

import (
	"testing"

	"repro/internal/sim"
)

// TestOptionsValidate covers the garbage inputs the harness must reject
// before they reach the generator or a cache key. The engine's sweep
// entry point is pinned to reject the same inputs in
// internal/engine's TestRunBenchmarksValidates.
func TestOptionsValidate(t *testing.T) {
	cases := map[string]Options{
		"negative cores":        {Cores: -1, Scale: 1},
		"negative scale":        {Cores: 4, Scale: -0.5},
		"negative enum workers": {Cores: 4, Scale: 1, EnumWorkers: -3},
		"zero-core config":      {Config: &sim.Config{}},
	}
	for name, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options (all defaults) rejected: %v", err)
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
}

// TestBaseConfigNormalizesRMWType pins the normalization that keeps cache
// keys for "config with unset RMW type" from colliding: the zero value
// becomes the default type before anything digests it.
func TestBaseConfigNormalizesRMWType(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.RMWType = 0
	o := Options{Cores: 4, Scale: 1, Config: &cfg}
	got := o.BaseConfig()
	if got.RMWType != sim.DefaultConfig().RMWType {
		t.Fatalf("BaseConfig RMWType = %v, want normalized default", got.RMWType)
	}
	if got.Digest() == "" || got.Digest() != o.BaseConfig().Digest() {
		t.Fatalf("normalized digest not stable")
	}
}
