package experiments

// Coordination summarizes how a dynamically coordinated sweep was
// executed: which workers pulled how many units from the queue, how much
// retry/expiry churn the sweep saw, and which units were dead-lettered.
// It is diagnostic metadata about the execution, not about the results —
// per-worker counts depend on scheduling, so the section is excluded from
// byte-identity comparisons (the result tables of a completed coordinated
// sweep are still byte-identical to an unsharded run's).
type Coordination struct {
	// Mode names the transport the sweep coordinated over: "in-process"
	// (goroutine workers pulling from a shared queue) or "http" (workers
	// on other machines speaking the versioned JSON protocol).
	Mode string `json:"mode"`
	// Workers aggregates per-worker unit counts, sorted by worker name.
	Workers []CoordWorker `json:"workers,omitempty"`
	// Retries counts requeues after failed attempts (nacks and lease
	// expiries); Expired counts the lease expiries specifically.
	Retries int `json:"retries"`
	Expired int `json:"expired"`
	// DeadLetters lists the units that exhausted their attempt budget,
	// sorted by unit ID. Non-empty means the sweep is partial: these
	// units are absent from the result tables.
	DeadLetters []DeadUnit `json:"dead_letters,omitempty"`
}

// CoordWorker is one worker's traffic in a coordinated sweep.
type CoordWorker struct {
	// Worker is the worker's self-reported name.
	Worker string `json:"worker"`
	// Units counts the units the worker completed; Retries the attempts
	// it reported failed; Expired the leases it lost to expiry.
	Units   int `json:"units"`
	Retries int `json:"retries"`
	Expired int `json:"expired"`
}

// DeadUnit is one poisoned unit of a coordinated sweep: it failed on
// every attempt (repeated deadlocks, injected faults, crashing workers)
// and was dead-lettered so the rest of the sweep could finish.
type DeadUnit struct {
	// Unit is the plan unit's stable ID; Trace and Type restate its
	// human-readable identity.
	Unit  string `json:"unit"`
	Trace string `json:"trace,omitempty"`
	Type  string `json:"type,omitempty"`
	// Attempts is how many times the unit was handed out; Reasons holds
	// one failure reason per attempt, in order.
	Attempts int      `json:"attempts"`
	Reasons  []string `json:"reasons,omitempty"`
}
