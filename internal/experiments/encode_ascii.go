package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// ASCIIEncoder renders a Report as the paper-layout fixed-width tables
// and bar charts. It is the terminal-facing encoding; the section
// renderers it is built from also back the public Render* wrappers, so
// one section rendered standalone is byte-identical to the same section
// inside a full report.
type ASCIIEncoder struct{}

// Encode writes the report's sections in paper order: Tables 1, 2, 3 and
// 4, Fig. 11(a)/(b), then the headline summary.
func (ASCIIEncoder) Encode(w io.Writer, r *Report) error {
	var b strings.Builder
	b.WriteString(asciiTable1(r.Table1))
	b.WriteString("\n")
	b.WriteString(asciiTable2(r.Table2))
	b.WriteString("\n")
	b.WriteString(asciiTable3(r.Table3))
	b.WriteString("\n")
	b.WriteString(asciiTable4(r.Table4))
	b.WriteString("\n")
	b.WriteString(asciiFig11a(r.Fig11a))
	b.WriteString("\n")
	b.WriteString(asciiFig11b(r.Fig11b))
	b.WriteString("\n")
	b.WriteString(r.Summary.Render())
	if len(r.SeedStats) > 0 {
		b.WriteString("\n")
		b.WriteString(RenderSeedAggregates(r.SeedStats))
	}
	if r.Coordination != nil {
		b.WriteString("\n")
		b.WriteString(asciiCoordination(r.Coordination))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// asciiCoordination renders the dynamic-coordination section: per-worker
// unit counts plus, when the sweep is partial, the dead-lettered units.
func asciiCoordination(c *Coordination) string {
	t := stats.NewTable(
		fmt.Sprintf("Coordination: dynamic pull-queue sweep (%s mode, %d retries, %d lease expiries)",
			c.Mode, c.Retries, c.Expired),
		"Worker", "Units", "Retries", "Expired")
	for _, w := range c.Workers {
		t.AddRow(w.Worker, strconv.Itoa(w.Units), strconv.Itoa(w.Retries), strconv.Itoa(w.Expired))
	}
	out := t.Render()
	if len(c.DeadLetters) > 0 {
		d := stats.NewTable("DEAD-LETTERED UNITS (missing from the tables above)",
			"Unit", "Trace", "Type", "Attempts", "Last failure")
		for _, u := range c.DeadLetters {
			last := ""
			if len(u.Reasons) > 0 {
				last = u.Reasons[len(u.Reasons)-1]
			}
			d.AddRow(u.Unit, u.Trace, u.Type, strconv.Itoa(u.Attempts), last)
		}
		out += "\n" + d.Render()
	}
	return out
}

// asciiTable1 renders Table 1 rows in the paper's layout.
func asciiTable1(rows []Table1Row) string {
	t := stats.NewTable("Table 1: conventional RMW (type-1) vs proposed RMWs (type-2, type-3)",
		"Atomicity", "Dekker reads->RMW", "Dekker writes->RMW", "RMW as barrier", "C++11 SC-reads->RMW", "C++11 SC-writes->RMW")
	for _, r := range rows {
		t.AddRow(r.Atomicity.String(),
			stats.Mark(r.DekkerReads), stats.Mark(r.DekkerWrites), stats.Mark(r.RMWAsBarrier),
			stats.Mark(r.CppReadReplacement), stats.Mark(r.CppWriteReplacement))
	}
	return t.Render()
}

// asciiTable2 renders the architectural parameter rows (Table 2).
func asciiTable2(rows [][2]string) string {
	t := stats.NewTable("Table 2: architectural parameters", "Component", "Configuration")
	for _, row := range rows {
		t.AddRow(row[0], row[1])
	}
	return t.Render()
}

// asciiTable3 renders Table 3 rows, including the paper's reference
// values for the structural columns.
func asciiTable3(rows []Table3Row) string {
	t := stats.NewTable("Table 3: benchmark characteristics (measured vs paper)",
		"Code", "Suite", "Problem size",
		"RMWs/1000 memops", "(paper)",
		"% unique RMWs", "(paper)",
		"% WB drains type-2/3", "RMW broadcasts/100")
	for _, r := range rows {
		t.AddRow(r.Name, r.Suite, r.Size,
			stats.F2(r.RMWsPer1000), stats.F2(r.PaperRMWsPer1000),
			stats.F2(r.UniquePct), stats.F2(r.PaperUniquePct),
			stats.F2(r.DrainPct), stats.F2(r.BroadcastsPer100))
	}
	return t.Render()
}

// asciiTable4 renders the mapping-validation matrix together with the
// instruction selection of each mapping.
func asciiTable4(rows []Table4Row) string {
	sel := stats.NewTable("Table 4: mapping from C/C++11 to x86",
		"Mapping", "SC read", "SC write", "non-SC read", "non-SC write")
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Mapping.String()] {
			continue
		}
		seen[r.Mapping.String()] = true
		scRead, scWrite := "mov", "mov"
		if r.Mapping.MapsSCLoadToRMW() {
			scRead = "lock xadd(0)"
		}
		if r.Mapping.MapsSCStoreToRMW() {
			scWrite = "lock xchg"
		}
		sel.AddRow(r.Mapping.String(), scRead, scWrite, "mov", "mov")
	}
	val := stats.NewTable("Mapping soundness per RMW atomicity type (SC store buffering)",
		"Mapping", "Atomicity", "Sound", "Counterexample")
	for _, r := range rows {
		val.AddRow(r.Mapping.String(), r.Atomicity.String(), stats.Mark(r.Sound), r.Counterexample)
	}
	return sel.Render() + "\n" + val.Render()
}

// asciiFig11a renders the Fig. 11(a) data as a table plus a bar chart of
// the total per-RMW cost.
func asciiFig11a(entries []Fig11aEntry) string {
	t := stats.NewTable("Fig. 11(a): cost of type-1/2/3 RMWs (cycles, split write-buffer + Ra/Wa)",
		"Benchmark",
		"t1 WB", "t1 Ra/Wa", "t1 total",
		"t2 WB", "t2 Ra/Wa", "t2 total",
		"t3 WB", "t3 Ra/Wa", "t3 total",
		"t2 vs t1", "t3 vs t1")
	series := map[core.AtomicityType]*stats.Series{
		core.Type1: {Name: "type-1"},
		core.Type2: {Name: "type-2"},
		core.Type3: {Name: "type-3"},
	}
	for _, e := range entries {
		cells := []string{e.Benchmark}
		for _, typ := range core.AllTypes() {
			cells = append(cells,
				stats.F1(e.WriteBuffer[typ]), stats.F1(e.RaWa[typ]), stats.F1(e.Total(typ)))
			if s, ok := series[typ]; ok && e.Total(typ) > 0 {
				s.Add(e.Benchmark, e.Total(typ))
			}
		}
		cells = append(cells,
			"-"+stats.Percent(stats.PercentReduction(e.Total(core.Type1), e.Total(core.Type2))),
			"-"+stats.Percent(stats.PercentReduction(e.Total(core.Type1), e.Total(core.Type3))))
		t.AddRow(cells...)
	}
	chart := stats.Chart("Average RMW cost (cycles)", 40,
		*series[core.Type1], *series[core.Type2], *series[core.Type3])
	return t.Render() + "\n" + chart
}

// asciiFig11b renders the Fig. 11(b) data.
func asciiFig11b(entries []Fig11bEntry) string {
	t := stats.NewTable("Fig. 11(b): execution-time overhead of RMWs (% of total execution time)",
		"Benchmark", "type-1", "type-2", "type-3", "speedup t2", "speedup t3")
	s1 := stats.Series{Name: "type-1"}
	s2 := stats.Series{Name: "type-2"}
	s3 := stats.Series{Name: "type-3"}
	for _, e := range entries {
		row := []string{e.Benchmark}
		for _, typ := range core.AllTypes() {
			if _, ok := e.Overhead[typ]; ok {
				row = append(row, stats.F2(e.Overhead[typ]))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, stats.Percent(e.Speedup(core.Type2)))
		if _, ok := e.Cycles[core.Type3]; ok {
			row = append(row, stats.Percent(e.Speedup(core.Type3)))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
		s1.Add(e.Benchmark, e.Overhead[core.Type1])
		s2.Add(e.Benchmark, e.Overhead[core.Type2])
		if v, ok := e.Overhead[core.Type3]; ok {
			s3.Add(e.Benchmark, v)
		} else {
			s3.Add(e.Benchmark, 0)
		}
	}
	chart := stats.Chart("RMW overhead (% of execution time)", 40, s1, s2, s3)
	return t.Render() + "\n" + chart
}
