package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// CSVEncoder renders a Report as a multi-section CSV stream: each section
// starts with a `# <section>` comment line (readable by csv readers
// configured with comment='#'), followed by that section's header row and
// records. Numbers are emitted at full float precision so a merged and an
// unsharded report encode byte-identically.
type CSVEncoder struct{}

// Encode writes every report section as CSV records.
func (CSVEncoder) Encode(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	section := func(name string, header []string, rows [][]string) error {
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# %s\n", name); err != nil {
			return err
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		return cw.WriteAll(rows)
	}

	var t1 [][]string
	for _, row := range r.Table1 {
		t1 = append(t1, []string{row.Atomicity.String(),
			b(row.DekkerReads), b(row.DekkerWrites), b(row.RMWAsBarrier),
			b(row.CppReadReplacement), b(row.CppWriteReplacement)})
	}
	if err := section("table1", []string{"atomicity", "dekker_reads", "dekker_writes", "rmw_as_barrier", "cpp_read_replacement", "cpp_write_replacement"}, t1); err != nil {
		return err
	}

	var t2 [][]string
	for _, row := range r.Table2 {
		t2 = append(t2, []string{row[0], row[1]})
	}
	if err := section("table2", []string{"component", "configuration"}, t2); err != nil {
		return err
	}

	var t3 [][]string
	for _, row := range r.Table3 {
		t3 = append(t3, []string{row.Name, row.Suite, row.Size,
			f(row.RMWsPer1000), f(row.PaperRMWsPer1000),
			f(row.UniquePct), f(row.PaperUniquePct),
			f(row.DrainPct), f(row.BroadcastsPer100)})
	}
	if err := section("table3", []string{"code", "suite", "problem_size", "rmws_per_1000", "paper_rmws_per_1000", "unique_pct", "paper_unique_pct", "drain_pct", "broadcasts_per_100"}, t3); err != nil {
		return err
	}

	var t4 [][]string
	for _, row := range r.Table4 {
		t4 = append(t4, []string{row.Mapping.String(), row.Atomicity.String(), b(row.Sound), row.Counterexample})
	}
	if err := section("table4", []string{"mapping", "atomicity", "sound", "counterexample"}, t4); err != nil {
		return err
	}

	var fa [][]string
	for _, e := range r.Fig11a {
		rec := []string{e.Benchmark}
		for _, typ := range core.AllTypes() {
			// A type the benchmark does not run under stays empty, like
			// the ASCII table's "-" — emitting zeros would fabricate data.
			_, wbOK := e.WriteBuffer[typ]
			_, rwOK := e.RaWa[typ]
			if !wbOK && !rwOK {
				rec = append(rec, "", "", "")
				continue
			}
			rec = append(rec, f(e.WriteBuffer[typ]), f(e.RaWa[typ]), f(e.Total(typ)))
		}
		fa = append(fa, rec)
	}
	if err := section("fig11a", []string{"benchmark",
		"t1_write_buffer", "t1_ra_wa", "t1_total",
		"t2_write_buffer", "t2_ra_wa", "t2_total",
		"t3_write_buffer", "t3_ra_wa", "t3_total"}, fa); err != nil {
		return err
	}

	var fb [][]string
	for _, e := range r.Fig11b {
		rec := []string{e.Benchmark}
		for _, typ := range core.AllTypes() {
			// Same sentinel rule: a missing type must not read as zero
			// overhead (or, worse, as a 100% speedup below).
			if _, ok := e.Cycles[typ]; !ok {
				rec = append(rec, "", "")
				continue
			}
			rec = append(rec, f(e.Overhead[typ]), strconv.FormatUint(e.Cycles[typ], 10))
		}
		rec = append(rec, f(e.Speedup(core.Type2)))
		if _, ok := e.Cycles[core.Type3]; ok {
			rec = append(rec, f(e.Speedup(core.Type3)))
		} else {
			rec = append(rec, "")
		}
		fb = append(fb, rec)
	}
	if err := section("fig11b", []string{"benchmark",
		"t1_overhead_pct", "t1_cycles",
		"t2_overhead_pct", "t2_cycles",
		"t3_overhead_pct", "t3_cycles",
		"speedup_t2_pct", "speedup_t3_pct"}, fb); err != nil {
		return err
	}

	s := r.Summary
	if err := section("summary", []string{
		"type2_cost_reduction_min", "type2_cost_reduction_max",
		"type3_cost_reduction_min", "type3_cost_reduction_max",
		"max_speedup_type2", "max_speedup_type3", "avg_type1_drain_share"},
		[][]string{{f(s.Type2CostReductionMin), f(s.Type2CostReductionMax),
			f(s.Type3CostReductionMin), f(s.Type3CostReductionMax),
			f(s.MaxSpeedupType2), f(s.MaxSpeedupType3), f(s.AvgType1DrainShare)}}); err != nil {
		return err
	}

	// The seed_stats section exists only for multi-seed sweeps, so
	// single-seed reports stay byte-identical to older encodings.
	if len(r.SeedStats) > 0 {
		var ss [][]string
		for _, a := range r.SeedStats {
			ss = append(ss, []string{a.Benchmark, a.Type.String(),
				strconv.Itoa(len(a.Seeds)),
				f(a.MeanRMWCost), f(a.CI95RMWCost),
				f(a.MeanOverheadPct), f(a.CI95OverheadPct),
				f(a.MeanCycles), f(a.CI95Cycles)})
		}
		if err := section("seed_stats", []string{"benchmark", "type", "seeds",
			"mean_rmw_cost", "ci95_rmw_cost",
			"mean_overhead_pct", "ci95_overhead_pct",
			"mean_cycles", "ci95_cycles"}, ss); err != nil {
			return err
		}
	}

	// The coordination sections exist only for dynamically coordinated
	// sweeps, so static reports stay byte-identical to older encodings.
	if c := r.Coordination; c != nil {
		if err := section("coordination", []string{"mode", "retries", "expired"},
			[][]string{{c.Mode, strconv.Itoa(c.Retries), strconv.Itoa(c.Expired)}}); err != nil {
			return err
		}
		var ws [][]string
		for _, w := range c.Workers {
			ws = append(ws, []string{w.Worker, strconv.Itoa(w.Units), strconv.Itoa(w.Retries), strconv.Itoa(w.Expired)})
		}
		if err := section("coordination_workers", []string{"worker", "units", "retries", "expired"}, ws); err != nil {
			return err
		}
		if len(c.DeadLetters) > 0 {
			var ds [][]string
			for _, u := range c.DeadLetters {
				last := ""
				if len(u.Reasons) > 0 {
					last = u.Reasons[len(u.Reasons)-1]
				}
				ds = append(ds, []string{u.Unit, u.Trace, u.Type, strconv.Itoa(u.Attempts), last})
			}
			if err := section("coordination_dead_letters", []string{"unit", "trace", "type", "attempts", "last_failure"}, ds); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// f formats a float at full precision (shortest round-tripping form).
func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// b formats a bool as "true"/"false".
func b(v bool) string { return strconv.FormatBool(v) }

// schemaError reports a report schema this build cannot decode.
func schemaError(got int) error {
	return fmt.Errorf("experiments: report schema version %d, this build understands %d", got, ReportSchemaVersion)
}
