package experiments

import (
	"encoding/json"
	"io"
)

// JSONEncoder renders a Report as one indented JSON document. The
// encoding is deterministic (encoding/json sorts map keys), versioned by
// the report's schema_version field, and round-trips: unmarshaling the
// output into a Report reproduces the original model, which is what lets
// dashboards and the tests consume it structurally.
type JSONEncoder struct{}

// Encode writes the report as indented JSON followed by a newline.
func (JSONEncoder) Encode(w io.Writer, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// DecodeReportJSON parses a JSON-encoded report, rejecting schemas this
// build does not understand.
func DecodeReportJSON(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.SchemaVersion != ReportSchemaVersion {
		return nil, schemaError(r.SchemaVersion)
	}
	return &r, nil
}
