// Package experiments regenerates every table and figure of the paper's
// evaluation:
//
//   - Table 1: which RMW atomicity type supports which synchronization
//     idiom (model checking of the litmus suite plus the C/C++11 mapping
//     validation);
//   - Table 2: the architectural parameters of the simulated platform;
//   - Table 3: benchmark characteristics (RMW density, unique RMWs,
//     write-buffer drains for type-2/3, broadcast rate);
//   - Table 4: the C/C++11-to-x86 mappings and their soundness per RMW
//     type;
//   - Fig. 11(a): the per-RMW cost split into write-buffer and Ra/Wa
//     components for type-1/2/3;
//   - Fig. 11(b): the execution-time overhead of RMWs per benchmark and
//     RMW type;
//   - the headline summary (cost reductions and overall speedups).
//
// Absolute cycle counts differ from the paper (the substrate is the
// simulator of internal/sim, not the authors' GEM5 testbed), but the shapes
// the paper reports -- who wins, by roughly what factor, and where the
// benefits concentrate -- are reproduced. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Cores is the number of simulated cores (the paper uses 32).
	Cores int
	// Scale multiplies each benchmark's iteration count; values below 1
	// shrink runs for quick smoke tests and benchmarks.
	Scale float64
	// Seed drives the workload generators.
	Seed int64
	// Config overrides the base architectural parameters; the RMW type is
	// set per run by the harness.
	Config *sim.Config
	// Materialize pre-builds each benchmark's whole trace in memory and
	// shares the slices across the per-type runs (the pre-streaming
	// behavior). The default, false, streams each run's trace lazily from
	// the workload generator at O(episode) memory per core — the right
	// choice for paper-scale and larger sweeps, whose traces dwarf the
	// episode window. Both paths produce identical results; the streamed
	// one regenerates ops per run instead of holding them.
	Materialize bool
	// EnumWorkers is how many goroutines each litmus verdict and mapping
	// validation of the semantics experiments (Tables 1 and 4) fans its
	// candidate enumeration across. The default, 0, picks per program via
	// the candidate-count heuristic: GOMAXPROCS for IRIW-class programs,
	// 1 for small ones. The verdicts are identical at any setting.
	EnumWorkers int
}

// DefaultOptions reproduce the paper's setup (32 cores, full workloads).
func DefaultOptions() Options {
	return Options{Cores: 32, Scale: 1.0, Seed: 20130601}
}

// QuickOptions shrink the runs for tests and `go test -bench`: fewer cores
// and shorter workloads, same structure.
func QuickOptions() Options {
	return Options{Cores: 8, Scale: 0.25, Seed: 20130601}
}

// BaseConfig returns the architectural configuration the options describe
// (Table 2 plus any overrides); the RMW type is set per run by the harness.
func (o Options) BaseConfig() sim.Config {
	return o.baseConfig()
}

// baseConfig returns the architectural configuration for the options.
func (o Options) baseConfig() sim.Config {
	var cfg sim.Config
	if o.Config != nil {
		cfg = *o.Config
	} else {
		cfg = sim.DefaultConfig()
	}
	if o.Cores > 0 {
		cfg = cfg.WithCores(o.Cores)
	}
	return cfg
}

// ScaledProfile returns a copy of the profile with its iteration count
// scaled by the options' Scale factor. Exported so external harnesses
// (pkg/rmwtso's parallel sweeps) apply exactly the same scaling rule.
func (o Options) ScaledProfile(p workload.Profile) workload.Profile { return o.scaled(p) }

// scaled returns a copy of the profile with its iteration count scaled.
func (o Options) scaled(p workload.Profile) workload.Profile {
	if o.Scale > 0 && o.Scale != 1.0 {
		n := int(float64(p.Iterations) * o.Scale)
		if n < 8 {
			n = 8
		}
		p.Iterations = n
	}
	return p
}

// BenchmarkRun holds the three per-type simulation results for one
// benchmark, the unit of data behind Table 3 and Fig. 11.
type BenchmarkRun struct {
	Profile workload.Profile
	// Variant is the wsq replacement variant (none for the Table 3 set).
	Variant workload.Replacement
	// Name is the trace name ("bayes", "wsq-mst_rr", ...).
	Name string
	// ByType maps each RMW atomicity type to its simulation result.
	ByType map[core.AtomicityType]*sim.Result
}

// Result returns the run for one RMW type.
func (b *BenchmarkRun) Result(t core.AtomicityType) *sim.Result { return b.ByType[t] }

// runBenchmark simulates one profile (with optional replacement variant)
// under the given RMW types. By default each run pulls its trace lazily
// from the generator (bounded memory); with Options.Materialize the trace
// is built once up front and shared read-only across the types.
func runBenchmark(o Options, p workload.Profile, variant workload.Replacement, types []core.AtomicityType) (*BenchmarkRun, error) {
	gen := workload.Generator{Cores: o.Cores, Seed: o.Seed, Replacement: variant}
	src, err := gen.Source(o.scaled(p))
	if err != nil {
		return nil, err
	}
	var trace sim.TraceSource = src
	if o.Materialize {
		trace = sim.Materialize(src).Source()
	}
	run := &BenchmarkRun{Profile: p, Variant: variant, Name: src.Name(), ByType: map[core.AtomicityType]*sim.Result{}}
	for _, t := range types {
		s, err := sim.New(o.baseConfig().WithRMWType(t))
		if err != nil {
			return nil, err
		}
		res, err := s.RunSource(trace)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s under %s: %w", src.Name(), t, err)
		}
		if res.Deadlocked {
			return nil, fmt.Errorf("experiments: %s under %s deadlocked", src.Name(), t)
		}
		run.ByType[t] = res
	}
	return run, nil
}

// BenchmarkSpec describes one benchmark of the evaluation: the profile,
// its replacement variant and the RMW types it runs under. The spec
// lists below are the single source of truth for both the sequential
// harness here and the parallel sweeps in pkg/rmwtso.
type BenchmarkSpec struct {
	Profile workload.Profile
	Variant workload.Replacement
	Types   []core.AtomicityType
}

// Table3Specs lists the seven Table 3 benchmarks, each run under all
// three RMW types.
func Table3Specs() []BenchmarkSpec {
	var out []BenchmarkSpec
	for _, p := range workload.Table3Profiles() {
		out = append(out, BenchmarkSpec{Profile: p, Variant: workload.NoReplacement, Types: core.AllTypes()})
	}
	return out
}

// Cpp11Specs lists the wsq-mst C/C++11 variants: write replacement
// (wsq-mst_wr) under type-1 and type-2, and read replacement
// (wsq-mst_rr) under all three types -- type-3 RMWs cannot be used for
// write replacement (§2.5), so that combination is intentionally absent.
func Cpp11Specs() []BenchmarkSpec {
	wsq := workload.WSQProfile()
	return []BenchmarkSpec{
		{Profile: wsq, Variant: workload.WriteReplacement, Types: []core.AtomicityType{core.Type1, core.Type2}},
		{Profile: wsq, Variant: workload.ReadReplacement, Types: core.AllTypes()},
	}
}

// runSpecs simulates each spec sequentially.
func runSpecs(o Options, specs []BenchmarkSpec) ([]*BenchmarkRun, error) {
	var out []*BenchmarkRun
	for _, s := range specs {
		run, err := runBenchmark(o, s.Profile, s.Variant, s.Types)
		if err != nil {
			return nil, err
		}
		out = append(out, run)
	}
	return out, nil
}

// RunTable3Benchmarks simulates the seven Table 3 benchmarks under all
// three RMW types. The result feeds Table 3 and Fig. 11(a)/(b).
func RunTable3Benchmarks(o Options) ([]*BenchmarkRun, error) {
	return runSpecs(o, Table3Specs())
}

// RunCpp11Benchmarks simulates the wsq-mst C/C++11 variants of
// Cpp11Specs.
func RunCpp11Benchmarks(o Options) ([]*BenchmarkRun, error) {
	return runSpecs(o, Cpp11Specs())
}
