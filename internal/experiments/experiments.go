// Package experiments regenerates every table and figure of the paper's
// evaluation:
//
//   - Table 1: which RMW atomicity type supports which synchronization
//     idiom (model checking of the litmus suite plus the C/C++11 mapping
//     validation);
//   - Table 2: the architectural parameters of the simulated platform;
//   - Table 3: benchmark characteristics (RMW density, unique RMWs,
//     write-buffer drains for type-2/3, broadcast rate);
//   - Table 4: the C/C++11-to-x86 mappings and their soundness per RMW
//     type;
//   - Fig. 11(a): the per-RMW cost split into write-buffer and Ra/Wa
//     components for type-1/2/3;
//   - Fig. 11(b): the execution-time overhead of RMWs per benchmark and
//     RMW type;
//   - the headline summary (cost reductions and overall speedups).
//
// Absolute cycle counts differ from the paper (the substrate is the
// simulator of internal/sim, not the authors' GEM5 testbed), but the shapes
// the paper reports -- who wins, by roughly what factor, and where the
// benefits concentrate -- are reproduced. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Cores is the number of simulated cores (the paper uses 32).
	Cores int
	// Scale multiplies each benchmark's iteration count; values below 1
	// shrink runs for quick smoke tests and benchmarks.
	Scale float64
	// Seed drives the workload generators.
	Seed int64
	// Config overrides the base architectural parameters; the RMW type is
	// set per run by the harness.
	Config *sim.Config
	// Materialize pre-builds each benchmark's whole trace in memory and
	// shares the slices across the per-type runs (the pre-streaming
	// behavior). The default, false, streams each run's trace lazily from
	// the workload generator at O(episode) memory per core — the right
	// choice for paper-scale and larger sweeps, whose traces dwarf the
	// episode window. Both paths produce identical results; the streamed
	// one regenerates ops per run instead of holding them.
	Materialize bool
	// EnumWorkers is how many goroutines each litmus verdict and mapping
	// validation of the semantics experiments (Tables 1 and 4) fans its
	// candidate enumeration across. The default, 0, picks per program via
	// the candidate-count heuristic: GOMAXPROCS for IRIW-class programs,
	// 1 for small ones. The verdicts are identical at any setting.
	EnumWorkers int
	// Cache, when non-nil, is consulted before every simulator run and
	// stores the result of every fresh one: a run is a pure function of
	// (config, trace, seed, scale, RMW type), so hits replay the stored
	// sim.Result instead of simulating. Cached and fresh runs produce
	// identical tables.
	Cache *simcache.Cache
	// CacheDir, when Cache is nil and CacheDir is non-empty, enables
	// caching through a disk-backed cache rooted at this directory
	// (opened per harness call; the disk tier is what persists across
	// calls and processes).
	CacheDir string
}

// DefaultOptions reproduce the paper's setup (32 cores, full workloads).
func DefaultOptions() Options {
	return Options{Cores: 32, Scale: 1.0, Seed: 20130601}
}

// QuickOptions shrink the runs for tests and `go test -bench`: fewer cores
// and shorter workloads, same structure.
func QuickOptions() Options {
	return Options{Cores: 8, Scale: 0.25, Seed: 20130601}
}

// BaseConfig returns the architectural configuration the options describe
// (Table 2 plus any overrides); the RMW type is set per run by the harness.
func (o Options) BaseConfig() sim.Config {
	return o.baseConfig()
}

// baseConfig returns the architectural configuration for the options. A
// user-supplied Config with an unset (zero) RMW type is normalized to the
// default type before anything digests or validates it — the harness
// overrides the type per run anyway, and an unnormalized zero would make
// cache keys for invalid configurations collide.
func (o Options) baseConfig() sim.Config {
	var cfg sim.Config
	if o.Config != nil {
		cfg = *o.Config
	} else {
		cfg = sim.DefaultConfig()
	}
	if o.Cores > 0 {
		cfg = cfg.WithCores(o.Cores)
	}
	if cfg.RMWType == 0 {
		cfg.RMWType = sim.DefaultConfig().RMWType
	}
	return cfg
}

// Validate rejects option values that would otherwise flow as garbage
// into the workload generator, the candidate-enumeration heuristic, or —
// worst — into cache key digests: negative core counts, scale factors and
// worker counts, and an effective architectural configuration that fails
// sim.Config.Validate. Zero values stay legal (they mean "use the
// default"). Every harness entry point calls this before running.
func (o Options) Validate() error {
	switch {
	case o.Cores < 0:
		return fmt.Errorf("experiments: negative core count %d", o.Cores)
	case o.Scale < 0:
		return fmt.Errorf("experiments: negative workload scale %g", o.Scale)
	case o.EnumWorkers < 0:
		return fmt.Errorf("experiments: negative enumeration worker count %d", o.EnumWorkers)
	}
	if err := o.baseConfig().Validate(); err != nil {
		return err
	}
	return nil
}

// ResultCache resolves the options' cache: Options.Cache when set, a
// fresh disk-backed cache when only CacheDir is set, nil (caching
// disabled) otherwise.
func (o Options) ResultCache() (*simcache.Cache, error) {
	if o.Cache != nil {
		return o.Cache, nil
	}
	if o.CacheDir == "" {
		return nil, nil
	}
	return simcache.Open(simcache.WithDir(o.CacheDir))
}

// ScaledProfile returns a copy of the profile with its iteration count
// scaled by the options' Scale factor. Exported so external harnesses
// (pkg/rmwtso's parallel sweeps) apply exactly the same scaling rule.
func (o Options) ScaledProfile(p workload.Profile) workload.Profile { return o.scaled(p) }

// scaled returns a copy of the profile with its iteration count scaled.
func (o Options) scaled(p workload.Profile) workload.Profile {
	if o.Scale > 0 && o.Scale != 1.0 {
		n := int(float64(p.Iterations) * o.Scale)
		if n < 8 {
			n = 8
		}
		p.Iterations = n
	}
	return p
}

// BenchmarkRun holds the three per-type simulation results for one
// benchmark, the unit of data behind Table 3 and Fig. 11.
type BenchmarkRun struct {
	Profile workload.Profile
	// Variant is the wsq replacement variant (none for the Table 3 set).
	Variant workload.Replacement
	// Name is the trace name ("bayes", "wsq-mst_rr", ...).
	Name string
	// Seed is the workload seed the run was generated with. The trace
	// name does not embed the seed, so Seed — not Name — disambiguates
	// the runs of a multi-seed sweep; report builders group by
	// (Name, Variant, Seed).
	Seed int64
	// ByType maps each RMW atomicity type to its simulation result.
	ByType map[core.AtomicityType]*sim.Result
}

// Result returns the run for one RMW type.
func (b *BenchmarkRun) Result(t core.AtomicityType) *sim.Result { return b.ByType[t] }

// BenchmarkSpec describes one benchmark of the evaluation: the profile,
// its replacement variant and the RMW types it runs under. The spec
// lists below are the single source of truth for every sweep: the
// execution engine (internal/engine) enumerates them into plans; this
// package only describes the grid and renders its results.
type BenchmarkSpec struct {
	Profile workload.Profile
	Variant workload.Replacement
	Types   []core.AtomicityType
}

// Table3Specs lists the seven Table 3 benchmarks, each run under all
// three RMW types.
func Table3Specs() []BenchmarkSpec {
	var out []BenchmarkSpec
	for _, p := range workload.Table3Profiles() {
		out = append(out, BenchmarkSpec{Profile: p, Variant: workload.NoReplacement, Types: core.AllTypes()})
	}
	return out
}

// Cpp11Specs lists the wsq-mst C/C++11 variants: write replacement
// (wsq-mst_wr) under type-1 and type-2, and read replacement
// (wsq-mst_rr) under all three types -- type-3 RMWs cannot be used for
// write replacement (§2.5), so that combination is intentionally absent.
func Cpp11Specs() []BenchmarkSpec {
	wsq := workload.WSQProfile()
	return []BenchmarkSpec{
		{Profile: wsq, Variant: workload.WriteReplacement, Types: []core.AtomicityType{core.Type1, core.Type2}},
		{Profile: wsq, Variant: workload.ReadReplacement, Types: core.AllTypes()},
	}
}
