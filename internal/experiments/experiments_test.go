package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRunTable1MatchesPaper(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTable1Matches(rows); err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "type-1") || !strings.Contains(out, "type-3") {
		t.Errorf("Table 1 rendering incomplete:\n%s", out)
	}
}

func TestCheckTable1MatchesDetectsMismatch(t *testing.T) {
	rows := Table1Expected()
	rows[2].DekkerWrites = true // contradicts the paper
	if err := CheckTable1Matches(rows); err == nil {
		t.Error("mismatch not detected")
	}
	if err := CheckTable1Matches(rows[:2]); err == nil {
		t.Error("row-count mismatch not detected")
	}
}

func TestRenderTable2(t *testing.T) {
	out := RenderTable2(sim.DefaultConfig())
	for _, want := range []string{"32 core", "Write Buffer", "MOESI", "2D Mesh"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable4MatchesAppendix(t *testing.T) {
	rows, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table 4 validation has %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		wantSound := !(r.Mapping.String() == "write-mapping" && r.Atomicity == core.Type3)
		if r.Sound != wantSound {
			t.Errorf("%s under %s: sound=%v, want %v", r.Mapping, r.Atomicity, r.Sound, wantSound)
		}
		if !r.Sound && r.Counterexample == "" {
			t.Errorf("%s under %s: unsound without counterexample", r.Mapping, r.Atomicity)
		}
	}
	out := RenderTable4(rows)
	if !strings.Contains(out, "lock xadd(0)") || !strings.Contains(out, "lock xchg") {
		t.Errorf("Table 4 rendering missing instruction selection:\n%s", out)
	}
}

func TestOptionsHelpers(t *testing.T) {
	def := DefaultOptions()
	if def.Cores != 32 || def.Scale != 1.0 {
		t.Errorf("DefaultOptions = %+v", def)
	}
	quick := QuickOptions()
	if quick.Cores >= def.Cores || quick.Scale >= def.Scale {
		t.Error("QuickOptions should be smaller than DefaultOptions")
	}
	cfg := quick.baseConfig()
	if cfg.Cores != quick.Cores {
		t.Error("baseConfig did not apply the core count")
	}
	override := sim.DefaultConfig()
	override.MemLatencyCycles = 123
	quick.Config = &override
	if quick.baseConfig().MemLatencyCycles != 123 {
		t.Error("config override ignored")
	}
	p := workload.Table3Profiles()[0]
	scaled := quick.scaled(p)
	if scaled.Iterations >= p.Iterations || scaled.Iterations < 8 {
		t.Errorf("scaled iterations = %d", scaled.Iterations)
	}
	if (Options{Scale: 1.0}).scaled(p).Iterations != p.Iterations {
		t.Error("scale 1.0 should not change iterations")
	}
}

// testRuns simulates a reduced benchmark set once and reuses it across the
// Table 3 / Fig. 11 tests (full sweeps are exercised by the benchmarks and
// the experiments tool).
func testRuns(t *testing.T) []*BenchmarkRun {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short mode")
	}
	o := QuickOptions()
	o.Cores = 4
	o.Scale = 0.1
	runs, err := RunTable3Benchmarks(o)
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestTable3FromRuns(t *testing.T) {
	runs := testRuns(t)
	rows := Table3FromRuns(runs)
	if len(rows) != 7 {
		t.Fatalf("Table 3 has %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.RMWsPer1000 <= 0 {
			t.Errorf("%s: zero RMW density", r.Name)
		}
		if r.UniquePct <= 0 || r.UniquePct > 100 {
			t.Errorf("%s: unique%% = %.2f out of range", r.Name, r.UniquePct)
		}
		if r.DrainPct < 0 || r.DrainPct > 100 {
			t.Errorf("%s: drain%% out of range", r.Name)
		}
		// The density must be within a factor of two of the paper's value.
		ratio := r.RMWsPer1000 / r.PaperRMWsPer1000
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: measured density %.2f vs paper %.2f", r.Name, r.RMWsPer1000, r.PaperRMWsPer1000)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "radiosity") || !strings.Contains(out, "wsq-mst") {
		t.Errorf("Table 3 rendering incomplete:\n%s", out)
	}
}

func TestFig11FromRunsShapes(t *testing.T) {
	runs := testRuns(t)
	a, b := Fig11FromRuns(runs)
	if len(a) != len(runs) || len(b) != len(runs) {
		t.Fatal("entry counts wrong")
	}
	for _, e := range a {
		t1 := e.Total(core.Type1)
		t2 := e.Total(core.Type2)
		t3 := e.Total(core.Type3)
		if t1 <= 0 {
			t.Errorf("%s: type-1 RMW cost is zero", e.Benchmark)
		}
		// The paper's central shape: weak RMWs are cheaper, and the type-1
		// cost is dominated by (or at least includes) the write-buffer
		// drain while type-2/3 mostly avoid it.
		if t2 > t1 {
			t.Errorf("%s: type-2 cost %.1f exceeds type-1 cost %.1f", e.Benchmark, t2, t1)
		}
		if t3 > t1 {
			t.Errorf("%s: type-3 cost %.1f exceeds type-1 cost %.1f", e.Benchmark, t3, t1)
		}
		if e.WriteBuffer[core.Type1] <= 0 {
			t.Errorf("%s: type-1 write-buffer component is zero", e.Benchmark)
		}
		if e.WriteBuffer[core.Type2] > e.WriteBuffer[core.Type1] {
			t.Errorf("%s: type-2 write-buffer component exceeds type-1", e.Benchmark)
		}
	}
	for _, e := range b {
		if e.Overhead[core.Type1] < e.Overhead[core.Type2] {
			t.Errorf("%s: type-2 overhead %.2f%% exceeds type-1 %.2f%%",
				e.Benchmark, e.Overhead[core.Type2], e.Overhead[core.Type1])
		}
		// Low-RMW-density benchmarks sit at ~0% improvement (the paper calls
		// them "negligible"); allow sub-half-percent noise but no real
		// regression.
		if e.Speedup(core.Type2) < -0.5 {
			t.Errorf("%s: type-2 slows execution down by %.2f%%", e.Benchmark, -e.Speedup(core.Type2))
		}
	}
	outA := RenderFig11a(a)
	outB := RenderFig11b(b)
	if !strings.Contains(outA, "Fig. 11(a)") || !strings.Contains(outB, "Fig. 11(b)") {
		t.Error("figure renderings missing titles")
	}
	sum := Summarize(a, b)
	if sum.Type2CostReductionMax <= 0 {
		t.Error("summary shows no type-2 cost reduction")
	}
	if sum.AvgType1DrainShare <= 0 || sum.AvgType1DrainShare > 100 {
		t.Errorf("drain share %.1f out of range", sum.AvgType1DrainShare)
	}
	if !strings.Contains(sum.Render(), "paper") {
		t.Error("summary rendering should cite the paper's numbers")
	}
}

func TestRunCpp11Benchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short mode")
	}
	// The C/C++11 variants need a somewhat larger run than the other tests:
	// at very small scales the wsq-mst deque anchors never warm up and
	// cold-miss noise swamps the type-1 vs type-2 difference.
	o := QuickOptions()
	o.Cores = 8
	o.Scale = 0.25
	runs, err := RunCpp11Benchmarks(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d runs, want 2 (wr, rr)", len(runs))
	}
	wr, rr := runs[0], runs[1]
	if wr.Name != "wsq-mst_wr" || rr.Name != "wsq-mst_rr" {
		t.Fatalf("run names = %q, %q", wr.Name, rr.Name)
	}
	if _, ok := wr.ByType[core.Type3]; ok {
		t.Error("write replacement must not be run with type-3 RMWs (unsound per §2.5)")
	}
	if _, ok := rr.ByType[core.Type3]; !ok {
		t.Error("read replacement should include type-3")
	}
	// Weak RMWs should not lose to type-1 on either variant (allow 5%
	// noise at this reduced scale).
	for _, run := range runs {
		_, _, c1 := run.Result(core.Type1).AvgRMWCost()
		_, _, c2 := run.Result(core.Type2).AvgRMWCost()
		if c2 > c1*1.05 {
			t.Errorf("%s: type-2 RMW cost %.1f exceeds type-1 %.1f", run.Name, c2, c1)
		}
	}
	// Read replacement leaves more pending writes in front of each RMW than
	// write replacement, so its type-1 cost is at least as high (§4.2).
	_, _, wr1 := wr.Result(core.Type1).AvgRMWCost()
	_, _, rr1 := rr.Result(core.Type1).AvgRMWCost()
	if rr1 < wr1*0.9 {
		t.Errorf("read-replacement type-1 RMW cost %.1f should not be far below write-replacement %.1f", rr1, wr1)
	}
}
