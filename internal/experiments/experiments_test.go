package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRunTable1MatchesPaper(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTable1Matches(rows); err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "type-1") || !strings.Contains(out, "type-3") {
		t.Errorf("Table 1 rendering incomplete:\n%s", out)
	}
}

func TestCheckTable1MatchesDetectsMismatch(t *testing.T) {
	rows := Table1Expected()
	rows[2].DekkerWrites = true // contradicts the paper
	if err := CheckTable1Matches(rows); err == nil {
		t.Error("mismatch not detected")
	}
	if err := CheckTable1Matches(rows[:2]); err == nil {
		t.Error("row-count mismatch not detected")
	}
}

func TestRenderTable2(t *testing.T) {
	out := RenderTable2(sim.DefaultConfig())
	for _, want := range []string{"32 core", "Write Buffer", "MOESI", "2D Mesh"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable4MatchesAppendix(t *testing.T) {
	rows, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table 4 validation has %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		wantSound := !(r.Mapping.String() == "write-mapping" && r.Atomicity == core.Type3)
		if r.Sound != wantSound {
			t.Errorf("%s under %s: sound=%v, want %v", r.Mapping, r.Atomicity, r.Sound, wantSound)
		}
		if !r.Sound && r.Counterexample == "" {
			t.Errorf("%s under %s: unsound without counterexample", r.Mapping, r.Atomicity)
		}
	}
	out := RenderTable4(rows)
	if !strings.Contains(out, "lock xadd(0)") || !strings.Contains(out, "lock xchg") {
		t.Errorf("Table 4 rendering missing instruction selection:\n%s", out)
	}
}

func TestOptionsHelpers(t *testing.T) {
	def := DefaultOptions()
	if def.Cores != 32 || def.Scale != 1.0 {
		t.Errorf("DefaultOptions = %+v", def)
	}
	quick := QuickOptions()
	if quick.Cores >= def.Cores || quick.Scale >= def.Scale {
		t.Error("QuickOptions should be smaller than DefaultOptions")
	}
	cfg := quick.baseConfig()
	if cfg.Cores != quick.Cores {
		t.Error("baseConfig did not apply the core count")
	}
	override := sim.DefaultConfig()
	override.MemLatencyCycles = 123
	quick.Config = &override
	if quick.baseConfig().MemLatencyCycles != 123 {
		t.Error("config override ignored")
	}
	p := workload.Table3Profiles()[0]
	scaled := quick.scaled(p)
	if scaled.Iterations >= p.Iterations || scaled.Iterations < 8 {
		t.Errorf("scaled iterations = %d", scaled.Iterations)
	}
	if (Options{Scale: 1.0}).scaled(p).Iterations != p.Iterations {
		t.Error("scale 1.0 should not change iterations")
	}
}
