package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig11aEntry is one benchmark's bar group in Fig. 11(a): the average
// per-RMW cost split into write-buffer and Ra/Wa components, for each RMW
// type.
type Fig11aEntry struct {
	Benchmark string `json:"benchmark"`
	// WriteBuffer and RaWa are indexed by atomicity type (serialized with
	// the numeric type as the key: "1", "2", "3"). A type a benchmark
	// does not run under (write replacement has no type-3) is absent.
	WriteBuffer map[core.AtomicityType]float64 `json:"write_buffer"`
	RaWa        map[core.AtomicityType]float64 `json:"ra_wa"`
}

// Total returns the total average RMW cost for one type.
func (e Fig11aEntry) Total(t core.AtomicityType) float64 {
	return e.WriteBuffer[t] + e.RaWa[t]
}

// Fig11bEntry is one benchmark's bar group in Fig. 11(b): the share of
// execution time spent on RMWs, per RMW type.
type Fig11bEntry struct {
	Benchmark string                         `json:"benchmark"`
	Overhead  map[core.AtomicityType]float64 `json:"overhead"`
	// Cycles records the total execution time per type, from which the
	// headline end-to-end speedups are derived.
	Cycles map[core.AtomicityType]uint64 `json:"cycles"`
}

// Speedup returns the percentage reduction in execution time of the given
// type relative to type-1.
func (e Fig11bEntry) Speedup(t core.AtomicityType) float64 {
	base := float64(e.Cycles[core.Type1])
	if base == 0 {
		return 0
	}
	return stats.PercentReduction(base, float64(e.Cycles[t]))
}

// Fig11FromRuns derives the Fig. 11(a) and Fig. 11(b) data from benchmark
// runs (the Table 3 set plus the wsq-mst C/C++11 variants).
func Fig11FromRuns(runs []*BenchmarkRun) ([]Fig11aEntry, []Fig11bEntry) {
	var a []Fig11aEntry
	var b []Fig11bEntry
	for _, run := range runs {
		ae := Fig11aEntry{
			Benchmark:   run.Name,
			WriteBuffer: map[core.AtomicityType]float64{},
			RaWa:        map[core.AtomicityType]float64{},
		}
		be := Fig11bEntry{
			Benchmark: run.Name,
			Overhead:  map[core.AtomicityType]float64{},
			Cycles:    map[core.AtomicityType]uint64{},
		}
		for typ, res := range run.ByType {
			wb, rw, _ := res.AvgRMWCost()
			ae.WriteBuffer[typ] = wb
			ae.RaWa[typ] = rw
			be.Overhead[typ] = res.RMWOverheadPercent()
			be.Cycles[typ] = res.Cycles
		}
		a = append(a, ae)
		b = append(b, be)
	}
	return a, b
}

// RenderFig11a renders the Fig. 11(a) data as a table plus a bar chart of
// the total per-RMW cost; a thin wrapper over the Report model's ASCII
// section renderer.
func RenderFig11a(entries []Fig11aEntry) string { return asciiFig11a(entries) }

// RenderFig11b renders the Fig. 11(b) data; a thin wrapper over the
// Report model's ASCII section renderer.
func RenderFig11b(entries []Fig11bEntry) string { return asciiFig11b(entries) }

// Summary condenses the headline claims of the paper's abstract: the range
// of per-RMW cost reductions of type-2 and type-3 over type-1, the largest
// end-to-end improvement, and the average share of type-1 RMW cost spent on
// the write-buffer drain.
type Summary struct {
	Type2CostReductionMin float64 `json:"type2_cost_reduction_min"`
	Type2CostReductionMax float64 `json:"type2_cost_reduction_max"`
	Type3CostReductionMin float64 `json:"type3_cost_reduction_min"`
	Type3CostReductionMax float64 `json:"type3_cost_reduction_max"`
	MaxSpeedupType2       float64 `json:"max_speedup_type2"`
	MaxSpeedupType3       float64 `json:"max_speedup_type3"`
	AvgType1DrainShare    float64 `json:"avg_type1_drain_share"`
}

// Summarize derives the headline numbers from the Fig. 11 data.
func Summarize(a []Fig11aEntry, b []Fig11bEntry) Summary {
	s := Summary{
		Type2CostReductionMin: 100,
		Type3CostReductionMin: 100,
	}
	var drainShareSum float64
	var drainShareCount int
	var min2Seen, min3Seen bool
	for _, e := range a {
		t1 := e.Total(core.Type1)
		if t1 <= 0 {
			continue
		}
		r2 := stats.PercentReduction(t1, e.Total(core.Type2))
		min2Seen = true
		if r2 < s.Type2CostReductionMin {
			s.Type2CostReductionMin = r2
		}
		if r2 > s.Type2CostReductionMax {
			s.Type2CostReductionMax = r2
		}
		if t3, ok := e.RaWa[core.Type3]; ok && t3+e.WriteBuffer[core.Type3] > 0 {
			r3 := stats.PercentReduction(t1, e.Total(core.Type3))
			min3Seen = true
			if r3 < s.Type3CostReductionMin {
				s.Type3CostReductionMin = r3
			}
			if r3 > s.Type3CostReductionMax {
				s.Type3CostReductionMax = r3
			}
		}
		drainShareSum += 100 * e.WriteBuffer[core.Type1] / t1
		drainShareCount++
	}
	// With no contributing entries (an empty or fully dead-lettered
	// partial report) the sentinel minima would render as a bogus
	// "100.0%..0.0%" range; a zero-value summary is the honest rendering.
	if !min2Seen {
		s.Type2CostReductionMin = 0
	}
	if !min3Seen {
		s.Type3CostReductionMin = 0
	}
	if drainShareCount > 0 {
		s.AvgType1DrainShare = drainShareSum / float64(drainShareCount)
	}
	for _, e := range b {
		if v := e.Speedup(core.Type2); v > s.MaxSpeedupType2 {
			s.MaxSpeedupType2 = v
		}
		if _, ok := e.Cycles[core.Type3]; ok {
			if v := e.Speedup(core.Type3); v > s.MaxSpeedupType3 {
				s.MaxSpeedupType3 = v
			}
		}
	}
	return s
}

// Render renders the summary alongside the paper's headline numbers.
func (s Summary) Render() string {
	var b strings.Builder
	b.WriteString("Headline summary (measured vs paper):\n")
	fmt.Fprintf(&b, "  type-2 RMW cost reduction: %.1f%%..%.1f%% (paper: 38.6%%..58.9%%)\n",
		s.Type2CostReductionMin, s.Type2CostReductionMax)
	fmt.Fprintf(&b, "  type-3 RMW cost reduction: up to %.1f%% (paper: up to 64.3%%)\n",
		s.Type3CostReductionMax)
	fmt.Fprintf(&b, "  best end-to-end improvement, type-2: %.1f%% (paper: up to 9.0%%)\n", s.MaxSpeedupType2)
	fmt.Fprintf(&b, "  best end-to-end improvement, type-3: %.1f%% (paper: up to 9.2%%)\n", s.MaxSpeedupType3)
	fmt.Fprintf(&b, "  write-buffer share of type-1 RMW cost: %.1f%% (paper: 58.0%% on average)\n", s.AvgType1DrainShare)
	return b.String()
}
