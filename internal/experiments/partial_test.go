package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSummarizeEmptyIsZero pins the empty-report satellite fix: with no
// contributing entries (every unit dead-lettered, or an empty plan) the
// summary must be the zero value, not the internal "min starts at 100"
// sentinel leaking out as a bogus 100.0%..0.0% reduction range.
func TestSummarizeEmptyIsZero(t *testing.T) {
	if s := Summarize(nil, nil); s != (Summary{}) {
		t.Fatalf("Summarize(nil, nil) = %+v, want the zero Summary", s)
	}
	// Entries with no usable type-1 total contribute nothing either.
	dead := []Fig11aEntry{{Benchmark: "x",
		WriteBuffer: map[core.AtomicityType]float64{},
		RaWa:        map[core.AtomicityType]float64{}}}
	if s := Summarize(dead, nil); s != (Summary{}) {
		t.Fatalf("Summarize(no-type1-entries) = %+v, want the zero Summary", s)
	}
	render := Summarize(nil, nil).Render()
	if strings.Contains(render, "100.0%..0.0%") {
		t.Fatalf("empty summary still renders the sentinel range:\n%s", render)
	}
}

// TestBuildReportEmptyRuns pins the whole-report shape of a sweep whose
// every unit was dead-lettered: still a well-formed report — the model
// checking tables (which need no simulator runs) intact, the run-derived
// sections empty, the summary zero — never a panic or a sentinel-valued
// table.
func TestBuildReportEmptyRuns(t *testing.T) {
	rep, err := BuildReport(Options{Cores: 4, Scale: 0.05}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table3) != 0 || len(rep.Fig11a) != 0 || len(rep.Fig11b) != 0 {
		t.Fatalf("run-derived sections non-empty: table3=%d fig11a=%d fig11b=%d",
			len(rep.Table3), len(rep.Fig11a), len(rep.Fig11b))
	}
	if rep.Summary != (Summary{}) {
		t.Fatalf("summary %+v, want zero", rep.Summary)
	}
	if len(rep.Table1) == 0 || len(rep.Table4) == 0 {
		t.Fatal("model-checked tables missing from the empty-runs report")
	}
	// The report must render without panicking in every format.
	for _, format := range Formats() {
		enc, err := NewEncoder(format)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := enc.Encode(&buf, rep); err != nil {
			t.Fatalf("%s encoding of the empty-runs report: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s encoding rendered nothing", format)
		}
	}
}
