package experiments

import (
	"fmt"
	"io"

	"repro/internal/workload"
)

// ReportSchemaVersion versions the serialized Report model (and with it
// the JSON and CSV encodings). Consumers must reject reports of a schema
// they do not understand instead of misreading renamed fields.
const ReportSchemaVersion = 1

// Report is the typed, serializable model of the paper's full evaluation:
// Tables 1-4, Fig. 11(a)/(b) and the headline summary. It is what every
// encoder (ASCII, JSON, CSV) renders and what MergeShards reconstructs
// from shard artifacts — a merged report is deeply equal to an unsharded
// run's, so every encoding of it is byte-identical too.
type Report struct {
	// SchemaVersion is ReportSchemaVersion at build time.
	SchemaVersion int `json:"schema_version"`
	// Cores and Scale record the run shape the report was built from.
	Cores int     `json:"cores"`
	Scale float64 `json:"scale"`
	// Seed is the workload generation seed of the simulation sweep.
	Seed int64 `json:"seed"`
	// Table1 is the idiom-support matrix; Table1Matches records whether it
	// reproduces the paper's table exactly.
	Table1        []Table1Row `json:"table1"`
	Table1Matches bool        `json:"table1_matches_paper"`
	// Table2 is the architectural parameter listing (component, setting).
	Table2 [][2]string `json:"table2"`
	// Table3 is the benchmark-characteristics table.
	Table3 []Table3Row `json:"table3"`
	// Table4 is the mapping-soundness matrix.
	Table4 []Table4Row `json:"table4"`
	// Fig11a and Fig11b are the per-RMW cost split and execution-time
	// overhead figures.
	Fig11a []Fig11aEntry `json:"fig11a"`
	Fig11b []Fig11bEntry `json:"fig11b"`
	// Summary is the headline summary derived from the figures.
	Summary Summary `json:"summary"`
	// SeedStats, for multi-seed sweeps, holds the cross-seed mean/CI
	// statistics per (benchmark, RMW type). It is nil — and omitted from
	// every encoding — for single-seed sweeps, preserving byte-identity
	// with pre-aggregation reports.
	SeedStats []SeedAggregate `json:"seed_stats,omitempty"`
	// Coordination, when the simulation sweep ran under the dynamic
	// coordinator, records how the units were distributed (per-worker
	// counts, retries, dead letters). It is nil for static runs, and
	// being execution metadata it is excluded from byte-identity
	// comparisons of the result tables.
	Coordination *Coordination `json:"coordination,omitempty"`
}

// BuildReport assembles the full evaluation report from finished
// benchmark runs: the semantics results (Tables 1 and 4) are model
// checked locally — they are exact, fast and identical on every machine —
// while the simulation sections (Table 3, Fig. 11, summary) derive from
// the runs, which may come from a local sweep or from merged shard
// artifacts. Table 3 is computed over the non-replacement runs (the
// Table 3 benchmark set); Fig. 11 covers every run.
//
// Multi-seed sweeps (runs carrying more than one distinct
// BenchmarkRun.Seed) build the per-seed sections from the base seed's
// runs — o.Seed, matching the report's stamped Seed — and additionally
// derive the cross-seed mean/CI statistics (SeedStats) over all runs.
func BuildReport(o Options, runs []*BenchmarkRun) (*Report, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	t1, err := RunTable1Opts(o)
	if err != nil {
		return nil, err
	}
	t4, err := RunTable4Opts(o)
	if err != nil {
		return nil, err
	}
	seedStats := AggregateSeeds(runs)
	baseRuns := runs
	if len(seedStats) > 0 {
		baseRuns = nil
		for _, run := range runs {
			if run.Seed == o.Seed {
				baseRuns = append(baseRuns, run)
			}
		}
	}
	var table3Runs []*BenchmarkRun
	for _, run := range baseRuns {
		if run.Variant == workload.NoReplacement {
			table3Runs = append(table3Runs, run)
		}
	}
	figA, figB := Fig11FromRuns(baseRuns)
	cfg := o.BaseConfig()
	return &Report{
		SchemaVersion: ReportSchemaVersion,
		Cores:         cfg.Cores,
		Scale:         normalizedScale(o.Scale),
		Seed:          o.Seed,
		Table1:        t1,
		Table1Matches: CheckTable1Matches(t1) == nil,
		Table2:        cfg.Table2(),
		Table3:        Table3FromRuns(table3Runs),
		Table4:        t4,
		Fig11a:        figA,
		Fig11b:        figB,
		Summary:       Summarize(figA, figB),
		SeedStats:     seedStats,
	}, nil
}

// normalizedScale maps the "unset" scale spellings (zero and negative,
// which the generator treats as no scaling) to the canonical 1, matching
// the cache-key normalization so a report and its units agree.
func normalizedScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// Encoder renders a Report to a writer in one output format. Encodings
// are deterministic: equal reports produce byte-identical output.
type Encoder interface {
	Encode(w io.Writer, r *Report) error
}

// Output format names accepted by NewEncoder (and the binaries' -format
// flag).
const (
	FormatASCII = "ascii"
	FormatJSON  = "json"
	FormatCSV   = "csv"
)

// Formats lists the supported report output formats.
func Formats() []string { return []string{FormatASCII, FormatJSON, FormatCSV} }

// NewEncoder returns the encoder for a format name.
func NewEncoder(format string) (Encoder, error) {
	switch format {
	case FormatASCII:
		return ASCIIEncoder{}, nil
	case FormatJSON:
		return JSONEncoder{}, nil
	case FormatCSV:
		return CSVEncoder{}, nil
	}
	return nil, fmt.Errorf("experiments: unknown report format %q (want ascii, json or csv)", format)
}
