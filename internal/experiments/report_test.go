package experiments

import (
	"testing"
)

// TestNewEncoder covers format resolution.
func TestNewEncoder(t *testing.T) {
	for _, f := range Formats() {
		if _, err := NewEncoder(f); err != nil {
			t.Errorf("NewEncoder(%q): %v", f, err)
		}
	}
	if _, err := NewEncoder("xml"); err == nil {
		t.Error("NewEncoder accepted an unknown format")
	}
}
