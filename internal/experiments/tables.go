package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpp11"
	"repro/internal/litmus"
	"repro/internal/sim"
)

// Table1Row is one row of the paper's Table 1: the synchronization idioms
// one atomicity type supports.
type Table1Row struct {
	Atomicity core.AtomicityType `json:"atomicity"`
	// DekkerReads: Dekker's with reads replaced by RMWs works.
	DekkerReads bool `json:"dekker_reads"`
	// DekkerWrites: Dekker's with writes replaced by RMWs works.
	DekkerWrites bool `json:"dekker_writes"`
	// RMWAsBarrier: an RMW to an unrelated address orders like mfence.
	RMWAsBarrier bool `json:"rmw_as_barrier"`
	// CppReadReplacement: C/C++11 is implementable by mapping SC-atomic
	// reads to RMWs.
	CppReadReplacement bool `json:"cpp_read_replacement"`
	// CppWriteReplacement: C/C++11 is implementable by mapping SC-atomic
	// writes to RMWs.
	CppWriteReplacement bool `json:"cpp_write_replacement"`
}

// RunTable1 regenerates Table 1 by model checking the paper's litmus tests
// (Dekker variants) and validating the C/C++11 mappings.
func RunTable1() ([]Table1Row, error) {
	return RunTable1Opts(DefaultOptions())
}

// RunTable1Opts is RunTable1 honouring the options' EnumWorkers: each
// verdict's candidate enumeration is fanned across that many goroutines
// (0 picks the per-program candidate-count heuristic). The rows are
// identical at any setting.
func RunTable1Opts(o Options) ([]Table1Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	ctx := context.Background()
	var rows []Table1Row
	readRep := litmus.DekkerReadReplacement()
	writeRep := litmus.DekkerWriteReplacement()
	barrier := litmus.DekkerRMWBarrierDifferentAddr()
	scSB := cpp11.SCStoreBuffering()

	for _, typ := range core.AllTypes() {
		row := Table1Row{Atomicity: typ}

		// An idiom "works" when the mutual-exclusion-failure outcome is
		// forbidden (the litmus condition does NOT hold).
		r, err := readRep.RunParallel(ctx, typ, o.EnumWorkers)
		if err != nil {
			return nil, err
		}
		row.DekkerReads = !r.Holds

		w, err := writeRep.RunParallel(ctx, typ, o.EnumWorkers)
		if err != nil {
			return nil, err
		}
		row.DekkerWrites = !w.Holds

		b, err := barrier.RunParallel(ctx, typ, o.EnumWorkers)
		if err != nil {
			return nil, err
		}
		row.RMWAsBarrier = !b.Holds

		rm, err := cpp11.ValidateMappingParallel(ctx, scSB, cpp11.ReadMapping, typ, o.EnumWorkers)
		if err != nil {
			return nil, err
		}
		row.CppReadReplacement = rm.Sound

		wm, err := cpp11.ValidateMappingParallel(ctx, scSB, cpp11.WriteMapping, typ, o.EnumWorkers)
		if err != nil {
			return nil, err
		}
		row.CppWriteReplacement = wm.Sound

		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Expected returns the paper's Table 1 for comparison.
func Table1Expected() []Table1Row {
	return []Table1Row{
		{Atomicity: core.Type1, DekkerReads: true, DekkerWrites: true, RMWAsBarrier: true, CppReadReplacement: true, CppWriteReplacement: true},
		{Atomicity: core.Type2, DekkerReads: true, DekkerWrites: true, RMWAsBarrier: false, CppReadReplacement: true, CppWriteReplacement: true},
		{Atomicity: core.Type3, DekkerReads: true, DekkerWrites: false, RMWAsBarrier: false, CppReadReplacement: true, CppWriteReplacement: false},
	}
}

// RenderTable1 renders Table 1 rows in the paper's layout; it is a thin
// wrapper over the Report model's ASCII section renderer.
func RenderTable1(rows []Table1Row) string { return asciiTable1(rows) }

// RenderTable2 renders the architectural parameters (Table 2).
func RenderTable2(cfg sim.Config) string { return asciiTable2(cfg.Table2()) }

// Table3Row is one row of Table 3: per-benchmark characteristics.
type Table3Row struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	Size  string `json:"size"`
	// RMWsPer1000 is the measured RMW density; PaperRMWsPer1000 is the
	// value the paper reports.
	RMWsPer1000      float64 `json:"rmws_per_1000"`
	PaperRMWsPer1000 float64 `json:"paper_rmws_per_1000"`
	// UniquePct is the measured fraction of RMWs to unique lines.
	UniquePct      float64 `json:"unique_pct"`
	PaperUniquePct float64 `json:"paper_unique_pct"`
	// DrainPct is the measured fraction of type-2/3 RMWs that reverted to
	// a write-buffer drain.
	DrainPct float64 `json:"drain_pct"`
	// BroadcastsPer100 is the measured addr-list broadcast rate.
	BroadcastsPer100 float64 `json:"broadcasts_per_100"`
}

// Table3FromRuns derives Table 3 from the benchmark runs: the density and
// unique fraction are structural (identical across types); the drain and
// broadcast rates come from the type-2 runs.
func Table3FromRuns(runs []*BenchmarkRun) []Table3Row {
	var rows []Table3Row
	for _, run := range runs {
		t2 := run.Result(core.Type2)
		if t2 == nil {
			// A partial report's surviving groups always carry every type,
			// but guard anyway: a row built from a nil result would panic.
			continue
		}
		rows = append(rows, Table3Row{
			Name:             run.Name,
			Suite:            run.Profile.Suite,
			Size:             run.Profile.ProblemSize,
			RMWsPer1000:      t2.RMWsPer1000MemOps(),
			PaperRMWsPer1000: run.Profile.PaperRMWsPer1000,
			UniquePct:        t2.UniqueRMWPercent(),
			PaperUniquePct:   run.Profile.PaperUniquePct,
			DrainPct:         t2.RevertPercent(),
			BroadcastsPer100: t2.BroadcastsPer100RMWs(),
		})
	}
	return rows
}

// RenderTable3 renders Table 3 rows, including the paper's reference
// values for the structural columns; a thin wrapper over the Report
// model's ASCII section renderer.
func RenderTable3(rows []Table3Row) string { return asciiTable3(rows) }

// Table4Row is one row of the Table 4 mapping validation: which mappings
// are sound under which RMW type, checked on the SC store-buffering
// program.
type Table4Row struct {
	Mapping   cpp11.Mapping      `json:"mapping"`
	Atomicity core.AtomicityType `json:"atomicity"`
	Sound     bool               `json:"sound"`
	// Counterexample is the first forbidden outcome that the compiled
	// program allows, for unsound combinations.
	Counterexample string `json:"counterexample,omitempty"`
}

// RunTable4 validates every Table 4 mapping under every RMW type.
func RunTable4() ([]Table4Row, error) {
	return RunTable4Opts(DefaultOptions())
}

// RunTable4Opts is RunTable4 honouring the options' EnumWorkers, like
// RunTable1Opts.
func RunTable4Opts(o Options) ([]Table4Row, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	ctx := context.Background()
	var rows []Table4Row
	p := cpp11.SCStoreBuffering()
	for _, m := range cpp11.AllMappings() {
		for _, typ := range core.AllTypes() {
			res, err := cpp11.ValidateMappingParallel(ctx, p, m, typ, o.EnumWorkers)
			if err != nil {
				return nil, err
			}
			row := Table4Row{Mapping: m, Atomicity: typ, Sound: res.Sound}
			if len(res.Counterexamples) > 0 {
				row.Counterexample = res.Counterexamples[0]
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable4 renders the mapping-validation matrix together with the
// instruction selection of each mapping; a thin wrapper over the Report
// model's ASCII section renderer.
func RenderTable4(rows []Table4Row) string { return asciiTable4(rows) }

// CheckTable1Matches compares generated Table 1 rows against the paper's
// and returns an error describing the first mismatch, if any.
func CheckTable1Matches(got []Table1Row) error {
	want := Table1Expected()
	if len(got) != len(want) {
		return fmt.Errorf("experiments: Table 1 has %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("experiments: Table 1 row for %s is %+v, paper says %+v",
				want[i].Atomicity, got[i], want[i])
		}
	}
	return nil
}
