package litmus

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the litmus parser. The parser must
// never panic; when it accepts an input, the parsed test must survive the
// format cycle: Format output re-parses, and re-formatting the re-parse
// reproduces the text byte for byte (Format renames locations
// canonically, which makes its output a fixed point of parse→format).
//
// The seed corpus is every registered test rendered through Format, plus
// hand-written sources covering each syntactic form and the error paths.
func FuzzParse(f *testing.F) {
	for _, t := range AllTests() {
		f.Add(Format(t))
	}
	seeds := []string{
		sampleSource,
		"name: t\nthread P0:\n  r0 = load x\nexists (P0:r0=0)\n",
		"name: t\ninit: x=1 y=-2\nthread P0:\n  store x, 3\n  mfence\n  r0 = xadd y, 0\nforall (x=3)\n",
		"name: t\nthread P0:\n  r0 = tas l\n~exists (P0:r0=1 /\\ l=1)\n",
		"name: t\ndoc: d\nthread P0:\n  r0 = xchg x, 5\nexists (x=5)\n",
		"# only a comment",
		"name: missing-everything",
		"thread P0:\n  store x, 1\n",
		"name: t\nthread P1:\n  r0 = load x\nexists (P1:r0=0)\n",
		"name: t\nthread P0:\n  frobnicate x\nexists (x=0)\n",
		"name: t\ninit: w=5\nthread P0:\n  store q, 1\nexists (q=1)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		test, err := Parse(src)
		if err != nil {
			return // rejected inputs just must not panic
		}
		first := Format(test)
		reparsed, err := Parse(first)
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\ninput:\n%s\nformatted:\n%s", err, src, first)
		}
		second := Format(reparsed)
		if first != second {
			t.Fatalf("parse→format round trip is not stable:\ninput:\n%s\nfirst:\n%s\nsecond:\n%s", src, first, second)
		}
		if reparsed.Name != test.Name {
			t.Fatalf("round trip changed the test name: %q -> %q", test.Name, reparsed.Name)
		}
		if len(reparsed.Program.Threads) != len(test.Program.Threads) {
			t.Fatalf("round trip changed the thread count: %d -> %d",
				len(test.Program.Threads), len(reparsed.Program.Threads))
		}
		for ti := range test.Program.Threads {
			if len(reparsed.Program.Threads[ti]) != len(test.Program.Threads[ti]) {
				t.Fatalf("round trip changed thread %d's instruction count", ti)
			}
		}
		if len(reparsed.Cond.Terms) != len(test.Cond.Terms) ||
			reparsed.Cond.Quantifier != test.Cond.Quantifier {
			t.Fatalf("round trip changed the condition: %v -> %v", test.Cond, reparsed.Cond)
		}
	})
}

// TestFormatIsParseFixedPoint pins the fixed-point property on the
// registry without fuzzing, so a plain `go test` also covers it — in
// particular for programs whose locations are not numbered in appearance
// order, which Format canonicalizes.
func TestFormatIsParseFixedPoint(t *testing.T) {
	for _, tst := range AllTests() {
		first := Format(tst)
		reparsed, err := Parse(first)
		if err != nil {
			t.Fatalf("%s: Format output does not re-parse: %v\n%s", tst.Name, err, first)
		}
		second := Format(reparsed)
		if first != second {
			t.Fatalf("%s: parse→format not stable:\n--- first\n%s\n--- second\n%s", tst.Name, first, second)
		}
		if !strings.Contains(first, "name: ") {
			t.Fatalf("%s: formatted test lost its name line:\n%s", tst.Name, first)
		}
	}
}
