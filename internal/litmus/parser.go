package litmus

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/memmodel"
)

// Parse reads a litmus test from its textual representation. The format is
// a small, line-oriented dialect:
//
//	name: dekker-write-replacement
//	# comments start with '#'
//	init: x=0 y=0
//	thread P0:
//	  a0 = xchg x, 1
//	  r0 = load y
//	thread P1:
//	  a1 = xchg y, 1
//	  r1 = load x
//	exists (P0:r0=0 /\ P1:r1=0)
//
// Supported instructions:
//
//	store <loc>, <val>        plain store
//	<reg> = load <loc>        plain load
//	mfence                    full barrier
//	<reg> = xchg <loc>, <val> atomic exchange (RMW)
//	<reg> = xadd <loc>, <val> atomic fetch-and-add (RMW)
//	<reg> = tas <loc>         atomic test-and-set (RMW)
//
// Locations are symbolic names; they are numbered in order of first
// appearance, so using x, y, z, ... matches the package's address naming.
// The final line is the condition: exists, ~exists or forall over a
// conjunction of "P<tid>:<reg>=<val>" register terms and "<loc>=<val>"
// final-memory terms.
func Parse(src string) (*Test, error) {
	p := &parser{
		test:    &Test{Program: memmodel.NewProgram("")},
		addrs:   map[string]memmodel.Addr{},
		current: -1,
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("litmus: line %d: %w", lineNo+1, err)
		}
	}
	if p.test.Name == "" {
		return nil, fmt.Errorf("litmus: missing name")
	}
	if len(p.test.Program.Threads) == 0 {
		return nil, fmt.Errorf("litmus: no threads")
	}
	if !p.haveCond {
		return nil, fmt.Errorf("litmus: missing final condition")
	}
	if err := p.test.Program.Validate(); err != nil {
		return nil, err
	}
	return p.test, nil
}

type parser struct {
	test     *Test
	addrs    map[string]memmodel.Addr
	current  int // index of the thread being filled, -1 before the first
	haveCond bool
}

func (p *parser) addr(name string) memmodel.Addr {
	if a, ok := p.addrs[name]; ok {
		return a
	}
	a := memmodel.Addr(len(p.addrs))
	p.addrs[name] = a
	return a
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "name:"):
		p.test.Name = strings.TrimSpace(strings.TrimPrefix(line, "name:"))
		p.test.Program.Name = p.test.Name
		return nil
	case strings.HasPrefix(line, "doc:"):
		p.test.Doc = strings.TrimSpace(strings.TrimPrefix(line, "doc:"))
		return nil
	case strings.HasPrefix(line, "init:"):
		return p.parseInit(strings.TrimSpace(strings.TrimPrefix(line, "init:")))
	case strings.HasPrefix(line, "thread"):
		return p.parseThreadHeader(line)
	case strings.HasPrefix(line, "exists") || strings.HasPrefix(line, "~exists") || strings.HasPrefix(line, "forall"):
		return p.parseCondition(line)
	default:
		return p.parseInstr(line)
	}
}

func (p *parser) parseInit(rest string) error {
	for _, field := range strings.Fields(rest) {
		name, val, err := splitAssign(field)
		if err != nil {
			return err
		}
		p.test.Program.SetInit(p.addr(name), memmodel.Value(val))
	}
	return nil
}

func (p *parser) parseThreadHeader(line string) error {
	// "thread P0:" — the numbering must be sequential.
	rest := strings.TrimSpace(strings.TrimPrefix(line, "thread"))
	rest = strings.TrimSuffix(rest, ":")
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "P") {
		return fmt.Errorf("bad thread header %q (want \"thread P<n>:\")", line)
	}
	n, err := strconv.Atoi(rest[1:])
	if err != nil {
		return fmt.Errorf("bad thread number in %q: %v", line, err)
	}
	if n != len(p.test.Program.Threads) {
		return fmt.Errorf("thread P%d declared out of order (expected P%d)", n, len(p.test.Program.Threads))
	}
	p.test.Program.Threads = append(p.test.Program.Threads, memmodel.Thread{})
	p.current = n
	return nil
}

func (p *parser) appendInstr(in memmodel.Instr) error {
	if p.current < 0 {
		return fmt.Errorf("instruction before any thread header")
	}
	p.test.Program.Threads[p.current] = append(p.test.Program.Threads[p.current], in)
	return nil
}

func (p *parser) parseInstr(line string) error {
	if line == "mfence" {
		return p.appendInstr(memmodel.Fence())
	}
	if strings.HasPrefix(line, "store") {
		rest := strings.TrimSpace(strings.TrimPrefix(line, "store"))
		loc, val, err := splitLocVal(rest)
		if err != nil {
			return fmt.Errorf("bad store %q: %v", line, err)
		}
		return p.appendInstr(memmodel.Write(p.addr(loc), memmodel.Value(val)))
	}
	// Remaining forms are "<reg> = <op> ...".
	eq := strings.SplitN(line, "=", 2)
	if len(eq) != 2 {
		return fmt.Errorf("unrecognised instruction %q", line)
	}
	reg := strings.TrimSpace(eq[0])
	rhs := strings.TrimSpace(eq[1])
	switch {
	case strings.HasPrefix(rhs, "load"):
		loc := strings.TrimSpace(strings.TrimPrefix(rhs, "load"))
		if loc == "" {
			return fmt.Errorf("load without location in %q", line)
		}
		return p.appendInstr(memmodel.Read(p.addr(loc), reg))
	case strings.HasPrefix(rhs, "xchg"):
		loc, val, err := splitLocVal(strings.TrimSpace(strings.TrimPrefix(rhs, "xchg")))
		if err != nil {
			return fmt.Errorf("bad xchg %q: %v", line, err)
		}
		return p.appendInstr(memmodel.Exchange(p.addr(loc), reg, memmodel.Value(val)))
	case strings.HasPrefix(rhs, "xadd"):
		loc, val, err := splitLocVal(strings.TrimSpace(strings.TrimPrefix(rhs, "xadd")))
		if err != nil {
			return fmt.Errorf("bad xadd %q: %v", line, err)
		}
		return p.appendInstr(memmodel.FetchAdd(p.addr(loc), reg, memmodel.Value(val)))
	case strings.HasPrefix(rhs, "tas"):
		loc := strings.TrimSpace(strings.TrimPrefix(rhs, "tas"))
		if loc == "" {
			return fmt.Errorf("tas without location in %q", line)
		}
		return p.appendInstr(memmodel.TestAndSet(p.addr(loc), reg))
	default:
		return fmt.Errorf("unrecognised instruction %q", line)
	}
}

func (p *parser) parseCondition(line string) error {
	if p.haveCond {
		return fmt.Errorf("duplicate condition")
	}
	var q Quantifier
	var rest string
	switch {
	case strings.HasPrefix(line, "~exists"):
		q = NotExists
		rest = strings.TrimPrefix(line, "~exists")
	case strings.HasPrefix(line, "exists"):
		q = Exists
		rest = strings.TrimPrefix(line, "exists")
	case strings.HasPrefix(line, "forall"):
		q = Forall
		rest = strings.TrimPrefix(line, "forall")
	default:
		return fmt.Errorf("bad condition %q", line)
	}
	rest = strings.TrimSpace(rest)
	rest = strings.TrimPrefix(rest, "(")
	rest = strings.TrimSuffix(rest, ")")
	var terms []Term
	for _, part := range strings.Split(rest, "/\\") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		term, err := p.parseTerm(part)
		if err != nil {
			return err
		}
		terms = append(terms, term)
	}
	if len(terms) == 0 {
		return fmt.Errorf("condition %q has no terms", line)
	}
	p.test.Cond = Condition{Quantifier: q, Terms: terms}
	p.haveCond = true
	return nil
}

func (p *parser) parseTerm(s string) (Term, error) {
	// Register terms look like "P0:r0=1"; memory terms like "x=1".
	if strings.HasPrefix(s, "P") && strings.Contains(s, ":") {
		name, val, err := splitAssign(s)
		if err != nil {
			return Term{}, err
		}
		return Term{Register: name, Value: memmodel.Value(val)}, nil
	}
	name, val, err := splitAssign(s)
	if err != nil {
		return Term{}, err
	}
	return Term{IsMemory: true, Addr: p.addr(name), Value: memmodel.Value(val)}, nil
}

// splitAssign splits "name=123" into its parts.
func splitAssign(s string) (string, int, error) {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("bad assignment %q", s)
	}
	v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", s, err)
	}
	return strings.TrimSpace(parts[0]), v, nil
}

// splitLocVal splits "x, 1" into the location name and value.
func splitLocVal(s string) (string, int, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("want \"<loc>, <val>\", got %q", s)
	}
	v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", s, err)
	}
	loc := strings.TrimSpace(parts[0])
	if loc == "" {
		return "", 0, fmt.Errorf("empty location in %q", s)
	}
	return loc, v, nil
}

// Format renders a test back into the textual format accepted by Parse.
// Round-tripping loses Modify functions other than the built-in xchg/xadd
// forms, which is all the format supports.
//
// Locations are renamed canonically, in order of first emission, to the
// package's address alphabet (x, y, z, ...). Since Parse numbers
// locations by first appearance, this makes Format's output a fixed point
// of the parse→format cycle: Parse(Format(t)) always succeeds on a
// formattable test and Format(Parse(Format(t))) == Format(t), no matter
// how t named or numbered its locations. The fuzz harness leans on this
// to check the round trip on arbitrary parser inputs.
func Format(t *Test) string {
	names := map[memmodel.Addr]string{}
	name := func(a memmodel.Addr) string {
		if s, ok := names[a]; ok {
			return s
		}
		s := memmodel.AddrName(memmodel.Addr(len(names)))
		names[a] = s
		return s
	}
	var b strings.Builder
	fmt.Fprintf(&b, "name: %s\n", t.Name)
	if t.Doc != "" {
		fmt.Fprintf(&b, "doc: %s\n", t.Doc)
	}
	if len(t.Program.Init) > 0 {
		b.WriteString("init:")
		for _, a := range t.Program.Addrs() {
			if v, ok := t.Program.Init[a]; ok {
				fmt.Fprintf(&b, " %s=%d", name(a), int(v))
			}
		}
		b.WriteString("\n")
	}
	for ti, thread := range t.Program.Threads {
		fmt.Fprintf(&b, "thread P%d:\n", ti)
		for _, in := range thread {
			switch in.Kind {
			case memmodel.InstrWrite:
				fmt.Fprintf(&b, "  store %s, %d\n", name(in.Addr), int(in.Value))
			case memmodel.InstrRead:
				fmt.Fprintf(&b, "  %s = load %s\n", in.Reg, name(in.Addr))
			case memmodel.InstrFence:
				b.WriteString("  mfence\n")
			case memmodel.InstrRMW:
				// Render as xadd when the modify function behaves like an
				// addition of Value, otherwise as xchg of Value.
				if in.Modify != nil && in.Modify(7) == 7+in.Value && in.Modify(0) == in.Value {
					fmt.Fprintf(&b, "  %s = xadd %s, %d\n", in.Reg, name(in.Addr), int(in.Value))
				} else {
					fmt.Fprintf(&b, "  %s = xchg %s, %d\n", in.Reg, name(in.Addr), int(in.Value))
				}
			}
		}
	}
	// Render the condition with the same canonical location names; the
	// Condition.String method uses the fixed address alphabet instead and
	// would break the round trip for renamed locations.
	parts := make([]string, len(t.Cond.Terms))
	for i, term := range t.Cond.Terms {
		if term.IsMemory {
			parts[i] = fmt.Sprintf("%s=%d", name(term.Addr), int(term.Value))
		} else {
			parts[i] = fmt.Sprintf("%s=%d", term.Register, int(term.Value))
		}
	}
	fmt.Fprintf(&b, "%s (%s)\n", t.Cond.Quantifier, strings.Join(parts, " /\\ "))
	return b.String()
}
