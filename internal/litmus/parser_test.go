package litmus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memmodel"
)

const sampleSource = `
name: dekker-write-replacement
doc: Fig 3 of the paper
# the two flag locations start at zero
init: x=0 y=0
thread P0:
  a0 = xchg x, 1
  r0 = load y
thread P1:
  a1 = xchg y, 1
  r1 = load x
exists (P0:r0=0 /\ P1:r1=0)
`

func TestParseSample(t *testing.T) {
	test, err := Parse(sampleSource)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if test.Name != "dekker-write-replacement" {
		t.Errorf("name = %q", test.Name)
	}
	if test.Doc != "Fig 3 of the paper" {
		t.Errorf("doc = %q", test.Doc)
	}
	if len(test.Program.Threads) != 2 {
		t.Fatalf("threads = %d, want 2", len(test.Program.Threads))
	}
	if len(test.Program.Threads[0]) != 2 || len(test.Program.Threads[1]) != 2 {
		t.Fatalf("instruction counts wrong")
	}
	if test.Cond.Quantifier != Exists || len(test.Cond.Terms) != 2 {
		t.Fatalf("condition = %v", test.Cond)
	}
}

func TestParsedTestBehavesLikeBuiltin(t *testing.T) {
	parsed, err := Parse(sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	builtin := DekkerWriteReplacement()
	for _, typ := range core.AllTypes() {
		rp, err := parsed.Run(typ)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := builtin.Run(typ)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Holds != rb.Holds {
			t.Errorf("%s: parsed test verdict %v differs from builtin %v", typ, rp.Holds, rb.Holds)
		}
	}
}

func TestParseAllInstructionForms(t *testing.T) {
	src := `
name: all-forms
init: l=1
thread P0:
  store x, 1
  r0 = load y
  mfence
  r1 = xchg z, 2
  r2 = xadd z, 3
  r3 = tas l
forall (x=1)
`
	test, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	instrs := test.Program.Threads[0]
	wantKinds := []memmodel.InstrKind{
		memmodel.InstrWrite, memmodel.InstrRead, memmodel.InstrFence,
		memmodel.InstrRMW, memmodel.InstrRMW, memmodel.InstrRMW,
	}
	if len(instrs) != len(wantKinds) {
		t.Fatalf("parsed %d instructions, want %d", len(instrs), len(wantKinds))
	}
	for i, k := range wantKinds {
		if instrs[i].Kind != k {
			t.Errorf("instr %d kind = %v, want %v", i, instrs[i].Kind, k)
		}
	}
	// xadd modify semantics
	if instrs[4].Modify(5) != 8 {
		t.Error("xadd should add its operand")
	}
	// tas semantics
	if instrs[5].Modify(0) != 1 {
		t.Error("tas should write 1")
	}
	// init applies to the symbolic location "l"
	if test.Program.Init[instrs[5].Addr] != 1 {
		t.Error("init value for l missing")
	}
	if test.Cond.Quantifier != Forall {
		t.Error("forall condition not parsed")
	}
}

func TestParseConditionVariants(t *testing.T) {
	base := `
name: cond
thread P0:
  r0 = load x
`
	cases := map[string]Quantifier{
		"exists (P0:r0=0)":  Exists,
		"~exists (P0:r0=1)": NotExists,
		"forall (x=0)":      Forall,
	}
	for cond, q := range cases {
		test, err := Parse(base + cond + "\n")
		if err != nil {
			t.Fatalf("Parse with %q: %v", cond, err)
		}
		if test.Cond.Quantifier != q {
			t.Errorf("%q parsed as %v", cond, test.Cond.Quantifier)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing name": `
thread P0:
  r0 = load x
exists (P0:r0=0)`,
		"missing condition": `
name: t
thread P0:
  r0 = load x`,
		"no threads": `
name: t
exists (x=0)`,
		"instruction before thread": `
name: t
store x, 1
thread P0:
  r0 = load x
exists (P0:r0=0)`,
		"bad instruction": `
name: t
thread P0:
  frobnicate x
exists (x=0)`,
		"bad store": `
name: t
thread P0:
  store x
exists (x=0)`,
		"bad thread order": `
name: t
thread P1:
  r0 = load x
exists (P1:r0=0)`,
		"bad condition term": `
name: t
thread P0:
  r0 = load x
exists (P0:r0)`,
		"empty condition": `
name: t
thread P0:
  r0 = load x
exists ()`,
		"duplicate condition": `
name: t
thread P0:
  r0 = load x
exists (P0:r0=0)
exists (P0:r0=1)`,
		"bad init": `
name: t
init: x
thread P0:
  r0 = load x
exists (P0:r0=0)`,
		"duplicate register": `
name: t
thread P0:
  r0 = load x
  r0 = load y
exists (P0:r0=0)`,
	}
	for label, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse should have failed", label)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, test := range AllTests() {
		text := Format(test)
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", test.Name, err, text)
		}
		if parsed.Name != test.Name {
			t.Errorf("%s: name lost in round trip", test.Name)
		}
		if len(parsed.Program.Threads) != len(test.Program.Threads) {
			t.Errorf("%s: thread count changed in round trip", test.Name)
			continue
		}
		// The round-tripped test must have identical verdicts.
		for _, typ := range core.AllTypes() {
			ro, err := test.Run(typ)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := parsed.Run(typ)
			if err != nil {
				t.Fatalf("%s (%s): %v\n%s", test.Name, typ, err, text)
			}
			if ro.Holds != rp.Holds {
				t.Errorf("%s (%s): verdict changed after round trip (%v -> %v)",
					test.Name, typ, ro.Holds, rp.Holds)
			}
		}
	}
}

func TestFormatContainsConditionAndThreads(t *testing.T) {
	text := Format(StoreBuffering())
	for _, want := range []string{"name: SB", "thread P0:", "thread P1:", "exists ("} {
		if !strings.Contains(text, want) {
			t.Errorf("Format output missing %q:\n%s", want, text)
		}
	}
}

func TestTermHolds(t *testing.T) {
	o := core.Outcome{
		Registers: map[string]memmodel.Value{"P0:r0": 3},
		Memory:    map[memmodel.Addr]memmodel.Value{2: 7},
	}
	if !(Term{Register: "P0:r0", Value: 3}).Holds(o) {
		t.Error("register term should hold")
	}
	if (Term{Register: "P0:r0", Value: 4}).Holds(o) {
		t.Error("register term should not hold")
	}
	if !(Term{IsMemory: true, Addr: 2, Value: 7}).Holds(o) {
		t.Error("memory term should hold")
	}
	if (Term{IsMemory: true, Addr: 2, Value: 8}).Holds(o) {
		t.Error("memory term should not hold")
	}
	// Missing keys compare against the zero value.
	if !(Term{Register: "P9:r9", Value: 0}).Holds(o) {
		t.Error("missing register should read as 0")
	}
}

func TestQuantifierString(t *testing.T) {
	if Exists.String() != "exists" || NotExists.String() != "~exists" || Forall.String() != "forall" {
		t.Error("quantifier names wrong")
	}
	if Quantifier(9).String() == "" {
		t.Error("unknown quantifier should still render")
	}
}
