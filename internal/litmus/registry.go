package litmus

import (
	"fmt"
	"path"
	"sort"
	"sync"
)

// Suite groups registered tests: the paper's figures vs the classic TSO
// sanity tests.
const (
	// GroupPaper tags the tests taken directly from the paper's figures.
	GroupPaper = "paper"
	// GroupClassic tags the RMW-free TSO sanity tests and common RMW idioms.
	GroupClassic = "classic"
)

// entry is one registered test constructor.
type entry struct {
	name  string
	group string
	build func() *Test
}

// registry is the process-wide, name-keyed test registry. Tests are
// registered, not wired: new scenarios call Register (typically from an
// init function) and every consumer — the suite views of pkg/rmwtso, the
// litmus command, the experiment harness — sees them without code changes.
var registry = struct {
	mu     sync.RWMutex
	byName map[string]*entry
	order  []*entry
}{byName: map[string]*entry{}}

// Register adds a named test constructor to the registry under a group.
// The constructor is invoked once per lookup so callers always receive a
// fresh Test they may mutate. Registering a duplicate name panics: names
// are the registry's identity.
func Register(group, name string, build func() *Test) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("litmus: duplicate test registration %q", name))
	}
	e := &entry{name: name, group: group, build: build}
	registry.byName[name] = e
	registry.order = append(registry.order, e)
}

// Names returns the registered test names in registration order.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, len(registry.order))
	for i, e := range registry.order {
		out[i] = e.name
	}
	return out
}

// Groups returns the registered group names, sorted.
func Groups() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, e := range registry.order {
		if !seen[e.group] {
			seen[e.group] = true
			out = append(out, e.group)
		}
	}
	sort.Strings(out)
	return out
}

// Build constructs a fresh instance of the named test, or nil when the
// name is not registered.
func Build(name string) *Test {
	registry.mu.RLock()
	e := registry.byName[name]
	registry.mu.RUnlock()
	if e == nil {
		return nil
	}
	return e.build()
}

// ByGroup constructs every test registered under the group, in
// registration order.
func ByGroup(group string) []*Test {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	var out []*Test
	for _, e := range registry.order {
		if e.group == group {
			out = append(out, e.build())
		}
	}
	return out
}

// Match constructs every registered test whose name or program name
// matches the glob pattern (path.Match syntax, e.g. "SB*" or
// "dekker-*"), in registration order. An empty pattern matches
// everything. Match returns an error only for malformed patterns.
func Match(pattern string) ([]*Test, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	var out []*Test
	for _, e := range registry.order {
		t := e.build()
		if pattern != "" {
			okName, err := path.Match(pattern, e.name)
			if err != nil {
				return nil, fmt.Errorf("litmus: bad filter pattern %q: %w", pattern, err)
			}
			okProg, _ := path.Match(pattern, t.Program.Name)
			if !okName && !okProg {
				continue
			}
		}
		out = append(out, t)
	}
	return out, nil
}
