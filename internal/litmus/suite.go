package litmus

import (
	"repro/internal/core"
	"repro/internal/memmodel"
)

// Locations used by the suite, named per the paper's figures.
const (
	locX  memmodel.Addr = 0 // x
	locY  memmodel.Addr = 1 // y
	locZ  memmodel.Addr = 2 // z / z1
	locZ2 memmodel.Addr = 3 // z2
)

// expect builds the Expected map from the per-type truth values.
func expect(t1, t2, t3 bool) map[core.AtomicityType]bool {
	return map[core.AtomicityType]bool{core.Type1: t1, core.Type2: t2, core.Type3: t3}
}

// StoreBuffering is the classic SB test: TSO allows both reads to see the
// initial values, regardless of RMW atomicity (no RMWs involved).
func StoreBuffering() *Test {
	p := memmodel.NewProgram("SB")
	p.AddThread(memmodel.Write(locX, 1), memmodel.Read(locY, "r0"))
	p.AddThread(memmodel.Write(locY, 1), memmodel.Read(locX, "r1"))
	return &Test{
		Name:     "SB",
		Doc:      "store buffering: TSO allows r0=0 and r1=0",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(true, true, true),
	}
}

// StoreBufferingFences is SB with mfence between each write and read: the
// relaxed outcome is forbidden.
func StoreBufferingFences() *Test {
	p := memmodel.NewProgram("SB+fences")
	p.AddThread(memmodel.Write(locX, 1), memmodel.Fence(), memmodel.Read(locY, "r0"))
	p.AddThread(memmodel.Write(locY, 1), memmodel.Fence(), memmodel.Read(locX, "r1"))
	return &Test{
		Name:     "SB+fences",
		Doc:      "store buffering with barriers: the relaxed outcome is forbidden",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(false, false, false),
	}
}

// MessagePassing is the MP test: TSO forbids observing the flag without the
// data.
func MessagePassing() *Test {
	p := memmodel.NewProgram("MP")
	p.AddThread(memmodel.Write(locX, 1), memmodel.Write(locY, 1))
	p.AddThread(memmodel.Read(locY, "r0"), memmodel.Read(locX, "r1"))
	return &Test{
		Name:     "MP",
		Doc:      "message passing: TSO forbids flag=1 with data=0",
		Program:  p,
		Cond:     ExistsCond(RegTerm(1, "r0", 1), RegTerm(1, "r1", 0)),
		Expected: expect(false, false, false),
	}
}

// LoadBuffering is the LB test: forbidden on TSO (reads are not reordered
// with later writes).
func LoadBuffering() *Test {
	p := memmodel.NewProgram("LB")
	p.AddThread(memmodel.Read(locX, "r0"), memmodel.Write(locY, 1))
	p.AddThread(memmodel.Read(locY, "r1"), memmodel.Write(locX, 1))
	return &Test{
		Name:     "LB",
		Doc:      "load buffering: TSO forbids both reads observing the other thread's write",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 1), RegTerm(1, "r1", 1)),
		Expected: expect(false, false, false),
	}
}

// CoRR checks coherence of read-read pairs: a thread must not observe two
// writes to the same location in the opposite of coherence order.
func CoRR() *Test {
	p := memmodel.NewProgram("CoRR")
	p.AddThread(memmodel.Write(locX, 1), memmodel.Write(locX, 2))
	p.AddThread(memmodel.Read(locX, "r0"), memmodel.Read(locX, "r1"))
	return &Test{
		Name:     "CoRR",
		Doc:      "coherence: reads of one location must respect coherence order",
		Program:  p,
		Cond:     ExistsCond(RegTerm(1, "r0", 2), RegTerm(1, "r1", 1)),
		Expected: expect(false, false, false),
	}
}

// DekkerWriteReplacement is Fig. 3: the writes of Dekker's algorithm
// replaced by RMWs. The mutual-exclusion-failure outcome (both observation
// reads 0) is forbidden for type-1/2 and allowed for type-3.
func DekkerWriteReplacement() *Test {
	p := memmodel.NewProgram("dekker-write-replacement")
	p.AddThread(memmodel.Exchange(locX, "a0", 1), memmodel.Read(locY, "r0"))
	p.AddThread(memmodel.Exchange(locY, "a1", 1), memmodel.Read(locX, "r1"))
	return &Test{
		Name:     "dekker-write-replacement (Fig. 3)",
		Doc:      "Dekker's with writes replaced by RMWs: works for type-1/2, fails for type-3",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(false, false, true),
	}
}

// DekkerReadReplacement is Fig. 4: the reads of Dekker's algorithm replaced
// by RMWs (lock xadd(0)). Works for all three atomicity types.
func DekkerReadReplacement() *Test {
	p := memmodel.NewProgram("dekker-read-replacement")
	p.AddThread(memmodel.Write(locX, 1), memmodel.FetchAdd(locY, "r0", 0))
	p.AddThread(memmodel.Write(locY, 1), memmodel.FetchAdd(locX, "r1", 0))
	return &Test{
		Name:     "dekker-read-replacement (Fig. 4)",
		Doc:      "Dekker's with reads replaced by RMWs: works for all atomicity types",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(false, false, false),
	}
}

// DekkerRMWBarrierDifferentAddr is Fig. 5: RMWs to distinct scratch
// locations z1, z2 used in place of the barriers of Dekker's algorithm.
// Only type-1 RMWs order like a barrier.
func DekkerRMWBarrierDifferentAddr() *Test {
	p := memmodel.NewProgram("dekker-rmw-barrier")
	p.AddThread(memmodel.Write(locX, 1), memmodel.Exchange(locZ, "a0", 1), memmodel.Read(locY, "r0"))
	p.AddThread(memmodel.Write(locY, 1), memmodel.Exchange(locZ2, "a1", 1), memmodel.Read(locX, "r1"))
	return &Test{
		Name:     "dekker-rmw-as-barrier (Fig. 5)",
		Doc:      "RMWs to different addresses used as barriers: only type-1 forbids the relaxed outcome",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(false, true, true),
	}
}

// DekkerRMWBarrierSameAddr is Fig. 8: both barrier RMWs access the same
// location z, forcing them to synchronize; all three types forbid the
// relaxed outcome.
func DekkerRMWBarrierSameAddr() *Test {
	p := memmodel.NewProgram("dekker-rmw-barrier-same")
	p.AddThread(memmodel.Write(locX, 1), memmodel.FetchAdd(locZ, "a0", 1), memmodel.Read(locY, "r0"))
	p.AddThread(memmodel.Write(locY, 1), memmodel.FetchAdd(locZ, "a1", 1), memmodel.Read(locX, "r1"))
	return &Test{
		Name:     "dekker-rmw-as-barrier-same-address (Fig. 8)",
		Doc:      "barrier RMWs forced to synchronize on one address: all types forbid the relaxed outcome",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(false, false, false),
	}
}

// WriteDeadlock is the Fig. 10 program whose naive type-2/3 implementation
// can deadlock in hardware: each thread writes one location and then RMWs
// the other. The both-RMWs-read-zero outcome corresponds to the cyclic
// dependency of Fig. 10(b) and is forbidden semantically under every
// atomicity type -- which is exactly why a naive implementation that locks
// the cache line before its earlier write has completed ends up waiting
// forever trying to realise it. The bloom-filter mechanism of §3.2 avoids
// the implementation deadlock while preserving this semantics.
func WriteDeadlock() *Test {
	p := memmodel.NewProgram("fig10-write-deadlock")
	p.AddThread(memmodel.Write(locX, 1), memmodel.FetchAdd(locY, "r0", 0))
	p.AddThread(memmodel.Write(locY, 1), memmodel.FetchAdd(locX, "r1", 0))
	return &Test{
		Name:     "write-deadlock (Fig. 10)",
		Doc:      "the program whose naive type-2/3 implementation deadlocks; the cyclic outcome is forbidden",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(false, false, false),
	}
}

// TASLock models two threads racing to acquire a test-and-set lock: both
// acquiring (both reading 0) is forbidden under every atomicity type.
func TASLock() *Test {
	p := memmodel.NewProgram("tas-lock")
	p.AddThread(memmodel.TestAndSet(locX, "r0"))
	p.AddThread(memmodel.TestAndSet(locX, "r1"))
	return &Test{
		Name:     "tas-lock-race",
		Doc:      "two test-and-sets on one lock word: both must not win, under any atomicity type",
		Program:  p,
		Cond:     ExistsCond(RegTerm(0, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(false, false, false),
	}
}

// FetchAddCounter checks that two concurrent fetch-and-adds always sum: the
// final counter value is 2 in every valid execution of every type.
func FetchAddCounter() *Test {
	p := memmodel.NewProgram("faa-counter")
	p.AddThread(memmodel.FetchAdd(locX, "r0", 1))
	p.AddThread(memmodel.FetchAdd(locX, "r1", 1))
	return &Test{
		Name:     "faa-counter",
		Doc:      "concurrent fetch-and-adds never lose updates, under any atomicity type",
		Program:  p,
		Cond:     ForallCond(MemTerm(locX, 2)),
		Expected: expect(true, true, true),
	}
}

// SpinlockHandoff models a lock release (plain store) observed by a
// spinning RMW acquire on another thread: if the acquire sees the release,
// it must also see the data written inside the critical section.
func SpinlockHandoff() *Test {
	p := memmodel.NewProgram("spinlock-handoff")
	// P0: data = 1; unlock (lock = 0).
	p.AddThread(memmodel.Write(locY, 1), memmodel.Write(locX, 0))
	// P1: acquire: RMW on lock observing 0 (free); then read data.
	p.AddThread(memmodel.TestAndSet(locX, "r0"), memmodel.Read(locY, "r1"))
	p.SetInit(locX, 1) // lock initially held by P0
	return &Test{
		Name:     "spinlock-handoff",
		Doc:      "an RMW acquire that observes the unlock must also observe the protected data",
		Program:  p,
		Cond:     ExistsCond(RegTerm(1, "r0", 0), RegTerm(1, "r1", 0)),
		Expected: expect(false, false, false),
	}
}

// RMWFenceEquivalence checks that under type-1 an RMW on an otherwise
// unused location orders a preceding write with a following read exactly
// like SB+fences (and that type-2/3 do not).
func RMWFenceEquivalence() *Test {
	t := DekkerRMWBarrierDifferentAddr()
	t.Name = "rmw-fence-equivalence"
	t.Doc = "a type-1 RMW is as strong as mfence; type-2/3 RMWs are not"
	return t
}

// init registers the built-in suite: the paper's figures in figure order,
// then the classic TSO sanity tests and RMW idioms. New scenarios join the
// suite by calling Register; nothing else needs wiring.
func init() {
	Register(GroupPaper, "dekker-write-replacement (Fig. 3)", DekkerWriteReplacement)
	Register(GroupPaper, "dekker-read-replacement (Fig. 4)", DekkerReadReplacement)
	Register(GroupPaper, "dekker-rmw-as-barrier (Fig. 5)", DekkerRMWBarrierDifferentAddr)
	Register(GroupPaper, "dekker-rmw-as-barrier-same-address (Fig. 8)", DekkerRMWBarrierSameAddr)
	Register(GroupPaper, "write-deadlock (Fig. 10)", WriteDeadlock)

	Register(GroupClassic, "SB", StoreBuffering)
	Register(GroupClassic, "SB+fences", StoreBufferingFences)
	Register(GroupClassic, "MP", MessagePassing)
	Register(GroupClassic, "LB", LoadBuffering)
	Register(GroupClassic, "CoRR", CoRR)
	Register(GroupClassic, "tas-lock-race", TASLock)
	Register(GroupClassic, "faa-counter", FetchAddCounter)
	Register(GroupClassic, "spinlock-handoff", SpinlockHandoff)
}

// PaperSuite returns the litmus tests taken directly from the paper's
// figures, in figure order.
func PaperSuite() []*Test { return ByGroup(GroupPaper) }

// ClassicSuite returns RMW-free TSO sanity tests plus common RMW idioms.
func ClassicSuite() []*Test { return ByGroup(GroupClassic) }

// AllTests returns the full registered suite in registration order: paper
// figures first, then classic tests, then any tests registered by other
// packages.
func AllTests() []*Test {
	var out []*Test
	for _, name := range Names() {
		out = append(out, Build(name))
	}
	return out
}

// FindTest returns the test with the given name (registry name or program
// name) from the registered suite, or nil.
func FindTest(name string) *Test {
	if t := Build(name); t != nil {
		return t
	}
	for _, t := range AllTests() {
		if t.Name == name || t.Program.Name == name {
			return t
		}
	}
	return nil
}
