package litmus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memmodel"
)

// TestPaperSuiteMatchesTable1 runs every paper test under all three
// atomicity types and checks the verdicts against the expectations encoded
// from Table 1. This is the end-to-end reproduction of the paper's
// semantics results.
func TestPaperSuiteMatchesTable1(t *testing.T) {
	for _, test := range PaperSuite() {
		results, err := test.RunAll()
		if err != nil {
			t.Fatalf("%s: %v", test.Name, err)
		}
		for _, r := range results {
			if !r.Matches {
				t.Errorf("%s under %s: condition %v, expected %v",
					test.Name, r.Atomicity, r.Holds, *r.Expected)
			}
		}
	}
}

// TestClassicSuiteExpectations runs the RMW-free TSO tests and the common
// RMW idioms; their verdicts must not depend on the atomicity type in the
// recorded way.
func TestClassicSuiteExpectations(t *testing.T) {
	for _, test := range ClassicSuite() {
		results, err := test.RunAll()
		if err != nil {
			t.Fatalf("%s: %v", test.Name, err)
		}
		for _, r := range results {
			if !r.Matches {
				t.Errorf("%s under %s: condition %v, expected %v",
					test.Name, r.Atomicity, r.Holds, *r.Expected)
			}
		}
	}
}

func TestAllTestsHaveValidExecutionsAndMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, test := range AllTests() {
		if test.Name == "" || test.Doc == "" {
			t.Errorf("test %q missing name or doc", test.Name)
		}
		if seen[test.Name] {
			t.Errorf("duplicate test name %q", test.Name)
		}
		seen[test.Name] = true
		if err := test.Program.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", test.Name, err)
		}
		if len(test.Expected) != 3 {
			t.Errorf("%s: expectations missing for some atomicity type", test.Name)
		}
		r, err := test.Run(core.Type1)
		if err != nil {
			t.Fatalf("%s: %v", test.Name, err)
		}
		if r.ValidExecutions == 0 {
			t.Errorf("%s: no valid executions under type-1", test.Name)
		}
		if r.ValidExecutions > r.Candidates {
			t.Errorf("%s: more valid executions than candidates", test.Name)
		}
	}
}

func TestFindTest(t *testing.T) {
	if FindTest("SB") == nil {
		t.Error("FindTest should locate SB by name")
	}
	if FindTest("dekker-write-replacement") == nil {
		t.Error("FindTest should locate tests by program name")
	}
	if FindTest("no-such-test") != nil {
		t.Error("FindTest of an unknown name should return nil")
	}
}

func TestResultStringAndReport(t *testing.T) {
	test := StoreBuffering()
	results, err := test.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		s := r.String()
		if !strings.Contains(s, "SB") || !strings.Contains(s, "type-") {
			t.Errorf("Result.String missing fields: %q", s)
		}
		if !strings.Contains(s, "[ok]") {
			t.Errorf("matching result should report ok: %q", s)
		}
	}
	report := Report(results)
	if strings.Count(report, "\n") != len(results) {
		t.Errorf("Report should have one line per result:\n%s", report)
	}
}

func TestResultMismatchIsReported(t *testing.T) {
	test := StoreBuffering()
	// Flip the expectation to force a mismatch.
	test.Expected[core.Type1] = false
	r, err := test.Run(core.Type1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Matches {
		t.Fatal("mismatch not detected")
	}
	if !strings.Contains(r.String(), "MISMATCH") {
		t.Errorf("mismatch not rendered: %q", r.String())
	}
}

func TestRunWithoutExpectationMatches(t *testing.T) {
	test := StoreBuffering()
	test.Expected = nil
	r, err := test.Run(core.Type2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Matches || r.Expected != nil {
		t.Error("runs without expectations must report Matches=true and no expectation")
	}
}

func TestConditionEvaluate(t *testing.T) {
	o0 := core.Outcome{Registers: map[string]memmodel.Value{"P0:r0": 0}}
	o1 := core.Outcome{Registers: map[string]memmodel.Value{"P0:r0": 1}}
	outcomes := []core.Outcome{o0, o1}

	ex := ExistsCond(Term{Register: "P0:r0", Value: 1})
	if !ex.Evaluate(outcomes) {
		t.Error("exists should hold")
	}
	nex := NotExistsCond(Term{Register: "P0:r0", Value: 2})
	if !nex.Evaluate(outcomes) {
		t.Error("~exists of an absent outcome should hold")
	}
	fa := ForallCond(Term{Register: "P0:r0", Value: 0})
	if fa.Evaluate(outcomes) {
		t.Error("forall should fail when an outcome differs")
	}
	if !fa.Evaluate([]core.Outcome{o0}) {
		t.Error("forall should hold on a uniform set")
	}
	if ex.Evaluate(nil) {
		t.Error("exists over no outcomes must be false")
	}
	if !nex.Evaluate(nil) {
		t.Error("~exists over no outcomes must be true")
	}
	if !fa.Evaluate(nil) {
		t.Error("forall over no outcomes must be true (vacuous)")
	}
}

func TestConditionString(t *testing.T) {
	c := ExistsCond(RegTerm(0, "r0", 0), MemTerm(0, 1))
	want := "exists (P0:r0=0 /\\ x=1)"
	if c.String() != want {
		t.Errorf("Condition.String = %q, want %q", c.String(), want)
	}
	if NotExistsCond(RegTerm(0, "r0", 0)).String() != "~exists (P0:r0=0)" {
		t.Error("~exists rendering wrong")
	}
	if ForallCond(MemTerm(1, 2)).String() != "forall (y=2)" {
		t.Error("forall rendering wrong")
	}
}
