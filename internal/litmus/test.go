// Package litmus provides litmus tests for the TSO-with-RMW memory models
// of internal/core: a test representation with herd-style conditions, the
// paper's suite of synchronization idioms (the Dekker variants of Figs. 3,
// 4, 5 and 8, the write-deadlock program of Fig. 10, and classic TSO tests),
// a text parser for a small litmus format, and a runner that model-checks a
// test under one or several atomicity types.
package litmus

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memmodel"
)

// Quantifier says how a condition is interpreted over the set of valid
// executions.
type Quantifier int

const (
	// Exists holds when at least one valid execution satisfies the
	// proposition.
	Exists Quantifier = iota
	// Forall holds when every valid execution satisfies the proposition.
	Forall
	// NotExists holds when no valid execution satisfies the proposition.
	NotExists
)

// String renders the quantifier in litmus syntax.
func (q Quantifier) String() string {
	switch q {
	case Exists:
		return "exists"
	case Forall:
		return "forall"
	case NotExists:
		return "~exists"
	default:
		return fmt.Sprintf("Quantifier(%d)", int(q))
	}
}

// Term is one equality constraint of a condition: either a register
// constraint (P<tid>:<reg> = value) or a final-memory constraint
// (<location> = value).
type Term struct {
	// Register is the "P<tid>:<reg>" key when the term constrains a
	// register; empty for memory terms.
	Register string
	// Addr is the constrained location for memory terms.
	Addr memmodel.Addr
	// IsMemory distinguishes memory terms from register terms.
	IsMemory bool
	// Value is the required value.
	Value memmodel.Value
}

// String renders the term in litmus syntax.
func (t Term) String() string {
	if t.IsMemory {
		return fmt.Sprintf("%s=%d", memmodel.AddrName(t.Addr), int(t.Value))
	}
	return fmt.Sprintf("%s=%d", t.Register, int(t.Value))
}

// Holds reports whether the outcome satisfies the term.
func (t Term) Holds(o core.Outcome) bool {
	if t.IsMemory {
		return o.Memory[t.Addr] == t.Value
	}
	return o.Registers[t.Register] == t.Value
}

// Condition is a quantified conjunction of terms, in the style of herd/litmus
// final conditions, e.g. "exists (P0:r0=0 /\ P1:r1=0)".
type Condition struct {
	Quantifier Quantifier
	Terms      []Term
}

// RegTerm builds a register term.
func RegTerm(thread memmodel.ThreadID, reg string, v memmodel.Value) Term {
	return Term{Register: fmt.Sprintf("P%d:%s", int(thread), reg), Value: v}
}

// MemTerm builds a final-memory term.
func MemTerm(addr memmodel.Addr, v memmodel.Value) Term {
	return Term{IsMemory: true, Addr: addr, Value: v}
}

// ExistsCond builds an existential condition over the given terms.
func ExistsCond(terms ...Term) Condition { return Condition{Quantifier: Exists, Terms: terms} }

// NotExistsCond builds a negative existential condition over the terms.
func NotExistsCond(terms ...Term) Condition { return Condition{Quantifier: NotExists, Terms: terms} }

// ForallCond builds a universal condition over the terms.
func ForallCond(terms ...Term) Condition { return Condition{Quantifier: Forall, Terms: terms} }

// Proposition reports whether the conjunction of terms holds for the
// outcome.
func (c Condition) Proposition(o core.Outcome) bool {
	for _, t := range c.Terms {
		if !t.Holds(o) {
			return false
		}
	}
	return true
}

// Evaluate applies the quantifier over a set of outcomes.
func (c Condition) Evaluate(outcomes []core.Outcome) bool {
	switch c.Quantifier {
	case Exists:
		for _, o := range outcomes {
			if c.Proposition(o) {
				return true
			}
		}
		return false
	case NotExists:
		for _, o := range outcomes {
			if c.Proposition(o) {
				return false
			}
		}
		return true
	case Forall:
		for _, o := range outcomes {
			if !c.Proposition(o) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// String renders the condition in litmus syntax.
func (c Condition) String() string {
	parts := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s (%s)", c.Quantifier, strings.Join(parts, " /\\ "))
}

// Test is a litmus test: a program, a condition over its final state, and
// the expected verdict per atomicity type. Expected maps an atomicity type
// to whether the condition should hold under that type; types missing from
// the map have no recorded expectation.
type Test struct {
	// Name identifies the test; the paper's figures use names like
	// "dekker-write-replacement (Fig. 3)".
	Name string
	// Doc is a one-line description of what the test demonstrates.
	Doc string
	// Program is the litmus program.
	Program *memmodel.Program
	// Cond is the final condition.
	Cond Condition
	// Expected maps each atomicity type to the expected truth value of the
	// condition under that type.
	Expected map[core.AtomicityType]bool
}

// Result is the verdict of running one test under one atomicity type.
type Result struct {
	Test      *Test
	Atomicity core.AtomicityType
	// Holds is the truth value of the condition over the valid executions.
	Holds bool
	// Expected is the recorded expectation, if any.
	Expected *bool
	// Matches reports whether Holds equals the expectation (true when no
	// expectation is recorded).
	Matches bool
	// ValidExecutions is the number of valid executions found.
	ValidExecutions int
	// Candidates is the total number of candidate executions enumerated.
	Candidates int
	// Outcomes is the set of observable outcomes.
	Outcomes *core.OutcomeSet
	// CacheHit marks a verdict served from a result cache instead of
	// enumerated; the verdict itself is identical either way.
	CacheHit bool
	// Unit is the stable work-unit identifier of this (test, type) verdict
	// — the UnitID of its content-addressed cache key. Harnesses that plan
	// and shard verdict sweeps set it so streamed progress events can be
	// correlated with plan entries; it is empty when the verdict was run
	// directly (Test.Run/RunParallel).
	Unit string
}

// String renders the result as a one-line report entry.
func (r Result) String() string {
	status := "ok"
	if !r.Matches {
		status = "MISMATCH"
	}
	exp := "-"
	if r.Expected != nil {
		exp = fmt.Sprintf("%v", *r.Expected)
	}
	return fmt.Sprintf("%-40s %-7s cond=%-5v expected=%-5s valid=%d/%d [%s]",
		r.Test.Name, r.Atomicity, r.Holds, exp, r.ValidExecutions, r.Candidates, status)
}

// Run model-checks the test under the given atomicity type. Candidate
// executions are streamed through the model's validity filter one at a
// time, so the full candidate set is never materialized.
func (t *Test) Run(typ core.AtomicityType) (Result, error) {
	return t.RunParallel(context.Background(), typ, 1)
}

// RunParallel model-checks the test under the given atomicity type with
// the candidate enumeration partitioned across workers goroutines: each
// worker walks a contiguous range of the rf×ws choice space and runs the
// validity check — the expensive part of a verdict — on its own
// candidates, while outcome collection stays serialized. workers > 1
// parallelizes, workers == 1 is the sequential Run, and workers <= 0
// picks the candidate-count heuristic (GOMAXPROCS for IRIW-class
// programs, 1 for small ones). The verdict is identical to Run's
// regardless of workers; a cancelled ctx aborts the verdict with ctx's
// error.
func (t *Test) RunParallel(ctx context.Context, typ core.AtomicityType, workers int) (Result, error) {
	if workers <= 0 {
		workers = memmodel.AutoEnumWorkers(t.Program)
	}
	model := core.NewModel(typ)
	set := core.NewOutcomeSet()
	valid := 0
	var candidates atomic.Int64
	err := memmodel.EnumerateParallel(ctx, t.Program, workers, func(x *memmodel.Execution) bool {
		valid++
		set.Add(core.OutcomeOf(x))
		return true
	}, memmodel.EnumFilter(func(x *memmodel.Execution) bool {
		candidates.Add(1)
		return model.Valid(x)
	}), memmodel.EnumUnordered())
	if err != nil {
		return Result{}, fmt.Errorf("litmus: %s: %w", t.Name, err)
	}
	holds := t.Cond.Evaluate(set.Outcomes())
	res := Result{
		Test:            t,
		Atomicity:       typ,
		Holds:           holds,
		Matches:         true,
		ValidExecutions: valid,
		Candidates:      int(candidates.Load()),
		Outcomes:        set,
	}
	if exp, ok := t.Expected[typ]; ok {
		e := exp
		res.Expected = &e
		res.Matches = holds == exp
	}
	return res, nil
}

// RunAll runs the test under every atomicity type, in order.
func (t *Test) RunAll() ([]Result, error) {
	var out []Result
	for _, typ := range core.AllTypes() {
		r, err := t.Run(typ)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Report renders a set of results as a fixed-width table, sorted by test
// name then atomicity type.
func Report(results []Result) string {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Test.Name != sorted[j].Test.Name {
			return sorted[i].Test.Name < sorted[j].Test.Name
		}
		return sorted[i].Atomicity < sorted[j].Atomicity
	})
	var b strings.Builder
	for _, r := range sorted {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}
