package memmodel

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// threeThread returns the enumeration-shape-rich program the allocation
// tests use: three threads mixing plain writes, RMWs and reads, with a
// candidate set in the thousands.
func threeThread() *Program {
	p := NewProgram("three-thread")
	p.AddThread(Write(0, 1), FetchAdd(1, "a0", 1), Read(2, "r0"))
	p.AddThread(Write(1, 1), FetchAdd(2, "a1", 1), Read(0, "r1"))
	p.AddThread(Write(2, 1), FetchAdd(0, "a2", 1), Read(1, "r2"))
	return p
}

// TestScanSteadyStateAllocationFree pins the tentpole property of the
// arena-based enumerator: once an arena's slot has been warmed, walking
// the candidate space — decode, assembly, value propagation, validity
// filtering against the base model — allocates nothing. sp.scan with a
// single-slot arena is exactly the per-candidate loop of both the
// sequential path and each EnumerateParallel worker (ordered workers
// differ only in slot count), so this covers the steady state of every
// walker.
func TestScanSteadyStateAllocationFree(t *testing.T) {
	sp, err := newEnumSpace(threeThread())
	if err != nil {
		t.Fatal(err)
	}
	arena := sp.newArena(1)
	cfg := &enumConfig{
		ctx:    context.Background(),
		filter: func(x *Execution) bool { return x.BaseValid() },
	}
	visited := 0
	emit := func(x *Execution) bool {
		visited++
		return true
	}
	// Warm run: sizes the slot's relation backing arrays.
	if err := sp.scan(cfg, 0, sp.total(), nil, arena, emit); err != nil {
		t.Fatal(err)
	}
	if visited == 0 {
		t.Fatal("no candidate survived the base-validity filter")
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := sp.scan(cfg, 0, sp.total(), nil, arena, emit); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("scan of %d candidates allocated %.1f times per run, want 0", sp.total(), allocs)
	}
}

// TestEnumerateParallelAllocationBounded checks the same property from
// outside the package boundary: a full parallel enumeration allocates
// only setup (the enumeration space, the per-worker arenas, the
// goroutine machinery), not O(candidates). The setup cost is a few
// thousand allocations in ordered mode (the merge arenas are slot
// rings), so the test compares a program against a 27×-larger variant
// with the same setup shape: the extra candidates must be close to
// allocation-free at the margin.
func TestEnumerateParallelAllocationBounded(t *testing.T) {
	small := threeThread()
	big := threeThread()
	// Three more plain reads multiply the rf space by 27 without changing
	// the worker count or the per-slot allocation shape.
	big.AddThread(Read(0, "r3"), Read(1, "r4"), Read(2, "r5"))

	count := func(p *Program) int {
		n, err := CountCandidates(p)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	candSmall, candBig := count(small), count(big)
	if candBig < 10*candSmall {
		t.Fatalf("big program not big enough: %d vs %d candidates", candBig, candSmall)
	}

	for _, unordered := range []bool{false, true} {
		opts := []EnumOption{}
		if unordered {
			opts = append(opts, EnumUnordered())
		}
		measure := func(p *Program) float64 {
			return testing.AllocsPerRun(2, func() {
				visited := 0
				err := EnumerateParallel(context.Background(), p, 4, func(x *Execution) bool {
					visited++
					return true
				}, opts...)
				if err != nil {
					t.Error(err)
				}
				if visited == 0 {
					t.Error("no candidates visited")
				}
			})
		}
		allocsSmall, allocsBig := measure(small), measure(big)
		marginal := allocsBig - allocsSmall
		if limit := float64(candBig-candSmall) / 20; marginal >= limit {
			t.Errorf("unordered=%v: %d extra candidates cost %.0f extra allocations (%.0f vs %.0f), want < %.0f",
				unordered, candBig-candSmall, marginal, allocsBig, allocsSmall, limit)
		}
	}
}

// TestEnumerateOverflowRF covers the reads-from half of the overflow fix:
// a program whose rf choice product exceeds int range must fail up front
// with ErrSpaceTooLarge instead of silently wrapping the candidate count.
// Eight candidate writes per read across 21 reads gives 8^21 = 2^63
// assignments, one past the largest int.
func TestEnumerateOverflowRF(t *testing.T) {
	p := NewProgram("rf-overflow")
	writes := make([]Instr, 7)
	for i := range writes {
		writes[i] = Write(0, Value(i+1))
	}
	p.AddThread(writes...)
	reads := make([]Instr, 21)
	for i := range reads {
		reads[i] = Read(0, fmt.Sprintf("r%d", i))
	}
	p.AddThread(reads...)

	if _, err := CountCandidates(p); !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("CountCandidates error = %v, want ErrSpaceTooLarge", err)
	}
	if err := EnumerateFunc(p, func(*Execution) bool { return true }); !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("EnumerateFunc error = %v, want ErrSpaceTooLarge", err)
	}
	if _, err := Enumerate(p); !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("Enumerate error = %v, want ErrSpaceTooLarge", err)
	}
	if err := EnumerateParallel(context.Background(), p, 4, func(*Execution) bool { return true }); !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("EnumerateParallel error = %v, want ErrSpaceTooLarge", err)
	}
}

// TestEnumerateOverflowWS covers the write-serialization half: a location
// with 21 non-initial writes has 21! coherence orders, which overflows
// int. The factorial is overflow-checked before any permutation table is
// materialized, so the failure is a prompt typed error rather than an
// attempt to allocate ~10^19 permutations.
func TestEnumerateOverflowWS(t *testing.T) {
	p := NewProgram("ws-overflow")
	writes := make([]Instr, 21)
	for i := range writes {
		writes[i] = Write(0, Value(i+1))
	}
	p.AddThread(writes...)

	if _, err := CountCandidates(p); !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("CountCandidates error = %v, want ErrSpaceTooLarge", err)
	}
	if err := EnumerateFunc(p, func(*Execution) bool { return true }); !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("EnumerateFunc error = %v, want ErrSpaceTooLarge", err)
	}
}

// TestEnumerateNoOverflowFalsePositive guards the overflow checks
// against false positives: a large-but-representable space must still be
// sized exactly. Eight non-initial writes to one location give 8! =
// 40320 coherence orders.
func TestEnumerateNoOverflowFalsePositive(t *testing.T) {
	p := NewProgram("ws-large-ok")
	writes := make([]Instr, 8)
	for i := range writes {
		writes[i] = Write(0, Value(i+1))
	}
	p.AddThread(writes...)
	n, err := CountCandidates(p)
	if err != nil {
		t.Fatalf("CountCandidates: %v", err)
	}
	if n != 40320 {
		t.Fatalf("CountCandidates = %d, want 8! = 40320", n)
	}
	// checkedMul at the boundary: the exact maximum stays representable,
	// one step past it is reported.
	const maxInt = int(^uint(0) >> 1)
	if got, ok := checkedMul(maxInt, 1); !ok || got != maxInt {
		t.Fatalf("checkedMul(maxInt, 1) = %d, %v; want maxInt, true", got, ok)
	}
	if _, ok := checkedMul(maxInt/2+1, 2); ok {
		t.Fatal("checkedMul must report overflow for (maxInt/2+1)*2")
	}
}
