package memmodel

import (
	"errors"
	"fmt"
)

// ErrSpaceTooLarge is returned (wrapped) by enumeration entry points when a
// program's candidate space — the product of its reads-from choices and
// write-serialization permutations — does not fit in an int. Detecting the
// overflow up front turns what would be a silently wrapped candidate count
// (and a walk of the wrong index range) into a typed error callers can test
// with errors.Is.
var ErrSpaceTooLarge = errors.New("memmodel: candidate space exceeds int range")

// checkedMul returns a*b, reporting overflow instead of wrapping. Both
// factors must be positive.
func checkedMul(a, b int) (int, bool) {
	p := a * b
	if a != 0 && p/a != b {
		return 0, false
	}
	return p, true
}

// Enumerate generates all candidate executions of a litmus program. It is
// a convenience wrapper around EnumerateFunc that materializes the whole
// candidate set, cloning each visited execution out of the enumerator's
// arena; callers that only need to scan candidates (validity filtering,
// outcome collection) should prefer EnumerateFunc, which reuses one arena
// slot per candidate and allocates nothing in steady state.
func Enumerate(p *Program) ([]*Execution, error) {
	var out []*Execution
	err := EnumerateFunc(p, func(x *Execution) bool {
		out = append(out, x.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// enumSpace is the precomputed enumeration space of a program: its event
// templates plus the per-read rf choices and per-location ws choices whose
// cross-product is the candidate set. Candidates are addressed by a linear
// index in [0, total()): the index is a mixed-radix number whose most
// significant digits are the rf choices (in read order) and whose least
// significant digits are the ws choices (in location order), so walking
// indices in ascending order reproduces the enumeration order of the
// original recursive walk — and any contiguous index range can be walked
// independently, which is what EnumerateFunc's worker partitioning relies
// on.
//
// Everything here is computed once per enumeration and then shared
// read-only by all workers: the event templates, the rf/ws choice tables,
// the RMW pairing, and the candidate-independent relations (po, ppo, bar,
// poloc) that depend only on the events.
type enumSpace struct {
	p      *Program
	events []*Event
	// reads lists the read-event indices; choices[i] lists the candidate
	// source writes of reads[i].
	reads   []int
	choices [][]int
	// addrs lists the accessed locations; wsChoices[i] lists the candidate
	// coherence orders of addrs[i] (initial write first). The order slices
	// are shared read-only with every candidate execution.
	addrs     []Addr
	wsChoices [][][]int
	// rfSize and wsSize are the sizes of the two sub-spaces; the candidate
	// space has totalSize = rfSize*wsSize indices (overflow-checked at
	// construction).
	rfSize, wsSize, totalSize int
	// Slice-backed RMW pairing, indexed by event index: rmwReadOf[w] is the
	// read half of RMW write w (-1 otherwise), modify[w] its value
	// function, readPos[r] the position of read r in reads (-1 otherwise),
	// and rmwWrites lists the RMW write events. This is the single
	// derivation of the pairing that both value propagation and countRF's
	// value-cycle check use, so the two can never disagree on which
	// candidates are dropped.
	rmwReadOf []int
	modify    []ModifyFunc
	readPos   []int
	rmwWrites []int
	// writeDetermined[i] is true for events whose value is fixed before
	// propagation: plain and initial writes.
	writeDetermined []bool
	// inv holds the candidate-independent relations shared by every
	// execution of this space.
	inv *invariantRels
}

// newEnumSpace validates the program and builds its enumeration space.
func newEnumSpace(p *Program) (*enumSpace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	events, err := buildEvents(p)
	if err != nil {
		return nil, err
	}
	n := len(events)
	sp := &enumSpace{
		p:               p,
		events:          events,
		rmwReadOf:       make([]int, n),
		modify:          make([]ModifyFunc, n),
		readPos:         make([]int, n),
		writeDetermined: make([]bool, n),
	}
	for i := range sp.rmwReadOf {
		sp.rmwReadOf[i] = -1
		sp.readPos[i] = -1
	}

	// Group writes and reads by location.
	writesByAddr := map[Addr][]int{}
	for _, e := range events {
		if e.IsWrite() {
			writesByAddr[e.Addr] = append(writesByAddr[e.Addr], e.Index)
		}
		if e.IsRead() {
			sp.readPos[e.Index] = len(sp.reads)
			sp.reads = append(sp.reads, e.Index)
		}
	}

	// Map each RMW's write event back to its read half and its Modify
	// function, once for the whole enumeration.
	rmwID := 0
	for ti, t := range p.Threads {
		for ii, in := range t {
			if in.Kind != InstrRMW {
				continue
			}
			var rdIdx, wrIdx int = -1, -1
			for _, e := range events {
				if e.Thread == ThreadID(ti) && e.PO == ii && e.RMW == rmwID {
					if e.Kind == KindRMWRead {
						rdIdx = e.Index
					} else if e.Kind == KindRMWWrite {
						wrIdx = e.Index
					}
				}
			}
			if rdIdx < 0 || wrIdx < 0 {
				return nil, fmt.Errorf("memmodel: program %q: missing event pair for RMW %d", p.Name, rmwID)
			}
			m := in.Modify
			if m == nil {
				v := in.Value
				m = func(Value) Value { return v }
			}
			sp.modify[wrIdx] = m
			sp.rmwReadOf[wrIdx] = rdIdx
			sp.rmwWrites = append(sp.rmwWrites, wrIdx)
			rmwID++
		}
	}
	for _, e := range events {
		sp.writeDetermined[e.Index] = e.IsWrite() && sp.modify[e.Index] == nil
	}

	// Enumerate rf choices: for each read, the set of candidate source
	// writes (any write to the same location except the write half of its
	// own RMW).
	sp.choices = make([][]int, len(sp.reads))
	sp.rfSize = 1
	for i, rd := range sp.reads {
		r := events[rd]
		for _, w := range writesByAddr[r.Addr] {
			if events[w].SameRMW(r) {
				continue // Ra never reads from its own Wa
			}
			sp.choices[i] = append(sp.choices[i], w)
		}
		if len(sp.choices[i]) == 0 {
			return nil, fmt.Errorf("memmodel: read %s has no candidate writes", r)
		}
		var ok bool
		if sp.rfSize, ok = checkedMul(sp.rfSize, len(sp.choices[i])); !ok {
			return nil, fmt.Errorf("memmodel: program %q: reads-from space overflows: %w", p.Name, ErrSpaceTooLarge)
		}
	}

	// Size the ws sub-space before materializing anything: the number of
	// coherence orders of a location with k non-initial writes is k!, and
	// the factorials multiply across locations. Doing the arithmetic first
	// (overflow-checked) means a generator-scale program fails with
	// ErrSpaceTooLarge instead of wrapping the candidate count or
	// exhausting memory on the permutation tables.
	sp.addrs = p.Addrs()
	restByAddr := make([][]int, len(sp.addrs))
	initByAddr := make([]int, len(sp.addrs))
	sp.wsSize = 1
	for i, a := range sp.addrs {
		initByAddr[i] = -1
		for _, w := range writesByAddr[a] {
			if events[w].IsInit() {
				initByAddr[i] = w
			} else {
				restByAddr[i] = append(restByAddr[i], w)
			}
		}
		perms := 1
		for k := 2; k <= len(restByAddr[i]); k++ {
			var ok bool
			if perms, ok = checkedMul(perms, k); !ok {
				return nil, fmt.Errorf("memmodel: program %q: write-serialization space of %s overflows: %w", p.Name, AddrName(a), ErrSpaceTooLarge)
			}
		}
		var ok bool
		if sp.wsSize, ok = checkedMul(sp.wsSize, perms); !ok {
			return nil, fmt.Errorf("memmodel: program %q: write-serialization space overflows: %w", p.Name, ErrSpaceTooLarge)
		}
	}
	var ok bool
	if sp.totalSize, ok = checkedMul(sp.rfSize, sp.wsSize); !ok {
		return nil, fmt.Errorf("memmodel: program %q: candidate space overflows: %w", p.Name, ErrSpaceTooLarge)
	}

	// Materialize the ws choices: per location, the initial write followed
	// by every permutation of the remaining writes.
	sp.wsChoices = make([][][]int, len(sp.addrs))
	for i := range sp.addrs {
		for _, perm := range permutations(restByAddr[i]) {
			order := append([]int{initByAddr[i]}, perm...)
			sp.wsChoices[i] = append(sp.wsChoices[i], order)
		}
	}

	// Derive the candidate-independent relations once; every arena slot
	// shares them.
	sp.inv = newInvariantRels(events)
	return sp, nil
}

// total returns the number of candidate indices (including candidates that
// assembly later drops for cyclic RMW value dependencies).
func (sp *enumSpace) total() int { return sp.totalSize }

// enumArena holds everything one walker reuses across candidates: the
// mixed-radix decode buffers, the value-propagation scratch, and a ring of
// execution slots whose events, rf/ws state and relation backing arrays
// are recycled. Assembling a candidate into an arena therefore allocates
// nothing in steady state.
//
// The ring size is the slot-reuse contract: a slot handed to emit must not
// be reassembled until its execution can no longer be referenced. The
// sequential and unordered walkers visit synchronously, so one slot
// suffices; the ordered merge path buffers up to enumBatch executions per
// batch with at most four batches live per worker (one being filled, two
// in the channel, one being merged), so it uses 4*enumBatch slots.
type enumArena struct {
	sp       *enumSpace
	rfDigits []int // per read: index into choices[i]
	wsDigits []int // per addr: index into wsChoices[i]
	det      []bool
	slots    []*Execution
	next     int
}

// newArena builds an arena with the given number of execution slots.
func (sp *enumSpace) newArena(slots int) *enumArena {
	a := &enumArena{
		sp:       sp,
		rfDigits: make([]int, len(sp.reads)),
		wsDigits: make([]int, len(sp.addrs)),
		det:      make([]bool, len(sp.events)),
		slots:    make([]*Execution, slots),
	}
	for i := range a.slots {
		a.slots[i] = sp.newSlot()
	}
	return a
}

// newSlot builds one reusable execution: its events are copies of the
// space's templates (values are rewritten per candidate), its ws orders
// alias the shared permutation tables, and its relations share the space's
// candidate-independent set.
func (sp *enumSpace) newSlot() *Execution {
	n := len(sp.events)
	x := &Execution{Program: sp.p, inv: sp.inv}
	evs := make([]Event, n)
	x.Events = make([]*Event, n)
	for i, e := range sp.events {
		evs[i] = *e
		x.Events[i] = &evs[i]
	}
	x.rf = make([]int, n)
	for i := range x.rf {
		x.rf[i] = -1
	}
	x.wsAddrs = sp.addrs
	x.wsOrders = make([][]int, len(sp.addrs))
	return x
}

// decode writes the mixed-radix digits of candidate index g into the
// arena's buffers: ws digits are least significant (location order), rf
// digits most significant (read order).
func (sp *enumSpace) decode(g int, a *enumArena) {
	for i := len(sp.addrs) - 1; i >= 0; i-- {
		n := len(sp.wsChoices[i])
		a.wsDigits[i] = g % n
		g /= n
	}
	for i := len(sp.reads) - 1; i >= 0; i-- {
		n := len(sp.choices[i])
		a.rfDigits[i] = g % n
		g /= n
	}
}

// candidate assembles the execution at candidate index g into the arena's
// next slot, or returns nil when its value propagation does not converge
// (cyclic RMW value dependency). The slot ring only advances on success,
// so dropped candidates cost nothing.
func (sp *enumSpace) candidate(g int, a *enumArena) *Execution {
	sp.decode(g, a)
	x := a.slots[a.next]
	x.resetDerived()
	for i, wi := range a.wsDigits {
		x.wsOrders[i] = sp.wsChoices[i][wi]
	}
	for i, d := range a.rfDigits {
		x.rf[sp.reads[i]] = sp.choices[i][d]
	}
	if !sp.propagate(x, a) {
		return nil
	}
	a.next++
	if a.next == len(a.slots) {
		a.next = 0
	}
	return x
}

// propagate assigns event values for the slot's rf choice: read values
// come from their rf source; RMW write values come from applying Modify to
// the read value. It iterates to a fixpoint (chains of RMWs reading from
// RMW writes converge in at most len(events) rounds) and reports false for
// cyclic value dependencies, which have no consistent assignment — the
// same rf assignments countRF excludes.
func (sp *enumSpace) propagate(x *Execution, a *enumArena) bool {
	copy(a.det, sp.writeDetermined)
	events := x.Events
	for round := 0; round <= len(events); round++ {
		changed := false
		for _, rd := range sp.reads {
			src := x.rf[rd]
			if a.det[src] && !a.det[rd] {
				events[rd].Value = events[src].Value
				a.det[rd] = true
				changed = true
			}
		}
		for _, wr := range sp.rmwWrites {
			rd := sp.rmwReadOf[wr]
			if a.det[rd] && !a.det[wr] {
				events[wr].Value = sp.modify[wr](events[rd].Value)
				a.det[wr] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, e := range events {
		if (e.IsRead() || e.IsWrite()) && !a.det[e.Index] {
			return false // value cycle through RMWs: no consistent values
		}
	}
	return true
}

// rfAcyclic reports whether the rf assignment in digits has acyclic value
// dependencies, i.e. whether assembly would keep (rather than drop)
// candidates with this rf choice. A read's value depends on its source
// write; an RMW write's value depends on its read half; a cycle through
// those edges never converges.
func (sp *enumSpace) rfAcyclic(digits []int) bool {
	for i := range sp.reads {
		w := sp.choices[i][digits[i]]
		for steps := 0; ; steps++ {
			rd := sp.rmwReadOf[w]
			if rd < 0 {
				break // plain or initial write: chain grounded
			}
			if steps >= len(sp.reads) {
				return false // longer than any acyclic chain
			}
			pos := sp.readPos[rd]
			w = sp.choices[pos][digits[pos]]
		}
	}
	return true
}

// countRF returns the number of rf assignments whose value dependencies
// are acyclic, by walking the rf digit odometer.
func (sp *enumSpace) countRF() int {
	digits := make([]int, len(sp.reads))
	count := 0
	for {
		if sp.rfAcyclic(digits) {
			count++
		}
		// Increment the rf odometer (last read least significant).
		i := len(sp.reads) - 1
		for ; i >= 0; i-- {
			digits[i]++
			if digits[i] < len(sp.choices[i]) {
				break
			}
			digits[i] = 0
		}
		if i < 0 {
			return count
		}
	}
}

// CountCandidates returns the number of candidate executions Enumerate
// generates for the program, without assembling them: the number of
// reads-from assignments with acyclic RMW value dependencies times the
// number of per-location write serializations. Candidates whose value
// propagation cannot converge are never visited by Enumerate and are not
// counted here, so the result matches the enumeration exactly. Useful for
// bounding litmus-test cost and for sizing the enumeration worker pool. A
// program whose candidate space does not fit in an int yields an error
// wrapping ErrSpaceTooLarge.
func CountCandidates(p *Program) (int, error) {
	sp, err := newEnumSpace(p)
	if err != nil {
		return 0, err
	}
	n, ok := checkedMul(sp.countRF(), sp.wsSize)
	if !ok {
		return 0, fmt.Errorf("memmodel: program %q: candidate count overflows: %w", p.Name, ErrSpaceTooLarge)
	}
	return n, nil
}

// buildEvents constructs the event templates for a program: one initial
// write per accessed location followed by the events of each thread in
// program order (RMW instructions contribute a read and a write event
// sharing an RMW identifier).
func buildEvents(p *Program) ([]*Event, error) {
	var events []*Event
	idx := 0
	add := func(e *Event) *Event {
		e.Index = idx
		idx++
		events = append(events, e)
		return e
	}
	for _, a := range p.Addrs() {
		v := Value(0)
		if iv, ok := p.Init[a]; ok {
			v = iv
		}
		add(&Event{Thread: InitThread, Kind: KindInit, Addr: a, Value: v, PO: 0, RMW: -1})
	}
	rmwID := 0
	for ti, t := range p.Threads {
		for ii, in := range t {
			switch in.Kind {
			case InstrRead:
				add(&Event{Thread: ThreadID(ti), Kind: KindRead, Addr: in.Addr, PO: ii, RMW: -1, Label: in.Reg})
			case InstrWrite:
				add(&Event{Thread: ThreadID(ti), Kind: KindWrite, Addr: in.Addr, Value: in.Value, PO: ii, RMW: -1})
			case InstrFence:
				add(&Event{Thread: ThreadID(ti), Kind: KindFence, PO: ii, RMW: -1})
			case InstrRMW:
				add(&Event{Thread: ThreadID(ti), Kind: KindRMWRead, Addr: in.Addr, PO: ii, RMW: rmwID, Label: in.Reg})
				add(&Event{Thread: ThreadID(ti), Kind: KindRMWWrite, Addr: in.Addr, PO: ii, RMW: rmwID})
				rmwID++
			default:
				return nil, fmt.Errorf("memmodel: unknown instruction kind %d", int(in.Kind))
			}
		}
	}
	return events, nil
}

// permutations returns all permutations of the input slice. The input is
// not modified. permutations(nil) returns a single empty permutation.
func permutations(in []int) [][]int {
	if len(in) == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur []int, rest []int) {
		if len(rest) == 0 {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, in)
	return out
}
