package memmodel

import "fmt"

// Enumerate generates all candidate executions of a litmus program. It is
// a convenience wrapper around EnumerateFunc that materializes the whole
// candidate set; callers that only need to scan candidates (validity
// filtering, outcome collection) should prefer EnumerateFunc, which
// allocates one execution at a time.
func Enumerate(p *Program) ([]*Execution, error) {
	var out []*Execution
	err := EnumerateFunc(p, func(x *Execution) bool {
		out = append(out, x)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// enumSpace is the precomputed enumeration space of a program: its event
// templates plus the per-read rf choices and per-location ws choices whose
// cross-product is the candidate set. Candidates are addressed by a linear
// index in [0, total()): the index is a mixed-radix number whose most
// significant digits are the rf choices (in read order) and whose least
// significant digits are the ws choices (in location order), so walking
// indices in ascending order reproduces the enumeration order of the
// original recursive walk — and any contiguous index range can be walked
// independently, which is what EnumerateFunc's worker partitioning relies
// on.
type enumSpace struct {
	p      *Program
	events []*Event
	// reads lists the read-event indices; choices[i] lists the candidate
	// source writes of reads[i].
	reads   []int
	choices [][]int
	// addrs lists the accessed locations; wsChoices[i] lists the candidate
	// coherence orders of addrs[i] (initial write first).
	addrs     []Addr
	wsChoices [][][]int
	// rfSize and wsSize are the sizes of the two sub-spaces; the candidate
	// space has rfSize*wsSize indices.
	rfSize, wsSize int
	// rmwReadOf maps each RMW write event to its read half and modify to
	// its value function — the single derivation of the RMW pairing that
	// both assemble's value propagation and countRF's value-cycle check
	// use, so the two can never disagree on which candidates are dropped.
	rmwReadOf map[int]int
	modify    map[int]ModifyFunc
	// readPos maps each read event to its position in reads.
	readPos map[int]int
}

// newEnumSpace validates the program and builds its enumeration space.
func newEnumSpace(p *Program) (*enumSpace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	events, err := buildEvents(p)
	if err != nil {
		return nil, err
	}
	sp := &enumSpace{p: p, events: events, rmwReadOf: map[int]int{}, modify: map[int]ModifyFunc{}, readPos: map[int]int{}}

	// Group writes and reads by location.
	writesByAddr := map[Addr][]int{}
	for _, e := range events {
		if e.IsWrite() {
			writesByAddr[e.Addr] = append(writesByAddr[e.Addr], e.Index)
		}
		if e.IsRead() {
			sp.readPos[e.Index] = len(sp.reads)
			sp.reads = append(sp.reads, e.Index)
		}
	}

	// Map each RMW's write event back to its read half and its Modify
	// function, once for the whole enumeration.
	rmwID := 0
	for ti, t := range p.Threads {
		for ii, in := range t {
			if in.Kind != InstrRMW {
				continue
			}
			var rdIdx, wrIdx int = -1, -1
			for _, e := range events {
				if e.Thread == ThreadID(ti) && e.PO == ii && e.RMW == rmwID {
					if e.Kind == KindRMWRead {
						rdIdx = e.Index
					} else if e.Kind == KindRMWWrite {
						wrIdx = e.Index
					}
				}
			}
			if rdIdx < 0 || wrIdx < 0 {
				return nil, fmt.Errorf("memmodel: program %q: missing event pair for RMW %d", p.Name, rmwID)
			}
			m := in.Modify
			if m == nil {
				v := in.Value
				m = func(Value) Value { return v }
			}
			sp.modify[wrIdx] = m
			sp.rmwReadOf[wrIdx] = rdIdx
			rmwID++
		}
	}

	// Enumerate rf choices: for each read, the set of candidate source
	// writes (any write to the same location except the write half of its
	// own RMW).
	sp.choices = make([][]int, len(sp.reads))
	sp.rfSize = 1
	for i, rd := range sp.reads {
		r := events[rd]
		for _, w := range writesByAddr[r.Addr] {
			if events[w].SameRMW(r) {
				continue // Ra never reads from its own Wa
			}
			sp.choices[i] = append(sp.choices[i], w)
		}
		if len(sp.choices[i]) == 0 {
			return nil, fmt.Errorf("memmodel: read %s has no candidate writes", r)
		}
		sp.rfSize *= len(sp.choices[i])
	}

	// Enumerate ws choices: per location, the initial write followed by
	// every permutation of the remaining writes.
	sp.addrs = p.Addrs()
	sp.wsChoices = make([][][]int, len(sp.addrs))
	sp.wsSize = 1
	for i, a := range sp.addrs {
		var init int = -1
		var rest []int
		for _, w := range writesByAddr[a] {
			if events[w].IsInit() {
				init = w
			} else {
				rest = append(rest, w)
			}
		}
		for _, perm := range permutations(rest) {
			order := append([]int{init}, perm...)
			sp.wsChoices[i] = append(sp.wsChoices[i], order)
		}
		sp.wsSize *= len(sp.wsChoices[i])
	}
	return sp, nil
}

// total returns the number of candidate indices (including candidates that
// assemble later drops for cyclic RMW value dependencies).
func (sp *enumSpace) total() int { return sp.rfSize * sp.wsSize }

// enumScratch holds the per-walker decode buffers, so concurrent walkers
// never share assignment state.
type enumScratch struct {
	rfDigits []int // per read: index into choices[i]
	wsDigits []int // per addr: index into wsChoices[i]
	rfAssign []int // per read: chosen source write event
}

func (sp *enumSpace) newScratch() *enumScratch {
	return &enumScratch{
		rfDigits: make([]int, len(sp.reads)),
		wsDigits: make([]int, len(sp.addrs)),
		rfAssign: make([]int, len(sp.reads)),
	}
}

// decode writes the mixed-radix digits of candidate index g into the
// scratch buffers: ws digits are least significant (location order), rf
// digits most significant (read order).
func (sp *enumSpace) decode(g int, s *enumScratch) {
	for i := len(sp.addrs) - 1; i >= 0; i-- {
		n := len(sp.wsChoices[i])
		s.wsDigits[i] = g % n
		g /= n
	}
	for i := len(sp.reads) - 1; i >= 0; i-- {
		n := len(sp.choices[i])
		s.rfDigits[i] = g % n
		g /= n
	}
}

// candidate assembles the execution at candidate index g, or nil when its
// value propagation does not converge (cyclic RMW value dependency).
func (sp *enumSpace) candidate(g int, s *enumScratch) *Execution {
	sp.decode(g, s)
	for i, d := range s.rfDigits {
		s.rfAssign[i] = sp.choices[i][d]
	}
	ws := map[Addr][]int{}
	for i, a := range sp.addrs {
		order := sp.wsChoices[i][s.wsDigits[i]]
		cp := make([]int, len(order))
		copy(cp, order)
		ws[a] = cp
	}
	return sp.assemble(s.rfAssign, ws)
}

// rfAcyclic reports whether the rf assignment in the scratch digits has
// acyclic value dependencies, i.e. whether assemble would keep (rather
// than drop) candidates with this rf choice. A read's value depends on its
// source write; an RMW write's value depends on its read half; a cycle
// through those edges never converges.
func (sp *enumSpace) rfAcyclic(s *enumScratch) bool {
	for i := range sp.reads {
		w := sp.choices[i][s.rfDigits[i]]
		for steps := 0; ; steps++ {
			rd, isRMW := sp.rmwReadOf[w]
			if !isRMW {
				break // plain or initial write: chain grounded
			}
			if steps >= len(sp.reads) {
				return false // longer than any acyclic chain
			}
			pos := sp.readPos[rd]
			w = sp.choices[pos][s.rfDigits[pos]]
		}
	}
	return true
}

// countRF returns the number of rf assignments whose value dependencies
// are acyclic, by walking the rf digit odometer.
func (sp *enumSpace) countRF() int {
	s := sp.newScratch()
	count := 0
	for {
		if sp.rfAcyclic(s) {
			count++
		}
		// Increment the rf odometer (last read least significant).
		i := len(sp.reads) - 1
		for ; i >= 0; i-- {
			s.rfDigits[i]++
			if s.rfDigits[i] < len(sp.choices[i]) {
				break
			}
			s.rfDigits[i] = 0
		}
		if i < 0 {
			return count
		}
	}
}

// CountCandidates returns the number of candidate executions Enumerate
// generates for the program, without assembling them: the number of
// reads-from assignments with acyclic RMW value dependencies times the
// number of per-location write serializations. Candidates whose value
// propagation cannot converge are never visited by Enumerate and are not
// counted here, so the result matches the enumeration exactly. Useful for
// bounding litmus-test cost and for sizing the enumeration worker pool.
func CountCandidates(p *Program) (int, error) {
	sp, err := newEnumSpace(p)
	if err != nil {
		return 0, err
	}
	return sp.countRF() * sp.wsSize, nil
}

// buildEvents constructs the event templates for a program: one initial
// write per accessed location followed by the events of each thread in
// program order (RMW instructions contribute a read and a write event
// sharing an RMW identifier).
func buildEvents(p *Program) ([]*Event, error) {
	var events []*Event
	idx := 0
	add := func(e *Event) *Event {
		e.Index = idx
		idx++
		events = append(events, e)
		return e
	}
	for _, a := range p.Addrs() {
		v := Value(0)
		if iv, ok := p.Init[a]; ok {
			v = iv
		}
		add(&Event{Thread: InitThread, Kind: KindInit, Addr: a, Value: v, PO: 0, RMW: -1})
	}
	rmwID := 0
	for ti, t := range p.Threads {
		for ii, in := range t {
			switch in.Kind {
			case InstrRead:
				add(&Event{Thread: ThreadID(ti), Kind: KindRead, Addr: in.Addr, PO: ii, RMW: -1, Label: in.Reg})
			case InstrWrite:
				add(&Event{Thread: ThreadID(ti), Kind: KindWrite, Addr: in.Addr, Value: in.Value, PO: ii, RMW: -1})
			case InstrFence:
				add(&Event{Thread: ThreadID(ti), Kind: KindFence, PO: ii, RMW: -1})
			case InstrRMW:
				add(&Event{Thread: ThreadID(ti), Kind: KindRMWRead, Addr: in.Addr, PO: ii, RMW: rmwID, Label: in.Reg})
				add(&Event{Thread: ThreadID(ti), Kind: KindRMWWrite, Addr: in.Addr, PO: ii, RMW: rmwID})
				rmwID++
			default:
				return nil, fmt.Errorf("memmodel: unknown instruction kind %d", int(in.Kind))
			}
		}
	}
	return events, nil
}

// assemble builds an Execution for a specific rf and ws assignment,
// propagating values with the space's shared RMW pairing (rmwReadOf,
// modify). It returns nil if value propagation fails to converge (cyclic
// RMW value dependency), which corresponds to no consistent assignment of
// values — the same rf assignments countRF excludes.
func (sp *enumSpace) assemble(rfAssign []int, ws map[Addr][]int) *Execution {
	// Deep copy events so each execution owns its values.
	events := make([]*Event, len(sp.events))
	for i, e := range sp.events {
		cp := *e
		events[i] = &cp
	}
	rf := map[int]int{}
	for i, rd := range sp.reads {
		rf[rd] = rfAssign[i]
	}

	// Value propagation: read values come from their rf source; RMW write
	// values come from applying Modify to the read value. Iterate to a
	// fixpoint (chains of RMWs reading from RMW writes converge in at most
	// len(events) rounds; cycles never converge and are rejected).
	determined := map[int]bool{}
	for _, e := range events {
		if e.IsWrite() && sp.modify[e.Index] == nil {
			determined[e.Index] = true // plain or initial write: value fixed
		}
	}
	for round := 0; round <= len(events); round++ {
		changed := false
		for _, rd := range sp.reads {
			src := rf[rd]
			if determined[src] && !determined[rd] {
				events[rd].Value = events[src].Value
				determined[rd] = true
				changed = true
			}
		}
		for wrIdx, m := range sp.modify {
			rdIdx := sp.rmwReadOf[wrIdx]
			if determined[rdIdx] && !determined[wrIdx] {
				events[wrIdx].Value = m(events[rdIdx].Value)
				determined[wrIdx] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, e := range events {
		if (e.IsRead() || e.IsWrite()) && !determined[e.Index] {
			return nil // value cycle through RMWs: no consistent values
		}
	}

	return &Execution{Program: sp.p, Events: events, RF: rf, WS: ws}
}

// permutations returns all permutations of the input slice. The input is
// not modified. permutations(nil) returns a single empty permutation.
func permutations(in []int) [][]int {
	if len(in) == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur []int, rest []int) {
		if len(rest) == 0 {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, in)
	return out
}
