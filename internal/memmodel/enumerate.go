package memmodel

import "fmt"

// Enumerate generates all candidate executions of a litmus program. It is
// a convenience wrapper around EnumerateFunc that materializes the whole
// candidate set; callers that only need to scan candidates (validity
// filtering, outcome collection) should prefer EnumerateFunc, which
// allocates one execution at a time.
func Enumerate(p *Program) ([]*Execution, error) {
	var out []*Execution
	err := EnumerateFunc(p, func(x *Execution) bool {
		out = append(out, x)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EnumerateFunc generates all candidate executions of a litmus program and
// streams them to visit, one at a time: every combination of a reads-from
// map (each read may read from any write to the same location, including
// the initial write, but not from the write half of its own RMW) and a
// per-location write serialization (every permutation of the non-initial
// writes, with the initial write first).
//
// Values are then propagated: plain writes keep their program value and
// RMW writes receive Modify(value read by their read half). Candidates
// whose value propagation does not converge (cyclic value dependencies
// through RMWs) are dropped and never reach visit.
//
// The visited executions are candidates only: callers must still filter
// by validity (Execution.BaseValid for the base model, or the RMW-aware
// check in internal/core). Each visited execution owns its events and may
// be retained. Returning false from visit stops the enumeration early.
func EnumerateFunc(p *Program, visit func(*Execution) bool) error {
	if err := p.Validate(); err != nil {
		return err
	}
	events, err := buildEvents(p)
	if err != nil {
		return err
	}

	// Group writes and reads by location.
	writesByAddr := map[Addr][]int{}
	var reads []int
	for _, e := range events {
		if e.IsWrite() {
			writesByAddr[e.Addr] = append(writesByAddr[e.Addr], e.Index)
		}
		if e.IsRead() {
			reads = append(reads, e.Index)
		}
	}

	// Enumerate rf choices: for each read, the set of candidate source
	// writes.
	choices := make([][]int, len(reads))
	for i, rd := range reads {
		r := events[rd]
		for _, w := range writesByAddr[r.Addr] {
			if events[w].SameRMW(r) {
				continue // Ra never reads from its own Wa
			}
			choices[i] = append(choices[i], w)
		}
		if len(choices[i]) == 0 {
			return fmt.Errorf("memmodel: read %s has no candidate writes", r)
		}
	}

	// Enumerate ws choices: per location, the initial write followed by
	// every permutation of the remaining writes.
	addrs := p.Addrs()
	wsChoices := make([][][]int, len(addrs))
	for i, a := range addrs {
		var init int = -1
		var rest []int
		for _, w := range writesByAddr[a] {
			if events[w].IsInit() {
				init = w
			} else {
				rest = append(rest, w)
			}
		}
		perms := permutations(rest)
		for _, perm := range perms {
			order := append([]int{init}, perm...)
			wsChoices[i] = append(wsChoices[i], order)
		}
	}

	rfAssign := make([]int, len(reads))
	wsAssign := make([]int, len(addrs))
	stopped := false

	var rec func(level int)
	buildWS := func() map[Addr][]int {
		ws := map[Addr][]int{}
		for i, a := range addrs {
			order := wsChoices[i][wsAssign[i]]
			cp := make([]int, len(order))
			copy(cp, order)
			ws[a] = cp
		}
		return ws
	}
	var recWS func(level int)
	recWS = func(level int) {
		if stopped {
			return
		}
		if level == len(addrs) {
			if exec := assemble(p, events, reads, rfAssign, buildWS()); exec != nil {
				if !visit(exec) {
					stopped = true
				}
			}
			return
		}
		for i := range wsChoices[level] {
			if stopped {
				return
			}
			wsAssign[level] = i
			recWS(level + 1)
		}
	}
	rec = func(level int) {
		if stopped {
			return
		}
		if level == len(reads) {
			recWS(0)
			return
		}
		for _, w := range choices[level] {
			if stopped {
				return
			}
			rfAssign[level] = w
			rec(level + 1)
		}
	}
	rec(0)
	return nil
}

// CountCandidates returns the number of candidate executions Enumerate
// would generate for the program, without materializing them. Useful for
// bounding litmus-test cost.
func CountCandidates(p *Program) (int, error) {
	events, err := buildEvents(p)
	if err != nil {
		return 0, err
	}
	writesByAddr := map[Addr][]int{}
	nonInitWrites := map[Addr]int{}
	var readChoices int = 1
	for _, e := range events {
		if e.IsWrite() {
			writesByAddr[e.Addr] = append(writesByAddr[e.Addr], e.Index)
			if !e.IsInit() {
				nonInitWrites[e.Addr]++
			}
		}
	}
	for _, e := range events {
		if e.IsRead() {
			c := 0
			for _, w := range writesByAddr[e.Addr] {
				if !events[w].SameRMW(e) {
					c++
				}
			}
			readChoices *= c
		}
	}
	wsChoices := 1
	for _, k := range nonInitWrites {
		wsChoices *= factorial(k)
	}
	return readChoices * wsChoices, nil
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// buildEvents constructs the event templates for a program: one initial
// write per accessed location followed by the events of each thread in
// program order (RMW instructions contribute a read and a write event
// sharing an RMW identifier).
func buildEvents(p *Program) ([]*Event, error) {
	var events []*Event
	idx := 0
	add := func(e *Event) *Event {
		e.Index = idx
		idx++
		events = append(events, e)
		return e
	}
	for _, a := range p.Addrs() {
		v := Value(0)
		if iv, ok := p.Init[a]; ok {
			v = iv
		}
		add(&Event{Thread: InitThread, Kind: KindInit, Addr: a, Value: v, PO: 0, RMW: -1})
	}
	rmwID := 0
	for ti, t := range p.Threads {
		for ii, in := range t {
			switch in.Kind {
			case InstrRead:
				add(&Event{Thread: ThreadID(ti), Kind: KindRead, Addr: in.Addr, PO: ii, RMW: -1, Label: in.Reg})
			case InstrWrite:
				add(&Event{Thread: ThreadID(ti), Kind: KindWrite, Addr: in.Addr, Value: in.Value, PO: ii, RMW: -1})
			case InstrFence:
				add(&Event{Thread: ThreadID(ti), Kind: KindFence, PO: ii, RMW: -1})
			case InstrRMW:
				add(&Event{Thread: ThreadID(ti), Kind: KindRMWRead, Addr: in.Addr, PO: ii, RMW: rmwID, Label: in.Reg})
				add(&Event{Thread: ThreadID(ti), Kind: KindRMWWrite, Addr: in.Addr, PO: ii, RMW: rmwID})
				rmwID++
			default:
				return nil, fmt.Errorf("memmodel: unknown instruction kind %d", int(in.Kind))
			}
		}
	}
	return events, nil
}

// assemble builds an Execution for a specific rf and ws assignment,
// propagating values. It returns nil if value propagation fails to
// converge (cyclic RMW value dependency), which corresponds to no
// consistent assignment of values.
func assemble(p *Program, template []*Event, reads []int, rfAssign []int, ws map[Addr][]int) *Execution {
	// Deep copy events so each execution owns its values.
	events := make([]*Event, len(template))
	for i, e := range template {
		cp := *e
		events[i] = &cp
	}
	rf := map[int]int{}
	for i, rd := range reads {
		rf[rd] = rfAssign[i]
	}

	// Map RMW write events back to their Modify functions.
	modify := map[int]ModifyFunc{}
	rmwReadOf := map[int]int{} // write index -> read index of the same RMW
	rmwID := 0
	for ti, t := range p.Threads {
		for ii, in := range t {
			if in.Kind != InstrRMW {
				continue
			}
			// Locate the two events for this RMW.
			var rdIdx, wrIdx int = -1, -1
			for _, e := range events {
				if e.Thread == ThreadID(ti) && e.PO == ii && e.RMW == rmwID {
					if e.Kind == KindRMWRead {
						rdIdx = e.Index
					} else if e.Kind == KindRMWWrite {
						wrIdx = e.Index
					}
				}
			}
			if rdIdx < 0 || wrIdx < 0 {
				return nil
			}
			m := in.Modify
			if m == nil {
				v := in.Value
				m = func(Value) Value { return v }
			}
			modify[wrIdx] = m
			rmwReadOf[wrIdx] = rdIdx
			rmwID++
		}
	}

	// Value propagation: read values come from their rf source; RMW write
	// values come from applying Modify to the read value. Iterate to a
	// fixpoint (chains of RMWs reading from RMW writes converge in at most
	// len(events) rounds; cycles never converge and are rejected).
	determined := map[int]bool{}
	for _, e := range events {
		if e.IsWrite() && modify[e.Index] == nil {
			determined[e.Index] = true // plain or initial write: value fixed
		}
	}
	for round := 0; round <= len(events); round++ {
		changed := false
		for _, rd := range reads {
			src := rf[rd]
			if determined[src] && !determined[rd] {
				events[rd].Value = events[src].Value
				determined[rd] = true
				changed = true
			}
		}
		for wrIdx, m := range modify {
			rdIdx := rmwReadOf[wrIdx]
			if determined[rdIdx] && !determined[wrIdx] {
				events[wrIdx].Value = m(events[rdIdx].Value)
				determined[wrIdx] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, e := range events {
		if (e.IsRead() || e.IsWrite()) && !determined[e.Index] {
			return nil // value cycle through RMWs: no consistent values
		}
	}

	return &Execution{Program: p, Events: events, RF: rf, WS: ws}
}

// permutations returns all permutations of the input slice. The input is
// not modified. permutations(nil) returns a single empty permutation.
func permutations(in []int) [][]int {
	if len(in) == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur []int, rest []int) {
		if len(rest) == 0 {
			cp := make([]int, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for i := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, in)
	return out
}
