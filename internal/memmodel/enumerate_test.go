package memmodel

import (
	"testing"
)

// storeBuffering is the classic SB litmus test: two threads each write one
// location and read the other. TSO (without fences) allows both reads to
// return 0.
func storeBuffering() *Program {
	p := NewProgram("SB")
	p.AddThread(Write(0, 1), Read(1, "r1"))
	p.AddThread(Write(1, 1), Read(0, "r2"))
	return p
}

// messagePassing is the MP litmus test: thread 0 writes data then flag,
// thread 1 reads flag then data.
func messagePassing() *Program {
	p := NewProgram("MP")
	p.AddThread(Write(0, 1), Write(1, 1))
	p.AddThread(Read(1, "r1"), Read(0, "r2"))
	return p
}

func TestEnumerateCountsSB(t *testing.T) {
	p := storeBuffering()
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	// Each read has 2 candidate writes (init or the other thread's write);
	// each location has one non-init write so only one ws per location.
	want, err := CountCandidates(p)
	if err != nil {
		t.Fatalf("CountCandidates: %v", err)
	}
	if want != 4 {
		t.Fatalf("CountCandidates = %d, want 4", want)
	}
	if len(execs) != want {
		t.Fatalf("Enumerate produced %d executions, CountCandidates says %d", len(execs), want)
	}
}

func TestEnumerateEventConstruction(t *testing.T) {
	p := storeBuffering()
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	x := execs[0]
	// 2 init writes + 4 thread events.
	if len(x.Events) != 6 {
		t.Fatalf("event count = %d, want 6", len(x.Events))
	}
	inits := 0
	for _, e := range x.Events {
		if e.Index != indexOf(x, e) {
			t.Errorf("event %v Index field inconsistent", e)
		}
		if e.IsInit() {
			inits++
			if e.Thread != InitThread {
				t.Errorf("init event on thread %d", e.Thread)
			}
		}
	}
	if inits != 2 {
		t.Fatalf("init events = %d, want 2", inits)
	}
}

func indexOf(x *Execution, e *Event) int {
	for i, other := range x.Events {
		if other == e {
			return i
		}
	}
	return -1
}

func TestEnumerateValuePropagationPlainWrites(t *testing.T) {
	p := storeBuffering()
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	for _, x := range execs {
		for read, write := range x.RFMap() {
			if x.Events[read].Value != x.Events[write].Value {
				t.Fatalf("read %v does not carry the value of its rf source %v",
					x.Events[read], x.Events[write])
			}
			if x.Events[read].Addr != x.Events[write].Addr {
				t.Fatalf("rf pairs different locations: %v -> %v", x.Events[write], x.Events[read])
			}
		}
	}
}

func TestEnumerateRMWValuePropagation(t *testing.T) {
	// Single thread: fetch-add 1 twice on x starting from 0. In the unique
	// sequential execution the two RMWs must read 0,1 and write 1,2 -- but
	// enumeration also produces candidates where the second RMW reads from
	// init; those are pruned later by uniproc. Here we only check value
	// propagation of each candidate is internally consistent.
	p := NewProgram("faa-chain")
	p.AddThread(FetchAdd(0, "r1", 1), FetchAdd(0, "r2", 1))
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(execs) == 0 {
		t.Fatal("no candidates")
	}
	for _, x := range execs {
		for _, e := range x.Events {
			if e.Kind != KindRMWWrite {
				continue
			}
			// The Wa value must equal the value read by its Ra plus 1.
			var ra *Event
			for _, o := range x.Events {
				if o.Kind == KindRMWRead && o.SameRMW(e) {
					ra = o
				}
			}
			if ra == nil {
				t.Fatal("missing Ra for Wa")
			}
			if e.Value != ra.Value+1 {
				t.Errorf("Wa value %d, want Ra value %d + 1", e.Value, ra.Value)
			}
		}
	}
}

func TestEnumerateRMWNeverReadsOwnWrite(t *testing.T) {
	p := NewProgram("rmw-own")
	p.AddThread(Exchange(0, "r1", 1))
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	for _, x := range execs {
		for read, write := range x.RFMap() {
			if x.Events[read].SameRMW(x.Events[write]) {
				t.Fatal("Ra reads from its own Wa")
			}
		}
	}
}

func TestEnumerateInitialValues(t *testing.T) {
	p := NewProgram("init-values")
	p.SetInit(0, 42)
	p.AddThread(Read(0, "r1"))
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(execs) != 1 {
		t.Fatalf("%d executions, want 1", len(execs))
	}
	regs := execs[0].RegisterValues()
	if regs["P0:r1"] != 42 {
		t.Fatalf("read of initialized location = %d, want 42", regs["P0:r1"])
	}
}

func TestEnumerateRejectsInvalidProgram(t *testing.T) {
	p := NewProgram("bad")
	if _, err := Enumerate(p); err == nil {
		t.Fatal("Enumerate of an empty program must fail")
	}
}

func TestEnumerateWSPermutations(t *testing.T) {
	// Two writes to the same location from different threads: 2 coherence
	// orders.
	p := NewProgram("coww")
	p.AddThread(Write(0, 1))
	p.AddThread(Write(0, 2))
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(execs) != 2 {
		t.Fatalf("%d executions, want 2 (two ws orders)", len(execs))
	}
	finals := map[Value]bool{}
	for _, x := range execs {
		finals[x.FinalMemory()[0]] = true
	}
	if !finals[1] || !finals[2] {
		t.Fatalf("final values %v, want both 1 and 2 reachable", finals)
	}
}

func TestCountCandidatesMatchesEnumerate(t *testing.T) {
	programs := []*Program{storeBuffering(), messagePassing()}
	dekker := NewProgram("dekker-rmw")
	dekker.AddThread(Exchange(0, "a1", 1), Read(1, "r1"))
	dekker.AddThread(Exchange(1, "a2", 1), Read(0, "r2"))
	programs = append(programs, dekker)
	for _, p := range programs {
		execs, err := Enumerate(p)
		if err != nil {
			t.Fatalf("%s: Enumerate: %v", p.Name, err)
		}
		count, err := CountCandidates(p)
		if err != nil {
			t.Fatalf("%s: CountCandidates: %v", p.Name, err)
		}
		if len(execs) != count {
			t.Errorf("%s: Enumerate=%d CountCandidates=%d", p.Name, len(execs), count)
		}
	}
}

func TestPermutations(t *testing.T) {
	if got := permutations(nil); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("permutations(nil) = %v, want one empty permutation", got)
	}
	got := permutations([]int{1, 2, 3})
	if len(got) != 6 {
		t.Fatalf("permutations of 3 elements = %d, want 6", len(got))
	}
	seen := map[[3]int]bool{}
	for _, p := range got {
		if len(p) != 3 {
			t.Fatalf("permutation of wrong length: %v", p)
		}
		seen[[3]int{p[0], p[1], p[2]}] = true
	}
	if len(seen) != 6 {
		t.Fatalf("duplicate permutations: %v", got)
	}
}

func TestCountCandidatesRMWValueCycles(t *testing.T) {
	// Two test-and-sets on one location: the candidate where each Ra reads
	// from the other's Wa has a cyclic value dependency and is dropped by
	// assemble, so CountCandidates must not include it either.
	p := NewProgram("tas-race")
	p.AddThread(TestAndSet(0, "r0"))
	p.AddThread(TestAndSet(0, "r1"))
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	count, err := CountCandidates(p)
	if err != nil {
		t.Fatalf("CountCandidates: %v", err)
	}
	if len(execs) != count {
		t.Fatalf("Enumerate=%d CountCandidates=%d; the cyclic rf assignment must be excluded from both", len(execs), count)
	}
	// Each Ra can read init or the other Wa (2x2 rf), with ws = 2
	// coherence orders; exactly one rf assignment (mutual reads) is
	// cyclic, leaving 3x2 = 6 candidates.
	if count != 6 {
		t.Fatalf("CountCandidates = %d, want 6", count)
	}
}

func TestCountCandidatesRejectsInvalidProgram(t *testing.T) {
	if _, err := CountCandidates(NewProgram("bad")); err == nil {
		t.Fatal("CountCandidates of an empty program must fail, like Enumerate")
	}
}
