// Package memmodel implements the base axiomatic Total-Store-Order (TSO)
// memory model used by the paper "Fast RMWs for TSO: Semantics and
// Implementation" (PLDI 2013), following Alglave's framework.
//
// The package provides:
//
//   - a representation of memory events (reads, writes, fences, and the
//     read/write halves of read-modify-write instructions),
//   - a small program representation from which candidate executions are
//     enumerated (all reads-from maps and write serializations),
//   - the derived TSO relations: program order (po), preserved program
//     order (ppo), barrier order (bar), write serialization (ws),
//     reads-from (rf), external reads-from (rfe), from-reads (fr) and the
//     communication relation com = ws ∪ rfe ∪ fr,
//   - validity checks for the base model: acyclicity of com ∪ ppo ∪ bar
//     and the uniproc (SC-per-location) condition.
//
// RMW atomicity (type-1/2/3) and the induced ato orderings are layered on
// top of this package by internal/core.
package memmodel

import "fmt"

// ThreadID identifies a hardware thread (processor) in a litmus program.
// The pseudo-thread InitThread owns the initial writes of every location.
type ThreadID int

// InitThread is the thread that owns initial-value writes.
const InitThread ThreadID = -1

// Addr is a memory location. Litmus programs conventionally use small
// integers; the String method renders 0..25 as x, y, z, a, b, ...
type Addr int

// Value is the value read or written by a memory event.
type Value int

// EventKind classifies a memory event.
type EventKind int

// Event kinds.
const (
	// KindRead is a plain load.
	KindRead EventKind = iota
	// KindWrite is a plain store.
	KindWrite
	// KindFence is a full memory barrier (mfence).
	KindFence
	// KindRMWRead is the read half (Ra) of a read-modify-write.
	KindRMWRead
	// KindRMWWrite is the write half (Wa) of a read-modify-write.
	KindRMWWrite
	// KindInit is the implicit initial write of a location.
	KindInit
)

// String returns a short mnemonic for the kind.
func (k EventKind) String() string {
	switch k {
	case KindRead:
		return "R"
	case KindWrite:
		return "W"
	case KindFence:
		return "F"
	case KindRMWRead:
		return "Ra"
	case KindRMWWrite:
		return "Wa"
	case KindInit:
		return "Init"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// IsRead reports whether the event kind reads memory.
func (k EventKind) IsRead() bool { return k == KindRead || k == KindRMWRead }

// IsWrite reports whether the event kind writes memory.
func (k EventKind) IsWrite() bool { return k == KindWrite || k == KindRMWWrite || k == KindInit }

// IsMemory reports whether the kind is a memory access (not a fence).
func (k EventKind) IsMemory() bool { return k != KindFence }

// Event is a single memory event in a candidate execution. Events are
// identified by their index in Execution.Events.
type Event struct {
	// Index is the position of the event in the owning execution's event
	// slice. It is assigned by the enumerator.
	Index int
	// Thread is the issuing thread (InitThread for initial writes).
	Thread ThreadID
	// Kind classifies the event.
	Kind EventKind
	// Addr is the accessed location (meaningless for fences).
	Addr Addr
	// Value is the value written (for writes) or read (for reads); read
	// values are filled in once a reads-from map has been chosen.
	Value Value
	// PO is the program-order index of the originating instruction within
	// its thread.
	PO int
	// RMW is the identifier of the RMW instruction this event belongs to,
	// or -1 for events that are not part of an RMW. The read and write
	// halves of one RMW share the same identifier.
	RMW int
	// Label is an optional human-readable tag carried over from the
	// instruction (used by litmus tests to name observed registers).
	Label string
}

// IsRead reports whether e reads memory.
func (e *Event) IsRead() bool { return e.Kind.IsRead() }

// IsWrite reports whether e writes memory.
func (e *Event) IsWrite() bool { return e.Kind.IsWrite() }

// IsFence reports whether e is a barrier.
func (e *Event) IsFence() bool { return e.Kind == KindFence }

// IsInit reports whether e is an initial write.
func (e *Event) IsInit() bool { return e.Kind == KindInit }

// SameRMW reports whether e and other are the two halves of the same RMW
// instruction.
func (e *Event) SameRMW(other *Event) bool {
	return e.RMW >= 0 && e.RMW == other.RMW && e.Thread == other.Thread
}

// AddrName renders an address using litmus conventions (x, y, z, a, ...).
func AddrName(a Addr) string {
	names := []string{"x", "y", "z", "a", "b", "c", "d", "e", "f", "g"}
	if int(a) >= 0 && int(a) < len(names) {
		return names[a]
	}
	return fmt.Sprintf("m%d", int(a))
}

// String renders the event in the paper's notation, e.g. "P0:W(x)=1" or
// "P1:Ra(y)=0".
func (e *Event) String() string {
	if e.Kind == KindFence {
		return fmt.Sprintf("P%d:F", int(e.Thread))
	}
	tid := fmt.Sprintf("P%d", int(e.Thread))
	if e.Thread == InitThread {
		tid = "init"
	}
	return fmt.Sprintf("%s:%s(%s)=%d", tid, e.Kind, AddrName(e.Addr), int(e.Value))
}
