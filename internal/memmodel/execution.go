package memmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Execution is one candidate execution of a litmus program: a set of
// events together with a reads-from assignment and a write serialization.
// The rf/ws state is slice-backed and indexed by event index, so assembling
// a candidate into a reused Execution allocates nothing; the derived TSO
// relations are computed lazily into storage embedded in the struct.
//
// Executions handed to enumeration visitors are owned by the enumerator's
// per-worker arena and are valid only for the duration of the visit; use
// Clone to retain one. The relations returned by the accessor methods
// (PO, PPO, Bar, POLoc, WSRel, RFRel, RFE, FR, Com) point into shared or
// embedded storage and must not be modified; BaseOrder returns a fresh
// relation the caller owns.
type Execution struct {
	// Program is the originating program.
	Program *Program
	// Events holds all events, including one KindInit write per accessed
	// location. Event.Index equals the slice index.
	Events []*Event

	// rf maps each event index to the index of the write it reads from, or
	// -1 for non-read events.
	rf []int
	// wsAddrs lists the accessed locations in ascending order; wsOrders[i]
	// is the coherence order of all writes to wsAddrs[i] (event indices,
	// initial write first). The order slices may alias storage shared with
	// other executions of the same program and are never mutated.
	wsAddrs  []Addr
	wsOrders [][]int

	// inv holds the relations that depend only on the program's events, not
	// on the rf/ws choice — shared read-only across every candidate of one
	// enumeration. Built lazily for hand-constructed executions.
	inv *invariantRels

	// Per-candidate relations, embedded so arena reuse keeps their backing
	// arrays. The have flags are cleared when a slot is reassembled.
	wsRel, rfRel, rfeRel, frRel, comRel, scratch Relation

	haveWS, haveRF, haveRFE, haveFR, haveCom bool
}

// invariantRels holds the derived relations that are functions of the event
// set alone (kinds, threads, program order, locations): po, ppo, bar and
// poloc. They are computed once per program and shared read-only by every
// candidate execution of an enumeration.
type invariantRels struct {
	po, ppo, bar, poloc Relation
}

// newInvariantRels derives the candidate-independent relations from the
// event set.
func newInvariantRels(events []*Event) *invariantRels {
	n := len(events)
	inv := &invariantRels{}
	inv.po.Reset(n)
	inv.ppo.Reset(n)
	inv.bar.Reset(n)
	inv.poloc.Reset(n)

	po := &inv.po
	for _, a := range events {
		for _, b := range events {
			if a.Index == b.Index {
				continue
			}
			if a.IsInit() && !b.IsInit() {
				// Initial writes precede everything. They are not strictly
				// part of po, but ordering them first keeps every derived
				// order consistent with "locations start at their initial
				// values".
				po.Add(a.Index, b.Index)
				continue
			}
			if a.Thread == b.Thread && a.Thread != InitThread && a.PO < b.PO {
				po.Add(a.Index, b.Index)
			}
			if a.Thread == b.Thread && a.Thread != InitThread && a.PO == b.PO && a.RMW >= 0 && a.RMW == b.RMW {
				// Within an RMW, the read precedes the write.
				if a.Kind == KindRMWRead && b.Kind == KindRMWWrite {
					po.Add(a.Index, b.Index)
				}
			}
		}
	}

	for _, a := range events {
		for _, b := range events {
			if !po.Has(a.Index, b.Index) {
				continue
			}
			if a.Kind.IsMemory() && b.Kind.IsMemory() && a.Addr == b.Addr {
				inv.poloc.Add(a.Index, b.Index)
			}
			if a.IsInit() {
				// Keep init-before-everything ordering in ppo so it appears
				// in the global order.
				inv.ppo.Add(a.Index, b.Index)
				continue
			}
			if !a.Kind.IsMemory() || !b.Kind.IsMemory() {
				continue
			}
			// TSO relaxes only W -> R program order, but the write and read
			// halves of one RMW stay ordered.
			if a.IsWrite() && b.IsRead() && !a.SameRMW(b) {
				continue
			}
			inv.ppo.Add(a.Index, b.Index)
		}
	}

	for _, f := range events {
		if !f.IsFence() {
			continue
		}
		for _, a := range events {
			if !a.Kind.IsMemory() || !po.Has(a.Index, f.Index) {
				continue
			}
			for _, b := range events {
				if !b.Kind.IsMemory() || !po.Has(f.Index, b.Index) {
					continue
				}
				inv.bar.Add(a.Index, b.Index)
			}
		}
	}
	return inv
}

// NewExecution constructs an execution from a reads-from map (read event
// index -> source write event index) and per-location coherence orders. It
// is the map-edge constructor for hand-built executions and tests; the
// enumerator assembles executions directly into arena slots.
func NewExecution(p *Program, events []*Event, rf map[int]int, ws map[Addr][]int) *Execution {
	x := &Execution{Program: p, Events: events}
	x.rf = make([]int, len(events))
	for i := range x.rf {
		x.rf[i] = -1
	}
	for rd, w := range rf {
		x.rf[rd] = w
	}
	x.wsAddrs = make([]Addr, 0, len(ws))
	for a := range ws {
		x.wsAddrs = append(x.wsAddrs, a)
	}
	sort.Slice(x.wsAddrs, func(i, j int) bool { return x.wsAddrs[i] < x.wsAddrs[j] })
	x.wsOrders = make([][]int, len(x.wsAddrs))
	for i, a := range x.wsAddrs {
		order := make([]int, len(ws[a]))
		copy(order, ws[a])
		x.wsOrders[i] = order
	}
	return x
}

// Clone returns a deep copy of the execution that remains valid after the
// enumerator reuses the original's arena slot: events, rf and ws are
// copied; the shared candidate-independent relations are reused (they are
// immutable and common to every execution of the program).
func (x *Execution) Clone() *Execution {
	c := &Execution{Program: x.Program, inv: x.inv}
	c.Events = make([]*Event, len(x.Events))
	evs := make([]Event, len(x.Events))
	for i, e := range x.Events {
		evs[i] = *e
		c.Events[i] = &evs[i]
	}
	c.rf = make([]int, len(x.rf))
	copy(c.rf, x.rf)
	c.wsAddrs = make([]Addr, len(x.wsAddrs))
	copy(c.wsAddrs, x.wsAddrs)
	c.wsOrders = make([][]int, len(x.wsOrders))
	for i, order := range x.wsOrders {
		cp := make([]int, len(order))
		copy(cp, order)
		c.wsOrders[i] = cp
	}
	return c
}

// resetDerived invalidates the cached per-candidate relations; the arena
// calls it when a slot is reassembled for a new candidate.
func (x *Execution) resetDerived() {
	x.haveWS, x.haveRF, x.haveRFE, x.haveFR, x.haveCom = false, false, false, false, false
}

// invariants returns the shared candidate-independent relations, deriving
// them on first use for executions not built by an enumeration.
func (x *Execution) invariants() *invariantRels {
	if x.inv == nil {
		x.inv = newInvariantRels(x.Events)
	}
	return x.inv
}

// ReadsFrom returns the index of the write the given read event reads
// from. ok is false when the event is not a read.
func (x *Execution) ReadsFrom(read int) (write int, ok bool) {
	if read < 0 || read >= len(x.rf) || x.rf[read] < 0 {
		return -1, false
	}
	return x.rf[read], true
}

// RFMap returns the reads-from assignment as a freshly allocated map from
// read event index to source write index — the compatibility edge for
// callers that want map form; hot paths should use ReadsFrom.
func (x *Execution) RFMap() map[int]int {
	out := make(map[int]int)
	for rd, w := range x.rf {
		if w >= 0 {
			out[rd] = w
		}
	}
	return out
}

// WSAddrs returns the accessed locations in ascending order. The slice is
// shared with the execution and must not be modified.
func (x *Execution) WSAddrs() []Addr { return x.wsAddrs }

// WSOrder returns the coherence order of all writes to a location (event
// indices, initial write first), or nil if the location is not accessed.
// The slice is shared and must not be modified.
func (x *Execution) WSOrder(a Addr) []int {
	for i, addr := range x.wsAddrs {
		if addr == a {
			return x.wsOrders[i]
		}
	}
	return nil
}

// WSMap returns the write serialization as a freshly allocated map from
// location to coherence order — the compatibility edge for callers that
// want map form; hot paths should use WSAddrs/WSOrder.
func (x *Execution) WSMap() map[Addr][]int {
	out := make(map[Addr][]int, len(x.wsAddrs))
	for i, a := range x.wsAddrs {
		cp := make([]int, len(x.wsOrders[i]))
		copy(cp, x.wsOrders[i])
		out[a] = cp
	}
	return out
}

// EventsByThread returns the events of a thread in program order.
func (x *Execution) EventsByThread(t ThreadID) []*Event {
	var out []*Event
	for _, e := range x.Events {
		if e.Thread == t {
			out = append(out, e)
		}
	}
	return out
}

// FindEvent returns the first event matching the predicate, or nil.
func (x *Execution) FindEvent(pred func(*Event) bool) *Event {
	for _, e := range x.Events {
		if pred(e) {
			return e
		}
	}
	return nil
}

// PO returns the program-order relation: a per-thread total order over all
// events of the same thread (memory accesses and fences). Initial writes
// are ordered before every event of every thread. The relation is shared
// across candidates and must not be modified.
func (x *Execution) PO() *Relation { return &x.invariants().po }

// PPO returns the preserved-program-order relation under TSO: all po pairs
// of memory accesses except write-to-read pairs. Pairs internal to a
// single RMW (Ra -> Wa) are preserved. Fences do not appear in ppo; their
// effect is captured by Bar. The relation is shared across candidates and
// must not be modified.
func (x *Execution) PPO() *Relation { return &x.invariants().ppo }

// Bar returns the barrier relation: memory accesses of the same thread
// separated in program order by a fence. The relation is shared across
// candidates and must not be modified.
func (x *Execution) Bar() *Relation { return &x.invariants().bar }

// POLoc returns program order restricted to pairs of accesses to the same
// location. The relation is shared across candidates and must not be
// modified.
func (x *Execution) POLoc() *Relation { return &x.invariants().poloc }

// WSRel returns the write-serialization relation derived from the
// per-location coherence orders. The relation lives in the execution and
// must not be modified.
func (x *Execution) WSRel() *Relation {
	if x.haveWS {
		return &x.wsRel
	}
	x.wsRel.Reset(len(x.Events))
	for _, order := range x.wsOrders {
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				x.wsRel.Add(order[i], order[j])
			}
		}
	}
	x.haveWS = true
	return &x.wsRel
}

// RFRel returns the reads-from relation as a Relation (write -> read). The
// relation lives in the execution and must not be modified.
func (x *Execution) RFRel() *Relation {
	if x.haveRF {
		return &x.rfRel
	}
	x.rfRel.Reset(len(x.Events))
	for rd, w := range x.rf {
		if w >= 0 {
			x.rfRel.Add(w, rd)
		}
	}
	x.haveRF = true
	return &x.rfRel
}

// RFE returns the external reads-from relation: rf pairs whose write and
// read are on different threads (reads from the initial write are
// external). The relation lives in the execution and must not be modified.
func (x *Execution) RFE() *Relation {
	if x.haveRFE {
		return &x.rfeRel
	}
	x.rfeRel.Reset(len(x.Events))
	for rd, w := range x.rf {
		if w >= 0 && x.Events[w].Thread != x.Events[rd].Thread {
			x.rfeRel.Add(w, rd)
		}
	}
	x.haveRFE = true
	return &x.rfeRel
}

// FR returns the from-reads relation: each read is ordered before every
// write to the same location that is coherence-after the write it read
// from. The relation lives in the execution and must not be modified.
func (x *Execution) FR() *Relation {
	if x.haveFR {
		return &x.frRel
	}
	x.frRel.Reset(len(x.Events))
	for rd, w := range x.rf {
		if w < 0 {
			continue
		}
		order := x.WSOrder(x.Events[rd].Addr)
		pos := -1
		for i, wr := range order {
			if wr == w {
				pos = i
				break
			}
		}
		if pos < 0 {
			continue
		}
		for _, later := range order[pos+1:] {
			if later != rd {
				x.frRel.Add(rd, later)
			}
		}
	}
	x.haveFR = true
	return &x.frRel
}

// Com returns the communication relation com = ws ∪ rfe ∪ fr. The relation
// lives in the execution and must not be modified.
func (x *Execution) Com() *Relation {
	if x.haveCom {
		return &x.comRel
	}
	ws, rfe, fr := x.WSRel(), x.RFE(), x.FR()
	x.comRel.Reset(len(x.Events))
	x.comRel.Union(ws)
	x.comRel.Union(rfe)
	x.comRel.Union(fr)
	x.haveCom = true
	return &x.comRel
}

// Uniproc reports whether the execution satisfies the uniproc (SC per
// location) condition: program order restricted to same-location accesses
// is consistent with com and rf. The check reuses scratch storage in the
// execution and allocates nothing once the relations are built.
func (x *Execution) Uniproc() bool {
	ws, fr, rf, poloc := x.WSRel(), x.FR(), x.RFRel(), x.POLoc()
	x.scratch.Reset(len(x.Events))
	x.scratch.Union(poloc)
	x.scratch.Union(ws)
	x.scratch.Union(fr)
	x.scratch.Union(rf)
	return x.scratch.Acyclic()
}

// BaseOrder returns com ∪ ppo ∪ bar, the relation whose acyclicity defines
// validity of the base TSO model (without RMW atomicity). Unlike the other
// relation accessors the result is freshly allocated and owned by the
// caller, which may extend it (e.g. with ato edges).
func (x *Execution) BaseOrder() *Relation {
	n := len(x.Events)
	r := NewRelation(n)
	r.Union(x.Com())
	r.Union(x.PPO())
	r.Union(x.Bar())
	return r
}

// BaseValid reports whether the execution is valid in the base TSO model:
// com ∪ ppo ∪ bar is acyclic and uniproc holds. RMW atomicity constraints
// are checked separately by internal/core.
func (x *Execution) BaseValid() bool {
	if !x.Uniproc() {
		return false
	}
	com, ppo, bar := x.Com(), x.PPO(), x.Bar()
	x.scratch.Reset(len(x.Events))
	x.scratch.Union(com)
	x.scratch.Union(ppo)
	x.scratch.Union(bar)
	return x.scratch.Acyclic()
}

// GHB returns one global-happens-before order for the execution: a linear
// extension of the supplied order relation (typically BaseOrder possibly
// extended with ato edges). It returns an error if the relation is cyclic.
func (x *Execution) GHB(order *Relation) ([]*Event, error) {
	idx, err := order.TopoSort()
	if err != nil {
		return nil, err
	}
	out := make([]*Event, len(idx))
	for i, id := range idx {
		out[i] = x.Events[id]
	}
	return out, nil
}

// RegisterValues returns the final value of every named register: the
// value read by the read or RMW-read event carrying that register label,
// keyed by "P<tid>:<reg>".
func (x *Execution) RegisterValues() map[string]Value {
	out := map[string]Value{}
	for _, e := range x.Events {
		if e.IsRead() && e.Label != "" {
			out[fmt.Sprintf("P%d:%s", int(e.Thread), e.Label)] = e.Value
		}
	}
	return out
}

// FinalMemory returns the final value of every location: the value of the
// coherence-last write.
func (x *Execution) FinalMemory() map[Addr]Value {
	out := map[Addr]Value{}
	for i, a := range x.wsAddrs {
		order := x.wsOrders[i]
		if len(order) == 0 {
			continue
		}
		last := order[len(order)-1]
		out[a] = x.Events[last].Value
	}
	return out
}

// Key returns a canonical, deterministic fingerprint of the execution:
// the reads-from pairs in read order, the per-location coherence orders in
// location order, and the final register values. Two executions of the
// same program are the same candidate exactly when their keys are equal,
// so keys serve as multiset identities when comparing enumerations (the
// sequential-vs-parallel differential tests).
func (x *Execution) Key() string {
	var b strings.Builder
	b.WriteString("rf:")
	for rd, w := range x.rf {
		if w >= 0 {
			fmt.Fprintf(&b, " %d<-%d", rd, w)
		}
	}
	b.WriteString(" ws:")
	for i, a := range x.wsAddrs {
		fmt.Fprintf(&b, " %s=%v", AddrName(a), x.wsOrders[i])
	}
	regs := x.RegisterValues()
	names := make([]string, 0, len(regs))
	for k := range regs {
		names = append(names, k)
	}
	sort.Strings(names)
	b.WriteString(" regs:")
	for _, k := range names {
		fmt.Fprintf(&b, " %s=%d", k, int(regs[k]))
	}
	return b.String()
}

// String renders the execution compactly: events, rf and ws. The rendering
// is deterministic — reads in event-index order, locations in ascending
// order (the same orders Key uses) — so failure diagnostics diff cleanly
// across runs.
func (x *Execution) String() string {
	var b strings.Builder
	b.WriteString("events:\n")
	for _, e := range x.Events {
		fmt.Fprintf(&b, "  [%d] %s\n", e.Index, e)
	}
	b.WriteString("rf:\n")
	for rd, w := range x.rf {
		if w >= 0 {
			fmt.Fprintf(&b, "  %s -> %s\n", x.Events[w], x.Events[rd])
		}
	}
	b.WriteString("ws:\n")
	for i, a := range x.wsAddrs {
		fmt.Fprintf(&b, "  %s:", AddrName(a))
		for _, w := range x.wsOrders[i] {
			fmt.Fprintf(&b, " %s", x.Events[w])
		}
		b.WriteString("\n")
	}
	return b.String()
}
