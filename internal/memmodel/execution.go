package memmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Execution is one candidate execution of a litmus program: a set of
// events together with a reads-from map and a write serialization. The
// derived TSO relations are computed lazily and cached.
type Execution struct {
	// Program is the originating program.
	Program *Program
	// Events holds all events, including one KindInit write per accessed
	// location. Event.Index equals the slice index.
	Events []*Event

	// RF maps the index of each read event to the index of the write event
	// it reads from.
	RF map[int]int
	// WS holds, per location, the coherence order of all writes to that
	// location (event indices, initial write first).
	WS map[Addr][]int

	// cached relations
	po  *Relation
	ppo *Relation
	bar *Relation
	ws  *Relation
	rf  *Relation
	rfe *Relation
	fr  *Relation
	com *Relation
}

// EventsByThread returns the events of a thread in program order.
func (x *Execution) EventsByThread(t ThreadID) []*Event {
	var out []*Event
	for _, e := range x.Events {
		if e.Thread == t {
			out = append(out, e)
		}
	}
	return out
}

// FindEvent returns the first event matching the predicate, or nil.
func (x *Execution) FindEvent(pred func(*Event) bool) *Event {
	for _, e := range x.Events {
		if pred(e) {
			return e
		}
	}
	return nil
}

// PO returns the program-order relation: a per-thread total order over all
// events of the same thread (memory accesses and fences). Initial writes
// are ordered before every event of every thread.
func (x *Execution) PO() *Relation {
	if x.po != nil {
		return x.po
	}
	n := len(x.Events)
	r := NewRelation(n)
	for _, a := range x.Events {
		for _, b := range x.Events {
			if a.Index == b.Index {
				continue
			}
			if a.IsInit() && !b.IsInit() {
				// Initial writes precede everything. They are not strictly
				// part of po, but ordering them first keeps every derived
				// order consistent with "locations start at their initial
				// values".
				r.Add(a.Index, b.Index)
				continue
			}
			if a.Thread == b.Thread && a.Thread != InitThread && a.PO < b.PO {
				r.Add(a.Index, b.Index)
			}
			if a.Thread == b.Thread && a.Thread != InitThread && a.PO == b.PO && a.RMW >= 0 && a.RMW == b.RMW {
				// Within an RMW, the read precedes the write.
				if a.Kind == KindRMWRead && b.Kind == KindRMWWrite {
					r.Add(a.Index, b.Index)
				}
			}
		}
	}
	x.po = r
	return r
}

// PPO returns the preserved-program-order relation under TSO: all po pairs
// of memory accesses except write-to-read pairs. Pairs internal to a
// single RMW (Ra -> Wa) are preserved. Fences do not appear in ppo; their
// effect is captured by Bar.
func (x *Execution) PPO() *Relation {
	if x.ppo != nil {
		return x.ppo
	}
	po := x.PO()
	n := len(x.Events)
	r := NewRelation(n)
	for _, a := range x.Events {
		for _, b := range x.Events {
			if !po.Has(a.Index, b.Index) {
				continue
			}
			if a.IsInit() {
				// Keep init-before-everything ordering in ppo so it appears
				// in the global order.
				r.Add(a.Index, b.Index)
				continue
			}
			if !a.Kind.IsMemory() || !b.Kind.IsMemory() {
				continue
			}
			// TSO relaxes only W -> R program order, but the write and read
			// halves of one RMW stay ordered.
			if a.IsWrite() && b.IsRead() && !a.SameRMW(b) {
				continue
			}
			r.Add(a.Index, b.Index)
		}
	}
	x.ppo = r
	return r
}

// Bar returns the barrier relation: memory accesses of the same thread
// separated in program order by a fence.
func (x *Execution) Bar() *Relation {
	if x.bar != nil {
		return x.bar
	}
	po := x.PO()
	n := len(x.Events)
	r := NewRelation(n)
	for _, f := range x.Events {
		if !f.IsFence() {
			continue
		}
		for _, a := range x.Events {
			if !a.Kind.IsMemory() || !po.Has(a.Index, f.Index) {
				continue
			}
			for _, b := range x.Events {
				if !b.Kind.IsMemory() || !po.Has(f.Index, b.Index) {
					continue
				}
				r.Add(a.Index, b.Index)
			}
		}
	}
	x.bar = r
	return r
}

// WSRel returns the write-serialization relation derived from the
// per-location coherence orders.
func (x *Execution) WSRel() *Relation {
	if x.ws != nil {
		return x.ws
	}
	n := len(x.Events)
	r := NewRelation(n)
	for _, order := range x.WS {
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				r.Add(order[i], order[j])
			}
		}
	}
	x.ws = r
	return r
}

// RFRel returns the reads-from relation as a Relation (write -> read).
func (x *Execution) RFRel() *Relation {
	if x.rf != nil {
		return x.rf
	}
	n := len(x.Events)
	r := NewRelation(n)
	for read, write := range x.RF {
		r.Add(write, read)
	}
	x.rf = r
	return r
}

// RFE returns the external reads-from relation: rf pairs whose write and
// read are on different threads (reads from the initial write are
// external).
func (x *Execution) RFE() *Relation {
	if x.rfe != nil {
		return x.rfe
	}
	n := len(x.Events)
	r := NewRelation(n)
	for read, write := range x.RF {
		if x.Events[write].Thread != x.Events[read].Thread {
			r.Add(write, read)
		}
	}
	x.rfe = r
	return r
}

// FR returns the from-reads relation: each read is ordered before every
// write to the same location that is coherence-after the write it read
// from.
func (x *Execution) FR() *Relation {
	if x.fr != nil {
		return x.fr
	}
	n := len(x.Events)
	r := NewRelation(n)
	for read, write := range x.RF {
		addr := x.Events[read].Addr
		order := x.WS[addr]
		pos := -1
		for i, w := range order {
			if w == write {
				pos = i
				break
			}
		}
		if pos < 0 {
			continue
		}
		for _, later := range order[pos+1:] {
			if later != read {
				r.Add(read, later)
			}
		}
	}
	x.fr = r
	return r
}

// Com returns the communication relation com = ws ∪ rfe ∪ fr.
func (x *Execution) Com() *Relation {
	if x.com != nil {
		return x.com
	}
	n := len(x.Events)
	r := NewRelation(n)
	r.Union(x.WSRel())
	r.Union(x.RFE())
	r.Union(x.FR())
	x.com = r
	return r
}

// POLoc returns program order restricted to pairs of accesses to the same
// location.
func (x *Execution) POLoc() *Relation {
	po := x.PO()
	n := len(x.Events)
	r := NewRelation(n)
	for _, a := range x.Events {
		for _, b := range x.Events {
			if a.Kind.IsMemory() && b.Kind.IsMemory() && a.Addr == b.Addr && po.Has(a.Index, b.Index) {
				r.Add(a.Index, b.Index)
			}
		}
	}
	return r
}

// Uniproc reports whether the execution satisfies the uniproc (SC per
// location) condition: program order restricted to same-location accesses
// is consistent with com and rf.
func (x *Execution) Uniproc() bool {
	n := len(x.Events)
	u := NewRelation(n)
	u.Union(x.POLoc())
	u.Union(x.WSRel())
	u.Union(x.FR())
	u.Union(x.RFRel())
	return u.Acyclic()
}

// BaseOrder returns com ∪ ppo ∪ bar, the relation whose acyclicity defines
// validity of the base TSO model (without RMW atomicity).
func (x *Execution) BaseOrder() *Relation {
	n := len(x.Events)
	r := NewRelation(n)
	r.Union(x.Com())
	r.Union(x.PPO())
	r.Union(x.Bar())
	return r
}

// BaseValid reports whether the execution is valid in the base TSO model:
// com ∪ ppo ∪ bar is acyclic and uniproc holds. RMW atomicity constraints
// are checked separately by internal/core.
func (x *Execution) BaseValid() bool {
	return x.Uniproc() && x.BaseOrder().Acyclic()
}

// GHB returns one global-happens-before order for the execution: a linear
// extension of the supplied order relation (typically BaseOrder possibly
// extended with ato edges). It returns an error if the relation is cyclic.
func (x *Execution) GHB(order *Relation) ([]*Event, error) {
	idx, err := order.TopoSort()
	if err != nil {
		return nil, err
	}
	out := make([]*Event, len(idx))
	for i, id := range idx {
		out[i] = x.Events[id]
	}
	return out, nil
}

// RegisterValues returns the final value of every named register: the
// value read by the read or RMW-read event carrying that register label,
// keyed by "P<tid>:<reg>".
func (x *Execution) RegisterValues() map[string]Value {
	out := map[string]Value{}
	for _, e := range x.Events {
		if e.IsRead() && e.Label != "" {
			out[fmt.Sprintf("P%d:%s", int(e.Thread), e.Label)] = e.Value
		}
	}
	return out
}

// FinalMemory returns the final value of every location: the value of the
// coherence-last write.
func (x *Execution) FinalMemory() map[Addr]Value {
	out := map[Addr]Value{}
	for addr, order := range x.WS {
		if len(order) == 0 {
			continue
		}
		last := order[len(order)-1]
		out[addr] = x.Events[last].Value
	}
	return out
}

// Key returns a canonical, deterministic fingerprint of the execution:
// the reads-from pairs in read order, the per-location coherence orders in
// location order, and the final register values. Two executions of the
// same program are the same candidate exactly when their keys are equal,
// so keys serve as multiset identities when comparing enumerations (the
// sequential-vs-parallel differential tests) — unlike String, whose map
// iteration order is nondeterministic.
func (x *Execution) Key() string {
	var b strings.Builder
	reads := make([]int, 0, len(x.RF))
	for rd := range x.RF {
		reads = append(reads, rd)
	}
	sort.Ints(reads)
	b.WriteString("rf:")
	for _, rd := range reads {
		fmt.Fprintf(&b, " %d<-%d", rd, x.RF[rd])
	}
	addrs := make([]int, 0, len(x.WS))
	for a := range x.WS {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	b.WriteString(" ws:")
	for _, a := range addrs {
		fmt.Fprintf(&b, " %s=%v", AddrName(Addr(a)), x.WS[Addr(a)])
	}
	regs := x.RegisterValues()
	names := make([]string, 0, len(regs))
	for k := range regs {
		names = append(names, k)
	}
	sort.Strings(names)
	b.WriteString(" regs:")
	for _, k := range names {
		fmt.Fprintf(&b, " %s=%d", k, int(regs[k]))
	}
	return b.String()
}

// String renders the execution compactly: events, rf and ws.
func (x *Execution) String() string {
	var b strings.Builder
	b.WriteString("events:\n")
	for _, e := range x.Events {
		fmt.Fprintf(&b, "  [%d] %s\n", e.Index, e)
	}
	b.WriteString("rf:\n")
	for read, write := range x.RF {
		fmt.Fprintf(&b, "  %s -> %s\n", x.Events[write], x.Events[read])
	}
	b.WriteString("ws:\n")
	for addr, order := range x.WS {
		fmt.Fprintf(&b, "  %s:", AddrName(addr))
		for _, w := range order {
			fmt.Fprintf(&b, " %s", x.Events[w])
		}
		b.WriteString("\n")
	}
	return b.String()
}
