package memmodel

import (
	"strings"
	"testing"
)

// firstExec enumerates the program and returns one execution satisfying the
// predicate, failing the test if none exists.
func firstExec(t *testing.T, p *Program, pred func(*Execution) bool) *Execution {
	t.Helper()
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	for _, x := range execs {
		if pred(x) {
			return x
		}
	}
	t.Fatal("no execution satisfies predicate")
	return nil
}

func anyExec(t *testing.T, p *Program) *Execution {
	t.Helper()
	return firstExec(t, p, func(*Execution) bool { return true })
}

func TestPOOrdersThreadEventsAndInits(t *testing.T) {
	x := anyExec(t, storeBuffering())
	po := x.PO()
	var w0, r0 *Event
	for _, e := range x.Events {
		if e.Thread == 0 && e.Kind == KindWrite {
			w0 = e
		}
		if e.Thread == 0 && e.Kind == KindRead {
			r0 = e
		}
	}
	if !po.Has(w0.Index, r0.Index) {
		t.Error("po must order P0's write before P0's read")
	}
	if po.Has(r0.Index, w0.Index) {
		t.Error("po must not order P0's read before P0's write")
	}
	for _, e := range x.Events {
		if e.IsInit() && !po.Has(e.Index, w0.Index) {
			t.Error("init writes must precede all thread events")
		}
	}
	// Cross-thread events are unordered by po.
	var w1 *Event
	for _, e := range x.Events {
		if e.Thread == 1 && e.Kind == KindWrite {
			w1 = e
		}
	}
	if po.Has(w0.Index, w1.Index) || po.Has(w1.Index, w0.Index) {
		t.Error("po must not relate events of different threads")
	}
}

func TestPPORelaxesWriteToRead(t *testing.T) {
	x := anyExec(t, storeBuffering())
	ppo := x.PPO()
	var w0, r0 *Event
	for _, e := range x.Events {
		if e.Thread == 0 && e.Kind == KindWrite {
			w0 = e
		}
		if e.Thread == 0 && e.Kind == KindRead {
			r0 = e
		}
	}
	if ppo.Has(w0.Index, r0.Index) {
		t.Error("TSO ppo must not order a write before a program-order-later read")
	}
}

func TestPPOPreservesOtherOrders(t *testing.T) {
	p := NewProgram("orders")
	p.AddThread(Read(0, "r1"), Write(1, 1), Write(2, 1), Read(2, "r2"))
	x := anyExec(t, p)
	ppo := x.PPO()
	events := x.EventsByThread(0)
	// R->W, W->W, W->R(same location? no: W(z) then R(z) is also W->R and
	// relaxed), R->R orders.
	find := func(kind EventKind, addr Addr) *Event {
		for _, e := range events {
			if e.Kind == kind && e.Addr == addr {
				return e
			}
		}
		t.Fatalf("missing event %v(%v)", kind, addr)
		return nil
	}
	r1 := find(KindRead, 0)
	w1 := find(KindWrite, 1)
	w2 := find(KindWrite, 2)
	r2 := find(KindRead, 2)
	if !ppo.Has(r1.Index, w1.Index) {
		t.Error("R->W must be preserved")
	}
	if !ppo.Has(w1.Index, w2.Index) {
		t.Error("W->W must be preserved")
	}
	if !ppo.Has(r1.Index, r2.Index) {
		t.Error("R->R must be preserved")
	}
	if ppo.Has(w2.Index, r2.Index) {
		t.Error("W->R must be relaxed even to the same location")
	}
}

func TestPPOPreservesRMWInternalOrder(t *testing.T) {
	p := NewProgram("rmw-internal")
	p.AddThread(Exchange(0, "r1", 1))
	x := anyExec(t, p)
	ppo := x.PPO()
	var ra, wa *Event
	for _, e := range x.Events {
		if e.Kind == KindRMWRead {
			ra = e
		}
		if e.Kind == KindRMWWrite {
			wa = e
		}
	}
	if !ppo.Has(ra.Index, wa.Index) {
		t.Error("Ra -> Wa of one RMW must be in ppo")
	}
}

func TestBarOrdersAcrossFence(t *testing.T) {
	p := NewProgram("fenced-sb")
	p.AddThread(Write(0, 1), Fence(), Read(1, "r1"))
	x := anyExec(t, p)
	bar := x.Bar()
	var w, r *Event
	for _, e := range x.Events {
		if e.Kind == KindWrite {
			w = e
		}
		if e.Kind == KindRead {
			r = e
		}
	}
	if !bar.Has(w.Index, r.Index) {
		t.Error("bar must order the write before the read across the fence")
	}
	// No fence between init and the write, and bar never includes the fence
	// itself.
	for _, e := range x.Events {
		if e.IsFence() {
			for _, o := range x.Events {
				if bar.Has(e.Index, o.Index) || bar.Has(o.Index, e.Index) {
					t.Error("fence events must not appear in bar")
				}
			}
		}
	}
}

func TestWSRelAndFR(t *testing.T) {
	p := NewProgram("ws-fr")
	p.AddThread(Write(0, 1))
	p.AddThread(Read(0, "r1"))
	// Choose the execution where the read reads the initial value 0; then fr
	// orders it before the write of 1.
	x := firstExec(t, p, func(x *Execution) bool {
		return x.RegisterValues()["P1:r1"] == 0
	})
	var w, r, init *Event
	for _, e := range x.Events {
		switch {
		case e.Kind == KindWrite:
			w = e
		case e.Kind == KindRead:
			r = e
		case e.IsInit():
			init = e
		}
	}
	if !x.WSRel().Has(init.Index, w.Index) {
		t.Error("ws must order the initial write before the later write")
	}
	if !x.FR().Has(r.Index, w.Index) {
		t.Error("fr must order the read (of the init value) before the write")
	}
	if !x.RFE().Has(init.Index, r.Index) {
		t.Error("reading the initial value is an external rf")
	}
}

func TestRFEExcludesInternalRF(t *testing.T) {
	p := NewProgram("internal-rf")
	p.AddThread(Write(0, 1), Read(0, "r1"))
	// Execution where the read reads the thread's own write.
	x := firstExec(t, p, func(x *Execution) bool {
		return x.RegisterValues()["P0:r1"] == 1
	})
	var w, r *Event
	for _, e := range x.Events {
		if e.Kind == KindWrite {
			w = e
		}
		if e.Kind == KindRead {
			r = e
		}
	}
	if !x.RFRel().Has(w.Index, r.Index) {
		t.Fatal("rf missing")
	}
	if x.RFE().Has(w.Index, r.Index) {
		t.Error("same-thread rf must not be in rfe")
	}
}

func TestUniprocRejectsStaleSameThreadRead(t *testing.T) {
	// A thread writes 1 to x and then reads x: reading the initial value 0
	// violates uniproc (CoWR shape).
	p := NewProgram("cowr")
	p.AddThread(Write(0, 1), Read(0, "r1"))
	stale := firstExec(t, p, func(x *Execution) bool {
		return x.RegisterValues()["P0:r1"] == 0
	})
	if stale.Uniproc() {
		t.Error("reading a stale value past the own write must violate uniproc")
	}
	fresh := firstExec(t, p, func(x *Execution) bool {
		return x.RegisterValues()["P0:r1"] == 1
	})
	if !fresh.Uniproc() {
		t.Error("reading the own write must satisfy uniproc")
	}
}

func TestBaseValidAllowsSBRelaxedOutcome(t *testing.T) {
	// The r1=0, r2=0 outcome of SB is TSO-allowed (store buffering).
	execs, err := Enumerate(storeBuffering())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range execs {
		regs := x.RegisterValues()
		if regs["P0:r1"] == 0 && regs["P1:r2"] == 0 && x.BaseValid() {
			found = true
		}
	}
	if !found {
		t.Error("TSO must allow the store-buffering outcome r1=0, r2=0")
	}
}

func TestBaseValidForbidsFencedSB(t *testing.T) {
	p := NewProgram("SB+fences")
	p.AddThread(Write(0, 1), Fence(), Read(1, "r1"))
	p.AddThread(Write(1, 1), Fence(), Read(0, "r2"))
	execs, err := Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range execs {
		regs := x.RegisterValues()
		if regs["P0:r1"] == 0 && regs["P1:r2"] == 0 && x.BaseValid() {
			t.Fatal("fenced SB must forbid r1=0, r2=0")
		}
	}
}

func TestBaseValidForbidsMPReordering(t *testing.T) {
	// MP: flag read 1 but data read 0 must be forbidden under TSO.
	execs, err := Enumerate(messagePassing())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range execs {
		regs := x.RegisterValues()
		if regs["P1:r1"] == 1 && regs["P1:r2"] == 0 && x.BaseValid() {
			t.Fatal("TSO must forbid MP reordering (flag=1, data=0)")
		}
	}
}

func TestGHBIsLinearExtension(t *testing.T) {
	x := anyExec(t, storeBuffering())
	order := x.BaseOrder()
	if !order.Acyclic() {
		t.Skip("picked an invalid candidate")
	}
	ghb, err := x.GHB(order)
	if err != nil {
		t.Fatalf("GHB: %v", err)
	}
	if len(ghb) != len(x.Events) {
		t.Fatalf("GHB has %d events, want %d", len(ghb), len(x.Events))
	}
	pos := map[int]int{}
	for i, e := range ghb {
		pos[e.Index] = i
	}
	for _, pr := range order.Pairs() {
		if pos[pr[0]] >= pos[pr[1]] {
			t.Errorf("GHB violates order edge %v -> %v", x.Events[pr[0]], x.Events[pr[1]])
		}
	}
}

func TestEventsByThreadAndFindEvent(t *testing.T) {
	x := anyExec(t, storeBuffering())
	t0 := x.EventsByThread(0)
	if len(t0) != 2 {
		t.Fatalf("thread 0 has %d events, want 2", len(t0))
	}
	e := x.FindEvent(func(e *Event) bool { return e.Kind == KindWrite && e.Thread == 1 })
	if e == nil || e.Addr != 1 {
		t.Fatalf("FindEvent returned %v", e)
	}
	if x.FindEvent(func(e *Event) bool { return e.Kind == KindFence }) != nil {
		t.Error("FindEvent should return nil when nothing matches")
	}
}

func TestExecutionString(t *testing.T) {
	x := anyExec(t, storeBuffering())
	s := x.String()
	for _, part := range []string{"events:", "rf:", "ws:"} {
		if !strings.Contains(s, part) {
			t.Errorf("Execution.String missing %q section", part)
		}
	}
}

// TestExecutionStringDeterministic pins the exact rendering of a
// hand-built SB execution: reads in event-index order, locations in
// ascending order. The execution is constructed through the map-edge
// constructor — the path whose map iteration order used to leak into the
// output — and rendered repeatedly to catch any residual nondeterminism.
func TestExecutionStringDeterministic(t *testing.T) {
	p := storeBuffering()
	events, err := buildEvents(p)
	if err != nil {
		t.Fatal(err)
	}
	// Events: [0] init x, [1] init y, [2] P0:W(x)=1, [3] P0:R(y),
	// [4] P1:W(y)=1, [5] P1:R(x). Both reads read the initial writes.
	x := NewExecution(p, events,
		map[int]int{3: 1, 5: 0},
		map[Addr][]int{0: {0, 2}, 1: {1, 4}})

	const wantString = `events:
  [0] init:Init(x)=0
  [1] init:Init(y)=0
  [2] P0:W(x)=1
  [3] P0:R(y)=0
  [4] P1:W(y)=1
  [5] P1:R(x)=0
rf:
  init:Init(y)=0 -> P0:R(y)=0
  init:Init(x)=0 -> P1:R(x)=0
ws:
  x: init:Init(x)=0 P0:W(x)=1
  y: init:Init(y)=0 P1:W(y)=1
`
	const wantKey = "rf: 3<-1 5<-0 ws: x=[0 2] y=[1 4] regs: P0:r1=0 P1:r2=0"

	for i := 0; i < 100; i++ {
		if got := x.String(); got != wantString {
			t.Fatalf("render %d:\n got %q\nwant %q", i, got, wantString)
		}
		if got := x.Key(); got != wantKey {
			t.Fatalf("key %d:\n got %q\nwant %q", i, got, wantKey)
		}
	}
}

func TestFinalMemory(t *testing.T) {
	p := NewProgram("final")
	p.AddThread(Write(0, 5))
	x := anyExec(t, p)
	mem := x.FinalMemory()
	if mem[0] != 5 {
		t.Fatalf("final x = %d, want 5", mem[0])
	}
}
