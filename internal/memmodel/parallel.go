package memmodel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// enumConfig collects the enumeration options.
type enumConfig struct {
	ctx       context.Context
	workers   int
	unordered bool
	filter    func(*Execution) bool
}

// EnumOption configures EnumerateFunc and EnumerateParallel.
type EnumOption func(*enumConfig)

// EnumContext makes the enumeration honour ctx: cancellation stops every
// walker promptly and the enumeration returns ctx's error.
func EnumContext(ctx context.Context) EnumOption {
	return func(c *enumConfig) { c.ctx = ctx }
}

// EnumWorkers partitions the candidate index space into n contiguous
// ranges, each walked by its own worker goroutine with a private arena.
// Values below 2 keep the enumeration sequential; n is further clamped to
// the candidate count.
func EnumWorkers(n int) EnumOption {
	return func(c *enumConfig) { c.workers = n }
}

// EnumUnordered trades the deterministic visit order of the parallel
// enumeration for lower merge overhead: visits are serialized through a
// mutex in worker completion order instead of being merged back into
// candidate index order. The visited multiset is identical either way, and
// visit is still never called concurrently. Sequential enumeration ignores
// the option.
func EnumUnordered() EnumOption {
	return func(c *enumConfig) { c.unordered = true }
}

// EnumFilter drops candidates for which pred returns false before they
// reach visit. Unlike visit, the filter runs inside the worker goroutines
// — concurrently when workers > 1 — which is exactly what makes expensive
// per-candidate work (validity checking) scale: pred must therefore be
// safe for concurrent use. Like visit, pred receives arena-owned
// executions it must not retain.
func EnumFilter(pred func(*Execution) bool) EnumOption {
	return func(c *enumConfig) { c.filter = pred }
}

// EnumerateFunc generates all candidate executions of a litmus program and
// streams them to visit, one at a time: every combination of a reads-from
// assignment (each read may read from any write to the same location,
// including the initial write, but not from the write half of its own RMW)
// and a per-location write serialization (every permutation of the
// non-initial writes, with the initial write first).
//
// Values are then propagated: plain writes keep their program value and
// RMW writes receive Modify(value read by their read half). Candidates
// whose value propagation does not converge (cyclic value dependencies
// through RMWs) are dropped and never reach visit.
//
// The visited executions are candidates only: callers must still filter
// by validity (Execution.BaseValid for the base model, or the RMW-aware
// check in internal/core), either in visit or concurrently via EnumFilter.
//
// Each execution passed to visit is owned by the walker's arena and is
// valid only for the duration of the call: the enumerator reuses its
// storage for later candidates, which is what makes the per-candidate loop
// allocation-free. Use Execution.Clone to retain one beyond the visit (as
// Enumerate does). Returning false from visit stops the enumeration early.
//
// Programs whose candidate space does not fit in an int fail up front with
// an error wrapping ErrSpaceTooLarge.
//
// By default the enumeration is sequential. With EnumWorkers(n>1) the
// candidate index space is split into n contiguous ranges walked
// concurrently; visit is still never called concurrently, and unless
// EnumUnordered is given the visits arrive in exactly the sequential
// enumeration order.
func EnumerateFunc(p *Program, visit func(*Execution) bool, opts ...EnumOption) error {
	cfg := enumConfig{ctx: context.Background(), workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.ctx == nil {
		cfg.ctx = context.Background()
	}
	sp, err := newEnumSpace(p)
	if err != nil {
		return err
	}
	workers := cfg.workers
	if total := sp.total(); workers > total {
		workers = total
	}
	if workers <= 1 {
		return sp.scan(&cfg, 0, sp.total(), nil, sp.newArena(1), visit)
	}
	if cfg.unordered {
		return sp.runUnordered(&cfg, workers, visit)
	}
	return sp.runOrdered(&cfg, workers, visit)
}

// EnumerateParallel enumerates the candidate executions of a litmus
// program with the rf×ws choice space statically partitioned into
// contiguous index ranges across workers goroutines (workers <= 0 means
// runtime.GOMAXPROCS(0)). Each worker walks its range with a private arena
// of reusable execution slots; the visitor callbacks are merged so that
// visit is never called concurrently and, unless EnumUnordered is given,
// arrive in exactly the order sequential EnumerateFunc would produce.
// Returning false from visit cancels every worker and stops the
// enumeration after that visit, and a cancelled ctx stops the workers and
// returns ctx's error. See EnumerateFunc for the candidate-set semantics
// and the execution lifetime contract (visited executions are arena-owned;
// Clone to retain).
func EnumerateParallel(ctx context.Context, p *Program, workers int, visit func(*Execution) bool, opts ...EnumOption) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	base := []EnumOption{EnumWorkers(workers)}
	if ctx != nil {
		base = append(base, EnumContext(ctx))
	}
	return EnumerateFunc(p, visit, append(base, opts...)...)
}

// AutoEnumThreshold is the candidate count above which AutoEnumWorkers
// considers a program large enough to be worth fanning one enumeration
// across GOMAXPROCS workers. Below it, per-candidate work is too small to
// amortize the goroutine and merge machinery.
const AutoEnumThreshold = 4096

// AutoEnumWorkers returns the worker count the candidate-count heuristic
// picks for enumerating p: runtime.GOMAXPROCS(0) when the candidate space
// reaches AutoEnumThreshold (IRIW-class programs and beyond), 1 for small
// programs (and for programs CountCandidates cannot size).
func AutoEnumWorkers(p *Program) int {
	n, err := CountCandidates(p)
	if err != nil || n < AutoEnumThreshold {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// scan walks candidate indices [lo, hi) in ascending order: it assembles
// each candidate into the arena, applies the filter, and hands survivors
// to emit. It returns early without error when emit returns false or stop
// reports true, and returns ctx's error when the context is cancelled.
func (sp *enumSpace) scan(cfg *enumConfig, lo, hi int, stop *atomic.Bool, arena *enumArena, emit func(*Execution) bool) error {
	done := cfg.ctx.Done()
	for g := lo; g < hi; g++ {
		if stop != nil && stop.Load() {
			return nil
		}
		if done != nil && (g-lo)&63 == 0 {
			select {
			case <-done:
				return cfg.ctx.Err()
			default:
			}
		}
		x := sp.candidate(g, arena)
		if x == nil {
			continue // cyclic RMW value dependency: not a candidate
		}
		if cfg.filter != nil && !cfg.filter(x) {
			continue
		}
		if !emit(x) {
			return nil
		}
	}
	return nil
}

// ranges splits [0, total) into n contiguous, near-equal index ranges.
func (sp *enumSpace) ranges(n int) [][2]int {
	total := sp.total()
	size, rem := total/n, total%n
	out := make([][2]int, n)
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out[i] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// runUnordered fans the index ranges across workers and serializes visits
// through a mutex, in worker completion order. The stop flag is flipped
// under the same mutex as the visit, so a false return stops the
// enumeration after exactly that visit. Each worker owns a single-slot
// arena: the visit completes under the mutex before the worker assembles
// its next candidate into the slot.
func (sp *enumSpace) runUnordered(cfg *enumConfig, workers int, visit func(*Execution) bool) error {
	var (
		stop atomic.Bool
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	emit := func(x *Execution) bool {
		mu.Lock()
		defer mu.Unlock()
		if stop.Load() {
			return false
		}
		if !visit(x) {
			stop.Store(true)
			return false
		}
		return true
	}
	errs := make([]error, workers)
	for w, r := range sp.ranges(workers) {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = sp.scan(cfg, lo, hi, &stop, sp.newArena(1), emit)
		}(w, r[0], r[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// enumBatch is the number of executions a worker buffers before handing
// them to the ordered merger; it bounds the merge channel traffic without
// letting per-worker memory grow past workers × enumBatch × (channel
// capacity + 1) executions.
const enumBatch = 64

// orderedArenaBatches is the slot-ring depth of an ordered worker's arena,
// in batches. Four batches of a worker's executions can be live at once —
// the one being filled, up to two buffered in its channel (capacity 2),
// and the one the merger is visiting — and the channel handoffs order the
// reuse: a worker only starts filling batch k after its send of batch k-1
// returned, which the channel capacity guarantees happens after the merger
// received batch k-3 and therefore finished visiting batch k-4, the batch
// whose slots k is about to reuse.
const orderedArenaBatches = 4

// runOrdered fans the index ranges across workers and merges their
// batches back in range order, so visits arrive in exactly the sequential
// enumeration order. When visit returns false the merger raises the stop
// flag and drains the remaining workers without visiting.
func (sp *enumSpace) runOrdered(cfg *enumConfig, workers int, visit func(*Execution) bool) error {
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	chans := make([]chan []*Execution, workers)
	errs := make([]error, workers)
	for w, r := range sp.ranges(workers) {
		ch := make(chan []*Execution, 2)
		chans[w] = ch
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer close(ch)
			arena := sp.newArena(orderedArenaBatches * enumBatch)
			// The batch slice buffers recycle through the same 4-deep ring
			// as the arena slots, under the same reuse argument.
			bufs := make([][]*Execution, orderedArenaBatches)
			for i := range bufs {
				bufs[i] = make([]*Execution, 0, enumBatch)
			}
			bi := 0
			batch := bufs[bi]
			errs[w] = sp.scan(cfg, lo, hi, &stop, arena, func(x *Execution) bool {
				batch = append(batch, x)
				if len(batch) == enumBatch {
					ch <- batch
					bi++
					if bi == orderedArenaBatches {
						bi = 0
					}
					batch = bufs[bi][:0]
				}
				return true
			})
			// Flush the partial batch only on a clean range completion:
			// after an early stop nobody will visit it, and after a
			// context error delivering it would contradict EnumContext's
			// promise that cancellation stops the enumeration.
			if len(batch) > 0 && !stop.Load() && errs[w] == nil {
				ch <- batch
			}
		}(w, r[0], r[1])
	}

	// Merge worker output in range order. After an early stop, keep
	// draining so no worker blocks on a full channel.
	stopped := false
	for _, ch := range chans {
		for batch := range ch {
			for _, x := range batch {
				if stopped {
					break
				}
				if !visit(x) {
					stopped = true
					stop.Store(true)
				}
			}
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
