package memmodel

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"testing"
)

// parallelTestPrograms returns a mix of enumeration shapes: RMW-free,
// RMW chains with dropped cyclic candidates, multi-location ws
// permutations, and a three-thread program with a candidate set in the
// thousands.
func parallelTestPrograms() []*Program {
	sbf := NewProgram("SB+fences")
	sbf.AddThread(Write(0, 1), Fence(), Read(1, "r0"))
	sbf.AddThread(Write(1, 1), Fence(), Read(0, "r1"))

	tas := NewProgram("tas-race")
	tas.AddThread(TestAndSet(0, "r0"))
	tas.AddThread(TestAndSet(0, "r1"))

	coww := NewProgram("coww")
	coww.AddThread(Write(0, 1), Write(1, 1))
	coww.AddThread(Write(0, 2), Write(1, 2))

	big := NewProgram("three-thread")
	big.AddThread(Write(0, 1), FetchAdd(1, "a0", 1), Read(2, "r0"))
	big.AddThread(Write(1, 1), FetchAdd(2, "a1", 1), Read(0, "r1"))
	big.AddThread(Write(2, 1), FetchAdd(0, "a2", 1), Read(1, "r2"))

	return []*Program{storeBuffering(), messagePassing(), sbf, tas, coww, big}
}

// sequentialKeys enumerates the program sequentially and returns the
// canonical key of every candidate, in enumeration order.
func sequentialKeys(t *testing.T, p *Program) []string {
	t.Helper()
	var keys []string
	if err := EnumerateFunc(p, func(x *Execution) bool {
		keys = append(keys, x.Key())
		return true
	}); err != nil {
		t.Fatalf("%s: EnumerateFunc: %v", p.Name, err)
	}
	return keys
}

func TestEnumerateParallelOrderedMatchesSequential(t *testing.T) {
	for _, p := range parallelTestPrograms() {
		want := sequentialKeys(t, p)
		for _, workers := range []int{1, 2, 3, 8} {
			var got []string
			err := EnumerateParallel(context.Background(), p, workers, func(x *Execution) bool {
				got = append(got, x.Key())
				return true
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", p.Name, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: visited %d executions, want %d", p.Name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: visit %d out of order:\n got %s\nwant %s", p.Name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEnumerateParallelUnorderedSameMultiset(t *testing.T) {
	for _, p := range parallelTestPrograms() {
		want := sequentialKeys(t, p)
		sort.Strings(want)
		for _, workers := range []int{2, 8} {
			var got []string
			err := EnumerateParallel(context.Background(), p, workers, func(x *Execution) bool {
				got = append(got, x.Key())
				return true
			}, EnumUnordered())
			if err != nil {
				t.Fatalf("%s workers=%d: %v", p.Name, workers, err)
			}
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: visited %d executions, want %d", p.Name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: multisets differ at %d:\n got %s\nwant %s", p.Name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEnumerateParallelEarlyStopExactlyK(t *testing.T) {
	for _, p := range parallelTestPrograms() {
		total := len(sequentialKeys(t, p))
		for _, workers := range []int{1, 2, 8} {
			for _, unordered := range []bool{false, true} {
				k := total / 2
				if k == 0 {
					k = 1
				}
				opts := []EnumOption{}
				if unordered {
					opts = append(opts, EnumUnordered())
				}
				visited := 0
				err := EnumerateParallel(context.Background(), p, workers, func(x *Execution) bool {
					visited++
					return visited < k
				}, opts...)
				if err != nil {
					t.Fatalf("%s workers=%d unordered=%v: %v", p.Name, workers, unordered, err)
				}
				if visited != k {
					t.Fatalf("%s workers=%d unordered=%v: early stop after %d visits, want exactly %d",
						p.Name, workers, unordered, visited, k)
				}
			}
		}
	}
}

func TestEnumerateParallelOrderedEarlyStopPrefix(t *testing.T) {
	// In ordered mode the k visits before an early stop must be exactly
	// the first k sequential candidates.
	p := parallelTestPrograms()[5] // three-thread
	want := sequentialKeys(t, p)
	k := 17
	var got []string
	err := EnumerateParallel(context.Background(), p, 8, func(x *Execution) bool {
		got = append(got, x.Key())
		return len(got) < k
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("visited %d, want %d", len(got), k)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("visit %d is not the sequential prefix", i)
		}
	}
}

func TestEnumerateParallelContextCancellation(t *testing.T) {
	p := parallelTestPrograms()[5] // three-thread, thousands of candidates

	// Already-cancelled context: no candidate is ever visited.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		visits := 0
		err := EnumerateParallel(cancelled, p, workers, func(*Execution) bool {
			visits++
			return true
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if visits != 0 {
			t.Fatalf("workers=%d: %d visits after pre-cancelled context", workers, visits)
		}
	}

	// Cancellation mid-enumeration surfaces the context error.
	ctx, cancelMid := context.WithCancel(context.Background())
	visits := 0
	err := EnumerateParallel(ctx, p, 4, func(*Execution) bool {
		visits++
		if visits == 10 {
			cancelMid()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", err)
	}
}

func TestEnumerateParallelFilterRunsInWorkers(t *testing.T) {
	// The filter sees every assembled candidate; visit sees only the
	// survivors, still in deterministic order.
	p := storeBuffering()
	want := sequentialKeys(t, p)
	keep := func(x *Execution) bool {
		// Keep executions where the first read reads from the initial
		// write.
		for _, e := range x.Events {
			if !e.IsRead() || e.Thread != 0 {
				continue
			}
			if w, ok := x.ReadsFrom(e.Index); ok {
				return x.Events[w].IsInit()
			}
		}
		return false
	}
	var wantKept []string
	if err := EnumerateFunc(p, func(x *Execution) bool {
		if keep(x) {
			wantKept = append(wantKept, x.Key())
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(wantKept) == 0 || len(wantKept) == len(want) {
		t.Fatalf("filter is not discriminating: kept %d of %d", len(wantKept), len(want))
	}
	var got []string
	err := EnumerateParallel(context.Background(), p, 4, func(x *Execution) bool {
		got = append(got, x.Key())
		return true
	}, EnumFilter(keep))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantKept) {
		t.Fatalf("visited %d filtered executions, want %d", len(got), len(wantKept))
	}
	for i := range got {
		if got[i] != wantKept[i] {
			t.Fatalf("filtered visit %d out of order", i)
		}
	}
}

func TestEnumerateParallelDefaultWorkers(t *testing.T) {
	// workers <= 0 means GOMAXPROCS; the call must still enumerate
	// everything.
	p := storeBuffering()
	want := len(sequentialKeys(t, p))
	got := 0
	if err := EnumerateParallel(context.Background(), p, 0, func(*Execution) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("visited %d, want %d", got, want)
	}
}

func TestAutoEnumWorkers(t *testing.T) {
	small := storeBuffering()
	if w := AutoEnumWorkers(small); w != 1 {
		t.Fatalf("AutoEnumWorkers(SB) = %d, want 1 (only %d candidates)", w, 4)
	}
	// Three locations with three non-initial writes each (6^3 ws orders)
	// and three four-choice reads push the candidate space past the
	// threshold.
	big := NewProgram("wide")
	big.AddThread(Write(0, 1), Write(1, 1), Write(2, 1), Read(0, "r0"))
	big.AddThread(Write(0, 2), Write(1, 2), Write(2, 2), Read(1, "r1"))
	big.AddThread(Write(0, 3), Write(1, 3), Write(2, 3), Read(2, "r2"))
	n, err := CountCandidates(big)
	if err != nil {
		t.Fatal(err)
	}
	if n < AutoEnumThreshold {
		t.Fatalf("test program too small for the heuristic: %d candidates", n)
	}
	if w := AutoEnumWorkers(big); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("AutoEnumWorkers(wide) = %d, want GOMAXPROCS=%d", w, runtime.GOMAXPROCS(0))
	}
	if w := AutoEnumWorkers(NewProgram("bad")); w != 1 {
		t.Fatalf("AutoEnumWorkers(invalid) = %d, want 1", w)
	}
}

func TestEnumerateFuncWorkersOption(t *testing.T) {
	// The functional options on EnumerateFunc are the same machinery as
	// EnumerateParallel.
	p := messagePassing()
	want := sequentialKeys(t, p)
	var got []string
	if err := EnumerateFunc(p, func(x *Execution) bool {
		got = append(got, x.Key())
		return true
	}, EnumWorkers(3)); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit %d out of order", i)
		}
	}
}
