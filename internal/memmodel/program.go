package memmodel

import "fmt"

// InstrKind classifies a litmus-program instruction.
type InstrKind int

// Instruction kinds.
const (
	// InstrRead loads from an address into a named register.
	InstrRead InstrKind = iota
	// InstrWrite stores a constant to an address.
	InstrWrite
	// InstrFence is a full memory barrier.
	InstrFence
	// InstrRMW atomically reads an address into a register and writes a
	// new value computed from the read value.
	InstrRMW
)

// ModifyFunc computes the value written by an RMW from the value it read.
type ModifyFunc func(Value) Value

// Instr is one instruction of a litmus program thread.
type Instr struct {
	Kind InstrKind
	// Addr is the accessed location (unused for fences).
	Addr Addr
	// Value is the stored value for InstrWrite.
	Value Value
	// Reg names the destination register for InstrRead and InstrRMW; the
	// final value of the register is available to litmus-test conditions.
	Reg string
	// Modify computes the value written by an InstrRMW from the value it
	// read. If nil, Exchange is implied and Value is written unmodified.
	Modify ModifyFunc
}

// Read returns a load instruction from addr into register reg.
func Read(addr Addr, reg string) Instr {
	return Instr{Kind: InstrRead, Addr: addr, Reg: reg}
}

// Write returns a store instruction of value v to addr.
func Write(addr Addr, v Value) Instr {
	return Instr{Kind: InstrWrite, Addr: addr, Value: v}
}

// Fence returns a full memory barrier instruction.
func Fence() Instr {
	return Instr{Kind: InstrFence}
}

// Exchange returns an atomic exchange (lock xchg): it reads addr into reg
// and unconditionally writes v.
func Exchange(addr Addr, reg string, v Value) Instr {
	return Instr{Kind: InstrRMW, Addr: addr, Reg: reg, Value: v,
		Modify: func(Value) Value { return v }}
}

// FetchAdd returns an atomic fetch-and-add (lock xadd): it reads addr into
// reg and writes the read value plus delta. FetchAdd(addr, reg, 0) is the
// "lock xadd(0)" used by the paper's Table 4 read mappings.
func FetchAdd(addr Addr, reg string, delta Value) Instr {
	return Instr{Kind: InstrRMW, Addr: addr, Reg: reg, Value: delta,
		Modify: func(v Value) Value { return v + delta }}
}

// TestAndSet returns an atomic test-and-set: it reads addr into reg and
// writes 1.
func TestAndSet(addr Addr, reg string) Instr {
	return Exchange(addr, reg, 1)
}

// RMW returns a generic read-modify-write with an arbitrary modify
// function.
func RMW(addr Addr, reg string, modify ModifyFunc) Instr {
	return Instr{Kind: InstrRMW, Addr: addr, Reg: reg, Modify: modify}
}

// String renders the instruction in litmus-like syntax.
func (in Instr) String() string {
	switch in.Kind {
	case InstrRead:
		return fmt.Sprintf("%s = load %s", in.Reg, AddrName(in.Addr))
	case InstrWrite:
		return fmt.Sprintf("store %s, %d", AddrName(in.Addr), int(in.Value))
	case InstrFence:
		return "mfence"
	case InstrRMW:
		return fmt.Sprintf("%s = rmw %s", in.Reg, AddrName(in.Addr))
	default:
		return fmt.Sprintf("instr(%d)", int(in.Kind))
	}
}

// Thread is one thread of a litmus program: an ordered list of
// instructions.
type Thread []Instr

// Program is a multi-threaded litmus program together with (optional)
// non-zero initial values for locations. All other locations start at 0.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Threads holds the per-thread instruction sequences. Thread i runs on
	// ThreadID(i).
	Threads []Thread
	// Init holds initial values for locations that do not start at zero.
	Init map[Addr]Value
}

// NewProgram returns an empty named program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Init: make(map[Addr]Value)}
}

// AddThread appends a thread and returns its ThreadID.
func (p *Program) AddThread(instrs ...Instr) ThreadID {
	p.Threads = append(p.Threads, Thread(instrs))
	return ThreadID(len(p.Threads) - 1)
}

// SetInit sets the initial value of a location.
func (p *Program) SetInit(addr Addr, v Value) {
	if p.Init == nil {
		p.Init = make(map[Addr]Value)
	}
	p.Init[addr] = v
}

// Addrs returns the set of locations accessed by the program (plus any
// initialized locations), in ascending order.
func (p *Program) Addrs() []Addr {
	seen := map[Addr]bool{}
	for _, t := range p.Threads {
		for _, in := range t {
			if in.Kind != InstrFence {
				seen[in.Addr] = true
			}
		}
	}
	for a := range p.Init {
		seen[a] = true
	}
	var out []Addr
	for a := range seen {
		out = append(out, a)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// NumInstructions returns the total number of instructions in the program.
func (p *Program) NumInstructions() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t)
	}
	return n
}

// Validate checks structural well-formedness of the program: at least one
// thread, register names unique per thread for value-producing
// instructions, and no empty threads.
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("memmodel: program %q has no threads", p.Name)
	}
	for ti, t := range p.Threads {
		if len(t) == 0 {
			return fmt.Errorf("memmodel: program %q thread %d is empty", p.Name, ti)
		}
		regs := map[string]bool{}
		for ii, in := range t {
			switch in.Kind {
			case InstrRead, InstrRMW:
				if in.Reg == "" {
					return fmt.Errorf("memmodel: program %q thread %d instr %d: missing destination register", p.Name, ti, ii)
				}
				if regs[in.Reg] {
					return fmt.Errorf("memmodel: program %q thread %d: register %q assigned twice", p.Name, ti, in.Reg)
				}
				regs[in.Reg] = true
			case InstrWrite, InstrFence:
				// nothing to check
			default:
				return fmt.Errorf("memmodel: program %q thread %d instr %d: unknown kind %d", p.Name, ti, ii, int(in.Kind))
			}
		}
	}
	return nil
}

// String renders the program with one column per thread.
func (p *Program) String() string {
	s := p.Name + ":\n"
	for ti, t := range p.Threads {
		s += fmt.Sprintf("  P%d:\n", ti)
		for _, in := range t {
			s += "    " + in.String() + "\n"
		}
	}
	return s
}
