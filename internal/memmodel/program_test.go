package memmodel

import (
	"strings"
	"testing"
)

func TestInstrConstructors(t *testing.T) {
	r := Read(0, "r1")
	if r.Kind != InstrRead || r.Addr != 0 || r.Reg != "r1" {
		t.Errorf("Read constructor wrong: %+v", r)
	}
	w := Write(1, 7)
	if w.Kind != InstrWrite || w.Addr != 1 || w.Value != 7 {
		t.Errorf("Write constructor wrong: %+v", w)
	}
	f := Fence()
	if f.Kind != InstrFence {
		t.Errorf("Fence constructor wrong: %+v", f)
	}
	x := Exchange(2, "r2", 5)
	if x.Kind != InstrRMW || x.Modify == nil || x.Modify(99) != 5 {
		t.Errorf("Exchange must write its value regardless of the read: %+v", x)
	}
	fa := FetchAdd(2, "r3", 3)
	if fa.Modify(4) != 7 {
		t.Errorf("FetchAdd modify: got %d, want 7", fa.Modify(4))
	}
	tas := TestAndSet(0, "r4")
	if tas.Modify(0) != 1 || tas.Modify(1) != 1 {
		t.Errorf("TestAndSet must always write 1")
	}
	g := RMW(3, "r5", func(v Value) Value { return v * 2 })
	if g.Modify(21) != 42 {
		t.Errorf("generic RMW modify: got %d, want 42", g.Modify(21))
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Read(0, "r1"), "r1 = load x"},
		{Write(1, 2), "store y, 2"},
		{Fence(), "mfence"},
		{Exchange(2, "r2", 1), "r2 = rmw z"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in.Kind, got, c.want)
		}
	}
}

func TestProgramAddThreadAndAddrs(t *testing.T) {
	p := NewProgram("test")
	t0 := p.AddThread(Write(0, 1), Read(1, "r1"))
	t1 := p.AddThread(Write(1, 1), Read(0, "r2"))
	if t0 != 0 || t1 != 1 {
		t.Fatalf("thread ids = %d,%d want 0,1", t0, t1)
	}
	addrs := p.Addrs()
	if len(addrs) != 2 || addrs[0] != 0 || addrs[1] != 1 {
		t.Fatalf("Addrs = %v, want [0 1]", addrs)
	}
	if p.NumInstructions() != 4 {
		t.Fatalf("NumInstructions = %d, want 4", p.NumInstructions())
	}
}

func TestProgramSetInit(t *testing.T) {
	p := &Program{Name: "noinit"}
	p.AddThread(Read(5, "r1"))
	p.SetInit(7, 3)
	addrs := p.Addrs()
	if len(addrs) != 2 {
		t.Fatalf("Addrs = %v, want two addresses (accessed + initialized)", addrs)
	}
	if p.Init[7] != 3 {
		t.Fatalf("Init[7] = %d, want 3", p.Init[7])
	}
}

func TestProgramValidate(t *testing.T) {
	empty := NewProgram("empty")
	if err := empty.Validate(); err == nil {
		t.Error("program with no threads must not validate")
	}

	emptyThread := NewProgram("empty-thread")
	emptyThread.Threads = append(emptyThread.Threads, Thread{})
	if err := emptyThread.Validate(); err == nil {
		t.Error("program with an empty thread must not validate")
	}

	missingReg := NewProgram("missing-reg")
	missingReg.AddThread(Instr{Kind: InstrRead, Addr: 0})
	if err := missingReg.Validate(); err == nil {
		t.Error("read without destination register must not validate")
	}

	dupReg := NewProgram("dup-reg")
	dupReg.AddThread(Read(0, "r1"), Read(1, "r1"))
	if err := dupReg.Validate(); err == nil {
		t.Error("duplicate register in one thread must not validate")
	}

	ok := NewProgram("ok")
	ok.AddThread(Write(0, 1), Read(1, "r1"), Fence(), Exchange(0, "r2", 1))
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	unknown := NewProgram("unknown")
	unknown.AddThread(Instr{Kind: InstrKind(99)})
	if err := unknown.Validate(); err == nil {
		t.Error("unknown instruction kind must not validate")
	}
}

func TestProgramString(t *testing.T) {
	p := NewProgram("sb")
	p.AddThread(Write(0, 1), Read(1, "r1"))
	p.AddThread(Write(1, 1), Read(0, "r2"))
	s := p.String()
	if !strings.Contains(s, "P0") || !strings.Contains(s, "P1") {
		t.Errorf("String missing thread headers:\n%s", s)
	}
	if !strings.Contains(s, "store x, 1") {
		t.Errorf("String missing instruction rendering:\n%s", s)
	}
}

func TestAddrName(t *testing.T) {
	if AddrName(0) != "x" || AddrName(1) != "y" || AddrName(2) != "z" {
		t.Error("first addresses should be named x, y, z")
	}
	if AddrName(100) != "m100" {
		t.Errorf("AddrName(100) = %q, want m100", AddrName(100))
	}
}

func TestEventKindPredicates(t *testing.T) {
	if !KindRead.IsRead() || !KindRMWRead.IsRead() {
		t.Error("read kinds misclassified")
	}
	if KindWrite.IsRead() || KindFence.IsRead() {
		t.Error("non-read kinds classified as read")
	}
	if !KindWrite.IsWrite() || !KindRMWWrite.IsWrite() || !KindInit.IsWrite() {
		t.Error("write kinds misclassified")
	}
	if KindFence.IsMemory() {
		t.Error("fence is not a memory access")
	}
	if !KindRead.IsMemory() {
		t.Error("read is a memory access")
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		KindRead: "R", KindWrite: "W", KindFence: "F",
		KindRMWRead: "Ra", KindRMWWrite: "Wa", KindInit: "Init",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if EventKind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestEventString(t *testing.T) {
	e := &Event{Thread: 0, Kind: KindWrite, Addr: 0, Value: 1}
	if e.String() != "P0:W(x)=1" {
		t.Errorf("Event.String = %q", e.String())
	}
	f := &Event{Thread: 1, Kind: KindFence}
	if f.String() != "P1:F" {
		t.Errorf("fence String = %q", f.String())
	}
	init := &Event{Thread: InitThread, Kind: KindInit, Addr: 1, Value: 0}
	if init.String() != "init:Init(y)=0" {
		t.Errorf("init String = %q", init.String())
	}
}

func TestEventSameRMW(t *testing.T) {
	ra := &Event{Index: 0, Thread: 0, Kind: KindRMWRead, RMW: 3}
	wa := &Event{Index: 1, Thread: 0, Kind: KindRMWWrite, RMW: 3}
	other := &Event{Index: 2, Thread: 1, Kind: KindRMWWrite, RMW: 4}
	plain := &Event{Index: 3, Thread: 0, Kind: KindWrite, RMW: -1}
	if !ra.SameRMW(wa) {
		t.Error("halves of the same RMW not recognised")
	}
	if ra.SameRMW(other) {
		t.Error("different RMWs matched")
	}
	if plain.SameRMW(ra) || ra.SameRMW(plain) {
		t.Error("plain event must never match an RMW half")
	}
}
