package memmodel

import (
	"fmt"
	"math/bits"
	"strings"
)

// wordBits is the width of one bitset word.
const wordBits = 64

// Relation is a binary relation over the events of a single candidate
// execution, stored as a dense bitset adjacency matrix indexed by
// Event.Index: row i holds one bit per possible successor j. Litmus-scale
// executions have at most a few dozen events, so a whole row is typically a
// single uint64 and the closure/cycle algorithms below run word-parallel.
//
// Self-edges (i,i) are representable: a pair on the diagonal is a cycle of
// length one, reported as such by Acyclic, FindCycle and TopoSort. This
// keeps the relation closed under TransitiveClosure — a cycle surfaced as a
// closure self-edge can be copied into a derived relation verbatim.
type Relation struct {
	n     int
	words int // words per row: ceil(n/64)
	bits  []uint64
}

// NewRelation returns an empty relation over n events.
func NewRelation(n int) *Relation {
	r := &Relation{}
	r.init(n)
	return r
}

// init sizes the relation for n events, reusing the existing backing array
// when it is large enough. The relation is cleared either way.
func (r *Relation) init(n int) {
	words := (n + wordBits - 1) / wordBits
	need := n * words
	r.n, r.words = n, words
	if cap(r.bits) < need {
		r.bits = make([]uint64, need)
		return
	}
	r.bits = r.bits[:need]
	r.Clear()
}

// Reset clears the relation and resizes it to range over n events, reusing
// the backing array when it is large enough. It is how arena slots and
// scratch relations are recycled without allocating.
func (r *Relation) Reset(n int) { r.init(n) }

// row returns the backing words of row i.
func (r *Relation) row(i int) []uint64 {
	return r.bits[i*r.words : (i+1)*r.words]
}

// Size returns the number of events the relation ranges over.
func (r *Relation) Size() int { return r.n }

// Add inserts the ordered pair (from, to). The diagonal is representable:
// Add(i, i) records a length-1 cycle.
func (r *Relation) Add(from, to int) {
	r.bits[from*r.words+to/wordBits] |= 1 << (uint(to) % wordBits)
}

// Has reports whether the ordered pair (from, to) is in the relation.
func (r *Relation) Has(from, to int) bool {
	return r.bits[from*r.words+to/wordBits]&(1<<(uint(to)%wordBits)) != 0
}

// Remove deletes the ordered pair (from, to).
func (r *Relation) Remove(from, to int) {
	r.bits[from*r.words+to/wordBits] &^= 1 << (uint(to) % wordBits)
}

// Clear removes every pair, keeping the size.
func (r *Relation) Clear() {
	for i := range r.bits {
		r.bits[i] = 0
	}
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{n: r.n, words: r.words, bits: make([]uint64, len(r.bits))}
	copy(c.bits, r.bits)
	return c
}

// CopyFrom makes r an exact copy of other, resizing r as needed. It returns
// r. Unlike Clone it reuses r's backing array, so scratch relations can be
// refilled without allocating.
func (r *Relation) CopyFrom(other *Relation) *Relation {
	r.init(other.n)
	copy(r.bits, other.bits)
	return r
}

// Union adds every pair of other into r and returns r — one OR per word.
// The two relations must range over the same number of events.
func (r *Relation) Union(other *Relation) *Relation {
	if other == nil {
		return r
	}
	if other.n != r.n {
		panic(fmt.Sprintf("memmodel: union of relations of different sizes (%d vs %d)", r.n, other.n))
	}
	for i, w := range other.bits {
		r.bits[i] |= w
	}
	return r
}

// UnionOf returns a fresh relation that is the union of all given
// relations, which must all range over n events.
func UnionOf(n int, rels ...*Relation) *Relation {
	u := NewRelation(n)
	for _, rel := range rels {
		u.Union(rel)
	}
	return u
}

// Pairs returns all ordered pairs in the relation, sorted for determinism.
func (r *Relation) Pairs() [][2]int {
	var out [][2]int
	for i := 0; i < r.n; i++ {
		row := r.row(i)
		for w, word := range row {
			for word != 0 {
				j := w*wordBits + bits.TrailingZeros64(word)
				out = append(out, [2]int{i, j})
				word &= word - 1
			}
		}
	}
	return out
}

// Count returns the number of pairs in the relation.
func (r *Relation) Count() int {
	c := 0
	for _, w := range r.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// TransitiveClosure computes the transitive closure of r in place and
// returns r: word-parallel Warshall — whenever row i can reach k, everything
// k reaches is ORed into row i, one word at a time.
func (r *Relation) TransitiveClosure() *Relation {
	n, words := r.n, r.words
	for k := 0; k < n; k++ {
		kRow := r.row(k)
		kWord, kBit := k/wordBits, uint64(1)<<(uint(k)%wordBits)
		for i := 0; i < n; i++ {
			iRow := r.bits[i*words : i*words+words]
			if iRow[kWord]&kBit == 0 {
				continue
			}
			for w := range iRow {
				iRow[w] |= kRow[w]
			}
		}
	}
	return r
}

// Acyclic reports whether the relation contains no cycle. A self-edge is a
// length-1 cycle. The check peels nodes with no outgoing edge into the
// still-live set until either every node is removed (acyclic) or a pass
// removes nothing (the survivors all lie on cycles). For relations of up to
// 64 events — every litmus-scale execution — the live set is a single word
// and the check allocates nothing.
func (r *Relation) Acyclic() bool {
	if r.n <= wordBits {
		return r.acyclicWord()
	}
	return r.acyclicBig()
}

// acyclicWord is the single-word fast path of Acyclic.
func (r *Relation) acyclicWord() bool {
	var live uint64
	if r.n == wordBits {
		live = ^uint64(0)
	} else {
		live = 1<<uint(r.n) - 1
	}
	for live != 0 {
		removed := uint64(0)
		rest := live
		for rest != 0 {
			i := bits.TrailingZeros64(rest)
			rest &= rest - 1
			if r.bits[i]&live == 0 {
				removed |= 1 << uint(i)
			}
		}
		if removed == 0 {
			return false
		}
		live &^= removed
	}
	return true
}

// acyclicBig is the multi-word path of Acyclic, for relations over more
// than 64 events.
func (r *Relation) acyclicBig() bool {
	words := r.words
	live := make([]uint64, words)
	for i := 0; i < r.n; i++ {
		live[i/wordBits] |= 1 << (uint(i) % wordBits)
	}
	liveCount := r.n
	for liveCount > 0 {
		removed := 0
		for i := 0; i < r.n; i++ {
			if live[i/wordBits]&(1<<(uint(i)%wordBits)) == 0 {
				continue
			}
			row := r.row(i)
			out := uint64(0)
			for w := 0; w < words; w++ {
				out |= row[w] & live[w]
			}
			if out == 0 {
				live[i/wordBits] &^= 1 << (uint(i) % wordBits)
				removed++
			}
		}
		if removed == 0 {
			return false
		}
		liveCount -= removed
	}
	return true
}

// TopoSort returns one linear extension of the relation (a total order
// consistent with it), or an error if the relation is cyclic — a self-edge
// counts as a cycle. Among the events available at each step the one with
// the smallest index is chosen, so the result is deterministic.
func (r *Relation) TopoSort() ([]int, error) {
	n := r.n
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		row := r.row(i)
		for w, word := range row {
			for word != 0 {
				j := w*wordBits + bits.TrailingZeros64(word)
				indeg[j]++
				word &= word - 1
			}
		}
	}
	order := make([]int, 0, n)
	emitted := make([]bool, n)
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ {
			if !emitted[i] && indeg[i] == 0 {
				next = i
				break
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("memmodel: relation is cyclic, no linear extension exists")
		}
		emitted[next] = true
		order = append(order, next)
		row := r.row(next)
		for w, word := range row {
			for word != 0 {
				j := w*wordBits + bits.TrailingZeros64(word)
				indeg[j]--
				word &= word - 1
			}
		}
	}
	return order, nil
}

// ReachableBefore reports whether the pair (from, to) is in the transitive
// closure: to is reachable from from along a non-empty path. With from ==
// to this holds exactly when from lies on a cycle (including a self-edge).
// The relation itself is not modified, and for relations of up to 64 events
// the walk allocates nothing.
func (r *Relation) ReachableBefore(from, to int) bool {
	if r.n <= wordBits {
		return r.reachableWord(from, to)
	}
	return r.reachableBig(from, to)
}

// reachableWord is the single-word fast path of ReachableBefore: frontier
// expansion with one OR per step.
func (r *Relation) reachableWord(from, to int) bool {
	target := uint64(1) << uint(to)
	reached := r.bits[from]
	for {
		if reached&target != 0 {
			return true
		}
		next := reached
		rest := reached
		for rest != 0 {
			i := bits.TrailingZeros64(rest)
			rest &= rest - 1
			next |= r.bits[i]
		}
		if next == reached {
			return false
		}
		reached = next
	}
}

// reachableBig is the multi-word path of ReachableBefore.
func (r *Relation) reachableBig(from, to int) bool {
	words := r.words
	reached := make([]uint64, words)
	copy(reached, r.row(from))
	for {
		if reached[to/wordBits]&(1<<(uint(to)%wordBits)) != 0 {
			return true
		}
		changed := false
		for i := 0; i < r.n; i++ {
			if reached[i/wordBits]&(1<<(uint(i)%wordBits)) == 0 {
				continue
			}
			row := r.row(i)
			for w := 0; w < words; w++ {
				if row[w]&^reached[w] != 0 {
					reached[w] |= row[w]
					changed = true
				}
			}
		}
		if !changed {
			return false
		}
	}
}

// FindCycle returns one cycle in the relation as a sequence of event
// indices (the last element reaches the first), or nil if the relation is
// acyclic. A self-edge yields a length-1 cycle. Useful for diagnostics such
// as explaining why an execution is forbidden.
func (r *Relation) FindCycle() []int {
	n := r.n
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = gray
		row := r.row(v)
		for w, word := range row {
			for word != 0 {
				j := w*wordBits + bits.TrailingZeros64(word)
				word &= word - 1
				if color[j] == gray {
					// Found a back edge; reconstruct the cycle j -> ... -> v.
					cycle = []int{j}
					for u := v; u != j && u != -1; u = parent[u] {
						cycle = append(cycle, u)
					}
					// Reverse to get forward order starting at j.
					for a, b := 0, len(cycle)-1; a < b; a, b = a+1, b-1 {
						cycle[a], cycle[b] = cycle[b], cycle[a]
					}
					return true
				}
				if color[j] == white {
					parent[j] = v
					if dfs(j) {
						return true
					}
				}
			}
		}
		color[v] = black
		return false
	}
	for v := 0; v < n; v++ {
		if color[v] == white {
			if dfs(v) {
				return cycle
			}
		}
	}
	return nil
}

// Format renders the relation's pairs using the supplied event slice, one
// pair per line, for debugging and error messages.
func (r *Relation) Format(events []*Event) string {
	var b strings.Builder
	for _, p := range r.Pairs() {
		fmt.Fprintf(&b, "%s -> %s\n", events[p[0]], events[p[1]])
	}
	return b.String()
}
