package memmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a binary relation over the events of a single candidate
// execution, stored as a dense boolean adjacency matrix indexed by
// Event.Index. Litmus-scale executions have at most a few dozen events, so
// the dense representation is both simple and fast.
type Relation struct {
	n   int
	adj []bool
}

// NewRelation returns an empty relation over n events.
func NewRelation(n int) *Relation {
	return &Relation{n: n, adj: make([]bool, n*n)}
}

// Size returns the number of events the relation ranges over.
func (r *Relation) Size() int { return r.n }

// Add inserts the ordered pair (from, to). Self-edges are ignored.
func (r *Relation) Add(from, to int) {
	if from == to {
		return
	}
	r.adj[from*r.n+to] = true
}

// Has reports whether the ordered pair (from, to) is in the relation.
func (r *Relation) Has(from, to int) bool {
	return r.adj[from*r.n+to]
}

// Remove deletes the ordered pair (from, to).
func (r *Relation) Remove(from, to int) {
	r.adj[from*r.n+to] = false
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{n: r.n, adj: make([]bool, len(r.adj))}
	copy(c.adj, r.adj)
	return c
}

// Union adds every pair of other into r and returns r. The two relations
// must range over the same number of events.
func (r *Relation) Union(other *Relation) *Relation {
	if other == nil {
		return r
	}
	if other.n != r.n {
		panic(fmt.Sprintf("memmodel: union of relations of different sizes (%d vs %d)", r.n, other.n))
	}
	for i, v := range other.adj {
		if v {
			r.adj[i] = true
		}
	}
	return r
}

// UnionOf returns a fresh relation that is the union of all given
// relations, which must all range over n events.
func UnionOf(n int, rels ...*Relation) *Relation {
	u := NewRelation(n)
	for _, rel := range rels {
		u.Union(rel)
	}
	return u
}

// Pairs returns all ordered pairs in the relation, sorted for determinism.
func (r *Relation) Pairs() [][2]int {
	var out [][2]int
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if r.Has(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Count returns the number of pairs in the relation.
func (r *Relation) Count() int {
	c := 0
	for _, v := range r.adj {
		if v {
			c++
		}
	}
	return c
}

// TransitiveClosure computes the transitive closure of r in place and
// returns r (Floyd–Warshall over booleans).
func (r *Relation) TransitiveClosure() *Relation {
	n := r.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !r.adj[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if r.adj[k*n+j] {
					r.adj[i*n+j] = true
				}
			}
		}
	}
	return r
}

// Acyclic reports whether the relation contains no cycle. A relation with
// a self-edge introduced by transitive closure is considered cyclic.
func (r *Relation) Acyclic() bool {
	// Kahn's algorithm over the (non-closed) relation: cheaper than closing
	// and checking the diagonal, and leaves r untouched.
	n := r.n
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Has(i, j) {
				indeg[j]++
			}
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for j := 0; j < n; j++ {
			if r.Has(v, j) {
				indeg[j]--
				if indeg[j] == 0 {
					queue = append(queue, j)
				}
			}
		}
	}
	return seen == n
}

// TopoSort returns one linear extension of the relation (a total order
// consistent with it), or an error if the relation is cyclic. Among the
// events available at each step the one with the smallest index is chosen,
// so the result is deterministic.
func (r *Relation) TopoSort() ([]int, error) {
	n := r.n
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Has(i, j) {
				indeg[j]++
			}
		}
	}
	var order []int
	avail := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			avail = append(avail, i)
		}
	}
	for len(avail) > 0 {
		sort.Ints(avail)
		v := avail[0]
		avail = avail[1:]
		order = append(order, v)
		for j := 0; j < n; j++ {
			if r.Has(v, j) {
				indeg[j]--
				if indeg[j] == 0 {
					avail = append(avail, j)
				}
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("memmodel: relation is cyclic, no linear extension exists")
	}
	return order, nil
}

// ReachableBefore reports whether from reaches to through the relation
// (i.e. the pair is in the transitive closure). The relation itself is not
// modified.
func (r *Relation) ReachableBefore(from, to int) bool {
	if from == to {
		return false
	}
	n := r.n
	visited := make([]bool, n)
	stack := []int{from}
	visited[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < n; j++ {
			if r.Has(v, j) && !visited[j] {
				if j == to {
					return true
				}
				visited[j] = true
				stack = append(stack, j)
			}
		}
	}
	return false
}

// FindCycle returns one cycle in the relation as a sequence of event
// indices (the last element reaches the first), or nil if the relation is
// acyclic. Useful for diagnostics such as explaining why an execution is
// forbidden.
func (r *Relation) FindCycle() []int {
	n := r.n
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = gray
		for j := 0; j < n; j++ {
			if !r.Has(v, j) {
				continue
			}
			if color[j] == gray {
				// Found a back edge; reconstruct the cycle j -> ... -> v.
				cycle = []int{j}
				for u := v; u != j && u != -1; u = parent[u] {
					cycle = append(cycle, u)
				}
				// Reverse to get forward order starting at j.
				for a, b := 0, len(cycle)-1; a < b; a, b = a+1, b-1 {
					cycle[a], cycle[b] = cycle[b], cycle[a]
				}
				return true
			}
			if color[j] == white {
				parent[j] = v
				if dfs(j) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for v := 0; v < n; v++ {
		if color[v] == white {
			if dfs(v) {
				return cycle
			}
		}
	}
	return nil
}

// Format renders the relation's pairs using the supplied event slice, one
// pair per line, for debugging and error messages.
func (r *Relation) Format(events []*Event) string {
	var b strings.Builder
	for _, p := range r.Pairs() {
		fmt.Fprintf(&b, "%s -> %s\n", events[p[0]], events[p[1]])
	}
	return b.String()
}
