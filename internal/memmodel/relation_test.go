package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelationAddHasRemove(t *testing.T) {
	r := NewRelation(4)
	if r.Size() != 4 {
		t.Fatalf("Size = %d, want 4", r.Size())
	}
	if r.Has(0, 1) {
		t.Fatal("empty relation should not contain (0,1)")
	}
	r.Add(0, 1)
	if !r.Has(0, 1) {
		t.Fatal("Add(0,1) not visible")
	}
	if r.Has(1, 0) {
		t.Fatal("relation should be directional")
	}
	r.Remove(0, 1)
	if r.Has(0, 1) {
		t.Fatal("Remove(0,1) not applied")
	}
}

func TestRelationSelfEdgesAreRepresentable(t *testing.T) {
	// The diagonal is representable: (i,i) is a length-1 cycle. This keeps
	// the relation closed under TransitiveClosure — a self-edge surfaced by
	// the closure can be copied into a derived relation verbatim.
	r := NewRelation(3)
	r.Add(1, 1)
	if !r.Has(1, 1) {
		t.Fatal("Add(1,1) must be representable")
	}
	if r.Count() != 1 {
		t.Fatalf("Count = %d, want 1", r.Count())
	}
	if r.Acyclic() {
		t.Fatal("a self-edge is a length-1 cycle")
	}
	if !r.ReachableBefore(1, 1) {
		t.Fatal("a self-edge puts 1 on a cycle: ReachableBefore(1,1) must hold")
	}
	if _, err := r.TopoSort(); err == nil {
		t.Fatal("TopoSort must fail on a self-edge")
	}
	cycle := r.FindCycle()
	if len(cycle) != 1 || cycle[0] != 1 {
		t.Fatalf("FindCycle = %v, want the length-1 cycle [1]", cycle)
	}
	r.Remove(1, 1)
	if r.Has(1, 1) || !r.Acyclic() {
		t.Fatal("Remove(1,1) must restore acyclicity")
	}
}

func TestRelationClosureSelfEdgeRoundTrips(t *testing.T) {
	// A 2-cycle's transitive closure writes the diagonal; re-adding those
	// pairs to a fresh relation must reproduce the closure exactly. Under
	// the old semantics Add silently dropped (i,i) and the round trip lost
	// the cycle evidence.
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 0)
	closed := r.Clone().TransitiveClosure()
	if !closed.Has(0, 0) || !closed.Has(1, 1) {
		t.Fatal("closure of a 2-cycle must contain the diagonal")
	}
	rebuilt := NewRelation(3)
	for _, p := range closed.Pairs() {
		rebuilt.Add(p[0], p[1])
	}
	if rebuilt.Count() != closed.Count() {
		t.Fatalf("rebuilt relation has %d pairs, closure has %d", rebuilt.Count(), closed.Count())
	}
	if rebuilt.Acyclic() {
		t.Fatal("rebuilt closure must still be cyclic")
	}
}

func TestRelationCountAndPairs(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(0, 2)
	if r.Count() != 3 {
		t.Fatalf("Count = %d, want 3", r.Count())
	}
	pairs := r.Pairs()
	if len(pairs) != 3 {
		t.Fatalf("len(Pairs) = %d, want 3", len(pairs))
	}
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for i, p := range pairs {
		if p != want[i] {
			t.Errorf("Pairs[%d] = %v, want %v", i, p, want[i])
		}
	}
}

func TestRelationCloneIsIndependent(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	c := r.Clone()
	c.Add(1, 2)
	if r.Has(1, 2) {
		t.Fatal("mutating clone must not affect original")
	}
	if !c.Has(0, 1) {
		t.Fatal("clone must preserve existing edges")
	}
}

func TestRelationUnion(t *testing.T) {
	a := NewRelation(3)
	a.Add(0, 1)
	b := NewRelation(3)
	b.Add(1, 2)
	a.Union(b)
	if !a.Has(0, 1) || !a.Has(1, 2) {
		t.Fatal("union missing edges")
	}
	u := UnionOf(3, a, b, nil)
	if u.Count() != 2 {
		t.Fatalf("UnionOf count = %d, want 2", u.Count())
	}
	// Union with nil is a no-op.
	a.Union(nil)
	if a.Count() != 2 {
		t.Fatal("union with nil changed the relation")
	}
}

func TestRelationUnionSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("union of differently sized relations should panic")
		}
	}()
	NewRelation(2).Union(NewRelation(3))
}

func TestTransitiveClosure(t *testing.T) {
	r := NewRelation(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	r.TransitiveClosure()
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !r.Has(p[0], p[1]) {
			t.Errorf("closure missing (%d,%d)", p[0], p[1])
		}
	}
	if r.Has(3, 0) {
		t.Error("closure added a reverse edge")
	}
}

func TestAcyclic(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	if !r.Acyclic() {
		t.Fatal("chain should be acyclic")
	}
	r.Add(2, 0)
	if r.Acyclic() {
		t.Fatal("cycle not detected")
	}
}

func TestTopoSortChain(t *testing.T) {
	r := NewRelation(4)
	r.Add(2, 1)
	r.Add(1, 0)
	r.Add(0, 3)
	order, err := r.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, p := range r.Pairs() {
		if pos[p[0]] >= pos[p[1]] {
			t.Errorf("topo order violates edge (%d,%d)", p[0], p[1])
		}
	}
}

func TestTopoSortCyclicFails(t *testing.T) {
	r := NewRelation(2)
	r.Add(0, 1)
	r.Add(1, 0)
	if _, err := r.TopoSort(); err == nil {
		t.Fatal("TopoSort of a cyclic relation must fail")
	}
}

func TestReachableBefore(t *testing.T) {
	r := NewRelation(5)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(3, 4)
	if !r.ReachableBefore(0, 2) {
		t.Error("0 should reach 2")
	}
	if r.ReachableBefore(0, 4) {
		t.Error("0 should not reach 4")
	}
	if r.ReachableBefore(2, 0) {
		t.Error("2 should not reach 0")
	}
	if r.ReachableBefore(1, 1) {
		t.Error("ReachableBefore(v,v) must be false")
	}
}

func TestFindCycle(t *testing.T) {
	r := NewRelation(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 1)
	cycle := r.FindCycle()
	if cycle == nil {
		t.Fatal("cycle not found")
	}
	// Every consecutive pair (and the wrap-around pair) must be an edge.
	for i := range cycle {
		from := cycle[i]
		to := cycle[(i+1)%len(cycle)]
		if !r.Has(from, to) {
			t.Errorf("reported cycle uses non-edge (%d,%d)", from, to)
		}
	}
	acyc := NewRelation(3)
	acyc.Add(0, 1)
	if acyc.FindCycle() != nil {
		t.Error("FindCycle on acyclic relation should return nil")
	}
}

func TestRelationFormat(t *testing.T) {
	events := []*Event{
		{Index: 0, Thread: 0, Kind: KindWrite, Addr: 0, Value: 1},
		{Index: 1, Thread: 1, Kind: KindRead, Addr: 0, Value: 1},
	}
	r := NewRelation(2)
	r.Add(0, 1)
	s := r.Format(events)
	if s == "" {
		t.Fatal("Format returned empty string for non-empty relation")
	}
}

// randomDAGRelation builds a random DAG by only adding edges from lower to
// higher indices under a random permutation.
func randomDAGRelation(rng *rand.Rand, n int) *Relation {
	perm := rng.Perm(n)
	r := NewRelation(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				r.Add(perm[i], perm[j])
			}
		}
	}
	return r
}

func TestPropertyTopoSortConsistentWithEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 2 + local.Intn(9)
		r := randomDAGRelation(local, n)
		if !r.Acyclic() {
			return false // construction guarantees acyclicity
		}
		order, err := r.TopoSort()
		if err != nil {
			return false
		}
		pos := map[int]int{}
		for i, v := range order {
			pos[v] = i
		}
		for _, p := range r.Pairs() {
			if pos[p[0]] >= pos[p[1]] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyClosureContainsReachability(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 2 + local.Intn(7)
		r := randomDAGRelation(local, n)
		closed := r.Clone().TransitiveClosure()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if r.ReachableBefore(i, j) != closed.Has(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// boolRelation is a straightforward []bool adjacency-matrix reference
// implementation — the representation the bitset replaced. The property
// test below checks the two agree operation by operation on random edge
// sets, including self-edges and sizes straddling the 64-event word
// boundary (which switches Acyclic/ReachableBefore between their
// single-word and multi-word paths).
type boolRelation struct {
	n   int
	adj []bool
}

func newBoolRelation(n int) *boolRelation { return &boolRelation{n: n, adj: make([]bool, n*n)} }

func (r *boolRelation) add(i, j int)      { r.adj[i*r.n+j] = true }
func (r *boolRelation) has(i, j int) bool { return r.adj[i*r.n+j] }

func (r *boolRelation) closure() {
	for k := 0; k < r.n; k++ {
		for i := 0; i < r.n; i++ {
			if !r.has(i, k) {
				continue
			}
			for j := 0; j < r.n; j++ {
				if r.has(k, j) {
					r.add(i, j)
				}
			}
		}
	}
}

func (r *boolRelation) acyclic() bool {
	// A relation is cyclic iff its transitive closure touches the diagonal.
	c := newBoolRelation(r.n)
	copy(c.adj, r.adj)
	c.closure()
	for i := 0; i < r.n; i++ {
		if c.has(i, i) {
			return false
		}
	}
	return true
}

func TestPropertyBitsetMatchesBoolMatrix(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		// Sizes 2..80: crossing 64 exercises the multi-word bitset paths.
		n := 2 + local.Intn(79)
		bits := NewRelation(n)
		ref := newBoolRelation(n)
		edges := 1 + local.Intn(3*n)
		for e := 0; e < edges; e++ {
			i, j := local.Intn(n), local.Intn(n) // self-edges included
			bits.Add(i, j)
			ref.add(i, j)
		}
		// A few removals, mirrored.
		for e := 0; e < edges/4; e++ {
			i, j := local.Intn(n), local.Intn(n)
			bits.Remove(i, j)
			ref.adj[i*n+j] = false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if bits.Has(i, j) != ref.has(i, j) {
					return false
				}
			}
		}
		// Union against a second random relation.
		other := NewRelation(n)
		for e := 0; e < n; e++ {
			i, j := local.Intn(n), local.Intn(n)
			other.Add(i, j)
			ref.add(i, j)
		}
		bits.Union(other)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if bits.Has(i, j) != ref.has(i, j) {
					return false
				}
			}
		}
		// Acyclicity must agree before closure...
		if bits.Acyclic() != ref.acyclic() {
			return false
		}
		// ...and TopoSort must succeed exactly on the acyclic ones, with an
		// order consistent with every edge.
		order, err := bits.TopoSort()
		if (err == nil) != ref.acyclic() {
			return false
		}
		if err == nil {
			pos := make([]int, n)
			for i, v := range order {
				pos[v] = i
			}
			for _, p := range bits.Pairs() {
				if pos[p[0]] >= pos[p[1]] {
					return false
				}
			}
		}
		// Closure and reachability must match the reference closure.
		ref.closure()
		closed := bits.Clone().TransitiveClosure()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if closed.Has(i, j) != ref.has(i, j) {
					return false
				}
				if bits.ReachableBefore(i, j) != ref.has(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCycleImpliesTopoSortFails(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 3 + local.Intn(6)
		r := randomDAGRelation(local, n)
		// Force a cycle by adding a back edge along an existing path if any.
		pairs := r.Pairs()
		if len(pairs) == 0 {
			return true
		}
		p := pairs[local.Intn(len(pairs))]
		r.Add(p[1], p[0])
		if r.Acyclic() {
			return false
		}
		_, err := r.TopoSort()
		return err != nil && r.FindCycle() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
