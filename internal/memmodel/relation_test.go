package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelationAddHasRemove(t *testing.T) {
	r := NewRelation(4)
	if r.Size() != 4 {
		t.Fatalf("Size = %d, want 4", r.Size())
	}
	if r.Has(0, 1) {
		t.Fatal("empty relation should not contain (0,1)")
	}
	r.Add(0, 1)
	if !r.Has(0, 1) {
		t.Fatal("Add(0,1) not visible")
	}
	if r.Has(1, 0) {
		t.Fatal("relation should be directional")
	}
	r.Remove(0, 1)
	if r.Has(0, 1) {
		t.Fatal("Remove(0,1) not applied")
	}
}

func TestRelationIgnoresSelfEdges(t *testing.T) {
	r := NewRelation(3)
	r.Add(1, 1)
	if r.Has(1, 1) {
		t.Fatal("self edges must be ignored")
	}
	if r.Count() != 0 {
		t.Fatalf("Count = %d, want 0", r.Count())
	}
}

func TestRelationCountAndPairs(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(0, 2)
	if r.Count() != 3 {
		t.Fatalf("Count = %d, want 3", r.Count())
	}
	pairs := r.Pairs()
	if len(pairs) != 3 {
		t.Fatalf("len(Pairs) = %d, want 3", len(pairs))
	}
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for i, p := range pairs {
		if p != want[i] {
			t.Errorf("Pairs[%d] = %v, want %v", i, p, want[i])
		}
	}
}

func TestRelationCloneIsIndependent(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	c := r.Clone()
	c.Add(1, 2)
	if r.Has(1, 2) {
		t.Fatal("mutating clone must not affect original")
	}
	if !c.Has(0, 1) {
		t.Fatal("clone must preserve existing edges")
	}
}

func TestRelationUnion(t *testing.T) {
	a := NewRelation(3)
	a.Add(0, 1)
	b := NewRelation(3)
	b.Add(1, 2)
	a.Union(b)
	if !a.Has(0, 1) || !a.Has(1, 2) {
		t.Fatal("union missing edges")
	}
	u := UnionOf(3, a, b, nil)
	if u.Count() != 2 {
		t.Fatalf("UnionOf count = %d, want 2", u.Count())
	}
	// Union with nil is a no-op.
	a.Union(nil)
	if a.Count() != 2 {
		t.Fatal("union with nil changed the relation")
	}
}

func TestRelationUnionSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("union of differently sized relations should panic")
		}
	}()
	NewRelation(2).Union(NewRelation(3))
}

func TestTransitiveClosure(t *testing.T) {
	r := NewRelation(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	r.TransitiveClosure()
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !r.Has(p[0], p[1]) {
			t.Errorf("closure missing (%d,%d)", p[0], p[1])
		}
	}
	if r.Has(3, 0) {
		t.Error("closure added a reverse edge")
	}
}

func TestAcyclic(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	if !r.Acyclic() {
		t.Fatal("chain should be acyclic")
	}
	r.Add(2, 0)
	if r.Acyclic() {
		t.Fatal("cycle not detected")
	}
}

func TestTopoSortChain(t *testing.T) {
	r := NewRelation(4)
	r.Add(2, 1)
	r.Add(1, 0)
	r.Add(0, 3)
	order, err := r.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, p := range r.Pairs() {
		if pos[p[0]] >= pos[p[1]] {
			t.Errorf("topo order violates edge (%d,%d)", p[0], p[1])
		}
	}
}

func TestTopoSortCyclicFails(t *testing.T) {
	r := NewRelation(2)
	r.Add(0, 1)
	r.Add(1, 0)
	if _, err := r.TopoSort(); err == nil {
		t.Fatal("TopoSort of a cyclic relation must fail")
	}
}

func TestReachableBefore(t *testing.T) {
	r := NewRelation(5)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(3, 4)
	if !r.ReachableBefore(0, 2) {
		t.Error("0 should reach 2")
	}
	if r.ReachableBefore(0, 4) {
		t.Error("0 should not reach 4")
	}
	if r.ReachableBefore(2, 0) {
		t.Error("2 should not reach 0")
	}
	if r.ReachableBefore(1, 1) {
		t.Error("ReachableBefore(v,v) must be false")
	}
}

func TestFindCycle(t *testing.T) {
	r := NewRelation(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 1)
	cycle := r.FindCycle()
	if cycle == nil {
		t.Fatal("cycle not found")
	}
	// Every consecutive pair (and the wrap-around pair) must be an edge.
	for i := range cycle {
		from := cycle[i]
		to := cycle[(i+1)%len(cycle)]
		if !r.Has(from, to) {
			t.Errorf("reported cycle uses non-edge (%d,%d)", from, to)
		}
	}
	acyc := NewRelation(3)
	acyc.Add(0, 1)
	if acyc.FindCycle() != nil {
		t.Error("FindCycle on acyclic relation should return nil")
	}
}

func TestRelationFormat(t *testing.T) {
	events := []*Event{
		{Index: 0, Thread: 0, Kind: KindWrite, Addr: 0, Value: 1},
		{Index: 1, Thread: 1, Kind: KindRead, Addr: 0, Value: 1},
	}
	r := NewRelation(2)
	r.Add(0, 1)
	s := r.Format(events)
	if s == "" {
		t.Fatal("Format returned empty string for non-empty relation")
	}
}

// randomDAGRelation builds a random DAG by only adding edges from lower to
// higher indices under a random permutation.
func randomDAGRelation(rng *rand.Rand, n int) *Relation {
	perm := rng.Perm(n)
	r := NewRelation(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				r.Add(perm[i], perm[j])
			}
		}
	}
	return r
}

func TestPropertyTopoSortConsistentWithEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 2 + local.Intn(9)
		r := randomDAGRelation(local, n)
		if !r.Acyclic() {
			return false // construction guarantees acyclicity
		}
		order, err := r.TopoSort()
		if err != nil {
			return false
		}
		pos := map[int]int{}
		for i, v := range order {
			pos[v] = i
		}
		for _, p := range r.Pairs() {
			if pos[p[0]] >= pos[p[1]] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyClosureContainsReachability(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 2 + local.Intn(7)
		r := randomDAGRelation(local, n)
		closed := r.Clone().TransitiveClosure()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if r.ReachableBefore(i, j) != closed.Has(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCycleImpliesTopoSortFails(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 3 + local.Intn(6)
		r := randomDAGRelation(local, n)
		// Force a cycle by adding a back edge along an existing path if any.
		pairs := r.Pairs()
		if len(pairs) == 0 {
			return true
		}
		p := pairs[local.Intn(len(pairs))]
		r.Add(p[1], p[0])
		if r.Acyclic() {
			return false
		}
		_, err := r.TopoSort()
		return err != nil && r.FindCycle() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
