package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/engine"
)

// jobEvent is one entry of a job's event stream: a compact JSON summary
// of an engine Event (or the terminal "done" marker), sequence-numbered
// so SSE clients can resume.
type jobEvent struct {
	Seq      int    `json:"seq"`
	Kind     string `json:"kind"` // "sim" | "litmus" | "mapping" | "coord" | "done"
	Unit     string `json:"unit,omitempty"`
	Trace    string `json:"trace,omitempty"`
	Type     string `json:"type,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Test     string `json:"test,omitempty"`
	Holds    *bool  `json:"holds,omitempty"`
	Coord    string `json:"coord,omitempty"` // coordination transition kind
	Worker   string `json:"worker,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Reason   string `json:"reason,omitempty"`
	State    string `json:"state,omitempty"` // terminal event: "done" | "failed"
	Error    string `json:"error,omitempty"`
}

// summarizeEvent converts an engine event into its stream entry.
func summarizeEvent(ev engine.Event) (jobEvent, bool) {
	switch {
	case ev.Sim != nil:
		return jobEvent{
			Kind:     "sim",
			Unit:     string(ev.Sim.Unit),
			Trace:    ev.Sim.Trace,
			Type:     ev.Sim.Type.String(),
			CacheHit: ev.Sim.CacheHit,
		}, true
	case ev.Litmus != nil:
		holds := ev.Litmus.Holds
		je := jobEvent{
			Kind:     "litmus",
			Unit:     ev.Litmus.Unit,
			Type:     ev.Litmus.Atomicity.String(),
			Holds:    &holds,
			CacheHit: ev.Litmus.CacheHit,
		}
		if ev.Litmus.Test != nil {
			je.Test = ev.Litmus.Test.Name
		}
		return je, true
	case ev.Mapping != nil:
		return jobEvent{Kind: "mapping"}, true
	case ev.Coord != nil:
		return jobEvent{
			Kind:    "coord",
			Coord:   ev.Coord.Kind,
			Unit:    string(ev.Coord.Unit),
			Worker:  ev.Coord.Worker,
			Attempt: ev.Coord.Attempt,
			Reason:  ev.Coord.Reason,
		}, true
	}
	return jobEvent{}, false
}

// eventLog is one job's append-only event buffer: appends stamp sequence
// numbers and wake blocked readers; close appends the terminal event.
// Readers replay from any index and then follow live.
type eventLog struct {
	mu      sync.Mutex
	entries []jobEvent
	wake    chan struct{} // closed and replaced on every append
	closed  bool
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append adds one entry (no-op after close).
func (l *eventLog) append(ev jobEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev.Seq = len(l.entries)
	l.entries = append(l.entries, ev)
	close(l.wake)
	l.wake = make(chan struct{})
}

// close appends the terminal entry and marks the log complete.
func (l *eventLog) close(final jobEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	final.Seq = len(l.entries)
	l.entries = append(l.entries, final)
	l.closed = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// from returns the entries at index i and beyond, whether the log is
// complete, and a channel that wakes when more arrive.
func (l *eventLog) from(i int) ([]jobEvent, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var tail []jobEvent
	if i < len(l.entries) {
		tail = append(tail, l.entries[i:]...)
	}
	return tail, l.closed, l.wake
}

// handleJobEvents is GET /v1/jobs/{id}/events: the job's event stream as
// Server-Sent Events — every recorded event replayed from the start,
// then followed live until the terminal "done" event (or client
// disconnect). Each frame is `event: <kind>` + `data: <json>`.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		jsonError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		jsonError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	next := 0
	for {
		events, closed, wake := j.events.from(next)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			next++
		}
		flusher.Flush()
		if closed && len(events) == 0 {
			return
		}
		if closed {
			continue // drain whatever arrived between from() and close
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
