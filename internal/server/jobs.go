package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/litmus"
)

// SubmitRequest is the POST /v1/jobs body: exactly one of Plan or Litmus
// selects the job kind, Mode selects how a plan's units are distributed.
type SubmitRequest struct {
	// Plan submits a simulation sweep built from the spec.
	Plan *PlanSpec `json:"plan,omitempty"`
	// Litmus submits litmus verdict units.
	Litmus *LitmusSpec `json:"litmus,omitempty"`
	// Mode is "static" (default: the engine's worker pool), "coordinate"
	// (in-process pull queue) or "fleet" (host a coordinator under
	// /v1/coord/{id}/ for HTTP workers). Litmus jobs are always static.
	Mode string `json:"mode,omitempty"`
	// Workers, LeaseTTL (Go duration string) and MaxAttempts tune the
	// coordinated modes; zero values keep the engine defaults.
	Workers     int    `json:"workers,omitempty"`
	LeaseTTL    string `json:"lease_ttl,omitempty"`
	MaxAttempts int    `json:"max_attempts,omitempty"`
}

// PlanSpec shapes a plan job like the CLI flags shape a sweep: a preset
// plus overrides. The same spec always builds the same plan (and the
// same unit identities) as `experiments` run with the matching flags.
type PlanSpec struct {
	// Preset is "default" (paper-scale) or "quick"; "" means default.
	Preset string `json:"preset,omitempty"`
	// Cores, Scale and Seed override the preset when positive / non-zero.
	Cores int     `json:"cores,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	// Seeds reruns the sweep under this many consecutive seeds
	// (base Seed), like the CLI's -seeds.
	Seeds int `json:"seeds,omitempty"`
	// Materialize pre-builds whole traces in memory instead of streaming.
	Materialize bool `json:"materialize,omitempty"`
}

// LitmusSpec selects the litmus tests of a litmus job: a registry test
// by name, a registry group, or an inline program in litmus syntax.
// Exactly one must be set.
type LitmusSpec struct {
	Name   string `json:"name,omitempty"`
	Group  string `json:"group,omitempty"`
	Source string `json:"source,omitempty"`
}

// job is one registry entry. The immutable identity fields are set at
// submit; the mutable completion state is guarded by mu.
type job struct {
	id      string
	kind    string // "plan" | "litmus"
	mode    string // "static" | "coordinate" | "fleet"
	created time.Time
	plan    *engine.Plan   // plan jobs only
	opts    engine.Options // plan jobs: the options the report builds from
	units   int            // planned unit count
	events  *eventLog
	coord   *engine.CoordServer // fleet jobs only

	mu       sync.Mutex
	handle   *engine.JobHandle // engine-run jobs (static/coordinate)
	state    string            // "running" | "done" | "failed"
	finished time.Time
	result   *engine.JobResult
	err      error
}

// complete records the job's terminal state and closes its event log
// with the matching terminal event.
func (j *job) complete(res *engine.JobResult, err error, at time.Time) {
	j.mu.Lock()
	j.result, j.err, j.finished = res, err, at
	if err != nil {
		j.state = "failed"
	} else {
		j.state = "done"
	}
	state, msg := j.state, ""
	if err != nil {
		msg = err.Error()
	}
	j.mu.Unlock()
	j.events.close(jobEvent{Kind: "done", State: state, Error: msg})
}

// status snapshots the mutable state.
func (j *job) status() (state string, finished time.Time, res *engine.JobResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.finished, j.result, j.err
}

// shardResult returns the job's shard artifact when it has one: the full
// result of a clean plan job, or the dead-letter partial of a failed
// coordinated one. Nil for litmus, running and cancelled jobs.
func (j *job) shardResult() *engine.ShardResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result != nil && j.result.Shard != nil {
		return j.result.Shard
	}
	var dle *engine.DeadLetterError
	if errors.As(j.err, &dle) {
		return dle.Partial
	}
	return nil
}

// jsonError writes a JSON error body with the status code.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes a JSON response body with the status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// planOptions resolves a PlanSpec to engine options + seed list, exactly
// mirroring how cmd/experiments folds its flags, so the spec and the
// flags build fingerprint-identical plans.
func (s *Server) planOptions(spec *PlanSpec) (engine.Options, []int64, error) {
	var opts engine.Options
	switch spec.Preset {
	case "", "default":
		opts = experiments.DefaultOptions()
	case "quick":
		opts = experiments.QuickOptions()
	default:
		return opts, nil, fmt.Errorf("unknown plan preset %q (want default or quick)", spec.Preset)
	}
	if spec.Cores < 0 {
		return opts, nil, fmt.Errorf("plan cores must be positive, got %d", spec.Cores)
	}
	if spec.Scale < 0 {
		return opts, nil, fmt.Errorf("plan scale must be positive, got %g", spec.Scale)
	}
	if spec.Seeds < 0 {
		return opts, nil, fmt.Errorf("plan seeds must be positive, got %d", spec.Seeds)
	}
	opts.Materialize = spec.Materialize
	if spec.Cores > 0 {
		opts.Cores = spec.Cores
	}
	if spec.Scale > 0 {
		opts.Scale = spec.Scale
	}
	if spec.Seed != 0 {
		opts.Seed = spec.Seed
	}
	opts.Cache = s.cfg.Cache
	seedList := []int64{opts.Seed}
	for n := int64(1); n < int64(spec.Seeds); n++ {
		seedList = append(seedList, opts.Seed+n)
	}
	return opts, seedList, nil
}

// litmusTests resolves a LitmusSpec to the tests of the grid.
func litmusTests(spec *LitmusSpec) ([]*litmus.Test, error) {
	set := 0
	for _, on := range []bool{spec.Name != "", spec.Group != "", spec.Source != ""} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("a litmus spec needs exactly one of name, group or source")
	}
	switch {
	case spec.Name != "":
		t := litmus.FindTest(spec.Name)
		if t == nil {
			return nil, fmt.Errorf("unknown litmus test %q", spec.Name)
		}
		return []*litmus.Test{t}, nil
	case spec.Group != "":
		tests := litmus.ByGroup(spec.Group)
		if len(tests) == 0 {
			return nil, fmt.Errorf("unknown litmus group %q", spec.Group)
		}
		return tests, nil
	default:
		t, err := litmus.Parse(spec.Source)
		if err != nil {
			return nil, err
		}
		return []*litmus.Test{t}, nil
	}
}

// coordinationConfig folds the request's tuning fields into a
// coordination configuration for the coordinate/fleet modes.
func coordinationConfig(req *SubmitRequest) (*engine.CoordinationConfig, error) {
	cfg := &engine.CoordinationConfig{Workers: req.Workers, MaxAttempts: req.MaxAttempts}
	if req.Workers < 0 {
		return nil, fmt.Errorf("workers must be positive, got %d", req.Workers)
	}
	if req.MaxAttempts < 0 {
		return nil, fmt.Errorf("max_attempts must be positive, got %d", req.MaxAttempts)
	}
	if req.LeaseTTL != "" {
		d, err := time.ParseDuration(req.LeaseTTL)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("lease_ttl must be a positive duration, got %q", req.LeaseTTL)
		}
		cfg.LeaseTTL = d
	}
	return cfg, nil
}

// handleSubmit is POST /v1/jobs: validate, register, start, 202.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		jsonError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decoding submit request: %v", err)
		return
	}
	if (req.Plan == nil) == (req.Litmus == nil) {
		jsonError(w, http.StatusBadRequest, "a job needs exactly one of plan or litmus")
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "static"
	}
	switch mode {
	case "static", "coordinate", "fleet":
	default:
		jsonError(w, http.StatusBadRequest, "unknown mode %q (want static, coordinate or fleet)", mode)
		return
	}
	if req.Litmus != nil && mode != "static" {
		jsonError(w, http.StatusBadRequest, "litmus jobs are always static; mode %q only applies to plans", mode)
		return
	}

	// Build the work before claiming a registry slot, so a bad spec
	// costs nothing.
	var (
		plan  *engine.Plan
		opts  engine.Options
		tests []*litmus.Test
		kind  string
	)
	if req.Plan != nil {
		kind = "plan"
		var seedList []int64
		var err error
		opts, seedList, err = s.planOptions(req.Plan)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "%v", err)
			return
		}
		plan, err = engine.DefaultPlanSeeds(opts, seedList...)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "building plan: %v", err)
			return
		}
	} else {
		kind = "litmus"
		var err error
		tests, err = litmusTests(req.Litmus)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	var coordCfg *engine.CoordinationConfig
	if mode != "static" {
		var err error
		coordCfg, err = coordinationConfig(&req)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	// Claim the registry slot under backpressure.
	s.mu.Lock()
	s.pruneLocked()
	if s.draining {
		s.mu.Unlock()
		jsonError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	if s.running >= s.cfg.MaxJobs {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusTooManyRequests, "%d jobs already running (limit %d); retry later", s.cfg.MaxJobs, s.cfg.MaxJobs)
		return
	}
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%06d", s.nextID),
		kind:    kind,
		mode:    mode,
		created: s.now(),
		plan:    plan,
		opts:    opts,
		events:  newEventLog(),
		state:   "running",
	}
	if plan != nil {
		j.units = plan.Len()
		for _, u := range plan.Units() {
			s.keys[u.Key.Digest()] = u.Key
		}
	} else {
		j.units = len(tests) * len(s.eng.Types())
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.running++
	s.jobsTotal++
	s.mu.Unlock()

	if err := s.startJob(j, tests, coordCfg); err != nil {
		s.finishJob(j, nil, err)
		jsonError(w, http.StatusBadRequest, "starting job: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobStatusBody(j))
}

// startJob launches the registered job's work and its completion
// watcher.
func (s *Server) startJob(j *job, tests []*litmus.Test, coordCfg *engine.CoordinationConfig) error {
	obs := func(ev engine.Event) {
		if je, ok := summarizeEvent(ev); ok {
			j.events.append(je)
		}
	}
	if j.mode == "fleet" {
		coord, err := s.eng.NewCoordServerWith(j.plan, engine.FullShard(), *coordCfg, obs)
		if err != nil {
			return err
		}
		j.coord = coord
		go func() {
			sr, err := coord.Wait(s.jobCtx)
			var res *engine.JobResult
			if sr != nil {
				res = &engine.JobResult{Shard: sr}
			}
			s.finishJob(j, res, err)
		}()
		return nil
	}
	ejob := engine.Job{Observer: obs, Coordination: coordCfg}
	if j.kind == "plan" {
		ejob.Plan = j.plan
	} else {
		ejob.Litmus = &engine.LitmusGrid{Tests: tests}
	}
	h, err := s.eng.Submit(s.jobCtx, ejob)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.handle = h
	j.mu.Unlock()
	go func() {
		res, err := h.Wait()
		s.finishJob(j, res, err)
	}()
	return nil
}

// finishJob records a job's terminal state and releases its running
// slot; the last job out closes the drain gate.
func (s *Server) finishJob(j *job, res *engine.JobResult, err error) {
	j.complete(res, err, s.now())
	s.mu.Lock()
	s.running--
	if s.draining && s.running == 0 && s.drained != nil {
		select {
		case <-s.drained:
		default:
			close(s.drained)
		}
	}
	s.mu.Unlock()
}

// pruneLocked evicts finished jobs past their retention TTL. Caller
// holds s.mu.
func (s *Server) pruneLocked() {
	cutoff := s.now().Add(-s.cfg.RetainFinished)
	keep := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		state, finished, _, _ := j.status()
		if state != "running" && finished.Before(cutoff) {
			delete(s.jobs, id)
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// lookupJob resolves a job ID (pruning expired entries on the way).
func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
	return s.jobs[id]
}

// jobStatusBody renders one job's status document.
func (s *Server) jobStatusBody(j *job) map[string]any {
	state, finished, _, err := j.status()
	m := j.metricsSnapshot()
	body := map[string]any{
		"id":      j.id,
		"kind":    j.kind,
		"mode":    j.mode,
		"state":   state,
		"created": j.created.UTC().Format(time.RFC3339Nano),
		"units":   j.units,
		"metrics": map[string]any{
			"units_planned":      m.UnitsPlanned,
			"units_done":         m.UnitsDone,
			"cache_hits":         m.CacheHits,
			"cache_misses":       m.CacheMisses,
			"verdicts":           m.Verdicts,
			"verdict_cache_hits": m.VerdictCacheHits,
			"inflight_leases":    m.InflightLeases,
			"retries":            m.Retries,
			"dlq_depth":          m.DLQDepth,
		},
		"links": map[string]string{
			"self":   "/v1/jobs/" + j.id,
			"events": "/v1/jobs/" + j.id + "/events",
		},
	}
	if j.kind == "plan" {
		body["links"].(map[string]string)["report"] = "/v1/reports/" + j.id
		body["plan_fingerprint"] = j.plan.Fingerprint()
	}
	if j.mode == "fleet" {
		body["links"].(map[string]string)["coordinator"] = "/v1/coord/" + j.id
	}
	if !finished.IsZero() {
		body["finished"] = finished.UTC().Format(time.RFC3339Nano)
	}
	if err != nil {
		body["error"] = err.Error()
	}
	return body
}

// metricsSnapshot returns the job's live counters: the handle's for
// engine-run jobs, the coordinator's for fleets.
func (j *job) metricsSnapshot() engine.Metrics {
	if j.coord != nil {
		return j.coord.Metrics()
	}
	j.mu.Lock()
	h := j.handle
	j.mu.Unlock()
	if h != nil {
		return h.Metrics()
	}
	return engine.Metrics{}
}

// handleListJobs is GET /v1/jobs: the registry in submit order.
func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	s.pruneLocked()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	jobs := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		if j := s.lookupJob(id); j != nil {
			jobs = append(jobs, s.jobStatusBody(j))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		jsonError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobStatusBody(j))
}

// handleResult is GET /v1/results/{unit}: the absorbed unit result.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("unit")
	ur, ok := s.eng.Results().Unit(engine.UnitID(id))
	if !ok {
		jsonError(w, http.StatusNotFound, "no result for unit %q", id)
		return
	}
	writeJSON(w, http.StatusOK, ur)
}

// handleResultByKey is GET /v1/results/by-key/{digest}: a full
// content-key lookup through the result store and cache. The digest is
// the full 64-hex key digest (unit IDs are its prefix); the server
// indexes the keys of every plan it has built.
func (s *Server) handleResultByKey(w http.ResponseWriter, r *http.Request) {
	digest := strings.ToLower(r.PathValue("digest"))
	s.mu.Lock()
	key, ok := s.keys[digest]
	s.mu.Unlock()
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown content key %q (no submitted plan contains it)", digest)
		return
	}
	res, fromCache, ok := s.eng.Results().Lookup(key)
	if !ok {
		jsonError(w, http.StatusNotFound, "content key %q known but has no result yet", digest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"unit":       key.UnitID(),
		"key":        key,
		"from_cache": fromCache,
		"result":     res,
	})
}

// handleReport is GET /v1/reports/{id}?format=ascii|json|csv: the full
// evaluation report of a finished plan job, built and encoded through
// exactly the pipeline cmd/experiments uses — the bytes are identical to
// the CLI's for the same sweep.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		jsonError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if j.kind != "plan" {
		jsonError(w, http.StatusBadRequest, "job %s is a %s job; reports cover plan sweeps", id, j.kind)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = experiments.FormatASCII
	}
	enc, err := experiments.NewEncoder(format)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	state, _, res, jerr := j.status()
	switch state {
	case "running":
		jsonError(w, http.StatusConflict, "job %s is still running (%s)", id, state)
		return
	case "failed":
		// A dead-lettered coordinated sweep still renders its partial
		// report, like the CLI does before exiting non-zero.
		var dle *engine.DeadLetterError
		if !errors.As(jerr, &dle) {
			jsonError(w, http.StatusConflict, "job %s failed: %v", id, jerr)
			return
		}
		runs, _, err := j.plan.RunsPartial(dle.Partial.Units)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.encodeReport(w, enc, format, j.opts, runs, dle.Partial.Coordination)
		return
	}
	runs, err := j.plan.Runs(res.Shard.Units)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.encodeReport(w, enc, format, j.opts, runs, res.Shard.Coordination)
}

// encodeReport builds and writes the report. It encodes to a buffer
// first so an encoding failure can still produce an error status.
func (s *Server) encodeReport(w http.ResponseWriter, enc experiments.Encoder, format string, opts engine.Options, runs []*engine.BenchmarkRun, coord *engine.Coordination) {
	report, err := experiments.BuildReport(opts, runs)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "building report: %v", err)
		return
	}
	report.Coordination = coord
	var buf bytes.Buffer
	if err := enc.Encode(&buf, report); err != nil {
		jsonError(w, http.StatusInternalServerError, "encoding report: %v", err)
		return
	}
	switch format {
	case experiments.FormatJSON:
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	_, _ = w.Write(buf.Bytes())
}

// sortedKeys returns the map's keys sorted, for deterministic output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
