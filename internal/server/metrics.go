package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// handleMetrics is GET /metrics: the engine's aggregate counters plus
// the server's job and HTTP traffic gauges in Prometheus text exposition
// format (hand-rolled — the module takes no dependencies). Output order
// is deterministic so scrapes and tests can diff it.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.eng.Metrics()
	s.mu.Lock()
	running, total := s.running, s.jobsTotal
	s.mu.Unlock()

	var b strings.Builder
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
			name, help, name, name, formatValue(v))
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, formatValue(v))
	}

	counter("rmwtso_units_planned_total", "Work units selected for execution across all jobs.", float64(m.UnitsPlanned))
	counter("rmwtso_units_done_total", "Work units finished across all jobs (cache hits included).", float64(m.UnitsDone))
	counter("rmwtso_cache_hits_total", "Simulator units served from the result cache.", float64(m.CacheHits))
	counter("rmwtso_cache_misses_total", "Simulator units the cache missed.", float64(m.CacheMisses))
	counter("rmwtso_verdicts_total", "Litmus verdicts computed or served.", float64(m.Verdicts))
	counter("rmwtso_verdict_cache_hits_total", "Litmus verdicts served from the cache.", float64(m.VerdictCacheHits))
	ratio := 0.0
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		ratio = float64(m.CacheHits) / float64(lookups)
	}
	gauge("rmwtso_cache_hit_ratio", "Fraction of simulator unit lookups served from the cache.", ratio)
	gauge("rmwtso_units_per_second", "Engine-lifetime unit completion rate.", m.UnitsPerSec)
	gauge("rmwtso_inflight_leases", "Currently leased units of coordinated sweeps.", float64(m.InflightLeases))
	counter("rmwtso_retries_total", "Coordinated unit attempts that were requeued.", float64(m.Retries))
	counter("rmwtso_expired_leases_total", "Coordinated leases recovered by expiry.", float64(m.Expired))
	gauge("rmwtso_dlq_depth", "Dead-lettered units across coordinated sweeps.", float64(m.DLQDepth))
	gauge("rmwtso_jobs_inflight", "Jobs currently running.", float64(running))
	counter("rmwtso_jobs_total", "Jobs accepted since the server started.", float64(total))

	s.reqMu.Lock()
	routes := sortedKeys(s.reqs)
	fmt.Fprintf(&b, "# HELP rmwtso_http_requests_total HTTP requests served, by route and status code.\n# TYPE rmwtso_http_requests_total counter\n")
	for _, route := range routes {
		codes := make([]int, 0, len(s.reqs[route]))
		for code := range s.reqs[route] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(&b, "rmwtso_http_requests_total{route=%q,code=\"%d\"} %d\n",
				route, code, s.reqs[route][code])
		}
	}
	s.reqMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// formatValue renders a sample value the shortest exact way.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
