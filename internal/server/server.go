// Package server is the long-running HTTP query/ops service over the
// execution engine: a versioned JSON API to submit plan or litmus jobs
// (POST /v1/jobs), watch them (status, SSE event streams), query any
// result by unit ID or full content key, fetch reports through the
// existing encoders byte-identically to the batch CLI, and host sweep
// coordinators for HTTP worker fleets — plus the operational surface a
// service needs: /healthz, /readyz, Prometheus-format /metrics, bounded
// TTL'd job retention with 429 backpressure, and graceful drain on
// shutdown (in-flight jobs finish under a deadline, finished shard
// artifacts are flushed to disk). The public facade re-exports it as
// rmwtso.NewServer; cmd/rmwtso-serve is the binary.
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/simcache"
)

// Config configures the service. The zero value of every field picks the
// noted default, so Config{} is a runnable local server.
type Config struct {
	// Addr is the listen address of Run. Default ":8080".
	Addr string
	// Parallelism is the engine worker-pool size (0 = GOMAXPROCS);
	// EnumWorkers the per-verdict enumeration fan-out (0 = auto).
	Parallelism int
	EnumWorkers int
	// Cache, when non-nil, backs the engine with the content-addressed
	// result cache: warm submits collapse to digest lookups.
	Cache *simcache.Cache
	// MaxJobs bounds the jobs running concurrently; submits beyond it are
	// rejected with 429 until one finishes. Default 8.
	MaxJobs int
	// RetainFinished is how long a finished job (and its events) stays
	// queryable before the registry evicts it. Default 1h.
	RetainFinished time.Duration
	// DrainTimeout bounds the graceful drain: on shutdown the server
	// stops accepting submits and waits this long for in-flight jobs
	// before cancelling the stragglers. Default 30s.
	DrainTimeout time.Duration
	// ArtifactDir, when set, receives every finished plan job's shard
	// artifact (<jobID>.json) during drain, so a stopped server loses no
	// completed units.
	ArtifactDir string
}

// withDefaults resolves the zero fields to their defaults.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 8
	}
	if c.RetainFinished <= 0 {
		c.RetainFinished = time.Hour
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Server is the service: one engine, a bounded job registry, and the
// HTTP API over both. Build it with New, serve it with Run (or mount
// Handler under a server you own), and it drains gracefully when Run's
// context ends.
type Server struct {
	cfg Config
	eng *engine.Engine
	mux *http.ServeMux

	// jobCtx is the context every job runs under. It is independent of
	// Run's context on purpose: shutdown must stop accepting work and
	// wait, not kill in-flight sweeps — cancelJobs fires only when the
	// drain deadline expires.
	jobCtx     context.Context
	cancelJobs context.CancelFunc

	// now is the registry clock, injectable so retention tests don't
	// sleep.
	now func() time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // submit order, for listing and pruning
	nextID    int
	running   int
	jobsTotal int
	draining  bool
	drained   chan struct{} // non-nil once draining; closed when running hits 0
	keys      map[string]engine.CacheKey

	reqMu sync.Mutex
	reqs  map[string]map[int]int64 // route → status code → count
}

// New builds the server and its engine from the configuration.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var engOpts []engine.Option
	if cfg.Parallelism > 0 {
		engOpts = append(engOpts, engine.WithParallelism(cfg.Parallelism))
	}
	if cfg.EnumWorkers > 0 {
		engOpts = append(engOpts, engine.WithEnumWorkers(cfg.EnumWorkers))
	}
	if cfg.Cache != nil {
		engOpts = append(engOpts, engine.WithCache(cfg.Cache))
	}
	jobCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		eng:        engine.New(engOpts...),
		jobCtx:     jobCtx,
		cancelJobs: cancel,
		now:        time.Now,
		jobs:       map[string]*job{},
		keys:       map[string]engine.CacheKey{},
		reqs:       map[string]map[int]int64{},
	}
	s.mux = s.buildMux()
	return s, nil
}

// Engine exposes the server's engine, e.g. to pre-warm its cache.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the full instrumented API handler, for mounting under
// a caller-owned HTTP server (tests, embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Run listens on the configured address and serves until ctx ends, then
// drains: submits are refused, in-flight jobs get DrainTimeout to
// finish (then are cancelled), finished plan artifacts are flushed to
// ArtifactDir, and the HTTP server shuts down.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run over a caller-provided listener (which it takes ownership
// of), so callers can bind port 0 and learn the address first.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(shutCtx)
}

// Drain runs the graceful-drain state machine: serving → draining
// (readiness 503, submits refused) → wait for in-flight jobs under
// DrainTimeout → cancel stragglers → flush finished plan artifacts. It
// is idempotent and returns when the registry is quiescent.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.drained == nil {
		s.draining = true
		s.drained = make(chan struct{})
		if s.running == 0 {
			close(s.drained)
		}
	}
	done := s.drained
	s.mu.Unlock()

	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		// Deadline passed: kill the stragglers and wait for their
		// watchers to record the cancellation.
		s.cancelJobs()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
	}
	s.flushArtifacts()
}

// flushArtifacts writes every finished plan job's shard artifact (full
// or dead-letter partial) to ArtifactDir, so completed units survive the
// process. Flush failures are reported on stderr but don't abort the
// shutdown.
func (s *Server) flushArtifacts() {
	if s.cfg.ArtifactDir == "" {
		return
	}
	if err := os.MkdirAll(s.cfg.ArtifactDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "rmwtso-serve: artifact dir:", err)
		return
	}
	s.mu.Lock()
	var flush []*job
	for _, id := range s.order {
		flush = append(flush, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range flush {
		sr := j.shardResult()
		if sr == nil {
			continue
		}
		path := filepath.Join(s.cfg.ArtifactDir, j.id+".json")
		if err := sr.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "rmwtso-serve: flushing %s: %v\n", j.id, err)
		}
	}
}

// isDraining reports whether the server has entered the drain state.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// buildMux assembles the routing table. Every route is registered
// through handle(), which instruments it for the per-route request
// counters /metrics exposes.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(route, h))
	}
	handle("GET /healthz", "/healthz", s.handleHealthz)
	handle("GET /readyz", "/readyz", s.handleReadyz)
	handle("GET /metrics", "/metrics", s.handleMetrics)
	handle("POST /v1/jobs", "/v1/jobs", s.handleSubmit)
	handle("GET /v1/jobs", "/v1/jobs", s.handleListJobs)
	handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobStatus)
	handle("GET /v1/jobs/{id}/events", "/v1/jobs/{id}/events", s.handleJobEvents)
	handle("GET /v1/results/{unit}", "/v1/results/{unit}", s.handleResult)
	handle("GET /v1/results/by-key/{digest}", "/v1/results/by-key/{digest}", s.handleResultByKey)
	handle("GET /v1/reports/{id}", "/v1/reports/{id}", s.handleReport)
	handle("/v1/coord/{id}/{rest...}", "/v1/coord/{id}", s.handleCoord)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleCoord dispatches fleet-mode coordinator traffic: the wire
// protocol of engine.CoordServer is mounted per job under
// /v1/coord/{id}/, so one server hosts many concurrent fleets.
func (s *Server) handleCoord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil || j.coord == nil {
		jsonError(w, http.StatusNotFound, "no coordinated job %q", id)
		return
	}
	http.StripPrefix("/v1/coord/"+id, j.coord.Handler()).ServeHTTP(w, r)
}

// instrument wraps a route with the per-route request counter.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.reqMu.Lock()
		m := s.reqs[route]
		if m == nil {
			m = map[int]int64{}
			s.reqs[route] = m
		}
		m[code]++
		s.reqMu.Unlock()
	})
}

// statusWriter records the response status for the request counters. It
// forwards Flush so SSE streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
