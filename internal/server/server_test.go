package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// tinyPlanSpec is the sweep shape every test submits: the quick preset
// shrunk further so a full plan job finishes in seconds.
const tinyPlanSpec = `{"preset":"quick","cores":4,"scale":0.05}`

// tinyPlanOptions mirrors tinyPlanSpec through the same folding rule the
// server applies, for building the expected side of parity checks.
func tinyPlanOptions() engine.Options {
	opts := experiments.QuickOptions()
	opts.Cores = 4
	opts.Scale = 0.05
	return opts
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// submit POSTs a job body and decodes the JSON response.
func submit(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp.StatusCode, doc
}

// getJSON fetches a path and decodes the JSON response.
func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	return resp.StatusCode, doc
}

// waitDone polls a job's status until it leaves the running state.
func waitDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, doc := getJSON(t, ts, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job status %s: HTTP %d: %v", id, code, doc)
		}
		if doc["state"] != "running" {
			return doc
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return nil
}

// expectedReportJSON runs the identical sweep through the batch pipeline
// (plan → engine → runs → report → encoder), exactly like cmd/experiments
// emitReport, and returns the encoded bytes the server must match.
func expectedReportJSON(t *testing.T, opts engine.Options) []byte {
	t.Helper()
	plan, err := engine.DefaultPlanSeeds(opts, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	h, err := eng.Submit(context.Background(), engine.Job{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	runs, err := plan.Runs(res.Shard.Units)
	if err != nil {
		t.Fatal(err)
	}
	report, err := experiments.BuildReport(opts, runs)
	if err != nil {
		t.Fatal(err)
	}
	report.Coordination = res.Shard.Coordination
	enc, err := experiments.NewEncoder(experiments.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := enc.Encode(&buf, report); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id    string
	event string
	data  map[string]any
}

// readSSE consumes a /events stream until the terminal done frame.
func readSSE(t *testing.T, ts *httptest.Server, id string) []sseFrame {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q, want text/event-stream", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			frames = append(frames, cur)
			if cur.event == "done" {
				return frames
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("stream ended without a done frame (read %d frames): %v", len(frames), sc.Err())
	return nil
}

// TestPlanJobLifecycle drives the cornerstone path end to end: submit a
// plan sweep over HTTP, follow it to completion, check every query
// surface against it (status, results by unit and by content key, SSE
// replay, /metrics), verify the report is byte-identical to the batch
// CLI pipeline, and finally drain with an artifact directory.
func TestPlanJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{ArtifactDir: dir, DrainTimeout: time.Second})

	code, doc := submit(t, ts, `{"plan":`+tinyPlanSpec+`}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit response has no job id: %v", doc)
	}
	if doc["kind"] != "plan" || doc["mode"] != "static" {
		t.Fatalf("submit response kind/mode = %v/%v", doc["kind"], doc["mode"])
	}
	if doc["plan_fingerprint"] == "" {
		t.Fatalf("submit response has no plan fingerprint: %v", doc)
	}
	units := int(doc["units"].(float64))
	if units <= 0 {
		t.Fatalf("submit response units = %d, want > 0", units)
	}

	final := waitDone(t, ts, id)
	if final["state"] != "done" {
		t.Fatalf("job finished in state %v (error %v)", final["state"], final["error"])
	}
	metrics := final["metrics"].(map[string]any)
	if got := int(metrics["units_done"].(float64)); got != units {
		t.Fatalf("units_done = %d, want %d", got, units)
	}

	// The SSE stream replays the whole history for late subscribers:
	// exactly one sim frame per unit, sequence-numbered, then done.
	frames := readSSE(t, ts, id)
	if len(frames) != units+1 {
		t.Fatalf("SSE replay has %d frames, want %d units + done", len(frames), units)
	}
	unitSet := map[string]bool{}
	for i, fr := range frames[:units] {
		if fr.event != "sim" {
			t.Fatalf("frame %d event = %q, want sim", i, fr.event)
		}
		if fr.id != fmt.Sprint(i) || int(fr.data["seq"].(float64)) != i {
			t.Fatalf("frame %d has id %q seq %v, want %d", i, fr.id, fr.data["seq"], i)
		}
		unitSet[fr.data["unit"].(string)] = true
	}
	if len(unitSet) != units {
		t.Fatalf("SSE replay covered %d distinct units, want %d", len(unitSet), units)
	}

	// Every planned unit is queryable by ID and by full content key.
	opts := tinyPlanOptions()
	plan, err := engine.DefaultPlanSeeds(opts, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	u := plan.Units()[0]
	if code, doc := getJSON(t, ts, "/v1/results/"+string(u.ID)); code != http.StatusOK {
		t.Fatalf("result %s: HTTP %d: %v", u.ID, code, doc)
	}
	code, byKey := getJSON(t, ts, "/v1/results/by-key/"+u.Key.Digest())
	if code != http.StatusOK {
		t.Fatalf("result by key: HTTP %d: %v", code, byKey)
	}
	if byKey["unit"] != string(u.ID) {
		t.Fatalf("by-key lookup resolved unit %v, want %s", byKey["unit"], u.ID)
	}

	// The report endpoint must reproduce the batch pipeline's bytes.
	resp, err := http.Get(ts.URL + "/v1/reports/" + id + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: HTTP %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("report Content-Type = %q, want application/json", ct)
	}
	want := expectedReportJSON(t, opts)
	if !bytes.Equal(got, want) {
		t.Fatalf("report bytes differ from the batch pipeline's (%d vs %d bytes)", len(got), len(want))
	}

	// The ASCII encoding serves too (spot-check, not byte-compared here).
	if resp, err := http.Get(ts.URL + "/v1/reports/" + id); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("ascii report: %v / HTTP %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// /metrics speaks Prometheus text format and has absorbed the sweep.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := readAll(mresp)
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	text := string(mbody)
	for _, want := range []string{
		"# TYPE rmwtso_units_done_total counter",
		fmt.Sprintf("rmwtso_units_done_total %d\n", units),
		"rmwtso_cache_hits_total ",
		"rmwtso_cache_misses_total ",
		"rmwtso_units_per_second ",
		"rmwtso_jobs_inflight 0",
		"rmwtso_jobs_total 1",
		`rmwtso_http_requests_total{route="/v1/jobs",code="202"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// Drain with nothing running returns promptly and flushes the shard
	// artifact for the finished plan job.
	start := time.Now()
	srv.Drain()
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("idle drain took %s, want immediate", elapsed)
	}
	artifact := filepath.Join(dir, id+".json")
	shard, err := engine.ReadShardFile(artifact)
	if err != nil {
		t.Fatalf("drain did not flush a readable shard artifact: %v", err)
	}
	if len(shard.Units) != units {
		t.Fatalf("artifact has %d units, want %d", len(shard.Units), units)
	}

	// Draining flips readiness and refuses new work.
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v / HTTP %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if code, _ := submit(t, ts, `{"plan":{"preset":"quick"}}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", code)
	}
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestLitmusJobStreamsLive submits a litmus job and follows its SSE
// stream as it runs: one litmus frame per verdict, then done.
func TestLitmusJobStreamsLive(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, doc := submit(t, ts, `{"litmus":{"name":"write-deadlock (Fig. 10)"}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)
	units := int(doc["units"].(float64))
	if units != 3 {
		t.Fatalf("litmus job units = %d, want 3 (one per atomicity type)", units)
	}

	frames := readSSE(t, ts, id)
	if len(frames) != units+1 {
		t.Fatalf("SSE stream has %d frames, want %d verdicts + done", len(frames), units)
	}
	for i, fr := range frames[:units] {
		if fr.event != "litmus" {
			t.Fatalf("frame %d event = %q, want litmus", i, fr.event)
		}
		if fr.data["test"] != "write-deadlock (Fig. 10)" {
			t.Fatalf("frame %d test = %v", i, fr.data["test"])
		}
		if holds, ok := fr.data["holds"].(bool); !ok || holds {
			// The cyclic outcome is forbidden under every type.
			t.Fatalf("frame %d holds = %v, want false", i, fr.data["holds"])
		}
	}
	if frames[units].data["state"] != "done" {
		t.Fatalf("terminal frame state = %v", frames[units].data["state"])
	}

	// A litmus job has no report.
	if code, doc := getJSON(t, ts, "/v1/reports/"+id); code != http.StatusBadRequest {
		t.Fatalf("litmus report: HTTP %d: %v", code, doc)
	}
}

// TestSubmitValidation checks the request-shape errors of POST /v1/jobs.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"both", `{"plan":{"preset":"quick"},"litmus":{"name":"x"}}`},
		{"unknown field", `{"plan":{"preset":"quick"},"bogus":1}`},
		{"bad preset", `{"plan":{"preset":"huge"}}`},
		{"negative cores", `{"plan":{"preset":"quick","cores":-1}}`},
		{"bad mode", `{"plan":{"preset":"quick"},"mode":"push"}`},
		{"litmus fleet", `{"litmus":{"name":"write-deadlock (Fig. 10)"},"mode":"fleet"}`},
		{"litmus over-specified", `{"litmus":{"name":"a","group":"b"}}`},
		{"unknown litmus test", `{"litmus":{"name":"no-such-test"}}`},
		{"bad lease ttl", `{"plan":` + tinyPlanSpec + `,"mode":"coordinate","lease_ttl":"soon"}`},
		{"negative workers", `{"plan":` + tinyPlanSpec + `,"mode":"coordinate","workers":-1}`},
	}
	for _, tc := range cases {
		if code, doc := submit(t, ts, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d (%v), want 400", tc.name, code, doc["error"])
		}
	}
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/reports/job-999999", "/v1/results/ffffffffffffffff", "/v1/results/by-key/ffff", "/v1/coord/job-999999/lease"} {
		if code, _ := getJSON(t, ts, path); code != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, code)
		}
	}
}

// TestBackpressureAndDrainCancel fills the registry with a fleet job no
// worker ever serves, checks the 429 backpressure, then drains: the
// deadline passes, the straggler is cancelled, the server quiesces.
func TestBackpressureAndDrainCancel(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxJobs: 1, DrainTimeout: 100 * time.Millisecond})

	code, doc := submit(t, ts, `{"plan":`+tinyPlanSpec+`,"mode":"fleet"}`)
	if code != http.StatusAccepted {
		t.Fatalf("fleet submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)
	links := doc["links"].(map[string]any)
	if links["coordinator"] != "/v1/coord/"+id {
		t.Fatalf("fleet job links = %v, want a coordinator", links)
	}

	// The slot is taken: the next submit is told to back off.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"litmus":{"name":"write-deadlock (Fig. 10)"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 response has no Retry-After header")
	}

	// Still ready before the drain.
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v / HTTP %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Drain: the fleet job has no workers, so the deadline expires and
	// the job is cancelled rather than waited on forever.
	start := time.Now()
	srv.Drain()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %s, want roughly the 100ms deadline", elapsed)
	}
	final := waitDone(t, ts, id)
	if final["state"] != "failed" {
		t.Fatalf("cancelled fleet job state = %v, want failed", final["state"])
	}
}

// TestRetentionEviction verifies the TTL'd registry: finished jobs stay
// queryable until RetainFinished passes, then vanish. The clock is
// injected so nothing sleeps.
func TestRetentionEviction(t *testing.T) {
	srv, ts := newTestServer(t, Config{RetainFinished: time.Minute})
	base := time.Now()
	var offset atomic.Int64
	srv.now = func() time.Time { return base.Add(time.Duration(offset.Load())) }

	code, doc := submit(t, ts, `{"litmus":{"name":"write-deadlock (Fig. 10)"}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)
	waitDone(t, ts, id)

	// Inside the TTL the job is still there.
	offset.Store(int64(30 * time.Second))
	if code, _ := getJSON(t, ts, "/v1/jobs/"+id); code != http.StatusOK {
		t.Fatalf("job gone before its TTL: HTTP %d", code)
	}

	// Past the TTL it is evicted everywhere.
	offset.Store(int64(2 * time.Minute))
	if code, _ := getJSON(t, ts, "/v1/jobs/"+id); code != http.StatusNotFound {
		t.Fatalf("job survived its TTL: HTTP %d", code)
	}
	if _, doc := getJSON(t, ts, "/v1/jobs"); len(doc["jobs"].([]any)) != 0 {
		t.Fatalf("job list still shows evicted jobs: %v", doc["jobs"])
	}
}

// TestFleetModeEndToEnd hosts a sweep coordinator over HTTP and drains
// it with a real pull worker from a second engine, exactly how an
// `experiments -worker` process would: the job finishes, the report is
// served, and the coordination section records the fleet.
func TestFleetModeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, doc := submit(t, ts, `{"plan":`+tinyPlanSpec+`,"mode":"fleet","workers":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("fleet submit: HTTP %d: %v", code, doc)
	}
	id := doc["id"].(string)

	// The worker rebuilds the identical plan locally; the fingerprint
	// handshake would refuse anything else.
	opts := tinyPlanOptions()
	plan, err := engine.DefaultPlanSeeds(opts, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	worker := engine.New()
	if err := worker.RunPlanWorker(context.Background(), plan, ts.URL+"/v1/coord/"+id, "w1"); err != nil {
		t.Fatalf("fleet worker: %v", err)
	}

	final := waitDone(t, ts, id)
	if final["state"] != "done" {
		t.Fatalf("fleet job state = %v (error %v)", final["state"], final["error"])
	}
	metrics := final["metrics"].(map[string]any)
	if int(metrics["units_done"].(float64)) != int(final["units"].(float64)) {
		t.Fatalf("fleet metrics = %v, want all %v units done", metrics["units_done"], final["units"])
	}

	resp, err := http.Get(ts.URL + "/v1/reports/" + id + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet report: HTTP %d: %s", resp.StatusCode, body)
	}
	var report struct {
		Coordination *struct {
			Mode    string `json:"mode"`
			Workers []struct {
				Worker string `json:"worker"`
			} `json:"workers"`
		} `json:"coordination"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Coordination == nil || report.Coordination.Mode != "http" ||
		len(report.Coordination.Workers) != 1 || report.Coordination.Workers[0].Worker != "w1" {
		t.Fatalf("fleet report coordination section = %+v, want http mode with worker w1", report.Coordination)
	}
}
