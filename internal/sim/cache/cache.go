// Package cache models the private L1 caches of the simulated chip
// multiprocessor: set-associative arrays of cache lines with MOESI
// coherence states and LRU replacement. The cache decides hits, misses and
// evictions; the global coherence protocol (ownership, sharers, line
// locking) lives in internal/sim/coherence.
package cache

import "fmt"

// State is the MOESI coherence state of a cache line.
type State int

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: a clean read-only copy; other caches may also hold it.
	Shared
	// Exclusive: a clean copy and no other cache holds the line.
	Exclusive
	// Owned: a dirty copy that may be shared with other caches; this cache
	// must supply the data.
	Owned
	// Modified: a dirty exclusive copy.
	Modified
)

// String returns the usual one-letter MOESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// CanRead reports whether a line in this state satisfies a load.
func (s State) CanRead() bool { return s != Invalid }

// CanWrite reports whether a line in this state satisfies a store without a
// coherence transaction.
func (s State) CanWrite() bool { return s == Exclusive || s == Modified }

// Dirty reports whether the line holds data newer than memory.
func (s State) Dirty() bool { return s == Owned || s == Modified }

// Line is one cache line's tag state.
type Line struct {
	// Addr is the line address (byte address >> log2(line size)).
	Addr uint64
	// State is the MOESI state; Invalid lines are unused ways.
	State State
	// lru is the last-touch timestamp used for replacement.
	lru uint64
}

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the number of ways per set.
	Assoc int
	// LineBytes is the cache line size.
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	lines := c.SizeBytes / c.LineBytes
	if c.Assoc <= 0 || lines <= 0 {
		return 0
	}
	sets := lines / c.Assoc
	if sets == 0 {
		sets = 1
	}
	return sets
}

// Validate checks the geometry is usable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.Assoc*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by assoc*line (%d*%d)", c.SizeBytes, c.Assoc, c.LineBytes)
	}
	return nil
}

// Cache is a set-associative cache with LRU replacement. Addresses passed
// to its methods are line addresses (already divided by the line size); the
// owning simulator performs that conversion so that all components agree on
// line granularity.
type Cache struct {
	cfg   Config
	sets  [][]Line
	clock uint64

	hits      uint64
	misses    uint64
	evictions uint64
}

// New builds an empty cache with the given geometry. It panics on an
// invalid geometry, which is a configuration programming error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]Line, cfg.Sets())
	for i := range sets {
		sets[i] = make([]Line, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// set returns the set index for a line address.
func (c *Cache) set(lineAddr uint64) int {
	return int(lineAddr % uint64(len(c.sets)))
}

// Lookup returns the state of the line, or Invalid if it is not cached.
// A successful lookup refreshes the line's LRU position and counts a hit;
// a failed one counts a miss.
func (c *Cache) Lookup(lineAddr uint64) State {
	c.clock++
	set := c.sets[c.set(lineAddr)]
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == lineAddr {
			set[i].lru = c.clock
			c.hits++
			return set[i].State
		}
	}
	c.misses++
	return Invalid
}

// Peek returns the state of the line without touching LRU or statistics.
func (c *Cache) Peek(lineAddr uint64) State {
	set := c.sets[c.set(lineAddr)]
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == lineAddr {
			return set[i].State
		}
	}
	return Invalid
}

// Insert places the line in the cache with the given state, evicting the
// LRU way of its set if necessary. It returns the evicted line address and
// whether an eviction of a valid line occurred, so the coherence layer can
// update the directory.
func (c *Cache) Insert(lineAddr uint64, state State) (evicted uint64, didEvict bool) {
	if state == Invalid {
		c.Invalidate(lineAddr)
		return 0, false
	}
	c.clock++
	set := c.sets[c.set(lineAddr)]
	// Already present: update state in place.
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == lineAddr {
			set[i].State = state
			set[i].lru = c.clock
			return 0, false
		}
	}
	// Free way?
	for i := range set {
		if set[i].State == Invalid {
			set[i] = Line{Addr: lineAddr, State: state, lru: c.clock}
			return 0, false
		}
	}
	// Evict LRU.
	victim := 0
	for i := range set {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evicted = set[victim].Addr
	set[victim] = Line{Addr: lineAddr, State: state, lru: c.clock}
	c.evictions++
	return evicted, true
}

// SetState changes the state of a cached line; it is a no-op when the line
// is not present. Setting Invalid removes the line.
func (c *Cache) SetState(lineAddr uint64, state State) {
	set := c.sets[c.set(lineAddr)]
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == lineAddr {
			if state == Invalid {
				set[i] = Line{}
			} else {
				set[i].State = state
			}
			return
		}
	}
}

// Invalidate removes the line from the cache (e.g. on a remote GetM).
func (c *Cache) Invalidate(lineAddr uint64) {
	c.SetState(lineAddr, Invalid)
}

// Hits, Misses and Evictions return the access statistics.
func (c *Cache) Hits() uint64      { return c.hits }
func (c *Cache) Misses() uint64    { return c.misses }
func (c *Cache) Evictions() uint64 { return c.evictions }

// Occupancy returns the number of valid lines currently cached.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.State != Invalid {
				n++
			}
		}
	}
	return n
}

// Capacity returns the total number of lines the cache can hold.
func (c *Cache) Capacity() int { return len(c.sets) * c.cfg.Assoc }
