package cache

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64} // 16 lines, 8 sets
}

func TestConfigSetsAndValidate(t *testing.T) {
	cfg := smallConfig()
	if cfg.Sets() != 8 {
		t.Errorf("Sets = %d, want 8", cfg.Sets())
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Assoc: 2, LineBytes: 64},
		{SizeBytes: 1024, Assoc: 0, LineBytes: 64},
		{SizeBytes: 1000, Assoc: 2, LineBytes: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
	if (Config{SizeBytes: 64, Assoc: 1, LineBytes: 64}).Sets() != 1 {
		t.Error("degenerate config should have one set")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(Config{})
}

func TestStateStringAndPredicates(t *testing.T) {
	names := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state should render")
	}
	if Invalid.CanRead() || !Shared.CanRead() || !Modified.CanRead() {
		t.Error("CanRead wrong")
	}
	if Shared.CanWrite() || Owned.CanWrite() || !Exclusive.CanWrite() || !Modified.CanWrite() {
		t.Error("CanWrite wrong")
	}
	if Shared.Dirty() || Exclusive.Dirty() || !Owned.Dirty() || !Modified.Dirty() {
		t.Error("Dirty wrong")
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(smallConfig())
	if c.Lookup(100) != Invalid {
		t.Fatal("empty cache should miss")
	}
	c.Insert(100, Shared)
	if c.Lookup(100) != Shared {
		t.Fatal("inserted line should hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestPeekDoesNotTouchStats(t *testing.T) {
	c := New(smallConfig())
	c.Insert(5, Modified)
	h, m := c.Hits(), c.Misses()
	if c.Peek(5) != Modified || c.Peek(6) != Invalid {
		t.Error("Peek returned wrong state")
	}
	if c.Hits() != h || c.Misses() != m {
		t.Error("Peek must not change statistics")
	}
}

func TestInsertUpdatesStateInPlace(t *testing.T) {
	c := New(smallConfig())
	c.Insert(7, Shared)
	if _, evicted := c.Insert(7, Modified); evicted {
		t.Error("re-inserting a present line must not evict")
	}
	if c.Peek(7) != Modified {
		t.Error("state upgrade lost")
	}
	if c.Occupancy() != 1 {
		t.Error("duplicate insert grew occupancy")
	}
}

func TestInsertInvalidRemoves(t *testing.T) {
	c := New(smallConfig())
	c.Insert(7, Shared)
	c.Insert(7, Invalid)
	if c.Peek(7) != Invalid {
		t.Error("Insert with Invalid should remove the line")
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(smallConfig()) // 8 sets, 2 ways
	// Three lines mapping to the same set (stride = number of sets).
	a, b, d := uint64(0), uint64(8), uint64(16)
	c.Insert(a, Shared)
	c.Insert(b, Shared)
	// Touch a so that b becomes LRU.
	c.Lookup(a)
	evicted, did := c.Insert(d, Exclusive)
	if !did || evicted != b {
		t.Errorf("evicted %d (did=%v), want %d", evicted, did, b)
	}
	if c.Peek(a) == Invalid || c.Peek(d) == Invalid {
		t.Error("wrong lines evicted")
	}
	if c.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", c.Evictions())
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Insert(3, Exclusive)
	c.SetState(3, Owned)
	if c.Peek(3) != Owned {
		t.Error("SetState lost")
	}
	c.SetState(99, Modified) // absent: no-op
	if c.Peek(99) != Invalid {
		t.Error("SetState on an absent line must not insert it")
	}
	c.Invalidate(3)
	if c.Peek(3) != Invalid {
		t.Error("Invalidate failed")
	}
	if c.Occupancy() != 0 {
		t.Error("occupancy wrong after invalidate")
	}
}

func TestCapacityAndOccupancy(t *testing.T) {
	c := New(smallConfig())
	if c.Capacity() != 16 {
		t.Errorf("Capacity = %d, want 16", c.Capacity())
	}
	for i := uint64(0); i < 16; i++ {
		c.Insert(i, Shared)
	}
	if c.Occupancy() != 16 {
		t.Errorf("Occupancy = %d, want 16", c.Occupancy())
	}
	// Inserting more lines keeps occupancy at capacity.
	c.Insert(100, Shared)
	if c.Occupancy() != 16 {
		t.Errorf("Occupancy after overflow = %d, want 16", c.Occupancy())
	}
}

func TestPropertyInsertedLineIsFoundUntilEvicted(t *testing.T) {
	err := quick.Check(func(addrs []uint64) bool {
		c := New(Config{SizeBytes: 4096, Assoc: 4, LineBytes: 64})
		for _, a := range addrs {
			a %= 1 << 20
			c.Insert(a, Shared)
			if c.Peek(a) != Shared {
				return false // a just-inserted line must be present
			}
		}
		return c.Occupancy() <= c.Capacity()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOccupancyNeverExceedsCapacity(t *testing.T) {
	c := New(smallConfig())
	err := quick.Check(func(a uint64, s uint8) bool {
		state := State(1 + int(s)%4)
		c.Insert(a%1024, state)
		return c.Occupancy() <= c.Capacity()
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}
