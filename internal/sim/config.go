package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
)

// Config holds the architectural parameters of the simulated chip
// multiprocessor. DefaultConfig reproduces Table 2 of the paper.
type Config struct {
	// Cores is the number of in-order cores (and mesh nodes / L2 banks).
	Cores int
	// WriteBufferDepth is the per-core write buffer capacity in entries.
	WriteBufferDepth int

	// L1SizeBytes, L1Assoc and L1LatencyCycles describe the private L1
	// data caches.
	L1SizeBytes     int
	L1Assoc         int
	L1LatencyCycles uint64
	// L2LatencyCycles is the shared L2 bank hit latency. The L2 is modelled
	// as effectively unbounded (1 MB per core in the paper), so only its
	// latency matters.
	L2LatencyCycles uint64
	// MemLatencyCycles is the main-memory latency.
	MemLatencyCycles uint64
	// LineBytes is the coherence granule.
	LineBytes int

	// LinkLatencyCycles and RouterLatencyCycles describe the 2D mesh.
	LinkLatencyCycles   uint64
	RouterLatencyCycles uint64

	// RMWType selects the RMW implementation (type-1/2/3).
	RMWType core.AtomicityType

	// BloomFilterBits and BloomHashes configure the addr-list filters
	// (128 B with 3 hash functions in the paper). RMWResetThreshold is the
	// number of inserted addresses after which all filters are reset
	// (0 disables resets, as in the paper's single-context runs).
	BloomFilterBits   int
	BloomHashes       int
	RMWResetThreshold int

	// DisableDeadlockAvoidance turns off the bloom-filter protocol for
	// type-2/3 RMWs (the naive implementation of §3.2's first paragraph).
	// Used by tests and the ablation benchmarks to demonstrate the
	// write-deadlock.
	DisableDeadlockAvoidance bool

	// ParallelDrain enables the parallel write-buffer drain of
	// Gharachorloo et al. used by the paper's baseline: during a forced
	// drain the ownership requests of all pending writes are issued
	// concurrently.
	ParallelDrain bool

	// MaxOutstandingDrains bounds how many write-buffer entries may have
	// their ownership requests outstanding at once during the background
	// drain (an MSHR-style limit). Writes still complete in FIFO order.
	MaxOutstandingDrains int

	// LockRetryCycles is the penalty charged when a coherence request was
	// denied because its line was locked and must retry after the unlock.
	LockRetryCycles uint64

	// MaxCycles bounds a simulation run; exceeding it reports an error.
	MaxCycles uint64
}

// DefaultConfig returns the paper's Table 2 configuration with type-1 RMWs.
func DefaultConfig() Config {
	return Config{
		Cores:                32,
		WriteBufferDepth:     32,
		L1SizeBytes:          32 * 1024,
		L1Assoc:              4,
		L1LatencyCycles:      2,
		L2LatencyCycles:      6,
		MemLatencyCycles:     300,
		LineBytes:            64,
		LinkLatencyCycles:    1,
		RouterLatencyCycles:  4,
		RMWType:              core.Type1,
		BloomFilterBits:      1024, // 128 B
		BloomHashes:          3,
		RMWResetThreshold:    0,
		ParallelDrain:        true,
		MaxOutstandingDrains: 4,
		LockRetryCycles:      2,
		MaxCycles:            200_000_000,
	}
}

// WithRMWType returns a copy of the configuration using the given RMW
// implementation.
func (c Config) WithRMWType(t core.AtomicityType) Config {
	c.RMWType = t
	return c
}

// WithCores returns a copy of the configuration with a different core
// count.
func (c Config) WithCores(n int) Config {
	c.Cores = n
	return c
}

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("sim: config: non-positive core count %d", c.Cores)
	case c.WriteBufferDepth <= 0:
		return fmt.Errorf("sim: config: non-positive write buffer depth %d", c.WriteBufferDepth)
	case c.L1SizeBytes <= 0 || c.L1Assoc <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("sim: config: bad L1 geometry")
	case c.L1SizeBytes%(c.L1Assoc*c.LineBytes) != 0:
		return fmt.Errorf("sim: config: L1 size %d not divisible by assoc*line", c.L1SizeBytes)
	case c.RMWType != core.Type1 && c.RMWType != core.Type2 && c.RMWType != core.Type3:
		return fmt.Errorf("sim: config: unknown RMW type %v", c.RMWType)
	case c.BloomFilterBits <= 0 || c.BloomHashes <= 0:
		return fmt.Errorf("sim: config: bad bloom filter configuration")
	case c.MaxOutstandingDrains <= 0:
		return fmt.Errorf("sim: config: non-positive outstanding-drain limit %d", c.MaxOutstandingDrains)
	case c.MaxCycles == 0:
		return fmt.Errorf("sim: config: zero cycle limit")
	}
	return nil
}

// Digest returns a stable content digest of the configuration: the
// hex-encoded SHA-256 of an explicit name=value serialization of every
// field. Two configurations have equal digests exactly when every
// architectural parameter (including the RMW type) is equal, so the digest
// can key caches of simulation results. Each field is written by name in a
// fixed order, so the digest depends only on the values, never on the
// struct layout; a new Config field must be added to this list (the
// per-field sensitivity test in config_test.go fails loudly until it is).
func (c Config) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "sim.Config/v1\n")
	fmt.Fprintf(h, "Cores=%d\n", c.Cores)
	fmt.Fprintf(h, "WriteBufferDepth=%d\n", c.WriteBufferDepth)
	fmt.Fprintf(h, "L1SizeBytes=%d\n", c.L1SizeBytes)
	fmt.Fprintf(h, "L1Assoc=%d\n", c.L1Assoc)
	fmt.Fprintf(h, "L1LatencyCycles=%d\n", c.L1LatencyCycles)
	fmt.Fprintf(h, "L2LatencyCycles=%d\n", c.L2LatencyCycles)
	fmt.Fprintf(h, "MemLatencyCycles=%d\n", c.MemLatencyCycles)
	fmt.Fprintf(h, "LineBytes=%d\n", c.LineBytes)
	fmt.Fprintf(h, "LinkLatencyCycles=%d\n", c.LinkLatencyCycles)
	fmt.Fprintf(h, "RouterLatencyCycles=%d\n", c.RouterLatencyCycles)
	fmt.Fprintf(h, "RMWType=%d\n", int(c.RMWType))
	fmt.Fprintf(h, "BloomFilterBits=%d\n", c.BloomFilterBits)
	fmt.Fprintf(h, "BloomHashes=%d\n", c.BloomHashes)
	fmt.Fprintf(h, "RMWResetThreshold=%d\n", c.RMWResetThreshold)
	fmt.Fprintf(h, "DisableDeadlockAvoidance=%t\n", c.DisableDeadlockAvoidance)
	fmt.Fprintf(h, "ParallelDrain=%t\n", c.ParallelDrain)
	fmt.Fprintf(h, "MaxOutstandingDrains=%d\n", c.MaxOutstandingDrains)
	fmt.Fprintf(h, "LockRetryCycles=%d\n", c.LockRetryCycles)
	fmt.Fprintf(h, "MaxCycles=%d\n", c.MaxCycles)
	return hex.EncodeToString(h.Sum(nil))
}

// LineOf converts a byte address to a cache-line address.
func (c Config) LineOf(addr uint64) uint64 {
	return addr / uint64(c.LineBytes)
}

// Table2 renders the configuration in the shape of the paper's Table 2,
// suitable for the experiments tool.
func (c Config) Table2() [][2]string {
	return [][2]string{
		{"Processor", fmt.Sprintf("%d core CMP, inorder", c.Cores)},
		{"Write Buffer", fmt.Sprintf("%d-entry deep", c.WriteBufferDepth)},
		{"L1 Cache", fmt.Sprintf("private, %d KB %d-way %d-cycle latency", c.L1SizeBytes/1024, c.L1Assoc, c.L1LatencyCycles)},
		{"L2 Cache", fmt.Sprintf("shared, distributed banks, %d-cycle latency", c.L2LatencyCycles)},
		{"Memory", fmt.Sprintf("%d cycle latency", c.MemLatencyCycles)},
		{"Coherence", "MOESI distributed directory"},
		{"Interconnect", fmt.Sprintf("2D Mesh, %d-cycle link, %d-cycle router latency", c.LinkLatencyCycles, c.RouterLatencyCycles)},
		{"RMW", c.RMWType.String()},
		{"Bloom filter", fmt.Sprintf("%d B, %d hash functions", c.BloomFilterBits/8, c.BloomHashes)},
	}
}
