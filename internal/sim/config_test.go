package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestConfigDigestStable pins the digest of the paper's default
// configurations. If this test fails without an intentional change to
// Config's fields or their serialization, cache keys would silently
// change between builds; if the change is intentional, bless the new
// digests here AND bump simcache.SchemaVersion so stale entries die.
func TestConfigDigestStable(t *testing.T) {
	got := DefaultConfig().Digest()
	const wantDefault = "96af290f99838f0ff80d8635f7282f4c32979f432cdc57beca191eebee436807"
	if got != wantDefault {
		t.Fatalf("DefaultConfig digest = %s, pinned %s (an intentional Config change must bless this and bump the cache schema version)", got, wantDefault)
	}
	const wantT3x8 = "e18b679ca9d0db625aeb90a005d2e8bebe627d210e6507ddc3a6f38c0991e352"
	if got := DefaultConfig().WithRMWType(core.Type3).WithCores(8).Digest(); got != wantT3x8 {
		t.Fatalf("type-3/8-core digest = %s, pinned %s", got, wantT3x8)
	}
}

// TestConfigDigestCoversEveryField perturbs each Config field in turn via
// reflection and asserts the digest changes. A field added to Config but
// not to Digest leaves the digest unchanged under perturbation, so this
// test breaks loudly on accidental omissions (and on silent field
// reordering combined with positional serialization, since Digest writes
// names).
func TestConfigDigestCoversEveryField(t *testing.T) {
	base := DefaultConfig()
	baseDigest := base.Digest()
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		c := base
		v := reflect.ValueOf(&c).Elem().Field(i)
		switch v.Kind() {
		case reflect.Int:
			v.SetInt(v.Int() + 1)
		case reflect.Uint64:
			v.SetUint(v.Uint() + 1)
		case reflect.Bool:
			v.SetBool(!v.Bool())
		default:
			t.Fatalf("Config field %s has unhandled kind %s: extend Digest and this test", typ.Field(i).Name, v.Kind())
		}
		if c.Digest() == baseDigest {
			t.Errorf("perturbing Config.%s did not change the digest: add it to Config.Digest", typ.Field(i).Name)
		}
	}
}

// TestConfigDigestIgnoresNothing double-checks the two digests most likely
// to collide in practice: the same architecture under different RMW types.
func TestConfigDigestIgnoresNothing(t *testing.T) {
	seen := map[string]core.AtomicityType{}
	for _, typ := range core.AllTypes() {
		d := DefaultConfig().WithRMWType(typ).Digest()
		if prev, ok := seen[d]; ok {
			t.Fatalf("digest collision between %s and %s", prev, typ)
		}
		seen[d] = typ
	}
}
