// Package directory implements the distributed MOESI directory protocol of
// the simulated chip multiprocessor, including the cache-line locking used
// by RMW implementations (§3) and the directory locking optimization of the
// type-3 RMW (§3.3).
//
// The directory is the timing model's source of truth for where each cache
// line lives (owning core, sharer set, presence in the shared L2) and for
// which lines are currently locked by an in-flight RMW. Requests are
// expressed as continuations: Access computes when a request completes and
// invokes the caller's callback with that time; requests that target a
// locked line are parked on the lock and resumed when the lock is released,
// which is exactly the "deny coherence requests until the write of the RMW
// completes" behaviour of the paper.
package directory

import (
	"fmt"

	"repro/internal/sim/cache"
	"repro/internal/sim/mesh"
)

// ReqKind is the kind of coherence request.
type ReqKind int

const (
	// GetS requests read permission (a shared copy).
	GetS ReqKind = iota
	// GetM requests write permission (an exclusive copy, invalidating other
	// sharers).
	GetM
)

// String renders the request kind.
func (k ReqKind) String() string {
	switch k {
	case GetS:
		return "GetS"
	case GetM:
		return "GetM"
	default:
		return fmt.Sprintf("ReqKind(%d)", int(k))
	}
}

// Latencies holds the fixed access latencies of the memory hierarchy
// (Table 2 of the paper).
type Latencies struct {
	// L1 is the hit latency of the private L1 cache.
	L1 uint64
	// L2 is the hit latency of a shared L2 bank.
	L2 uint64
	// Mem is the main-memory access latency.
	Mem uint64
	// LockRetry is the extra delay charged when a request was denied
	// because its line was locked and had to be retried after the unlock.
	LockRetry uint64
}

// Stats counts directory activity.
type Stats struct {
	GetS          uint64
	GetM          uint64
	L1Hits        uint64
	L2Hits        uint64
	MemAccesses   uint64
	OwnerForwards uint64
	Invalidations uint64
	LockDenials   uint64
	Locks         uint64
	Unlocks       uint64
}

// lineMeta is the directory's view of one cache line.
type lineMeta struct {
	owner   int // core holding the line in M/E/O, or -1
	sharers map[int]bool
	inL2    bool
}

// waiter is a parked request resumed when a line is unlocked.
type waiter func(unlockedAt uint64)

// lineLock marks a line locked by an in-flight RMW.
type lineLock struct {
	owner   int
	waiters []waiter
}

// Directory is the distributed directory plus the per-core L1 caches it
// keeps coherent.
type Directory struct {
	mesh   *mesh.Topology
	caches []*cache.Cache
	lat    Latencies

	lines map[uint64]*lineMeta
	locks map[uint64]*lineLock

	stats Stats
}

// New builds a directory for the given mesh and per-core L1 caches. The
// number of caches must equal the number of mesh nodes.
func New(m *mesh.Topology, caches []*cache.Cache, lat Latencies) *Directory {
	if len(caches) != m.Nodes() {
		panic(fmt.Sprintf("directory: %d caches for %d nodes", len(caches), m.Nodes()))
	}
	return &Directory{
		mesh:   m,
		caches: caches,
		lat:    lat,
		lines:  map[uint64]*lineMeta{},
		locks:  map[uint64]*lineLock{},
	}
}

// Stats returns a copy of the activity counters.
func (d *Directory) Stats() Stats { return d.stats }

// Cache returns core c's L1 cache.
func (d *Directory) Cache(c int) *cache.Cache { return d.caches[c] }

func (d *Directory) meta(line uint64) *lineMeta {
	m, ok := d.lines[line]
	if !ok {
		m = &lineMeta{owner: -1, sharers: map[int]bool{}}
		d.lines[line] = m
	}
	return m
}

// IsLocked reports whether the line is currently locked, and by which core.
func (d *Directory) IsLocked(line uint64) (bool, int) {
	if l, ok := d.locks[line]; ok {
		return true, l.owner
	}
	return false, -1
}

// LockedLines returns the number of currently locked lines.
func (d *Directory) LockedLines() int { return len(d.locks) }

// Access issues a coherence request from core for the given line at time
// start and invokes complete with the completion time. Requests to a line
// locked by another core are parked until the lock is released (counted as
// a lock denial) and then charged the retry penalty plus their normal
// latency. Requests by the lock owner itself proceed normally.
func (d *Directory) Access(core int, line uint64, kind ReqKind, start uint64, complete func(at uint64)) {
	if l, ok := d.locks[line]; ok && l.owner != core {
		d.stats.LockDenials++
		l.waiters = append(l.waiters, func(unlockedAt uint64) {
			at := unlockedAt + d.lat.LockRetry
			if at < start {
				at = start
			}
			d.Access(core, line, kind, at, complete)
		})
		return
	}
	var latency uint64
	switch kind {
	case GetS:
		latency = d.getS(core, line)
	case GetM:
		latency = d.getM(core, line)
	default:
		panic(fmt.Sprintf("directory: unknown request kind %d", int(kind)))
	}
	complete(start + latency)
}

// AccessAndLock performs Access and atomically locks the line on behalf of
// the requesting core at the completion time, so that the RMW's read half
// can retire with the line locked. If another core locks the line first,
// the request waits for that lock like any other denied request.
func (d *Directory) AccessAndLock(core int, line uint64, kind ReqKind, start uint64, complete func(at uint64)) {
	d.Access(core, line, kind, start, func(at uint64) {
		// Between being parked and resumed another core can have locked the
		// line; Access already serializes on the lock, so here the line is
		// either unlocked or locked by us (re-entrant RMW on the same line
		// cannot happen on an in-order core).
		d.Lock(line, core)
		complete(at)
	})
}

// Lock marks the line locked by the core. Locking an already-locked line by
// the same core is a no-op; locking a line locked by another core is a
// protocol bug and panics.
func (d *Directory) Lock(line uint64, core int) {
	if l, ok := d.locks[line]; ok {
		if l.owner != core {
			panic(fmt.Sprintf("directory: core %d locking line %#x already locked by core %d", core, line, l.owner))
		}
		return
	}
	d.locks[line] = &lineLock{owner: core}
	d.stats.Locks++
}

// WaitForUnlock registers fn to run when the line's lock (held by a core
// other than the caller) is released, and reports whether such a lock was
// present. When it returns false, fn was not registered and the caller may
// proceed. This is the completion-time denial used by the write-buffer
// drain: a write whose ownership response arrives while the line is locked
// by another processor's RMW is held back and retried after the unlock.
func (d *Directory) WaitForUnlock(line uint64, core int, fn func(unlockedAt uint64)) bool {
	l, ok := d.locks[line]
	if !ok || l.owner == core {
		return false
	}
	d.stats.LockDenials++
	l.waiters = append(l.waiters, fn)
	return true
}

// Unlock releases the line's lock at the given time and resumes any parked
// requests. Unlocking a line that is not locked by the core is a protocol
// bug and panics.
func (d *Directory) Unlock(line uint64, core int, at uint64) {
	l, ok := d.locks[line]
	if !ok {
		panic(fmt.Sprintf("directory: core %d unlocking line %#x which is not locked", core, line))
	}
	if l.owner != core {
		panic(fmt.Sprintf("directory: core %d unlocking line %#x locked by core %d", core, line, l.owner))
	}
	delete(d.locks, line)
	d.stats.Unlocks++
	for _, w := range l.waiters {
		w(at)
	}
}

// getS computes the latency of a read-permission request and updates the
// directory and cache state.
func (d *Directory) getS(core int, line uint64) uint64 {
	d.stats.GetS++
	m := d.meta(line)
	c := d.caches[core]

	// Local hit in any valid state.
	if c.Lookup(line).CanRead() {
		d.stats.L1Hits++
		return d.lat.L1
	}

	home := d.mesh.Home(line)
	reqToHome := d.mesh.Latency(core, home)
	var latency uint64
	switch {
	case m.owner >= 0 && m.owner != core:
		// Owner forwards the data: requester -> home -> owner -> requester.
		d.stats.OwnerForwards++
		latency = reqToHome + d.mesh.Latency(home, m.owner) + d.lat.L1 + d.mesh.Latency(m.owner, core)
		// The owner keeps a dirty copy in Owned state.
		d.caches[m.owner].SetState(line, cache.Owned)
	case m.inL2 || len(m.sharers) > 0:
		d.stats.L2Hits++
		latency = reqToHome + d.lat.L2 + d.mesh.Latency(home, core)
	default:
		d.stats.MemAccesses++
		latency = reqToHome + d.lat.Mem + d.mesh.Latency(home, core)
		m.inL2 = true
	}
	m.sharers[core] = true
	d.insertLocal(core, line, cache.Shared)
	return d.lat.L1 + latency
}

// getM computes the latency of a write-permission request and updates the
// directory and cache state, invalidating other copies.
func (d *Directory) getM(core int, line uint64) uint64 {
	d.stats.GetM++
	m := d.meta(line)
	c := d.caches[core]

	// Local hit with write permission.
	if c.Lookup(line).CanWrite() && m.owner == core {
		d.stats.L1Hits++
		return d.lat.L1
	}

	home := d.mesh.Home(line)
	reqToHome := d.mesh.Latency(core, home)
	var latency uint64
	switch {
	case m.owner >= 0 && m.owner != core:
		// Fetch from the remote owner and invalidate it.
		d.stats.OwnerForwards++
		d.stats.Invalidations++
		latency = reqToHome + d.mesh.Latency(home, m.owner) + d.lat.L1 + d.mesh.Latency(m.owner, core)
		d.caches[m.owner].Invalidate(line)
		delete(m.sharers, m.owner)
	case m.inL2 || len(m.sharers) > 0:
		d.stats.L2Hits++
		latency = reqToHome + d.lat.L2 + d.mesh.Latency(home, core)
	default:
		d.stats.MemAccesses++
		latency = reqToHome + d.lat.Mem + d.mesh.Latency(home, core)
		m.inL2 = true
	}

	// Invalidate all other sharers; the invalidations and acknowledgements
	// overlap, so only the farthest sharer adds latency.
	var targets []int
	for s := range m.sharers {
		if s != core {
			targets = append(targets, s)
			d.caches[s].Invalidate(line)
			d.stats.Invalidations++
		}
	}
	if len(targets) > 0 {
		latency += d.mesh.MultiCastLatency(home, targets)
	}

	m.owner = core
	m.sharers = map[int]bool{core: true}
	d.insertLocal(core, line, cache.Modified)
	return d.lat.L1 + latency
}

// insertLocal places the line into the requester's L1 and propagates any
// capacity eviction back into the directory state.
func (d *Directory) insertLocal(core int, line uint64, st cache.State) {
	evicted, did := d.caches[core].Insert(line, st)
	if !did {
		return
	}
	em := d.meta(evicted)
	delete(em.sharers, core)
	if em.owner == core {
		em.owner = -1
		em.inL2 = true // dirty lines are written back to the L2
	}
	if len(em.sharers) > 0 || em.owner >= 0 {
		return
	}
	// The line may still be in the L2; keep inL2 as is.
}

// Owner returns the core owning the line (holding it in M/E/O), or -1.
func (d *Directory) Owner(line uint64) int {
	if m, ok := d.lines[line]; ok {
		return m.owner
	}
	return -1
}

// Sharers returns the cores holding a copy of the line, in no particular
// order.
func (d *Directory) Sharers(line uint64) []int {
	m, ok := d.lines[line]
	if !ok {
		return nil
	}
	var out []int
	for s := range m.sharers {
		out = append(out, s)
	}
	return out
}

// HasLocalCopy reports whether the core holds a readable copy of the line,
// without touching LRU state. Used by the type-3 RMW implementation to
// decide between local locking and directory locking.
func (d *Directory) HasLocalCopy(core int, line uint64) bool {
	return d.caches[core].Peek(line).CanRead()
}
