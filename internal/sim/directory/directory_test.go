package directory

import (
	"testing"

	"repro/internal/sim/cache"
	"repro/internal/sim/mesh"
)

func paperLatencies() Latencies {
	return Latencies{L1: 2, L2: 6, Mem: 300, LockRetry: 2}
}

func newTestDirectory(cores int) *Directory {
	m := mesh.New(cores, 1, 4)
	caches := make([]*cache.Cache, cores)
	for i := range caches {
		caches[i] = cache.New(cache.Config{SizeBytes: 32 * 1024, Assoc: 4, LineBytes: 64})
	}
	return New(m, caches, paperLatencies())
}

// access runs a request synchronously and returns its completion time.
func access(t *testing.T, d *Directory, core int, line uint64, kind ReqKind, start uint64) uint64 {
	t.Helper()
	var done uint64
	called := false
	d.Access(core, line, kind, start, func(at uint64) {
		done = at
		called = true
	})
	if !called {
		t.Fatalf("request %v core=%d line=%#x did not complete synchronously", kind, core, line)
	}
	return done
}

func TestNewPanicsOnMismatchedCaches(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched cache count should panic")
		}
	}()
	New(mesh.New(4, 1, 4), make([]*cache.Cache, 2), paperLatencies())
}

func TestColdMissGoesToMemory(t *testing.T) {
	d := newTestDirectory(4)
	done := access(t, d, 0, 0x40, GetS, 0)
	if done < paperLatencies().Mem {
		t.Errorf("cold miss completed in %d cycles, must include the %d-cycle memory latency", done, paperLatencies().Mem)
	}
	if d.Stats().MemAccesses != 1 {
		t.Errorf("MemAccesses = %d, want 1", d.Stats().MemAccesses)
	}
	// The line is now cached locally: a second read is an L1 hit.
	done2 := access(t, d, 0, 0x40, GetS, done)
	if done2-done != paperLatencies().L1 {
		t.Errorf("second read latency = %d, want L1 hit latency %d", done2-done, paperLatencies().L1)
	}
}

func TestL2HitCheaperThanMemoryAndDearerThanL1(t *testing.T) {
	d := newTestDirectory(4)
	// Core 0 warms the line (memory), then drops sharers... keep core 0 as
	// sharer; core 1 then reads: should be an L2/ sharer supply, no memory.
	access(t, d, 0, 0x80, GetS, 0)
	start := uint64(1000)
	done := access(t, d, 1, 0x80, GetS, start)
	lat := done - start
	if lat >= paperLatencies().Mem {
		t.Errorf("sharer read latency %d should not include memory", lat)
	}
	if lat <= paperLatencies().L1 {
		t.Errorf("remote read latency %d should exceed an L1 hit", lat)
	}
	if d.Stats().L2Hits == 0 {
		t.Error("expected an L2 hit")
	}
}

func TestGetMInvalidatesSharers(t *testing.T) {
	d := newTestDirectory(4)
	access(t, d, 0, 0x100, GetS, 0)
	access(t, d, 1, 0x100, GetS, 0)
	access(t, d, 2, 0x100, GetS, 0)
	if len(d.Sharers(0x100)) != 3 {
		t.Fatalf("sharers = %v, want 3 cores", d.Sharers(0x100))
	}
	access(t, d, 3, 0x100, GetM, 2000)
	if d.Owner(0x100) != 3 {
		t.Errorf("owner = %d, want 3", d.Owner(0x100))
	}
	if len(d.Sharers(0x100)) != 1 {
		t.Errorf("sharers after GetM = %v, want only the new owner", d.Sharers(0x100))
	}
	for c := 0; c < 3; c++ {
		if d.Cache(c).Peek(0x100) != cache.Invalid {
			t.Errorf("core %d still holds the line after invalidation", c)
		}
	}
	if d.Stats().Invalidations == 0 {
		t.Error("invalidations not counted")
	}
}

func TestGetMFromRemoteOwnerForwards(t *testing.T) {
	d := newTestDirectory(4)
	access(t, d, 0, 0x140, GetM, 0)
	if d.Owner(0x140) != 0 {
		t.Fatal("owner not set")
	}
	start := uint64(5000)
	done := access(t, d, 1, 0x140, GetM, start)
	if d.Owner(0x140) != 1 {
		t.Errorf("ownership did not transfer")
	}
	if d.Cache(0).Peek(0x140) != cache.Invalid {
		t.Error("previous owner not invalidated")
	}
	if d.Stats().OwnerForwards == 0 {
		t.Error("owner forward not counted")
	}
	// Dirty transfer must not involve memory.
	if done-start >= paperLatencies().Mem {
		t.Errorf("owner-to-owner transfer latency %d should not include memory", done-start)
	}
}

func TestOwnedWriteHitIsL1Latency(t *testing.T) {
	d := newTestDirectory(4)
	access(t, d, 2, 0x180, GetM, 0)
	start := uint64(1000)
	done := access(t, d, 2, 0x180, GetM, start)
	if done-start != paperLatencies().L1 {
		t.Errorf("write hit latency = %d, want %d", done-start, paperLatencies().L1)
	}
}

func TestGetSFromRemoteOwnerLeavesOwnerInOwned(t *testing.T) {
	d := newTestDirectory(4)
	access(t, d, 0, 0x1c0, GetM, 0)
	access(t, d, 1, 0x1c0, GetS, 1000)
	if d.Cache(0).Peek(0x1c0) != cache.Owned {
		t.Errorf("previous owner state = %v, want Owned", d.Cache(0).Peek(0x1c0))
	}
	if d.Cache(1).Peek(0x1c0) != cache.Shared {
		t.Errorf("reader state = %v, want Shared", d.Cache(1).Peek(0x1c0))
	}
	if d.Stats().OwnerForwards == 0 {
		t.Error("owner forward not counted")
	}
}

func TestLockDeniesOtherCoresUntilUnlock(t *testing.T) {
	d := newTestDirectory(4)
	// Core 0 acquires and locks the line.
	var lockDone uint64
	d.AccessAndLock(0, 0x200, GetM, 0, func(at uint64) { lockDone = at })
	if locked, owner := d.IsLocked(0x200); !locked || owner != 0 {
		t.Fatalf("line not locked by core 0 (locked=%v owner=%d)", locked, owner)
	}
	// Core 1's request is denied and parks.
	var core1Done uint64
	completed := false
	d.Access(1, 0x200, GetM, lockDone+10, func(at uint64) {
		core1Done = at
		completed = true
	})
	if completed {
		t.Fatal("request to a locked line must not complete before unlock")
	}
	if d.Stats().LockDenials != 1 {
		t.Errorf("LockDenials = %d, want 1", d.Stats().LockDenials)
	}
	// Unlock at some later time: the parked request resumes and completes
	// after the unlock.
	unlockAt := lockDone + 500
	d.Unlock(0x200, 0, unlockAt)
	if !completed {
		t.Fatal("parked request did not resume on unlock")
	}
	if core1Done <= unlockAt {
		t.Errorf("parked request completed at %d, must be after the unlock at %d", core1Done, unlockAt)
	}
	if locked, _ := d.IsLocked(0x200); locked {
		t.Error("line still locked after unlock")
	}
	if d.LockedLines() != 0 {
		t.Error("LockedLines should be zero")
	}
}

func TestLockOwnerCanStillAccess(t *testing.T) {
	d := newTestDirectory(2)
	d.AccessAndLock(0, 0x240, GetM, 0, func(uint64) {})
	// The lock owner's own requests proceed (e.g. the RMW's write half).
	done := access(t, d, 0, 0x240, GetM, 100)
	if done != 100+paperLatencies().L1 {
		t.Errorf("owner access latency = %d, want L1 hit", done-100)
	}
}

func TestTwoRMWsOnSameLineSerialize(t *testing.T) {
	d := newTestDirectory(2)
	var firstDone, secondDone uint64
	d.AccessAndLock(0, 0x280, GetM, 0, func(at uint64) { firstDone = at })
	second := false
	d.AccessAndLock(1, 0x280, GetM, 0, func(at uint64) {
		secondDone = at
		second = true
	})
	if second {
		t.Fatal("second RMW must wait for the first lock")
	}
	d.Unlock(0x280, 0, firstDone+50)
	if !second {
		t.Fatal("second RMW did not resume")
	}
	if secondDone <= firstDone+50 {
		t.Errorf("second RMW completed at %d, want after the unlock at %d", secondDone, firstDone+50)
	}
	// It must also have locked the line for itself.
	if locked, owner := d.IsLocked(0x280); !locked || owner != 1 {
		t.Errorf("line should now be locked by core 1 (locked=%v owner=%d)", locked, owner)
	}
}

func TestLockReentrantAndMisuse(t *testing.T) {
	d := newTestDirectory(2)
	d.Lock(0x2c0, 0)
	d.Lock(0x2c0, 0) // same owner: no-op
	func() {
		defer func() {
			if recover() == nil {
				t.Error("locking a line locked by another core should panic")
			}
		}()
		d.Lock(0x2c0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unlocking someone else's lock should panic")
			}
		}()
		d.Unlock(0x2c0, 1, 0)
	}()
	d.Unlock(0x2c0, 0, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unlocking an unlocked line should panic")
			}
		}()
		d.Unlock(0x2c0, 0, 0)
	}()
}

func TestHasLocalCopy(t *testing.T) {
	d := newTestDirectory(2)
	if d.HasLocalCopy(0, 0x300) {
		t.Error("cold line reported as local")
	}
	access(t, d, 0, 0x300, GetS, 0)
	if !d.HasLocalCopy(0, 0x300) {
		t.Error("cached line not reported as local")
	}
	if d.HasLocalCopy(1, 0x300) {
		t.Error("other core's copy misreported")
	}
}

func TestEvictionUpdatesDirectory(t *testing.T) {
	// A tiny cache forces evictions quickly.
	m := mesh.New(2, 1, 4)
	caches := []*cache.Cache{
		cache.New(cache.Config{SizeBytes: 128, Assoc: 1, LineBytes: 64}), // 2 lines
		cache.New(cache.Config{SizeBytes: 128, Assoc: 1, LineBytes: 64}),
	}
	d := New(m, caches, paperLatencies())
	// Three lines mapping to the same set (stride = sets = 2).
	access(t, d, 0, 0, GetM, 0)
	access(t, d, 0, 2, GetM, 0)
	if d.Owner(0) != -1 {
		t.Error("evicted line should have no owner in the directory")
	}
	// Re-reading the evicted (written-back) line must not go to memory
	// again.
	before := d.Stats().MemAccesses
	access(t, d, 0, 0, GetS, 1000)
	if d.Stats().MemAccesses != before {
		t.Error("written-back line should be supplied by the L2, not memory")
	}
}

func TestReqKindString(t *testing.T) {
	if GetS.String() != "GetS" || GetM.String() != "GetM" {
		t.Error("request kind names wrong")
	}
	if ReqKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}
