// Package sim is the cycle-approximate chip-multiprocessor simulator used
// to evaluate the paper's RMW implementations (§3, §4). It stands in for
// the GEM5-based platform of the paper: in-order cores with per-core write
// buffers, private L1 caches and a shared distributed L2 kept coherent by a
// MOESI directory over a 2D mesh (Table 2), executing memory-operation
// traces produced by internal/workload.
//
// The simulator implements the three RMW flavours:
//
//   - type-1 (baseline): drain the write buffer, then obtain exclusive
//     ownership of the RMW's line, lock it, perform the read and write, and
//     unlock;
//   - type-2 (§3.2): retire the RMW as soon as the read half owns and locks
//     the line; the write half drains from the write buffer later, with the
//     bloom-filter addr-list protocol avoiding write-deadlocks;
//   - type-3 (§3.3): like type-2 but the read half only needs read
//     permission (directory locking), removing the invalidation delay.
//
// Per-RMW costs are split into the write-buffer component and the Ra/Wa
// component exactly as in Fig. 11(a), and the per-benchmark execution-time
// overhead of Fig. 11(b) is derived from the same runs.
package sim

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback.
type event struct {
	at  uint64
	seq uint64
	fn  func()
}

// eventHeap orders events by time, breaking ties by scheduling order so the
// simulation is deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulation engine driven by a
// cycle counter.
type Engine struct {
	now    uint64
	seq    uint64
	events eventHeap
	// executed counts processed events, a cheap progress metric.
	executed uint64
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of scheduled-but-not-yet-run events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at the given cycle. Scheduling in the past (before the
// current cycle) is a modelling bug and panics.
func (e *Engine) Schedule(at uint64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before current cycle %d", at, e.now))
	}
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn delay cycles from now.
func (e *Engine) After(delay uint64, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Run processes events until the queue is empty or the cycle limit is
// exceeded. It returns an error if the limit was hit, which usually means
// the simulated system livelocked.
func (e *Engine) Run(limit uint64) error {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.at > limit {
			// Put it back so callers can inspect the state.
			heap.Push(&e.events, ev)
			return fmt.Errorf("sim: cycle limit %d exceeded at cycle %d", limit, ev.at)
		}
		e.now = ev.at
		e.executed++
		ev.fn()
	}
	return nil
}
