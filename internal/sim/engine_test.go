package sim

import (
	"testing"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 3) })
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v", order)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %d, want 20", e.Now())
	}
	if e.Executed() != 3 {
		t.Errorf("Executed = %d, want 3", e.Executed())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineTiesBreakByScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-breaking not FIFO: %v", order)
		}
	}
}

func TestEngineEventsCanScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(3, tick)
		}
	}
	e.Schedule(0, tick)
	if err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 27 {
		t.Errorf("Now = %d, want 27", e.Now())
	}
}

func TestEngineCycleLimit(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.After(10, tick) }
	e.Schedule(0, tick)
	if err := e.Run(55); err == nil {
		t.Fatal("exceeding the cycle limit must return an error")
	}
	if e.Pending() == 0 {
		t.Error("the event that exceeded the limit should remain pending")
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling before Now should panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRunEmptyQueue(t *testing.T) {
	e := NewEngine()
	if err := e.Run(10); err != nil {
		t.Fatal("running an empty engine should succeed")
	}
}

func TestOpConstructorsAndKinds(t *testing.T) {
	if Compute(5).Kind != OpCompute || Compute(5).Think != 5 {
		t.Error("Compute constructor wrong")
	}
	if Read(0x40).Kind != OpRead || Read(0x40).Addr != 0x40 {
		t.Error("Read constructor wrong")
	}
	if Write(0x80).Kind != OpWrite {
		t.Error("Write constructor wrong")
	}
	if RMW(0xc0).Kind != OpRMW {
		t.Error("RMW constructor wrong")
	}
	if Fence().Kind != OpFence {
		t.Error("Fence constructor wrong")
	}
	if !OpRead.IsMemory() || !OpWrite.IsMemory() || !OpRMW.IsMemory() {
		t.Error("memory kinds misclassified")
	}
	if OpCompute.IsMemory() || OpFence.IsMemory() {
		t.Error("non-memory kinds misclassified")
	}
	names := map[OpKind]string{OpCompute: "compute", OpRead: "read", OpWrite: "write", OpRMW: "rmw", OpFence: "fence"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if OpKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := NewTrace("t", 2)
	tr.Append(0, Read(0), Write(64), RMW(128), Compute(10))
	tr.Append(1, RMW(128), Fence())
	if tr.Cores() != 2 || tr.TotalOps() != 6 {
		t.Errorf("Cores=%d TotalOps=%d", tr.Cores(), tr.TotalOps())
	}
	if tr.MemOps() != 4 {
		t.Errorf("MemOps = %d, want 4", tr.MemOps())
	}
	if tr.CountKind(OpRMW) != 2 || tr.CountKind(OpFence) != 1 {
		t.Error("CountKind wrong")
	}
	if tr.UniqueRMWLines(64) != 1 {
		t.Errorf("UniqueRMWLines = %d, want 1", tr.UniqueRMWLines(64))
	}
	cfg := DefaultConfig().WithCores(2)
	if err := tr.Validate(cfg); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	if err := NewTrace("empty", 0).Validate(cfg); err == nil {
		t.Error("trace with no cores must not validate")
	}
	big := NewTrace("big", 4)
	if err := big.Validate(cfg); err == nil {
		t.Error("trace with more cores than the config must not validate")
	}
}

func TestConfigValidateAndHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Cores != 32 || cfg.WriteBufferDepth != 32 || cfg.MemLatencyCycles != 300 {
		t.Error("default config does not match Table 2")
	}
	if cfg.LineOf(130) != 2 {
		t.Errorf("LineOf(130) = %d, want 2", cfg.LineOf(130))
	}
	if len(cfg.Table2()) < 7 {
		t.Error("Table2 rendering too short")
	}

	bad := []func(Config) Config{
		func(c Config) Config { c.Cores = 0; return c },
		func(c Config) Config { c.WriteBufferDepth = 0; return c },
		func(c Config) Config { c.L1SizeBytes = 0; return c },
		func(c Config) Config { c.L1SizeBytes = 1000; return c },
		func(c Config) Config { c.RMWType = 0; return c },
		func(c Config) Config { c.BloomFilterBits = 0; return c },
		func(c Config) Config { c.MaxCycles = 0; return c },
	}
	for i, mutate := range bad {
		if err := mutate(DefaultConfig()).Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
