// Package mesh models the 2D-mesh on-chip interconnect of the paper's
// evaluation platform (Table 2: 1-cycle links, 4-cycle routers). It
// provides hop counts and message latencies between cores, the home-node
// mapping for cache lines (the shared L2 is banked and distributed, one
// bank and directory slice per node), and broadcast latencies for the
// addr-list protocol of §3.2.
package mesh

import "fmt"

// Topology is a 2D mesh of nodes. Node i sits at row i/Width, column
// i%Width. The mesh uses XY (dimension-ordered) routing, so the hop count
// between two nodes is their Manhattan distance.
type Topology struct {
	nodes         int
	width, height int
	linkLatency   uint64
	routerLatency uint64
}

// New builds a mesh for the given number of nodes with the given per-link
// and per-router latencies (in cycles). The mesh is as square as possible:
// width = ceil(sqrt(nodes)). New panics when nodes is not positive.
func New(nodes int, linkLatency, routerLatency uint64) *Topology {
	if nodes <= 0 {
		panic(fmt.Sprintf("mesh: non-positive node count %d", nodes))
	}
	w := 1
	for w*w < nodes {
		w++
	}
	h := (nodes + w - 1) / w
	return &Topology{nodes: nodes, width: w, height: h, linkLatency: linkLatency, routerLatency: routerLatency}
}

// Nodes returns the number of nodes.
func (t *Topology) Nodes() int { return t.nodes }

// Width returns the mesh width in columns.
func (t *Topology) Width() int { return t.width }

// Height returns the mesh height in rows.
func (t *Topology) Height() int { return t.height }

// Coordinates returns the (row, column) of a node.
func (t *Topology) Coordinates(node int) (row, col int) {
	t.check(node)
	return node / t.width, node % t.width
}

func (t *Topology) check(node int) {
	if node < 0 || node >= t.nodes {
		panic(fmt.Sprintf("mesh: node %d out of range [0,%d)", node, t.nodes))
	}
}

// Hops returns the Manhattan distance between two nodes.
func (t *Topology) Hops(from, to int) int {
	r1, c1 := t.Coordinates(from)
	r2, c2 := t.Coordinates(to)
	return abs(r1-r2) + abs(c1-c2)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Latency returns the one-way message latency between two nodes: each hop
// traverses one link and one router, plus one router at the destination
// (injection at the source is free). Same-node messages cost one router
// pass, modelling the local network interface.
func (t *Topology) Latency(from, to int) uint64 {
	hops := uint64(t.Hops(from, to))
	return hops*(t.linkLatency+t.routerLatency) + t.routerLatency
}

// RoundTrip returns the request/response latency between two nodes.
func (t *Topology) RoundTrip(from, to int) uint64 {
	return t.Latency(from, to) + t.Latency(to, from)
}

// MaxLatencyFrom returns the largest one-way latency from the given node to
// any other node, the time for a broadcast's slowest leg.
func (t *Topology) MaxLatencyFrom(from int) uint64 {
	var max uint64
	for n := 0; n < t.nodes; n++ {
		if n == from {
			continue
		}
		if l := t.Latency(from, n); l > max {
			max = l
		}
	}
	return max
}

// BroadcastLatency returns the latency of broadcasting a message from the
// given node to all other nodes and collecting every acknowledgement:
// requests and acks to different nodes overlap, so the total is twice the
// slowest one-way leg.
func (t *Topology) BroadcastLatency(from int) uint64 {
	return 2 * t.MaxLatencyFrom(from)
}

// MultiCastLatency returns the latency of delivering a message from the
// given node to each of the targets and collecting acknowledgements,
// overlapping all legs (used for invalidating a set of sharers).
func (t *Topology) MultiCastLatency(from int, targets []int) uint64 {
	var max uint64
	for _, n := range targets {
		if n == from {
			continue
		}
		if l := t.RoundTrip(from, n); l > max {
			max = l
		}
	}
	return max
}

// Home returns the node owning the directory slice and L2 bank of a cache
// line: lines are interleaved across nodes by line address.
func (t *Topology) Home(line uint64) int {
	return int(line % uint64(t.nodes))
}

// AverageLatency returns the mean one-way latency over all ordered node
// pairs, a useful summary statistic for reports.
func (t *Topology) AverageLatency() float64 {
	if t.nodes < 2 {
		return float64(t.routerLatency)
	}
	var sum uint64
	var count int
	for a := 0; a < t.nodes; a++ {
		for b := 0; b < t.nodes; b++ {
			if a == b {
				continue
			}
			sum += t.Latency(a, b)
			count++
		}
	}
	return float64(sum) / float64(count)
}
