package mesh

import (
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	cases := []struct {
		nodes, width, height int
	}{
		{1, 1, 1},
		{2, 2, 1},
		{4, 2, 2},
		{8, 3, 3},
		{16, 4, 4},
		{32, 6, 6},
	}
	for _, c := range cases {
		m := New(c.nodes, 1, 4)
		if m.Nodes() != c.nodes || m.Width() != c.width || m.Height() != c.height {
			t.Errorf("New(%d): %dx%d, want %dx%d", c.nodes, m.Width(), m.Height(), c.width, c.height)
		}
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0, 1, 4)
}

func TestCoordinatesAndHops(t *testing.T) {
	m := New(16, 1, 4) // 4x4
	r, c := m.Coordinates(0)
	if r != 0 || c != 0 {
		t.Errorf("Coordinates(0) = (%d,%d)", r, c)
	}
	r, c = m.Coordinates(5)
	if r != 1 || c != 1 {
		t.Errorf("Coordinates(5) = (%d,%d)", r, c)
	}
	if m.Hops(0, 0) != 0 {
		t.Error("Hops(self) != 0")
	}
	if m.Hops(0, 3) != 3 {
		t.Errorf("Hops(0,3) = %d, want 3", m.Hops(0, 3))
	}
	if m.Hops(0, 15) != 6 {
		t.Errorf("Hops(0,15) = %d, want 6 (corner to corner)", m.Hops(0, 15))
	}
	if m.Hops(0, 15) != m.Hops(15, 0) {
		t.Error("Hops must be symmetric")
	}
}

func TestCoordinatesPanicsOutOfRange(t *testing.T) {
	m := New(4, 1, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node should panic")
		}
	}()
	m.Coordinates(4)
}

func TestLatencyModel(t *testing.T) {
	m := New(16, 1, 4)
	// Same node: one router pass.
	if m.Latency(3, 3) != 4 {
		t.Errorf("local latency = %d, want 4", m.Latency(3, 3))
	}
	// One hop: link + router + destination router.
	if m.Latency(0, 1) != 1*(1+4)+4 {
		t.Errorf("one-hop latency = %d, want 9", m.Latency(0, 1))
	}
	if m.RoundTrip(0, 1) != 2*m.Latency(0, 1) {
		t.Error("RoundTrip should be twice the symmetric one-way latency")
	}
}

func TestBroadcastAndMaxLatency(t *testing.T) {
	m := New(16, 1, 4)
	corner := m.MaxLatencyFrom(0)
	if corner != m.Latency(0, 15) {
		t.Errorf("MaxLatencyFrom(0) = %d, want latency to the far corner %d", corner, m.Latency(0, 15))
	}
	if m.BroadcastLatency(0) != 2*corner {
		t.Errorf("BroadcastLatency = %d, want %d", m.BroadcastLatency(0), 2*corner)
	}
	// The centre of the mesh has a cheaper broadcast than a corner.
	if m.BroadcastLatency(5) >= m.BroadcastLatency(0) {
		t.Error("a central node should broadcast at most as expensively as a corner node")
	}
}

func TestMultiCastLatency(t *testing.T) {
	m := New(16, 1, 4)
	if m.MultiCastLatency(0, nil) != 0 {
		t.Error("multicast to nobody should be free")
	}
	if m.MultiCastLatency(0, []int{0}) != 0 {
		t.Error("multicast to only yourself should be free")
	}
	lat := m.MultiCastLatency(0, []int{1, 15})
	if lat != m.RoundTrip(0, 15) {
		t.Errorf("multicast latency %d should be bounded by the farthest target %d", lat, m.RoundTrip(0, 15))
	}
}

func TestHomeDistributesLines(t *testing.T) {
	m := New(8, 1, 4)
	seen := map[int]bool{}
	for line := uint64(0); line < 64; line++ {
		h := m.Home(line)
		if h < 0 || h >= 8 {
			t.Fatalf("Home(%d) = %d out of range", line, h)
		}
		seen[h] = true
	}
	if len(seen) != 8 {
		t.Errorf("interleaving uses %d of 8 banks", len(seen))
	}
}

func TestAverageLatency(t *testing.T) {
	single := New(1, 1, 4)
	if single.AverageLatency() != 4 {
		t.Errorf("single-node average latency = %f", single.AverageLatency())
	}
	m := New(16, 1, 4)
	avg := m.AverageLatency()
	if avg <= float64(m.Latency(0, 1))/2 || avg >= float64(m.Latency(0, 15)) {
		t.Errorf("average latency %f outside plausible range", avg)
	}
}

func TestPropertyTriangleInequalityOnHops(t *testing.T) {
	m := New(32, 1, 4)
	err := quick.Check(func(a, b, c uint8) bool {
		x, y, z := int(a)%32, int(b)%32, int(c)%32
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLatencySymmetric(t *testing.T) {
	m := New(32, 1, 4)
	err := quick.Check(func(a, b uint8) bool {
		x, y := int(a)%32, int(b)%32
		return m.Latency(x, y) == m.Latency(y, x)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}
