package sim

import (
	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/sim/directory"
	"repro/internal/sim/mesh"
	"repro/internal/sim/writebuffer"
)

// processor is one simulated in-order core: it pulls operations from its
// stream, talks to the directory for loads and RMWs, retires stores into
// its write buffer and runs the background drain of that buffer. The
// stream is consumed one op at a time, so the processor's memory footprint
// is independent of trace length; all continuations that advance the
// instruction stream go through the engine so that arbitrarily long traces
// never build up call-stack depth either.
type processor struct {
	id     int
	cfg    Config
	engine *Engine
	dir    *directory.Directory
	topo   *mesh.Topology
	wb     *writebuffer.Buffer
	addrs  *bloom.AddrList

	stream OpStream

	stats    CoreStats
	rmwCosts []RMWCost

	// noteRMWLine lets the simulator track globally-unique RMW lines.
	noteRMWLine func(line uint64)

	// slotWaiters are continuations waiting for write-buffer space;
	// emptyWaiters are forced drains waiting for the buffer to empty.
	slotWaiters  []func(at uint64)
	emptyWaiters []func(at uint64)
	// forcedDrain marks an active forced drain, which (with ParallelDrain)
	// makes the drainer issue every pending entry concurrently.
	forcedDrain bool

	done       bool
	finishTime uint64
}

func newProcessor(id int, cfg Config, engine *Engine, dir *directory.Directory, topo *mesh.Topology, addrs *bloom.AddrList, stream OpStream, noteRMWLine func(uint64)) *processor {
	return &processor{
		id:          id,
		cfg:         cfg,
		engine:      engine,
		dir:         dir,
		topo:        topo,
		wb:          writebuffer.New(cfg.WriteBufferDepth),
		addrs:       addrs,
		stream:      stream,
		stats:       CoreStats{Core: id},
		noteRMWLine: noteRMWLine,
	}
}

// sched schedules a continuation at the given cycle through the engine.
func (p *processor) sched(at uint64, fn func(uint64)) {
	p.engine.Schedule(at, func() { fn(at) })
}

// start begins execution at cycle 0.
func (p *processor) start() {
	p.sched(0, p.step)
}

// step pulls and executes the next trace operation.
func (p *processor) step(at uint64) {
	op, ok := p.stream.Next()
	if !ok {
		p.finish(at)
		return
	}
	switch op.Kind {
	case OpCompute:
		p.stats.Computes++
		p.sched(at+op.Think, p.step)
	case OpRead:
		p.read(at, op.Addr)
	case OpWrite:
		p.writeOp(at, op.Addr)
	case OpRMW:
		p.rmw(at, op.Addr)
	case OpFence:
		p.fence(at)
	default:
		// Unknown kinds are skipped; traces are produced in-process so this
		// is unreachable in practice.
		p.sched(at, p.step)
	}
}

// finish records completion of the core's trace. Any writes still sitting
// in the write buffer keep draining in the background; the core's finish
// time (and hence the benchmark's execution time) is when its last
// instruction retired, matching how execution time is normally reported.
func (p *processor) finish(at uint64) {
	p.done = true
	p.finishTime = at
	p.stats.Cycles = at
}

// read performs a load: store-to-load forwarding from the write buffer if
// possible, otherwise a GetS coherence request.
func (p *processor) read(at uint64, addr uint64) {
	p.stats.Reads++
	line := p.cfg.LineOf(addr)
	if p.wb.Contains(line) {
		// Forwarded from the youngest matching store in one cycle.
		p.sched(at+1, p.step)
		return
	}
	p.dir.Access(p.id, line, directory.GetS, at, func(done uint64) {
		p.stats.ReadStallCycles += done - at
		p.sched(done, p.step)
	})
}

// writeOp retires a store into the write buffer and moves on; the store
// performs later when it reaches the buffer head.
func (p *processor) writeOp(at uint64, addr uint64) {
	p.stats.Writes++
	line := p.cfg.LineOf(addr)
	p.pushWrite(at, line, false, func(done uint64) {
		if done > at+1 {
			p.stats.WriteStallCycles += done - at - 1
		}
		p.sched(done, p.step)
	})
}

// pushWrite appends a write to the write buffer, stalling until space is
// available, and invokes cont one cycle after the push (the retire cycle).
func (p *processor) pushWrite(at uint64, line uint64, isRMWWrite bool, cont func(at uint64)) {
	if p.wb.Full() {
		p.slotWaiters = append(p.slotWaiters, func(freeAt uint64) {
			if freeAt < at {
				freeAt = at
			}
			p.pushWrite(freeAt, line, isRMWWrite, cont)
		})
		return
	}
	if _, err := p.wb.Push(line, isRMWWrite, at); err != nil {
		// Full was checked above; a failure here is a modelling bug.
		panic(err)
	}
	p.kickDrain(at)
	cont(at + 1)
}

// fence drains the write buffer before the next operation.
func (p *processor) fence(at uint64) {
	p.stats.Fences++
	p.drainAll(at, func(done uint64) {
		p.sched(done, p.step)
	})
}

// kickDrain makes sure the write-buffer drainer is working: up to
// MaxOutstandingDrains entries from the front of the buffer have their
// ownership requests outstanding (writes still complete in FIFO order);
// during a forced drain with ParallelDrain every pending entry is issued
// concurrently.
func (p *processor) kickDrain(at uint64) {
	if p.wb.Empty() {
		p.notifyEmpty(at)
		return
	}
	limit := p.cfg.MaxOutstandingDrains
	if limit <= 0 {
		limit = 1
	}
	if p.forcedDrain && p.cfg.ParallelDrain {
		limit = p.wb.Len()
	}
	outstanding := 0
	for _, e := range p.wb.Entries() {
		if outstanding >= limit {
			break
		}
		if e.InFlight && !e.Ready {
			outstanding++
			continue
		}
		if !e.InFlight {
			p.issueEntry(e, at)
			outstanding++
		}
	}
}

// issueEntry sends the ownership request for one write-buffer entry and
// completes the write when ownership arrives. Completion is deferred
// through the engine so the buffer's state only changes at the completion
// cycle.
func (p *processor) issueEntry(e *writebuffer.Entry, at uint64) {
	e.InFlight = true
	p.dir.Access(p.id, e.Line, directory.GetM, at, func(done uint64) {
		p.engine.Schedule(done, func() { p.completeEntry(e, done) })
	})
}

// completeEntry records that a pending write's ownership response has
// arrived. Under TSO writes leave the buffer strictly in FIFO order, so the
// entry is only marked ready; drainReady completes it once it reaches the
// head.
func (p *processor) completeEntry(e *writebuffer.Entry, at uint64) {
	e.Ready = true
	e.ReadyAt = at
	p.drainReady(at)
}

// drainReady completes ready writes from the head of the buffer, in order.
// A head write whose line is locked by another processor's RMW is denied
// (the paper's cache-line locking) and retried after the unlock -- this is
// exactly the dependency that produces the Fig. 10 write-deadlock when
// deadlock avoidance is disabled.
func (p *processor) drainReady(at uint64) {
	for {
		head := p.wb.Head()
		if head == nil {
			p.notifyEmpty(at)
			return
		}
		if !head.Ready {
			p.kickDrain(at)
			return
		}
		if head.ReadyAt > at {
			at = head.ReadyAt
		}
		denied := p.dir.WaitForUnlock(head.Line, p.id, func(unlockedAt uint64) {
			retry := unlockedAt + p.cfg.LockRetryCycles
			p.engine.Schedule(retry, func() {
				p.dir.Access(p.id, head.Line, directory.GetM, retry, func(done uint64) {
					p.engine.Schedule(done, func() { p.completeEntry(head, done) })
				})
			})
		})
		if denied {
			head.Ready = false
			return
		}
		p.wb.Remove(head)
		if head.IsRMWWrite {
			// Completing the write half of a weak RMW releases its line
			// lock, letting denied coherence requests proceed.
			p.dir.Unlock(head.Line, p.id, at)
		}
		p.notifySlotFree(at)
		p.kickDrain(at)
	}
}

// drainAll waits until the write buffer is empty (a forced drain), then
// invokes done.
func (p *processor) drainAll(at uint64, done func(at uint64)) {
	if p.wb.Empty() {
		done(at)
		return
	}
	p.emptyWaiters = append(p.emptyWaiters, done)
	p.forcedDrain = true
	p.kickDrain(at)
}

func (p *processor) notifyEmpty(at uint64) {
	p.forcedDrain = false
	waiters := p.emptyWaiters
	p.emptyWaiters = nil
	for _, w := range waiters {
		w(at)
	}
}

func (p *processor) notifySlotFree(at uint64) {
	if len(p.slotWaiters) == 0 || p.wb.Full() {
		return
	}
	w := p.slotWaiters[0]
	p.slotWaiters = p.slotWaiters[1:]
	w(at)
}

// recordRMW accumulates one dynamic RMW's cost.
func (p *processor) recordRMW(c RMWCost) {
	p.rmwCosts = append(p.rmwCosts, c)
	p.stats.RMWWriteBufferCycles += c.WriteBuffer
	p.stats.RMWRaWaCycles += c.RaWa
	if c.Reverted {
		p.stats.RMWReverts++
	}
	if c.Broadcast {
		p.stats.RMWBroadcasts++
	}
}

// rmw dispatches to the configured RMW implementation.
func (p *processor) rmw(at uint64, addr uint64) {
	p.stats.RMWs++
	line := p.cfg.LineOf(addr)
	if p.noteRMWLine != nil {
		p.noteRMWLine(line)
	}
	if p.cfg.RMWType == core.Type1 {
		p.rmwType1(at, line)
		return
	}
	p.rmwWeak(at, line)
}

// rmwType1 implements the baseline strongly-ordered RMW (§3.1): drain the
// write buffer, obtain exclusive ownership, lock, perform the read and the
// write, unlock, and only then let the next instruction retire.
func (p *processor) rmwType1(at uint64, line uint64) {
	p.drainAll(at, func(drained uint64) {
		p.dir.AccessAndLock(p.id, line, directory.GetM, drained, func(locked uint64) {
			done := locked + 1 // the write performs into the locked, owned line
			p.engine.Schedule(done, func() {
				p.dir.Unlock(line, p.id, done)
				p.recordRMW(RMWCost{WriteBuffer: drained - at, RaWa: done - drained})
				p.step(done)
			})
		})
	})
}

// rmwWeak implements the type-2 and type-3 RMWs (§3.2, §3.3). The read half
// acquires and locks the line (exclusively for type-2; with read permission
// only for type-3), the RMW retires, and the write half drains from the
// write buffer later, unlocking the line when it completes. The bloom-filter
// addr-list protocol reverts to a type-1-style drain whenever a pending
// write might target a line locked by another processor's RMW.
func (p *processor) rmwWeak(at uint64, line uint64) {
	var broadcast, conflict bool
	var bcastLat uint64
	if !p.cfg.DisableDeadlockAvoidance {
		broadcast = p.addrs.LookupOrBroadcast(p.id, line)
		if broadcast {
			bcastLat = p.topo.BroadcastLatency(p.id)
		}
		for _, e := range p.wb.Entries() {
			if p.addrs.ConflictsWithPendingWrite(p.id, e.Line) {
				conflict = true
				break
			}
		}
	}
	start := at + bcastLat

	if conflict {
		// Deadlock-safety cannot be guaranteed: fall back to the type-1
		// sequence (drain first), counting the drain in the write-buffer
		// component.
		p.drainAll(start, func(drained uint64) {
			p.dir.AccessAndLock(p.id, line, directory.GetM, drained, func(locked uint64) {
				done := locked + 1
				p.engine.Schedule(done, func() {
					p.dir.Unlock(line, p.id, done)
					p.recordRMW(RMWCost{
						WriteBuffer: drained - start,
						RaWa:        (done - drained) + bcastLat,
						Reverted:    true,
						Broadcast:   broadcast,
					})
					p.step(done)
				})
			})
		})
		return
	}

	kind := directory.GetM
	if p.cfg.RMWType == core.Type3 {
		// Type-3 atomicity allows reads between Ra and Wa, so read
		// permission suffices and no invalidation delay is paid here. When
		// the line is not owned locally the lock is taken at the directory.
		kind = directory.GetS
	}
	p.dir.AccessAndLock(p.id, line, kind, start, func(locked uint64) {
		// Wa retires into the write buffer; the RMW (and everything after
		// it) retires without waiting for the drain.
		p.engine.Schedule(locked, func() {
			p.pushWrite(locked, line, true, func(pushed uint64) {
				wbWait := uint64(0)
				if pushed > locked+1 {
					wbWait = pushed - locked - 1 // stalled for a free slot
				}
				p.recordRMW(RMWCost{
					WriteBuffer: wbWait,
					RaWa:        (locked - at) + 1,
					Broadcast:   broadcast,
				})
				p.sched(pushed, p.step)
			})
		})
	})
}
