package sim

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/sim/cache"
	"repro/internal/sim/directory"
	"repro/internal/sim/mesh"
)

// Simulator runs memory-operation traces on the simulated chip
// multiprocessor described by a Config.
type Simulator struct {
	cfg Config
}

// New returns a simulator for the given configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Run simulates a materialized trace. It is a thin wrapper over RunSource:
// the trace is adapted to the streaming interface and consumed one op at a
// time. A run that cannot make progress (every remaining core blocked on a
// locked line, which can only happen with deadlock avoidance disabled)
// returns a Result with Deadlocked set rather than an error, so callers
// can assert on it. Validation lives in RunSource, which enforces the
// same conditions Trace.Validate checks.
func (s *Simulator) Run(trace *Trace) (*Result, error) {
	return s.RunSource(trace.Source())
}

// RunSource simulates a streaming trace source and returns the collected
// statistics. Each core pulls its operations on demand from a fresh
// stream, so memory stays bounded by the source's per-core window (O(1)
// for a materialized trace's views, O(episode) for workload generators)
// regardless of trace length. Deadlock is reported the same way as in Run.
func (s *Simulator) RunSource(src TraceSource) (*Result, error) {
	if src.Cores() == 0 {
		return nil, fmt.Errorf("sim: trace %q has no cores", src.Name())
	}
	if src.Cores() > s.cfg.Cores {
		return nil, fmt.Errorf("sim: trace %q has %d core streams but the configuration has %d cores",
			src.Name(), src.Cores(), s.cfg.Cores)
	}
	engine := NewEngine()
	topo := mesh.New(s.cfg.Cores, s.cfg.LinkLatencyCycles, s.cfg.RouterLatencyCycles)
	caches := make([]*cache.Cache, s.cfg.Cores)
	for i := range caches {
		caches[i] = cache.New(cache.Config{
			SizeBytes: s.cfg.L1SizeBytes,
			Assoc:     s.cfg.L1Assoc,
			LineBytes: s.cfg.LineBytes,
		})
	}
	dir := directory.New(topo, caches, directory.Latencies{
		L1:        s.cfg.L1LatencyCycles,
		L2:        s.cfg.L2LatencyCycles,
		Mem:       s.cfg.MemLatencyCycles,
		LockRetry: s.cfg.LockRetryCycles,
	})
	addrs := bloom.NewAddrList(s.cfg.Cores, s.cfg.BloomFilterBits, s.cfg.BloomHashes, s.cfg.RMWResetThreshold)

	uniqueRMWLines := map[uint64]bool{}
	noteRMW := func(line uint64) { uniqueRMWLines[line] = true }

	procs := make([]*processor, s.cfg.Cores)
	for i := 0; i < s.cfg.Cores; i++ {
		var stream OpStream = emptyStream{}
		if i < src.Cores() {
			stream = src.Stream(i)
		}
		procs[i] = newProcessor(i, s.cfg, engine, dir, topo, addrs, stream, noteRMW)
		procs[i].start()
	}

	runErr := engine.Run(s.cfg.MaxCycles)

	res := &Result{
		Workload:   src.Name(),
		RMWType:    s.cfg.RMWType,
		PerCore:    make([]CoreStats, s.cfg.Cores),
		Broadcasts: uint64(addrs.Broadcasts()),
		UniqueRMWs: len(uniqueRMWLines),
	}
	allDone := true
	allDrained := true
	for i, p := range procs {
		res.PerCore[i] = p.stats
		res.RMWCosts = append(res.RMWCosts, p.rmwCosts...)
		if p.finishTime > res.Cycles {
			res.Cycles = p.finishTime
		}
		if !p.done {
			allDone = false
		}
		if !p.wb.Empty() {
			allDrained = false
		}
	}
	res.DirectoryLockDenials = dir.Stats().LockDenials

	if runErr != nil {
		return res, fmt.Errorf("sim: %s: %w", src.Name(), runErr)
	}
	if !allDone || !allDrained {
		// The event queue drained while cores still had work or while
		// writes were still parked on locked lines: the write-deadlock of
		// Fig. 10. This is only reachable with deadlock avoidance disabled.
		res.Deadlocked = true
	}
	return res, nil
}
