package sim

import (
	"testing"

	"repro/internal/core"
)

// testConfig is a small configuration (4 cores) that keeps unit-test runs
// fast while preserving the Table 2 latencies.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.MaxCycles = 10_000_000
	return cfg
}

func runTrace(t *testing.T, cfg Config, trace *Trace) *Result {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(trace)
	if err != nil {
		t.Fatalf("Run(%s): %v", trace.Name, err)
	}
	return res
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.Cores = 0
	if _, err := New(bad); err == nil {
		t.Fatal("New must reject an invalid configuration")
	}
	good, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if good.Config().Cores != 4 {
		t.Error("Config accessor wrong")
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	sim, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(NewTrace("too-big", 64)); err == nil {
		t.Fatal("trace with more streams than cores must be rejected")
	}
}

func TestSingleCoreComputeOnly(t *testing.T) {
	trace := NewTrace("compute", 1)
	trace.Append(0, Compute(100), Compute(50))
	res := runTrace(t, testConfig(), trace)
	if res.Cycles != 150 {
		t.Errorf("Cycles = %d, want 150", res.Cycles)
	}
	if res.PerCore[0].Computes != 2 {
		t.Errorf("Computes = %d, want 2", res.PerCore[0].Computes)
	}
	if res.TotalMemOps() != 0 || res.TotalRMWs() != 0 {
		t.Error("compute-only trace should have no memory operations")
	}
}

func TestReadLatencies(t *testing.T) {
	cfg := testConfig()
	trace := NewTrace("reads", 1)
	trace.Append(0, Read(0x1000), Read(0x1000))
	res := runTrace(t, cfg, trace)
	// First read: cold miss, must include the memory latency. Second read:
	// L1 hit.
	if res.PerCore[0].ReadStallCycles < cfg.MemLatencyCycles {
		t.Errorf("read stalls %d should include the %d-cycle memory latency",
			res.PerCore[0].ReadStallCycles, cfg.MemLatencyCycles)
	}
	if res.PerCore[0].Reads != 2 {
		t.Errorf("Reads = %d, want 2", res.PerCore[0].Reads)
	}
}

func TestWritesRetireIntoWriteBufferWithoutStalling(t *testing.T) {
	cfg := testConfig()
	trace := NewTrace("writes", 1)
	for i := 0; i < 8; i++ {
		trace.Append(0, Write(uint64(0x2000+64*i)))
	}
	res := runTrace(t, cfg, trace)
	// Eight writes into a 32-entry buffer retire at one per cycle; the core
	// must not wait for the misses to complete.
	if res.Cycles > 50 {
		t.Errorf("writes should retire into the buffer quickly, took %d cycles", res.Cycles)
	}
	if res.PerCore[0].Writes != 8 {
		t.Errorf("Writes = %d", res.PerCore[0].Writes)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	cfg := testConfig()
	trace := NewTrace("fwd", 1)
	trace.Append(0, Write(0x3000), Read(0x3000))
	res := runTrace(t, cfg, trace)
	// The read is forwarded from the write buffer: no memory stall.
	if res.PerCore[0].ReadStallCycles >= cfg.MemLatencyCycles {
		t.Errorf("forwarded read stalled %d cycles", res.PerCore[0].ReadStallCycles)
	}
}

func TestFenceDrainsWriteBuffer(t *testing.T) {
	cfg := testConfig()
	trace := NewTrace("fence", 1)
	trace.Append(0, Write(0x4000), Fence(), Compute(1))
	res := runTrace(t, cfg, trace)
	// The fence must wait for the write's cold miss to complete.
	if res.Cycles < cfg.MemLatencyCycles {
		t.Errorf("fence did not wait for the pending write (cycles=%d)", res.Cycles)
	}
	if res.PerCore[0].Fences != 1 {
		t.Error("fence not counted")
	}
}

func TestWriteBufferFullStallsCore(t *testing.T) {
	cfg := testConfig()
	cfg.WriteBufferDepth = 2
	trace := NewTrace("wb-full", 1)
	for i := 0; i < 6; i++ {
		trace.Append(0, Write(uint64(0x5000+64*i)))
	}
	res := runTrace(t, cfg, trace)
	if res.PerCore[0].WriteStallCycles == 0 {
		t.Error("a 2-entry write buffer must stall a burst of 6 writes")
	}
}

func TestType1RMWIncludesDrainAndLocking(t *testing.T) {
	cfg := testConfig().WithRMWType(core.Type1)
	trace := NewTrace("type1-rmw", 1)
	trace.Append(0, Write(0x6000), RMW(0x7000), Compute(1))
	res := runTrace(t, cfg, trace)
	if len(res.RMWCosts) != 1 {
		t.Fatalf("RMW costs = %d, want 1", len(res.RMWCosts))
	}
	c := res.RMWCosts[0]
	// The pending write's cold miss must appear in the write-buffer
	// component.
	if c.WriteBuffer < cfg.MemLatencyCycles {
		t.Errorf("type-1 write-buffer component %d should include the pending write's memory latency", c.WriteBuffer)
	}
	if c.RaWa == 0 {
		t.Error("type-1 Ra/Wa component must be non-zero")
	}
	if c.Reverted || c.Broadcast {
		t.Error("type-1 RMWs neither broadcast nor revert")
	}
}

func TestType2RMWHidesWriteBufferDrain(t *testing.T) {
	base := testConfig()
	trace := func() *Trace {
		tr := NewTrace("wb-hide", 1)
		tr.Append(0, Write(0x8000), RMW(0x9000), Compute(1))
		return tr
	}
	res1 := runTrace(t, base.WithRMWType(core.Type1), trace())
	res2 := runTrace(t, base.WithRMWType(core.Type2), trace())
	_, _, t1 := res1.AvgRMWCost()
	wb2, _, t2 := res2.AvgRMWCost()
	if wb2 != 0 {
		t.Errorf("type-2 RMW write-buffer component = %.1f, want 0 (no conflicting pending write)", wb2)
	}
	if t2 >= t1 {
		t.Errorf("type-2 RMW cost %.1f should be below type-1 cost %.1f", t2, t1)
	}
	// The whole run should also be faster.
	if res2.Cycles >= res1.Cycles {
		t.Errorf("type-2 execution (%d cycles) should beat type-1 (%d cycles)", res2.Cycles, res1.Cycles)
	}
}

func TestType2RMWBroadcastsOncePerUniqueLine(t *testing.T) {
	cfg := testConfig().WithRMWType(core.Type2)
	trace := NewTrace("broadcasts", 2)
	trace.Append(0, RMW(0xa000), RMW(0xa000), RMW(0xa000))
	trace.Append(1, RMW(0xa000), RMW(0xb000))
	res := runTrace(t, cfg, trace)
	// Two unique RMW lines -> two broadcasts, regardless of the five
	// dynamic RMWs.
	if res.Broadcasts != 2 {
		t.Errorf("Broadcasts = %d, want 2", res.Broadcasts)
	}
	if res.UniqueRMWs != 2 {
		t.Errorf("UniqueRMWs = %d, want 2", res.UniqueRMWs)
	}
	if res.TotalRMWs() != 5 {
		t.Errorf("TotalRMWs = %d, want 5", res.TotalRMWs())
	}
}

func TestType3CheaperThanType2OnSharedLines(t *testing.T) {
	// Both cores repeatedly RMW a line that the other core also reads, so
	// under type-2 every RMW pays an invalidation round while type-3's read
	// permission does not.
	mk := func() *Trace {
		tr := NewTrace("shared-rmw", 2)
		for i := 0; i < 20; i++ {
			tr.Append(0, Read(0xc000), RMW(0xd000), Compute(20))
			tr.Append(1, Read(0xd000), RMW(0xc000), Compute(20))
		}
		return tr
	}
	res2 := runTrace(t, testConfig().WithRMWType(core.Type2), mk())
	res3 := runTrace(t, testConfig().WithRMWType(core.Type3), mk())
	_, _, c2 := res2.AvgRMWCost()
	_, _, c3 := res3.AvgRMWCost()
	if c3 > c2 {
		t.Errorf("type-3 average RMW cost %.1f should not exceed type-2 cost %.1f", c3, c2)
	}
}

func TestLockedLineDelaysOtherCores(t *testing.T) {
	// Core 0 performs a weak RMW on line L and then a slow cold write keeps
	// its write buffer busy, so L stays locked; core 1 reads L and must wait
	// for the unlock rather than complete at L1/L2 latency.
	cfg := testConfig().WithRMWType(core.Type2)
	trace := NewTrace("lock-delay", 2)
	trace.Append(0, Write(0xe000), RMW(0xf000), Compute(1))
	trace.Append(1, Compute(30), Read(0xf000), Compute(1))
	res := runTrace(t, cfg, trace)
	if res.DirectoryLockDenials == 0 {
		t.Error("core 1's read of the locked line should have been denied at least once")
	}
	if res.Deadlocked {
		t.Error("this workload must not deadlock")
	}
}

// fig10Trace builds the write-deadlock pattern of Fig. 10. A warm-up phase
// makes each core the owner of the line it will RMW (so the RMW's lock is
// taken quickly) while the line it will write is owned remotely (so the
// pending write is still in flight when the other core's RMW locks it).
// The final fences force each core to wait for its write buffer, which can
// never drain if the deadlock manifests.
func fig10Trace() *Trace {
	const lineA, lineB = 0x10000, 0x20000
	tr := NewTrace("fig10", 2)
	// Warm-up: core 0 owns B, core 1 owns A.
	tr.Append(0, RMW(lineB), Compute(5000))
	tr.Append(1, RMW(lineA), Compute(5000))
	// Fig. 10 proper: W(x); RMW(y)  ||  W(y); RMW(x).
	tr.Append(0, Write(lineA), RMW(lineB), Fence(), Compute(1))
	tr.Append(1, Write(lineB), RMW(lineA), Fence(), Compute(1))
	return tr
}

func TestWriteDeadlockWithoutAvoidance(t *testing.T) {
	// With the bloom-filter protocol disabled the naive type-2
	// implementation deadlocks on the Fig. 10 pattern; with it enabled the
	// same trace completes.
	naive := testConfig().WithRMWType(core.Type2)
	naive.DisableDeadlockAvoidance = true
	naive.MaxCycles = 1_000_000
	res, err := mustSim(t, naive).Run(fig10Trace())
	if err != nil {
		t.Fatalf("naive run errored instead of reporting deadlock: %v", err)
	}
	if !res.Deadlocked {
		t.Fatal("naive type-2 implementation must deadlock on the Fig. 10 pattern")
	}

	safe := testConfig().WithRMWType(core.Type2)
	res2 := runTrace(t, safe, fig10Trace())
	if res2.Deadlocked {
		t.Fatal("bloom-filter deadlock avoidance failed on the Fig. 10 pattern")
	}
	// The avoidance mechanism works by reverting conflicting RMWs to a
	// write-buffer drain.
	if res2.RevertPercent() == 0 {
		t.Error("expected at least one RMW to revert to a drain under the Fig. 10 pattern")
	}
}

func mustSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestType3DeadlockAvoidanceAlsoWorks(t *testing.T) {
	res := runTrace(t, testConfig().WithRMWType(core.Type3), fig10Trace())
	if res.Deadlocked {
		t.Fatal("type-3 with deadlock avoidance must not deadlock")
	}
}

func TestType3NaiveAlsoDeadlocks(t *testing.T) {
	cfg := testConfig().WithRMWType(core.Type3)
	cfg.DisableDeadlockAvoidance = true
	cfg.MaxCycles = 1_000_000
	res, err := mustSim(t, cfg).Run(fig10Trace())
	if err != nil {
		t.Fatalf("naive type-3 run errored: %v", err)
	}
	if !res.Deadlocked {
		t.Fatal("naive type-3 implementation must also deadlock on the Fig. 10 pattern")
	}
}

func TestAllTypesOnOneTrace(t *testing.T) {
	trace := NewTrace("all-types", 2)
	trace.Append(0, Write(0x1200), RMW(0x1300), Read(0x1400))
	trace.Append(1, RMW(0x1300), Write(0x1400))
	for _, typ := range core.AllTypes() {
		res := runTrace(t, testConfig().WithRMWType(typ), trace)
		if res.RMWType != typ {
			t.Errorf("result labelled %s, want %s", res.RMWType, typ)
		}
		if res.TotalRMWs() != 2 {
			t.Errorf("%s: RMWs = %d, want 2", typ, res.TotalRMWs())
		}
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	cfg := testConfig().WithRMWType(core.Type2)
	trace := NewTrace("metrics", 1)
	trace.Append(0, Read(0x40), Write(0x80), RMW(0xc0), RMW(0xc0), Compute(5))
	res := runTrace(t, cfg, trace)
	if got := res.RMWsPer1000MemOps(); got != 500 {
		t.Errorf("RMWsPer1000MemOps = %.1f, want 500 (2 of 4 memops)", got)
	}
	if got := res.UniqueRMWPercent(); got != 50 {
		t.Errorf("UniqueRMWPercent = %.1f, want 50", got)
	}
	if res.RMWOverheadPercent() <= 0 || res.RMWOverheadPercent() > 100 {
		t.Errorf("RMWOverheadPercent = %.1f out of range", res.RMWOverheadPercent())
	}
	if res.String() == "" {
		t.Error("Result.String empty")
	}
	// Zero-value result metrics must not divide by zero.
	empty := &Result{}
	if empty.RMWsPer1000MemOps() != 0 || empty.UniqueRMWPercent() != 0 ||
		empty.RevertPercent() != 0 || empty.BroadcastsPer100RMWs() != 0 ||
		empty.RMWOverheadPercent() != 0 {
		t.Error("empty result metrics should be zero")
	}
	wb, rw, total := empty.AvgRMWCost()
	if wb != 0 || rw != 0 || total != 0 {
		t.Error("empty result RMW cost should be zero")
	}
}

func TestIdleCoresDoNotAffectResults(t *testing.T) {
	cfg := testConfig()
	trace := NewTrace("idle", 1) // only core 0 has work; cores 1-3 idle
	trace.Append(0, Compute(10))
	res := runTrace(t, cfg, trace)
	if res.Cycles != 10 {
		t.Errorf("Cycles = %d, want 10", res.Cycles)
	}
	if res.RMWOverheadPercent() != 0 {
		t.Error("idle cores should not contribute RMW overhead")
	}
}
