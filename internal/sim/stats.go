package sim

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// RMWCost is the cost of one dynamic RMW, split the way Fig. 11(a) reports
// it.
type RMWCost struct {
	// WriteBuffer is the portion spent waiting for the write buffer (the
	// forced drain of type-1, or the drain of a reverted type-2/3 RMW).
	WriteBuffer uint64
	// RaWa is the portion spent performing the read and write halves:
	// obtaining (exclusive or shared) permission, locking the line, and any
	// addr-list broadcast.
	RaWa uint64
	// Reverted marks a type-2/3 RMW that fell back to a full drain because
	// a pending write conflicted with the addr-list.
	Reverted bool
	// Broadcast marks an RMW that had to broadcast its address.
	Broadcast bool
}

// Total returns the RMW's total critical-path cost.
func (c RMWCost) Total() uint64 { return c.WriteBuffer + c.RaWa }

// CoreStats aggregates one core's activity.
type CoreStats struct {
	Core     int
	Cycles   uint64
	Reads    uint64
	Writes   uint64
	RMWs     uint64
	Fences   uint64
	Computes uint64

	// RMWWriteBufferCycles and RMWRaWaCycles accumulate the two components
	// of RMW cost over all dynamic RMWs of this core.
	RMWWriteBufferCycles uint64
	RMWRaWaCycles        uint64
	// RMWReverts counts type-2/3 RMWs that fell back to a write-buffer
	// drain; RMWBroadcasts counts RMWs that broadcast their address.
	RMWReverts    uint64
	RMWBroadcasts uint64

	// ReadStallCycles and WriteStallCycles measure time the core was
	// stalled on loads and on full write buffers respectively.
	ReadStallCycles  uint64
	WriteStallCycles uint64
}

// Result is the outcome of simulating one trace under one configuration.
type Result struct {
	// Workload is the trace name; RMWType is the RMW implementation used.
	Workload string
	RMWType  core.AtomicityType
	// Cycles is the total execution time (the slowest core).
	Cycles uint64
	// PerCore holds each core's statistics.
	PerCore []CoreStats
	// RMWCosts holds the cost of every dynamic RMW, in completion order.
	RMWCosts []RMWCost
	// Broadcasts is the total number of addr-list broadcasts; UniqueRMWs is
	// the number of distinct RMW lines touched.
	Broadcasts uint64
	UniqueRMWs int
	// Deadlocked reports that the run did not complete because every
	// remaining core was blocked (only possible with deadlock avoidance
	// disabled).
	Deadlocked bool
	// DirectoryLockDenials counts coherence requests denied because their
	// line was locked.
	DirectoryLockDenials uint64
}

// TotalRMWs returns the number of dynamic RMWs.
func (r *Result) TotalRMWs() uint64 {
	var n uint64
	for _, c := range r.PerCore {
		n += c.RMWs
	}
	return n
}

// TotalMemOps returns the number of dynamic memory operations.
func (r *Result) TotalMemOps() uint64 {
	var n uint64
	for _, c := range r.PerCore {
		n += c.Reads + c.Writes + c.RMWs
	}
	return n
}

// AvgRMWCost returns the mean per-RMW cost split into its components.
// All-zero components are returned when the run had no RMWs.
func (r *Result) AvgRMWCost() (writeBuffer, raWa, total float64) {
	if len(r.RMWCosts) == 0 {
		return 0, 0, 0
	}
	var wb, rw uint64
	for _, c := range r.RMWCosts {
		wb += c.WriteBuffer
		rw += c.RaWa
	}
	n := float64(len(r.RMWCosts))
	return float64(wb) / n, float64(rw) / n, float64(wb+rw) / n
}

// RMWsPer1000MemOps returns the RMW density the way Table 3 reports it.
func (r *Result) RMWsPer1000MemOps() float64 {
	mem := r.TotalMemOps()
	if mem == 0 {
		return 0
	}
	return 1000 * float64(r.TotalRMWs()) / float64(mem)
}

// UniqueRMWPercent returns the percentage of dynamic RMWs whose line had
// not been RMW'd before (Table 3's "% Unique RMWs").
func (r *Result) UniqueRMWPercent() float64 {
	rmws := r.TotalRMWs()
	if rmws == 0 {
		return 0
	}
	return 100 * float64(r.UniqueRMWs) / float64(rmws)
}

// RevertPercent returns the percentage of RMWs that reverted to a
// write-buffer drain (Table 3's "% write-buffer drains for type-2/type-3").
func (r *Result) RevertPercent() float64 {
	rmws := r.TotalRMWs()
	if rmws == 0 {
		return 0
	}
	var reverts uint64
	for _, c := range r.PerCore {
		reverts += c.RMWReverts
	}
	return 100 * float64(reverts) / float64(rmws)
}

// BroadcastsPer100RMWs returns the addr-list broadcast rate (Table 3's last
// column).
func (r *Result) BroadcastsPer100RMWs() float64 {
	rmws := r.TotalRMWs()
	if rmws == 0 {
		return 0
	}
	return 100 * float64(r.Broadcasts) / float64(rmws)
}

// RMWOverheadPercent returns the share of total execution time spent on
// RMW critical-path cycles (Fig. 11(b)). The per-core RMW cycles are
// averaged over the cores that executed at least one operation, then
// divided by the total execution time.
func (r *Result) RMWOverheadPercent() float64 {
	if r.Cycles == 0 {
		return 0
	}
	var rmwCycles uint64
	active := 0
	for _, c := range r.PerCore {
		if c.Reads+c.Writes+c.RMWs+c.Computes == 0 {
			continue
		}
		active++
		rmwCycles += c.RMWWriteBufferCycles + c.RMWRaWaCycles
	}
	if active == 0 {
		return 0
	}
	perCore := float64(rmwCycles) / float64(active)
	return 100 * perCore / float64(r.Cycles)
}

// String renders a short human-readable summary of the run.
func (r *Result) String() string {
	wb, rw, total := r.AvgRMWCost()
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]: %d cycles, %d memops, %d RMWs\n",
		r.Workload, r.RMWType, r.Cycles, r.TotalMemOps(), r.TotalRMWs())
	fmt.Fprintf(&b, "  avg RMW cost: %.1f cycles (write-buffer %.1f + Ra/Wa %.1f)\n", total, wb, rw)
	fmt.Fprintf(&b, "  RMW density: %.2f per 1000 memops, unique %.2f%%, reverts %.2f%%, broadcasts %.2f per 100 RMWs\n",
		r.RMWsPer1000MemOps(), r.UniqueRMWPercent(), r.RevertPercent(), r.BroadcastsPer100RMWs())
	fmt.Fprintf(&b, "  RMW execution-time overhead: %.2f%%\n", r.RMWOverheadPercent())
	if r.Deadlocked {
		b.WriteString("  DEADLOCKED\n")
	}
	return b.String()
}
