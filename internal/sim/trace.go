package sim

import "fmt"

// OpKind classifies one trace operation.
type OpKind int

const (
	// OpCompute models non-memory work: the core is busy for Think cycles.
	OpCompute OpKind = iota
	// OpRead is a load.
	OpRead
	// OpWrite is a store.
	OpWrite
	// OpRMW is an atomic read-modify-write (test-and-set, fetch-and-add,
	// exchange, compare-and-swap -- the timing model does not distinguish
	// them).
	OpRMW
	// OpFence is a full memory barrier (mfence): it drains the write
	// buffer.
	OpFence
)

// String renders the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRMW:
		return "rmw"
	case OpFence:
		return "fence"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsMemory reports whether the op accesses memory.
func (k OpKind) IsMemory() bool { return k == OpRead || k == OpWrite || k == OpRMW }

// Op is one operation of a core's trace.
type Op struct {
	// Kind classifies the operation.
	Kind OpKind
	// Addr is the byte address of memory operations.
	Addr uint64
	// Think is the busy time of OpCompute operations, in cycles.
	Think uint64
}

// Compute returns a compute op of the given duration.
func Compute(cycles uint64) Op { return Op{Kind: OpCompute, Think: cycles} }

// Read returns a load of the given byte address.
func Read(addr uint64) Op { return Op{Kind: OpRead, Addr: addr} }

// Write returns a store to the given byte address.
func Write(addr uint64) Op { return Op{Kind: OpWrite, Addr: addr} }

// RMW returns an atomic read-modify-write of the given byte address.
func RMW(addr uint64) Op { return Op{Kind: OpRMW, Addr: addr} }

// Fence returns a full memory barrier.
func Fence() Op { return Op{Kind: OpFence} }

// Trace is one memory-operation trace per core. Cores with no trace simply
// stay idle.
type Trace struct {
	// Name identifies the workload in reports.
	Name string
	// PerCore holds each core's operation sequence.
	PerCore [][]Op
}

// NewTrace returns an empty named trace for the given number of cores.
func NewTrace(name string, cores int) *Trace {
	return &Trace{Name: name, PerCore: make([][]Op, cores)}
}

// Append adds operations to one core's trace.
func (t *Trace) Append(cpu int, ops ...Op) {
	t.PerCore[cpu] = append(t.PerCore[cpu], ops...)
}

// Cores returns the number of per-core streams.
func (t *Trace) Cores() int { return len(t.PerCore) }

// TotalOps returns the total number of operations across all cores.
func (t *Trace) TotalOps() int {
	n := 0
	for _, ops := range t.PerCore {
		n += len(ops)
	}
	return n
}

// CountKind returns the number of operations of the given kind.
func (t *Trace) CountKind(kind OpKind) int {
	n := 0
	for _, ops := range t.PerCore {
		for _, op := range ops {
			if op.Kind == kind {
				n++
			}
		}
	}
	return n
}

// MemOps returns the number of memory operations (reads, writes, RMWs).
func (t *Trace) MemOps() int {
	return t.CountKind(OpRead) + t.CountKind(OpWrite) + t.CountKind(OpRMW)
}

// UniqueRMWLines returns the number of distinct cache lines targeted by RMW
// operations, given the line size.
func (t *Trace) UniqueRMWLines(lineBytes int) int {
	seen := map[uint64]bool{}
	for _, ops := range t.PerCore {
		for _, op := range ops {
			if op.Kind == OpRMW {
				seen[op.Addr/uint64(lineBytes)] = true
			}
		}
	}
	return len(seen)
}

// Validate checks the trace fits the configuration.
func (t *Trace) Validate(cfg Config) error {
	if len(t.PerCore) == 0 {
		return fmt.Errorf("sim: trace %q has no cores", t.Name)
	}
	if len(t.PerCore) > cfg.Cores {
		return fmt.Errorf("sim: trace %q has %d core streams but the configuration has %d cores",
			t.Name, len(t.PerCore), cfg.Cores)
	}
	return nil
}
