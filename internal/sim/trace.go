package sim

import "fmt"

// OpKind classifies one trace operation.
type OpKind int

const (
	// OpCompute models non-memory work: the core is busy for Think cycles.
	OpCompute OpKind = iota
	// OpRead is a load.
	OpRead
	// OpWrite is a store.
	OpWrite
	// OpRMW is an atomic read-modify-write (test-and-set, fetch-and-add,
	// exchange, compare-and-swap -- the timing model does not distinguish
	// them).
	OpRMW
	// OpFence is a full memory barrier (mfence): it drains the write
	// buffer.
	OpFence
)

// String renders the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRMW:
		return "rmw"
	case OpFence:
		return "fence"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsMemory reports whether the op accesses memory.
func (k OpKind) IsMemory() bool { return k == OpRead || k == OpWrite || k == OpRMW }

// Op is one operation of a core's trace.
type Op struct {
	// Kind classifies the operation.
	Kind OpKind
	// Addr is the byte address of memory operations.
	Addr uint64
	// Think is the busy time of OpCompute operations, in cycles.
	Think uint64
}

// Compute returns a compute op of the given duration.
func Compute(cycles uint64) Op { return Op{Kind: OpCompute, Think: cycles} }

// Read returns a load of the given byte address.
func Read(addr uint64) Op { return Op{Kind: OpRead, Addr: addr} }

// Write returns a store to the given byte address.
func Write(addr uint64) Op { return Op{Kind: OpWrite, Addr: addr} }

// RMW returns an atomic read-modify-write of the given byte address.
func RMW(addr uint64) Op { return Op{Kind: OpRMW, Addr: addr} }

// Fence returns a full memory barrier.
func Fence() Op { return Op{Kind: OpFence} }

// OpStream yields one core's operations in program order, one at a time.
// It is the pull-based (iterator) form of a per-core trace: the simulator
// asks for the next operation only when the core is ready to execute it,
// so arbitrarily long instruction streams never have to exist in memory at
// once. A stream is single-consumer; obtain a fresh one per simulation run
// from a TraceSource.
type OpStream interface {
	// Next returns the stream's next operation. ok is false when the
	// stream is exhausted, after which Next must keep returning ok=false.
	Next() (op Op, ok bool)
}

// TraceSource is the lazy form of a Trace: a named bundle of per-core
// operation streams produced on demand. Stream must return a fresh,
// independent iterator on every call, so one source can feed several
// simulation runs — including concurrent runs of the same source under
// different configurations — without the runs observing each other.
//
// A materialized *Trace adapts to this interface via its Source method;
// internal/workload generates sources whose streams synthesize operations
// episode by episode, keeping only an O(episode) buffer per core.
type TraceSource interface {
	// Name identifies the workload in reports.
	Name() string
	// Cores returns the number of per-core streams.
	Cores() int
	// Stream returns a fresh iterator over core c's operations
	// (0 <= c < Cores()).
	Stream(c int) OpStream
}

// Trace is one memory-operation trace per core, fully materialized. Cores
// with no trace simply stay idle. For paper-scale and larger workloads
// prefer the streaming TraceSource form, which the simulator consumes at
// O(window) memory per core; a Trace is the right shape only when the ops
// must be inspected or mutated after generation (calibration checks,
// hand-built litmus patterns).
type Trace struct {
	// Name identifies the workload in reports.
	Name string
	// PerCore holds each core's operation sequence.
	PerCore [][]Op
}

// NewTrace returns an empty named trace for the given number of cores.
func NewTrace(name string, cores int) *Trace {
	return &Trace{Name: name, PerCore: make([][]Op, cores)}
}

// Append adds operations to one core's trace.
func (t *Trace) Append(cpu int, ops ...Op) {
	t.PerCore[cpu] = append(t.PerCore[cpu], ops...)
}

// Cores returns the number of per-core streams.
func (t *Trace) Cores() int { return len(t.PerCore) }

// TotalOps returns the total number of operations across all cores.
func (t *Trace) TotalOps() int {
	n := 0
	for _, ops := range t.PerCore {
		n += len(ops)
	}
	return n
}

// CountKind returns the number of operations of the given kind.
func (t *Trace) CountKind(kind OpKind) int {
	n := 0
	for _, ops := range t.PerCore {
		for _, op := range ops {
			if op.Kind == kind {
				n++
			}
		}
	}
	return n
}

// MemOps returns the number of memory operations (reads, writes, RMWs).
func (t *Trace) MemOps() int {
	return t.CountKind(OpRead) + t.CountKind(OpWrite) + t.CountKind(OpRMW)
}

// UniqueRMWLines returns the number of distinct cache lines targeted by RMW
// operations, given the line size.
func (t *Trace) UniqueRMWLines(lineBytes int) int {
	seen := map[uint64]bool{}
	for _, ops := range t.PerCore {
		for _, op := range ops {
			if op.Kind == OpRMW {
				seen[op.Addr/uint64(lineBytes)] = true
			}
		}
	}
	return len(seen)
}

// Validate checks the trace fits the configuration.
func (t *Trace) Validate(cfg Config) error {
	if len(t.PerCore) == 0 {
		return fmt.Errorf("sim: trace %q has no cores", t.Name)
	}
	if len(t.PerCore) > cfg.Cores {
		return fmt.Errorf("sim: trace %q has %d core streams but the configuration has %d cores",
			t.Name, len(t.PerCore), cfg.Cores)
	}
	return nil
}

// Source adapts the materialized trace to the streaming TraceSource
// interface. The returned source shares the trace's op slices read-only,
// so it is safe for concurrent simulation runs as long as the trace is not
// mutated while they execute.
func (t *Trace) Source() TraceSource { return traceSource{t} }

// traceSource is the TraceSource view of a materialized *Trace.
type traceSource struct{ t *Trace }

func (s traceSource) Name() string { return s.t.Name }
func (s traceSource) Cores() int   { return len(s.t.PerCore) }
func (s traceSource) Stream(c int) OpStream {
	return &sliceStream{ops: s.t.PerCore[c]}
}

// sliceStream iterates over a materialized op slice.
type sliceStream struct {
	ops []Op
	pos int
}

// Next returns the slice's next op.
func (s *sliceStream) Next() (Op, bool) {
	if s.pos >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.pos]
	s.pos++
	return op, true
}

// emptyStream is the stream of a core with no trace.
type emptyStream struct{}

// Next always reports exhaustion.
func (emptyStream) Next() (Op, bool) { return Op{}, false }

// Materialize drains every stream of the source into a fully materialized
// Trace. It is the bridge from the lazy form back to the slice form, used
// when the ops must be retained — counting kinds, unique-line calibration,
// or replaying the identical trace many times without regeneration cost.
func Materialize(src TraceSource) *Trace {
	t := NewTrace(src.Name(), src.Cores())
	for c := 0; c < src.Cores(); c++ {
		stream := src.Stream(c)
		for {
			op, ok := stream.Next()
			if !ok {
				break
			}
			t.Append(c, op)
		}
	}
	return t
}
