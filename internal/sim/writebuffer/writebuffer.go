// Package writebuffer models the per-core store (write) buffer of a TSO
// processor: a bounded FIFO of retired-but-not-yet-performed writes. Under
// TSO the buffer drains in order; the entry at the head owns the in-flight
// coherence transaction. The buffer itself is a passive data structure --
// drain scheduling, forced drains and the interaction with cache-line locks
// are orchestrated by the processor model in internal/sim.
package writebuffer

import "fmt"

// Entry is one pending write.
type Entry struct {
	// Line is the cache-line address of the write.
	Line uint64
	// IsRMWWrite marks the write half (Wa) of a weak RMW; completing it
	// must unlock the RMW's cache line.
	IsRMWWrite bool
	// EnqueuedAt is the cycle the write retired into the buffer.
	EnqueuedAt uint64
	// InFlight is set while the entry's ownership request is outstanding.
	InFlight bool
	// Ready is set once the entry's ownership response has arrived; under
	// TSO writes still complete (leave the buffer) strictly in FIFO order,
	// so a ready entry behind a non-ready head keeps waiting. ReadyAt
	// records when ownership arrived.
	Ready   bool
	ReadyAt uint64
	// id is a unique identity used to remove entries that complete out of
	// order during a parallel forced drain.
	id uint64
}

// Buffer is a bounded FIFO write buffer.
type Buffer struct {
	capacity int
	entries  []*Entry
	nextID   uint64

	// statistics
	enqueued     uint64
	maxOccupancy int
	fullStalls   uint64
}

// New returns an empty buffer with the given capacity. It panics on a
// non-positive capacity (a configuration error).
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("writebuffer: non-positive capacity %d", capacity))
	}
	return &Buffer{capacity: capacity}
}

// Capacity returns the buffer's capacity in entries.
func (b *Buffer) Capacity() int { return b.capacity }

// Len returns the number of pending writes.
func (b *Buffer) Len() int { return len(b.entries) }

// Empty reports whether no writes are pending.
func (b *Buffer) Empty() bool { return len(b.entries) == 0 }

// Full reports whether the buffer cannot accept another write.
func (b *Buffer) Full() bool { return len(b.entries) >= b.capacity }

// Push appends a write to the tail. It returns the new entry, or an error
// if the buffer is full (the caller must stall and retry once an entry
// drains).
func (b *Buffer) Push(line uint64, isRMWWrite bool, at uint64) (*Entry, error) {
	if b.Full() {
		b.fullStalls++
		return nil, fmt.Errorf("writebuffer: full (capacity %d)", b.capacity)
	}
	e := &Entry{Line: line, IsRMWWrite: isRMWWrite, EnqueuedAt: at, id: b.nextID}
	b.nextID++
	b.entries = append(b.entries, e)
	b.enqueued++
	if len(b.entries) > b.maxOccupancy {
		b.maxOccupancy = len(b.entries)
	}
	return e, nil
}

// Head returns the oldest pending write, or nil when empty.
func (b *Buffer) Head() *Entry {
	if len(b.entries) == 0 {
		return nil
	}
	return b.entries[0]
}

// Entries returns the pending writes in FIFO order. The returned slice
// aliases the buffer's internal storage and must not be modified; it is
// intended for read-only scans such as the bloom-filter conflict check and
// store-to-load forwarding.
func (b *Buffer) Entries() []*Entry { return b.entries }

// Remove deletes the given entry (identified by identity, not position),
// returning whether it was present. Entries normally complete at the head,
// but a parallel forced drain may complete them out of order.
func (b *Buffer) Remove(e *Entry) bool {
	for i, cur := range b.entries {
		if cur.id == e.id {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Contains reports whether a pending write to the given line exists, for
// store-to-load forwarding.
func (b *Buffer) Contains(line uint64) bool {
	for _, e := range b.entries {
		if e.Line == line {
			return true
		}
	}
	return false
}

// PendingLines returns the distinct line addresses of all pending writes,
// in FIFO order of first occurrence.
func (b *Buffer) PendingLines() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, e := range b.entries {
		if !seen[e.Line] {
			seen[e.Line] = true
			out = append(out, e.Line)
		}
	}
	return out
}

// Enqueued returns the total number of writes ever pushed.
func (b *Buffer) Enqueued() uint64 { return b.enqueued }

// MaxOccupancy returns the highest number of simultaneously pending writes.
func (b *Buffer) MaxOccupancy() int { return b.maxOccupancy }

// FullStalls returns how many pushes were rejected because the buffer was
// full.
func (b *Buffer) FullStalls() uint64 { return b.fullStalls }
