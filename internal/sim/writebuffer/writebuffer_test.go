package writebuffer

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestPushPopFIFO(t *testing.T) {
	b := New(4)
	if !b.Empty() || b.Full() || b.Len() != 0 || b.Capacity() != 4 {
		t.Fatal("fresh buffer state wrong")
	}
	e1, err := b.Push(10, false, 100)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := b.Push(20, true, 101)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || b.Empty() {
		t.Fatal("length wrong after pushes")
	}
	if b.Head() != e1 {
		t.Error("head should be the oldest entry")
	}
	if !b.Remove(e1) {
		t.Error("Remove head failed")
	}
	if b.Head() != e2 {
		t.Error("head should advance after removal")
	}
	if b.Head().IsRMWWrite != true || b.Head().Line != 20 || b.Head().EnqueuedAt != 101 {
		t.Error("entry fields lost")
	}
}

func TestPushFullRejects(t *testing.T) {
	b := New(2)
	if _, err := b.Push(1, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Push(2, false, 0); err != nil {
		t.Fatal(err)
	}
	if !b.Full() {
		t.Fatal("buffer should be full")
	}
	if _, err := b.Push(3, false, 0); err == nil {
		t.Fatal("push into a full buffer must fail")
	}
	if b.FullStalls() != 1 {
		t.Errorf("FullStalls = %d, want 1", b.FullStalls())
	}
	if b.Len() != 2 {
		t.Error("failed push must not grow the buffer")
	}
}

func TestRemoveOutOfOrder(t *testing.T) {
	b := New(4)
	e1, _ := b.Push(1, false, 0)
	e2, _ := b.Push(2, false, 0)
	e3, _ := b.Push(3, false, 0)
	if !b.Remove(e2) {
		t.Fatal("middle removal failed")
	}
	if b.Len() != 2 || b.Head() != e1 {
		t.Error("removal disturbed order")
	}
	if b.Remove(e2) {
		t.Error("double removal should report absence")
	}
	if !b.Remove(e1) || !b.Remove(e3) {
		t.Error("remaining removals failed")
	}
	if !b.Empty() {
		t.Error("buffer should be empty")
	}
	if b.Head() != nil {
		t.Error("Head of an empty buffer should be nil")
	}
}

func TestContainsAndPendingLines(t *testing.T) {
	b := New(8)
	b.Push(100, false, 0)
	b.Push(200, false, 0)
	b.Push(100, false, 0)
	if !b.Contains(100) || !b.Contains(200) || b.Contains(300) {
		t.Error("Contains wrong")
	}
	lines := b.PendingLines()
	if len(lines) != 2 || lines[0] != 100 || lines[1] != 200 {
		t.Errorf("PendingLines = %v, want [100 200]", lines)
	}
}

func TestStatistics(t *testing.T) {
	b := New(3)
	for i := 0; i < 3; i++ {
		b.Push(uint64(i), false, 0)
	}
	if b.MaxOccupancy() != 3 || b.Enqueued() != 3 {
		t.Errorf("MaxOccupancy=%d Enqueued=%d", b.MaxOccupancy(), b.Enqueued())
	}
	b.Remove(b.Head())
	b.Push(9, false, 0)
	if b.MaxOccupancy() != 3 || b.Enqueued() != 4 {
		t.Errorf("after churn: MaxOccupancy=%d Enqueued=%d", b.MaxOccupancy(), b.Enqueued())
	}
}

func TestEntriesIsFIFOView(t *testing.T) {
	b := New(4)
	b.Push(5, false, 1)
	b.Push(6, true, 2)
	es := b.Entries()
	if len(es) != 2 || es[0].Line != 5 || es[1].Line != 6 {
		t.Errorf("Entries = %v", es)
	}
}

func TestPropertyNeverExceedsCapacityAndFIFO(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		b := New(4)
		var order []uint64
		for i, op := range ops {
			if op%3 == 0 && !b.Empty() {
				head := b.Head()
				if head.Line != order[0] {
					return false // FIFO violated
				}
				b.Remove(head)
				order = order[1:]
				continue
			}
			if !b.Full() {
				line := uint64(i)
				if _, err := b.Push(line, false, uint64(i)); err != nil {
					return false
				}
				order = append(order, line)
			}
			if b.Len() > b.Capacity() {
				return false
			}
		}
		return b.Len() == len(order)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
