package simcache

import (
	"os"
	"strings"
	"syscall"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
)

// armChaos installs an injector for the test's duration.
func armChaos(t *testing.T, spec chaos.Spec) *chaos.Injector {
	t.Helper()
	in, err := chaos.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	in.Exit = func(int) {}
	in.Logf = func(string, ...any) {}
	chaos.Install(in)
	t.Cleanup(chaos.Uninstall)
	return in
}

// TestChaosReadFlipIsDetected verifies a bit flipped on the disk-read
// path is caught by the envelope checksum and served as a miss, with the
// on-disk entry (healthy — the flip was in-flight) deleted and rewritten
// by the next Put as usual.
func TestChaosReadFlipIsDetected(t *testing.T) {
	dir := t.TempDir()
	cold := mustOpen(t, WithDir(dir))
	k := testKey("flip-trace", core.Type3)
	if err := cold.PutSim(k, fakeResult("flip-trace", core.Type3)); err != nil {
		t.Fatal(err)
	}

	armChaos(t, chaos.Spec{Seed: 11, Rules: []chaos.Rule{
		{Hook: chaos.HookCacheRead, Kind: chaos.KindFlip},
	}})
	warm := mustOpen(t, WithDir(dir))
	if _, ok := warm.GetSim(k); ok {
		t.Fatal("bit-flipped read served as a hit")
	}
	st := warm.Stats()
	if st.Corrupt != 1 || st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("stats %+v, want 1 corrupt miss", st)
	}
}

// TestChaosReadErrorIsMiss verifies an injected read error (disk dying
// mid-read) degrades to a plain miss.
func TestChaosReadErrorIsMiss(t *testing.T) {
	dir := t.TempDir()
	cold := mustOpen(t, WithDir(dir))
	k := testKey("err-trace", core.Type2)
	if err := cold.PutSim(k, fakeResult("err-trace", core.Type2)); err != nil {
		t.Fatal(err)
	}
	armChaos(t, chaos.Spec{Rules: []chaos.Rule{
		{Hook: chaos.HookCacheRead, Kind: chaos.KindENOSPC},
	}})
	warm := mustOpen(t, WithDir(dir))
	if _, ok := warm.GetSim(k); ok {
		t.Fatal("failed read served as a hit")
	}
	if st := warm.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v, want a plain miss", st)
	}
	// The entry itself is healthy: with chaos off it must hit again.
	chaos.Uninstall()
	if _, ok := warm.GetSim(k); !ok {
		t.Fatal("healthy entry missed after chaos lifted")
	}
}

// corruptEntry damages the single on-disk entry of dir in place.
func corruptEntry(t *testing.T, dir string) string {
	t.Helper()
	path := entryFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadOnlyDirToleratesUndeletableCorruptEntry pins the satellite
// fix: when a corrupt entry cannot be deleted (read-only cache dir), the
// lookup is still just a logged miss — never an error, never a sweep
// failure — and the failure is counted and rendered in the stats line.
// chmod does not stop root, so the deletion failure is forced through
// the removeEntry seam; the chmod'd-dir variant below exercises the real
// syscall path when the test runs unprivileged.
func TestReadOnlyDirToleratesUndeletableCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	cold := mustOpen(t, WithDir(dir))
	k := testKey("ro-trace", core.Type2)
	if err := cold.PutSim(k, fakeResult("ro-trace", core.Type2)); err != nil {
		t.Fatal(err)
	}
	path := corruptEntry(t, dir)

	orig := removeEntry
	removeEntry = func(string) error { return syscall.EACCES }
	defer func() { removeEntry = orig }()

	warm := mustOpen(t, WithDir(dir))
	if _, ok := warm.GetSim(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := warm.Stats()
	if st.Corrupt != 1 || st.DeleteErrors != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want corrupt=1 delete_errors=1 misses=1", st)
	}
	if !strings.Contains(st.String(), "1 undeletable corrupt entries") {
		t.Fatalf("stats line %q does not surface the delete failure", st.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry vanished despite the forced delete failure: %v", err)
	}
	// Every retry stays a miss, never an error or a hit.
	if _, ok := warm.GetSim(k); ok {
		t.Fatal("second lookup of the undeletable corrupt entry hit")
	}
	if st := warm.Stats(); st.DeleteErrors != 2 {
		t.Fatalf("second lookup did not count its delete failure: %+v", st)
	}
}

// TestChmodReadOnlyDir runs the same tolerance check against a real
// chmod'd directory. Root bypasses directory permissions, so under root
// only the miss behaviour (not the delete failure) is asserted.
func TestChmodReadOnlyDir(t *testing.T) {
	dir := t.TempDir()
	cold := mustOpen(t, WithDir(dir))
	k := testKey("chmod-trace", core.Type3)
	if err := cold.PutSim(k, fakeResult("chmod-trace", core.Type3)); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, dir)

	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)

	warm := mustOpen(t, WithDir(dir))
	if _, ok := warm.GetSim(k); ok {
		t.Fatal("corrupt entry served as a hit from the read-only dir")
	}
	st := warm.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want one corrupt miss", st)
	}
	if os.Geteuid() != 0 && st.DeleteErrors != 1 {
		t.Fatalf("unprivileged chmod'd-dir lookup did not count the delete failure: %+v", st)
	}
}
