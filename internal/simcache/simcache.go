// Package simcache is a two-tier, content-addressed result cache for the
// pure computations of the reproduction — simulator runs and litmus
// verdicts. Each run is a pure function of its inputs (architectural
// configuration, workload identity, seed, scale, RMW type), so a result
// can be keyed by a canonical digest of those inputs and replayed instead
// of recomputed on repeated `cmd/experiments` invocations and CI reruns.
//
// The cache has an in-memory LRU tier (always on) and an optional on-disk
// tier (one JSON file per entry under a cache directory, by default
// ~/.cache/rmwtso). Entries are stored as a versioned envelope carrying
// the full key and a payload checksum: any truncation, bit-flip or schema
// drift is detected on read, counted, the file deleted, and the lookup
// treated as a miss — never a panic, never a wrong table. Bumping
// SchemaVersion changes every key digest, so stale entries from older
// layouts are simply never matched again.
package simcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/atomicio"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/sim"
)

// SchemaVersion versions the key derivation and the on-disk entry layout.
// It participates in every key's canonical string, so bumping it (which a
// change to sim.Config.Digest, sim.Result's serialized shape, or the
// envelope layout requires) orphans all previously written entries
// instead of misinterpreting them.
const SchemaVersion = 1

// Entry kinds. The kind participates in the key digest, so payloads of
// different types can never alias.
const (
	// KindSimResult marks a cached sim.Result of one simulator run.
	KindSimResult = "sim-result"
	// KindLitmusVerdict marks a cached model-checking verdict of one
	// (litmus test, atomicity type) pair.
	KindLitmusVerdict = "litmus-verdict"
)

// DefaultCapacity bounds the in-memory tier when WithCapacity is not given.
const DefaultCapacity = 512

// Key identifies one cached result by the inputs that determine it.
// Every field participates in the canonical digest; the zero value of an
// unused field (e.g. Seed for litmus verdicts) is simply part of the key.
type Key struct {
	// Kind is the entry kind (KindSimResult, KindLitmusVerdict).
	Kind string
	// ConfigDigest is sim.Config.Digest() for simulator runs, or the
	// digest of the canonical litmus rendering for verdicts.
	ConfigDigest string
	// Trace names the workload trace (including any replacement-variant
	// suffix) or the litmus test.
	Trace string
	// Workload is the content digest of the workload behind the trace
	// name (workload.Source.WorkloadDigest: profile parameters plus
	// replacement variant), so a modified profile that kept a
	// benchmark's name can never alias the stock benchmark's entries.
	// Empty for sources without a workload identity (hand-built traces,
	// whose content is determined by name and cores) and for litmus
	// verdicts.
	Workload string
	// Cores is the simulated core count (redundant with ConfigDigest for
	// simulator runs, kept for human-readable entries).
	Cores int
	// Seed is the workload generation seed.
	Seed int64
	// Scale is the normalized iteration-count scale factor.
	Scale float64
	// RMWType is the RMW atomicity type of the run.
	RMWType core.AtomicityType
}

// Canonical returns the canonical serialization of the key, the exact
// string whose SHA-256 is the entry's address. The schema version is part
// of the string, so a version bump re-keys everything.
func (k Key) Canonical() string {
	return fmt.Sprintf("simcache/v%d|kind=%s|cfg=%s|trace=%s|wl=%s|cores=%d|seed=%d|scale=%s|rmw=%d",
		SchemaVersion, k.Kind, k.ConfigDigest, k.Trace, k.Workload, k.Cores, k.Seed,
		strconv.FormatFloat(k.Scale, 'g', -1, 64), int(k.RMWType))
}

// Digest returns the hex-encoded SHA-256 of the canonical key string; it
// is the in-memory map key and the on-disk file name.
func (k Key) Digest() string {
	sum := sha256.Sum256([]byte(k.Canonical()))
	return hex.EncodeToString(sum[:])
}

// UnitIDLen is the length of a UnitID: a 16-hex-digit (64-bit) prefix of
// the key digest — short enough to read in shard listings, long enough
// that plan-sized unit sets (tens to thousands of units) never collide in
// practice. Plan construction still verifies uniqueness explicitly.
const UnitIDLen = 16

// UnitID returns the short, stable identifier of the work unit the key
// addresses: the first UnitIDLen hex digits of the content digest. Two
// runs with equal inputs share a UnitID on every machine and at every
// shard count, which is what lets sweep shards merge by identity.
func (k Key) UnitID() string {
	return k.Digest()[:UnitIDLen]
}

// workloadIdentifier is implemented by trace sources (workload.Source)
// that can digest their generator parameters; sources without it are
// keyed by name alone.
type workloadIdentifier interface {
	WorkloadDigest() string
}

// SimKey derives the key of one simulator run from the run's effective
// configuration (with the RMW type already set), the trace source, and
// the workload seed and scale. The source contributes its name and —
// when it can identify its content (workload.Source) — a digest of the
// generator parameters, so renamed or hand-tuned profiles never alias.
// A non-positive scale is normalized to 1: the generator applies no
// scaling in either case, so both spellings must address the same entry.
func SimKey(cfg sim.Config, src sim.TraceSource, seed int64, scale float64) Key {
	if scale <= 0 {
		scale = 1
	}
	k := Key{
		Kind:         KindSimResult,
		ConfigDigest: cfg.Digest(),
		Trace:        src.Name(),
		Cores:        cfg.Cores,
		Seed:         seed,
		Scale:        scale,
		RMWType:      cfg.RMWType,
	}
	if wi, ok := src.(workloadIdentifier); ok {
		k.Workload = wi.WorkloadDigest()
	}
	return k
}

// Stats count the cache's traffic. All counters are cumulative over the
// cache's lifetime (Clear does not reset them).
type Stats struct {
	// MemoryHits and DiskHits split the hits by serving tier.
	MemoryHits uint64
	DiskHits   uint64
	// Misses counts lookups served by neither tier (including entries
	// dropped as corrupt).
	Misses uint64
	// Stores counts successful Put calls; StoreErrors counts Put calls
	// whose disk write failed (the memory tier still holds them).
	Stores      uint64
	StoreErrors uint64
	// Corrupt counts disk entries rejected by the envelope checks
	// (unparsable JSON, schema-version or key mismatch, payload checksum
	// mismatch); each is deleted and counted as a miss.
	Corrupt uint64
	// DeleteErrors counts corrupt entries whose deletion itself failed
	// (e.g. a read-only cache directory). The entry stays on disk and the
	// lookup is still just a miss — a cache that cannot clean up must not
	// take the sweep down with it.
	DeleteErrors uint64
	// Evictions counts memory-tier entries displaced by the LRU bound.
	Evictions uint64
}

// Hits returns the total hits across both tiers.
func (s Stats) Hits() uint64 { return s.MemoryHits + s.DiskHits }

// String renders the counters as a one-line summary. Store errors are
// appended only when any occurred — they are the one counter that
// explains a cache that never warms (e.g. a read-only cache directory).
func (s Stats) String() string {
	out := fmt.Sprintf("%d hits (%d memory, %d disk), %d misses, %d stored, %d corrupt",
		s.Hits(), s.MemoryHits, s.DiskHits, s.Misses, s.Stores, s.Corrupt)
	if s.StoreErrors > 0 {
		out += fmt.Sprintf(", %d store errors (cache directory not writable?)", s.StoreErrors)
	}
	if s.DeleteErrors > 0 {
		out += fmt.Sprintf(", %d undeletable corrupt entries (cache directory not writable?)", s.DeleteErrors)
	}
	return out
}

// entry is the versioned on-disk (and in-memory) envelope of one cached
// payload. The embedded key lets a read verify it is holding the entry it
// addressed; the payload checksum turns any bit-level damage into a
// detectable miss instead of a wrong result.
type entry struct {
	SchemaVersion int             `json:"schema_version"`
	Key           Key             `json:"key"`
	PayloadSum    string          `json:"payload_sum"`
	Payload       json.RawMessage `json:"payload"`
}

// decodeEntry parses and verifies an encoded envelope against the key
// that addressed it, returning the payload bytes.
func decodeEntry(data []byte, k Key) (json.RawMessage, error) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("simcache: unparsable entry: %w", err)
	}
	if e.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("simcache: entry schema version %d, want %d", e.SchemaVersion, SchemaVersion)
	}
	if e.Key != k {
		return nil, fmt.Errorf("simcache: entry key mismatch (corrupt or colliding entry)")
	}
	sum := sha256.Sum256(e.Payload)
	if hex.EncodeToString(sum[:]) != e.PayloadSum {
		return nil, fmt.Errorf("simcache: payload checksum mismatch")
	}
	return e.Payload, nil
}

// encodeEntry builds the encoded envelope for a payload.
func encodeEntry(k Key, payload any) ([]byte, error) {
	pb, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("simcache: marshaling payload: %w", err)
	}
	sum := sha256.Sum256(pb)
	return json.Marshal(entry{
		SchemaVersion: SchemaVersion,
		Key:           k,
		PayloadSum:    hex.EncodeToString(sum[:]),
		Payload:       pb,
	})
}

// memEntry is one element of the LRU list.
type memEntry struct {
	digest string
	data   []byte
}

// Cache is the two-tier result cache. It is safe for concurrent use; the
// worker pools of pkg/rmwtso share one Cache across all units.
type Cache struct {
	mu    sync.Mutex
	cap   int
	dir   string
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // digest -> element
	stats Stats
}

// Option configures Open.
type Option func(*Cache)

// WithDir enables the on-disk tier rooted at dir (one JSON file per
// entry). The empty string keeps the cache memory-only.
func WithDir(dir string) Option { return func(c *Cache) { c.dir = dir } }

// WithCapacity bounds the in-memory tier to n entries (LRU eviction);
// n <= 0 removes the bound. The default is DefaultCapacity.
func WithCapacity(n int) Option {
	return func(c *Cache) {
		if n < 0 {
			n = 0
		}
		c.cap = n
	}
}

// DefaultDir returns the default on-disk location: the "rmwtso"
// subdirectory of the user cache directory (~/.cache/rmwtso on Linux).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("simcache: resolving the user cache directory: %w", err)
	}
	return filepath.Join(base, "rmwtso"), nil
}

// Open builds a cache from the options, creating the cache directory when
// a disk tier is configured. A memory-only Open never fails.
func Open(opts ...Option) (*Cache, error) {
	c := &Cache{cap: DefaultCapacity, ll: list.New(), items: map[string]*list.Element{}}
	for _, f := range opts {
		f(c)
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, fmt.Errorf("simcache: creating cache directory: %w", err)
		}
	}
	return c, nil
}

// Dir returns the disk-tier directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// Len returns the number of entries in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// path returns the disk-tier file of a key digest.
func (c *Cache) path(digest string) string {
	return filepath.Join(c.dir, digest+".json")
}

// insertLocked puts encoded entry bytes into the memory tier under the
// digest, evicting from the LRU tail past the capacity bound.
func (c *Cache) insertLocked(digest string, data []byte) {
	if el, ok := c.items[digest]; ok {
		el.Value.(*memEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	c.items[digest] = c.ll.PushFront(&memEntry{digest: digest, data: data})
	for c.cap > 0 && c.ll.Len() > c.cap {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*memEntry).digest)
		c.stats.Evictions++
	}
}

// Get looks the key up in the memory tier, then the disk tier, and
// unmarshals the payload into out on a hit. Disk hits are promoted into
// the memory tier. Corrupt disk entries (truncated, bit-flipped, stale
// schema) are deleted and reported as misses.
func (c *Cache) Get(k Key, out any) bool {
	digest := k.Digest()

	// Grab the entry bytes under the lock but verify and decode outside
	// it: entry slices are immutable once stored (Put replaces them
	// wholesale), and decoding — a checksum plus two JSON passes over a
	// potentially large payload — would otherwise serialize a warm
	// worker pool on the cache mutex.
	c.mu.Lock()
	var data []byte
	if el, ok := c.items[digest]; ok {
		data = el.Value.(*memEntry).data
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if data != nil {
		payload, err := decodeEntry(data, k)
		if err == nil {
			err = json.Unmarshal(payload, out)
		}
		c.mu.Lock()
		if err == nil {
			c.stats.MemoryHits++
			c.mu.Unlock()
			return true
		}
		// A memory entry only fails decoding if the payload type changed
		// underneath us; drop it and fall through to the disk tier.
		if el, ok := c.items[digest]; ok {
			c.ll.Remove(el)
			delete(c.items, digest)
		}
		c.mu.Unlock()
	}

	if c.dir == "" {
		c.countMiss()
		return false
	}
	path := c.path(digest)
	data, err := os.ReadFile(path)
	if err != nil {
		c.countMiss()
		return false
	}
	if in := chaos.Current(); in != nil {
		if data, err = in.OnRead(path, data); err != nil {
			c.countMiss()
			return false
		}
	}
	payload, err := decodeEntry(data, k)
	if err == nil {
		err = json.Unmarshal(payload, out)
	}
	if err != nil {
		// Treat damage as a miss and remove the entry so the next run
		// rewrites it; never surface a partially decoded result. If even
		// the deletion fails (read-only cache dir), log and count it —
		// an uncleanable cache degrades to misses, it never fails a sweep.
		if rmErr := removeEntry(path); rmErr != nil && !os.IsNotExist(rmErr) {
			fmt.Fprintf(os.Stderr, "simcache: cannot delete corrupt entry %s: %v\n", path, rmErr)
			c.mu.Lock()
			c.stats.DeleteErrors++
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.stats.Corrupt++
		c.stats.Misses++
		c.mu.Unlock()
		return false
	}
	c.mu.Lock()
	c.insertLocked(digest, data)
	c.stats.DiskHits++
	c.mu.Unlock()
	return true
}

// Has reports whether either tier holds an entry addressed by the key,
// without decoding, verifying or promoting it (and without touching the
// hit/miss counters). Callers use it to skip work that only pays off on
// a miss — e.g. materializing a trace — accepting that a corrupt entry
// may still turn the eventual Get into a miss.
func (c *Cache) Has(k Key) bool {
	digest := k.Digest()
	c.mu.Lock()
	_, ok := c.items[digest]
	c.mu.Unlock()
	if ok {
		return true
	}
	if c.dir == "" {
		return false
	}
	_, err := os.Stat(c.path(digest))
	return err == nil
}

// removeEntry deletes a corrupt disk entry. A variable so tests can
// force the deletion failure a read-only cache directory produces even
// when the test runs as root (whom chmod does not stop).
var removeEntry = os.Remove

// countMiss bumps the miss counter.
func (c *Cache) countMiss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

// Put stores the payload under the key in the memory tier and, when a
// disk tier is configured, atomically (write-temp-then-rename) on disk.
// A disk write failure leaves the memory entry in place and is returned
// (and counted) so callers can treat persistence as best-effort.
func (c *Cache) Put(k Key, payload any) error {
	data, err := encodeEntry(k, payload)
	if err != nil {
		return err
	}
	digest := k.Digest()
	c.mu.Lock()
	c.insertLocked(digest, data)
	c.stats.Stores++
	c.mu.Unlock()

	if c.dir == "" {
		return nil
	}
	if err := c.writeFile(digest, data); err != nil {
		c.mu.Lock()
		c.stats.StoreErrors++
		c.mu.Unlock()
		return err
	}
	return nil
}

// writeFile writes entry bytes to the disk tier atomically (through the
// shared write-temp-then-rename helper), so concurrent readers only ever
// observe complete entries.
func (c *Cache) writeFile(digest string, data []byte) error {
	if err := atomicio.WriteFile(c.path(digest), data); err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	return nil
}

// Clear empties the memory tier and deletes every entry file of the disk
// tier (stats are preserved; they count cumulative traffic).
func (c *Cache) Clear() error {
	c.mu.Lock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	// Entry files, plus any temp files orphaned by interrupted writes.
	for _, pattern := range []string{"*.json", ".tmp-*"} {
		matches, err := filepath.Glob(filepath.Join(c.dir, pattern))
		if err != nil {
			return fmt.Errorf("simcache: listing cache entries: %w", err)
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("simcache: clearing cache: %w", err)
			}
		}
	}
	return nil
}

// GetSim looks up one simulator result.
func (c *Cache) GetSim(k Key) (*sim.Result, bool) {
	var r sim.Result
	if !c.Get(k, &r) {
		return nil, false
	}
	return &r, true
}

// PutSim stores one simulator result.
func (c *Cache) PutSim(k Key, r *sim.Result) error {
	return c.Put(k, r)
}
