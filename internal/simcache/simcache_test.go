package simcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fakeResult builds a representative sim.Result exercising every field of
// the serialized shape (nested slices, flags, counters).
func fakeResult(trace string, typ core.AtomicityType) *sim.Result {
	return &sim.Result{
		Workload: trace,
		RMWType:  typ,
		Cycles:   123456,
		PerCore: []sim.CoreStats{
			{Core: 0, Cycles: 123456, Reads: 10, Writes: 5, RMWs: 3, Fences: 1, Computes: 7,
				RMWWriteBufferCycles: 40, RMWRaWaCycles: 60, RMWReverts: 1, RMWBroadcasts: 2,
				ReadStallCycles: 11, WriteStallCycles: 13},
			{Core: 1, Cycles: 120000, Reads: 9, Writes: 4, RMWs: 2},
		},
		RMWCosts: []sim.RMWCost{
			{WriteBuffer: 30, RaWa: 20, Reverted: true, Broadcast: false},
			{WriteBuffer: 0, RaWa: 25, Broadcast: true},
		},
		Broadcasts:           2,
		UniqueRMWs:           2,
		DirectoryLockDenials: 4,
	}
}

// fakeSource is a minimal sim.TraceSource for key derivation in tests.
type fakeSource struct {
	name  string
	cores int
}

func (f fakeSource) Name() string              { return f.name }
func (f fakeSource) Cores() int                { return f.cores }
func (f fakeSource) Stream(c int) sim.OpStream { return nil }

func testKey(trace string, typ core.AtomicityType) Key {
	return SimKey(sim.DefaultConfig().WithCores(8).WithRMWType(typ), fakeSource{trace, 8}, 20130601, 0.25)
}

func mustOpen(t *testing.T, opts ...Option) *Cache {
	t.Helper()
	c, err := Open(opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

// entryFile returns the single on-disk entry of a one-entry cache dir.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one entry file, got %v (err %v)", matches, err)
	}
	return matches[0]
}

func TestMemoryRoundTrip(t *testing.T) {
	c := mustOpen(t)
	k := testKey("bayes", core.Type2)
	want := fakeResult("bayes", core.Type2)
	if err := c.PutSim(k, want); err != nil {
		t.Fatalf("PutSim: %v", err)
	}
	got, ok := c.GetSim(k)
	if !ok {
		t.Fatalf("GetSim missed a just-stored key")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-tripped result differs:\ngot  %+v\nwant %+v", got, want)
	}
	// The cached copy must be isolated from the caller's value.
	if got == want {
		t.Fatalf("GetSim returned the stored pointer, not a decoded copy")
	}
	st := c.Stats()
	if st.MemoryHits != 1 || st.Misses != 0 || st.Stores != 1 {
		t.Fatalf("stats = %+v, want 1 memory hit / 0 misses / 1 store", st)
	}
	if _, ok := c.GetSim(testKey("bayes", core.Type3)); ok {
		t.Fatalf("GetSim hit on a different RMW type")
	}
	if c.Stats().Misses != 1 {
		t.Fatalf("miss not counted: %+v", c.Stats())
	}
}

// TestKeyDigestPinned pins the canonical string and digest of a known key
// so an accidental Key/Config field reordering (or a silent canonical
// format change) breaks loudly; an intentional change must bless these
// values and bump SchemaVersion.
func TestKeyDigestPinned(t *testing.T) {
	src := fakeSource{"radiosity", 32}
	k := SimKey(sim.DefaultConfig().WithRMWType(core.Type2), src, 20130601, 1)
	wantCanonical := "simcache/v1|kind=sim-result|cfg=585c16977312da197d4bc0588d44de9a5035230ee85f689813b960bcd036db1f|trace=radiosity|wl=|cores=32|seed=20130601|scale=1|rmw=2"
	if got := k.Canonical(); got != wantCanonical {
		t.Fatalf("canonical key changed:\ngot  %s\nwant %s\n(bless this and bump SchemaVersion if intentional)", got, wantCanonical)
	}
	wantDigest := "c96533331626aa60d9ba350068eeb122bacf4f3db35b5c6c6cbc106f235fa97f"
	if got := k.Digest(); got != wantDigest {
		t.Fatalf("key digest changed:\ngot  %s\nwant %s", got, wantDigest)
	}
	// Scale 0 must normalize to the scale-1 key.
	if got := SimKey(sim.DefaultConfig().WithRMWType(core.Type2), src, 20130601, 0).Digest(); got != wantDigest {
		t.Fatalf("unset scale did not normalize to scale 1")
	}
}

// TestSimKeyUsesWorkloadIdentity pins that a source able to identify its
// content (workload.Source) contributes a workload digest to the key, so
// a tweaked profile under a stock name cannot alias.
func TestSimKeyUsesWorkloadIdentity(t *testing.T) {
	cfg := sim.DefaultConfig().WithCores(4).WithRMWType(core.Type1)
	p, err := workload.FindProfile("radiosity")
	if err != nil {
		t.Fatalf("FindProfile: %v", err)
	}
	gen := workload.Generator{Cores: 4, Seed: 1}
	stock, err := gen.Source(p)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	tweakedProfile := p
	tweakedProfile.CriticalSectionOps++
	tweaked, err := gen.Source(tweakedProfile)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	stockKey := SimKey(cfg, stock, 1, 1)
	if stockKey.Workload == "" {
		t.Fatalf("workload.Source contributed no workload digest")
	}
	if SimKey(cfg, tweaked, 1, 1) == stockKey {
		t.Fatalf("tweaked profile aliases the stock profile's cache key")
	}
	// Sources without a workload identity still key on their name.
	if SimKey(cfg, fakeSource{"radiosity", 4}, 1, 1).Workload != "" {
		t.Fatalf("plain source unexpectedly has a workload digest")
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustOpen(t, WithCapacity(2))
	keys := []Key{testKey("a", core.Type1), testKey("b", core.Type1), testKey("c", core.Type1)}
	for _, k := range keys {
		if err := c.PutSim(k, fakeResult(k.Trace, core.Type1)); err != nil {
			t.Fatalf("PutSim: %v", err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.GetSim(keys[0]); ok {
		t.Fatalf("oldest entry survived past the capacity bound")
	}
	if _, ok := c.GetSim(keys[1]); !ok {
		t.Fatalf("recent entry evicted")
	}
	// Touch "b" so "c" becomes the LRU victim of the next insert.
	if err := c.PutSim(testKey("d", core.Type1), fakeResult("d", core.Type1)); err != nil {
		t.Fatalf("PutSim: %v", err)
	}
	if _, ok := c.GetSim(keys[2]); ok {
		t.Fatalf("LRU order not respected: untouched entry survived")
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
}

func TestDiskWarm(t *testing.T) {
	dir := t.TempDir()
	k := testKey("genome", core.Type3)
	want := fakeResult("genome", core.Type3)

	c1 := mustOpen(t, WithDir(dir))
	if err := c1.PutSim(k, want); err != nil {
		t.Fatalf("PutSim: %v", err)
	}

	// A fresh cache over the same directory (a "new process") must serve
	// the entry from disk, then promote it to memory.
	c2 := mustOpen(t, WithDir(dir))
	got, ok := c2.GetSim(k)
	if !ok {
		t.Fatalf("disk-warm GetSim missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disk round-trip differs:\ngot  %+v\nwant %+v", got, want)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
	if _, ok := c2.GetSim(k); !ok {
		t.Fatalf("promoted entry missed")
	}
	if st := c2.Stats(); st.MemoryHits != 1 {
		t.Fatalf("stats = %+v, want promotion to memory", st)
	}
}

// TestCorruptionBitFlip flips one bit at every byte position of an on-disk
// entry and asserts each read either misses cleanly (deleting the damaged
// file) or — when the flip lands in insignificant whitespace — returns the
// exact original result. No flip may panic or return a different result.
func TestCorruptionBitFlip(t *testing.T) {
	dir := t.TempDir()
	k := testKey("raytrace", core.Type2)
	want := fakeResult("raytrace", core.Type2)
	c := mustOpen(t, WithDir(dir))
	if err := c.PutSim(k, want); err != nil {
		t.Fatalf("PutSim: %v", err)
	}
	path := entryFile(t, dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading entry: %v", err)
	}

	for i := range orig {
		damaged := append([]byte(nil), orig...)
		damaged[i] ^= 0x01
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatalf("writing damaged entry: %v", err)
		}
		// Fresh cache per flip so the memory tier cannot mask the disk read.
		fresh := mustOpen(t, WithDir(dir))
		got, ok := fresh.GetSim(k)
		if ok {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("bit flip at byte %d returned a WRONG result: %+v", i, got)
			}
		} else {
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("bit flip at byte %d: damaged entry not deleted (stat err %v)", i, err)
			}
			if st := fresh.Stats(); st.Corrupt != 1 || st.Misses != 1 {
				t.Fatalf("bit flip at byte %d: stats %+v, want 1 corrupt + 1 miss", i, st)
			}
		}
		// Restore for the next position.
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatalf("restoring entry: %v", err)
		}
	}
}

func TestTruncatedEntry(t *testing.T) {
	dir := t.TempDir()
	k := testKey("dedup", core.Type1)
	c := mustOpen(t, WithDir(dir))
	if err := c.PutSim(k, fakeResult("dedup", core.Type1)); err != nil {
		t.Fatalf("PutSim: %v", err)
	}
	path := entryFile(t, dir)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncating: %v", err)
	}
	fresh := mustOpen(t, WithDir(dir))
	if _, ok := fresh.GetSim(k); ok {
		t.Fatalf("truncated entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("truncated entry not deleted")
	}
}

func TestGarbageEntry(t *testing.T) {
	dir := t.TempDir()
	k := testKey("fluidanimate", core.Type1)
	c := mustOpen(t, WithDir(dir))
	if err := c.PutSim(k, fakeResult("fluidanimate", core.Type1)); err != nil {
		t.Fatalf("PutSim: %v", err)
	}
	path := entryFile(t, dir)
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatalf("writing garbage: %v", err)
	}
	fresh := mustOpen(t, WithDir(dir))
	if _, ok := fresh.GetSim(k); ok {
		t.Fatalf("garbage entry served as a hit")
	}
	if st := fresh.Stats(); st.Corrupt != 1 {
		t.Fatalf("garbage not counted corrupt: %+v", st)
	}
}

// TestSchemaVersionMismatch rewrites a valid entry claiming a different
// schema version; it must be dropped as corrupt, not misinterpreted.
func TestSchemaVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	k := testKey("wsq-mst", core.Type2)
	c := mustOpen(t, WithDir(dir))
	if err := c.PutSim(k, fakeResult("wsq-mst", core.Type2)); err != nil {
		t.Fatalf("PutSim: %v", err)
	}
	path := entryFile(t, dir)
	data, _ := os.ReadFile(path)
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("decoding entry: %v", err)
	}
	raw["schema_version"] = json.RawMessage("999")
	redone, err := json.Marshal(raw)
	if err != nil {
		t.Fatalf("re-encoding: %v", err)
	}
	if err := os.WriteFile(path, redone, 0o644); err != nil {
		t.Fatalf("rewriting: %v", err)
	}
	fresh := mustOpen(t, WithDir(dir))
	if _, ok := fresh.GetSim(k); ok {
		t.Fatalf("stale-schema entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("stale-schema entry not deleted")
	}
}

func TestClear(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, WithDir(dir))
	k := testKey("bayes", core.Type1)
	if err := c.PutSim(k, fakeResult("bayes", core.Type1)); err != nil {
		t.Fatalf("PutSim: %v", err)
	}
	if err := c.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("memory tier not cleared")
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(matches) != 0 {
		t.Fatalf("disk tier not cleared: %v", matches)
	}
	if _, ok := c.GetSim(k); ok {
		t.Fatalf("cleared entry still served")
	}
}

// TestGenericPayload exercises the untyped Get/Put used for litmus
// verdicts.
func TestGenericPayload(t *testing.T) {
	type verdict struct {
		Holds    bool     `json:"holds"`
		Outcomes []string `json:"outcomes"`
	}
	c := mustOpen(t)
	k := Key{Kind: KindLitmusVerdict, ConfigDigest: "abc", Trace: "SB", RMWType: core.Type1}
	want := verdict{Holds: true, Outcomes: []string{"P0:r0=0 P1:r0=0"}}
	if err := c.Put(k, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var got verdict
	if !c.Get(k, &got) {
		t.Fatalf("Get missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("generic round-trip differs: %+v vs %+v", got, want)
	}
}
