// Package stats provides the small reporting utilities shared by the
// experiment harness and the command-line tools: fixed-width tables,
// labelled series for the figure-style results, and percentage helpers.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named sequence of (label, value) points, used for the
// figure-style results (e.g. per-benchmark RMW cost for one RMW type).
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends a point to the series.
func (s *Series) Add(label string, value float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, value)
}

// Chart renders a set of series that share labels as a grouped horizontal
// bar chart in text, one block per label. Values are scaled so the longest
// bar is width characters.
func Chart(title string, width int, series ...Series) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, s := range series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteString("\n")
	}
	if len(series) == 0 || len(series[0].Labels) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	nameWidth := 0
	for _, s := range series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	for i, label := range series[0].Labels {
		fmt.Fprintf(&b, "%s\n", label)
		for _, s := range series {
			if i >= len(s.Values) {
				continue
			}
			v := s.Values[i]
			bar := 0
			if max > 0 {
				bar = int(v / max * float64(width))
			}
			fmt.Fprintf(&b, "  %-*s %8.2f %s\n", nameWidth, s.Name, v, strings.Repeat("#", bar))
		}
	}
	return b.String()
}

// PercentReduction returns how much smaller next is than base, in percent.
// A zero base yields zero.
func PercentReduction(base, next float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - next) / base
}

// Percent formats a float as a percentage with one decimal.
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F1 and F2 format floats with one and two decimals.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Mark renders a boolean as the check/cross marks used by the paper's
// Table 1.
func Mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

// Mean returns the arithmetic mean of the samples (zero for none).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (Bessel-corrected); it is
// zero for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tCrit95 holds the two-sided 95% Student-t critical values for 1..30
// degrees of freedom; larger samples use the normal approximation.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean and the half-width of its two-sided
// 95% confidence interval (Student t for up to 30 degrees of freedom,
// normal approximation beyond). Fewer than two samples have a zero
// half-width: a single measurement carries no spread information.
func MeanCI95(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	t := 1.960
	if df := n - 1; df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return mean, t * StdDev(xs) / math.Sqrt(float64(n))
}
