// Package stats provides the small reporting utilities shared by the
// experiment harness and the command-line tools: fixed-width tables,
// labelled series for the figure-style results, and percentage helpers.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named sequence of (label, value) points, used for the
// figure-style results (e.g. per-benchmark RMW cost for one RMW type).
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends a point to the series.
func (s *Series) Add(label string, value float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, value)
}

// Chart renders a set of series that share labels as a grouped horizontal
// bar chart in text, one block per label. Values are scaled so the longest
// bar is width characters.
func Chart(title string, width int, series ...Series) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, s := range series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteString("\n")
	}
	if len(series) == 0 || len(series[0].Labels) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	nameWidth := 0
	for _, s := range series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	for i, label := range series[0].Labels {
		fmt.Fprintf(&b, "%s\n", label)
		for _, s := range series {
			if i >= len(s.Values) {
				continue
			}
			v := s.Values[i]
			bar := 0
			if max > 0 {
				bar = int(v / max * float64(width))
			}
			fmt.Fprintf(&b, "  %-*s %8.2f %s\n", nameWidth, s.Name, v, strings.Repeat("#", bar))
		}
	}
	return b.String()
}

// PercentReduction returns how much smaller next is than base, in percent.
// A zero base yields zero.
func PercentReduction(base, next float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - next) / base
}

// Percent formats a float as a percentage with one decimal.
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F1 and F2 format floats with one and two decimals.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Mark renders a boolean as the check/cross marks used by the paper's
// Table 1.
func Mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
