package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta") // short row padded
	out := tb.Render()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "alpha") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Errorf("render has %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns aligned: header and first row start of second column match.
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	out := tb.Render()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title should not leave a blank first line")
	}
}

func TestSeriesAndChart(t *testing.T) {
	s1 := Series{Name: "type-1"}
	s1.Add("bench-a", 60)
	s1.Add("bench-b", 30)
	s2 := Series{Name: "type-2"}
	s2.Add("bench-a", 30)
	s2.Add("bench-b", 15)
	out := Chart("Fig", 20, s1, s2)
	for _, want := range []string{"Fig", "bench-a", "bench-b", "type-1", "type-2", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the longest bar.
	if strings.Count(out, "#") == 0 {
		t.Error("no bars rendered")
	}
	if !strings.Contains(Chart("empty", 10), "(no data)") {
		t.Error("empty chart should say so")
	}
	// Zero width falls back to a default.
	if Chart("z", 0, s1) == "" {
		t.Error("zero width chart empty")
	}
}

func TestHelpers(t *testing.T) {
	if PercentReduction(100, 40) != 60 {
		t.Errorf("PercentReduction(100,40) = %f", PercentReduction(100, 40))
	}
	if PercentReduction(0, 5) != 0 {
		t.Error("zero base should yield zero")
	}
	if Percent(12.34) != "12.3%" {
		t.Errorf("Percent = %q", Percent(12.34))
	}
	if F1(1.26) != "1.3" || F2(1.262) != "1.26" {
		t.Error("float formatting wrong")
	}
	if Mark(true) != "yes" || Mark(false) != "no" {
		t.Error("Mark wrong")
	}
}
