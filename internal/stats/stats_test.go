package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta") // short row padded
	out := tb.Render()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "alpha") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Errorf("render has %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns aligned: header and first row start of second column match.
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	out := tb.Render()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title should not leave a blank first line")
	}
}

func TestSeriesAndChart(t *testing.T) {
	s1 := Series{Name: "type-1"}
	s1.Add("bench-a", 60)
	s1.Add("bench-b", 30)
	s2 := Series{Name: "type-2"}
	s2.Add("bench-a", 30)
	s2.Add("bench-b", 15)
	out := Chart("Fig", 20, s1, s2)
	for _, want := range []string{"Fig", "bench-a", "bench-b", "type-1", "type-2", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the longest bar.
	if strings.Count(out, "#") == 0 {
		t.Error("no bars rendered")
	}
	if !strings.Contains(Chart("empty", 10), "(no data)") {
		t.Error("empty chart should say so")
	}
	// Zero width falls back to a default.
	if Chart("z", 0, s1) == "" {
		t.Error("zero width chart empty")
	}
}

func TestHelpers(t *testing.T) {
	if PercentReduction(100, 40) != 60 {
		t.Errorf("PercentReduction(100,40) = %f", PercentReduction(100, 40))
	}
	if PercentReduction(0, 5) != 0 {
		t.Error("zero base should yield zero")
	}
	if Percent(12.34) != "12.3%" {
		t.Errorf("Percent = %q", Percent(12.34))
	}
	if F1(1.26) != "1.3" || F2(1.262) != "1.26" {
		t.Error("float formatting wrong")
	}
	if Mark(true) != "yes" || Mark(false) != "no" {
		t.Error("Mark wrong")
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("empty/single-sample statistics should be zero")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %f, want 5", got)
	}
	// Sample (Bessel-corrected) standard deviation of the set above.
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %f, want 2.13809", got)
	}
}

func TestMeanCI95(t *testing.T) {
	if m, h := MeanCI95([]float64{3}); m != 3 || h != 0 {
		t.Errorf("single sample: mean %f half %f, want 3 and 0", m, h)
	}
	// n=2: df=1, t=12.706; s = |a-b|/sqrt(2), half = t*s/sqrt(2) = t*|a-b|/2.
	m, h := MeanCI95([]float64{10, 14})
	if m != 12 {
		t.Errorf("mean = %f, want 12", m)
	}
	if want := 12.706 * 4 / 2; math.Abs(h-want) > 1e-9 {
		t.Errorf("half-width = %f, want %f", h, want)
	}
	// Identical samples have zero spread regardless of n.
	if _, h := MeanCI95([]float64{7, 7, 7, 7}); h != 0 {
		t.Errorf("identical samples: half-width %f, want 0", h)
	}
	// Large n falls back to the normal critical value.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2)
	}
	_, h = MeanCI95(big)
	want := 1.960 * StdDev(big) / 10
	if math.Abs(h-want) > 1e-9 {
		t.Errorf("n=100 half-width = %f, want normal approximation %f", h, want)
	}
}
