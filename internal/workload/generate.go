package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Replacement selects which half of the Dekker-like synchronization in the
// work-stealing queue is replaced by an RMW, mirroring the paper's C/C++11
// experiment (wsq-mst_rr and wsq-mst_wr).
type Replacement int

const (
	// NoReplacement uses an RMW only where the original algorithm has one
	// (the steal CAS and node-claim CAS).
	NoReplacement Replacement = iota
	// ReadReplacement turns the pop's SC-atomic-read of top into an RMW
	// (lock xadd(0)), the paper's wsq-mst_rr.
	ReadReplacement
	// WriteReplacement turns the pop's SC-atomic-write of bottom into an
	// RMW (lock xchg), the paper's wsq-mst_wr.
	WriteReplacement
)

// String renders the replacement variant.
func (r Replacement) String() string {
	switch r {
	case NoReplacement:
		return "none"
	case ReadReplacement:
		return "read-replacement"
	case WriteReplacement:
		return "write-replacement"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Memory layout of the synthetic address space (byte addresses; the
// simulator converts to 64-byte lines). Each region is padded so distinct
// logical objects live on distinct lines.
const (
	lineBytes        = 64
	lockRegionBase   = 0x1000_0000 // synchronization variables (lock words, deque tops, STM locks)
	sharedRegionBase = 0x2000_0000 // shared data
	dequeRegionBase  = 0x3000_0000 // per-core deque anchors (top/bottom)
	privateBase      = 0x4000_0000 // per-core private data
	privateStride    = 0x0100_0000
)

// lockAddr returns the byte address of the i-th synchronization variable.
func lockAddr(i int) uint64 { return lockRegionBase + uint64(i)*lineBytes }

// sharedAddr returns the byte address of the i-th shared data line.
func sharedAddr(i int) uint64 { return sharedRegionBase + uint64(i)*lineBytes }

// dequeTopAddr and dequeBottomAddr return the anchors of core c's deque.
func dequeTopAddr(c int) uint64    { return dequeRegionBase + uint64(c)*4*lineBytes }
func dequeBottomAddr(c int) uint64 { return dequeRegionBase + uint64(c)*4*lineBytes + 2*lineBytes }

// privateAddr returns the byte address of core c's i-th private line.
func privateAddr(c, i int) uint64 {
	return privateBase + uint64(c)*privateStride + uint64(i)*lineBytes
}

// Generator produces simulator traces from benchmark profiles.
type Generator struct {
	// Cores is the number of cores to generate streams for.
	Cores int
	// Seed makes generation deterministic.
	Seed int64
	// Replacement applies to work-stealing profiles only.
	Replacement Replacement
}

// Generate builds the trace for a profile.
func (g Generator) Generate(p Profile) (*sim.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g.Cores <= 0 {
		return nil, fmt.Errorf("workload: non-positive core count %d", g.Cores)
	}
	name := p.Name
	switch g.Replacement {
	case ReadReplacement:
		name += "_rr"
	case WriteReplacement:
		name += "_wr"
	}
	trace := sim.NewTrace(name, g.Cores)
	for c := 0; c < g.Cores; c++ {
		rng := rand.New(rand.NewSource(g.Seed + int64(c)*7919 + 1))
		switch p.Pattern {
		case LockBased:
			g.lockBasedStream(trace, c, p, rng)
		case Transactional:
			g.transactionalStream(trace, c, p, rng)
		case WorkStealing:
			g.workStealingStream(trace, c, p, rng)
		default:
			return nil, fmt.Errorf("workload: profile %q: unknown pattern %v", p.Name, p.Pattern)
		}
	}
	return trace, nil
}

// privatePhase emits the non-shared work between synchronization episodes.
func (g Generator) privatePhase(trace *sim.Trace, c int, p Profile, rng *rand.Rand) {
	if p.ThinkCycles > 0 {
		trace.Append(c, sim.Compute(p.ThinkCycles))
	}
	for i := 0; i < p.PrivateOpsPerEpisode; i++ {
		addr := privateAddr(c, rng.Intn(64))
		if rng.Float64() < p.WriteFraction {
			trace.Append(c, sim.Write(addr))
		} else {
			trace.Append(c, sim.Read(addr))
		}
	}
}

// pickSync picks a synchronization variable index for core c. With
// probability LockAffinity the index comes from the core's own partition of
// the pool (real programs partition their work, so most acquisitions are
// uncontended); otherwise it is drawn uniformly, providing the cross-core
// sharing that exercises the coherence protocol.
func (g Generator) pickSync(c int, p Profile, rng *rand.Rand) int {
	pool := p.SharedLockLines
	if p.LockAffinity > 0 && rng.Float64() < p.LockAffinity && g.Cores > 0 {
		per := pool / g.Cores
		if per < 1 {
			per = 1
		}
		base := (c * per) % pool
		return (base + rng.Intn(per)) % pool
	}
	return rng.Intn(pool)
}

// sharedOps emits n accesses to the shared-data pool, writing with the
// profile's write fraction.
func (g Generator) sharedOps(trace *sim.Trace, c int, p Profile, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		addr := sharedAddr(rng.Intn(p.SharedDataLines))
		if rng.Float64() < p.WriteFraction {
			trace.Append(c, sim.Write(addr))
		} else {
			trace.Append(c, sim.Read(addr))
		}
	}
}

// lockBasedStream models SPLASH-2/PARSEC style code: private work, a couple
// of shared-buffer writes, then lock; critical section; unlock. The shared
// writes just before the acquire are what make the baseline type-1 RMW pay
// for a write-buffer drain, as the paper observes.
func (g Generator) lockBasedStream(trace *sim.Trace, c int, p Profile, rng *rand.Rand) {
	for it := 0; it < p.Iterations; it++ {
		g.privatePhase(trace, c, p, rng)
		// Publish a couple of results to shared memory right before the
		// acquire.
		g.sharedOps(trace, c, p, rng, 2)
		lock := lockAddr(g.pickSync(c, p, rng))
		trace.Append(c, sim.RMW(lock)) // acquire (test-and-set)
		g.sharedOps(trace, c, p, rng, p.CriticalSectionOps)
		trace.Append(c, sim.Write(lock)) // release
	}
}

// transactionalStream models STAMP code running on a TL2-style STM: a read
// phase, then a commit that locks each written location with an RMW, bumps
// the global version clock with an RMW, writes back, and releases the
// locks with plain stores.
func (g Generator) transactionalStream(trace *sim.Trace, c int, p Profile, rng *rand.Rand) {
	// The version clock is the hot line every commit bumps. TL2's GV5/GV6
	// variants reduce clock contention; ClockLines > 1 models that by
	// sharding the clock, with each core mostly using its home shard.
	clockShards := p.ClockLines
	if clockShards <= 0 {
		clockShards = 1
	}
	clockRegion := p.SharedLockLines // clock shards live after the STM locks
	for it := 0; it < p.Iterations; it++ {
		g.privatePhase(trace, c, p, rng)
		// Read set.
		g.sharedOps(trace, c, p, rng, p.CriticalSectionOps)
		// Write set: lock each written location (CAS on its STM lock), then
		// bump the version clock, write back, release. The short compute
		// gaps model the per-location and read-set validation TL2 performs
		// between the lock acquisitions; they also give the lock RMWs'
		// writes time to leave the write buffer, which is why the paper
		// measures almost no bloom-filter reverts for the STAMP codes.
		writeSet := 1 + rng.Intn(2)
		locks := make([]uint64, 0, writeSet)
		for w := 0; w < writeSet; w++ {
			l := lockAddr(g.pickSync(c, p, rng))
			locks = append(locks, l)
			trace.Append(c, sim.RMW(l), sim.Compute(30))
		}
		clock := lockAddr(clockRegion + c%clockShards)
		trace.Append(c, sim.Compute(60), sim.RMW(clock))
		for w := 0; w < writeSet; w++ {
			trace.Append(c, sim.Write(sharedAddr(rng.Intn(p.SharedDataLines))))
		}
		for _, l := range locks {
			trace.Append(c, sim.Write(l))
		}
	}
}

// workStealingStream models the Chase-Lev deque plus the node-claiming CAS
// of the parallel spanning-tree program (wsq-mst). Each episode pops a
// task (the Dekker-like bottom/top synchronization whose SC accesses the
// paper's C/C++11 experiment replaces with RMWs), executes it (claiming a
// graph node with a CAS and touching its neighbours), pushes newly
// discovered work, and occasionally steals from a victim deque. The task
// execution between the push and the next pop is what lets the push's
// plain write of bottom leave the write buffer before the pop's RMW, as it
// does in the real program.
func (g Generator) workStealingStream(trace *sim.Trace, c int, p Profile, rng *rand.Rand) {
	for it := 0; it < p.Iterations; it++ {
		// Publish the previous task's results just before taking the next
		// task; these are the pending writes that make the baseline type-1
		// RMW pay for a drain at the pop.
		g.sharedOps(trace, c, p, rng, 2)

		// Pop a task: the Dekker-like sequence "write bottom; read top".
		switch g.Replacement {
		case WriteReplacement:
			trace.Append(c, sim.RMW(dequeBottomAddr(c))) // SC-atomic-write -> lock xchg
			trace.Append(c, sim.Read(dequeTopAddr(c)))
		case ReadReplacement:
			trace.Append(c, sim.Write(dequeBottomAddr(c)))
			trace.Append(c, sim.RMW(dequeTopAddr(c))) // SC-atomic-read -> lock xadd(0)
		default:
			trace.Append(c, sim.Write(dequeBottomAddr(c)))
			trace.Append(c, sim.Read(dequeTopAddr(c)))
			// Occasionally the pop races a thief and resolves it with a CAS
			// on top.
			if rng.Float64() < 0.2 {
				trace.Append(c, sim.RMW(dequeTopAddr(c)))
			}
		}

		// Execute the task: claim a graph node with a CAS, then touch its
		// neighbours. The large node pool is what gives wsq-mst its high
		// fraction of unique RMW addresses.
		node := lockAddr(g.pickSync(c, p, rng))
		trace.Append(c, sim.RMW(node))
		g.sharedOps(trace, c, p, rng, p.CriticalSectionOps)

		// Push newly discovered work: write the task slot, then publish
		// bottom.
		trace.Append(c, sim.Write(sharedAddr(rng.Intn(p.SharedDataLines))))
		trace.Append(c, sim.Write(dequeBottomAddr(c)))

		// Occasionally steal from a victim deque: read its anchors and CAS
		// its top.
		if g.Cores > 1 && rng.Float64() < 0.25 {
			victim := rng.Intn(g.Cores)
			if victim == c {
				victim = (victim + 1) % g.Cores
			}
			trace.Append(c, sim.Read(dequeTopAddr(victim)))
			trace.Append(c, sim.Read(dequeBottomAddr(victim)))
			trace.Append(c, sim.RMW(dequeTopAddr(victim)))
		}

		// Local bookkeeping before the next pop; this is where the push's
		// write of bottom drains.
		g.privatePhase(trace, c, p, rng)
	}
}

// GenerateByName builds the trace for a Table 3 benchmark by name.
func (g Generator) GenerateByName(name string) (*sim.Trace, error) {
	p, err := FindProfile(name)
	if err != nil {
		return nil, err
	}
	return g.Generate(p)
}

// WSQProfile returns the wsq-mst profile, the benchmark used for the
// C/C++11 read-/write-replacement comparison.
func WSQProfile() Profile {
	p, err := FindProfile("wsq-mst")
	if err != nil {
		// Table3Profiles always contains wsq-mst; reaching this is a
		// programming error.
		panic(err)
	}
	return p
}
